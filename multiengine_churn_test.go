package turboflux

import (
	"fmt"
	"math/rand"
	"testing"
)

// churnStream builds a delete-heavy update stream in waves: each wave
// inserts a batch of edges (hub-focused so adjacency buckets grow past
// the compaction thresholds), then deletes every one of them in a
// shuffled order (draining buckets through the shrink and drop paths and
// releasing every DCG slot), then re-inserts a subset over the same
// vertex IDs so re-created candidates land on recycled slots. Deletes of
// never-inserted edges are mixed in as no-ops.
func churnStream(rng *rand.Rand, waves int) []Update {
	const nVerts = 24
	var ups []Update
	for v := VertexID(1); v <= nVerts; v++ {
		ups = append(ups, DeclareVertex(v, Label(v%2)))
	}
	type edge struct {
		from, to VertexID
		l        Label
	}
	hub := VertexID(1)
	for w := 0; w < waves; w++ {
		var wave []edge
		add := func(e edge) {
			wave = append(wave, e)
			ups = append(ups, Insert(e.from, e.l, e.to))
		}
		// Hub fan-out: one adjacency bucket grows well past inShrinkMin.
		for i := 0; i < 20; i++ {
			add(edge{from: hub, to: VertexID(2 + rng.Intn(nVerts-2)), l: Label(rng.Intn(3))})
		}
		// Background edges between random vertices.
		for i := 0; i < 15; i++ {
			add(edge{
				from: VertexID(1 + rng.Intn(nVerts)),
				to:   VertexID(1 + rng.Intn(nVerts)),
				l:    Label(rng.Intn(3)),
			})
		}
		// Drain the whole wave in shuffled order, with no-op deletes of
		// edges that were never inserted sprinkled in.
		for _, i := range rng.Perm(len(wave)) {
			e := wave[i]
			ups = append(ups, Delete(e.from, e.l, e.to))
			if rng.Intn(4) == 0 {
				ups = append(ups, Delete(VertexID(1+rng.Intn(nVerts)), Label(3), VertexID(1+rng.Intn(nVerts))))
			}
		}
		// Re-create over the same vertex IDs: the engines' DCG slots for
		// these vertices were just released and must be reused.
		for i := 0; i < 10; i++ {
			e := wave[rng.Intn(len(wave))]
			ups = append(ups, Insert(e.from, e.l, e.to))
		}
	}
	return ups
}

// TestDeleteHeavyChurnEquivalence is the transcript gate of the dense
// layout overhaul (DESIGN.md §16): under delete-heavy churn that
// exercises slot release, epoch recycling, adjacency-bucket compaction
// and vertex re-creation on recycled slots, every worker count and batch
// size must reproduce the single-worker per-update transcript byte for
// byte.
func TestDeleteHeavyChurnEquivalence(t *testing.T) {
	waves := 6
	if testing.Short() {
		waves = 2
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			specs := randomQuerySpecs(rng)
			ups := churnStream(rng, waves)
			wantTr, wantTot := runBatchSequential(t, specs, ups)
			for _, workers := range []int{1, 4, 8} {
				for _, batch := range []int{1, 256} {
					gotTr, gotTot := runBatchStream(t, workers, batch, specs, ups)
					if gotTr != wantTr {
						t.Fatalf("workers=%d batch=%d: transcript diverged %s",
							workers, batch, firstDiff(gotTr, wantTr))
					}
					for name, want := range wantTot {
						if got := gotTot[name]; got != want {
							t.Fatalf("workers=%d batch=%d query %s: counts %d != %d",
								workers, batch, name, got, want)
						}
					}
				}
			}
		})
	}
}
