package turboflux

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"turboflux/internal/stream"
)

// randomBatchStream extends randomStream with the update shapes the
// batch scheduler special-cases: mid-stream vertex declarations (fresh
// and duplicate), inserts that auto-create endpoint vertices, duplicate
// inserts of live edges and deletes of absent edges.
func randomBatchStream(rng *rand.Rand, nUpdates int) []Update {
	const nVerts = 24
	var ups []Update
	for v := VertexID(1); v <= nVerts; v++ {
		ups = append(ups, DeclareVertex(v, Label(v%2)))
	}
	next := VertexID(nVerts + 1)
	type edge struct {
		from, to VertexID
		l        Label
	}
	var inserted []edge
	for len(ups) < nUpdates {
		switch r := rng.Float64(); {
		case r < 0.08:
			// Fresh vertex declaration mid-stream: a solo update in a batch.
			ups = append(ups, DeclareVertex(next, Label(rng.Intn(2))))
			next++
		case r < 0.12:
			// Re-declaration of an existing vertex: an exact no-op.
			ups = append(ups, DeclareVertex(VertexID(1+rng.Intn(nVerts)), Label(rng.Intn(2))))
		case r < 0.18:
			// Insert auto-creating its destination vertex: another solo case.
			e := edge{from: VertexID(1 + rng.Intn(nVerts)), to: next, l: Label(rng.Intn(3))}
			next++
			inserted = append(inserted, e)
			ups = append(ups, Insert(e.from, e.l, e.to))
		case r < 0.68 || len(inserted) == 0:
			// Edge churn over every live vertex; collisions with a live edge
			// exercise the duplicate-insert no-op path.
			hi := int(next) - 1
			e := edge{
				from: VertexID(1 + rng.Intn(hi)),
				to:   VertexID(1 + rng.Intn(hi)),
				l:    Label(rng.Intn(3)),
			}
			inserted = append(inserted, e)
			ups = append(ups, Insert(e.from, e.l, e.to))
		case r < 0.78:
			// Delete of a random (often absent) edge: the no-op delete path.
			ups = append(ups, Delete(
				VertexID(1+rng.Intn(nVerts)), Label(rng.Intn(3)), VertexID(1+rng.Intn(nVerts))))
		default:
			e := inserted[rng.Intn(len(inserted))]
			ups = append(ups, Delete(e.from, e.l, e.to))
		}
	}
	return ups
}

// registerBatchSpecs registers the specs' queries on m, all writing into
// one shared transcript so inter-query emission order (registration
// order within an update) is part of the compared bytes.
func registerBatchSpecs(t *testing.T, m *MultiEngine, specs []parallelQuerySpec, b *strings.Builder) {
	t.Helper()
	for i, s := range specs {
		name := fmt.Sprintf("q%d", i)
		q, opt := s.build()
		opt.OnMatch = func(positive bool, mapping []VertexID) {
			sign := byte('+')
			if !positive {
				sign = '-'
			}
			fmt.Fprintf(b, "%s%c%v;", name, sign, mapping)
		}
		if err := m.Register(name, q, opt); err != nil {
			t.Fatal(err)
		}
	}
}

// runBatchSequential is the reference run: per-update Apply with a
// boundary marker written after each update's emissions.
func runBatchSequential(t *testing.T, specs []parallelQuerySpec, ups []Update) (string, map[string]int64) {
	t.Helper()
	m := NewMultiEngine(NewGraph())
	defer m.Close() //tf:unchecked-ok test teardown
	m.SetFanOutWorkers(1)
	var b strings.Builder
	registerBatchSpecs(t, m, specs, &b)
	totals := map[string]int64{}
	for i, u := range ups {
		counts, err := m.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		for name, n := range counts {
			totals[name] += n
		}
		fmt.Fprintf(&b, "|%d;", i)
	}
	return b.String(), totals
}

// runBatchStream applies ups through ApplyBatchFunc in chunks of
// batchSize, writing the same boundary markers through the hook.
func runBatchStream(t *testing.T, workers, batchSize int, specs []parallelQuerySpec, ups []Update) (string, map[string]int64) {
	t.Helper()
	m := NewMultiEngine(NewGraph())
	defer m.Close() //tf:unchecked-ok test teardown
	m.SetFanOutWorkers(workers)
	var b strings.Builder
	registerBatchSpecs(t, m, specs, &b)
	totals := map[string]int64{}
	off := 0
	for _, chunk := range stream.Batches(ups, batchSize) {
		base := off
		counts, err := m.ApplyBatchFunc(chunk, func(i int) {
			fmt.Fprintf(&b, "|%d;", base+i)
		})
		if err != nil {
			t.Fatal(err)
		}
		for name, n := range counts {
			totals[name] += n
		}
		off += len(chunk)
	}
	return b.String(), totals
}

// firstDiff returns a window around the first byte where got and want
// diverge, for readable failure output.
func firstDiff(got, want string) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 60
	if lo < 0 {
		lo = 0
	}
	end := func(s string) int {
		if i+60 < len(s) {
			return i + 60
		}
		return len(s)
	}
	return fmt.Sprintf("at byte %d:\n  got:  …%s\n  want: …%s", i, got[lo:end(got)], want[lo:end(want)])
}

// TestBatchEquivalence is the tentpole property: for random streams
// (including mid-stream vertex creation and no-op updates) and random
// query mixes, ApplyBatchFunc produces a byte-identical interleaved
// transcript — emissions tagged by query, in registration order within
// each update, with per-update boundary markers — to sequential
// per-update evaluation, across batch sizes and worker counts.
func TestBatchEquivalence(t *testing.T) {
	nUpdates := 600
	if testing.Short() {
		nUpdates = 200
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			specs := randomQuerySpecs(rng)
			ups := randomBatchStream(rng, nUpdates)
			wantTr, wantTot := runBatchSequential(t, specs, ups)
			for _, workers := range []int{1, 4, 8} {
				for _, bs := range []int{1, 16, 256, 4096} {
					gotTr, gotTot := runBatchStream(t, workers, bs, specs, ups)
					if gotTr != wantTr {
						t.Fatalf("workers=%d batch=%d: transcript diverged %s",
							workers, bs, firstDiff(gotTr, wantTr))
					}
					for name, want := range wantTot {
						if got := gotTot[name]; got != want {
							t.Fatalf("workers=%d batch=%d query %s: counts %d != sequential %d",
								workers, bs, name, got, want)
						}
					}
					for name := range gotTot {
						if _, ok := wantTot[name]; !ok {
							t.Fatalf("workers=%d batch=%d: unexpected counts for %s", workers, bs, name)
						}
					}
				}
			}
		})
	}
}

// TestBatchErrorEvaluatesAll pins the batch failure semantics: a
// budget-starved query fails every update it is relevant to, the joined
// error names each failing update index and query, errors.Is still sees
// ErrWorkBudget, and the rest of the batch is applied anyway so the
// graph tracks the stream.
func TestBatchErrorEvaluatesAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g := NewGraph()
			g.EnsureVertex(1, 0)
			g.EnsureVertex(2, 0)
			m := NewMultiEngine(g)
			defer m.Close() //tf:unchecked-ok test teardown
			m.SetFanOutWorkers(workers)
			mkQ := func() *Query {
				q := NewQuery(2)
				q.SetLabels(0, 0)
				q.SetLabels(1, 0)
				_ = q.AddEdge(0, 0, 1)
				return q
			}
			if err := m.Register("ok", mkQ(), Options{}); err != nil {
				t.Fatal(err)
			}
			// Budget 2 registers against the tiny graph but fails every
			// edge evaluation.
			if err := m.Register("starved", mkQ(), Options{WorkBudget: 2}); err != nil {
				t.Fatal(err)
			}
			ups := []Update{
				DeclareVertex(3, 0),
				DeclareVertex(4, 0),
				Insert(1, 0, 2),
				Insert(3, 0, 4),
				Insert(2, 0, 3),
			}
			counts, err := m.ApplyBatch(ups)
			if err == nil {
				t.Fatal("starved query must surface its errors")
			}
			if !errors.Is(err, ErrWorkBudget) {
				t.Fatalf("err = %v, want ErrWorkBudget", err)
			}
			for _, frag := range []string{`update 2 query "starved"`, `update 3 query "starved"`, `update 4 query "starved"`} {
				if !strings.Contains(err.Error(), frag) {
					t.Fatalf("err = %v, want fragment %q", err, frag)
				}
			}
			// The healthy query evaluated every update despite the failures.
			if counts["ok"] != 3 {
				t.Fatalf("counts = %v, want ok=3", counts)
			}
			// And the graph holds all three edges.
			for _, u := range ups[2:] {
				if !m.Graph().HasEdge(u.Edge.From, u.Edge.Label, u.Edge.To) {
					t.Fatalf("edge %v missing: failed update was not applied", u.Edge)
				}
			}
		})
	}
}

// TestBatchRoutingStats checks that batch evaluation accounts evals and
// label-routing skips exactly like the per-update parallel path, so the
// serving STATS counters stay meaningful under BATCH frames.
func TestBatchRoutingStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	specs := []parallelQuerySpec{
		{shape: 0, elabels: [3]Label{0, 0, 0}},
		{shape: 0, elabels: [3]Label{2, 2, 2}},
	}
	ups := randomStream(rng, 300)

	stats := func(batch int) (uint64, uint64) {
		m := NewMultiEngine(NewGraph())
		defer m.Close() //tf:unchecked-ok test teardown
		m.SetFanOutWorkers(4)
		for i, s := range specs {
			q, opt := s.build()
			if err := m.Register(fmt.Sprintf("q%d", i), q, opt); err != nil {
				t.Fatal(err)
			}
		}
		if batch == 0 {
			for _, u := range ups {
				if _, err := m.Apply(u); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, chunk := range stream.Batches(ups, batch) {
				if _, err := m.ApplyBatch(chunk); err != nil {
					t.Fatal(err)
				}
			}
		}
		fs := m.FanOutStats()
		return fs.Evals, fs.Skipped
	}

	wantEvals, wantSkipped := stats(0)
	gotEvals, gotSkipped := stats(64)
	if gotEvals != wantEvals || gotSkipped != wantSkipped {
		t.Fatalf("batch evals=%d skipped=%d, per-update evals=%d skipped=%d",
			gotEvals, gotSkipped, wantEvals, wantSkipped)
	}
	if gotSkipped == 0 {
		t.Fatal("Skipped = 0: routing never engaged on a disjoint-label mix")
	}
}
