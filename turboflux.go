// Package turboflux is a continuous subgraph matching system for streaming
// graph data, implementing Kim et al., "TurboFlux: A Fast Continuous
// Subgraph Matching System for Streaming Graph Data" (SIGMOD 2018).
//
// Given an initial data graph g0, a query graph q and a stream of edge
// insertions and deletions, an Engine reports the positive matches
// (M(g_i,q) − M(g_{i−1},q)) of every insertion and the negative matches of
// every deletion, under graph homomorphism (default) or subgraph
// isomorphism semantics. Internally the engine maintains the paper's
// data-centric graph (DCG), a compact intermediate-result index updated by
// the edge transition model, and answers each update by localized index
// maintenance plus a DCG-guided backtracking search.
//
// # Quick start
//
//	g := turboflux.NewGraph()
//	g.EnsureVertex(1, person)
//	g.InsertEdge(1, follows, 2)          // ... load g0
//
//	q := turboflux.NewQuery(3)           // u0 -follows-> u1 -follows-> u2
//	q.SetLabels(0, person)
//	q.AddEdge(0, follows, 1)
//	q.AddEdge(1, follows, 2)
//
//	eng, _ := turboflux.NewEngine(g, q, turboflux.Options{
//		OnMatch: func(positive bool, m []turboflux.VertexID) {
//			fmt.Println(positive, m)
//		},
//	})
//	eng.Insert(2, follows, 3)            // reports new matches immediately
//
// After NewEngine the engine owns the data graph: route every mutation
// through Engine.Insert / Engine.Delete / Engine.Apply.
package turboflux

import (
	"errors"
	"fmt"
	"io"

	"turboflux/internal/core"
	"turboflux/internal/graph"
	"turboflux/internal/qlang"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// Re-exported substrate types. These aliases are the supported public
// names; the internal packages are implementation detail.
type (
	// VertexID identifies a data or query vertex.
	VertexID = graph.VertexID
	// Label is an interned vertex or edge label.
	Label = graph.Label
	// Edge is a directed labeled edge.
	Edge = graph.Edge
	// Graph is the dynamic labeled data graph.
	Graph = graph.Graph
	// Dict interns label names.
	Dict = graph.Dict
	// Query is a query graph.
	Query = query.Graph
	// Update is one stream operation.
	Update = stream.Update
)

// NoVertex is the sentinel "no vertex" value.
const NoVertex = graph.NoVertex

// NewGraph returns an empty data graph.
func NewGraph() *Graph { return graph.New() }

// NewDict returns an empty label dictionary.
func NewDict() *Dict { return graph.NewDict() }

// NewQuery returns a query graph with n vertices (0 .. n-1).
func NewQuery(n int) *Query { return query.NewGraph(n) }

// ParseQuery compiles a Cypher-like pattern into a query graph:
//
//	q, names, err := turboflux.ParseQuery(
//	    "MATCH (a:Person)-[:follows]->(b:Person), (b)-[:likes]->(p:Post)",
//	    vertexDict, edgeDict)
//
// names maps pattern node names to query vertex IDs. Vertex and edge
// labels are interned through the supplied dictionaries, so patterns and
// data loaded through the same dictionaries agree on label values.
func ParseQuery(src string, vertexLabels, edgeLabels *Dict) (*Query, map[string]VertexID, error) {
	return qlang.Parse(src, vertexLabels, edgeLabels)
}

// Insert returns an edge-insertion update.
func Insert(from VertexID, l Label, to VertexID) Update { return stream.Insert(from, l, to) }

// Delete returns an edge-deletion update.
func Delete(from VertexID, l Label, to VertexID) Update { return stream.Delete(from, l, to) }

// DeclareVertex returns a vertex-declaration update.
func DeclareVertex(v VertexID, labels ...Label) Update {
	return stream.DeclareVertex(v, labels...)
}

// DecodeStream reads updates in the text stream format.
func DecodeStream(r io.Reader) ([]Update, error) { return stream.Decode(r) }

// EncodeStream writes updates in the text stream format.
func EncodeStream(w io.Writer, ups []Update) error { return stream.Encode(w, ups) }

// Semantics selects the matching semantics.
type Semantics = core.Semantics

const (
	// Homomorphism: L(u) ⊆ L(m(u)), edges preserved, mapping not
	// necessarily injective (the paper's default).
	Homomorphism = core.Homomorphism
	// Isomorphism additionally requires an injective vertex mapping.
	Isomorphism = core.Isomorphism
)

// SearchStrategy selects how SubgraphSearch enumerates candidates.
type SearchStrategy = core.Strategy

const (
	// Backtracking is the paper's default search (Algorithm 7).
	Backtracking = core.Backtracking
	// WCOJoin intersects all constraint lists per extension, the
	// worst-case-optimal variant sketched in Section 4.3.
	WCOJoin = core.WCOJoin
)

// Options configures an Engine.
type Options struct {
	// Semantics selects homomorphism (default) or isomorphism.
	Semantics Semantics
	// Search selects the candidate-enumeration strategy (default
	// Backtracking).
	Search SearchStrategy
	// OnMatch, when non-nil, receives every positive and negative match.
	// The mapping slice (query vertex -> data vertex) is reused across
	// calls; copy it if retained.
	OnMatch func(positive bool, mapping []VertexID)
	// WorkBudget caps the work units (search and maintenance steps) spent
	// on a single update; when exceeded the update aborts with
	// ErrWorkBudget and its match reporting is incomplete. 0 means
	// unlimited.
	WorkBudget int64
}

// ErrWorkBudget reports that an update exceeded Options.WorkBudget and was
// aborted. Test with errors.Is; MultiEngine wraps it with the offending
// query's name.
var ErrWorkBudget = core.ErrWorkBudget

// Engine is a continuous subgraph matching instance. It is not safe for
// concurrent use; concurrent callers must serialize access, as the
// network server does through its engine-owner goroutine
// (machine-checked by turboflux-vet's actor-confinement analyzer).
//
//tf:actor-owned
type Engine struct {
	inner *core.Engine
}

// NewEngine builds a TurboFlux engine over initial graph g0 and query q:
// it selects the starting query vertex, converts q to a query tree, builds
// the initial DCG and derives the matching order. The engine takes
// ownership of g0.
func NewEngine(g0 *Graph, q *Query, opt Options) (*Engine, error) {
	copt := core.DefaultOptions()
	copt.Semantics = opt.Semantics
	copt.Search = opt.Search
	copt.OnMatch = opt.OnMatch
	copt.WorkBudget = opt.WorkBudget
	inner, err := core.New(g0, q, copt)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// InitialMatches reports every match already present in the initial graph
// through OnMatch and returns their count. Call it at most once, before
// streaming updates.
func (e *Engine) InitialMatches() int64 { return e.inner.InitialMatches() }

// Insert applies an edge insertion and returns the number of positive
// matches it produced. Duplicate insertions are no-ops.
func (e *Engine) Insert(from VertexID, l Label, to VertexID) (int64, error) {
	return e.inner.InsertEdge(from, l, to)
}

// Delete applies an edge deletion and returns the number of negative
// matches it produced. Deleting an absent edge is a no-op.
func (e *Engine) Delete(from VertexID, l Label, to VertexID) (int64, error) {
	return e.inner.DeleteEdge(from, l, to)
}

// Apply applies one stream update.
func (e *Engine) Apply(u Update) (int64, error) { return e.inner.Apply(u) }

// ApplyAll applies a batch of updates and returns the total match count.
func (e *Engine) ApplyAll(ups []Update) (int64, error) {
	var total int64
	for _, u := range ups {
		n, err := e.Apply(u)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// ApplyBatch applies a whole batch of updates and returns the total
// match count. Unlike ApplyAll it evaluates every update even when some
// fail: per-update errors are wrapped as `update i` and aggregated with
// errors.Join, so a work-budget abort on one update does not silently
// drop the rest of the batch. Match reporting order is identical to
// applying the updates one at a time.
func (e *Engine) ApplyBatch(ups []Update) (int64, error) {
	var total int64
	var errs []error
	for i, u := range ups {
		n, err := e.Apply(u)
		total += n
		if err != nil {
			errs = append(errs, fmt.Errorf("update %d: %w", i, err)) //tf:alloc-ok error path
		}
	}
	return total, errors.Join(errs...)
}

// Graph returns the engine's data graph. Treat it as read-only.
func (e *Engine) Graph() *Graph { return e.inner.Graph() }

// Stats is a snapshot of engine counters.
type Stats struct {
	// PositiveMatches and NegativeMatches count matches reported for
	// stream updates (InitialMatches excluded).
	PositiveMatches int64
	NegativeMatches int64
	// DCGEdges is the number of stored intermediate-result edges.
	DCGEdges int
	// IntermediateBytes is the accounting size of the DCG.
	IntermediateBytes int64
}

// Explain renders the engine's execution plan — starting vertex, query
// tree, non-tree edges, matching order with per-label explicit-path
// counts, and DCG occupancy — for diagnostics.
func (e *Engine) Explain() string { return e.inner.Plan().String() }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		PositiveMatches:   e.inner.PositiveCount(),
		NegativeMatches:   e.inner.NegativeCount(),
		DCGEdges:          e.inner.DCG().NumEdges(),
		IntermediateBytes: e.inner.IntermediateSizeBytes(),
	}
}
