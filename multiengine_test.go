package turboflux

import (
	"errors"
	"strings"
	"testing"
)

// multiFixture: labels — 0:Person 1:Account; edges — 0:owns 1:pays 2:knows.
func multiFixture(t *testing.T) (*MultiEngine, map[string]*[]string) {
	t.Helper()
	g := NewGraph()
	g.EnsureVertex(1, 0)
	g.EnsureVertex(2, 0)
	g.EnsureVertex(10, 1)
	g.EnsureVertex(20, 1)
	g.InsertEdge(1, 0, 10)

	m := NewMultiEngine(g)
	events := map[string]*[]string{}
	reg := func(name string, q *Query) {
		t.Helper()
		ev := &[]string{}
		events[name] = ev
		err := m.Register(name, q, Options{
			OnMatch: func(positive bool, _ []VertexID) {
				if positive {
					*ev = append(*ev, "+")
				} else {
					*ev = append(*ev, "-")
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// payment: Person -owns-> Account -pays-> Account.
	qPay := NewQuery(3)
	qPay.SetLabels(0, 0)
	qPay.SetLabels(1, 1)
	qPay.SetLabels(2, 1)
	_ = qPay.AddEdge(0, 0, 1)
	_ = qPay.AddEdge(1, 1, 2)
	reg("payment", qPay)
	// social: Person -knows-> Person.
	qKnow := NewQuery(2)
	qKnow.SetLabels(0, 0)
	qKnow.SetLabels(1, 0)
	_ = qKnow.AddEdge(0, 2, 1)
	reg("social", qKnow)
	return m, events
}

func TestMultiEngineFanOut(t *testing.T) {
	m, events := multiFixture(t)
	if got := m.Queries(); len(got) != 2 || got[0] != "payment" || got[1] != "social" {
		t.Fatalf("Queries = %v", got)
	}
	init := m.InitialMatches()
	if init["payment"] != 0 || init["social"] != 0 {
		t.Fatalf("initial = %v", init)
	}

	// A payment edge triggers only the payment query.
	counts, err := m.Insert(10, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if counts["payment"] != 1 || counts["social"] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	// A knows edge triggers only the social query.
	counts, err = m.Insert(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts["social"] != 1 || counts["payment"] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	// Deleting the owns edge retracts the payment match only.
	counts, err = m.Delete(1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if counts["payment"] != 1 {
		t.Fatalf("delete counts = %v", counts)
	}
	if got := *events["payment"]; len(got) != 2 || got[0] != "+" || got[1] != "-" {
		t.Fatalf("payment events = %v", got)
	}
	if got := *events["social"]; len(got) != 1 || got[0] != "+" {
		t.Fatalf("social events = %v", got)
	}
	st := m.Stats()
	if st["payment"].PositiveMatches != 1 || st["payment"].NegativeMatches != 1 {
		t.Fatalf("payment stats = %+v", st["payment"])
	}
	if m.TotalIntermediateBytes() < 0 {
		t.Fatal("TotalIntermediateBytes negative")
	}
	if m.Graph().NumEdges() != 2 {
		t.Fatalf("graph edges = %d", m.Graph().NumEdges())
	}
}

func TestMultiEngineDuplicateAndUnregister(t *testing.T) {
	m, _ := multiFixture(t)
	q := NewQuery(2)
	_ = q.AddEdge(0, 2, 1)
	if err := m.Register("payment", q, Options{}); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if !m.Unregister("social") {
		t.Fatal("Unregister existing must succeed")
	}
	if m.Unregister("social") {
		t.Fatal("Unregister twice must fail")
	}
	// After unregistering, social no longer reports.
	counts, err := m.Insert(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 0 {
		t.Fatalf("counts after unregister = %v", counts)
	}
	if err := m.Register("bad", NewQuery(0), Options{}); err == nil {
		t.Fatal("invalid query must fail")
	}
}

func TestMultiEngineReRegisterSameName(t *testing.T) {
	m, _ := multiFixture(t)
	if !m.Unregister("social") {
		t.Fatal("Unregister existing must succeed")
	}
	// The freed name is immediately reusable, and the replacement query
	// starts from the current graph, not the original registration's g0.
	q := NewQuery(2)
	q.SetLabels(0, 0)
	q.SetLabels(1, 0)
	_ = q.AddEdge(0, 2, 1)
	var got []string
	if err := m.Register("social", q, Options{
		OnMatch: func(positive bool, _ []VertexID) {
			if positive {
				got = append(got, "+")
			} else {
				got = append(got, "-")
			}
		},
	}); err != nil {
		t.Fatalf("re-register freed name: %v", err)
	}
	if queries := m.Queries(); len(queries) != 2 || queries[1] != "social" {
		t.Fatalf("Queries after re-register = %v", queries)
	}
	counts, err := m.Insert(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts["social"] != 1 || len(got) != 1 || got[0] != "+" {
		t.Fatalf("re-registered query inert: counts=%v events=%v", counts, got)
	}
}

func TestMultiEngineFanOutError(t *testing.T) {
	m, _ := multiFixture(t)
	// A starved query makes the fan-out fail with the query's name in the
	// error; queries evaluated before it keep their results.
	q := NewQuery(2)
	q.SetLabels(0, 0)
	q.SetLabels(1, 0)
	_ = q.AddEdge(0, 2, 1)
	// Budget 2 is enough to register against the small fixture graph but
	// not to evaluate the triggering insertion.
	if err := m.Register("starved", q, Options{WorkBudget: 2}); err != nil {
		t.Fatal(err)
	}
	counts, err := m.Insert(1, 2, 2)
	if err == nil {
		t.Fatal("starved query must abort the update")
	}
	if !errors.Is(err, ErrWorkBudget) {
		t.Fatalf("err = %v, want ErrWorkBudget", err)
	}
	if !strings.Contains(err.Error(), `"starved"`) {
		t.Fatalf("err = %v, want the failing query's name", err)
	}
	// payment and social are registered before starved, so their
	// evaluation completed; the partial counts are returned.
	if counts["social"] != 1 {
		t.Fatalf("partial counts = %v; earlier queries' results lost", counts)
	}
}

func TestMultiEngineNoOps(t *testing.T) {
	m, _ := multiFixture(t)
	// Duplicate insert and absent delete are no-ops across all queries.
	if counts, err := m.Insert(1, 0, 10); err != nil || counts != nil {
		t.Fatalf("dup insert: %v %v", counts, err)
	}
	if counts, err := m.Delete(9, 9, 9); err != nil || counts != nil {
		t.Fatalf("absent delete: %v %v", counts, err)
	}
	if _, err := m.Apply(Update{Op: 99}); err == nil {
		t.Fatal("unknown op must error")
	}
}

func TestMultiEngineVertexDeclaration(t *testing.T) {
	m, _ := multiFixture(t)
	// Declare a new Person mid-stream; it must become a usable candidate
	// for both queries.
	if _, err := m.Apply(DeclareVertex(3, 0)); err != nil {
		t.Fatal(err)
	}
	counts, err := m.Insert(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if counts["social"] != 1 {
		t.Fatalf("counts = %v; new vertex not wired into DCGs", counts)
	}
	// Declaring the same vertex again is a no-op.
	if _, err := m.Apply(DeclareVertex(3, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestMultiEngineRegisterMidStream(t *testing.T) {
	m, _ := multiFixture(t)
	if _, err := m.Insert(10, 1, 20); err != nil {
		t.Fatal(err)
	}
	// A query registered after updates sees the current graph as its g0.
	q := NewQuery(3)
	q.SetLabels(0, 0)
	q.SetLabels(1, 1)
	q.SetLabels(2, 1)
	_ = q.AddEdge(0, 0, 1)
	_ = q.AddEdge(1, 1, 2)
	var late int64
	if err := m.Register("late", q, Options{
		OnMatch: func(positive bool, _ []VertexID) { late++ },
	}); err != nil {
		t.Fatal(err)
	}
	init := m.InitialMatches()
	if init["late"] != 1 {
		t.Fatalf("late initial = %v", init)
	}
}
