package turboflux

import (
	"fmt"
	"time"

	"turboflux/internal/durable"
)

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Options configures the matching engine exactly as for NewEngine.
	Options

	// Fsync is the WAL sync policy: "always" (sync per update),
	// "interval" (default: sync at most once per FsyncInterval) or
	// "none" (sync only on Sync/Close).
	Fsync string
	// FsyncInterval is the "interval" policy period (default 100ms).
	FsyncInterval time.Duration
	// SegmentSize rotates the log once the active segment reaches this
	// many bytes (default 4 MiB).
	SegmentSize int64
	// ReplayBatch sets how many WAL-tail records recovery applies per
	// batched pass (default 1024; 1 selects the record-at-a-time path).
	ReplayBatch int

	// VertexLabels / EdgeLabels, when non-nil, become the engine's label
	// dictionaries. On a fresh store they are adopted as-is; on recovery
	// the snapshot's names are re-interned into them first and must agree
	// with any labels already interned (so patterns parsed through them
	// keep meaning the same labels across restarts).
	VertexLabels, EdgeLabels *Dict

	// Bootstrap is an optional initial-graph history (vertex declarations
	// and edge insertions). It is journaled and applied only when the
	// store is fresh; on recovery it is ignored, because the store already
	// contains it.
	Bootstrap []Update
}

// RecoveryInfo describes what OpenDurable found on disk.
type RecoveryInfo struct {
	// SnapshotLSN is the log position covered by the snapshot recovery
	// started from (0 when none existed).
	SnapshotLSN uint64
	// Replayed is the number of journaled updates re-applied on top.
	Replayed int
	// TruncatedBytes is the size of the torn or corrupt log tail
	// discarded on open.
	TruncatedBytes int
	// Fresh reports that the directory held no prior state.
	Fresh bool
}

// DurableEngine is an Engine whose update stream survives process
// crashes: every Insert, Delete and Apply is journaled to a checksummed
// write-ahead log before evaluation, and Compact writes an atomic
// snapshot of the data graph and label dictionaries. Reopening the same
// directory recovers the graph and resumes matching exactly where the
// surviving log prefix ends.
//
// Matches are not journaled — they are recomputed from state. A recovered
// engine reports the same matches for the same subsequent updates as one
// that never crashed (see TestDurableTranscriptEquivalence).
type DurableEngine struct {
	store *durable.Store
	eng   *Engine
	rec   RecoveryInfo
}

// OpenDurable opens (or creates) the durable store in dir, recovers the
// data graph from its newest valid snapshot plus the journaled tail, and
// builds a matching engine for q over the recovered graph.
func OpenDurable(dir string, q *Query, opt DurableOptions) (*DurableEngine, error) {
	pol, err := durable.ParsePolicy(opt.Fsync)
	if err != nil {
		return nil, err
	}
	st, err := durable.Open(dir, durable.Options{
		Fsync:        pol,
		FsyncEvery:   opt.FsyncInterval,
		SegmentSize:  opt.SegmentSize,
		ReplayBatch:  opt.ReplayBatch,
		VertexLabels: opt.VertexLabels,
		EdgeLabels:   opt.EdgeLabels,
	})
	if err != nil {
		return nil, err
	}
	vd, err := adoptDict(opt.VertexLabels, st.VertexLabels(), "vertex")
	if err != nil {
		st.Close() //tf:unchecked-ok already failing
		return nil, err
	}
	ed, err := adoptDict(opt.EdgeLabels, st.EdgeLabels(), "edge")
	if err != nil {
		st.Close() //tf:unchecked-ok already failing
		return nil, err
	}
	st.SetDicts(vd, ed)

	if st.Recovery().Fresh {
		for _, u := range opt.Bootstrap {
			if _, err := st.Append(u); err != nil {
				st.Close() //tf:unchecked-ok already failing
				return nil, err
			}
			u.Apply(st.Graph())
		}
	}

	eng, err := NewEngine(st.Graph(), q, opt.Options)
	if err != nil {
		st.Close() //tf:unchecked-ok already failing
		return nil, err
	}
	rec := st.Recovery()
	return &DurableEngine{
		store: st,
		eng:   eng,
		rec: RecoveryInfo{
			SnapshotLSN:    rec.SnapshotLSN,
			Replayed:       rec.Replayed,
			TruncatedBytes: rec.TruncatedBytes,
			Fresh:          rec.Fresh,
		},
	}, nil
}

// adoptDict merges the recovered dictionary names into the caller's
// dictionary (when one was supplied) and returns the dictionary the
// engine should use. Re-interning the recovered names in order must
// reproduce the recovered labels, otherwise the caller's labels and the
// persisted graph disagree.
func adoptDict(user, recovered *Dict, kind string) (*Dict, error) {
	if user == nil || user == recovered {
		return recovered, nil
	}
	for i := 0; i < recovered.Len(); i++ {
		name := recovered.Name(Label(i))
		if got := user.Intern(name); got != Label(i) {
			return nil, fmt.Errorf(
				"turboflux: %s label dictionary mismatch: recovered %q as label %d, caller has it as %d",
				kind, name, i, got)
		}
	}
	return user, nil
}

// Recovery returns what OpenDurable found on disk.
func (d *DurableEngine) Recovery() RecoveryInfo { return d.rec }

// InitialMatches reports every match present in the recovered graph
// through OnMatch and returns their count. Call it at most once, before
// streaming updates.
func (d *DurableEngine) InitialMatches() int64 { return d.eng.InitialMatches() }

// Insert journals an edge insertion and then applies it, returning the
// number of positive matches it produced.
func (d *DurableEngine) Insert(from VertexID, l Label, to VertexID) (int64, error) {
	if _, err := d.store.Append(Insert(from, l, to)); err != nil {
		return 0, err
	}
	return d.eng.Insert(from, l, to)
}

// Delete journals an edge deletion and then applies it, returning the
// number of negative matches it produced.
func (d *DurableEngine) Delete(from VertexID, l Label, to VertexID) (int64, error) {
	if _, err := d.store.Append(Delete(from, l, to)); err != nil {
		return 0, err
	}
	return d.eng.Delete(from, l, to)
}

// Apply journals one stream update and then applies it.
func (d *DurableEngine) Apply(u Update) (int64, error) {
	if _, err := d.store.Append(u); err != nil {
		return 0, err
	}
	return d.eng.Apply(u)
}

// ApplyAll journals and applies a batch of updates, returning the total
// match count.
func (d *DurableEngine) ApplyAll(ups []Update) (int64, error) {
	var total int64
	for _, u := range ups {
		n, err := d.Apply(u)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// ApplyBatch journals the whole batch as one log write, then applies and
// evaluates every update, aggregating per-update errors like
// Engine.ApplyBatch. A journaling failure aborts before any update is
// applied, preserving write-ahead order for the batch as a whole.
func (d *DurableEngine) ApplyBatch(ups []Update) (int64, error) {
	if _, _, err := d.store.AppendBatch(ups); err != nil {
		return 0, err
	}
	return d.eng.ApplyBatch(ups)
}

// Compact writes a fresh snapshot covering the whole journaled history
// and drops the log segments it makes obsolete, bounding both recovery
// time and disk usage.
func (d *DurableEngine) Compact() error { return d.store.Compact() }

// Sync forces journaled updates to stable storage regardless of the
// fsync policy.
func (d *DurableEngine) Sync() error { return d.store.Sync() }

// Close syncs and closes the journal. The engine is unusable afterwards;
// reopen the directory with OpenDurable to resume.
func (d *DurableEngine) Close() error { return d.store.Close() }

// LSN returns the log position of the last journaled update.
func (d *DurableEngine) LSN() uint64 { return d.store.LSN() }

// Graph returns the engine's data graph. Treat it as read-only.
func (d *DurableEngine) Graph() *Graph { return d.eng.Graph() }

// VertexLabels returns the live vertex-label dictionary.
func (d *DurableEngine) VertexLabels() *Dict { return d.store.VertexLabels() }

// EdgeLabels returns the live edge-label dictionary.
func (d *DurableEngine) EdgeLabels() *Dict { return d.store.EdgeLabels() }

// Explain renders the engine's execution plan for diagnostics.
func (d *DurableEngine) Explain() string { return d.eng.Explain() }

// Stats returns a snapshot of the engine's counters.
func (d *DurableEngine) Stats() Stats { return d.eng.Stats() }
