//go:build !race

package turboflux

import (
	"testing"
)

// allocGuardSetup builds a MultiEngine whose hot paths can run with zero
// coordinator allocations: two queries sharing edge label 0 (so every
// update pools both engines), vertex-label constraints no data vertex
// satisfies (so evaluation never matches and no counts map is built),
// and a ring of resident label-0 edges keeping every adjacency map entry
// non-empty (so the churn edges never trigger entry-drop/recreate or
// compaction allocations).
func allocGuardSetup(t *testing.T, workers int) (*MultiEngine, []Update, []Update) {
	t.Helper()
	const nVerts = 20
	g := NewGraph()
	for v := VertexID(1); v <= nVerts; v++ {
		g.EnsureVertex(v, 0)
	}
	for v := VertexID(1); v <= nVerts; v++ {
		if !g.InsertEdge(v, 0, v%nVerts+1) {
			t.Fatalf("resident edge %d", v)
		}
	}
	m := NewMultiEngine(g)
	t.Cleanup(func() { m.Close() }) //tf:unchecked-ok test teardown
	m.SetFanOutWorkers(workers)
	mkQ := func(rev bool) *Query {
		q := NewQuery(2)
		// Vertex label 9 is unused by the data, so the queries are
		// relevant to every label-0 update but can never match.
		q.SetLabels(0, 9)
		q.SetLabels(1, 9)
		from, to := VertexID(0), VertexID(1)
		if rev {
			from, to = 1, 0
		}
		if err := q.AddEdge(from, 0, to); err != nil {
			t.Fatal(err)
		}
		return q
	}
	if err := m.Register("fwd", mkQ(false), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("rev", mkQ(true), Options{}); err != nil {
		t.Fatal(err)
	}
	var ins, dels []Update
	for i := 0; i < 8; i++ {
		from := VertexID(1 + i)
		to := VertexID(3 + i)
		ins = append(ins, Insert(from, 0, to))
		dels = append(dels, Delete(from, 0, to))
	}
	return m, ins, dels
}

// TestApplyThunkPathAllocs guards the per-update fan-out: once warm, an
// insert/delete cycle dispatched through the prebuilt eval thunks must
// not allocate on the coordinator side at all.
func TestApplyThunkPathAllocs(t *testing.T) {
	m, ins, dels := allocGuardSetup(t, 4)
	cycle := func() {
		for _, u := range ins {
			if counts, err := m.Apply(u); err != nil || counts != nil {
				t.Fatalf("insert: counts=%v err=%v", counts, err)
			}
		}
		for _, u := range dels {
			if counts, err := m.Apply(u); err != nil || counts != nil {
				t.Fatalf("delete: counts=%v err=%v", counts, err)
			}
		}
	}
	cycle() // warm the pool, scratch slices and adjacency capacities
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("per-update thunk path: %v allocs per insert/delete cycle, want 0", avg)
	}
}

// TestApplyBatchPathAllocs guards the batch pipeline: once the run
// scheduler's scratch (engaged bitset, run-edge map, pair/slot slices)
// is warm, applying whole batches must not allocate on the coordinator
// side — the property the per-batch scratch reuse exists for.
func TestApplyBatchPathAllocs(t *testing.T) {
	m, ins, dels := allocGuardSetup(t, 4)
	cycle := func() {
		if counts, err := m.ApplyBatch(ins); err != nil || counts != nil {
			t.Fatalf("insert batch: counts=%v err=%v", counts, err)
		}
		if counts, err := m.ApplyBatch(dels); err != nil || counts != nil {
			t.Fatalf("delete batch: counts=%v err=%v", counts, err)
		}
	}
	cycle() // warm scratch structures
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("batch path: %v allocs per batch pair, want 0", avg)
	}
}

// TestApplyBatchBoundaryAllocs extends the batch guard to the boundary
// hook the server uses for sequence stamping: invoking it per update
// must not force any per-update allocation either.
func TestApplyBatchBoundaryAllocs(t *testing.T) {
	m, ins, dels := allocGuardSetup(t, 4)
	var seq uint64
	boundary := func(int) { seq++ }
	cycle := func() {
		if _, err := m.ApplyBatchFunc(ins, boundary); err != nil {
			t.Fatal(err)
		}
		if _, err := m.ApplyBatchFunc(dels, boundary); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("batch path with boundary hook: %v allocs per batch pair, want 0", avg)
	}
}
