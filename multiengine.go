package turboflux

import (
	"fmt"
	"sort"

	"turboflux/internal/core"
	"turboflux/internal/stream"
)

// MultiEngine runs several continuous queries over one shared data graph,
// the deployment shape of the paper's motivating applications (a fraud
// team monitors many ring patterns, an IDS many attack signatures). Each
// registered query maintains its own DCG; the data graph is mutated once
// per update and every engine evaluates against it.
//
// MultiEngine is not safe for concurrent use, matching Engine.
type MultiEngine struct {
	g       *Graph
	engines map[string]*core.Engine
	order   []string // registration order, for deterministic fan-out
}

// NewMultiEngine wraps the initial data graph g0. The MultiEngine takes
// ownership of g0: route every mutation through it.
func NewMultiEngine(g0 *Graph) *MultiEngine {
	return &MultiEngine{g: g0, engines: make(map[string]*core.Engine)}
}

// Register adds a continuous query under the given name, building its DCG
// over the current graph state. Registering a duplicate name fails.
func (m *MultiEngine) Register(name string, q *Query, opt Options) error {
	if _, dup := m.engines[name]; dup {
		return fmt.Errorf("turboflux: query %q already registered", name)
	}
	copt := core.DefaultOptions()
	copt.Semantics = opt.Semantics
	copt.Search = opt.Search
	copt.OnMatch = opt.OnMatch
	copt.WorkBudget = opt.WorkBudget
	eng, err := core.New(m.g, q, copt)
	if err != nil {
		return err
	}
	m.engines[name] = eng
	m.order = append(m.order, name)
	return nil
}

// Unregister removes a query and reports whether it was registered.
func (m *MultiEngine) Unregister(name string) bool {
	if _, ok := m.engines[name]; !ok {
		return false
	}
	delete(m.engines, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return true
}

// Queries returns the registered query names in registration order.
func (m *MultiEngine) Queries() []string {
	return append([]string(nil), m.order...)
}

// InitialMatches reports each registered query's matches over the current
// graph and returns per-query counts. Queries evaluate in registration
// order so the interleaving of OnMatch deliveries across queries is
// deterministic, matching the fan-out order of Insert/Delete.
func (m *MultiEngine) InitialMatches() map[string]int64 {
	out := make(map[string]int64, len(m.engines))
	for _, name := range m.order {
		out[name] = m.engines[name].InitialMatches()
	}
	return out
}

// Insert applies one edge insertion to the shared graph and evaluates
// every registered query. It returns per-query positive-match counts
// (only non-zero entries). Duplicate insertions are no-ops.
func (m *MultiEngine) Insert(from VertexID, l Label, to VertexID) (map[string]int64, error) {
	if !m.g.InsertEdge(from, l, to) {
		return nil, nil
	}
	return m.fanOut(func(e *core.Engine) (int64, error) {
		return e.EvalInsertedEdge(from, l, to)
	})
}

// Delete applies one edge deletion: every engine reports its negative
// matches first, then the edge is removed from the shared graph.
func (m *MultiEngine) Delete(from VertexID, l Label, to VertexID) (map[string]int64, error) {
	if !m.g.HasEdge(from, l, to) {
		return nil, nil
	}
	counts, err := m.fanOut(func(e *core.Engine) (int64, error) {
		return e.EvalBeforeDelete(from, l, to)
	})
	m.g.DeleteEdge(from, l, to)
	return counts, err
}

// Apply applies one stream update.
func (m *MultiEngine) Apply(u Update) (map[string]int64, error) {
	switch u.Op {
	case stream.OpInsert:
		return m.Insert(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpDelete:
		return m.Delete(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpVertex:
		if !m.g.HasVertex(u.Vertex) {
			m.g.EnsureVertex(u.Vertex, u.Labels...)
			for _, name := range m.order {
				m.engines[name].NotifyVertexAdded(u.Vertex)
			}
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("turboflux: unknown update op %d", u.Op)
	}
}

func (m *MultiEngine) fanOut(eval func(*core.Engine) (int64, error)) (map[string]int64, error) {
	var counts map[string]int64
	for _, name := range m.order {
		n, err := eval(m.engines[name])
		if err != nil {
			return counts, fmt.Errorf("query %q: %w", name, err)
		}
		if n != 0 {
			if counts == nil {
				counts = make(map[string]int64)
			}
			counts[name] = n
		}
	}
	return counts, nil
}

// Graph returns the shared data graph. Treat it as read-only.
func (m *MultiEngine) Graph() *Graph { return m.g }

// Stats returns a per-query snapshot of engine counters, keyed by name.
func (m *MultiEngine) Stats() map[string]Stats {
	out := make(map[string]Stats, len(m.engines))
	//tf:unordered-ok reads counters into a map; no matches are emitted
	for name, e := range m.engines {
		out[name] = Stats{
			PositiveMatches:   e.PositiveCount(),
			NegativeMatches:   e.NegativeCount(),
			DCGEdges:          e.DCG().NumEdges(),
			IntermediateBytes: e.IntermediateSizeBytes(),
		}
	}
	return out
}

// TotalIntermediateBytes sums the DCG sizes of all registered queries.
func (m *MultiEngine) TotalIntermediateBytes() int64 {
	var t int64
	names := make([]string, 0, len(m.engines))
	for n := range m.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t += m.engines[n].IntermediateSizeBytes()
	}
	return t
}
