package turboflux

import (
	"errors"
	"fmt"
	"runtime"

	"turboflux/internal/core"
	"turboflux/internal/fanout"
	"turboflux/internal/graph"
	"turboflux/internal/mqo"
	"turboflux/internal/stream"
)

// FanOutStats is a snapshot of the multi-query fan-out counters: how many
// per-engine evaluations ran, how many were elided by label-relevance
// routing, and how the worker pool was utilized. See fanout.Stats for the
// field meanings.
type FanOutStats = fanout.Stats

// mslot is one registered query's fan-out state. count/err are the
// result cells of the parallel window: each is written by exactly one
// pool worker (the one evaluating this engine) and read by the
// coordinator after the barrier.
type mslot struct {
	name      string
	eng       *core.Engine
	user      core.MatchFunc           // caller's OnMatch, nil if none
	labels    map[graph.Label]struct{} // edge labels the query mentions
	task      func()                   // persistent pool task: eval this slot
	buf       fanout.EmissionBuffer
	buffering bool // true inside the parallel window; routes OnMatch to buf
	count     int64
	err       error

	// Batch-run state (ApplyBatch). pos is the slot's index in the
	// registration order, addressing the coordinator's routing bitset.
	// runIdx is the slot's sub-sequence of the current run: the batch
	// update indices it must evaluate, walked in order by batchTask with
	// per-update results in runN/runErr (parallel slices, written by the
	// worker inside the run window, read by the coordinator after the
	// barrier). All three are reused scratch.
	pos       int
	batchTask func() // persistent pool task: walk runIdx against the batch
	runIdx    []int32
	runN      []int64
	runErr    []error

	// sub is the slot's refcounted sub-pattern (DESIGN.md §17), nil when
	// the query's options are unshareable or sharing is disabled. While
	// the sub-pattern has a single member the slot's engine stays private;
	// at two members it is promoted to shared-DCG evaluation.
	sub *subpat
}

// subpat is the evaluation state of one distinct sub-pattern (spanning
// tree shape): the member slots sharing it, and — once two or more
// members exist — the maintainer engine owning the shared DCG. Members
// replay read-only against the maintained state, so within one update a
// sub-pattern is a single-writer unit: the maintainer applies the DCG
// transitions exactly once (before member replays on insertion, after
// them on deletion) and the members' searches parallelize freely.
type subpat struct {
	entry   *mqo.Entry
	members []*mslot // registration order

	// maint owns the shared DCG and applies all transitions; nil while
	// the sub-pattern has a single (private) member.
	maint *core.Engine

	// treeLabels[l] reports whether l is a spanning-tree edge label of
	// the sub-pattern: the updates that actually transition the shared
	// DCG. Dense by label, built at promotion.
	treeLabels []bool

	// task is the persistent pool task of the parallel window: maintain
	// plus replay the engaged members, sequenced per update direction.
	task func()

	// Scratch of the current dispatch: the members engaged by the update,
	// valid when engEpoch matches the coordinator's epoch (uint64 so it
	// never wraps into a stale match).
	engagedMembers []*mslot
	engEpoch       uint64
	runMark        uint32 // batch-run epoch: maintenance already scheduled
}

// anyMemberMentions reports whether any member's query mentions edge
// label l (i.e. whether the sub-pattern will be engaged by an update
// carrying it). Only used off the common path.
func (sp *subpat) anyMemberMentions(l graph.Label) bool {
	for _, s := range sp.members {
		if _, ok := s.labels[l]; ok {
			return true
		}
	}
	return false
}

// treeRelevant reports whether label l transitions this sub-pattern's
// shared DCG.
//
//tf:hotpath
func (sp *subpat) treeRelevant(l graph.Label) bool {
	return int(l) < len(sp.treeLabels) && sp.treeLabels[l]
}

// MultiEngine runs several continuous queries over one shared data graph,
// the deployment shape of the paper's motivating applications (a fraud
// team monitors many ring patterns, an IDS many attack signatures). Each
// registered query maintains its own DCG; the data graph is mutated once
// per update and every engine evaluates against it.
//
// Fan-out is parallel by default: a persistent worker pool (size
// SetFanOutWorkers, default GOMAXPROCS; 1 selects the sequential path)
// evaluates the engines relevant to each update concurrently against the
// frozen post-mutation graph, with OnMatch emissions buffered per engine
// and replayed in registration order after the barrier — so observable
// behavior (transcripts, counts, errors) is identical to sequential
// evaluation. Engines whose queries cannot mention the updated edge's
// label are skipped entirely (their evaluation is a structural no-op).
//
// MultiEngine is not safe for concurrent use, matching Engine. The
// network server serializes all access through its engine-owner
// goroutine (machine-checked by turboflux-vet's actor-confinement
// analyzer).
//
//tf:actor-owned
type MultiEngine struct {
	g     *Graph
	slots map[string]*mslot
	order []*mslot // registration order, for deterministic fan-out
	pool  *fanout.Pool

	// byLabel indexes the slots whose queries mention each edge label, in
	// registration order — the routing decision for an update is then one
	// slice index instead of a scan over every registered query. Labels are
	// dense small ints, so a slice beats a map on the hot path. Rebuilt on
	// Register/Unregister.
	byLabel [][]*mslot

	evals   uint64 // engine evaluations run
	skipped uint64 // evaluations elided by label-relevance routing

	// Reused scratch for the parallel window (no per-update allocation).
	tasks []func()
	errs  []error

	// The pending update's edge plus two persistent eval thunks over it;
	// curEval points at insEval or delEval for the current update, so the
	// hot path never allocates a closure.
	pending Edge
	insEval func(*core.Engine) (int64, error)
	delEval func(*core.Engine) (int64, error)
	curEval func(*core.Engine) (int64, error)

	// Batch pipeline state (ApplyBatch): the batch being evaluated (read
	// by the slots' batchTask thunks) and reused per-run scheduling
	// scratch — see DESIGN.md §12. engaged is the routing bitset over
	// registration positions; runEdges detects same-edge conflicts via an
	// epoch so it is never cleared on the hot path; runPairs lists the
	// (update index, slot) evaluations of the current run in batch order;
	// runDels holds the run's deletions, applied to the graph after the
	// barrier (Algorithm 2: deletions evaluate before removal).
	batch       []stream.Update
	engaged     []uint64
	runEdges    map[Edge]uint32
	edgeEpoch   uint32
	runPairs    []runPair
	runSlots    []*mslot
	runDels     []Edge
	batchCounts map[string]int64
	batchErrs   []error

	// shardTasks are prebuilt per-worker composite tasks: shard k walks
	// runSlots[k], runSlots[k+W], ... calling each slot's batchTask. When
	// a run engages more slots than the pool has workers, dispatching one
	// shard per worker instead of one task per slot caps the barrier at
	// W-1 channel handoffs per run. Rebuilt when the pool is resized.
	shardTasks []func()

	// Multi-query optimization state (DESIGN.md §17): the sub-pattern
	// registry, the promoted (maintainer-owning) sub-patterns in promotion
	// order, and the dispatch epoch stamping subpat scratch. sharing gates
	// whether future registrations participate; runSubs lists the batch
	// run's scheduled maintenance (sub-pattern, update index) pairs.
	reg          *mqo.Registry
	subs         []*subpat
	unitEpoch    uint64
	sharing      bool
	pendingPos   bool // direction of the pending single update
	runSubs      []runSub
	maintEvals   uint64 // maintainer evaluations run
	savedEvals   uint64 // member maintenance evaluations avoided by sharing
	sharedRelays uint64 // member replays against a shared DCG
}

// runSub schedules one maintenance evaluation of a batch run: sp's
// maintainer processes the update at idx (before member replays for
// insertions, after them for deletions).
type runSub struct {
	sp  *subpat
	idx int32
}

// runPair is one scheduled evaluation of a run: slot evaluates the batch
// update at idx, whose results land in the slot's k-th run cells.
type runPair struct {
	idx  int32
	k    int32
	slot *mslot
}

// NewMultiEngine wraps the initial data graph g0. The MultiEngine takes
// ownership of g0: route every mutation through it.
func NewMultiEngine(g0 *Graph) *MultiEngine {
	m := &MultiEngine{
		g:        g0,
		slots:    make(map[string]*mslot),
		pool:     fanout.New(0),
		runEdges: make(map[Edge]uint32, 64),
		reg:      mqo.NewRegistry(),
		sharing:  true,
	}
	m.insEval = func(e *core.Engine) (int64, error) {
		return e.EvalInsertedEdge(m.pending.From, m.pending.Label, m.pending.To)
	}
	m.delEval = func(e *core.Engine) (int64, error) {
		return e.EvalBeforeDelete(m.pending.From, m.pending.Label, m.pending.To)
	}
	m.buildShards()
	return m
}

// buildShards rebuilds the per-worker composite batch tasks for the
// current pool size. Each engaged slot belongs to exactly one shard, so
// its emission buffer and run scratch stay single-writer.
func (m *MultiEngine) buildShards() {
	w := m.pool.Workers()
	m.shardTasks = m.shardTasks[:0]
	for k := 0; k < w; k++ {
		k := k
		m.shardTasks = append(m.shardTasks, func() {
			for j := k; j < len(m.runSlots); j += w {
				m.runSlots[j].batchTask()
			}
		})
	}
}

// SetFanOutWorkers resizes the fan-out worker pool; n <= 0 means
// GOMAXPROCS and 1 selects the sequential path (today's behavior,
// evaluating every engine inline with direct OnMatch delivery). Safe to
// call between updates, not during one.
func (m *MultiEngine) SetFanOutWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if m.pool.Workers() == n {
		return
	}
	m.pool.Close()
	m.pool = fanout.New(n)
	m.buildShards()
}

// FanOutWorkers returns the configured fan-out pool size.
func (m *MultiEngine) FanOutWorkers() int { return m.pool.Workers() }

// FanOutStats snapshots the fan-out counters.
func (m *MultiEngine) FanOutStats() FanOutStats {
	st := m.pool.Stats()
	st.Evals = m.evals
	st.Skipped = m.skipped
	return st
}

// Close releases the fan-out worker pool. The engine itself stays
// usable — subsequent updates evaluate inline — so Close is only about
// reclaiming the pool goroutines. It always returns nil.
func (m *MultiEngine) Close() error {
	m.pool.Close()
	return nil
}

// SetSharing enables or disables sub-pattern sharing (DESIGN.md §17) for
// FUTURE registrations; already-registered queries keep their mode. On
// by default. Disabling before registering anything yields the pre-MQO
// private-DCG-per-query behavior — the baseline the equivalence tests
// and the mqo benchmark compare against.
func (m *MultiEngine) SetSharing(on bool) { m.sharing = on }

// Register adds a continuous query under the given name. The query's
// spanning tree is canonicalized into a sub-pattern key: the first
// registration of a shape builds a private DCG over the current graph
// state, the second promotes that DCG to shared (one maintainer, members
// replay read-only), and later ones join it without any DCG construction
// at all. Unshareable options (work budget, ablations, WCO search) keep
// the query fully private. Registering a duplicate name fails.
func (m *MultiEngine) Register(name string, q *Query, opt Options) error {
	if _, dup := m.slots[name]; dup {
		return fmt.Errorf("turboflux: query %q already registered", name)
	}
	s := &mslot{name: name, user: opt.OnMatch, labels: queryEdgeLabels(q)}
	copt := core.DefaultOptions()
	copt.Semantics = opt.Semantics
	copt.Search = opt.Search
	copt.WorkBudget = opt.WorkBudget
	if s.user != nil {
		// Inside the parallel window emissions go to the slot's buffer
		// (written only by the worker evaluating this engine); otherwise
		// straight through, preserving the sequential path exactly.
		copt.OnMatch = func(positive bool, mapping []graph.VertexID) {
			if s.buffering {
				s.buf.Record(positive, mapping)
			} else {
				s.user(positive, mapping)
			}
		}
	}
	tree, err := core.BuildTree(m.g, q, copt)
	if err != nil {
		return err
	}
	if m.sharing && core.OptionsShareable(copt) {
		ent, created := m.reg.Acquire(mqo.KeyOf(q, tree))
		if created {
			// First member of this shape: private DCG until a second joins.
			sp := &subpat{entry: ent}
			ent.Payload = sp
			eng, err := core.NewWithTree(m.g, q, tree, copt, nil)
			if err != nil {
				m.reg.Release(ent)
				return err
			}
			s.eng = eng
			sp.members = append(sp.members, s)
			s.sub = sp
		} else {
			sp := ent.Payload.(*subpat)
			if sp.maint == nil {
				m.promote(sp)
			}
			eng, err := core.NewWithTree(m.g, q, tree, copt, sp.maint.DCG())
			if err != nil {
				m.reg.Release(ent)
				return err
			}
			eng.ShareDCG()
			s.eng = eng
			sp.members = append(sp.members, s)
			s.sub = sp
		}
	} else {
		eng, err := core.NewWithTree(m.g, q, tree, copt, nil)
		if err != nil {
			return err
		}
		s.eng = eng
	}
	s.task = func() { s.count, s.err = m.curEval(s.eng) }
	s.batchTask = func() {
		for _, idx := range s.runIdx {
			u := m.batch[idx]
			s.buf.BeginUpdate(int(idx))
			var n int64
			var err error
			if u.Op == stream.OpInsert {
				n, err = s.eng.EvalInsertedEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
			} else {
				n, err = s.eng.EvalBeforeDelete(u.Edge.From, u.Edge.Label, u.Edge.To)
			}
			s.runN = append(s.runN, n)
			s.runErr = append(s.runErr, err)
		}
	}
	m.slots[name] = s
	m.order = append(m.order, s)
	m.indexSlot(s)
	return nil
}

// promote flips a single-member sub-pattern to shared evaluation: the
// sole member's DCG is adopted by a fresh maintainer engine and the
// member switches to read-only replay. Incremental maintenance keeps the
// DCG at the declarative fixpoint of the current graph, so the adopted
// state is exactly what a fresh build would produce — joining members
// compute their matching orders from it directly.
func (m *MultiEngine) promote(sp *subpat) {
	donor := sp.members[0]
	donor.eng.ShareDCG()
	sp.maint = core.NewMaintainer(donor.eng)
	tree := donor.eng.Tree()
	for u := 0; u < tree.Q.NumVertices(); u++ {
		if graph.VertexID(u) == tree.Root {
			continue
		}
		l := tree.ParentEdge[u].Label
		for int(l) >= len(sp.treeLabels) {
			sp.treeLabels = append(sp.treeLabels, false)
		}
		sp.treeLabels[l] = true
	}
	sp.task = func() { m.runSubUnit(sp) }
	m.subs = append(m.subs, sp)
}

// demote returns a sub-pattern to single-member private evaluation: the
// surviving member takes DCG ownership back and the maintainer is
// dropped. The survivor's rootSeen cache may have missed vertices the
// maintainer settled — missing entries just re-probe on the next update.
func (m *MultiEngine) demote(sp *subpat) {
	sp.members[0].eng.UnshareDCG()
	sp.maint = nil
	sp.task = nil
	sp.treeLabels = sp.treeLabels[:0]
	for i, t := range m.subs {
		if t == sp {
			m.subs = append(m.subs[:i], m.subs[i+1:]...)
			break
		}
	}
}

// indexSlot appends a newly registered slot to the label index — O(number
// of labels the query mentions), keeping registration of N queries O(N)
// total instead of the O(N²) a full per-registration rebuild costs.
// Appending preserves the per-label registration order because the new
// slot's position is the maximum.
func (m *MultiEngine) indexSlot(s *mslot) {
	s.pos = len(m.order) - 1
	for l := range s.labels { //tf:unordered-ok each label's list keeps registration order; membership is per label
		for int(l) >= len(m.byLabel) {
			m.byLabel = append(m.byLabel, nil)
		}
		m.byLabel[l] = append(m.byLabel[l], s)
	}
	for len(m.order) > 64*len(m.engaged) {
		m.engaged = append(m.engaged, 0)
	}
}

// unindexSlot removes an unregistered slot from the label index and
// renumbers the positions of the slots registered after it, preserving
// per-label registration order.
func (m *MultiEngine) unindexSlot(s *mslot) {
	for l := range s.labels { //tf:unordered-ok per-label removal; each list's internal order is preserved
		list := m.byLabel[l]
		for i, t := range list {
			if t == s {
				m.byLabel[l] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	for i, t := range m.order {
		t.pos = i
	}
	for j := range m.engaged {
		m.engaged[j] = 0
	}
}

// queryEdgeLabels collects the set of edge labels a query mentions; an
// update whose label is outside this set cannot extend or retract any of
// the query's matches.
func queryEdgeLabels(q *Query) map[graph.Label]struct{} {
	out := make(map[graph.Label]struct{}, q.NumEdges())
	for _, e := range q.Edges() {
		out[e.Label] = struct{}{}
	}
	return out
}

// Unregister removes a query and reports whether it was registered. A
// shared sub-pattern member releases its reference: at one remaining
// member the sub-pattern demotes back to private evaluation, at zero the
// registry entry is dropped and the shared DCG is garbage.
func (m *MultiEngine) Unregister(name string) bool {
	s, ok := m.slots[name]
	if !ok {
		return false
	}
	delete(m.slots, name)
	for i, t := range m.order {
		if t == s {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.unindexSlot(s)
	if sp := s.sub; sp != nil {
		for i, t := range sp.members {
			if t == s {
				sp.members = append(sp.members[:i], sp.members[i+1:]...)
				break
			}
		}
		left := m.reg.Release(sp.entry)
		if left == 1 && sp.maint != nil {
			m.demote(sp)
		}
	}
	return true
}

// Queries returns the registered query names in registration order.
func (m *MultiEngine) Queries() []string {
	out := make([]string, len(m.order))
	for i, s := range m.order {
		out[i] = s.name
	}
	return out
}

// InitialMatches reports each registered query's matches over the current
// graph and returns per-query counts. Queries evaluate in registration
// order so the interleaving of OnMatch deliveries across queries is
// deterministic, matching the fan-out order of Insert/Delete.
func (m *MultiEngine) InitialMatches() map[string]int64 {
	out := make(map[string]int64, len(m.order))
	for _, s := range m.order {
		out[s.name] = s.eng.InitialMatches()
	}
	return out
}

// Insert applies one edge insertion to the shared graph and evaluates
// every registered query. It returns per-query positive-match counts
// (only non-zero entries). Duplicate insertions are no-ops.
//
// If any engine fails (e.g. exhausts its work budget), the remaining
// engines are still evaluated and the errors are aggregated; see fanOut.
func (m *MultiEngine) Insert(from VertexID, l Label, to VertexID) (map[string]int64, error) {
	newFrom := !m.g.HasVertex(from)
	newTo := to != from && !m.g.HasVertex(to)
	if !m.g.InsertEdge(from, l, to) {
		return nil, nil
	}
	var created [2]VertexID
	nc := 0
	if newFrom {
		created[nc] = from
		nc++
	}
	if newTo {
		created[nc] = to
		nc++
	}
	m.pending = Edge{From: from, Label: l, To: to}
	m.curEval = m.insEval
	m.pendingPos = true
	return m.fanOut(l, created[:nc])
}

// Delete applies one edge deletion: every engine reports its negative
// matches first, then the edge is removed from the shared graph. As for
// Insert, an engine failure does not stop the fan-out, and the edge is
// removed regardless so the graph never diverges from the stream.
func (m *MultiEngine) Delete(from VertexID, l Label, to VertexID) (map[string]int64, error) {
	if !m.g.HasEdge(from, l, to) {
		return nil, nil
	}
	m.pending = Edge{From: from, Label: l, To: to}
	m.curEval = m.delEval
	m.pendingPos = false
	counts, err := m.fanOut(l, nil)
	m.g.DeleteEdge(from, l, to)
	return counts, err
}

// Apply applies one stream update.
func (m *MultiEngine) Apply(u Update) (map[string]int64, error) {
	switch u.Op {
	case stream.OpInsert:
		return m.Insert(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpDelete:
		return m.Delete(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpVertex:
		if !m.g.HasVertex(u.Vertex) {
			m.g.EnsureVertex(u.Vertex, u.Labels...)
			m.notifyVertexAdded(u.Vertex)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("turboflux: unknown update op %d", u.Op)
	}
}

// notifyVertexAdded routes root-candidate bookkeeping for a new vertex:
// every slot (shared members no-op — their DCG is not theirs to touch)
// plus every maintainer, which settles the vertex once per shared
// sub-pattern instead of once per member.
func (m *MultiEngine) notifyVertexAdded(v VertexID) {
	for _, s := range m.order {
		s.eng.NotifyVertexAdded(v)
	}
	for _, sp := range m.subs {
		sp.maint.NotifyVertexAdded(v)
	}
}

// ApplyBatch applies a whole batch of stream updates with batched
// evaluation: label routing, worker dispatch and the ordered emission
// replay are amortized over runs of consecutive updates instead of paid
// per update (DESIGN.md §12). Observable behavior — the OnMatch
// transcript of every query, the aggregated per-query counts, and the
// final graph — is byte-identical to applying the batch one update at a
// time with Apply, with one exception: a failing update does not stop
// the batch. Every update is applied and evaluated, and the per-update
// errors are aggregated with errors.Join, each wrapped as `update i`
// (plus the query name), so errors.Is still detects ErrWorkBudget.
//
// The returned counts map aggregates per-query match counts over the
// whole batch (non-zero entries only).
func (m *MultiEngine) ApplyBatch(ups []stream.Update) (map[string]int64, error) {
	return m.ApplyBatchFunc(ups, nil)
}

// ApplyBatchFunc is ApplyBatch with a per-update boundary hook: when
// boundary is non-nil it is invoked exactly once per batch index, in
// ascending order, after every OnMatch emission of that update has been
// delivered and before any emission of a later update — the hook a
// caller needs to stamp per-update sequence numbers onto emissions (the
// network server does exactly that). A batch of one delegates to the
// per-update path.
//
//tf:hotpath
func (m *MultiEngine) ApplyBatchFunc(ups []stream.Update, boundary func(i int)) (map[string]int64, error) {
	if len(ups) == 0 {
		return nil, nil
	}
	if len(ups) == 1 {
		counts, err := m.Apply(ups[0])
		if err != nil {
			err = fmt.Errorf("update 0: %w", err) //tf:alloc-ok error path
		}
		if boundary != nil {
			boundary(0)
		}
		return counts, err
	}
	m.batch = ups
	m.batchCounts = nil
	m.batchErrs = m.batchErrs[:0]
	for i := 0; i < len(ups); {
		i = m.scheduleRun(i, boundary)
	}
	m.batch = nil
	counts := m.batchCounts
	m.batchCounts = nil
	errs := m.batchErrs
	m.batchErrs = errs[:0] // errors.Join copies; keep the backing array
	return counts, errors.Join(errs...)
}

// maxRunEdges caps the size of the epoch-keyed conflict map; past it the
// map is reallocated rather than accumulating stale edges forever.
const maxRunEdges = 1 << 15

// scheduleRun builds and executes one run: the longest prefix of
// ups[start:] in which every registered engine has at most one relevant
// update and no two updates touch the same edge. Within such a run each
// engine's evaluation observes exactly the graph state sequential
// evaluation would show it — an engine only reads adjacency through its
// query's edge labels, and its single relevant update is the only batch
// update carrying one of those labels — so all of the run's evaluations
// can share one frozen-graph window and one pool dispatch. Edge
// insertions are pre-applied in batch order as the run is built;
// deletions evaluate inside the window and mutate the graph after it
// (the paper's Algorithm 2 order). Updates that create vertices (fresh
// declarations, inserts auto-creating an endpoint) run solo through the
// per-update path so engine vertex notifications keep their exact
// sequential position. No-ops (duplicate inserts, absent deletes,
// re-declarations) are detected exactly, because any update whose edge
// was already touched in the run forces the run to flush first.
//
// It returns the index of the first update not consumed.
//
//tf:hotpath
func (m *MultiEngine) scheduleRun(start int, boundary func(i int)) int {
	ups := m.batch
	for j := range m.engaged {
		m.engaged[j] = 0
	}
	m.edgeEpoch++
	if m.edgeEpoch == 0 || len(m.runEdges) > maxRunEdges {
		m.runEdges = make(map[Edge]uint32, 64)
		m.edgeEpoch = 1
		// The sub-pattern run marks are keyed by the same epoch; a stale
		// mark equal to the restarted epoch would silently skip a
		// maintenance evaluation.
		for _, sp := range m.subs {
			sp.runMark = 0
		}
	}
	i := start
loop:
	for i < len(ups) {
		u := ups[i]
		switch u.Op {
		case stream.OpInsert:
			e := u.Edge
			if m.runEdges[e] == m.edgeEpoch {
				break loop // same-edge conflict: next run re-examines it
			}
			newFrom := !m.g.HasVertex(e.From)
			newTo := e.To != e.From && !m.g.HasVertex(e.To)
			if newFrom || newTo {
				if i > start {
					break loop
				}
				// Solo per-update path: Insert notifies non-relevant
				// engines of the created vertices in sequential position.
				counts, err := m.Insert(e.From, e.Label, e.To)
				m.mergeBatch(i, counts, err, boundary)
				return i + 1
			}
			rel := m.relevant(e.Label)
			if m.anyEngaged(rel) {
				break loop
			}
			if !m.g.InsertEdge(e.From, e.Label, e.To) {
				i++ // duplicate: sequential no-op
				continue
			}
			m.runEdges[e] = m.edgeEpoch
			m.engageRun(i, rel)
			i++
		case stream.OpDelete:
			e := u.Edge
			if m.runEdges[e] == m.edgeEpoch {
				break loop
			}
			if !m.g.HasEdge(e.From, e.Label, e.To) {
				i++ // absent: sequential no-op
				continue
			}
			rel := m.relevant(e.Label)
			if m.anyEngaged(rel) {
				break loop
			}
			m.runEdges[e] = m.edgeEpoch
			m.engageRun(i, rel)
			m.runDels = append(m.runDels, e)
			i++
		case stream.OpVertex:
			if m.g.HasVertex(u.Vertex) {
				i++ // existing vertex: sequential no-op
				continue
			}
			if i > start {
				break loop
			}
			// Solo: declare and notify every engine, sequential position.
			m.g.EnsureVertex(u.Vertex, u.Labels...)
			m.notifyVertexAdded(u.Vertex)
			if boundary != nil {
				boundary(i)
			}
			return i + 1
		default:
			m.batchErrs = append(m.batchErrs,
				fmt.Errorf("update %d: unknown update op %d", i, u.Op)) //tf:alloc-ok error path
			i++ // no effects; keeps its boundary slot in the flush walk
		}
	}
	m.flushRun(start, i, boundary)
	return i
}

// mergeBatch folds a solo update's counts and error into the batch
// accumulators and fires its boundary.
func (m *MultiEngine) mergeBatch(idx int, counts map[string]int64, err error, boundary func(i int)) {
	for name, n := range counts { //tf:unordered-ok merging into a map
		if m.batchCounts == nil {
			m.batchCounts = make(map[string]int64)
		}
		m.batchCounts[name] += n
	}
	if err != nil {
		m.batchErrs = append(m.batchErrs, fmt.Errorf("update %d: %w", idx, err))
	}
	if boundary != nil {
		boundary(idx)
	}
}

// relevant returns the slots whose queries mention label l, in
// registration order.
func (m *MultiEngine) relevant(l Label) []*mslot {
	if int(l) < len(m.byLabel) {
		return m.byLabel[l]
	}
	return nil
}

// anyEngaged reports whether any of rel is already engaged in the
// current run (the routing bitset over registration positions).
//
//tf:hotpath
func (m *MultiEngine) anyEngaged(rel []*mslot) bool {
	for _, s := range rel {
		if m.engaged[s.pos>>6]&(1<<(uint(s.pos)&63)) != 0 {
			return true
		}
	}
	return false
}

// engageRun schedules the batch update at idx onto every relevant slot:
// marks the slots engaged, appends idx to their run sub-sequences and
// records the (idx, slot) pairs in batch order for the ordered replay.
// Mirrors the per-update routing counters.
//
//tf:hotpath
func (m *MultiEngine) engageRun(idx int, rel []*mslot) {
	l := m.batch[idx].Edge.Label
	for _, s := range rel {
		if m.engaged[s.pos>>6]&(1<<(uint(s.pos)&63)) == 0 {
			m.engaged[s.pos>>6] |= 1 << (uint(s.pos) & 63)
			s.runIdx = s.runIdx[:0]
			s.runN = s.runN[:0]
			s.runErr = s.runErr[:0]
			s.buf.Reset()
			m.runSlots = append(m.runSlots, s)
		}
		s.runIdx = append(s.runIdx, int32(idx))
		m.runPairs = append(m.runPairs, runPair{idx: int32(idx), k: int32(len(s.runIdx) - 1), slot: s})
		// A tree-relevant update transitions the sub-pattern's shared DCG:
		// schedule exactly one maintenance evaluation for it. (Such an
		// update engages every member, so the conflict rule above already
		// guarantees it is this sub-pattern's only update in the run;
		// non-tree-relevant updates touch no shared state and need none.)
		if sp := s.sub; sp != nil && sp.maint != nil && sp.treeRelevant(l) && sp.runMark != m.edgeEpoch {
			sp.runMark = m.edgeEpoch
			m.runSubs = append(m.runSubs, runSub{sp: sp, idx: int32(idx)})
			m.maintEvals++
			m.savedEvals += uint64(len(sp.members) - 1)
			m.sharedRelays += uint64(len(sp.members))
		}
	}
	m.evals += uint64(len(rel))
	m.skipped += uint64(len(m.order) - len(rel))
}

// flushRun executes the scheduled run: one pool dispatch over the
// engaged slots (each walking its own sub-sequence of the batch against
// the frozen graph), then one ordered replay merging the buffered
// emissions by (update index, registration order) with per-update
// boundaries interleaved, then the deferred deletions leave the graph.
//
//tf:hotpath
func (m *MultiEngine) flushRun(start, end int, boundary func(i int)) {
	// Shared-DCG maintenance for the run's insertions happens before the
	// window opens: member replays gate on the post-maintenance state. The
	// graph already holds every run insertion (pre-applied in batch
	// order), and a maintainer only reads adjacency through its tree
	// labels, whose single run update is the one it is maintaining — the
	// same frozen-window argument the member evaluations rely on.
	for _, rs := range m.runSubs {
		if u := m.batch[rs.idx]; u.Op == stream.OpInsert {
			rs.sp.maint.MaintainInsertedEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
		}
	}
	if len(m.runSlots) > 0 {
		for _, s := range m.runSlots {
			s.buffering = true
		}
		tasks := m.tasks[:0]
		if len(m.runSlots) > len(m.shardTasks) {
			// More engaged engines than workers: one composite shard per
			// worker instead of one task per slot keeps the barrier at
			// W-1 handoffs however many engines the run engaged.
			tasks = append(tasks, m.shardTasks...)
		} else {
			for _, s := range m.runSlots {
				tasks = append(tasks, s.batchTask)
			}
		}
		m.tasks = tasks[:0]
		m.pool.Run(tasks)
		for _, s := range m.runSlots {
			s.buffering = false
		}
	}
	next := start
	for p := 0; p < len(m.runPairs); {
		idx := int(m.runPairs[p].idx)
		for ; next < idx; next++ {
			if boundary != nil {
				boundary(next)
			}
		}
		for ; p < len(m.runPairs) && int(m.runPairs[p].idx) == idx; p++ {
			pr := m.runPairs[p]
			s := pr.slot
			if s.user != nil {
				s.buf.ReplayMark(int(pr.k), s.user)
			}
			if n := s.runN[pr.k]; n != 0 {
				if m.batchCounts == nil {
					m.batchCounts = make(map[string]int64)
				}
				m.batchCounts[s.name] += n
			}
			if err := s.runErr[pr.k]; err != nil {
				m.batchErrs = append(m.batchErrs,
					fmt.Errorf("update %d query %q: %w", idx, s.name, err)) //tf:alloc-ok error path
			}
		}
		if boundary != nil {
			boundary(next)
		}
		next++
	}
	for ; next < end; next++ {
		if boundary != nil {
			boundary(next)
		}
	}
	// Shared-DCG maintenance for the run's deletions happens after every
	// member has replayed against the still-intact state and before the
	// edges leave the graph (Algorithm 2's evaluate-before-remove order);
	// shared members then re-sample their matching orders against the
	// post-clearing DCG, where a private engine would have adjusted.
	if len(m.runSubs) > 0 {
		for _, rs := range m.runSubs {
			if u := m.batch[rs.idx]; u.Op == stream.OpDelete {
				rs.sp.maint.MaintainBeforeDelete(u.Edge.From, u.Edge.Label, u.Edge.To)
			}
		}
	}
	for _, pr := range m.runPairs {
		if m.batch[pr.idx].Op == stream.OpDelete && pr.slot.eng.SharedMember() {
			pr.slot.eng.AdjustOrderDeferred()
		}
	}
	for _, e := range m.runDels {
		m.g.DeleteEdge(e.From, e.Label, e.To)
	}
	// Leave every engaged buffer empty: the per-update parallel path
	// (used by solo updates) replays whole buffers and relies on them
	// starting clean.
	for _, s := range m.runSlots {
		s.buf.Reset()
	}
	m.runDels = m.runDels[:0]
	m.runSlots = m.runSlots[:0]
	m.runPairs = m.runPairs[:0]
	m.runSubs = m.runSubs[:0]
}

// runSubUnit is a promoted sub-pattern's persistent pool task for the
// single-update parallel window: the maintainer applies the update's DCG
// transitions exactly once and the engaged members replay read-only,
// sequenced by direction — maintenance first for insertions (members
// gate on the final state), last for deletions (members search the
// still-intact state, then the maintainer clears and the members
// re-sample their matching orders against the post-clearing DCG, the
// state a private engine would have adjusted on).
func (m *MultiEngine) runSubUnit(sp *subpat) {
	p := m.pending
	if m.pendingPos {
		sp.maint.MaintainInsertedEdge(p.From, p.Label, p.To)
		for _, s := range sp.engagedMembers {
			s.count, s.err = m.curEval(s.eng)
		}
	} else {
		for _, s := range sp.engagedMembers {
			s.count, s.err = m.curEval(s.eng)
		}
		sp.maint.MaintainBeforeDelete(p.From, p.Label, p.To)
		for _, s := range sp.engagedMembers {
			s.eng.AdjustOrderDeferred()
		}
	}
}

// fanOut evaluates the already-applied (insert) or not-yet-removed
// (delete) edge update against the registered engines using m.curEval.
//
// Failure semantics (both modes): every engine is evaluated even when an
// earlier one fails, partial counts are returned, and the per-query
// errors are aggregated with errors.Join (each wrapped as `query "name"`,
// so errors.Is still detects ErrWorkBudget). A budget-aborted engine has
// rolled back its own DCG transition for this update — its standing
// matches for this edge may be stale until a later update touches the
// same region — but every other engine and the graph itself stay exactly
// in sync with the stream.
//
// With workers > 1 the relevant engines (label routing: the update's
// label occurs in the query) evaluate concurrently against the frozen
// graph; created lists vertices this update added, which skipped engines
// are notified of so their root-candidate bookkeeping stays complete.
func (m *MultiEngine) fanOut(l Label, created []VertexID) (map[string]int64, error) {
	if m.pool.Workers() <= 1 {
		return m.fanOutSeq()
	}
	return m.fanOutParallel(l, created)
}

// fanOutSeq is the sequential path: every engine, registration order,
// direct OnMatch delivery. Shared sub-patterns are maintained once per
// update — before the member replays for insertions (members gate on the
// post-maintenance state), after them for deletions (members replay
// against the still-intact state, then the maintainer clears and the
// members re-sample their matching orders).
func (m *MultiEngine) fanOutSeq() (map[string]int64, error) {
	if m.pendingPos {
		m.maintainAll(true)
	}
	var counts map[string]int64
	errs := m.errs[:0]
	for _, s := range m.order {
		m.evals++
		n, err := m.curEval(s.eng)
		if err != nil {
			errs = append(errs, fmt.Errorf("query %q: %w", s.name, err))
		}
		if n != 0 {
			if counts == nil {
				counts = make(map[string]int64)
			}
			counts[s.name] = n
		}
	}
	if !m.pendingPos {
		m.maintainAll(false)
	}
	m.errs = errs[:0]
	return counts, errors.Join(errs...)
}

// maintainAll runs every promoted sub-pattern's maintainer for the
// pending update (the sequential path evaluates every member, so every
// shared DCG must be maintained; a label the tree never mentions costs
// two cached root probes). Deletions additionally re-run each member's
// deferred matching-order check against the post-clearing state.
func (m *MultiEngine) maintainAll(positive bool) {
	p := m.pending
	for _, sp := range m.subs {
		if positive {
			sp.maint.MaintainInsertedEdge(p.From, p.Label, p.To)
		} else {
			sp.maint.MaintainBeforeDelete(p.From, p.Label, p.To)
			for _, s := range sp.members {
				s.eng.AdjustOrderDeferred()
			}
		}
		m.maintEvals++
		m.savedEvals += uint64(len(sp.members) - 1)
		m.sharedRelays += uint64(len(sp.members))
	}
}

// fanOutParallel routes the update to the engines whose queries mention
// label l and runs them on the pool, then replays each engine's buffered
// emissions in registration order. Tasks are keyed by sub-pattern, not
// query: a promoted sub-pattern's engaged members ride ONE pool task
// with their maintainer (maintain → replay members for insertions,
// replay → maintain → re-sample orders for deletions), keeping the
// shared DCG single-writer inside the window while distinct sub-patterns
// and private slots parallelize. Single-relevant-engine updates run
// inline (no barrier, no buffering) — the common case for disjoint
// workloads.
func (m *MultiEngine) fanOutParallel(l Label, created []VertexID) (map[string]int64, error) {
	var rel []*mslot
	if int(l) < len(m.byLabel) {
		rel = m.byLabel[l]
	}
	m.skipped += uint64(len(m.order) - len(rel))
	if len(created) > 0 {
		// The skipped evaluation's only structural effect would have been
		// root-candidate bookkeeping for vertices this insert created.
		// Inserts that create vertices are rare at steady state, so the
		// full scan stays off the common path. Maintainers whose
		// sub-pattern has no relevant member will not run this update and
		// are notified instead (an engaged maintainer settles the new
		// endpoints itself through ensureRootEdge).
		for _, s := range m.order {
			if _, ok := s.labels[l]; ok {
				continue
			}
			for _, v := range created {
				s.eng.NotifyVertexAdded(v)
			}
		}
		for _, sp := range m.subs {
			if !sp.anyMemberMentions(l) {
				for _, v := range created {
					sp.maint.NotifyVertexAdded(v)
				}
			}
		}
	}
	m.evals += uint64(len(rel))

	switch len(rel) {
	case 0:
		return nil, nil
	case 1:
		s := rel[0]
		var n int64
		var err error
		if sp := s.sub; sp != nil && sp.maint != nil {
			p := m.pending
			if m.pendingPos {
				sp.maint.MaintainInsertedEdge(p.From, p.Label, p.To)
				n, err = m.curEval(s.eng)
			} else {
				n, err = m.curEval(s.eng)
				sp.maint.MaintainBeforeDelete(p.From, p.Label, p.To)
				s.eng.AdjustOrderDeferred()
			}
			m.maintEvals++
			m.sharedRelays++
		} else {
			n, err = m.curEval(s.eng)
		}
		if err != nil {
			err = fmt.Errorf("query %q: %w", s.name, err)
		}
		var counts map[string]int64
		if n != 0 {
			counts = map[string]int64{s.name: n}
		}
		return counts, err
	}

	m.unitEpoch++
	tasks := m.tasks[:0]
	for _, s := range rel {
		s.buffering = true
		s.count, s.err = 0, nil
		if sp := s.sub; sp != nil && sp.maint != nil {
			if sp.engEpoch != m.unitEpoch {
				sp.engEpoch = m.unitEpoch
				sp.engagedMembers = sp.engagedMembers[:0]
				tasks = append(tasks, sp.task)
				m.maintEvals++
			} else {
				m.savedEvals++
			}
			sp.engagedMembers = append(sp.engagedMembers, s)
			m.sharedRelays++
		} else {
			tasks = append(tasks, s.task)
		}
	}
	m.tasks = tasks[:0]
	m.pool.Run(tasks)

	var counts map[string]int64
	errs := m.errs[:0]
	for _, s := range rel {
		s.buffering = false
		if s.user != nil {
			s.buf.Replay(s.user)
		}
		s.buf.Reset()
		if s.err != nil {
			errs = append(errs, fmt.Errorf("query %q: %w", s.name, s.err))
		}
		if s.count != 0 {
			if counts == nil {
				counts = make(map[string]int64)
			}
			counts[s.name] = s.count
		}
	}
	m.errs = errs[:0]
	return counts, errors.Join(errs...)
}

// Graph returns the shared data graph. Treat it as read-only.
func (m *MultiEngine) Graph() *Graph { return m.g }

// Stats returns a per-query snapshot of engine counters, keyed by name.
func (m *MultiEngine) Stats() map[string]Stats {
	out := make(map[string]Stats, len(m.order))
	for _, s := range m.order {
		out[s.name] = Stats{
			PositiveMatches:   s.eng.PositiveCount(),
			NegativeMatches:   s.eng.NegativeCount(),
			DCGEdges:          s.eng.DCG().NumEdges(),
			IntermediateBytes: s.eng.IntermediateSizeBytes(),
		}
	}
	return out
}

// TotalIntermediateBytes sums the maintained intermediate-result sizes,
// counting each shared DCG once (at its first member) rather than once
// per member — the memory actually held, and the denominator the mqo
// benchmark's footprint comparison uses.
func (m *MultiEngine) TotalIntermediateBytes() int64 {
	var t int64
	for _, s := range m.order {
		if sp := s.sub; sp != nil && sp.maint != nil && s != sp.members[0] {
			continue
		}
		t += s.eng.IntermediateSizeBytes()
	}
	return t
}

// MQOStats is a snapshot of the multi-query optimization layer
// (DESIGN.md §17): how many distinct sub-patterns the registered queries
// collapsed into and how much maintenance work sharing has avoided.
type MQOStats struct {
	// SubPatterns counts distinct sub-patterns currently registered;
	// SharedSubPatterns counts those promoted to a shared DCG (>= 2
	// members); Refs totals the members across all sub-patterns.
	SubPatterns       int
	SharedSubPatterns int
	Refs              int
	// MaintainRuns counts maintainer evaluations executed; SavedEvals
	// counts the member maintenance evaluations they deduplicated (a
	// maintained update would otherwise have transitioned each member's
	// private DCG separately); SharedReplays counts member replays
	// against shared DCGs. SavedEvals/MaintainRuns is the dedup ratio.
	MaintainRuns  uint64
	SavedEvals    uint64
	SharedReplays uint64
}

// MQOStats snapshots the sub-pattern sharing counters.
func (m *MultiEngine) MQOStats() MQOStats {
	return MQOStats{
		SubPatterns:       m.reg.Len(),
		SharedSubPatterns: len(m.subs),
		Refs:              m.reg.TotalRefs(),
		MaintainRuns:      m.maintEvals,
		SavedEvals:        m.savedEvals,
		SharedReplays:     m.sharedRelays,
	}
}
