package turboflux

import (
	"errors"
	"fmt"
	"runtime"

	"turboflux/internal/core"
	"turboflux/internal/fanout"
	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

// FanOutStats is a snapshot of the multi-query fan-out counters: how many
// per-engine evaluations ran, how many were elided by label-relevance
// routing, and how the worker pool was utilized. See fanout.Stats for the
// field meanings.
type FanOutStats = fanout.Stats

// mslot is one registered query's fan-out state. count/err are the
// result cells of the parallel window: each is written by exactly one
// pool worker (the one evaluating this engine) and read by the
// coordinator after the barrier.
type mslot struct {
	name      string
	eng       *core.Engine
	user      core.MatchFunc           // caller's OnMatch, nil if none
	labels    map[graph.Label]struct{} // edge labels the query mentions
	task      func()                   // persistent pool task: eval this slot
	buf       fanout.EmissionBuffer
	buffering bool // true inside the parallel window; routes OnMatch to buf
	count     int64
	err       error
}

// MultiEngine runs several continuous queries over one shared data graph,
// the deployment shape of the paper's motivating applications (a fraud
// team monitors many ring patterns, an IDS many attack signatures). Each
// registered query maintains its own DCG; the data graph is mutated once
// per update and every engine evaluates against it.
//
// Fan-out is parallel by default: a persistent worker pool (size
// SetFanOutWorkers, default GOMAXPROCS; 1 selects the sequential path)
// evaluates the engines relevant to each update concurrently against the
// frozen post-mutation graph, with OnMatch emissions buffered per engine
// and replayed in registration order after the barrier — so observable
// behavior (transcripts, counts, errors) is identical to sequential
// evaluation. Engines whose queries cannot mention the updated edge's
// label are skipped entirely (their evaluation is a structural no-op).
//
// MultiEngine is not safe for concurrent use, matching Engine.
type MultiEngine struct {
	g     *Graph
	slots map[string]*mslot
	order []*mslot // registration order, for deterministic fan-out
	pool  *fanout.Pool

	// byLabel indexes the slots whose queries mention each edge label, in
	// registration order — the routing decision for an update is then one
	// slice index instead of a scan over every registered query. Labels are
	// dense small ints, so a slice beats a map on the hot path. Rebuilt on
	// Register/Unregister.
	byLabel [][]*mslot

	evals   uint64 // engine evaluations run
	skipped uint64 // evaluations elided by label-relevance routing

	// Reused scratch for the parallel window (no per-update allocation).
	tasks []func()
	errs  []error

	// The pending update's edge plus two persistent eval thunks over it;
	// curEval points at insEval or delEval for the current update, so the
	// hot path never allocates a closure.
	pending Edge
	insEval func(*core.Engine) (int64, error)
	delEval func(*core.Engine) (int64, error)
	curEval func(*core.Engine) (int64, error)
}

// NewMultiEngine wraps the initial data graph g0. The MultiEngine takes
// ownership of g0: route every mutation through it.
func NewMultiEngine(g0 *Graph) *MultiEngine {
	m := &MultiEngine{
		g:     g0,
		slots: make(map[string]*mslot),
		pool:  fanout.New(0),
	}
	m.insEval = func(e *core.Engine) (int64, error) {
		return e.EvalInsertedEdge(m.pending.From, m.pending.Label, m.pending.To)
	}
	m.delEval = func(e *core.Engine) (int64, error) {
		return e.EvalBeforeDelete(m.pending.From, m.pending.Label, m.pending.To)
	}
	return m
}

// SetFanOutWorkers resizes the fan-out worker pool; n <= 0 means
// GOMAXPROCS and 1 selects the sequential path (today's behavior,
// evaluating every engine inline with direct OnMatch delivery). Safe to
// call between updates, not during one.
func (m *MultiEngine) SetFanOutWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if m.pool.Workers() == n {
		return
	}
	m.pool.Close()
	m.pool = fanout.New(n)
}

// FanOutWorkers returns the configured fan-out pool size.
func (m *MultiEngine) FanOutWorkers() int { return m.pool.Workers() }

// FanOutStats snapshots the fan-out counters.
func (m *MultiEngine) FanOutStats() FanOutStats {
	st := m.pool.Stats()
	st.Evals = m.evals
	st.Skipped = m.skipped
	return st
}

// Close releases the fan-out worker pool. The engine itself stays
// usable — subsequent updates evaluate inline — so Close is only about
// reclaiming the pool goroutines. It always returns nil.
func (m *MultiEngine) Close() error {
	m.pool.Close()
	return nil
}

// Register adds a continuous query under the given name, building its DCG
// over the current graph state. Registering a duplicate name fails.
func (m *MultiEngine) Register(name string, q *Query, opt Options) error {
	if _, dup := m.slots[name]; dup {
		return fmt.Errorf("turboflux: query %q already registered", name)
	}
	s := &mslot{name: name, user: opt.OnMatch, labels: queryEdgeLabels(q)}
	copt := core.DefaultOptions()
	copt.Semantics = opt.Semantics
	copt.Search = opt.Search
	copt.WorkBudget = opt.WorkBudget
	if s.user != nil {
		// Inside the parallel window emissions go to the slot's buffer
		// (written only by the worker evaluating this engine); otherwise
		// straight through, preserving the sequential path exactly.
		copt.OnMatch = func(positive bool, mapping []graph.VertexID) {
			if s.buffering {
				s.buf.Record(positive, mapping)
			} else {
				s.user(positive, mapping)
			}
		}
	}
	eng, err := core.New(m.g, q, copt)
	if err != nil {
		return err
	}
	s.eng = eng
	s.task = func() { s.count, s.err = m.curEval(s.eng) }
	m.slots[name] = s
	m.order = append(m.order, s)
	m.rebuildLabelIndex()
	return nil
}

// rebuildLabelIndex recomputes byLabel from the registration order.
func (m *MultiEngine) rebuildLabelIndex() {
	maxL := graph.Label(0)
	for _, s := range m.order {
		for l := range s.labels { //tf:unordered-ok max over the set is order-independent
			if l > maxL {
				maxL = l
			}
		}
	}
	m.byLabel = make([][]*mslot, int(maxL)+1)
	for _, s := range m.order {
		for l := range s.labels { //tf:unordered-ok each label's slot list is ordered by the outer registration-order loop
			m.byLabel[l] = append(m.byLabel[l], s)
		}
	}
}

// queryEdgeLabels collects the set of edge labels a query mentions; an
// update whose label is outside this set cannot extend or retract any of
// the query's matches.
func queryEdgeLabels(q *Query) map[graph.Label]struct{} {
	out := make(map[graph.Label]struct{}, q.NumEdges())
	for _, e := range q.Edges() {
		out[e.Label] = struct{}{}
	}
	return out
}

// Unregister removes a query and reports whether it was registered.
func (m *MultiEngine) Unregister(name string) bool {
	s, ok := m.slots[name]
	if !ok {
		return false
	}
	delete(m.slots, name)
	for i, t := range m.order {
		if t == s {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.rebuildLabelIndex()
	return true
}

// Queries returns the registered query names in registration order.
func (m *MultiEngine) Queries() []string {
	out := make([]string, len(m.order))
	for i, s := range m.order {
		out[i] = s.name
	}
	return out
}

// InitialMatches reports each registered query's matches over the current
// graph and returns per-query counts. Queries evaluate in registration
// order so the interleaving of OnMatch deliveries across queries is
// deterministic, matching the fan-out order of Insert/Delete.
func (m *MultiEngine) InitialMatches() map[string]int64 {
	out := make(map[string]int64, len(m.order))
	for _, s := range m.order {
		out[s.name] = s.eng.InitialMatches()
	}
	return out
}

// Insert applies one edge insertion to the shared graph and evaluates
// every registered query. It returns per-query positive-match counts
// (only non-zero entries). Duplicate insertions are no-ops.
//
// If any engine fails (e.g. exhausts its work budget), the remaining
// engines are still evaluated and the errors are aggregated; see fanOut.
func (m *MultiEngine) Insert(from VertexID, l Label, to VertexID) (map[string]int64, error) {
	newFrom := !m.g.HasVertex(from)
	newTo := to != from && !m.g.HasVertex(to)
	if !m.g.InsertEdge(from, l, to) {
		return nil, nil
	}
	var created [2]VertexID
	nc := 0
	if newFrom {
		created[nc] = from
		nc++
	}
	if newTo {
		created[nc] = to
		nc++
	}
	m.pending = Edge{From: from, Label: l, To: to}
	m.curEval = m.insEval
	return m.fanOut(l, created[:nc])
}

// Delete applies one edge deletion: every engine reports its negative
// matches first, then the edge is removed from the shared graph. As for
// Insert, an engine failure does not stop the fan-out, and the edge is
// removed regardless so the graph never diverges from the stream.
func (m *MultiEngine) Delete(from VertexID, l Label, to VertexID) (map[string]int64, error) {
	if !m.g.HasEdge(from, l, to) {
		return nil, nil
	}
	m.pending = Edge{From: from, Label: l, To: to}
	m.curEval = m.delEval
	counts, err := m.fanOut(l, nil)
	m.g.DeleteEdge(from, l, to)
	return counts, err
}

// Apply applies one stream update.
func (m *MultiEngine) Apply(u Update) (map[string]int64, error) {
	switch u.Op {
	case stream.OpInsert:
		return m.Insert(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpDelete:
		return m.Delete(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpVertex:
		if !m.g.HasVertex(u.Vertex) {
			m.g.EnsureVertex(u.Vertex, u.Labels...)
			for _, s := range m.order {
				s.eng.NotifyVertexAdded(u.Vertex)
			}
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("turboflux: unknown update op %d", u.Op)
	}
}

// fanOut evaluates the already-applied (insert) or not-yet-removed
// (delete) edge update against the registered engines using m.curEval.
//
// Failure semantics (both modes): every engine is evaluated even when an
// earlier one fails, partial counts are returned, and the per-query
// errors are aggregated with errors.Join (each wrapped as `query "name"`,
// so errors.Is still detects ErrWorkBudget). A budget-aborted engine has
// rolled back its own DCG transition for this update — its standing
// matches for this edge may be stale until a later update touches the
// same region — but every other engine and the graph itself stay exactly
// in sync with the stream.
//
// With workers > 1 the relevant engines (label routing: the update's
// label occurs in the query) evaluate concurrently against the frozen
// graph; created lists vertices this update added, which skipped engines
// are notified of so their root-candidate bookkeeping stays complete.
func (m *MultiEngine) fanOut(l Label, created []VertexID) (map[string]int64, error) {
	if m.pool.Workers() <= 1 {
		return m.fanOutSeq()
	}
	return m.fanOutParallel(l, created)
}

// fanOutSeq is the sequential path: every engine, registration order,
// direct OnMatch delivery.
func (m *MultiEngine) fanOutSeq() (map[string]int64, error) {
	var counts map[string]int64
	errs := m.errs[:0]
	for _, s := range m.order {
		m.evals++
		n, err := m.curEval(s.eng)
		if err != nil {
			errs = append(errs, fmt.Errorf("query %q: %w", s.name, err))
		}
		if n != 0 {
			if counts == nil {
				counts = make(map[string]int64)
			}
			counts[s.name] = n
		}
	}
	m.errs = errs[:0]
	return counts, errors.Join(errs...)
}

// fanOutParallel routes the update to the engines whose queries mention
// label l and runs them on the pool, then replays each engine's buffered
// emissions in registration order. Single-relevant-engine updates run
// inline (no barrier, no buffering) — the common case for disjoint
// workloads.
func (m *MultiEngine) fanOutParallel(l Label, created []VertexID) (map[string]int64, error) {
	var rel []*mslot
	if int(l) < len(m.byLabel) {
		rel = m.byLabel[l]
	}
	m.skipped += uint64(len(m.order) - len(rel))
	if len(created) > 0 {
		// The skipped evaluation's only structural effect would have been
		// root-candidate bookkeeping for vertices this insert created.
		// Inserts that create vertices are rare at steady state, so the
		// full scan stays off the common path.
		for _, s := range m.order {
			if _, ok := s.labels[l]; ok {
				continue
			}
			for _, v := range created {
				s.eng.NotifyVertexAdded(v)
			}
		}
	}
	m.evals += uint64(len(rel))

	switch len(rel) {
	case 0:
		return nil, nil
	case 1:
		s := rel[0]
		n, err := m.curEval(s.eng)
		if err != nil {
			err = fmt.Errorf("query %q: %w", s.name, err)
		}
		var counts map[string]int64
		if n != 0 {
			counts = map[string]int64{s.name: n}
		}
		return counts, err
	}

	tasks := m.tasks[:0]
	for _, s := range rel {
		s.buffering = true
		s.count, s.err = 0, nil
		tasks = append(tasks, s.task)
	}
	m.tasks = tasks[:0]
	m.pool.Run(tasks)

	var counts map[string]int64
	errs := m.errs[:0]
	for _, s := range rel {
		s.buffering = false
		if s.user != nil {
			s.buf.Replay(s.user)
		}
		s.buf.Reset()
		if s.err != nil {
			errs = append(errs, fmt.Errorf("query %q: %w", s.name, s.err))
		}
		if s.count != 0 {
			if counts == nil {
				counts = make(map[string]int64)
			}
			counts[s.name] = s.count
		}
	}
	m.errs = errs[:0]
	return counts, errors.Join(errs...)
}

// Graph returns the shared data graph. Treat it as read-only.
func (m *MultiEngine) Graph() *Graph { return m.g }

// Stats returns a per-query snapshot of engine counters, keyed by name.
func (m *MultiEngine) Stats() map[string]Stats {
	out := make(map[string]Stats, len(m.order))
	for _, s := range m.order {
		out[s.name] = Stats{
			PositiveMatches:   s.eng.PositiveCount(),
			NegativeMatches:   s.eng.NegativeCount(),
			DCGEdges:          s.eng.DCG().NumEdges(),
			IntermediateBytes: s.eng.IntermediateSizeBytes(),
		}
	}
	return out
}

// TotalIntermediateBytes sums the DCG sizes of all registered queries.
func (m *MultiEngine) TotalIntermediateBytes() int64 {
	var t int64
	for _, s := range m.order {
		t += s.eng.IntermediateSizeBytes()
	}
	return t
}
