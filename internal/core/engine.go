// Package core implements the TurboFlux continuous subgraph matching
// engine (Section 4 of the paper): the DCG construction and maintenance
// algorithms (BuildDCG, InsertEdgeAndEval, DeleteEdgeAndEval and their
// upward companions) and the SubgraphSearch procedure that reports
// positive and negative matches.
package core

import (
	"errors"
	"fmt"

	"turboflux/internal/dcg"
	"turboflux/internal/graph"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// ErrWorkBudget reports that an update operation exceeded
// Options.WorkBudget and was aborted.
var ErrWorkBudget = errors.New("core: per-update work budget exceeded")

// Semantics selects the matching semantics.
type Semantics uint8

const (
	// Homomorphism is the paper's default: L(u) ⊆ L(m(u)) and every query
	// edge maps to a data edge; the mapping need not be injective.
	Homomorphism Semantics = iota
	// Isomorphism additionally requires the vertex mapping to be injective.
	Isomorphism
)

func (s Semantics) String() string {
	if s == Isomorphism {
		return "isomorphism"
	}
	return "homomorphism"
}

// MatchFunc receives one positive (inserted) or negative (deleted) match.
// mapping[u] is the data vertex matched to query vertex u; the slice is
// reused across calls and must be copied if retained.
type MatchFunc func(positive bool, mapping []graph.VertexID)

// Options configures an Engine.
type Options struct {
	// Semantics selects homomorphism (default) or isomorphism.
	Semantics Semantics
	// Search selects the candidate-enumeration strategy of SubgraphSearch:
	// Backtracking (default, Algorithm 7) or WCOJoin (Section 4.3's
	// worst-case-optimal variant over the DCG).
	Search Strategy
	// OnMatch, when non-nil, receives every reported match.
	OnMatch MatchFunc
	// StartVertex overrides ChooseStartQVertex when not graph.NoVertex.
	StartVertex graph.VertexID
	// DisableCheckAndAvoid re-traverses already-built DCG subtrees on every
	// insertion (ablation of Section 3.1's check-and-avoid strategy). A
	// per-operation visited set keeps the traversal terminating.
	DisableCheckAndAvoid bool
	// DisableOrderAdjust freezes the matching order computed at startup
	// (ablation of AdjustMatchingOrder).
	DisableOrderAdjust bool
	// NaiveEL rebuilds the DCG from the declarative fixpoint after every
	// update instead of applying selective transitions (ablation of the
	// enhanced maintenance algorithms; match reporting still uses the
	// selective search seeds).
	NaiveEL bool
	// WorkBudget caps the work units (search and maintenance steps) spent
	// on a single update operation; when exceeded the operation aborts and
	// InsertEdge/DeleteEdge return ErrWorkBudget. 0 means unlimited. Used
	// by the benchmark harness to censor non-selective queries the way the
	// paper's 2-hour timeout does; match reporting for an aborted
	// operation is incomplete.
	WorkBudget int64
}

// DefaultOptions returns the paper-default configuration.
func DefaultOptions() Options {
	return Options{StartVertex: graph.NoVertex}
}

// Engine is a TurboFlux continuous subgraph matching instance bound to one
// data graph and one query. After New, the caller must route every data
// graph mutation through InsertEdge/DeleteEdge/Apply so the DCG stays
// consistent.
type Engine struct {
	g    *graph.Graph
	q    *query.Graph
	tree *query.Tree
	d    *dcg.DCG
	opt  Options

	// shared marks a sub-pattern member of the multi-query layer
	// (DESIGN.md §17): d is owned by a maintainer engine that applies all
	// DCG transitions, and this engine's eval entry points switch to
	// read-only replay — gate on the maintained state, climb without
	// transitions, search with this query's own matching order, non-tree
	// checks, semantics and duplicate avoidance.
	shared bool

	mo []graph.VertexID // matching order, mo[0] == tree.Root

	// procRank[i] is the processing rank of query edge i: tree edges first
	// (insertion builds their DCG branches in this order), then non-tree
	// edges. Duplicate-result avoidance reports a solution only at its
	// maximum-rank trigger on insertion (all branches built by then) and at
	// its minimum-rank trigger on deletion (no state destroyed yet).
	procRank []int

	// treeSlotsByLabel[l] lists the child query vertices whose parent tree
	// edge carries data-edge label l, in ascending vertex order;
	// nonTreeByLabel[l] likewise lists the non-tree query-edge indexes, in
	// tree.NonTree order. Precomputed so each update visits only the query
	// edges its label can match — an update whose label the query never
	// mentions costs two empty lookups.
	treeSlotsByLabel [][]graph.VertexID
	nonTreeByLabel   [][]int

	m []graph.VertexID // current mapping; graph.NoVertex = unmapped

	// iso/useCnt implement the injectivity check of isomorphism semantics:
	// useCnt[v] counts how many query vertices currently map to data vertex
	// v, as a dense slice grown on demand (DESIGN.md §16 — no hash maps on
	// the eval path).
	iso    bool
	useCnt []int32

	// rootSeen[v] records that ensureRootEdge already settled vertex v:
	// either its root DCG edge exists (root edges are never nulled — the
	// only Null transition, clearDCG, starts strictly below the root) or
	// v's labels can never match L(u_s) (data-vertex labels are immutable
	// after creation and vertices are never deleted). Either way the
	// per-update probe can be skipped forever. Dense by VertexID, grown on
	// demand; stays valid across order adjustment (the tree root never
	// changes) and across NaiveEL rebuilds (the spec fixpoint re-creates
	// every root edge).
	rootSeen []bool

	// parentScratch is the engine-owned arena the upward traversals carve
	// their parent snapshots from (mark, append, iterate, truncate): the
	// recursion only ever appends past its own mark and reads segments
	// captured before deeper calls, so one grow-only buffer serves the whole
	// traversal with zero steady-state allocations. The engine is evaluated
	// by at most one fanout worker at a time, which makes the arena
	// single-owner by construction.
	parentScratch []graph.VertexID

	updEdge   graph.Edge // the data edge of the update being processed
	trigger   int        // query-edge index of the current trigger, -1 = none
	positive  bool       // direction of the update being processed
	opMatches int64      // matches reported during the current operation
	opWork    int64      // work units consumed by the current operation
	aborted   bool       // the current operation exceeded WorkBudget

	// dedupChecks lists the query edges that could outrank the current
	// trigger on the updated data edge, precomputed by setTrigger so the
	// per-match duplicate check touches only them (usually none).
	dedupChecks []graph.Edge

	posTotal, negTotal int64

	// Matching-order drift detection: explicit counts per label at the time
	// the order was computed.
	orderStats []int64

	// visited guards subtree re-traversal when check-and-avoid is disabled.
	visited map[dcg.EdgeKey]bool
}

// New builds a TurboFlux engine over data graph g (the initial graph g0)
// and query q: it chooses the starting query vertex, transforms q into a
// query tree, constructs the initial DCG and computes the matching order
// (Algorithm 2, Lines 1–6). g must not be mutated directly afterwards.
func New(g *graph.Graph, q *query.Graph, opt Options) (*Engine, error) {
	tree, err := BuildTree(g, q, opt)
	if err != nil {
		return nil, err
	}
	return NewWithTree(g, q, tree, opt, nil)
}

// BuildTree chooses the starting query vertex and transforms q into its
// query tree over the current graph statistics — the first half of New,
// exposed so the multi-query layer can canonicalize the tree (the
// sub-pattern sharing key) before deciding whether to build a private
// DCG or join an existing shared one.
func BuildTree(g *graph.Graph, q *query.Graph, opt Options) (*query.Tree, error) {
	if g == nil || q == nil {
		return nil, errors.New("core: nil graph or query")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	us := opt.StartVertex
	if us == graph.NoVertex {
		us = query.ChooseStartQVertex(q, g)
	} else if int(us) >= q.NumVertices() {
		return nil, fmt.Errorf("core: start vertex %d out of range", us)
	}
	return query.TransformToTree(q, us, g)
}

// OptionsShareable reports whether an engine built with opt may share a
// sub-pattern DCG. WorkBudget aborts, the NaiveEL and check-and-avoid
// ablations change maintenance itself, and the WCO search picks its
// iteration list by comparing candidate-list lengths — which differ
// between a private mid-transition view and the shared final view — so
// all four force a private DCG.
func OptionsShareable(opt Options) bool {
	return opt.WorkBudget == 0 && !opt.NaiveEL && !opt.DisableCheckAndAvoid &&
		opt.Search != WCOJoin
}

// NewWithTree builds an engine over a pre-built query tree. When sharedDCG
// is nil the engine owns a private DCG, constructed from the current
// graph exactly as New does. When sharedDCG is non-nil the engine joins
// it as a read-only sub-pattern member: initial DCG construction is
// skipped (the shared DCG already holds the fixpoint, and — because
// candidate enumeration is a pure function of DCG state — the matching
// order and every future transcript come out identical to what a private
// DCG would have produced).
func NewWithTree(g *graph.Graph, q *query.Graph, tree *query.Tree, opt Options, sharedDCG *dcg.DCG) (*Engine, error) {
	if g == nil || q == nil || tree == nil {
		return nil, errors.New("core: nil graph, query or tree")
	}
	if sharedDCG != nil && !OptionsShareable(opt) {
		return nil, errors.New("core: options not shareable (budget, ablation or WCO search)")
	}
	d := sharedDCG
	if d == nil {
		d = dcg.New(tree)
	}
	e := &Engine{
		g:        g,
		q:        q,
		tree:     tree,
		d:        d,
		opt:      opt,
		shared:   sharedDCG != nil,
		m:        make([]graph.VertexID, q.NumVertices()),
		procRank: make([]int, q.NumEdges()),
		trigger:  -1,
	}
	for i := range e.m {
		e.m[i] = graph.NoVertex
	}
	if opt.Semantics == Isomorphism {
		e.iso = true
	}
	rank := 0
	for u := 0; u < q.NumVertices(); u++ {
		if graph.VertexID(u) == tree.Root {
			continue
		}
		te := tree.ParentEdge[u]
		e.procRank[te.Index] = rank
		rank++
		for int(te.Label) >= len(e.treeSlotsByLabel) {
			e.treeSlotsByLabel = append(e.treeSlotsByLabel, nil)
		}
		e.treeSlotsByLabel[te.Label] = append(e.treeSlotsByLabel[te.Label], graph.VertexID(u))
	}
	for _, nt := range tree.NonTree {
		e.procRank[nt] = rank
		rank++
		l := q.Edge(nt).Label
		for int(l) >= len(e.nonTreeByLabel) {
			e.nonTreeByLabel = append(e.nonTreeByLabel, nil)
		}
		e.nonTreeByLabel[l] = append(e.nonTreeByLabel[l], nt)
	}

	if sharedDCG == nil {
		// Build the initial DCG: a hypothetical edge (v*_s, v_s) insertion
		// for every v_s with L(u_s) ⊆ L(v_s) (Algorithm 2, Lines 4–5).
		e.forEachStartCandidate(func(vs graph.VertexID) {
			e.buildDCG(tree.Root, graph.NoVertex, vs)
		})
		if e.aborted {
			return nil, ErrWorkBudget
		}
	}
	e.computeMatchingOrder()
	return e, nil
}

// NotifyVertexAdded performs root-candidate bookkeeping for a vertex that
// was just added to the (possibly shared) data graph: a vertex matching
// L(u_s) receives its hypothetical (v*_s, v_s) edge.
//
//tf:eval-path
func (e *Engine) NotifyVertexAdded(v graph.VertexID) {
	if e.shared {
		return // the maintainer owns root bookkeeping for the shared DCG
	}
	if e.g.HasAllLabels(v, e.q.Labels(e.tree.Root)) {
		e.buildDCG(e.tree.Root, graph.NoVertex, v)
	}
}

// charge consumes one work unit of the current operation's budget and
// reports whether processing may continue.
func (e *Engine) charge() bool {
	if e.aborted {
		return false
	}
	if e.opt.WorkBudget <= 0 {
		return true
	}
	e.opWork++
	if e.opWork > e.opt.WorkBudget {
		e.aborted = true
		return false
	}
	return true
}

// forEachStartCandidate calls fn for every data vertex matching L(u_s).
func (e *Engine) forEachStartCandidate(fn func(graph.VertexID)) {
	rootLabels := e.q.Labels(e.tree.Root)
	if len(rootLabels) == 0 {
		e.g.ForEachVertex(fn)
		return
	}
	for _, v := range e.g.VerticesWithLabel(rootLabels[0]) {
		if e.g.HasAllLabels(v, rootLabels) {
			fn(v)
		}
	}
}

// Graph returns the engine's data graph. Callers must not mutate it.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Query returns the engine's query graph.
func (e *Engine) Query() *query.Graph { return e.q }

// Tree returns the query tree q'.
func (e *Engine) Tree() *query.Tree { return e.tree }

// DCG returns the engine's data-centric graph. Callers must not mutate it.
func (e *Engine) DCG() *dcg.DCG { return e.d }

// MatchingOrder returns the current matching order. Must not be mutated.
func (e *Engine) MatchingOrder() []graph.VertexID { return e.mo }

// PositiveCount returns the total positive matches reported so far
// (excluding InitialMatches).
func (e *Engine) PositiveCount() int64 { return e.posTotal }

// NegativeCount returns the total negative matches reported so far.
func (e *Engine) NegativeCount() int64 { return e.negTotal }

// IntermediateSizeBytes returns the accounting size of the maintained
// intermediate results (the DCG).
func (e *Engine) IntermediateSizeBytes() int64 { return e.d.SizeBytes() }

// InitialMatches reports every complete solution in the initial data graph
// (Algorithm 2, Lines 7–11) through OnMatch and returns their number.
// These are not counted in PositiveCount.
//
//tf:eval-path
func (e *Engine) InitialMatches() int64 {
	var n int64
	e.clearTrigger()
	e.positive = true
	us := e.tree.Root
	for _, vs := range e.d.RootCandidates(true) {
		e.mapVertex(us, vs)
		before := e.opMatches
		e.subgraphSearch(0)
		n += e.opMatches - before
		e.unmapVertex(us)
	}
	// Initial matches are reported but not accumulated into the stream
	// totals, matching the paper's cost model which separates g0 from Δg.
	e.posTotal -= n
	e.opMatches = 0
	return n
}

// InsertEdge applies the edge-insertion operation (v, l, v2): it inserts
// the edge into the data graph, updates the DCG and reports every positive
// match (Algorithm 2, Lines 14–16). It returns the number of positive
// matches for this operation. Inserting a duplicate edge is a no-op.
func (e *Engine) InsertEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	if !e.g.InsertEdge(v, l, v2) {
		return 0, nil
	}
	return e.EvalInsertedEdge(v, l, v2)
}

// EvalInsertedEdge updates the DCG and reports positive matches for an
// edge insertion that a coordinator has ALREADY applied to the shared data
// graph. Used by multi-query front ends, where one graph mutation fans out
// to several engines; single-query callers use InsertEdge.
//
//tf:eval-path
func (e *Engine) EvalInsertedEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	e.beginOp(graph.Edge{From: v, Label: l, To: v2}, true)
	if e.shared {
		// The maintainer has already applied every DCG transition for this
		// update; replay the trigger gates and search read-only.
		e.replayInsertedEdge(v, l, v2)
	} else {
		e.insertEdgeAndEval(v, l, v2)
	}
	if e.opt.NaiveEL {
		e.rebuildFromSpec()
	}
	e.maybeAdjustOrder()
	n := e.endOp()
	if e.aborted {
		return n, ErrWorkBudget
	}
	return n, nil
}

// DeleteEdge applies the edge-deletion operation (v, l, v2): it reports
// every negative match, updates the DCG and then removes the edge from the
// data graph (Algorithm 2, Lines 17–19 — evaluation strictly precedes the
// graph mutation). It returns the number of negative matches. Deleting an
// absent edge is a no-op.
func (e *Engine) DeleteEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	if !e.g.HasEdge(v, l, v2) {
		return 0, nil
	}
	n, err := e.EvalBeforeDelete(v, l, v2)
	e.g.DeleteEdge(v, l, v2)
	if e.opt.NaiveEL {
		// The fixpoint must be computed on the post-delete graph.
		e.rebuildFromSpec()
	}
	return n, err
}

// EvalBeforeDelete updates the DCG and reports negative matches for an
// edge deletion; the edge must still be present in the shared data graph
// and the coordinator must remove it only after every engine has
// evaluated (the operation-order requirement of Algorithm 2). The NaiveEL
// ablation is not supported through this entry point.
//
//tf:eval-path
func (e *Engine) EvalBeforeDelete(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	e.beginOp(graph.Edge{From: v, Label: l, To: v2}, false)
	if e.shared {
		// Replay against the still-intact shared DCG; the maintainer clears
		// the affected branches afterwards, so order adjustment must wait
		// until the coordinator calls AdjustOrderDeferred post-clearing.
		e.replayBeforeDelete(v, l, v2)
		return e.endOp(), nil
	}
	e.deleteEdgeAndEval(v, l, v2)
	e.maybeAdjustOrder()
	n := e.endOp()
	if e.aborted {
		return n, ErrWorkBudget
	}
	return n, nil
}

// NewMaintainer builds the maintenance engine for a shared sub-pattern
// DCG (DESIGN.md §17). The donor is the engine whose DCG is being
// promoted to shared: the maintainer adopts its graph, query tree and
// DCG, and reuses its immutable routing tables (procRank and the label
// indexes are fixed at construction). The maintainer never searches and
// never reports — it exists to apply every DCG transition of an update
// exactly once, through the same Algorithm 5/8 tree loops a private
// engine runs, so the shared DCG's state trajectory is identical to any
// private engine over the same tree. rootSeen is copied, not aliased:
// the donor becomes a read-only member and must not race the
// maintainer's root bookkeeping.
func NewMaintainer(donor *Engine) *Engine {
	e := &Engine{
		g:                donor.g,
		q:                donor.q,
		tree:             donor.tree,
		d:                donor.d,
		opt:              DefaultOptions(),
		m:                make([]graph.VertexID, donor.q.NumVertices()),
		procRank:         donor.procRank,
		treeSlotsByLabel: donor.treeSlotsByLabel,
		nonTreeByLabel:   donor.nonTreeByLabel,
		rootSeen:         append([]bool(nil), donor.rootSeen...),
		trigger:          -1,
	}
	for i := range e.m {
		e.m[i] = graph.NoVertex
	}
	return e
}

// MaintainInsertedEdge applies the DCG transitions of an edge insertion
// without searching: the tree-trigger loop of Algorithm 5 with
// searchable=false climbs. Maintenance is semantics- and
// search-independent, so the resulting DCG state equals what any private
// member engine would have produced. Non-tree triggers never modify the
// DCG and are skipped entirely.
//
//tf:eval-path
func (e *Engine) MaintainInsertedEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) {
	e.beginOp(graph.Edge{From: v, Label: l, To: v2}, true)
	e.ensureRootEdge(v)
	if v2 != v {
		e.ensureRootEdge(v2)
	}
	for _, ucv := range e.treeSlots(l) {
		te := e.tree.ParentEdge[ucv]
		parentV, childV := v, v2
		if !te.Forward {
			parentV, childV = v2, v
		}
		if !e.d.HasInLabel(parentV, te.Parent) {
			continue
		}
		if !e.g.HasAllLabels(parentV, e.q.Labels(te.Parent)) ||
			!e.g.HasAllLabels(childV, e.q.Labels(ucv)) {
			continue
		}
		e.buildDCG(ucv, parentV, childV)
		if e.d.GetState(parentV, ucv, childV) != dcg.Explicit {
			continue
		}
		if !e.d.MatchAllChildren(parentV, te.Parent) {
			continue
		}
		e.buildUpwardsAndEval(te.Parent, parentV, true, false)
	}
	e.endOp()
}

// MaintainBeforeDelete applies the DCG transitions of an edge deletion
// without searching: the tree-trigger loop of Algorithm 8 with
// searchable=false climbs (Transition 4 downgrades) followed by the
// Algorithm 10 clearing. Members must have replayed their negative
// searches against the still-intact DCG before this runs.
//
//tf:eval-path
func (e *Engine) MaintainBeforeDelete(v graph.VertexID, l graph.Label, v2 graph.VertexID) {
	e.beginOp(graph.Edge{From: v, Label: l, To: v2}, false)
	for _, ucv := range e.treeSlots(l) {
		te := e.tree.ParentEdge[ucv]
		parentV, childV := v, v2
		if !te.Forward {
			parentV, childV = v2, v
		}
		if !e.d.HasInLabel(parentV, te.Parent) {
			continue
		}
		if !e.g.HasAllLabels(parentV, e.q.Labels(te.Parent)) ||
			!e.g.HasAllLabels(childV, e.q.Labels(ucv)) {
			continue
		}
		if e.d.GetState(parentV, ucv, childV) == dcg.Explicit &&
			e.d.MatchAllChildren(parentV, te.Parent) {
			e.clearUpwardsAndEval(te.Parent, parentV, ucv, true, false)
		}
		e.clearDCG(ucv, parentV, childV)
	}
	e.endOp()
}

// AdjustOrderDeferred runs the matching-order drift check that
// EvalBeforeDelete skips for shared members: a private engine adjusts on
// the post-clearing DCG, so shared members must wait until the
// maintainer has cleared before sampling the same state.
func (e *Engine) AdjustOrderDeferred() {
	e.maybeAdjustOrder()
}

// ShareDCG flips a private engine into shared-member mode: its DCG is
// adopted by a maintainer and every future eval replays read-only. The
// caller must have built the maintainer from this engine (or an engine
// with the identical tree) before the next update.
func (e *Engine) ShareDCG() { e.shared = true }

// UnshareDCG flips a shared member back to private mode, returning DCG
// ownership to it: the engine resumes applying its own transitions. Its
// rootSeen cache may have missed vertices settled while shared; missing
// entries just re-probe, recorded entries remain true (root edges are
// never nulled and labels are immutable).
func (e *Engine) UnshareDCG() { e.shared = false }

// SharedMember reports whether the engine is in shared-member mode.
func (e *Engine) SharedMember() bool { return e.shared }

// Apply applies one stream update and returns the number of matches it
// produced. Vertex declarations create the vertex (and, when it matches
// L(u_s), its root DCG edge) and produce no matches.
func (e *Engine) Apply(u stream.Update) (int64, error) {
	switch u.Op {
	case stream.OpInsert:
		return e.InsertEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpDelete:
		return e.DeleteEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpVertex:
		if !e.g.HasVertex(u.Vertex) {
			e.g.EnsureVertex(u.Vertex, u.Labels...)
			e.NotifyVertexAdded(u.Vertex)
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("core: unknown update op %d", u.Op)
	}
}

func (e *Engine) beginOp(ed graph.Edge, positive bool) {
	e.updEdge = ed
	e.positive = positive
	e.opMatches = 0
	e.opWork = 0
	e.aborted = false
	e.clearTrigger()
	if e.opt.DisableCheckAndAvoid {
		e.visited = make(map[dcg.EdgeKey]bool)
	}
}

func (e *Engine) endOp() int64 {
	n := e.opMatches
	e.opMatches = 0
	e.clearTrigger()
	return n
}

// mapVertex binds query vertex u to data vertex v in the working mapping.
//
//tf:hotpath
func (e *Engine) mapVertex(u, v graph.VertexID) {
	e.m[u] = v
	if e.iso {
		if int(v) >= len(e.useCnt) {
			n := int(v) + 1
			if n < 2*len(e.useCnt) {
				n = 2 * len(e.useCnt) // amortize repeated growth
			}
			nc := make([]int32, n)
			copy(nc, e.useCnt)
			e.useCnt = nc
		}
		e.useCnt[v]++
	}
}

// unmapVertex clears the binding of u.
//
//tf:hotpath
func (e *Engine) unmapVertex(u graph.VertexID) {
	v := e.m[u]
	e.m[u] = graph.NoVertex
	if e.iso && v != graph.NoVertex {
		e.useCnt[v]--
	}
}

// usable reports whether data vertex v may be bound to one more query
// vertex under the configured semantics.
//
//tf:hotpath
func (e *Engine) usable(v graph.VertexID) bool {
	return !e.iso || int(v) >= len(e.useCnt) || e.useCnt[v] == 0
}

// edgeMatchesTreeSlot reports whether data edge (v, l, v2) matches the tree
// edge of child query vertex u in the direction parent-at-v: i.e. the
// oriented data edge from the parent side v to the child side v2 carries
// the right label, direction and endpoint label constraints.
func (e *Engine) edgeMatchesTreeSlot(u graph.VertexID, v, v2 graph.VertexID, l graph.Label, forwardFromParent bool) bool {
	te := e.tree.ParentEdge[u]
	if te.Label != l || te.Forward != forwardFromParent {
		return false
	}
	return e.g.HasAllLabels(v, e.q.Labels(te.Parent)) && e.g.HasAllLabels(v2, e.q.Labels(u))
}

// setTrigger records the query edge owning the current evaluation and
// precomputes the duplicate-avoidance checks: the query edges with the
// same label that outrank the trigger (higher processing rank for
// insertions, lower for deletions) and could therefore own a solution
// that also maps them onto the updated data edge.
func (e *Engine) setTrigger(i int) {
	e.trigger = i
	e.dedupChecks = e.dedupChecks[:0]
	tr := e.procRank[i]
	for j, qe := range e.q.Edges() {
		if j == i || qe.Label != e.updEdge.Label {
			continue
		}
		r := e.procRank[j]
		if (e.positive && r > tr) || (!e.positive && r < tr) {
			e.dedupChecks = append(e.dedupChecks, qe)
		}
	}
}

func (e *Engine) clearTrigger() {
	e.trigger = -1
	e.dedupChecks = e.dedupChecks[:0]
}

// treeSlots returns the child query vertices whose parent tree edge can
// match a data edge labeled l.
//
//tf:hotpath
func (e *Engine) treeSlots(l graph.Label) []graph.VertexID {
	if int(l) < len(e.treeSlotsByLabel) {
		return e.treeSlotsByLabel[l]
	}
	return nil
}

// nonTreeSlots returns the non-tree query-edge indexes whose edge can
// match a data edge labeled l.
//
//tf:hotpath
func (e *Engine) nonTreeSlots(l graph.Label) []int {
	if int(l) < len(e.nonTreeByLabel) {
		return e.nonTreeByLabel[l]
	}
	return nil
}

// report emits the current complete mapping if it survives duplicate
// avoidance (Section 3.3 of DESIGN.md): with a trigger edge set, the
// solution is reported only when the trigger is the maximum-rank
// (insertion) or minimum-rank (deletion) query edge among those the
// solution maps onto the updated data edge.
func (e *Engine) report() {
	for _, qe := range e.dedupChecks {
		if e.m[qe.From] == e.updEdge.From && e.m[qe.To] == e.updEdge.To {
			return // an outranking trigger owns this solution
		}
	}
	e.opMatches++
	if e.positive {
		e.posTotal++
	} else {
		e.negTotal++
	}
	if e.opt.OnMatch != nil {
		e.opt.OnMatch(e.positive, e.m)
	}
}
