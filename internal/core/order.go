package core

import (
	"turboflux/internal/dcg"
	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// orderDriftSlack is the absolute slack before a per-label explicit-count
// change is considered significant for matching-order adjustment.
const orderDriftSlack = 64

// computeMatchingOrder derives the matching order from the exact explicit
// data-path counts maintained by the DCG (Section 4.1: "since we have
// built the DCG, we can accurately estimate c(T_i) based on the number of
// explicit data paths for each query path").
func (e *Engine) computeMatchingOrder() {
	e.mo = query.DetermineMatchingOrder(e.tree, func(u graph.VertexID) float64 {
		return float64(e.d.ExplicitCount(u))
	})
	if e.orderStats == nil {
		e.orderStats = make([]int64, e.q.NumVertices())
	}
	for u := 0; u < e.q.NumVertices(); u++ {
		e.orderStats[u] = e.d.ExplicitCount(graph.VertexID(u))
	}
}

// maybeAdjustOrder is AdjustMatchingOrder (Algorithm 2, Line 20): the
// matching order is recomputed when any per-label explicit-path count has
// drifted by more than 2x (plus slack) since the order was computed.
func (e *Engine) maybeAdjustOrder() {
	if e.opt.DisableOrderAdjust {
		return
	}
	for u := 0; u < e.q.NumVertices(); u++ {
		cur := e.d.ExplicitCount(graph.VertexID(u))
		old := e.orderStats[u]
		if cur > 2*old+orderDriftSlack || old > 2*cur+orderDriftSlack {
			e.computeMatchingOrder()
			return
		}
	}
}

// rebuildFromSpec replaces the DCG with the declarative fixpoint of the
// edge transition model (Algorithm 1, EL) computed from scratch. Only
// reachable behind Options.NaiveEL — the from-scratch ablation of the
// enhanced maintenance algorithms — never from the incremental fast path.
//
//tf:oracle-ok gated NaiveEL ablation slow path
func (e *Engine) rebuildFromSpec() {
	states := dcg.ComputeSpec(e.g, e.tree)
	d := dcg.New(e.tree)
	//tf:unordered-ok transitions to absolute states commute
	for k, s := range states {
		d.MakeTransition(k.From, k.QV, k.To, s)
	}
	e.d = d
}
