package core

import (
	"turboflux/internal/dcg"
	"turboflux/internal/graph"
)

// Strategy selects the SubgraphSearch candidate-enumeration style.
type Strategy uint8

const (
	// Backtracking iterates the DCG's explicit children of the tree parent
	// and validates non-tree edges per candidate (Algorithm 7, the paper's
	// default, built on TurboHom++).
	Backtracking Strategy = iota
	// WCOJoin is the worst-case-optimal variant the paper sketches in
	// Section 4.3: candidates for each query vertex come from intersecting
	// every available constraint list — the tree parent's explicit DCG
	// children plus the data adjacency of each already-mapped non-tree
	// neighbor — iterating the smallest list and probing the rest in O(1)
	// each, in the style of Generic Join run over the DCG instead of the
	// raw data graph.
	WCOJoin
)

func (s Strategy) String() string {
	if s == WCOJoin {
		return "wco-join"
	}
	return "backtracking"
}

// wcoConstraint is one non-tree adjacency constraint on the vertex being
// extended: the query edge and whether the candidate plays the From role.
type wcoConstraint struct {
	qe       graph.Edge
	selfLoop bool
	outward  bool // candidate is qe.From; the mapped endpoint is m(qe.To)
}

// check probes the constraint for candidate v.
func (c wcoConstraint) check(e *Engine, v graph.VertexID) bool {
	if c.selfLoop {
		return e.g.HasEdge(v, c.qe.Label, v)
	}
	if c.outward {
		w := e.m[c.qe.To]
		return w == graph.NoVertex || e.g.HasEdge(v, c.qe.Label, w)
	}
	w := e.m[c.qe.From]
	return w == graph.NoVertex || e.g.HasEdge(w, c.qe.Label, v)
}

// searchWCO extends the mapping at query vertex u (tree parent mapped to
// vp) by intersecting all constraint lists, iterating the smallest.
func (e *Engine) searchWCO(u graph.VertexID, vp graph.VertexID, dc int) {
	// Gather every constraint list: index -1 is the tree list; non-tree
	// lists carry their probe descriptor.
	treeList := e.d.ExplicitChildrenList(vp, u)
	type listed struct {
		list []graph.VertexID
		c    wcoConstraint
	}
	var lists []listed
	var selfLoops []wcoConstraint
	for _, nt := range e.tree.NonTreeAt[u] {
		qe := e.q.Edge(nt)
		if qe.From == u && qe.To == u {
			selfLoops = append(selfLoops, wcoConstraint{qe: qe, selfLoop: true})
			continue
		}
		if qe.From == u {
			w := e.m[qe.To]
			if w == graph.NoVertex {
				continue // unmapped neighbor constrains nothing yet
			}
			lists = append(lists, listed{
				list: e.g.InNeighbors(w, qe.Label), // {cand | cand -label-> w}
				c:    wcoConstraint{qe: qe, outward: true},
			})
		} else {
			w := e.m[qe.From]
			if w == graph.NoVertex {
				continue
			}
			lists = append(lists, listed{
				list: e.g.OutNeighbors(w, qe.Label), // {cand | w -label-> cand}
				c:    wcoConstraint{qe: qe, outward: false},
			})
		}
	}
	// Pick the smallest list to iterate; all others become probes.
	pick := -1 // -1 = tree list
	iterate := treeList
	for i := range lists {
		if len(lists[i].list) < len(iterate) {
			pick, iterate = i, lists[i].list
		}
	}
	probeTree := pick >= 0
	constraints := selfLoops
	for i := range lists {
		if i != pick {
			constraints = append(constraints, lists[i].c)
		}
	}

	for _, v := range iterate {
		if e.aborted {
			return
		}
		if !e.usable(v) {
			continue
		}
		if probeTree && e.d.GetState(vp, u, v) != dcg.Explicit {
			continue
		}
		ok := true
		for _, c := range constraints {
			if !c.check(e, v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		e.mapVertex(u, v)
		e.subgraphSearch(dc + 1)
		e.unmapVertex(u)
	}
}
