package core

import (
	"turboflux/internal/dcg"
	"turboflux/internal/graph"
)

// subgraphSearch is Algorithm 7: a backtracking homomorphism (or
// isomorphism) search along the matching order that enumerates candidate
// data vertices through EXPLICIT DCG edges only. Query vertices premapped
// by the upward traversals are validated rather than enumerated; completed
// mappings are reported through Engine.report, which applies duplicate
// avoidance against the current trigger edge.
//
//tf:hotpath
func (e *Engine) subgraphSearch(dc int) {
	if !e.charge() {
		return
	}
	if dc == len(e.mo) {
		e.report()
		return
	}
	u := e.mo[dc]
	var vp graph.VertexID
	if u == e.tree.Root {
		vp = graph.NoVertex
	} else {
		vp = e.m[e.tree.ParentEdge[u].Parent]
	}
	if v := e.m[u]; v != graph.NoVertex {
		// Premapped (the trigger endpoints and the climbed ancestor chain).
		if e.d.GetState(vp, u, v) != dcg.Explicit {
			return
		}
		if e.isJoinable(u, v) {
			e.subgraphSearch(dc + 1)
		}
		return
	}
	if u == e.tree.Root {
		// Only reachable when the search is run without a premapped root.
		for _, v := range e.d.RootCandidates(true) {
			e.tryCandidate(u, v, dc)
		}
		return
	}
	if e.opt.Search == WCOJoin {
		e.searchWCO(u, vp, dc)
		return
	}
	// Candidates come straight from the DCG-owned out-adjacency slice. The
	// search phase applies no DCG transitions, so the slice is stable for
	// the duration of the loop; iterating it directly avoids allocating a
	// visitor closure at every search node.
	for _, v := range e.d.ExplicitChildrenList(vp, u) {
		if e.aborted {
			return
		}
		e.tryCandidate(u, v, dc)
	}
}

//tf:hotpath
func (e *Engine) tryCandidate(u, v graph.VertexID, dc int) {
	if !e.usable(v) {
		return
	}
	if !e.isJoinable(u, v) {
		return
	}
	e.mapVertex(u, v)
	e.subgraphSearch(dc + 1)
	e.unmapVertex(u)
}

// isJoinable checks that every non-tree query edge between u and an
// already-mapped query vertex has a corresponding data edge when u maps to
// v (IsJoinable in Algorithm 7; the total-order duplicate check moved to
// report time, see Engine.report).
//
//tf:hotpath
func (e *Engine) isJoinable(u, v graph.VertexID) bool {
	for _, nt := range e.tree.NonTreeAt[u] {
		qe := e.q.Edge(nt)
		switch {
		case qe.From == u && qe.To == u:
			if !e.g.HasEdge(v, qe.Label, v) {
				return false
			}
		case qe.From == u:
			if w := e.m[qe.To]; w != graph.NoVertex && !e.g.HasEdge(v, qe.Label, w) {
				return false
			}
		default: // qe.To == u
			if w := e.m[qe.From]; w != graph.NoVertex && !e.g.HasEdge(w, qe.Label, v) {
				return false
			}
		}
	}
	return true
}
