package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// detStream builds a seeded insert/delete stream over a data graph dense
// enough that single updates trigger fan-out (multiple matches reported in
// one SubgraphSearch) — the regime where map-iteration order would leak
// into the output if any emission path were unordered.
func detStream(t *testing.T) (*graph.Graph, []detOp) {
	t.Helper()
	g := graph.New()
	// Three label classes, several vertices each, so every query vertex has
	// competing candidates.
	for v := graph.VertexID(0); v < 4; v++ {
		if err := g.AddVertex(v, lA); err != nil {
			t.Fatal(err)
		}
	}
	for v := graph.VertexID(10); v < 16; v++ {
		if err := g.AddVertex(v, lB); err != nil {
			t.Fatal(err)
		}
	}
	for v := graph.VertexID(20); v < 28; v++ {
		if err := g.AddVertex(v, lC); err != nil {
			t.Fatal(err)
		}
	}
	for v := graph.VertexID(30); v < 36; v++ {
		if err := g.AddVertex(v, lD); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	pick := func(lo, n int) graph.VertexID { return graph.VertexID(lo + rng.Intn(n)) }
	var ops []detOp
	live := map[graph.Edge]bool{}
	for i := 0; i < 400; i++ {
		var e graph.Edge
		switch rng.Intn(4) {
		case 0:
			e = graph.Edge{From: pick(0, 4), Label: e1, To: pick(10, 6)}
		case 1:
			e = graph.Edge{From: pick(10, 6), Label: e2, To: pick(20, 8)}
		case 2:
			e = graph.Edge{From: pick(10, 6), Label: e3, To: pick(20, 8)}
		default:
			e = graph.Edge{From: pick(20, 8), Label: e4, To: pick(30, 6)}
		}
		if live[e] {
			ops = append(ops, detOp{edge: e, insert: false})
			delete(live, e)
		} else {
			ops = append(ops, detOp{edge: e, insert: true})
			live[e] = true
		}
	}
	return g, ops
}

type detOp struct {
	edge   graph.Edge
	insert bool
}

// runStream replays ops through a fresh engine and returns the full ordered
// match transcript, one line per reported match.
func runStream(t *testing.T, q *query.Graph, ops []detOp, sem Semantics) string {
	t.Helper()
	g, _ := detStream(t)
	var b strings.Builder
	opt := DefaultOptions()
	opt.Semantics = sem
	opt.OnMatch = func(positive bool, m []graph.VertexID) {
		sign := "+"
		if !positive {
			sign = "-"
		}
		fmt.Fprintf(&b, "%s %v\n", sign, m)
	}
	e, err := New(g, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	e.InitialMatches()
	for _, op := range ops {
		var err error
		if op.insert {
			_, err = e.InsertEdge(op.edge.From, op.edge.Label, op.edge.To)
		} else {
			_, err = e.DeleteEdge(op.edge.From, op.edge.Label, op.edge.To)
		}
		if err != nil {
			t.Fatalf("op %+v: %v", op, err)
		}
	}
	return b.String()
}

// TestDeterministicEmission is the regression companion of the
// deterministic-emission analyzer: replaying the identical update stream
// through two fresh engines must produce byte-identical match transcripts,
// in both semantics. Map-order leakage anywhere on the emission path
// (candidate snapshots, root seeding, search fan-out) breaks this with high
// probability given the fan-out in the stream.
func TestDeterministicEmission(t *testing.T) {
	_, ops := detStream(t)
	for _, sem := range []Semantics{Homomorphism, Isomorphism} {
		t.Run(sem.String(), func(t *testing.T) {
			q := figure1Query(t)
			first := runStream(t, q, ops, sem)
			if !strings.Contains(first, "+") || !strings.Contains(first, "-") {
				t.Fatalf("stream produced no positive or no negative matches; transcript:\n%.400s", first)
			}
			for round := 0; round < 3; round++ {
				again := runStream(t, figure1Query(t), ops, sem)
				if again != first {
					t.Fatalf("round %d: transcripts differ\nfirst:\n%.600s\nagain:\n%.600s", round, first, again)
				}
			}
		})
	}
}
