package core

import (
	"turboflux/internal/dcg"
	"turboflux/internal/graph"
)

// buildDCG is Algorithm 3: it records the candidate edge (v, u, v2) as
// IMPLICIT (Transition 1), recursively builds the DCG for v2's subtrees
// unless they were already built (check-and-avoid), and upgrades the edge
// to EXPLICIT when every subtree of u matches under v2 (Transition 2,
// Case 1/2).
//
// Deviation from the pseudo-code, documented in DESIGN.md §3.2: recursion
// only follows an actual NULL→IMPLICIT change, which terminates the
// traversal on cyclic data graphs.
//
//tf:hotpath
func (e *Engine) buildDCG(u graph.VertexID, v, v2 graph.VertexID) {
	if !e.charge() {
		return
	}
	state := e.d.GetState(v, u, v2)
	if state == dcg.Explicit {
		return // already built and complete
	}
	fresh := state == dcg.Null
	if fresh {
		// Case 1 (non-recursive call) or Case 2 (recursive) of Transition 1.
		e.d.MakeTransition(v, u, v2, dcg.Implicit)
	} else if !e.opt.DisableCheckAndAvoid {
		// Implicit edge already recorded: its subtree DCG is already built
		// (and incomplete). Nothing to do.
		return
	}
	if e.opt.DisableCheckAndAvoid {
		key := dcg.EdgeKey{From: v, QV: u, To: v2}
		if e.visited != nil {
			//tf:map-ok gated DisableCheckAndAvoid ablation branch
			if e.visited[key] {
				return
			}
			//tf:map-ok gated DisableCheckAndAvoid ablation branch
			e.visited[key] = true
		}
		e.buildSubtrees(u, v2)
	} else if fresh && e.d.InDegree(v2, u) == 1 {
		// check-and-avoid: recurse only when (v, u, v2) is the first
		// incoming u-edge of v2; otherwise the subtree DCG exists already.
		e.buildSubtrees(u, v2)
	}
	// Case 1 or 2 of Transition 2.
	if e.d.MatchAllChildren(v2, u) {
		e.d.MakeTransition(v, u, v2, dcg.Explicit)
	}
}

// buildSubtrees recurses into every matching child edge of v2 (Algorithm 3,
// Lines 3–5).
//
//tf:hotpath
func (e *Engine) buildSubtrees(u graph.VertexID, v2 graph.VertexID) {
	for _, uc := range e.tree.Children[u] {
		te := e.tree.ParentEdge[uc]
		childLabels := e.q.Labels(uc)
		var nbrs []graph.VertexID
		if te.Forward {
			nbrs = e.g.OutNeighbors(v2, te.Label)
		} else {
			nbrs = e.g.InNeighbors(v2, te.Label)
		}
		for _, vc := range nbrs {
			if e.g.HasAllLabels(vc, childLabels) {
				e.buildDCG(uc, v2, vc)
			}
		}
	}
}
