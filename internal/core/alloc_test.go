//go:build !race

package core

import (
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// TestEvalPathAllocs guards the dense-layout contract end to end at the
// single-engine level (DESIGN.md §16): once warm, an insert/delete cycle
// that builds and tears down DCG state — root edges, tree-edge branches,
// slot release and recycling, adjacency-bucket churn — must run without a
// single allocation. The query's lower branch is never completed, so no
// matches are emitted and the cycle's work is pure maintenance.
func TestEvalPathAllocs(t *testing.T) {
	g := graph.New()
	for v := graph.VertexID(1); v <= 8; v++ {
		g.EnsureVertex(v)
	}
	// Unlabeled 2-path query: every vertex is a root candidate, label-0
	// edges build real DCG branches, and the absent label-1 edges keep
	// every branch implicit (no search, no emission).
	q := query.NewGraph(3)
	if err := q.AddEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	e, err := New(g, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		for i := graph.VertexID(1); i <= 4; i++ {
			if _, err := e.InsertEdge(i, 0, i+4); err != nil {
				t.Fatal(err)
			}
		}
		for i := graph.VertexID(1); i <= 4; i++ {
			if _, err := e.DeleteEdge(i, 0, i+4); err != nil {
				t.Fatal(err)
			}
		}
	}
	cycle() // warm: adjacency buckets, DCG slots, scratch arenas
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("insert/delete eval cycle allocates %v per run, want 0", avg)
	}
}
