package core

import (
	"turboflux/internal/dcg"
	"turboflux/internal/graph"
)

// deleteEdgeAndEval is Algorithm 8: the edge (v, l, v2) is about to be
// deleted from the data graph (the engine removes it after this returns).
// For every tree query edge it matches, negative matches are reported by
// climbing upward through the still-intact explicit structure
// (ClearUpwardsAndEval applies Transition 4 after the searches), and then
// the DCG subtree hanging off the edge is cleared (Transitions 3 and 5).
// Non-tree matches seed transition-free upward traversals.
//
//tf:hotpath
func (e *Engine) deleteEdgeAndEval(v graph.VertexID, l graph.Label, v2 graph.VertexID) {
	for _, ucv := range e.treeSlots(l) {
		te := e.tree.ParentEdge[ucv]
		parentV, childV := v, v2
		if !te.Forward {
			parentV, childV = v2, v
		}
		if !e.d.HasInLabel(parentV, te.Parent) {
			continue // Case 2 of Transition 0
		}
		if !e.g.HasAllLabels(parentV, e.q.Labels(te.Parent)) ||
			!e.g.HasAllLabels(childV, e.q.Labels(ucv)) {
			continue // Case 1 of Transition 0
		}
		if e.d.GetState(parentV, ucv, childV) == dcg.Explicit {
			if e.d.MatchAllChildren(parentV, te.Parent) {
				e.setTrigger(te.Index)
				e.mapVertex(ucv, childV)
				e.clearUpwardsAndEval(te.Parent, parentV, ucv, true, true)
				e.unmapVertex(ucv)
				e.clearTrigger()
			}
		}
		e.clearDCG(ucv, parentV, childV)
	}

	// Non-tree query edges (Algorithm 8, Lines 11–18). Tree-edge clearing
	// above may already have destroyed state these solutions would need;
	// duplicate avoidance assigns each such solution to its minimum-rank
	// trigger, and tree triggers rank below non-tree triggers, so any
	// solution lost here was already reported by a tree trigger.
	e.deleteNonTreeTriggers(v, l, v2)
}

// deleteNonTreeTriggers runs the non-tree trigger loop of Algorithm 8
// (Lines 11–18): transition-free upward climbs reporting negatives.
// Identical for private evaluation and shared-member replay — non-tree
// triggers never modify the DCG.
//
//tf:hotpath
func (e *Engine) deleteNonTreeTriggers(v graph.VertexID, l graph.Label, v2 graph.VertexID) {
	for _, nt := range e.nonTreeSlots(l) {
		qe := e.q.Edge(nt)
		if !e.d.HasInLabel(v, qe.From) || !e.d.HasInLabel(v2, qe.To) {
			continue
		}
		if !e.d.MatchAllChildren(v, qe.From) || !e.d.MatchAllChildren(v2, qe.To) {
			continue
		}
		e.setTrigger(nt)
		if qe.To == qe.From {
			if v == v2 {
				e.clearUpwardsAndEval(qe.From, v, graph.NoVertex, false, true)
			}
		} else if e.usable(v2) {
			e.mapVertex(qe.To, v2)
			e.clearUpwardsAndEval(qe.From, v, graph.NoVertex, false, true)
			e.unmapVertex(qe.To)
		}
		e.clearTrigger()
	}
}

// replayBeforeDelete is the shared-member twin of deleteEdgeAndEval
// (DESIGN.md §17): it runs BEFORE the maintainer applies any clearing,
// against the still-intact shared DCG, climbing transition-free
// (uChild=NoVertex disables Transition 4) and never calling clearDCG.
// The intact state is a superset of every mid-clearing view a private
// engine would have seen, so every privately-reported negative is
// enumerated here; any extra solution reachable only through state a
// private engine had already destroyed necessarily maps the deleted
// edge at a lower-rank trigger (the destroyed state's support chain
// leads to the deleted edge) and is suppressed by the min-rank
// duplicate check.
//
//tf:hotpath
func (e *Engine) replayBeforeDelete(v graph.VertexID, l graph.Label, v2 graph.VertexID) {
	for _, ucv := range e.treeSlots(l) {
		te := e.tree.ParentEdge[ucv]
		parentV, childV := v, v2
		if !te.Forward {
			parentV, childV = v2, v
		}
		if !e.d.HasInLabel(parentV, te.Parent) {
			continue
		}
		if !e.g.HasAllLabels(parentV, e.q.Labels(te.Parent)) ||
			!e.g.HasAllLabels(childV, e.q.Labels(ucv)) {
			continue
		}
		if e.d.GetState(parentV, ucv, childV) == dcg.Explicit &&
			e.d.MatchAllChildren(parentV, te.Parent) {
			e.setTrigger(te.Index)
			e.mapVertex(ucv, childV)
			e.clearUpwardsAndEval(te.Parent, parentV, graph.NoVertex, false, true)
			e.unmapVertex(ucv)
			e.clearTrigger()
		}
	}
	e.deleteNonTreeTriggers(v, l, v2)
}

// clearUpwardsAndEval is Algorithm 9: map u to v, climb v's incoming
// EXPLICIT edges labeled u toward the starting vertices, run
// SubgraphSearch to report negative matches at the root, and — only after
// the recursion under each parent finishes — apply Transition 4 (EXPLICIT
// → IMPLICIT) to the climbed edge when the deleted edge was v's last
// explicit support for child label uChild. uChild is graph.NoVertex for
// non-tree triggers, which never transition.
//
//tf:hotpath
func (e *Engine) clearUpwardsAndEval(u graph.VertexID, v graph.VertexID, uChild graph.VertexID, transit, searchable bool) {
	if !e.charge() {
		return
	}
	mapped := false
	if searchable {
		switch {
		case e.m[u] == v:
		case e.m[u] != graph.NoVertex || !e.usable(v):
			// Mapping conflict: no negatives along this path, but the
			// Transition 4 downgrades are semantics-independent and must
			// still propagate.
			searchable = false
		default:
			e.mapVertex(u, v)
			mapped = true
		}
	}
	// Precondition for Case 1 of Transition 4: after the deleted edge goes
	// away, v will have no outgoing explicit edge labeled uChild, so v's
	// incoming explicit u-edges lose their support.
	precondition := transit && uChild != graph.NoVertex && e.d.ExplicitOut(v, uChild) == 1
	// Parent snapshot from the engine arena (see buildUpwardsAndEval).
	mark := len(e.parentScratch)
	e.parentScratch = e.d.AppendInParents(e.parentScratch, v, u, true)
	parents := e.parentScratch[mark:]
	for _, vp := range parents {
		if u == e.tree.Root {
			if searchable {
				e.subgraphSearch(0)
			}
		} else {
			up := e.tree.ParentEdge[u].Parent
			if e.d.MatchAllChildren(vp, up) {
				e.clearUpwardsAndEval(up, vp, u, precondition, searchable)
			}
		}
		// Case 1 of Transition 4, applied after the upward searches so the
		// explicit structure stays intact while negatives are reported.
		if precondition {
			e.d.MakeTransition(vp, u, v, dcg.Implicit)
		}
	}
	e.parentScratch = e.parentScratch[:mark]
	if mapped {
		e.unmapVertex(u)
	}
}

// clearDCG is Algorithm 10: null the DCG edge (v, u, v2) (Transition 3 if
// it was explicit, Transition 5 if implicit) and, when v2 thereby loses its
// last incoming u-edge, recursively null the orphaned subtree below it
// (Case 2 of Transitions 3 and 5).
//
//tf:hotpath
func (e *Engine) clearDCG(u graph.VertexID, v, v2 graph.VertexID) {
	if !e.charge() {
		return
	}
	if !e.d.MakeTransition(v, u, v2, dcg.Null) {
		return
	}
	if e.d.InDegree(v2, u) != 0 {
		return
	}
	for _, uc := range e.tree.Children[u] {
		te := e.tree.ParentEdge[uc]
		var nbrs []graph.VertexID
		if te.Forward {
			nbrs = e.g.OutNeighbors(v2, te.Label)
		} else {
			nbrs = e.g.InNeighbors(v2, te.Label)
		}
		// Snapshot: clearDCG mutates adjacency-backed DCG state but not the
		// data graph, so the neighbor slices stay stable; still, nulling is
		// idempotent through MakeTransition's change check.
		for _, vc := range nbrs {
			if e.d.GetState(v2, uc, vc) != dcg.Null {
				e.clearDCG(uc, v2, vc)
			}
		}
	}
}
