package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"turboflux/internal/dcg"
	"turboflux/internal/graph"
	"turboflux/internal/naive"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// randQuery generates a small connected query: a random tree over n
// vertices plus up to extra non-tree edges, with random (possibly empty)
// vertex label constraints.
func randQuery(rng *rand.Rand, n, extra, vLabels, eLabels int) *query.Graph {
	q := query.NewGraph(n)
	for u := 0; u < n; u++ {
		if rng.Intn(3) > 0 { // 2/3 of vertices constrained
			q.SetLabels(graph.VertexID(u), graph.Label(rng.Intn(vLabels)))
		}
	}
	for u := 1; u < n; u++ {
		p := graph.VertexID(rng.Intn(u))
		l := graph.Label(rng.Intn(eLabels))
		if rng.Intn(2) == 0 {
			_ = q.AddEdge(p, l, graph.VertexID(u))
		} else {
			_ = q.AddEdge(graph.VertexID(u), l, p)
		}
	}
	for i := 0; i < extra; i++ {
		a := graph.VertexID(rng.Intn(n))
		b := graph.VertexID(rng.Intn(n))
		_ = q.AddEdge(a, graph.Label(rng.Intn(eLabels)), b) // duplicates rejected
	}
	return q
}

// randGraph generates a labeled data graph with nv vertices.
func randGraph(rng *rand.Rand, nv, edges, vLabels, eLabels int) *graph.Graph {
	g := graph.New()
	for v := 0; v < nv; v++ {
		_ = g.AddVertex(graph.VertexID(v), graph.Label(rng.Intn(vLabels)))
	}
	for i := 0; i < edges; i++ {
		g.InsertEdge(graph.VertexID(rng.Intn(nv)), graph.Label(rng.Intn(eLabels)),
			graph.VertexID(rng.Intn(nv)))
	}
	return g
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// runDifferential drives a random update stream through the TurboFlux
// engine and the naive recompute oracle, asserting after every update that
//
//  1. the reported positive/negative match sets are identical,
//  2. the engine's DCG equals the declarative fixpoint (ComputeSpec), and
//  3. the DCG's internal counters validate.
func runDifferential(t *testing.T, seed int64, injective bool, steps int) {
	runDifferentialOpts(t, seed, injective, steps, nil)
}

// runDifferentialOpts additionally applies an Options mutator, so engine
// variants (e.g. the WCO search strategy) run the same differential suite.
func runDifferentialOpts(t *testing.T, seed int64, injective bool, steps int, mutate func(*Options)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nv, vLabels, eLabels = 10, 3, 3
	q := randQuery(rng, 3+rng.Intn(3), rng.Intn(3), vLabels, eLabels)
	g0 := randGraph(rng, nv, 8+rng.Intn(10), vLabels, eLabels)

	sem := Homomorphism
	if injective {
		sem = Isomorphism
	}
	pos := map[string]bool{}
	neg := map[string]bool{}
	opt := DefaultOptions()
	opt.Semantics = sem
	if mutate != nil {
		mutate(&opt)
	}
	opt.OnMatch = func(positive bool, m []graph.VertexID) {
		k := mapKey(m)
		if positive {
			if pos[k] {
				t.Fatalf("duplicate positive match %s", k)
			}
			pos[k] = true
		} else {
			if neg[k] {
				t.Fatalf("duplicate negative match %s", k)
			}
			neg[k] = true
		}
	}
	eng, err := New(g0.Clone(), q, opt)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := naive.New(g0.Clone(), q, injective)
	if err != nil {
		t.Fatal(err)
	}

	// Initial matches must agree.
	initSet := map[string]bool{}
	pos = initSet
	eng.InitialMatches()
	if got, want := sortedKeys(initSet), sortedKeys(oracle.InitialMatches()); !reflect.DeepEqual(got, want) {
		t.Fatalf("seed %d: initial matches differ:\n got %v\nwant %v\nquery %v", seed, got, want, q)
	}

	live := map[graph.Edge]bool{}
	g0.ForEachEdge(func(e graph.Edge) { live[e] = true })

	for step := 0; step < steps; step++ {
		var up stream.Update
		if len(live) > 0 && rng.Intn(3) == 0 {
			// Delete a random live edge.
			es := make([]graph.Edge, 0, len(live))
			for e := range live {
				es = append(es, e)
			}
			sort.Slice(es, func(i, j int) bool {
				return fmt.Sprint(es[i]) < fmt.Sprint(es[j])
			})
			e := es[rng.Intn(len(es))]
			up = stream.Delete(e.From, e.Label, e.To)
			delete(live, e)
		} else {
			e := graph.Edge{
				From:  graph.VertexID(rng.Intn(nv)),
				Label: graph.Label(rng.Intn(eLabels)),
				To:    graph.VertexID(rng.Intn(nv)),
			}
			up = stream.Insert(e.From, e.Label, e.To)
			live[e] = true
		}

		pos, neg = map[string]bool{}, map[string]bool{}
		if _, err := eng.Apply(up); err != nil {
			t.Fatalf("seed %d step %d: %v", seed, step, err)
		}
		oPos, oNeg, err := oracle.Apply(up)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sortedKeys(pos), sortedKeys(oPos); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d step %d (%v %v): positive mismatch\n got %v\nwant %v\nquery %v",
				seed, step, up.Op, up.Edge, got, want, q)
		}
		if got, want := sortedKeys(neg), sortedKeys(oNeg); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d step %d (%v %v): negative mismatch\n got %v\nwant %v\nquery %v",
				seed, step, up.Op, up.Edge, got, want, q)
		}

		// DCG must equal the declarative fixpoint.
		spec := dcg.ComputeSpec(eng.Graph(), eng.Tree())
		snap := eng.DCG().SnapshotMap()
		if len(spec) != len(snap) {
			t.Fatalf("seed %d step %d: DCG has %d edges, spec %d\nsnap=%v\nspec=%v\nquery %v",
				seed, step, len(snap), len(spec), snap, spec, q)
		}
		for k, s := range spec {
			if snap[k] != s {
				t.Fatalf("seed %d step %d: DCG[%v]=%v, spec=%v (query %v)",
					seed, step, k, snap[k], s, q)
			}
		}
		if err := eng.DCG().Validate(); err != nil {
			t.Fatalf("seed %d step %d: %v", seed, step, err)
		}
	}
}

func TestDifferentialHomomorphism(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runDifferential(t, seed, false, 60)
	}
}

func TestDifferentialIsomorphism(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		runDifferential(t, seed, true, 60)
	}
}

func TestDifferentialLongStream(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential test")
	}
	runDifferential(t, 424242, false, 400)
	runDifferential(t, 434343, true, 400)
}

// TestDifferentialWCOJoin runs the differential suite with the
// worst-case-optimal search strategy: identical match sets and DCG states
// are required, only the enumeration order differs.
func TestDifferentialWCOJoin(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		runDifferentialOpts(t, seed, seed%2 == 0, 60, func(o *Options) {
			o.Search = WCOJoin
		})
	}
}
