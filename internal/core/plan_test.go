package core

import (
	"strings"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

func TestPlanSnapshot(t *testing.T) {
	e := newFig1Engine(t, nil)
	p := e.Plan()
	if p.StartVertex != 0 {
		t.Fatalf("start = u%d", p.StartVertex)
	}
	if len(p.TreeEdges) != 4 {
		t.Fatalf("tree edges = %d, want 4", len(p.TreeEdges))
	}
	if len(p.NonTreeEdges) != 0 {
		t.Fatalf("non-tree = %v", p.NonTreeEdges)
	}
	if len(p.MatchingOrder) != 5 || p.MatchingOrder[0] != 0 {
		t.Fatalf("order = %v", p.MatchingOrder)
	}
	if p.DCGEdges != e.DCG().NumEdges() {
		t.Fatal("DCG edge count mismatch")
	}
	// Explicit counts: u2 has 2 explicit edges (v4, v5), others 0.
	if p.ExplicitCounts[2] != 2 {
		t.Fatalf("explicit counts = %v", p.ExplicitCounts)
	}
	s := p.String()
	for _, want := range []string{"homomorphism", "start vertex:   u0", "matching order:", "dcg:"} {
		if !strings.Contains(s, want) {
			t.Errorf("Plan.String missing %q:\n%s", want, s)
		}
	}
}

func TestPlanWithNonTreeEdges(t *testing.T) {
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 0, 1)
	_ = q.AddEdge(1, 1, 2)
	_ = q.AddEdge(0, 2, 2) // closes a cycle
	g := graph.New()
	g.InsertEdge(1, 0, 2)
	opt := DefaultOptions()
	opt.Semantics = Isomorphism
	e, err := New(g, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := e.Plan()
	if len(p.NonTreeEdges) != 1 {
		t.Fatalf("non-tree = %v", p.NonTreeEdges)
	}
	s := p.String()
	if !strings.Contains(s, "non-tree edges:") || !strings.Contains(s, "isomorphism") {
		t.Fatalf("Plan.String:\n%s", s)
	}
	// The plan reflects matching-order adjustment after updates.
	before := e.Plan().MatchingOrder
	for i := graph.VertexID(0); i < 200; i++ {
		if _, err := e.InsertEdge(100+i, 1, 300+i); err != nil {
			t.Fatal(err)
		}
	}
	_ = before // order may or may not change; the call must stay valid
	if !query.ValidOrder(e.Tree(), e.Plan().MatchingOrder) {
		t.Fatal("adjusted order invalid")
	}
}
