package core

import (
	"turboflux/internal/dcg"
	"turboflux/internal/graph"
)

// insertEdgeAndEval is Algorithm 5: the edge (v, l, v2) has just been
// inserted into the data graph. For every tree query edge it matches, the
// DCG is (re)built downward from the edge and, when the edge's DCG state
// becomes EXPLICIT, the engine builds upward toward the starting vertices
// and runs SubgraphSearch to report positive matches. Non-tree query edges
// never modify the DCG; they only seed upward traversals.
//
//tf:hotpath
func (e *Engine) insertEdgeAndEval(v graph.VertexID, l graph.Label, v2 graph.VertexID) {
	// New data vertices that satisfy L(u_s) become starting vertices: treat
	// them as hypothetical (v*_s, v_s) insertions first (Section 3.2).
	e.ensureRootEdge(v)
	if v2 != v {
		e.ensureRootEdge(v2)
	}

	// Tree query edges (Lines 1–10). A tree slot is the parent edge of a
	// child query vertex uc; the data edge matches it in exactly one
	// orientation. The label index pre-filters to the slots this edge can
	// match, in ascending child-vertex order.
	for _, ucv := range e.treeSlots(l) {
		te := e.tree.ParentEdge[ucv]
		parentV, childV := v, v2
		if !te.Forward {
			parentV, childV = v2, v
		}
		// Case 2 of Transition 0: the parent side must already be a
		// candidate for te.Parent (it has an incoming implicit/explicit
		// edge labeled te.Parent), otherwise the DCG is not updated.
		if !e.d.HasInLabel(parentV, te.Parent) {
			continue
		}
		if !e.g.HasAllLabels(parentV, e.q.Labels(te.Parent)) ||
			!e.g.HasAllLabels(childV, e.q.Labels(ucv)) {
			continue // Case 1 of Transition 0
		}
		e.buildDCG(ucv, parentV, childV)
		if e.d.GetState(parentV, ucv, childV) != dcg.Explicit {
			continue
		}
		if !e.d.MatchAllChildren(parentV, te.Parent) {
			continue
		}
		e.setTrigger(te.Index)
		e.mapVertex(ucv, childV)
		e.buildUpwardsAndEval(te.Parent, parentV, true, true)
		e.unmapVertex(ucv)
		e.clearTrigger()
	}

	e.insertNonTreeTriggers(v, l, v2)
}

// insertNonTreeTriggers runs the non-tree trigger loop of Algorithm 5
// (Lines 11–18): each matching non-tree query edge seeds a
// transition-free upward traversal from its From-endpoint. Non-tree
// triggers never modify the DCG, so the loop is identical for private
// evaluation and shared-member replay.
//
//tf:hotpath
func (e *Engine) insertNonTreeTriggers(v graph.VertexID, l graph.Label, v2 graph.VertexID) {
	for _, nt := range e.nonTreeSlots(l) {
		qe := e.q.Edge(nt)
		// The data edge is directed, so m(qe.From)=v and m(qe.To)=v2.
		if !e.d.HasInLabel(v, qe.From) || !e.d.HasInLabel(v2, qe.To) {
			continue
		}
		if !e.d.MatchAllChildren(v, qe.From) || !e.d.MatchAllChildren(v2, qe.To) {
			continue
		}
		e.setTrigger(nt)
		if qe.To == qe.From {
			// Self-loop query edge: a single mapped vertex.
			if v == v2 {
				e.buildUpwardsAndEval(qe.From, v, false, true)
			}
		} else if e.usable(v2) {
			e.mapVertex(qe.To, v2)
			e.buildUpwardsAndEval(qe.From, v, false, true)
			e.unmapVertex(qe.To)
		}
		e.clearTrigger()
	}
}

// replayInsertedEdge is the shared-member twin of insertEdgeAndEval
// (DESIGN.md §17): the maintainer has already applied every DCG
// transition for this insertion, so the member re-runs the trigger gates
// against the post-maintenance state and climbs transition-free
// (transit=false), searching with its own matching order, semantics and
// duplicate avoidance. Insertion transitions are monotone, so the
// maintained state is a superset of every mid-update view a private
// engine would have seen: every privately-reported solution is
// enumerated here, and any extra solution necessarily maps the updated
// edge at an outranking trigger and is suppressed by the max-rank
// duplicate check — candidate enumeration being a pure function of DCG
// state makes the surviving emission order byte-identical.
//
//tf:hotpath
func (e *Engine) replayInsertedEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) {
	for _, ucv := range e.treeSlots(l) {
		te := e.tree.ParentEdge[ucv]
		parentV, childV := v, v2
		if !te.Forward {
			parentV, childV = v2, v
		}
		if !e.d.HasInLabel(parentV, te.Parent) {
			continue
		}
		if !e.g.HasAllLabels(parentV, e.q.Labels(te.Parent)) ||
			!e.g.HasAllLabels(childV, e.q.Labels(ucv)) {
			continue
		}
		if e.d.GetState(parentV, ucv, childV) != dcg.Explicit {
			continue
		}
		if !e.d.MatchAllChildren(parentV, te.Parent) {
			continue
		}
		e.setTrigger(te.Index)
		e.mapVertex(ucv, childV)
		e.buildUpwardsAndEval(te.Parent, parentV, false, true)
		e.unmapVertex(ucv)
		e.clearTrigger()
	}
	e.insertNonTreeTriggers(v, l, v2)
}

// ensureRootEdge creates the root DCG edge (v*_s, u_s, w) for a data
// vertex that matches L(u_s) but has no root edge yet — the streaming
// analogue of the hypothetical insertions used to build the initial DCG.
//
//tf:hotpath
func (e *Engine) ensureRootEdge(w graph.VertexID) {
	if int(w) < len(e.rootSeen) && e.rootSeen[w] {
		return
	}
	us := e.tree.Root
	if e.d.GetState(graph.NoVertex, us, w) == dcg.Null {
		if !e.g.HasAllLabels(w, e.q.Labels(us)) {
			e.markRootSeen(w) // labels are immutable: never a candidate
			return
		}
		e.buildDCG(us, graph.NoVertex, w)
		if e.aborted {
			return // budget abort mid-build: re-probe on the next update
		}
	}
	e.markRootSeen(w)
}

// markRootSeen records that w's root edge is settled (see Engine.rootSeen).
//
//tf:hotpath
func (e *Engine) markRootSeen(w graph.VertexID) {
	if int(w) >= len(e.rootSeen) {
		n := int(w) + 1
		if n < 2*len(e.rootSeen) {
			n = 2 * len(e.rootSeen)
		}
		ns := make([]bool, n)
		copy(ns, e.rootSeen)
		e.rootSeen = ns
	}
	e.rootSeen[w] = true
}

// buildUpwardsAndEval is Algorithm 6: map u to v, upgrade v's incoming
// IMPLICIT edges labeled u to EXPLICIT when transitions are enabled
// (Transition 2, Case 2 — the caller has verified MatchAllChildren(v, u)),
// and either run SubgraphSearch at the starting query vertex or keep
// climbing through every parent whose children are all matched.
// searchable tracks whether the current upward path can still seed a
// SubgraphSearch: a mapping conflict (u already bound elsewhere, or v bound
// to another query vertex under isomorphism) invalidates the search but the
// DCG transitions — which are semantics-independent — must still be applied
// all the way up.
//
//tf:hotpath
func (e *Engine) buildUpwardsAndEval(u graph.VertexID, v graph.VertexID, transit, searchable bool) {
	if !e.charge() {
		return
	}
	mapped := false
	if searchable {
		switch {
		case e.m[u] == v:
			// Already bound consistently (non-tree trigger whose To-endpoint
			// is an ancestor of its From-endpoint).
		case e.m[u] != graph.NoVertex || !e.usable(v):
			searchable = false
		default:
			e.mapVertex(u, v)
			mapped = true
		}
	}
	// Parent snapshot from the engine arena: transitions below mutate v's
	// in-edges, so the list is copied out first. The recursion appends past
	// this segment and truncates back, never touching it.
	mark := len(e.parentScratch)
	e.parentScratch = e.d.AppendInParents(e.parentScratch, v, u, false)
	parents := e.parentScratch[mark:]
	for _, vp := range parents {
		if transit && e.d.GetState(vp, u, v) == dcg.Implicit {
			e.d.MakeTransition(vp, u, v, dcg.Explicit)
		}
		if u == e.tree.Root {
			if searchable {
				e.subgraphSearch(0)
			}
			continue
		}
		up := e.tree.ParentEdge[u].Parent
		if e.d.MatchAllChildren(vp, up) {
			e.buildUpwardsAndEval(up, vp, transit, searchable)
		}
	}
	e.parentScratch = e.parentScratch[:mark]
	if mapped {
		e.unmapVertex(u)
	}
}
