package core

import (
	"fmt"
	"sort"
	"strings"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// Plan describes the engine's compiled execution strategy: the chosen
// starting query vertex, the query-tree decomposition, the non-tree edges
// checked during search, the current matching order and the DCG statistics
// that drive it. It is a diagnostic snapshot; mutating it has no effect.
type Plan struct {
	Semantics      Semantics
	StartVertex    graph.VertexID
	TreeEdges      []query.TreeEdge
	NonTreeEdges   []graph.Edge
	MatchingOrder  []graph.VertexID
	ExplicitCounts []int64 // explicit DCG edges per query-vertex label
	DCGEdges       int
	DCGExplicit    int
}

// Plan returns the engine's current execution plan.
func (e *Engine) Plan() Plan {
	p := Plan{
		Semantics:     e.opt.Semantics,
		StartVertex:   e.tree.Root,
		MatchingOrder: append([]graph.VertexID(nil), e.mo...),
		DCGEdges:      e.d.NumEdges(),
		DCGExplicit:   e.d.NumExplicit(),
	}
	for u := 0; u < e.q.NumVertices(); u++ {
		uv := graph.VertexID(u)
		if uv != e.tree.Root {
			p.TreeEdges = append(p.TreeEdges, e.tree.ParentEdge[uv])
		}
		p.ExplicitCounts = append(p.ExplicitCounts, e.d.ExplicitCount(uv))
	}
	sort.Slice(p.TreeEdges, func(i, j int) bool {
		return p.TreeEdges[i].Child < p.TreeEdges[j].Child
	})
	for _, nt := range e.tree.NonTree {
		p.NonTreeEdges = append(p.NonTreeEdges, e.q.Edge(nt))
	}
	return p
}

// String renders the plan in a compact human-readable block:
//
//	semantics:      homomorphism
//	start vertex:   u0
//	query tree:     u1 <-creatorOf- u0 ...
//	non-tree edges: u3 -likes-> u2
//	matching order: u0 u1 u3 u2
//	dcg:            1234 edges (910 explicit)
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "semantics:      %s\n", p.Semantics)
	fmt.Fprintf(&sb, "start vertex:   u%d\n", p.StartVertex)
	sb.WriteString("query tree:    ")
	for _, te := range p.TreeEdges {
		if te.Forward {
			fmt.Fprintf(&sb, " u%d -(%d)-> u%d", te.Parent, te.Label, te.Child)
		} else {
			fmt.Fprintf(&sb, " u%d <-(%d)- u%d", te.Parent, te.Label, te.Child)
		}
	}
	sb.WriteByte('\n')
	if len(p.NonTreeEdges) > 0 {
		sb.WriteString("non-tree edges:")
		for _, e := range p.NonTreeEdges {
			fmt.Fprintf(&sb, " u%d -(%d)-> u%d", e.From, e.Label, e.To)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("matching order:")
	for _, u := range p.MatchingOrder {
		fmt.Fprintf(&sb, " u%d(%d)", u, p.ExplicitCounts[u])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "dcg:            %d edges (%d explicit)", p.DCGEdges, p.DCGExplicit)
	return sb.String()
}
