package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"turboflux/internal/dcg"
	"turboflux/internal/graph"
	"turboflux/internal/naive"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// randUnlabeledQuery builds a connected query with no vertex labels and
// few edge labels — the label-poor Netflow regime, which exercises the
// fully-unconstrained root path (every data vertex is a start candidate).
func randUnlabeledQuery(rng *rand.Rand, n, extra, eLabels int) *query.Graph {
	q := query.NewGraph(n)
	for u := 1; u < n; u++ {
		p := graph.VertexID(rng.Intn(u))
		l := graph.Label(rng.Intn(eLabels))
		if rng.Intn(2) == 0 {
			_ = q.AddEdge(p, l, graph.VertexID(u))
		} else {
			_ = q.AddEdge(graph.VertexID(u), l, p)
		}
	}
	for i := 0; i < extra; i++ {
		_ = q.AddEdge(graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(eLabels)), graph.VertexID(rng.Intn(n)))
	}
	return q
}

// TestDifferentialUnlabeled is the Netflow-regime analogue of the main
// differential suite: unlabeled vertices, two edge labels, mixed streams,
// hub-heavy topology (small vertex universe forces reconvergent paths).
func TestDifferentialUnlabeled(t *testing.T) {
	for seed := int64(500); seed < 515; seed++ {
		rng := rand.New(rand.NewSource(seed))
		injective := seed%2 == 0
		q := randUnlabeledQuery(rng, 3+rng.Intn(2), rng.Intn(2), 2)
		const nv = 6 // tiny universe: lots of hubs and cycles
		g0 := graph.New()
		for v := 0; v < nv; v++ {
			_ = g0.AddVertex(graph.VertexID(v))
		}
		for i := 0; i < 8; i++ {
			g0.InsertEdge(graph.VertexID(rng.Intn(nv)), graph.Label(rng.Intn(2)), graph.VertexID(rng.Intn(nv)))
		}
		pos := map[string]bool{}
		neg := map[string]bool{}
		sem := Homomorphism
		if injective {
			sem = Isomorphism
		}
		opt := DefaultOptions()
		opt.Semantics = sem
		opt.OnMatch = func(positive bool, m []graph.VertexID) {
			k := mapKey(m)
			set := pos
			if !positive {
				set = neg
			}
			if set[k] {
				t.Fatalf("seed %d: duplicate match %s", seed, k)
			}
			set[k] = true
		}
		eng, err := New(g0.Clone(), q, opt)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := naive.New(g0.Clone(), q, injective)
		if err != nil {
			t.Fatal(err)
		}
		live := map[graph.Edge]bool{}
		g0.ForEachEdge(func(e graph.Edge) { live[e] = true })
		for step := 0; step < 50; step++ {
			var up stream.Update
			if len(live) > 2 && rng.Intn(3) == 0 {
				es := make([]graph.Edge, 0, len(live))
				for e := range live {
					es = append(es, e)
				}
				sort.Slice(es, func(i, j int) bool {
					if es[i].From != es[j].From {
						return es[i].From < es[j].From
					}
					if es[i].Label != es[j].Label {
						return es[i].Label < es[j].Label
					}
					return es[i].To < es[j].To
				})
				e := es[rng.Intn(len(es))]
				up = stream.Delete(e.From, e.Label, e.To)
				delete(live, e)
			} else {
				e := graph.Edge{
					From:  graph.VertexID(rng.Intn(nv)),
					Label: graph.Label(rng.Intn(2)),
					To:    graph.VertexID(rng.Intn(nv)),
				}
				up = stream.Insert(e.From, e.Label, e.To)
				live[e] = true
			}
			pos, neg = map[string]bool{}, map[string]bool{}
			if _, err := eng.Apply(up); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			oPos, oNeg, err := oracle.Apply(up)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sortedSet(pos), sortedSet(oPos); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d (%v %v): positives\n got %v\nwant %v\nquery %v",
					seed, step, up.Op, up.Edge, got, want, q)
			}
			if got, want := sortedSet(neg), sortedSet(oNeg); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d (%v %v): negatives\n got %v\nwant %v\nquery %v",
					seed, step, up.Op, up.Edge, got, want, q)
			}
			spec := dcg.ComputeSpec(eng.Graph(), eng.Tree())
			snap := eng.DCG().SnapshotMap()
			if len(spec) != len(snap) {
				t.Fatalf("seed %d step %d: DCG %d edges vs spec %d", seed, step, len(snap), len(spec))
			}
			for k, s := range spec {
				if snap[k] != s {
					t.Fatalf("seed %d step %d: DCG[%v]=%v, spec=%v", seed, step, k, snap[k], s)
				}
			}
			if err := eng.DCG().Validate(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
