package core

import (
	"testing"

	"turboflux/internal/dcg"
	"turboflux/internal/graph"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// Vertex labels.
const (
	lA graph.Label = iota
	lB
	lC
	lD
)

// Edge labels.
const (
	e1 graph.Label = iota
	e2
	e3
	e4
)

// figure1Query is the miniature of the paper's Figure 1 query:
// u0(A) -e1-> u1(B); u1 -e2-> u2(C); u1 -e3-> u3(C); u3 -e4-> u4(D).
func figure1Query(t *testing.T) *query.Graph {
	t.Helper()
	q := query.NewGraph(5)
	q.SetLabels(0, lA)
	q.SetLabels(1, lB)
	q.SetLabels(2, lC)
	q.SetLabels(3, lC)
	q.SetLabels(4, lD)
	for _, e := range []graph.Edge{
		{From: 0, Label: e1, To: 1},
		{From: 1, Label: e2, To: 2},
		{From: 1, Label: e3, To: 3},
		{From: 3, Label: e4, To: 4},
	} {
		if err := q.AddEdge(e.From, e.Label, e.To); err != nil {
			t.Fatal(err)
		}
	}
	return q
}

// figure1Data: v0(A) -e1-> v2(B); v2 -e2-> {v4,v5}(C); v2 -e3-> v104(C).
// The u3 branch is incomplete until (v104, e4, v414) arrives.
func figure1Data(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, v := range []struct {
		id graph.VertexID
		l  graph.Label
	}{{0, lA}, {2, lB}, {4, lC}, {5, lC}, {104, lC}, {414, lD}} {
		if err := g.AddVertex(v.id, v.l); err != nil {
			t.Fatal(err)
		}
	}
	g.InsertEdge(0, e1, 2)
	g.InsertEdge(2, e2, 4)
	g.InsertEdge(2, e2, 5)
	g.InsertEdge(2, e3, 104)
	return g
}

type collector struct {
	pos []string
	neg []string
}

func (c *collector) fn(positive bool, m []graph.VertexID) {
	k := mapKey(m)
	if positive {
		c.pos = append(c.pos, k)
	} else {
		c.neg = append(c.neg, k)
	}
}

func mapKey(m []graph.VertexID) string {
	b := make([]byte, 0, len(m)*4)
	for i, v := range m {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendUint(b, uint64(v))
	}
	return string(b)
}

func appendUint(b []byte, n uint64) []byte {
	if n >= 10 {
		b = appendUint(b, n/10)
	}
	return append(b, byte('0'+n%10))
}

func newFig1Engine(t *testing.T, c *collector) *Engine {
	t.Helper()
	opt := DefaultOptions()
	opt.StartVertex = 0 // force u0 as the start vertex like the paper
	if c != nil {
		opt.OnMatch = c.fn
	}
	e, err := New(figure1Data(t), figure1Query(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInitialDCGStates(t *testing.T) {
	e := newFig1Engine(t, nil)
	d := e.DCG()
	cases := []struct {
		from, qv, to graph.VertexID
		want         dcg.State
	}{
		{graph.NoVertex, 0, 0, dcg.Implicit}, // root edge: u3 branch incomplete
		{0, 1, 2, dcg.Implicit},
		{2, 2, 4, dcg.Explicit},
		{2, 2, 5, dcg.Explicit},
		{2, 3, 104, dcg.Implicit},
	}
	for _, c := range cases {
		if got := d.GetState(c.from, c.qv, c.to); got != c.want {
			t.Errorf("state(%d,u%d,%d) = %v, want %v", c.from, c.qv, c.to, got, c.want)
		}
	}
	if d.NumEdges() != 5 {
		t.Fatalf("DCG has %d edges, want 5", d.NumEdges())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := e.InitialMatches(); n != 0 {
		t.Fatalf("initial matches = %d, want 0 (u3 branch incomplete)", n)
	}
}

func TestInsertCompletesBranch(t *testing.T) {
	var c collector
	e := newFig1Engine(t, &c)
	n, err := e.InsertEdge(104, e4, 414)
	if err != nil {
		t.Fatal(err)
	}
	// Solutions: u2 can map to v4 or v5 -> 2 positive matches.
	if n != 2 {
		t.Fatalf("positive matches = %d, want 2", n)
	}
	if len(c.pos) != 2 || len(c.neg) != 0 {
		t.Fatalf("collector: pos=%v neg=%v", c.pos, c.neg)
	}
	// All DCG edges must now be explicit (Figure 4h analogue).
	d := e.DCG()
	for _, se := range d.Snapshot() {
		if se.State != dcg.Explicit {
			t.Errorf("edge %v = %v, want E", se.Key, se.State)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.PositiveCount() != 2 {
		t.Fatalf("PositiveCount = %d", e.PositiveCount())
	}
}

func TestInsertNoMatchCheapPath(t *testing.T) {
	var c collector
	e := newFig1Engine(t, &c)
	// An edge whose label matches nothing in the query: Transition 0 Case 1.
	if n, err := e.InsertEdge(4, 9, 5); err != nil || n != 0 {
		t.Fatalf("irrelevant insert: n=%d err=%v", n, err)
	}
	// An edge matching (u1,u2) but whose parent side is not a candidate:
	// Transition 0 Case 2 (vertex 5 has no incoming u1 edge).
	g := e.Graph()
	_ = g // engine owns g; use Apply path below
	if n, err := e.InsertEdge(5, e2, 4); err != nil || n != 0 {
		t.Fatalf("non-candidate insert: n=%d err=%v", n, err)
	}
	if len(c.pos)+len(c.neg) != 0 {
		t.Fatal("no matches expected")
	}
	// Duplicate insert is a no-op.
	if n, err := e.InsertEdge(2, e2, 4); err != nil || n != 0 {
		t.Fatalf("duplicate insert: n=%d err=%v", n, err)
	}
}

func TestDeleteReportsNegatives(t *testing.T) {
	var c collector
	e := newFig1Engine(t, &c)
	if _, err := e.InsertEdge(104, e4, 414); err != nil {
		t.Fatal(err)
	}
	c.pos = nil
	n, err := e.DeleteEdge(104, e4, 414)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("negative matches = %d, want 2", n)
	}
	if len(c.neg) != 2 {
		t.Fatalf("collector neg = %v", c.neg)
	}
	if e.NegativeCount() != 2 {
		t.Fatalf("NegativeCount = %d", e.NegativeCount())
	}
	// DCG must be back to the initial (implicit u3-branch) configuration.
	d := e.DCG()
	if d.GetState(2, 3, 104) != dcg.Implicit {
		t.Fatalf("(v2,u3,v104) = %v, want I", d.GetState(2, 3, 104))
	}
	if d.GetState(graph.NoVertex, 0, 0) != dcg.Implicit {
		t.Fatal("root edge must be implicit again")
	}
	if d.GetState(0, 1, 2) != dcg.Implicit {
		t.Fatal("(v0,u1,v2) must be implicit again")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleting an absent edge is a no-op.
	if n, err := e.DeleteEdge(104, e4, 414); err != nil || n != 0 {
		t.Fatalf("double delete: n=%d err=%v", n, err)
	}
}

func TestDeleteCascadesOrphans(t *testing.T) {
	var c collector
	e := newFig1Engine(t, &c)
	if _, err := e.InsertEdge(104, e4, 414); err != nil {
		t.Fatal(err)
	}
	// Deleting (v0, e1, v2) orphans the whole subtree below v2.
	n, err := e.DeleteEdge(0, e1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("negatives on root-edge delete = %d, want 2", n)
	}
	d := e.DCG()
	// Only the root edge (v*, u0, v0) should remain.
	if d.NumEdges() != 1 {
		t.Fatalf("DCG edges after cascade = %d, want 1 (snapshot %v)", d.NumEdges(), d.Snapshot())
	}
	if d.GetState(graph.NoVertex, 0, 0) != dcg.Implicit {
		t.Fatal("remaining root edge must be implicit")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInitialMatchesReported(t *testing.T) {
	g := figure1Data(t)
	if err := g.AddVertex(415, lD); err != nil {
		t.Fatal(err)
	}
	g.InsertEdge(104, e4, 415)
	var c collector
	opt := DefaultOptions()
	opt.StartVertex = 0
	opt.OnMatch = c.fn
	e, err := New(g, figure1Query(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.InitialMatches(); n != 2 {
		t.Fatalf("initial matches = %d, want 2", n)
	}
	if e.PositiveCount() != 0 {
		t.Fatal("initial matches must not count into PositiveCount")
	}
	if len(c.pos) != 2 {
		t.Fatalf("collector pos = %v", c.pos)
	}
}

func TestApplyStream(t *testing.T) {
	e := newFig1Engine(t, nil)
	if n, err := e.Apply(stream.Insert(104, e4, 414)); err != nil || n != 2 {
		t.Fatalf("Apply insert: n=%d err=%v", n, err)
	}
	if n, err := e.Apply(stream.Delete(104, e4, 414)); err != nil || n != 2 {
		t.Fatalf("Apply delete: n=%d err=%v", n, err)
	}
	// Vertex declaration then edges through it.
	if n, err := e.Apply(stream.DeclareVertex(700, lD)); err != nil || n != 0 {
		t.Fatalf("Apply vertex: n=%d err=%v", n, err)
	}
	if n, err := e.Apply(stream.Insert(104, e4, 700)); err != nil || n != 2 {
		t.Fatalf("Apply insert to declared vertex: n=%d err=%v", n, err)
	}
	if _, err := e.Apply(stream.Update{Op: 99}); err == nil {
		t.Fatal("unknown op must error")
	}
}

func TestNewVertexBecomesStartCandidate(t *testing.T) {
	// Start with a graph missing the A-vertex entirely; stream it in.
	g := graph.New()
	_ = g.AddVertex(2, lB)
	_ = g.AddVertex(4, lC)
	_ = g.AddVertex(104, lC)
	_ = g.AddVertex(414, lD)
	g.InsertEdge(2, e2, 4)
	g.InsertEdge(2, e3, 104)
	g.InsertEdge(104, e4, 414)
	var c collector
	opt := DefaultOptions()
	opt.StartVertex = 0
	opt.OnMatch = c.fn
	e, err := New(g, figure1Query(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	if e.InitialMatches() != 0 {
		t.Fatal("no initial matches expected")
	}
	if _, err := e.Apply(stream.DeclareVertex(0, lA)); err != nil {
		t.Fatal(err)
	}
	n, err := e.InsertEdge(0, e1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("matches after A-vertex wired in = %d, want 1", n)
	}
}

func TestEngineErrors(t *testing.T) {
	g := graph.New()
	if _, err := New(nil, nil, DefaultOptions()); err == nil {
		t.Fatal("nil inputs must error")
	}
	q := query.NewGraph(2)
	if _, err := New(g, q, DefaultOptions()); err == nil {
		t.Fatal("invalid query must error")
	}
	_ = q.AddEdge(0, 0, 1)
	opt := DefaultOptions()
	opt.StartVertex = 9
	if _, err := New(g, q, opt); err == nil {
		t.Fatal("out-of-range start vertex must error")
	}
}

func TestMatchingOrderValid(t *testing.T) {
	e := newFig1Engine(t, nil)
	if !query.ValidOrder(e.Tree(), e.MatchingOrder()) {
		t.Fatalf("matching order %v invalid", e.MatchingOrder())
	}
	if e.IntermediateSizeBytes() != int64(e.DCG().NumEdges())*dcg.EdgeBytes {
		t.Fatal("size accounting mismatch")
	}
	if e.Query() == nil || e.Graph() == nil {
		t.Fatal("accessors broken")
	}
}
