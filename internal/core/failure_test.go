package core

import (
	"errors"
	"slices"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// TestWorkBudgetAborts: a tiny budget censors expensive updates with
// ErrWorkBudget, and the DCG's internal counters stay consistent even
// after a mid-operation abort.
func TestWorkBudgetAborts(t *testing.T) {
	g := graph.New()
	// Star fan-out: one hub with many children, so one insertion triggers
	// plenty of maintenance work.
	for i := graph.VertexID(1); i <= 50; i++ {
		g.InsertEdge(0, 0, i)
		g.InsertEdge(i, 1, 100+i)
	}
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 0, 1)
	_ = q.AddEdge(1, 1, 2)
	opt := DefaultOptions()
	opt.WorkBudget = 10
	if _, err := New(g, q, opt); !errors.Is(err, ErrWorkBudget) {
		t.Fatalf("initial build should exceed a 10-unit budget, got %v", err)
	}

	opt.WorkBudget = 1_000_000 // enough for the build
	e, err := New(g, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the budget so any maintenance beyond the first step aborts.
	e.opt.WorkBudget = 1
	_, err = e.InsertEdge(0, 0, 200)
	if !errors.Is(err, ErrWorkBudget) {
		t.Fatalf("expected ErrWorkBudget, got %v", err)
	}
	if err := e.DCG().Validate(); err != nil {
		t.Fatalf("DCG counters inconsistent after abort: %v", err)
	}
}

// TestBudgetRecovery: after a censored operation, subsequent cheap
// operations still work (each op gets a fresh budget).
func TestBudgetRecovery(t *testing.T) {
	g := graph.New()
	for i := graph.VertexID(1); i <= 50; i++ {
		g.InsertEdge(0, 0, i)
	}
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 0, 1)
	_ = q.AddEdge(1, 1, 2)
	opt := DefaultOptions()
	opt.WorkBudget = 500
	e, err := New(g, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	e.opt.WorkBudget = 3
	_, _ = e.InsertEdge(1, 1, 60) // may abort
	e.opt.WorkBudget = 1_000_000
	if _, err := e.InsertEdge(200, 0, 201); err != nil {
		t.Fatalf("cheap op after abort failed: %v", err)
	}
}

// TestBidirectionalQueryEdges: two query edges in opposite directions
// between the same pair must both be honored.
func TestBidirectionalQueryEdges(t *testing.T) {
	q := query.NewGraph(2)
	_ = q.AddEdge(0, 5, 1)
	_ = q.AddEdge(1, 5, 0)
	g := graph.New()
	g.InsertEdge(7, 5, 8)
	e, err := New(g, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Only one direction exists: no match yet.
	if n := e.InitialMatches(); n != 0 {
		t.Fatalf("initial = %d", n)
	}
	n, err := e.InsertEdge(8, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Two homomorphisms: (u0,u1)->(7,8) and ->(8,7).
	if n != 2 {
		t.Fatalf("matches = %d, want 2", n)
	}
	// Removing one direction retracts both.
	n, err = e.DeleteEdge(7, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("negatives = %d, want 2", n)
	}
}

// TestParallelLabelsBetweenSamePair: data edges with different labels
// between the same vertices are independent.
func TestParallelLabelsBetweenSamePair(t *testing.T) {
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 1, 1)
	_ = q.AddEdge(1, 2, 2)
	g := graph.New()
	g.InsertEdge(5, 1, 6)
	e, err := New(g, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same pair, second label: completes the 2-hop pattern 5->6->? no —
	// the pattern needs u1->u2, and (5,2,6)? u1 is 6 here. Insert 6-2->5.
	n, err := e.InsertEdge(6, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("matches = %d, want 1", n)
	}
	// The wrong-label parallel edge contributes nothing.
	if n, _ := e.InsertEdge(5, 2, 6); n != 0 {
		t.Fatalf("parallel edge produced %d matches", n)
	}
}

// TestDataSelfLoops: self loops in the data must match 2-vertex query
// edges under homomorphism only when the query allows u->u' with
// m(u)=m(u') — and never under isomorphism.
func TestDataSelfLoops(t *testing.T) {
	q := query.NewGraph(2)
	_ = q.AddEdge(0, 1, 1)
	g := graph.New()
	hom, err := New(g.Clone(), q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n, err := hom.InsertEdge(3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("homomorphism self-loop matches = %d, want 1", n)
	}
	isoOpt := DefaultOptions()
	isoOpt.Semantics = Isomorphism
	iso, err := New(g.Clone(), q, isoOpt)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := iso.InsertEdge(3, 1, 3); n != 0 {
		t.Fatalf("isomorphism self-loop matches = %d, want 0", n)
	}
}

// TestQuerySelfLoop: a query self loop (u -l-> u) is a non-tree edge that
// only self-loop data edges can satisfy.
func TestQuerySelfLoop(t *testing.T) {
	q := query.NewGraph(2)
	_ = q.AddEdge(0, 1, 1) // tree edge
	_ = q.AddEdge(1, 2, 1) // self loop on u1
	g := graph.New()
	g.InsertEdge(5, 1, 6)
	e, err := New(g, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := e.InitialMatches(); n != 0 {
		t.Fatalf("initial = %d", n)
	}
	n, err := e.InsertEdge(6, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("self-loop completion = %d, want 1", n)
	}
	if n, _ := e.InsertEdge(6, 2, 7); n != 0 {
		t.Fatal("non-loop edge must not satisfy a query self loop")
	}
}

// TestEmptyStreamAndIdempotentOps: empty streams, duplicate inserts and
// double deletes are all harmless.
func TestEmptyStreamAndIdempotentOps(t *testing.T) {
	e := newFig1Engine(t, nil)
	for i := 0; i < 3; i++ {
		if n, err := e.InsertEdge(104, e4, 414); err != nil || (i == 0) != (n == 2) {
			t.Fatalf("iter %d: n=%d err=%v", i, n, err)
		}
	}
	for i := 0; i < 3; i++ {
		if n, err := e.DeleteEdge(104, e4, 414); err != nil || (i == 0) != (n == 2) {
			t.Fatalf("iter %d: n=%d err=%v", i, n, err)
		}
	}
	if err := e.DCG().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteEdgeNeverInserted: deleting an edge the engine never saw must
// not disturb the DCG.
func TestDeleteEdgeNeverInserted(t *testing.T) {
	e := newFig1Engine(t, nil)
	before := e.DCG().Snapshot()
	if n, err := e.DeleteEdge(9999, 0, 8888); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	after := e.DCG().Snapshot()
	if !slices.Equal(before, after) {
		t.Fatal("DCG changed on no-op delete")
	}
}

// TestNaiveELEquivalence: the NaiveEL ablation must report the same
// matches as the selective engine (it is slower, not different).
func TestNaiveELEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		runNaiveELComparison(t, seed)
	}
}

func runNaiveELComparison(t *testing.T, seed int64) {
	t.Helper()
	g := graph.New()
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 1, 1)
	_ = q.AddEdge(1, 2, 2)

	optA := DefaultOptions()
	optB := DefaultOptions()
	optB.NaiveEL = true
	a, err := New(g.Clone(), q, optA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g.Clone(), q, optB)
	if err != nil {
		t.Fatal(err)
	}
	ups := []stream.Update{
		stream.Insert(1, 1, 2), stream.Insert(2, 2, 3),
		stream.Insert(2, 2, 4), stream.Delete(1, 1, 2),
		stream.Insert(5, 1, 2), stream.Insert(5, 1, 6),
		stream.Delete(2, 2, 3),
	}
	for i, u := range ups {
		na, err := a.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := b.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		if na != nb {
			t.Fatalf("seed %d step %d: selective=%d naive=%d", seed, i, na, nb)
		}
		// The rebuilt DCG must agree with the incrementally maintained one.
		sa, sb := a.DCG().Snapshot(), b.DCG().Snapshot()
		if !slices.Equal(sa, sb) {
			t.Fatalf("step %d: DCG snapshots diverge:\n selective %v\n naive     %v", i, sa, sb)
		}
	}
}

// TestAblationFlagsStillCorrect: disabling check-and-avoid or order
// adjustment must not change reported matches, only performance.
func TestAblationFlagsStillCorrect(t *testing.T) {
	variants := []Options{
		func() Options { o := DefaultOptions(); o.DisableCheckAndAvoid = true; return o }(),
		func() Options { o := DefaultOptions(); o.DisableOrderAdjust = true; return o }(),
	}
	base := newFig1Engine(t, nil)
	wantIns, _ := base.InsertEdge(104, e4, 414)
	wantDel, _ := base.DeleteEdge(104, e4, 414)
	for i, opt := range variants {
		opt.StartVertex = 0
		e, err := New(figure1Data(t), figure1Query(t), opt)
		if err != nil {
			t.Fatal(err)
		}
		ins, err := e.InsertEdge(104, e4, 414)
		if err != nil {
			t.Fatal(err)
		}
		del, err := e.DeleteEdge(104, e4, 414)
		if err != nil {
			t.Fatal(err)
		}
		if ins != wantIns || del != wantDel {
			t.Fatalf("variant %d: ins=%d del=%d, want %d/%d", i, ins, del, wantIns, wantDel)
		}
		if err := e.DCG().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
