package incisomat

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/matcher"
	"turboflux/internal/naive"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func randQuery(rng *rand.Rand, n, extra int) *query.Graph {
	q := query.NewGraph(n)
	for u := 0; u < n; u++ {
		if rng.Intn(3) > 0 {
			q.SetLabels(graph.VertexID(u), graph.Label(rng.Intn(3)))
		}
	}
	for u := 1; u < n; u++ {
		p := graph.VertexID(rng.Intn(u))
		l := graph.Label(rng.Intn(3))
		if rng.Intn(2) == 0 {
			_ = q.AddEdge(p, l, graph.VertexID(u))
		} else {
			_ = q.AddEdge(graph.VertexID(u), l, p)
		}
	}
	for i := 0; i < extra; i++ {
		_ = q.AddEdge(graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(3)), graph.VertexID(rng.Intn(n)))
	}
	return q
}

// TestDifferentialVsNaive: IncIsoMat must report exactly the oracle's
// deltas on random mixed streams, for both semantics.
func TestDifferentialVsNaive(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		injective := seed%2 == 1
		q := randQuery(rng, 3+rng.Intn(3), rng.Intn(3))
		const nv = 10
		g0 := graph.New()
		for v := 0; v < nv; v++ {
			_ = g0.AddVertex(graph.VertexID(v), graph.Label(rng.Intn(3)))
		}
		for i := 0; i < 10; i++ {
			g0.InsertEdge(graph.VertexID(rng.Intn(nv)), graph.Label(rng.Intn(3)), graph.VertexID(rng.Intn(nv)))
		}
		pos, neg := map[string]bool{}, map[string]bool{}
		eng, err := New(g0.Clone(), q, Options{Injective: injective, OnMatch: func(positive bool, m []graph.VertexID) {
			k := matcher.Key(m)
			if positive {
				pos[k] = true
			} else {
				neg[k] = true
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := naive.New(g0.Clone(), q, injective)
		if err != nil {
			t.Fatal(err)
		}
		live := map[graph.Edge]bool{}
		g0.ForEachEdge(func(e graph.Edge) { live[e] = true })
		for step := 0; step < 40; step++ {
			var up stream.Update
			if len(live) > 0 && rng.Intn(3) == 0 {
				es := make([]graph.Edge, 0, len(live))
				for e := range live {
					es = append(es, e)
				}
				sort.Slice(es, func(i, j int) bool {
					return es[i].From < es[j].From ||
						(es[i].From == es[j].From && es[i].To < es[j].To)
				})
				e := es[rng.Intn(len(es))]
				up = stream.Delete(e.From, e.Label, e.To)
				delete(live, e)
			} else {
				e := graph.Edge{
					From:  graph.VertexID(rng.Intn(nv)),
					Label: graph.Label(rng.Intn(3)),
					To:    graph.VertexID(rng.Intn(nv)),
				}
				up = stream.Insert(e.From, e.Label, e.To)
				live[e] = true
			}
			pos, neg = map[string]bool{}, map[string]bool{}
			if _, err := eng.Apply(up); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			oPos, oNeg, err := oracle.Apply(up)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sortedKeys(pos), sortedKeys(oPos); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d (%v %v): positives\n got %v\nwant %v\nquery %v",
					seed, step, up.Op, up.Edge, got, want, q)
			}
			if got, want := sortedKeys(neg), sortedKeys(oNeg); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d (%v %v): negatives\n got %v\nwant %v\nquery %v",
					seed, step, up.Op, up.Edge, got, want, q)
			}
		}
	}
}

func TestExtractPrunesByDistanceAndLabel(t *testing.T) {
	// Query: u0(1) -0-> u1(2); diameter 1. Vertices further than 1 hop from
	// the updated edge, and vertices with irrelevant labels, are excluded.
	q := query.NewGraph(2)
	q.SetLabels(0, 1)
	q.SetLabels(1, 2)
	_ = q.AddEdge(0, 0, 1)
	g := graph.New()
	_ = g.AddVertex(0, 1)
	_ = g.AddVertex(1, 2)
	_ = g.AddVertex(2, 2) // 1 hop from v1
	_ = g.AddVertex(3, 2) // 2 hops: outside diameter
	_ = g.AddVertex(4, 9) // irrelevant label, 1 hop
	g.InsertEdge(1, 0, 2)
	g.InsertEdge(2, 0, 3)
	g.InsertEdge(1, 0, 4)
	e, err := New(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub := e.extract(0, 1)
	if !sub.HasVertex(0) || !sub.HasVertex(1) || !sub.HasVertex(2) {
		t.Fatal("subgraph missing in-range vertices")
	}
	if sub.HasVertex(3) {
		t.Fatal("subgraph must exclude vertices beyond the diameter")
	}
	if sub.HasVertex(4) {
		t.Fatal("subgraph must exclude label-irrelevant vertices")
	}
}

func TestBasicCounters(t *testing.T) {
	q := query.NewGraph(2)
	_ = q.AddEdge(0, 1, 1)
	e, err := New(graph.New(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := e.InsertEdge(5, 1, 6); n != 1 {
		t.Fatalf("insert n=%d", n)
	}
	if n, _ := e.InsertEdge(5, 1, 6); n != 0 {
		t.Fatalf("duplicate insert n=%d", n)
	}
	if n, _ := e.DeleteEdge(5, 1, 6); n != 1 {
		t.Fatalf("delete n=%d", n)
	}
	if n, _ := e.DeleteEdge(5, 1, 6); n != 0 {
		t.Fatalf("double delete n=%d", n)
	}
	if e.PositiveCount() != 1 || e.NegativeCount() != 1 {
		t.Fatal("counters wrong")
	}
	if e.IntermediateSizeBytes() != 0 {
		t.Fatal("IncIsoMat maintains no state")
	}
	if _, err := e.Apply(stream.DeclareVertex(9, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(stream.Update{Op: 99}); err == nil {
		t.Fatal("unknown op must error")
	}
	if _, err := New(graph.New(), query.NewGraph(0), Options{}); err == nil {
		t.Fatal("invalid query must error")
	}
}
