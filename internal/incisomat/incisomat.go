// Package incisomat implements the IncIsoMat baseline (Fan et al., SIGMOD
// 2011; Section 2.2 of the TurboFlux paper): repeated-search continuous
// matching. For each update it extracts the affected subgraph — the data
// vertices within the query's diameter of the updated edge's endpoints —
// runs full subgraph matching on the subgraph before and after the update,
// and reports the set difference.
//
// It maintains no intermediate state, so each update pays two subgraph
// matching runs plus the extraction and set-difference cost; the paper
// measures it orders of magnitude behind every other engine (Figure 12).
package incisomat

import (
	"errors"
	"fmt"

	"turboflux/internal/graph"
	"turboflux/internal/matcher"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// ErrWorkBudget reports that an update exceeded Options.WorkBudget.
var ErrWorkBudget = errors.New("incisomat: per-update work budget exceeded")

// MatchFunc receives one match; the mapping slice is reused across calls.
type MatchFunc func(positive bool, m []graph.VertexID)

// Options configures an IncIsoMat engine.
type Options struct {
	// Injective selects subgraph isomorphism.
	Injective bool
	// OnMatch, when non-nil, receives every match.
	OnMatch MatchFunc
	// WorkBudget caps the matcher work per subgraph-matching run (0 =
	// unlimited); exceeding it aborts the update with ErrWorkBudget.
	WorkBudget int64
}

// Engine is an IncIsoMat continuous matcher. It owns its data graph.
type Engine struct {
	g          *graph.Graph
	q          *query.Graph
	injective  bool
	onMatch    MatchFunc
	workBudget int64

	diameter    int
	queryLabels []map[graph.Label]bool // nil entry = some query vertex unconstrained

	anyUnlabeled bool
	labelUnion   map[graph.Label]bool

	posTotal, negTotal int64
}

// New builds an IncIsoMat engine over the initial graph g0, which must not
// be mutated by the caller afterwards.
func New(g0 *graph.Graph, q *query.Graph, opt Options) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		g:          g0,
		q:          q,
		injective:  opt.Injective,
		onMatch:    opt.OnMatch,
		workBudget: opt.WorkBudget,
		diameter:   q.Diameter(),
		labelUnion: make(map[graph.Label]bool),
	}
	for u := 0; u < q.NumVertices(); u++ {
		ls := q.Labels(graph.VertexID(u))
		if len(ls) == 0 {
			e.anyUnlabeled = true
		}
		for _, l := range ls {
			e.labelUnion[l] = true
		}
	}
	return e, nil
}

// Apply processes one update.
func (e *Engine) Apply(u stream.Update) (int64, error) {
	switch u.Op {
	case stream.OpInsert:
		return e.InsertEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpDelete:
		return e.DeleteEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpVertex:
		if !e.g.HasVertex(u.Vertex) {
			e.g.EnsureVertex(u.Vertex, u.Labels...)
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("incisomat: unknown op %d", u.Op)
	}
}

// InsertEdge inserts the edge and reports the positive matches it creates.
func (e *Engine) InsertEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	if e.g.HasEdge(v, l, v2) {
		return 0, nil
	}
	e.g.InsertEdge(v, l, v2)
	// Extract g' from g_i (after the insert); g'_{i-1} is g' minus the edge.
	sub := e.extract(v, v2)
	after, err := e.matchSet(sub)
	if err != nil {
		return 0, err
	}
	sub.DeleteEdge(v, l, v2)
	before, err := e.matchSet(sub)
	if err != nil {
		return 0, err
	}
	n := e.reportDiff(after, before, true)
	e.posTotal += n
	return n, nil
}

// DeleteEdge reports the negative matches the deletion destroys and
// removes the edge.
func (e *Engine) DeleteEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	if !e.g.HasEdge(v, l, v2) {
		return 0, nil
	}
	sub := e.extract(v, v2)
	before, err := e.matchSet(sub)
	if err != nil {
		return 0, err
	}
	sub.DeleteEdge(v, l, v2)
	after, err := e.matchSet(sub)
	if err != nil {
		return 0, err
	}
	e.g.DeleteEdge(v, l, v2)
	n := e.reportDiff(before, after, false)
	e.negTotal += n
	return n, nil
}

// matchSet runs the static matcher over sub under the work budget.
func (e *Engine) matchSet(sub *graph.Graph) (map[string]bool, error) {
	set := make(map[string]bool)
	complete, err := matcher.FindAllBudget(sub, e.q, e.injective, e.workBudget,
		func(m []graph.VertexID) bool {
			set[matcher.Key(m)] = true
			return true
		})
	if err != nil {
		return nil, err
	}
	if !complete {
		return nil, ErrWorkBudget
	}
	return set, nil
}

func (e *Engine) reportDiff(bigger, smaller map[string]bool, positive bool) int64 {
	var n int64
	for k := range bigger {
		if smaller[k] {
			continue
		}
		n++
		if e.onMatch != nil {
			e.onMatch(positive, parseKey(k))
		}
	}
	return n
}

func parseKey(k string) []graph.VertexID {
	var out []graph.VertexID
	var cur uint64
	for i := 0; i <= len(k); i++ {
		if i == len(k) || k[i] == ',' {
			out = append(out, graph.VertexID(cur))
			cur = 0
			continue
		}
		cur = cur*10 + uint64(k[i]-'0')
	}
	return out
}

// relevantVertex reports whether v's labels can satisfy any query vertex
// constraint — the label-based pruning the paper describes for g'.
func (e *Engine) relevantVertex(v graph.VertexID) bool {
	if e.anyUnlabeled {
		return true
	}
	for _, l := range e.g.Labels(v) {
		if e.labelUnion[l] {
			return true
		}
	}
	return false
}

// extract builds the affected subgraph: label-relevant vertices within
// diameter(q) hops (undirected) of either endpoint, plus all edges among
// them.
func (e *Engine) extract(v, v2 graph.VertexID) *graph.Graph {
	dist := map[graph.VertexID]int{}
	queue := make([]graph.VertexID, 0, 64)
	for _, s := range []graph.VertexID{v, v2} {
		if _, ok := dist[s]; !ok {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur]
		if d >= e.diameter {
			continue
		}
		visit := func(_ graph.Label, nbrs []graph.VertexID) {
			for _, nb := range nbrs {
				if _, ok := dist[nb]; !ok {
					dist[nb] = d + 1
					queue = append(queue, nb)
				}
			}
		}
		e.g.ForEachOutLabel(cur, visit)
		e.g.ForEachInLabel(cur, visit)
	}
	sub := graph.New()
	for w := range dist {
		if e.relevantVertex(w) || w == v || w == v2 {
			sub.EnsureVertex(w, e.g.Labels(w)...)
		}
	}
	for w := range dist {
		if !sub.HasVertex(w) {
			continue
		}
		e.g.ForEachOutLabel(w, func(l graph.Label, nbrs []graph.VertexID) {
			for _, nb := range nbrs {
				if sub.HasVertex(nb) {
					sub.InsertEdge(w, l, nb)
				}
			}
		})
	}
	return sub
}

// PositiveCount returns total positives reported.
func (e *Engine) PositiveCount() int64 { return e.posTotal }

// NegativeCount returns total negatives reported.
func (e *Engine) NegativeCount() int64 { return e.negTotal }

// IntermediateSizeBytes is always zero: IncIsoMat maintains no state.
func (e *Engine) IntermediateSizeBytes() int64 { return 0 }

// Graph returns the engine's data graph (for assertions in tests).
func (e *Engine) Graph() *graph.Graph { return e.g }
