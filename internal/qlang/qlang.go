// Package qlang parses a small Cypher-like pattern language into query
// graphs, so continuous queries can be written as text:
//
//	MATCH (a:Person)-[:follows]->(b:Person),
//	      (b)-[:likes]->(p:Post),
//	      (a)-[:likes]->(p)
//
// Grammar (whitespace-insensitive; the MATCH keyword is optional):
//
//	pattern := ["MATCH"] chain { "," chain }
//	chain   := node { edge node }
//	node    := "(" [ident] [":" label {"|" label}] ")"
//	edge    := "-[" ":" label "]->"  |  "<-[" ":" label "]-"
//	ident   := letter { letter | digit | "_" }
//
// Named nodes bind: reusing a name refers to the same query vertex (its
// label set is fixed at first mention). Anonymous nodes "()" are always
// fresh. Vertex and edge labels are resolved through the caller's
// dictionaries, interning unseen names.
package qlang

import (
	"fmt"
	"strings"
	"unicode"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// Parse compiles src into a query graph. It returns the query and the
// mapping from node names to query vertex IDs (anonymous nodes are
// unnamed). Vertex labels intern through vdict, edge labels through edict.
func Parse(src string, vdict, edict *graph.Dict) (*query.Graph, map[string]graph.VertexID, error) {
	p := &parser{src: src, vdict: vdict, edict: edict}
	if err := p.run(); err != nil {
		return nil, nil, err
	}
	q := query.NewGraph(len(p.nodes))
	for i, n := range p.nodes {
		if len(n.labels) > 0 {
			q.SetLabels(graph.VertexID(i), n.labels...)
		}
	}
	for _, e := range p.edges {
		if err := q.AddEdge(e.From, e.Label, e.To); err != nil {
			return nil, nil, fmt.Errorf("qlang: %w", err)
		}
	}
	if err := q.Validate(); err != nil {
		return nil, nil, fmt.Errorf("qlang: %w", err)
	}
	names := make(map[string]graph.VertexID, len(p.byName))
	for name, id := range p.byName {
		names[name] = id
	}
	return q, names, nil
}

type nodeDecl struct {
	name   string
	labels []graph.Label
}

type parser struct {
	src   string
	pos   int
	vdict *graph.Dict
	edict *graph.Dict

	nodes  []nodeDecl
	byName map[string]graph.VertexID
	edges  []graph.Edge
}

func (p *parser) run() error {
	p.byName = make(map[string]graph.VertexID)
	p.skipSpace()
	if p.hasKeyword("MATCH") {
		p.pos += len("MATCH")
	}
	for {
		if err := p.chain(); err != nil {
			return err
		}
		p.skipSpace()
		if p.eof() {
			return nil
		}
		if !p.consume(',') {
			return p.errf("expected ',' or end of pattern")
		}
	}
}

func (p *parser) chain() error {
	cur, err := p.node()
	if err != nil {
		return err
	}
	for {
		p.skipSpace()
		if p.eof() || p.peek() == ',' {
			return nil
		}
		label, forward, err := p.edge()
		if err != nil {
			return err
		}
		next, err := p.node()
		if err != nil {
			return err
		}
		if forward {
			p.edges = append(p.edges, graph.Edge{From: cur, Label: label, To: next})
		} else {
			p.edges = append(p.edges, graph.Edge{From: next, Label: label, To: cur})
		}
		cur = next
	}
}

// node parses "(" [ident] [":" labels] ")" and returns the query vertex.
func (p *parser) node() (graph.VertexID, error) {
	p.skipSpace()
	if !p.consume('(') {
		return 0, p.errf("expected '('")
	}
	p.skipSpace()
	name := p.ident()
	var labels []graph.Label
	p.skipSpace()
	if p.consume(':') {
		for {
			p.skipSpace()
			l := p.ident()
			if l == "" {
				return 0, p.errf("expected vertex label")
			}
			labels = append(labels, p.vdict.Intern(l))
			p.skipSpace()
			if !p.consume('|') {
				break
			}
		}
	}
	p.skipSpace()
	if !p.consume(')') {
		return 0, p.errf("expected ')'")
	}
	if name != "" {
		if id, ok := p.byName[name]; ok {
			if len(labels) > 0 {
				return 0, p.errf("node %q relabeled; labels bind at first mention", name)
			}
			return id, nil
		}
		id := graph.VertexID(len(p.nodes))
		p.nodes = append(p.nodes, nodeDecl{name: name, labels: labels})
		p.byName[name] = id
		return id, nil
	}
	id := graph.VertexID(len(p.nodes))
	p.nodes = append(p.nodes, nodeDecl{labels: labels})
	return id, nil
}

// edge parses "-[:label]->" (forward) or "<-[:label]-" (reverse) and
// returns the edge label and direction.
func (p *parser) edge() (graph.Label, bool, error) {
	p.skipSpace()
	forward := true
	if strings.HasPrefix(p.rest(), "<-[") {
		forward = false
		p.pos += 3
	} else if strings.HasPrefix(p.rest(), "-[") {
		p.pos += 2
	} else {
		return 0, false, p.errf("expected '-[' or '<-['")
	}
	p.skipSpace()
	if !p.consume(':') {
		return 0, false, p.errf("expected ':' before edge label")
	}
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return 0, false, p.errf("expected edge label")
	}
	p.skipSpace()
	if forward {
		if !strings.HasPrefix(p.rest(), "]->") {
			return 0, false, p.errf("expected ']->'")
		}
		p.pos += 3
	} else {
		if !strings.HasPrefix(p.rest(), "]-") {
			return 0, false, p.errf("expected ']-'")
		}
		p.pos += 2
	}
	return p.edict.Intern(name), forward, nil
}

// ident accepts letter/digit/underscore runs; purely numeric identifiers
// are allowed so label names can be the numeric labels of data files.
func (p *parser) ident() string {
	start := p.pos
	for !p.eof() {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || r == '_' || unicode.IsDigit(r) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *parser) hasKeyword(kw string) bool {
	rest := p.rest()
	if len(rest) < len(kw) || !strings.EqualFold(rest[:len(kw)], kw) {
		return false
	}
	// Must be followed by a non-identifier rune.
	if len(rest) == len(kw) {
		return true
	}
	r := rune(rest[len(kw)])
	return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_'
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' ||
		p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) consume(c byte) bool {
	if !p.eof() && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) rest() string { return p.src[p.pos:] }
func (p *parser) eof() bool    { return p.pos >= len(p.src) }

func (p *parser) errf(format string, args ...any) error {
	near := p.rest()
	if len(near) > 20 {
		near = near[:20] + "..."
	}
	return fmt.Errorf("qlang: %s at offset %d (near %q)",
		fmt.Sprintf(format, args...), p.pos, near)
}
