package qlang

import (
	"testing"

	"turboflux/internal/graph"
)

// FuzzParse checks the pattern parser never panics and that accepted
// patterns always yield structurally valid queries.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"MATCH (a:Person)-[:follows]->(b:Person)",
		"(a)-[:x]->(b), (b)-[:y]->(c), (c)-[:z]->(a)",
		"(a)<-[:owns]-(b)",
		"(a:X|Y)-[:e]->()",
		"((((",
		"match",
		"(a)-[:x]->(a)",
		"(1)-[:2]->(3)",
		"(a)-[:x]->(b)-[:x]->(b)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		vd, ed := graph.NewDict(), graph.NewDict()
		q, names, err := Parse(src, vd, ed)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted pattern %q produced invalid query: %v", src, err)
		}
		for name, id := range names {
			if int(id) >= q.NumVertices() {
				t.Fatalf("name %q maps to out-of-range vertex %d", name, id)
			}
		}
	})
}
