package qlang

import (
	"strings"
	"testing"

	"turboflux/internal/graph"
)

func dicts() (*graph.Dict, *graph.Dict) {
	return graph.NewDict(), graph.NewDict()
}

func TestParseChain(t *testing.T) {
	vd, ed := dicts()
	q, names, err := Parse("MATCH (a:Person)-[:follows]->(b:Person)-[:likes]->(p:Post)", vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 2 {
		t.Fatalf("shape %d/%d", q.NumVertices(), q.NumEdges())
	}
	person, _ := vd.Lookup("Person")
	post, _ := vd.Lookup("Post")
	if ls := q.Labels(names["a"]); len(ls) != 1 || ls[0] != person {
		t.Fatalf("a labels = %v", ls)
	}
	if ls := q.Labels(names["p"]); len(ls) != 1 || ls[0] != post {
		t.Fatalf("p labels = %v", ls)
	}
	follows, _ := ed.Lookup("follows")
	if e := q.Edge(0); e.From != names["a"] || e.To != names["b"] || e.Label != follows {
		t.Fatalf("edge 0 = %v", e)
	}
}

func TestParseReverseEdge(t *testing.T) {
	vd, ed := dicts()
	q, names, err := Parse("(a)<-[:owns]-(b)", vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	owns, _ := ed.Lookup("owns")
	if e := q.Edge(0); e.From != names["b"] || e.To != names["a"] || e.Label != owns {
		t.Fatalf("reverse edge = %v", e)
	}
}

func TestParseMultiChainAndReuse(t *testing.T) {
	vd, ed := dicts()
	src := `MATCH (a:Person)-[:follows]->(b:Person),
	        (b)-[:likes]->(p:Post),
	        (a)-[:likes]->(p)`
	q, names, err := Parse(src, vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 3 {
		t.Fatalf("shape %d/%d, names %v", q.NumVertices(), q.NumEdges(), names)
	}
}

func TestParseMultiLabel(t *testing.T) {
	vd, ed := dicts()
	q, names, err := Parse("(a:Person|Admin)-[:manages]->(b)", vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	if ls := q.Labels(names["a"]); len(ls) != 2 {
		t.Fatalf("labels = %v", ls)
	}
	if ls := q.Labels(names["b"]); len(ls) != 0 {
		t.Fatalf("b must be unconstrained, got %v", ls)
	}
}

func TestParseAnonymousNodes(t *testing.T) {
	vd, ed := dicts()
	q, names, err := Parse("()-[:x]->()-[:x]->()", vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 3 || len(names) != 0 {
		t.Fatalf("anon: %d vertices, names %v", q.NumVertices(), names)
	}
}

func TestParseSelfLoop(t *testing.T) {
	vd, ed := dicts()
	q, _, err := Parse("(a)-[:x]->(b), (b)-[:loop]->(b)", vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumEdges() != 2 {
		t.Fatalf("edges = %d", q.NumEdges())
	}
	e := q.Edge(1)
	if e.From != e.To {
		t.Fatalf("self loop = %v", e)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"(a",
		"(a)(b)",
		"(a)-[:x]->",
		"(a)-[x]->(b)",
		"(a)-[:]->(b)",
		"(a)-[:x]-(b)",
		"(a)-[:x]->(b), (c)-[:x]->(d), (e)", // (e) disconnected single chain... actually (e) is parsed; disconnected caught by Validate
		"(a:)->(b)",
		"(a)-[:x]->(a:Person)", // relabel on reuse
		"(a)<-[:x](b)",
		"MATCHY (a)-[:x]->(b)",
	}
	for _, src := range cases {
		vd, ed := dicts()
		if _, _, err := Parse(src, vd, ed); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDisconnectedRejected(t *testing.T) {
	vd, ed := dicts()
	_, _, err := Parse("(a)-[:x]->(b), (c)-[:x]->(d)", vd, ed)
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseMatchKeywordOptionalAndCaseInsensitive(t *testing.T) {
	for _, src := range []string{
		"match (a)-[:x]->(b)",
		"MATCH (a)-[:x]->(b)",
		"(a)-[:x]->(b)",
	} {
		vd, ed := dicts()
		if _, _, err := Parse(src, vd, ed); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	// An identifier starting with "match" must not be eaten as the keyword.
	vd, ed := dicts()
	if _, _, err := Parse("(matcher)-[:x]->(b)", vd, ed); err != nil {
		t.Errorf("matcher ident: %v", err)
	}
}

func TestDictReuseAcrossParses(t *testing.T) {
	vd, ed := dicts()
	q1, _, err := Parse("(a:Person)-[:follows]->(b:Person)", vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := Parse("(x:Person)-[:follows]->(y)", vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	// Same label names must intern to the same Labels.
	if q1.Edge(0).Label != q2.Edge(0).Label {
		t.Fatal("edge labels not shared across parses")
	}
	if q1.Labels(0)[0] != q2.Labels(0)[0] {
		t.Fatal("vertex labels not shared across parses")
	}
}
