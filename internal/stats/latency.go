package stats

import (
	"fmt"
	"sort"
	"time"
)

// Latency records per-operation durations and reports percentiles — used
// by the harness to characterize the tail of cost(M(Δo,q)) per update,
// which the paper's aggregate means hide. Reservoir sampling keeps memory
// bounded on long streams while preserving an unbiased sample.
type Latency struct {
	samples []time.Duration
	seen    int64
	cap     int
	rng     uint64
}

// NewLatency returns a recorder keeping at most capacity samples
// (reservoir-sampled once the stream exceeds it). capacity <= 0 selects
// a default of 4096.
func NewLatency(capacity int) *Latency {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Latency{cap: capacity, rng: 0x9e3779b97f4a7c15}
}

// Observe records one operation duration.
func (l *Latency) Observe(d time.Duration) {
	l.seen++
	if len(l.samples) < l.cap {
		l.samples = append(l.samples, d)
		return
	}
	// Reservoir replacement with a splitmix-style generator (deterministic,
	// no global rand dependency).
	l.rng ^= l.rng << 13
	l.rng ^= l.rng >> 7
	l.rng ^= l.rng << 17
	if i := int64(l.rng % uint64(l.seen)); i < int64(l.cap) {
		l.samples[i] = d
	}
}

// Count returns the number of observed operations.
func (l *Latency) Count() int64 { return l.seen }

// Percentile returns the p-th percentile (0 < p <= 100) of the sampled
// durations; 0 when empty.
func (l *Latency) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), l.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(float64(len(s))*p/100+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Quantiles returns the given percentiles in one pass over a single sorted
// copy of the sample — cheaper than repeated Percentile calls when a
// caller (the server's STATS command, the serve benchmark report) wants
// several cuts of the same distribution.
func (l *Latency) Quantiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(l.samples) == 0 {
		return out
	}
	s := append([]time.Duration(nil), l.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for k, p := range ps {
		switch {
		case p <= 0:
			out[k] = s[0]
		case p >= 100:
			out[k] = s[len(s)-1]
		default:
			idx := int(float64(len(s))*p/100+0.5) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(s) {
				idx = len(s) - 1
			}
			out[k] = s[idx]
		}
	}
	return out
}

// String renders p50/p95/p99 compactly.
func (l *Latency) String() string {
	return fmt.Sprintf("p50=%s p95=%s p99=%s (n=%d)",
		FormatDuration(l.Percentile(50)),
		FormatDuration(l.Percentile(95)),
		FormatDuration(l.Percentile(99)),
		l.seen)
}
