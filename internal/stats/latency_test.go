package stats

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyPercentiles(t *testing.T) {
	l := NewLatency(100)
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatalf("Count = %d", l.Count())
	}
	if p := l.Percentile(50); p < 45*time.Millisecond || p > 55*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := l.Percentile(99); p < 95*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	if l.Percentile(0) != time.Millisecond {
		t.Fatalf("p0 = %v", l.Percentile(0))
	}
	if l.Percentile(100) != 100*time.Millisecond {
		t.Fatalf("p100 = %v", l.Percentile(100))
	}
	if !strings.Contains(l.String(), "p50=") {
		t.Fatalf("String = %q", l.String())
	}
}

func TestLatencyEmptyAndReservoir(t *testing.T) {
	var empty Latency
	if empty.Percentile(50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Reservoir: the recorder must stay bounded and keep plausible values.
	l := NewLatency(64)
	for i := 0; i < 10_000; i++ {
		l.Observe(time.Duration(i%1000) * time.Microsecond)
	}
	if len(l.samples) != 64 {
		t.Fatalf("reservoir grew to %d", len(l.samples))
	}
	if l.Count() != 10_000 {
		t.Fatalf("Count = %d", l.Count())
	}
	p50 := l.Percentile(50)
	if p50 <= 0 || p50 >= time.Millisecond {
		t.Fatalf("reservoir p50 implausible: %v", p50)
	}
	if NewLatency(0).cap != 4096 {
		t.Fatal("default capacity not applied")
	}
}
