// Package stats provides the measurement primitives used by the experiment
// harness: incremental-matching cost timers, intermediate-result size
// accounting and the selectivity histograms of Appendix C.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Cost accumulates the elapsed time of incremental subgraph matching,
// cost(M(Δg, q)) in the paper: the time spent in continuous-matching work,
// excluding the data-graph update itself.
type Cost struct {
	total time.Duration
	n     int
	start time.Time
}

// Start begins timing one update operation.
func (c *Cost) Start() { c.start = time.Now() }

// Stop ends timing one update operation and accumulates it.
func (c *Cost) Stop() {
	c.total += time.Since(c.start)
	c.n++
}

// Add accumulates a pre-measured duration for one operation.
func (c *Cost) Add(d time.Duration) {
	c.total += d
	c.n++
}

// Total returns the accumulated duration.
func (c *Cost) Total() time.Duration { return c.total }

// Ops returns the number of accumulated operations.
func (c *Cost) Ops() int { return c.n }

// PerOp returns the mean duration per operation (0 when empty).
func (c *Cost) PerOp() time.Duration {
	if c.n == 0 {
		return 0
	}
	return c.total / time.Duration(c.n)
}

// Summary aggregates per-query results of one experimental cell (e.g. "tree
// queries of size 6 on LSBench for engine X").
type Summary struct {
	Costs    []time.Duration // per-query cost(M(Δg,q))
	Sizes    []int64         // per-query peak intermediate-result size (bytes)
	Matches  []int64         // per-query positive+negative match count
	Timeouts int             // queries censored at the timeout
}

// AddQuery records one completed query run.
func (s *Summary) AddQuery(cost time.Duration, size int64, matches int64) {
	s.Costs = append(s.Costs, cost)
	s.Sizes = append(s.Sizes, size)
	s.Matches = append(s.Matches, matches)
}

// AddTimeout records one censored query.
func (s *Summary) AddTimeout() { s.Timeouts++ }

// MeanCost returns the average cost across completed queries.
func (s *Summary) MeanCost() time.Duration {
	if len(s.Costs) == 0 {
		return 0
	}
	var t time.Duration
	for _, c := range s.Costs {
		t += c
	}
	return t / time.Duration(len(s.Costs))
}

// MeanSize returns the average intermediate-result size across completed
// queries.
func (s *Summary) MeanSize() int64 {
	if len(s.Sizes) == 0 {
		return 0
	}
	var t int64
	for _, sz := range s.Sizes {
		t += sz
	}
	return t / int64(len(s.Sizes))
}

// TotalMatches sums match counts across completed queries.
func (s *Summary) TotalMatches() int64 {
	var t int64
	for _, m := range s.Matches {
		t += m
	}
	return t
}

// Speedup returns the ratio mean(other)/mean(s), i.e. how many times faster
// s is than other; it returns NaN when s has no completed queries.
func (s *Summary) Speedup(other *Summary) float64 {
	a, b := s.MeanCost(), other.MeanCost()
	if a == 0 {
		return math.NaN()
	}
	return float64(b) / float64(a)
}

// Histogram is the Appendix C selectivity histogram: counts of queries
// whose positive-match totals fall into fixed ranges. The paper uses eight
// ranges; bounds are the inclusive upper limits of the first seven buckets,
// with an implicit +inf bucket at the end.
type Histogram struct {
	Bounds []int64
	Counts []int64
}

// NewSelectivityHistogram returns the eight-range histogram used in
// Figure 17: 0, ≤10, ≤100, ≤1k, ≤10k, ≤100k, ≤1M, >1M.
func NewSelectivityHistogram() *Histogram {
	return NewHistogram([]int64{0, 10, 100, 1000, 10_000, 100_000, 1_000_000})
}

// NewHistogram returns a histogram with the given sorted inclusive upper
// bounds plus a final overflow bucket.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{Bounds: b, Counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns each bucket's share of the total (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	t := h.Total()
	out := make([]float64, len(h.Counts))
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(t)
	}
	return out
}

// String renders the histogram as "(<=b: n)" pairs.
func (h *Histogram) String() string {
	var sb strings.Builder
	for i, b := range h.Bounds {
		fmt.Fprintf(&sb, "<=%d:%d ", b, h.Counts[i])
	}
	fmt.Fprintf(&sb, ">%d:%d", h.Bounds[len(h.Bounds)-1], h.Counts[len(h.Counts)-1])
	return sb.String()
}

// FormatDuration renders d with three significant digits and an adaptive
// unit, matching the tables printed by the harness.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.3gus", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// FormatBytes renders a byte count with an adaptive binary unit.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.3gGiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.3gMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.3gKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
