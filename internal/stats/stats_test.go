package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCost(t *testing.T) {
	var c Cost
	c.Add(10 * time.Millisecond)
	c.Add(30 * time.Millisecond)
	if c.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2", c.Ops())
	}
	if c.Total() != 40*time.Millisecond {
		t.Fatalf("Total = %v", c.Total())
	}
	if c.PerOp() != 20*time.Millisecond {
		t.Fatalf("PerOp = %v", c.PerOp())
	}
	var empty Cost
	if empty.PerOp() != 0 {
		t.Fatal("empty PerOp must be 0")
	}
	c.Start()
	c.Stop()
	if c.Ops() != 3 {
		t.Fatal("Start/Stop must count one op")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	s.AddQuery(2*time.Millisecond, 100, 5)
	s.AddQuery(4*time.Millisecond, 300, 7)
	s.AddTimeout()
	if s.MeanCost() != 3*time.Millisecond {
		t.Fatalf("MeanCost = %v", s.MeanCost())
	}
	if s.MeanSize() != 200 {
		t.Fatalf("MeanSize = %d", s.MeanSize())
	}
	if s.TotalMatches() != 12 {
		t.Fatalf("TotalMatches = %d", s.TotalMatches())
	}
	if s.Timeouts != 1 {
		t.Fatalf("Timeouts = %d", s.Timeouts)
	}
	var slow Summary
	slow.AddQuery(30*time.Millisecond, 0, 0)
	if sp := s.Speedup(&slow); sp != 10 {
		t.Fatalf("Speedup = %v, want 10", sp)
	}
	var empty Summary
	if !math.IsNaN(empty.Speedup(&slow)) {
		t.Fatal("Speedup of empty summary must be NaN")
	}
	if empty.MeanCost() != 0 || empty.MeanSize() != 0 {
		t.Fatal("empty summary means must be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewSelectivityHistogram()
	for _, v := range []int64{0, 0, 5, 10, 11, 1000, 999_999_999} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// Buckets: 0 → 2; ≤10 → 2 (5, 10); ≤100 → 1 (11); ≤1k → 1; overflow → 1.
	want := []int64{2, 2, 1, 1, 0, 0, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Fractions sum = %v", sum)
	}
	if !strings.Contains(h.String(), "<=0:2") {
		t.Fatalf("String() = %q", h.String())
	}
	if ef := NewHistogram([]int64{1}).Fractions(); ef[0] != 0 {
		t.Fatal("empty histogram fractions must be zero")
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2 * time.Second, "2s"},
		{1500 * time.Microsecond, "1.5ms"},
		{3 * time.Microsecond, "3us"},
		{512 * time.Nanosecond, "512ns"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
	bcases := []struct {
		n    int64
		want string
	}{
		{100, "100B"},
		{2048, "2KiB"},
		{3 << 20, "3MiB"},
		{5 << 30, "5GiB"},
	}
	for _, c := range bcases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
