package sjtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/naive"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func mapKey(m []graph.VertexID) string {
	b := make([]byte, 0, len(m)*4)
	for i, v := range m {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendVertex(b, v)
	}
	return string(b)
}

func randQuery(rng *rand.Rand, n, extra int) *query.Graph {
	q := query.NewGraph(n)
	for u := 0; u < n; u++ {
		if rng.Intn(3) > 0 {
			q.SetLabels(graph.VertexID(u), graph.Label(rng.Intn(3)))
		}
	}
	for u := 1; u < n; u++ {
		p := graph.VertexID(rng.Intn(u))
		l := graph.Label(rng.Intn(3))
		if rng.Intn(2) == 0 {
			_ = q.AddEdge(p, l, graph.VertexID(u))
		} else {
			_ = q.AddEdge(graph.VertexID(u), l, p)
		}
	}
	for i := 0; i < extra; i++ {
		_ = q.AddEdge(graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(3)), graph.VertexID(rng.Intn(n)))
	}
	return q
}

// TestDifferentialVsNaive replays random insertion streams through SJ-Tree
// and the naive oracle and compares per-update positive match sets.
func TestDifferentialVsNaive(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		injective := seed%2 == 1
		q := randQuery(rng, 3+rng.Intn(3), rng.Intn(2))
		g0 := graph.New()
		const nv = 10
		for v := 0; v < nv; v++ {
			_ = g0.AddVertex(graph.VertexID(v), graph.Label(rng.Intn(3)))
		}
		for i := 0; i < 10; i++ {
			g0.InsertEdge(graph.VertexID(rng.Intn(nv)), graph.Label(rng.Intn(3)), graph.VertexID(rng.Intn(nv)))
		}
		pos := map[string]bool{}
		eng, err := New(g0.Clone(), q, Options{Injective: injective, OnMatch: func(m []graph.VertexID) {
			k := mapKey(m)
			if pos[k] {
				t.Fatalf("seed %d: duplicate positive %s", seed, k)
			}
			pos[k] = true
		}})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := naive.New(g0.Clone(), q, injective)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 50; step++ {
			up := stream.Insert(
				graph.VertexID(rng.Intn(nv)),
				graph.Label(rng.Intn(3)),
				graph.VertexID(rng.Intn(nv)))
			pos = map[string]bool{}
			if _, err := eng.Apply(up); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			oPos, oNeg, err := oracle.Apply(up)
			if err != nil {
				t.Fatal(err)
			}
			if len(oNeg) != 0 {
				t.Fatal("insert-only stream produced negatives in oracle")
			}
			if got, want := sortedKeys(pos), sortedKeys(oPos); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d (%v): positives\n got %v\nwant %v\nquery %v",
					seed, step, up.Edge, got, want, q)
			}
		}
	}
}

func TestDeletionUnsupported(t *testing.T) {
	q := query.NewGraph(2)
	_ = q.AddEdge(0, 1, 1)
	e, err := New(graph.New(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(stream.Delete(0, 1, 1)); err != ErrDeletionUnsupported {
		t.Fatalf("delete err = %v, want ErrDeletionUnsupported", err)
	}
}

func TestSingleEdgeQuery(t *testing.T) {
	q := query.NewGraph(2)
	q.SetLabels(0, 1)
	_ = q.AddEdge(0, 5, 1)
	g := graph.New()
	_ = g.AddVertex(0, 1)
	_ = g.AddVertex(1, 2)
	e, err := New(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := e.InsertEdge(0, 5, 1); err != nil || n != 1 {
		t.Fatalf("n=%d err=%v, want 1", n, err)
	}
	if n, err := e.InsertEdge(1, 5, 0); err != nil || n != 0 {
		t.Fatalf("wrong-label-endpoint insert: n=%d err=%v, want 0", n, err)
	}
	if n, err := e.InsertEdge(0, 5, 1); err != nil || n != 0 {
		t.Fatalf("duplicate insert: n=%d err=%v", n, err)
	}
	if e.PositiveCount() != 1 {
		t.Fatalf("PositiveCount = %d", e.PositiveCount())
	}
}

// TestIntermediateBlowup reproduces the Figure 2b pathology at miniature
// scale: a star fan-out inflates SJ-Tree's materialized tuples while no
// complete solution exists.
func TestIntermediateBlowup(t *testing.T) {
	// Query: u0(A) -0-> u1(B) -1-> u2(C) -2-> u3(D); data has 30 Bs
	// reachable from A, each with an edge to C, but no D edge at all.
	q := query.NewGraph(4)
	q.SetLabels(0, 0)
	q.SetLabels(1, 1)
	q.SetLabels(2, 2)
	q.SetLabels(3, 3)
	_ = q.AddEdge(0, 0, 1)
	_ = q.AddEdge(1, 1, 2)
	_ = q.AddEdge(2, 2, 3)
	g := graph.New()
	_ = g.AddVertex(0, 0)
	_ = g.AddVertex(1, 2)
	for i := graph.VertexID(10); i < 40; i++ {
		_ = g.AddVertex(i, 1)
	}
	e, err := New(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := graph.VertexID(10); i < 40; i++ {
		if _, err := e.InsertEdge(0, 0, i); err != nil {
			t.Fatal(err)
		}
		if _, err := e.InsertEdge(i, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if e.PositiveCount() != 0 {
		t.Fatal("no complete solutions expected")
	}
	// 30 leaf tuples for (u0,u1), 30 for (u1,u2), 30 joined partials, and
	// zero beyond — at least 90 tuples materialized with zero results.
	if e.TupleCount() < 90 {
		t.Fatalf("TupleCount = %d, want >= 90", e.TupleCount())
	}
	if e.IntermediateSizeBytes() <= 0 {
		t.Fatal("size accounting must be positive")
	}
}

func TestVertexDeclaration(t *testing.T) {
	q := query.NewGraph(2)
	q.SetLabels(1, 7)
	_ = q.AddEdge(0, 1, 1)
	e, err := New(graph.New(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(stream.DeclareVertex(3, 7)); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.Apply(stream.Insert(2, 1, 3)); n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if _, err := e.Apply(stream.Update{Op: 99}); err == nil {
		t.Fatal("unknown op must error")
	}
}

func TestInvalidQuery(t *testing.T) {
	if _, err := New(graph.New(), query.NewGraph(0), Options{}); err == nil {
		t.Fatal("invalid query must error")
	}
}
