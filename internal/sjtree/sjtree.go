// Package sjtree implements the SJ-Tree baseline (Choudhury et al., EDBT
// 2015; Section 2.2 of the TurboFlux paper): a left-deep subgraph-join
// tree whose leaves are single query edges and whose internal nodes
// materialize the join of their children's partial solutions.
//
// On every edge insertion, new tuples enter the matching leaves, join with
// the materialized table of the sibling node and propagate upward; tuples
// reaching the root are positive matches. Duplicate partial solutions are
// filtered with the generate-and-discard strategy (check the hash table
// before inserting). SJ-Tree does not support edge deletion — the paper
// excludes it from the deletion experiments for the same reason.
//
// The storage pathology the paper demonstrates (worst case
// O(|V(q)|·|E(g)|^|E(q)|) materialized tuples) is inherent to this design
// and reproduces in the benchmarks.
package sjtree

import (
	"errors"
	"fmt"
	"time"

	"turboflux/internal/graph"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// ErrDeletionUnsupported is returned by Apply for deletion operations.
var ErrDeletionUnsupported = errors.New("sjtree: edge deletion is not supported")

// ErrTupleCap is returned once the engine materializes more tuples than
// its configured cap; the run is censored (the paper's timeout analogue
// for SJ-Tree's storage blow-ups).
var ErrTupleCap = errors.New("sjtree: materialized tuple cap exceeded")

// MatchFunc receives one positive match; the mapping slice is reused.
type MatchFunc func(m []graph.VertexID)

// Options configures an SJ-Tree engine.
type Options struct {
	// Injective selects subgraph isomorphism.
	Injective bool
	// OnMatch, when non-nil, receives every positive match.
	OnMatch MatchFunc
	// TupleCap bounds the total materialized tuples (0 = unlimited). It
	// also bounds generate-and-discard work: processing more than
	// 16*TupleCap generated tuples (kept or discarded) censors the run,
	// so pathological joins cannot stall uncensored.
	TupleCap int64
	// Deadline censors the run (including the initial materialization,
	// which dominates on large g0) once the wall clock passes it; zero
	// disables. Checked every few thousand generated tuples.
	Deadline time.Time
}

// tuple is a partial solution: data vertex per query vertex, graph.NoVertex
// where uncovered.
type tuple []graph.VertexID

// node is one node of the left-deep join tree.
type node struct {
	// edge is the query-edge index for leaves, -1 for internal nodes.
	edge int
	// left/right children; nil for leaves. right is always a leaf.
	left, right *node
	// covered[u] reports whether query vertex u is covered by this node.
	covered []bool
	// joinVars are the query vertices shared with the sibling in the parent
	// join (empty for the root).
	joinVars []graph.VertexID
	// index maps join-key -> tuples, for the parent's join probe.
	index map[string][]tuple
	// seen deduplicates full tuples (generate-and-discard).
	seen map[string]bool
	// size is the number of materialized tuples.
	size int
}

// Engine is an SJ-Tree continuous matcher.
type Engine struct {
	g         *graph.Graph
	q         *query.Graph
	injective bool
	onMatch   MatchFunc
	tupleCap  int64
	deadline  time.Time

	root   *node
	leaves []*node // leaf for query edge i at leaves[i]
	nodes  []*node // all nodes, for size accounting

	posTotal int64
	work     int64 // generated tuples processed, kept or discarded
	capHit   bool
}

// New builds the SJ-Tree for q over the initial graph g0 and materializes
// the partial solutions of its edges. The engine takes ownership of g0
// (callers keep their own copy if they need one). It returns ErrTupleCap
// when the initial materialization already exceeds opt.TupleCap.
func New(g0 *graph.Graph, q *query.Graph, opt Options) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		g:         g0,
		q:         q,
		injective: opt.Injective,
		onMatch:   opt.OnMatch,
		tupleCap:  opt.TupleCap,
		deadline:  opt.Deadline,
	}
	if err := e.buildTree(); err != nil {
		return nil, err
	}
	// Materialize g0's edges: matches produced here are the initial
	// matches, not stream positives.
	save := e.onMatch
	e.onMatch = nil
	g0.ForEachEdge(func(ed graph.Edge) {
		if !e.capHit {
			e.materialize(ed)
		}
	})
	e.posTotal = 0
	e.onMatch = save
	if e.capHit {
		return nil, ErrTupleCap
	}
	return e, nil
}

// buildTree constructs the left-deep decomposition: query edges are taken
// in a connected order (each subsequent edge shares a vertex with the
// prefix); leaf i holds edge order[i]; internal node i joins internal node
// i-1 with leaf i.
func (e *Engine) buildTree() error {
	q := e.q
	n := q.NumEdges()
	order := connectedEdgeOrder(q)
	if len(order) != n {
		return fmt.Errorf("sjtree: query is disconnected")
	}
	mkLeaf := func(ei int) *node {
		qe := q.Edge(ei)
		cov := make([]bool, q.NumVertices())
		cov[qe.From] = true
		cov[qe.To] = true
		return &node{
			edge:    ei,
			covered: cov,
			index:   make(map[string][]tuple),
			seen:    make(map[string]bool),
		}
	}
	cur := mkLeaf(order[0])
	e.leaves = make([]*node, n)
	e.leaves[order[0]] = cur
	e.nodes = append(e.nodes, cur)
	for i := 1; i < n; i++ {
		leaf := mkLeaf(order[i])
		e.leaves[order[i]] = leaf
		parentCov := make([]bool, q.NumVertices())
		var shared []graph.VertexID
		for u := range parentCov {
			parentCov[u] = cur.covered[u] || leaf.covered[u]
			if cur.covered[u] && leaf.covered[u] {
				shared = append(shared, graph.VertexID(u))
			}
		}
		cur.joinVars = shared
		leaf.joinVars = shared
		parent := &node{
			edge:    -1,
			left:    cur,
			right:   leaf,
			covered: parentCov,
			index:   make(map[string][]tuple),
			seen:    make(map[string]bool),
		}
		e.nodes = append(e.nodes, leaf, parent)
		cur = parent
	}
	// If the query has a single edge, the lone leaf is the root.
	e.root = cur
	return nil
}

// connectedEdgeOrder returns the query edges ordered so each shares a
// vertex with an earlier edge.
func connectedEdgeOrder(q *query.Graph) []int {
	n := q.NumEdges()
	used := make([]bool, n)
	inSet := make([]bool, q.NumVertices())
	var order []int
	first := q.Edge(0)
	order = append(order, 0)
	used[0] = true
	inSet[first.From], inSet[first.To] = true, true
	for len(order) < n {
		found := -1
		for i, qe := range q.Edges() {
			if used[i] {
				continue
			}
			if inSet[qe.From] || inSet[qe.To] {
				found = i
				break
			}
		}
		if found < 0 {
			break
		}
		used[found] = true
		qe := q.Edge(found)
		inSet[qe.From], inSet[qe.To] = true, true
		order = append(order, found)
	}
	return order
}

// Apply processes one update. Deletions return ErrDeletionUnsupported;
// vertex declarations register the vertex.
func (e *Engine) Apply(u stream.Update) (int64, error) {
	switch u.Op {
	case stream.OpInsert:
		return e.InsertEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpDelete:
		return 0, ErrDeletionUnsupported
	case stream.OpVertex:
		if !e.g.HasVertex(u.Vertex) {
			e.g.EnsureVertex(u.Vertex, u.Labels...)
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("sjtree: unknown op %d", u.Op)
	}
}

// InsertEdge inserts (v, l, v2) and returns the number of positive matches.
// Once the tuple cap is exceeded every further insertion fails with
// ErrTupleCap.
func (e *Engine) InsertEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	if e.capHit {
		return 0, ErrTupleCap
	}
	if !e.g.InsertEdge(v, l, v2) {
		return 0, nil
	}
	before := e.posTotal
	e.materialize(graph.Edge{From: v, Label: l, To: v2})
	if e.capHit {
		return e.posTotal - before, ErrTupleCap
	}
	return e.posTotal - before, nil
}

// materialize generates the leaf tuples of a (present) data edge and
// propagates them through the join tree.
func (e *Engine) materialize(ed graph.Edge) {
	nq := e.q.NumVertices()
	for ei, qe := range e.q.Edges() {
		if qe.Label != ed.Label {
			continue
		}
		if !e.g.HasAllLabels(ed.From, e.q.Labels(qe.From)) ||
			!e.g.HasAllLabels(ed.To, e.q.Labels(qe.To)) {
			continue
		}
		if e.injective && qe.From != qe.To && ed.From == ed.To {
			continue
		}
		if qe.From == qe.To && ed.From != ed.To {
			continue
		}
		tup := make(tuple, nq)
		for i := range tup {
			tup[i] = graph.NoVertex
		}
		tup[qe.From] = ed.From
		tup[qe.To] = ed.To
		e.propagate(e.leaves[ei], []tuple{tup})
	}
}

// propagate inserts delta tuples into n, joins them against the sibling's
// materialized table and recurses into the parent with the join results.
func (e *Engine) propagate(n *node, delta []tuple) {
	if e.capHit {
		return
	}
	before := e.work
	e.work += int64(len(delta))
	fresh := n.addTuples(delta)
	if e.tupleCap > 0 && (e.TupleCount() > e.tupleCap || e.work > 16*e.tupleCap) {
		e.capHit = true
		return
	}
	// Wall-clock censoring, checked roughly every 4096 generated tuples.
	if !e.deadline.IsZero() && before>>12 != e.work>>12 && time.Now().After(e.deadline) {
		e.capHit = true
		return
	}
	if len(fresh) == 0 {
		return
	}
	parent, sibling := e.parentAndSibling(n)
	if parent == nil {
		// Root: fresh tuples are positive matches.
		for _, t := range fresh {
			e.posTotal++
			if e.onMatch != nil {
				e.onMatch(t)
			}
		}
		return
	}
	var out []tuple
	for _, t := range fresh {
		key := joinKey(t, n.joinVars)
		for _, s := range sibling.index[key] {
			if merged, ok := e.merge(t, s); ok {
				out = append(out, merged)
			}
		}
	}
	if len(out) > 0 {
		e.propagate(parent, out)
	}
}

// parentAndSibling locates n's parent and sibling in the left-deep tree.
func (e *Engine) parentAndSibling(n *node) (parent, sibling *node) {
	for _, cand := range e.nodes {
		if cand.left == n {
			return cand, cand.right
		}
		if cand.right == n {
			return cand, cand.left
		}
	}
	return nil, nil
}

// addTuples inserts tuples into n's table, discarding duplicates, and
// returns the genuinely new ones (generate-and-discard).
func (n *node) addTuples(ts []tuple) []tuple {
	var fresh []tuple
	for _, t := range ts {
		fk := fullKey(t)
		if n.seen[fk] {
			continue
		}
		n.seen[fk] = true
		key := joinKey(t, n.joinVars)
		n.index[key] = append(n.index[key], t)
		n.size++
		fresh = append(fresh, t)
	}
	return fresh
}

// merge combines two tuples with compatible shared vertices; it reports
// failure on conflicts (shouldn't happen after the key join) and, under
// isomorphism, on non-injective combinations.
func (e *Engine) merge(a, b tuple) (tuple, bool) {
	out := make(tuple, len(a))
	copy(out, a)
	for u, v := range b {
		if v == graph.NoVertex {
			continue
		}
		if out[u] != graph.NoVertex && out[u] != v {
			return nil, false
		}
		out[u] = v
	}
	if e.injective {
		seen := make(map[graph.VertexID]bool, len(out))
		for _, v := range out {
			if v == graph.NoVertex {
				continue
			}
			if seen[v] {
				return nil, false
			}
			seen[v] = true
		}
	}
	return out, true
}

func joinKey(t tuple, vars []graph.VertexID) string {
	b := make([]byte, 0, len(vars)*5)
	for _, u := range vars {
		b = appendVertex(b, t[u])
		b = append(b, ',')
	}
	return string(b)
}

func fullKey(t tuple) string {
	b := make([]byte, 0, len(t)*5)
	for _, v := range t {
		b = appendVertex(b, v)
		b = append(b, ',')
	}
	return string(b)
}

func appendVertex(b []byte, v graph.VertexID) []byte {
	if v == graph.NoVertex {
		return append(b, '*')
	}
	n := uint64(v)
	if n >= 10 {
		b = appendVertex(b, graph.VertexID(n/10))
		return append(b, byte('0'+n%10))
	}
	return append(b, byte('0'+n))
}

// PositiveCount returns the total positives reported for stream inserts.
func (e *Engine) PositiveCount() int64 { return e.posTotal }

// IntermediateSizeBytes returns the accounting size of all materialized
// partial solutions: per tuple, 8 bytes per covered query vertex (the
// paper sizes SJ-Tree tuples by the number of vertices in the subquery).
func (e *Engine) IntermediateSizeBytes() int64 {
	var total int64
	for _, n := range e.nodes {
		width := 0
		for _, c := range n.covered {
			if c {
				width++
			}
		}
		total += int64(n.size) * int64(width) * 8
	}
	return total
}

// TupleCount returns the number of materialized partial solutions across
// all nodes (the quantity Figure 2b reports per node).
func (e *Engine) TupleCount() int64 {
	var total int64
	for _, n := range e.nodes {
		total += int64(n.size)
	}
	return total
}

// Graph returns the engine's data graph (for assertions in tests).
func (e *Engine) Graph() *graph.Graph { return e.g }
