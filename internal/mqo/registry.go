// Package mqo implements the multi-query optimization layer's
// sub-pattern registry (DESIGN.md §17): registered queries are
// canonicalized down to their spanning-tree shape, refcounted, and every
// distinct shape owns ONE shared DCG maintained once per update, with
// per-query completion joins (non-tree checks, semantics, emission
// attribution) layered on top by the multi-query front end.
package mqo

// Entry is one refcounted sub-pattern: a distinct spanning-tree shape
// shared by Refs registered queries. Payload is owned by the front end
// (the MultiEngine attaches its shared-evaluation state — maintainer
// engine and member list — here); the registry only tracks identity and
// lifetime.
type Entry struct {
	Key     string
	Refs    int
	Payload any
}

// Registry maps canonical sub-pattern keys to refcounted entries. It is
// confined to the actor that owns query registration (the MultiEngine):
// all methods must be called from that single goroutine.
//
//tf:actor-owned
type Registry struct {
	entries map[string]*Entry
	// totalRefs is the sum of Refs over all entries — one per registered
	// shareable query — maintained incrementally for O(1) stats.
	totalRefs int
}

// NewRegistry returns an empty sub-pattern registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Acquire takes one reference on the sub-pattern identified by key,
// creating its entry if this is the first reference. It returns the
// entry and whether it was newly created (Refs == 1 and Payload nil:
// the caller must attach its evaluation state).
//
//tf:map-ok registration-time only, never on the per-update path
func (r *Registry) Acquire(key string) (*Entry, bool) {
	e := r.entries[key]
	created := e == nil
	if created {
		e = &Entry{Key: key}
		r.entries[key] = e
	}
	e.Refs++
	r.totalRefs++
	return e, created
}

// Release drops one reference on e and returns the remaining count.
// At zero the entry is removed from the registry and must not be
// reused; the caller tears down its Payload.
//
//tf:map-ok unregistration-time only, never on the per-update path
func (r *Registry) Release(e *Entry) int {
	if e == nil || e.Refs <= 0 {
		return 0
	}
	e.Refs--
	r.totalRefs--
	if e.Refs == 0 {
		delete(r.entries, e.Key)
	}
	return e.Refs
}

// Get returns the entry for key, or nil.
//
//tf:map-ok registration-time lookup, never on the per-update path
func (r *Registry) Get(key string) *Entry { return r.entries[key] }

// Len returns the number of distinct sub-patterns currently registered.
func (r *Registry) Len() int { return len(r.entries) }

// TotalRefs returns the total reference count across all sub-patterns —
// the number of registered queries participating in the registry.
func (r *Registry) TotalRefs() int { return r.totalRefs }

// SharedCount returns the number of sub-patterns with two or more
// references — the shapes whose maintenance is actually deduplicated.
//
//tf:map-ok stats snapshot, never on the per-update path
func (r *Registry) SharedCount() int {
	n := 0
	//tf:unordered-ok counting refcounts; no emission order depends on it
	for _, e := range r.entries {
		if e.Refs >= 2 {
			n++
		}
	}
	return n
}
