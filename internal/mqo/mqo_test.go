package mqo

import (
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 0 || r.TotalRefs() != 0 || r.SharedCount() != 0 {
		t.Fatalf("empty registry: len=%d refs=%d shared=%d", r.Len(), r.TotalRefs(), r.SharedCount())
	}
	a, created := r.Acquire("a")
	if !created || a.Refs != 1 {
		t.Fatalf("first acquire: created=%v refs=%d", created, a.Refs)
	}
	a2, created := r.Acquire("a")
	if created || a2 != a || a.Refs != 2 {
		t.Fatalf("second acquire: created=%v same=%v refs=%d", created, a2 == a, a.Refs)
	}
	b, created := r.Acquire("b")
	if !created || b == a {
		t.Fatal("distinct key must create a distinct entry")
	}
	if r.Len() != 2 || r.TotalRefs() != 3 || r.SharedCount() != 1 {
		t.Fatalf("after acquires: len=%d refs=%d shared=%d", r.Len(), r.TotalRefs(), r.SharedCount())
	}
	if r.Get("a") != a || r.Get("missing") != nil {
		t.Fatal("Get mismatch")
	}
	if left := r.Release(a); left != 1 {
		t.Fatalf("release: left=%d", left)
	}
	if r.SharedCount() != 0 {
		t.Fatal("demoted entry still counted shared")
	}
	if left := r.Release(a); left != 0 {
		t.Fatalf("final release: left=%d", left)
	}
	if r.Get("a") != nil || r.Len() != 1 || r.TotalRefs() != 1 {
		t.Fatalf("after removal: len=%d refs=%d", r.Len(), r.TotalRefs())
	}
	// Re-acquiring a released key starts a fresh entry with a nil Payload.
	a3, created := r.Acquire("a")
	if !created || a3 == a || a3.Payload != nil {
		t.Fatal("re-acquire must create a fresh entry")
	}
}

func TestRegistryReleaseNil(t *testing.T) {
	r := NewRegistry()
	if r.Release(nil) != 0 {
		t.Fatal("nil release")
	}
	e, _ := r.Acquire("x")
	r.Release(e)
	if r.Release(e) != 0 || r.TotalRefs() != 0 {
		t.Fatal("double release must not underflow")
	}
}

// buildTree builds the query tree the way the multi-query layer does.
func buildTree(t *testing.T, q *query.Graph, root graph.VertexID) *query.Tree {
	t.Helper()
	g := graph.New()
	tree, err := query.TransformToTree(q, root, g)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestKeyOfSharesAcrossNonTreeEdges(t *testing.T) {
	// Path query u0 -a-> u1 -b-> u2.
	mk := func(extra bool) (*query.Graph, *query.Tree) {
		q := query.NewGraph(3)
		q.SetLabels(0, 0)
		q.SetLabels(1, 1)
		q.SetLabels(2, 1)
		if err := q.AddEdge(0, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := q.AddEdge(1, 1, 2); err != nil {
			t.Fatal(err)
		}
		if extra {
			// Closing edge u0 -c-> u2: heavier label stays non-tree on an
			// empty graph (estimates tie, tree greedily keeps declaration
			// order), so the spanning tree is unchanged.
			if err := q.AddEdge(0, 2, 2); err != nil {
				t.Fatal(err)
			}
		}
		tree := buildTree(t, q, 0)
		return q, tree
	}
	q1, t1 := mk(false)
	q2, t2 := mk(true)
	if len(t2.NonTree) != 1 {
		t.Fatalf("closing edge should be non-tree, got %v", t2.NonTree)
	}
	if KeyOf(q1, t1) != KeyOf(q2, t2) {
		t.Fatalf("keys must match across non-tree differences:\n%q\n%q", KeyOf(q1, t1), KeyOf(q2, t2))
	}
}

func TestKeyOfDiscriminates(t *testing.T) {
	base := func() *query.Graph {
		q := query.NewGraph(2)
		q.SetLabels(0, 0)
		q.SetLabels(1, 1)
		return q
	}
	q1 := base()
	if err := q1.AddEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	k1 := KeyOf(q1, buildTree(t, q1, 0))

	// Different edge label.
	q2 := base()
	if err := q2.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if KeyOf(q2, buildTree(t, q2, 0)) == k1 {
		t.Fatal("edge label must discriminate")
	}

	// Different direction.
	q3 := base()
	if err := q3.AddEdge(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if KeyOf(q3, buildTree(t, q3, 0)) == k1 {
		t.Fatal("edge direction must discriminate")
	}

	// Different vertex labels.
	q4 := query.NewGraph(2)
	q4.SetLabels(0, 0)
	q4.SetLabels(1, 2)
	if err := q4.AddEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if KeyOf(q4, buildTree(t, q4, 0)) == k1 {
		t.Fatal("vertex labels must discriminate")
	}

	// Different root.
	if KeyOf(q1, buildTree(t, q1, 1)) == k1 {
		t.Fatal("root must discriminate")
	}
}
