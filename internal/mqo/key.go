package mqo

import (
	"strconv"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// KeyOf canonicalizes the shareable part of a registered query — its
// spanning-tree shape — into a sub-pattern key. Two queries share a DCG
// exactly when their keys match, which requires identical vertex
// numbering, root, per-vertex parent edges (parent, label, direction),
// per-vertex label sequences, and child attachment order:
//
//   - vertex numbering and parent edges because DCG slots index in-edges
//     by child query vertex;
//   - label sequences because trigger gates test L(u) containment;
//   - child attachment order because clearing and matching-order
//     computation iterate Children[u] in attachment order.
//
// Non-tree edges, matching semantics, search strategy and OnMatch are
// deliberately excluded: they belong to the per-query completion join,
// not the shared maintenance. A stricter-than-necessary key only costs
// sharing opportunities, never correctness.
func KeyOf(q *query.Graph, tree *query.Tree) string {
	// Worst-case a few bytes per vertex/label; 16 per vertex is a
	// comfortable starting capacity for typical 4–8 vertex queries.
	b := make([]byte, 0, 16*q.NumVertices()+16)
	b = strconv.AppendInt(b, int64(q.NumVertices()), 10)
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(tree.Root), 10)
	for u := 0; u < q.NumVertices(); u++ {
		b = append(b, ';')
		if graph.VertexID(u) != tree.Root {
			te := tree.ParentEdge[u]
			b = strconv.AppendInt(b, int64(te.Parent), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(te.Label), 10)
			if te.Forward {
				b = append(b, 'f')
			} else {
				b = append(b, 'r')
			}
		}
		b = append(b, 'L')
		for _, l := range q.Labels(graph.VertexID(u)) {
			b = strconv.AppendInt(b, int64(l), 10)
			b = append(b, ',')
		}
		b = append(b, 'C')
		for _, c := range tree.Children[u] {
			b = strconv.AppendInt(b, int64(c), 10)
			b = append(b, ',')
		}
	}
	return string(b)
}
