// Package naive implements the recompute-from-scratch continuous matching
// baseline: after every update it re-enumerates all matches and reports
// the set difference against the previous snapshot. It is hopeless at
// scale (the paper's motivation, Section 1) and serves as the correctness
// oracle for every other engine on small inputs.
package naive

import (
	"turboflux/internal/graph"
	"turboflux/internal/matcher"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// Engine is the naive continuous matcher. It owns its data graph.
type Engine struct {
	g         *graph.Graph
	q         *query.Graph
	injective bool
	prev      map[string]bool
}

// New builds a naive engine over the initial graph g0. g0 must not be
// mutated by the caller afterwards.
func New(g0 *graph.Graph, q *query.Graph, injective bool) (*Engine, error) {
	prev, err := matcher.MatchSet(g0, q, injective)
	if err != nil {
		return nil, err
	}
	return &Engine{g: g0, q: q, injective: injective, prev: prev}, nil
}

// InitialMatches returns the matches of the initial graph.
func (e *Engine) InitialMatches() map[string]bool {
	out := make(map[string]bool, len(e.prev))
	for k := range e.prev {
		out[k] = true
	}
	return out
}

// Apply applies one update and returns the positive and negative match
// sets it produced (canonical keys per matcher.Key).
func (e *Engine) Apply(u stream.Update) (pos, neg map[string]bool, err error) {
	u.Apply(e.g)
	cur, err := matcher.MatchSet(e.g, e.q, e.injective)
	if err != nil {
		return nil, nil, err
	}
	pos = make(map[string]bool)
	neg = make(map[string]bool)
	for k := range cur {
		if !e.prev[k] {
			pos[k] = true
		}
	}
	for k := range e.prev {
		if !cur[k] {
			neg[k] = true
		}
	}
	e.prev = cur
	return pos, neg, nil
}

// Graph returns the engine's data graph (for assertions in tests).
func (e *Engine) Graph() *graph.Graph { return e.g }
