package naive

import (
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

func TestNaiveDeltas(t *testing.T) {
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 1, 1)
	_ = q.AddEdge(1, 2, 2)
	g := graph.New()
	g.InsertEdge(10, 1, 11)
	e, err := New(g, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.InitialMatches()) != 0 {
		t.Fatal("no initial matches expected")
	}
	pos, neg, err := e.Apply(stream.Insert(11, 2, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 1 || len(neg) != 0 {
		t.Fatalf("pos=%v neg=%v", pos, neg)
	}
	if !pos["10,11,12"] {
		t.Fatalf("pos=%v", pos)
	}
	pos, neg, err = e.Apply(stream.Delete(10, 1, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 0 || len(neg) != 1 || !neg["10,11,12"] {
		t.Fatalf("pos=%v neg=%v", pos, neg)
	}
	if e.Graph().NumEdges() != 1 {
		t.Fatal("graph not updated")
	}
}

func TestNaiveInvalidQuery(t *testing.T) {
	if _, err := New(graph.New(), query.NewGraph(0), false); err == nil {
		t.Fatal("invalid query must error")
	}
}
