package matcher

import (
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// diamond data: 0 -a-> 1, 0 -a-> 2, 1 -b-> 3, 2 -b-> 3, plus 3 -c-> 0.
func diamond() *graph.Graph {
	g := graph.New()
	for i := graph.VertexID(0); i < 4; i++ {
		_ = g.AddVertex(i, graph.Label(i%2)) // labels 0,1,0,1
	}
	g.InsertEdge(0, 10, 1)
	g.InsertEdge(0, 10, 2)
	g.InsertEdge(1, 11, 3)
	g.InsertEdge(2, 11, 3)
	g.InsertEdge(3, 12, 0)
	return g
}

func pathQuery() *query.Graph {
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 10, 1)
	_ = q.AddEdge(1, 11, 2)
	return q
}

func TestFindAllPath(t *testing.T) {
	g := diamond()
	q := pathQuery()
	n, err := Count(g, q, false)
	if err != nil {
		t.Fatal(err)
	}
	// 0-a->1-b->3 and 0-a->2-b->3.
	if n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
	set, err := MatchSet(g, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if !set["0,1,3"] || !set["0,2,3"] {
		t.Fatalf("MatchSet = %v", set)
	}
}

func TestLabelsConstrain(t *testing.T) {
	g := diamond()
	q := pathQuery()
	q.SetLabels(1, 1) // only data vertex 1 and 3 carry label 1
	n, err := Count(g, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Count with label constraint = %d, want 1", n)
	}
	q.SetLabels(1, 0, 1) // no vertex has both labels
	if n, _ := Count(g, q, false); n != 0 {
		t.Fatalf("Count with impossible constraint = %d, want 0", n)
	}
}

func TestCycleQuery(t *testing.T) {
	g := diamond()
	// Triangle 0 -a-> u1 -b-> u2 -c-> u0 exists twice (via 1 and via 2).
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 10, 1)
	_ = q.AddEdge(1, 11, 2)
	_ = q.AddEdge(2, 12, 0)
	n, err := Count(g, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("cycle Count = %d, want 2", n)
	}
}

func TestHomomorphismVsIsomorphism(t *testing.T) {
	g := graph.New()
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 1, 0)
	// Query path u0 -1-> u1 -1-> u2: homomorphism allows u0 and u2 to both
	// map to the same data vertex; isomorphism does not.
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 1, 1)
	_ = q.AddEdge(1, 1, 2)
	hom, _ := Count(g, q, false)
	iso, _ := Count(g, q, true)
	if hom != 2 { // 0,1,0 and 1,0,1
		t.Fatalf("hom Count = %d, want 2", hom)
	}
	if iso != 0 {
		t.Fatalf("iso Count = %d, want 0", iso)
	}
}

func TestSelfLoopQuery(t *testing.T) {
	g := graph.New()
	g.InsertEdge(5, 1, 5) // data self loop
	g.InsertEdge(5, 2, 6)
	q := query.NewGraph(2)
	_ = q.AddEdge(0, 1, 0) // query self loop on u0
	_ = q.AddEdge(0, 2, 1)
	n, err := Count(g, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("self-loop Count = %d, want 1", n)
	}
}

func TestEarlyStop(t *testing.T) {
	g := diamond()
	q := pathQuery()
	calls := 0
	if err := FindAll(g, q, false, func([]graph.VertexID) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("early stop visited %d matches, want 1", calls)
	}
}

func TestInvalidQuery(t *testing.T) {
	g := diamond()
	q := query.NewGraph(2) // no edges -> disconnected/invalid
	if _, err := Count(g, q, false); err == nil {
		t.Fatal("invalid query must error")
	}
}

func TestKey(t *testing.T) {
	if Key([]graph.VertexID{1, 2, 3}) != "1,2,3" {
		t.Fatalf("Key = %q", Key([]graph.VertexID{1, 2, 3}))
	}
}
