// Package matcher implements static subgraph matching over a snapshot of
// the data graph: a backtracking graph-homomorphism / subgraph-isomorphism
// search in the style of TurboHom++ (candidate filtering by labels and
// adjacency, connected matching orders).
//
// It is the evaluation substrate of the IncIsoMat baseline and the naive
// recompute oracle; TurboFlux itself searches through the DCG instead.
package matcher

import (
	"fmt"
	"strings"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// VisitFunc receives one complete mapping (query vertex -> data vertex).
// The slice is reused; copy it if retained. Return false to stop the
// enumeration early.
type VisitFunc func(m []graph.VertexID) bool

// FindAll enumerates every match of q in g under graph homomorphism
// (injective == false) or subgraph isomorphism (injective == true),
// invoking fn for each. The query must be connected.
func FindAll(g *graph.Graph, q *query.Graph, injective bool, fn VisitFunc) error {
	_, err := FindAllBudget(g, q, injective, 0, fn)
	return err
}

// FindAllBudget is FindAll with a work budget: the enumeration aborts
// after budget candidate attempts (0 = unlimited). It reports whether the
// enumeration ran to completion. Used by the harness to censor
// non-selective queries on repeated-search baselines.
func FindAllBudget(g *graph.Graph, q *query.Graph, injective bool, budget int64, fn VisitFunc) (complete bool, err error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	s := &searcher{
		g:         g,
		q:         q,
		injective: injective,
		budget:    budget,
		fn:        fn,
		m:         make([]graph.VertexID, q.NumVertices()),
	}
	for i := range s.m {
		s.m[i] = graph.NoVertex
	}
	if injective {
		s.used = make(map[graph.VertexID]bool)
	}
	s.order, s.via = matchingOrder(g, q)
	s.search(0)
	return !s.overBudget, nil
}

// Count returns the number of matches of q in g.
func Count(g *graph.Graph, q *query.Graph, injective bool) (int64, error) {
	var n int64
	err := FindAll(g, q, injective, func([]graph.VertexID) bool {
		n++
		return true
	})
	return n, err
}

// Key canonicalizes a mapping for set comparisons across engines.
func Key(m []graph.VertexID) string {
	var sb strings.Builder
	for i, v := range m {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}

// MatchSet collects all matches of q in g as a set of canonical keys.
func MatchSet(g *graph.Graph, q *query.Graph, injective bool) (map[string]bool, error) {
	set := make(map[string]bool)
	err := FindAll(g, q, injective, func(m []graph.VertexID) bool {
		set[Key(m)] = true
		return true
	})
	return set, err
}

type searcher struct {
	g          *graph.Graph
	q          *query.Graph
	injective  bool
	fn         VisitFunc
	m          []graph.VertexID
	used       map[graph.VertexID]bool
	stopped    bool
	budget     int64
	work       int64
	overBudget bool

	// order is a connected matching order; via[i] is the index of a query
	// edge connecting order[i] to an earlier vertex (-1 for order[0]).
	order []graph.VertexID
	via   []int
}

// matchingOrder returns a connected order starting from the endpoint of
// the most selective query edge, expanding by the most selective frontier
// edge — the static analogue of Section 4.1's heuristics.
func matchingOrder(g *graph.Graph, q *query.Graph) ([]graph.VertexID, []int) {
	n := q.NumVertices()
	start := query.ChooseStartQVertex(q, g)
	order := []graph.VertexID{start}
	via := []int{-1}
	placed := make([]bool, n)
	placed[start] = true
	for len(order) < n {
		bestEdge, bestNext := -1, graph.NoVertex
		bestCost := 0.0
		for i, e := range q.Edges() {
			var next graph.VertexID
			switch {
			case placed[e.From] && !placed[e.To]:
				next = e.To
			case placed[e.To] && !placed[e.From]:
				next = e.From
			default:
				continue
			}
			c := query.EstimateEdgeMatches(g, q.Labels(e.From), e.Label, q.Labels(e.To))
			if bestEdge < 0 || c < bestCost {
				bestEdge, bestNext, bestCost = i, next, c
			}
		}
		if bestEdge < 0 {
			break // disconnected; Validate prevents this
		}
		placed[bestNext] = true
		order = append(order, bestNext)
		via = append(via, bestEdge)
	}
	return order, via
}

func (s *searcher) search(depth int) {
	if s.stopped {
		return
	}
	if depth == len(s.order) {
		if !s.fn(s.m) {
			s.stopped = true
		}
		return
	}
	u := s.order[depth]
	if depth == 0 {
		labels := s.q.Labels(u)
		if len(labels) == 0 {
			s.g.ForEachVertex(func(v graph.VertexID) {
				s.try(u, v, depth)
			})
			return
		}
		for _, v := range s.g.VerticesWithLabel(labels[0]) {
			if s.g.HasAllLabels(v, labels) {
				s.try(u, v, depth)
			}
		}
		return
	}
	// Candidates come from the adjacency of the already-mapped endpoint of
	// the via edge.
	e := s.q.Edge(s.via[depth])
	var cands []graph.VertexID
	if e.To == u {
		cands = s.g.OutNeighbors(s.m[e.From], e.Label)
	} else {
		cands = s.g.InNeighbors(s.m[e.To], e.Label)
	}
	labels := s.q.Labels(u)
	for _, v := range cands {
		if s.g.HasAllLabels(v, labels) {
			s.try(u, v, depth)
		}
	}
}

func (s *searcher) try(u, v graph.VertexID, depth int) {
	if s.stopped {
		return
	}
	if s.budget > 0 {
		s.work++
		if s.work > s.budget {
			s.overBudget = true
			s.stopped = true
			return
		}
	}
	if s.injective && s.used[v] {
		return
	}
	// Verify every query edge between u and already-mapped vertices.
	for _, ei := range s.q.IncidentEdges(u) {
		e := s.q.Edge(ei)
		if e.From == u && e.To == u {
			if !s.g.HasEdge(v, e.Label, v) {
				return
			}
			continue
		}
		if e.From == u {
			if w := s.m[e.To]; w != graph.NoVertex && !s.g.HasEdge(v, e.Label, w) {
				return
			}
		} else {
			if w := s.m[e.From]; w != graph.NoVertex && !s.g.HasEdge(w, e.Label, v) {
				return
			}
		}
	}
	s.m[u] = v
	if s.injective {
		s.used[v] = true
	}
	s.search(depth + 1)
	s.m[u] = graph.NoVertex
	if s.injective {
		delete(s.used, v)
	}
}
