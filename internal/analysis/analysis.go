// Package analysis is a small stdlib-only static-analysis framework for
// enforcing TurboFlux-specific invariants that the Go compiler cannot see:
// oracle isolation, DCG encapsulation, deterministic match emission,
// read-only eval paths, hot-path allocation discipline and error-handling
// hygiene.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer runs over one type-checked package at a time and reports
// position-anchored diagnostics — but is built only on go/parser, go/ast
// and go/types, because this repository takes no external dependencies.
// Packages are loaded by Loader (load.go), which resolves module-local
// imports from the source tree and standard-library imports through the
// gc source importer, so analyzers see full cross-package type
// information (object positions in imported packages are real file
// positions, which oracle-isolation relies on).
//
// Analyzers honor suppression annotations written as directive comments
// (no space after //, so gofmt leaves them alone):
//
//	//tf:hotpath        function is allocation-sensitive (opt-in check)
//	//tf:unordered-ok   map iteration here is order-independent
//	//tf:oracle-ok      gated slow-path use of the DCG fixpoint oracle
//	//tf:unchecked-ok   discarding this error is deliberate
//	//tf:alloc-ok       this allocation in a hot path is deliberate
//	//tf:eval-path      function is an extra eval-readonly root (opt-in check)
//	//tf:graph-write    coordinator-only code exempt from eval-readonly
//	//tf:actor-owned    type whose methods only the engine-owner actor may call
//	//tf:actor-loop     function is an actor-goroutine root (opt-in check)
//	//tf:actor-ok       deliberate owned-type access outside the actor
//	//tf:goroutine      names a go statement (required outside tests)
//	//tf:unbuffered-ok  deliberate unbuffered channel on the serving path
//	//tf:lock-ok        deliberate banned call inside a critical section
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity classifies an analyzer's findings. Errors are contract
// violations that fail CI; warnings are discipline findings that are
// reported but not fatal.
type Severity string

const (
	SeverityError Severity = "error"
	SeverityWarn  Severity = "warn"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "oracle-isolation".
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Severity classifies every finding the analyzer reports; the zero
	// value means SeverityError.
	Severity Severity
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// severity returns the analyzer's effective severity.
func (a *Analyzer) severity() Severity {
	if a.Severity == "" {
		return SeverityError
	}
	return a.Severity
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// ModulePath is the module path from go.mod, e.g. "turboflux".
	ModulePath string
	// Pkg is the package under analysis.
	Pkg *Package

	annotations map[*ast.File]*Annotations
	report      func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.severity(),
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotations returns the //tf: directive index for f, built on first use.
func (p *Pass) Annotations(f *ast.File) *Annotations {
	if p.annotations == nil {
		p.annotations = make(map[*ast.File]*Annotations)
	}
	a := p.annotations[f]
	if a == nil {
		a = CollectAnnotations(p.Fset, f)
		p.annotations[f] = a
	}
	return a
}

// RelPath returns the package path relative to the module root: "" for the
// root package itself, "internal/core" for turboflux/internal/core.
func (p *Pass) RelPath() string {
	return relPath(p.ModulePath, p.Pkg.Path)
}

func relPath(modulePath, pkgPath string) string {
	if pkgPath == modulePath {
		return ""
	}
	if len(pkgPath) > len(modulePath)+1 && pkgPath[:len(modulePath)+1] == modulePath+"/" {
		return pkgPath[len(modulePath)+1:]
	}
	return pkgPath
}

// TypeInPackages reports whether t (after pointer indirection) is a named
// type defined in a package whose module-relative path is in rels.
func (p *Pass) TypeInPackages(t types.Type, rels ...string) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, false
	}
	rel := relPath(p.ModulePath, named.Obj().Pkg().Path())
	for _, r := range rels {
		if rel == r {
			return named, true
		}
	}
	return nil, false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Severity Severity
	Position token.Position
	Message  string
}

// SortDiagnostics orders findings by file, line, column, analyzer, message,
// so driver output and golden files are stable.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
