package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotations indexes the //tf: directive comments of one file by line.
// A directive suppresses or opts in a check for the statement it is
// written on (trailing comment) or the statement on the following line.
type Annotations struct {
	fset  *token.FileSet
	lines map[int][]string // line -> directive names ("hotpath", ...)
}

// CollectAnnotations scans every comment of f for //tf:<name> directives.
// The file must have been parsed with parser.ParseComments.
func CollectAnnotations(fset *token.FileSet, f *ast.File) *Annotations {
	a := &Annotations{fset: fset, lines: make(map[int][]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, ok := directiveName(c.Text)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			a.lines[line] = append(a.lines[line], name)
		}
	}
	return a
}

// directiveName extracts "unordered-ok" from "//tf:unordered-ok reason...".
func directiveName(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//tf:")
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// At reports whether directive name is attached to the node starting at
// pos: on the same line, or on the line directly above it.
func (a *Annotations) At(pos token.Pos, name string) bool {
	line := a.fset.Position(pos).Line
	return a.onLine(line, name) || a.onLine(line-1, name)
}

func (a *Annotations) onLine(line int, name string) bool {
	for _, n := range a.lines[line] {
		if n == name {
			return true
		}
	}
	return false
}

// FuncAnnotated reports whether fn carries the directive: anywhere in its
// doc comment, or line-attached to the func keyword.
func (a *Annotations) FuncAnnotated(fn *ast.FuncDecl, name string) bool {
	return a.DeclAnnotated(fn.Doc, fn.Pos(), name)
}

// DeclAnnotated reports whether a declaration carries the directive:
// anywhere in the given doc comment, or line-attached at pos. For type
// declarations pass both the GenDecl's and the TypeSpec's doc comments
// (gofmt attaches a single-spec doc to the GenDecl).
func (a *Annotations) DeclAnnotated(doc *ast.CommentGroup, pos token.Pos, name string) bool {
	if doc != nil {
		for _, c := range doc.List {
			if n, ok := directiveName(c.Text); ok && n == name {
				return true
			}
		}
	}
	return a.At(pos, name)
}
