package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

const annotSrc = `package p

// Doc comment.
//
//tf:hotpath
func Hot() {
	_ = 1 //tf:alloc-ok same line
	//tf:unordered-ok line above
	_ = 2
}

func Cold() {}
`

func TestAnnotations(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", annotSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := CollectAnnotations(fset, f)

	fns := map[string]*ast.FuncDecl{}
	var stmts []ast.Stmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
			if fd.Name.Name == "Hot" {
				stmts = fd.Body.List
			}
		}
	}
	if len(stmts) != 2 {
		t.Fatalf("fixture body has %d statements, want 2", len(stmts))
	}

	if !ann.FuncAnnotated(fns["Hot"], "hotpath") {
		t.Error("hotpath directive in the doc comment not detected")
	}
	if ann.FuncAnnotated(fns["Cold"], "hotpath") {
		t.Error("unannotated function reported as hotpath")
	}
	if !ann.At(stmts[0].Pos(), "alloc-ok") {
		t.Error("trailing same-line alloc-ok not detected")
	}
	if !ann.At(stmts[1].Pos(), "unordered-ok") {
		t.Error("line-above unordered-ok not detected")
	}
	if ann.At(stmts[1].Pos(), "alloc-ok") {
		t.Error("directive from an unrelated line leaked onto statement 2")
	}
}

func TestDirectiveName(t *testing.T) {
	cases := []struct {
		comment string
		name    string
		ok      bool
	}{
		{"//tf:unordered-ok summing commutes", "unordered-ok", true},
		{"//tf:hotpath", "hotpath", true},
		{"// tf:hotpath", "", false}, // space breaks the directive form
		{"//tf:", "", false},
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		name, ok := directiveName(c.comment)
		if name != c.name || ok != c.ok {
			t.Errorf("directiveName(%q) = %q, %v; want %q, %v", c.comment, name, ok, c.name, c.ok)
		}
	}
}

func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Analyzer: "b", Position: token.Position{Filename: "a.go", Line: 2}},
		{Analyzer: "a", Position: token.Position{Filename: "a.go", Line: 2}},
		{Analyzer: "z", Position: token.Position{Filename: "a.go", Line: 1}},
		{Analyzer: "a", Position: token.Position{Filename: "b.go", Line: 1}},
	}
	SortDiagnostics(ds)
	order := []string{"z", "a", "b", "a"}
	for i, want := range order {
		if ds[i].Analyzer != want {
			t.Fatalf("position %d: got analyzer %q, want %q", i, ds[i].Analyzer, want)
		}
	}
	if ds[3].Position.Filename != "b.go" {
		t.Errorf("file ordering not primary: %v", ds)
	}
}

func TestFindModuleRoot(t *testing.T) {
	fixture, err := filepath.Abs(filepath.Join("analyzers", "testdata", "src", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(filepath.Join(fixture, "internal", "core"))
	if err != nil {
		t.Fatal(err)
	}
	if root != fixture {
		t.Errorf("FindModuleRoot climbed to %q, want %q", root, fixture)
	}
}

func TestExpandPatternsSkipsTestdataAndNestedModules(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	foundSelf := false
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		slash := filepath.ToSlash(rel)
		if strings.Contains(slash+"/", "/testdata/") || filepath.Base(rel) == "testdata" {
			t.Errorf("ExpandPatterns descended into testdata: %q", rel)
		}
		if slash == "internal/analysis" {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Errorf("ExpandPatterns missed internal/analysis; got %v", dirs)
	}
}
