package analyzers

import (
	"go/ast"
	"go/types"

	"turboflux/internal/analysis"
)

// servingScope lists the module-relative package paths on the serving /
// emission path, where every queue must have an explicit bound: the root
// package hosts the engines the server drives, internal/server fans match
// events out to subscribers over bounded queues, internal/fanout moves
// evaluation tasks between the coordinator and the worker pool,
// internal/replica queues live WAL chunks between the engine-owner actor
// and per-follower stream pumps, internal/shard queues fan-out tasks
// between the router actor and the per-shard fanners, and
// cmd/turboflux-serve / cmd/turboflux-shard wire the serving loops
// together.
var servingScope = map[string]bool{
	"":                    true,
	"internal/server":     true,
	"internal/fanout":     true,
	"internal/replica":    true,
	"internal/shard":      true,
	"cmd/turboflux-serve": true,
	"cmd/turboflux-shard": true,
}

// ChannelDiscipline preserves the bounded-queue backpressure design
// (DESIGN.md §10): a make(chan ...) in a serving-scope package must state
// an explicit capacity. An accidentally unbuffered data channel turns the
// slow-consumer policy into a synchronous rendezvous and can stall the
// actor. Channels of struct{} are exempt — they carry no data, only
// close/signal edges — and //tf:unbuffered-ok <reason> marks deliberate
// rendezvous channels.
var ChannelDiscipline = &analysis.Analyzer{
	Name: "channel-discipline",
	Doc:  "serving-path channels must be buffered with an explicit capacity (//tf:unbuffered-ok exempts rendezvous)",
	Run:  runChannelDiscipline,
}

func runChannelDiscipline(pass *analysis.Pass) error {
	if !servingScope[pass.RelPath()] {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) == 0 {
				return true
			}
			if _, isBuiltin := pass.Pkg.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			tv, ok := pass.Pkg.TypesInfo.Types[call.Args[0]]
			if !ok {
				return true
			}
			ch, ok := tv.Type.Underlying().(*types.Chan)
			if !ok {
				return true
			}
			if len(call.Args) >= 2 && !isZeroLiteral(call.Args[1]) {
				return true // explicit (possibly variable) capacity
			}
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true // pure signal channel
			}
			if ann.At(call.Pos(), "unbuffered-ok") {
				return true
			}
			pass.Reportf(call.Pos(),
				"unbuffered channel on the serving path defeats the bounded-queue backpressure design: give it an explicit capacity or annotate //tf:unbuffered-ok with a reason")
			return true
		})
	}
	return nil
}
