package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"turboflux/internal/analysis"
)

// GoroutineLifecycle enforces the launch-site discipline that keeps the
// server leak-free across Shutdown: every go statement (tests excluded —
// the loader never parses _test.go files) must be named with
// //tf:goroutine <name>, and must be lexically paired with a registered
// shutdown path at the launch site. Four pairings count as tracked:
//
//   - WaitGroup: an Add call precedes the go statement in the enclosing
//     function and the launched body calls Done.
//   - Range-close: the launched body ranges over a channel that some
//     function in the package closes.
//   - Stop-receive: the launched body receives from a channel that some
//     function in the package closes.
//   - Completion: the launched body closes or sends on a channel that
//     some function in the package receives from.
//
// A goroutine with none of these is untracked: nothing in the package can
// observe its exit, which is exactly the leak the shutdown tests hunt
// dynamically.
var GoroutineLifecycle = &analysis.Analyzer{
	Name: "goroutine-lifecycle",
	Doc:  "every go statement needs a //tf:goroutine name and a registered shutdown path",
	Run:  runGoroutineLifecycle,
}

func runGoroutineLifecycle(pass *analysis.Pass) error {
	// Package-wide channel-name indexes: names passed to close(), and
	// names received from (<-ch or range ch). Matching is by the final
	// identifier of the channel expression — lexical, per the launch-site
	// contract, but package-wide so the closer may live in another
	// function or file.
	closed := map[string]bool{}
	received := map[string]bool{}
	methodBodies := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.Pkg.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					methodBodies[obj] = fn
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if _, isBuiltin := pass.Pkg.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if name := finalName(n.Args[0]); name != "" {
							closed[name] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if name := finalName(n.X); name != "" {
						received[name] = true
					}
				}
			case *ast.RangeStmt:
				if isChanExpr(pass, n.X) {
					if name := finalName(n.X); name != "" {
						received[name] = true
					}
				}
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !ann.At(gs.Pos(), "goroutine") {
				pass.Reportf(gs.Pos(),
					"naked goroutine: annotate the launch site //tf:goroutine <name> so lifecycle audits can account for it")
			}
			if !goroutineTracked(pass, file, gs, closed, received, methodBodies) {
				pass.Reportf(gs.Pos(),
					"untracked goroutine: no shutdown path is registered at the launch site (pair it with a WaitGroup Add/Done, range or receive over a channel this package closes, or a completion channel this package receives from)")
			}
			return true
		})
	}
	return nil
}

// goroutineTracked reports whether the go statement has one of the four
// recognized shutdown pairings.
func goroutineTracked(pass *analysis.Pass, file *ast.File, gs *ast.GoStmt,
	closed, received map[string]bool, methodBodies map[*types.Func]*ast.FuncDecl) bool {
	var body *ast.BlockStmt
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if f, ok := pass.Pkg.TypesInfo.Uses[fun].(*types.Func); ok {
			if decl := methodBodies[f]; decl != nil {
				body = decl.Body
			}
		}
	case *ast.SelectorExpr:
		if f, ok := pass.Pkg.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if decl := methodBodies[f]; decl != nil {
				body = decl.Body
			}
		}
	}
	if body == nil {
		return false
	}

	// WaitGroup pairing: Add before the launch in the enclosing function,
	// Done in the launched body.
	if fn := enclosingFuncDecl(file, gs.Pos()); fn != nil {
		addBefore := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && call.Pos() < gs.Pos() &&
				isWaitGroupMethod(pass, call, "Add") {
				addBefore = true
			}
			return true
		})
		if addBefore {
			doneInside := false
			ast.Inspect(body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethod(pass, call, "Done") {
					doneInside = true
				}
				return true
			})
			if doneInside {
				return true
			}
		}
	}

	// Channel pairings over the launched body.
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Range-close: the loop ends when the package closes the channel.
			if isChanExpr(pass, n.X) && closed[finalName(n.X)] {
				tracked = true
			}
		case *ast.UnaryExpr:
			// Stop-receive: a receive that unblocks when the package closes
			// the channel.
			if n.Op == token.ARROW && isChanExpr(pass, n.X) && closed[finalName(n.X)] {
				tracked = true
			}
		case *ast.SendStmt:
			// Completion: the goroutine reports its exit on a channel the
			// package receives from.
			if received[finalName(n.Chan)] {
				tracked = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pass.Pkg.TypesInfo.Uses[id].(*types.Builtin); isBuiltin &&
					received[finalName(n.Args[0])] {
					tracked = true
				}
			}
		}
		return true
	})
	return tracked
}

// finalName returns the last identifier of an expression: "done" for both
// done and c.sub.done. Empty when the expression has no trailing
// identifier.
func finalName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return finalName(e.X)
	}
	return ""
}

// isChanExpr reports whether e has channel type.
func isChanExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// isWaitGroupMethod reports whether call invokes sync.WaitGroup's method
// of the given name.
func isWaitGroupMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	f, ok := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
