// Package dcg exercises the package-wide rule: DCG maintenance runs only
// inside evaluation, so every map operation is a finding unless the
// function is exempted.
package dcg

import "turboflux/internal/graph"

// DCG mixes a dense slot table with a leftover map index.
type DCG struct {
	nodes  []int32
	slotOf map[graph.VertexID]int32
}

// Slot looks the vertex up in the map: finding.
func (d *DCG) Slot(v graph.VertexID) int32 {
	return d.slotOf[v]
}

// Validate is a test-support invariant checker, exempted wholesale.
//
//tf:map-ok test-support invariant checker
func (d *DCG) Validate() bool {
	seen := make(map[int32]bool, len(d.nodes))
	//tf:unordered-ok duplicate detection is order-free
	for _, s := range d.slotOf {
		if seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}
