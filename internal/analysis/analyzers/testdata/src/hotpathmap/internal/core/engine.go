// Package core exercises the hotpath-map reachability rule: hash-map
// operations are fine in coordinator code but not in anything reachable
// from an eval entry point.
package core

import "turboflux/internal/graph"

// Engine carries leftover maps alongside its dense tables.
type Engine struct {
	dense []int32
	seen  map[graph.VertexID]bool
	stats map[graph.Label]int64
}

// EvalInsertedEdge is an implicit eval entry point; the map ops hide one
// call down.
func (e *Engine) EvalInsertedEdge(from, to graph.VertexID) {
	e.extend(from)
	e.extend(to)
	e.rebuildFromSpec(e.seen)
}

// extend reads and writes the map from inside the eval path: two
// findings, plus a suppressed probe on a gated ablation branch.
func (e *Engine) extend(v graph.VertexID) {
	if e.seen[v] {
		return
	}
	e.seen[v] = true
	//tf:map-ok gated ablation branch, never taken on the fast path
	delete(e.seen, v)
}

// drain ranges and deletes on an opted-in eval root: two findings.
//
//tf:eval-path
func (e *Engine) drain() int64 {
	var n int64
	//tf:unordered-ok order-free accumulation
	for _, c := range e.stats {
		n += c
	}
	delete(e.stats, 0)
	return n
}

// rebuildFromSpec consumes the oracle fixpoint and is exempted wholesale
// even though drain reaches it.
//
//tf:oracle-ok gated ablation slow path
func (e *Engine) rebuildFromSpec(states map[graph.VertexID]bool) {
	//tf:unordered-ok absolute states commute
	for v := range states {
		e.dense[v] = 1
	}
}

// Report is coordinator-only and unreachable from any eval root: clean.
func (e *Engine) Report() int64 {
	var n int64
	//tf:unordered-ok order-free accumulation
	for _, c := range e.stats {
		n += c
	}
	return n
}
