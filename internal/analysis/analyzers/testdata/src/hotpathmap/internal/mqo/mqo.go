// Package mqo exercises the package-wide rule on the sub-pattern
// registry: the package sits on the multi-query fan-out path, so every
// map operation is a finding unless the function is exempted.
package mqo

// Registry mixes a refcount total with a key-indexed entry map.
type Registry struct {
	entries map[string]int
	total   int
}

// Refs looks the key up in the map: finding.
func (r *Registry) Refs(key string) int {
	return r.entries[key]
}

// Acquire is exempted wholesale: registration-time only.
//
//tf:map-ok registration-time only, never per update
func (r *Registry) Acquire(key string) {
	r.entries[key]++
	r.total++
}
