// Package graph is the minimal vertex/label surface the hotpath-map
// fixture needs.
package graph

// VertexID identifies a data vertex.
type VertexID uint32

// Label identifies an edge label.
type Label uint16
