module turboflux

go 1.22
