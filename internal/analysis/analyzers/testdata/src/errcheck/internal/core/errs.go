package core

import (
	"errors"
	"fmt"
)

// mayFail sometimes fails.
func mayFail(v int) error {
	if v < 0 {
		return errors.New("negative")
	}
	return nil
}

// Discards drops errors three ways.
func Discards() {
	mayFail(1)
	go mayFail(2)
	defer mayFail(3)
}

// Checked handles the error: no finding.
func Checked() error {
	if err := mayFail(1); err != nil {
		return err
	}
	return nil
}

// Deliberate documents the discard: no finding.
func Deliberate() {
	mayFail(1) //tf:unchecked-ok best-effort cleanup
}

// Printing is whitelisted: no finding.
func Printing() {
	fmt.Println("hello")
}
