package core

import "turboflux/internal/dcg"

// FastPath wrongly reaches for the oracle in production code.
func FastPath() int {
	states := dcg.ComputeSpec(4)
	return len(states)
}

// Ablation is a gated slow path; the directive permits the oracle here.
//
//tf:oracle-ok naive-rebuild ablation
func Ablation() int {
	return len(dcg.ComputeSpec(4))
}

// Transitions uses only the transition API: no finding.
func Transitions() dcg.State {
	return dcg.MakeTransition(1)
}
