package dcg

// State mirrors the real DCG edge state.
type State uint8

// MakeTransition stands in for the transition API.
func MakeTransition(s State) State { return s }
