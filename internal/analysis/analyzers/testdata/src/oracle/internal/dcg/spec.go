package dcg

// ComputeSpec stands in for the DCG fixpoint oracle.
//
//tf:oracle-ok fixpoint oracle, never on the eval path
func ComputeSpec(n int) map[int]State {
	out := make(map[int]State, n)
	for i := 0; i < n; i++ {
		out[i] = specHelper(i)
	}
	return out
}

// specHelper is oracle-internal; calling it from spec.go is fine.
func specHelper(i int) State { return State(i % 2) }
