// Package core exercises the eval-readonly reachability rule: graph
// mutations are fine in coordinator methods but not in anything reachable
// from an eval entry point.
package core

import "turboflux/internal/graph"

// Engine owns a private DCG over the shared graph.
type Engine struct {
	g *graph.Graph
}

// EvalInsertedEdge is an implicit eval entry point; the mutation hides
// two calls down.
func (e *Engine) EvalInsertedEdge(from, to graph.VertexID) {
	e.extend(from, to)
}

// extend is an intermediate hop on the eval path.
func (e *Engine) extend(from, to graph.VertexID) {
	if !e.g.HasEdge(from, to) {
		e.repair(from, to)
	}
}

// repair mutates the graph from deep inside the eval path: finding.
func (e *Engine) repair(from, to graph.VertexID) {
	e.g.InsertEdge(from, to)
}

// InsertEdge is the coordinator: mutate-then-eval is the intended shape
// and must not be reported.
func (e *Engine) InsertEdge(from, to graph.VertexID) {
	e.g.InsertEdge(from, to)
	e.EvalInsertedEdge(from, to)
}

// seed is opted in as an eval root and mutates directly: finding.
//
//tf:eval-path
func (e *Engine) seed(v graph.VertexID) {
	e.g.EnsureVertex(v)
}

// rollback mutates but is unreachable from any eval root: clean.
func (e *Engine) rollback(from, to graph.VertexID) {
	e.g.DeleteEdge(from, to)
}
