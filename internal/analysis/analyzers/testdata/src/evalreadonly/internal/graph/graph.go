// Package graph is a stub of the data graph: the mutator/reader split is
// what the eval-readonly analyzer keys on.
package graph

// VertexID identifies a vertex.
type VertexID uint32

// Graph is the shared data graph.
type Graph struct {
	n int
}

// InsertEdge mutates the graph.
func (g *Graph) InsertEdge(from, to VertexID) bool {
	g.n++
	return true
}

// DeleteEdge mutates the graph.
func (g *Graph) DeleteEdge(from, to VertexID) bool {
	g.n--
	return true
}

// EnsureVertex mutates the graph.
func (g *Graph) EnsureVertex(v VertexID) {
	g.n++
}

// HasEdge is a pure read.
func (g *Graph) HasEdge(from, to VertexID) bool {
	return false
}

// NumEdges is a pure read.
func (g *Graph) NumEdges() int { return g.n }
