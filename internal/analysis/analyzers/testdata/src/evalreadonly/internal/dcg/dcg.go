// Package dcg exercises the package-wide rule: DCG maintenance runs only
// inside evaluation, so every graph-mutator call is a finding unless the
// function is exempted as coordinator-only.
package dcg

import "turboflux/internal/graph"

// Rebuild mutates the graph during DCG maintenance: finding.
func Rebuild(g *graph.Graph, v graph.VertexID) {
	g.EnsureVertex(v)
}

// Seed is coordinator-only bootstrap code, exempted.
//
//tf:graph-write bootstrap runs before any engine exists
func Seed(g *graph.Graph, v graph.VertexID) {
	g.EnsureVertex(v)
}
