// Package fanout is the lock-scope fixture's worker-pool stand-in.
package fanout

// Pool runs tasks.
type Pool struct{}

// Run executes every task.
func (p *Pool) Run(tasks []func()) {
	for _, fn := range tasks {
		fn()
	}
}
