// Package relay is the lock-scope fixture: critical sections must not
// call into eval, I/O or pool dispatch. Findings: a socket write under
// the lock, an eval-path call under a deferred read lock, and a pool
// dispatch under the lock. Copy-then-write-after-unlock and a suppressed
// control operation are fine.
package relay

import (
	"net"
	"sync"
	"time"

	"turboflux/internal/fanout"
)

// Relay guards a socket and a counter with separate locks.
type Relay struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	n    int
}

// Eval is an eval root for the fixture.
//
//tf:eval-path
func (r *Relay) Eval() int {
	return r.n
}

// Broadcast writes to the socket while holding the lock.
func (r *Relay) Broadcast(b []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.conn.Write(b)
	return err
}

// Count evaluates under a read lock that is held to function end.
func (r *Relay) Count() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.Eval()
}

// Flush dispatches to the worker pool while locked.
func (r *Relay) Flush(p *fanout.Pool, tasks []func()) {
	r.mu.Lock()
	p.Run(tasks)
	r.mu.Unlock()
}

// Send copies under the lock and does the I/O after releasing it.
func (r *Relay) Send(b []byte) error {
	r.mu.Lock()
	buf := make([]byte, len(b))
	copy(buf, b)
	r.n += len(b)
	r.mu.Unlock()
	_, err := r.conn.Write(buf)
	return err
}

// Probe pokes the read deadline inside the lock, deliberately.
func (r *Relay) Probe(t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = r.conn.SetReadDeadline(t) //tf:lock-ok fixture: nonblocking control op
}
