package core

import "fmt"

// HotFormat allocates a formatted string per call.
//
//tf:hotpath
func HotFormat(v int) string {
	return fmt.Sprintf("v%d", v)
}

// HotClosure builds a capturing closure per call.
//
//tf:hotpath
func HotClosure(vs []int, visit func(func() int)) {
	total := 0
	visit(func() int {
		total += len(vs)
		return total
	})
}

// HotGrow appends to an unsized local slice.
//
//tf:hotpath
func HotGrow(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// HotPrealloc sizes the slice up front: no finding.
//
//tf:hotpath
func HotPrealloc(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// HotSuppressed documents the deliberate allocation: no finding.
//
//tf:hotpath
func HotSuppressed(v int) string {
	return fmt.Sprintf("v%d", v) //tf:alloc-ok error path only
}

// ColdFormat is not annotated; the analyzer leaves it alone.
func ColdFormat(v int) string {
	return fmt.Sprintf("v%d", v)
}

// ApplyBatch is not annotated, but its name is an implicit hot-path
// entry point: the batch pipeline is checked even without //tf:hotpath.
func ApplyBatch(vs []int) string {
	return fmt.Sprintf("n=%d", len(vs))
}

// replayBatch is the other implicit entry point; allocation-free, so no
// finding.
func replayBatch(vs []int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}
