package core

// Sum is trivially invariant-clean.
func Sum(vs []int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}
