// Package turboflux is the actor-confinement fixture's root package: one
// engine type carrying the required //tf:actor-owned directive and one
// missing it (finding).
package turboflux

// MultiEngine is the fixture engine; not safe for concurrent use.
//
//tf:actor-owned
type MultiEngine struct {
	n int
}

// Apply mutates the engine.
func (m *MultiEngine) Apply(x int) int {
	m.n += x
	return m.n
}

// Engine is missing the //tf:actor-owned directive.
type Engine struct {
	n int
}

// Apply mutates the engine.
func (e *Engine) Apply(x int) int {
	e.n += x
	return e.n
}
