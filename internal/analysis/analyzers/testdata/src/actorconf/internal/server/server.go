// Package server is the actor-confinement fixture: an actor loop that
// legitimately drives the owned engine, a bypass from a non-actor
// function (finding), and a suppressed deliberate access.
package server

import "turboflux"

// host is the engine surface the actor drives.
//
//tf:actor-owned
type host interface {
	Apply(x int) int
}

type actor struct {
	m *turboflux.MultiEngine
	h host
	n int
}

// run is the engine-owner loop; everything it reaches may touch the
// engine.
//
//tf:actor-loop
func (a *actor) run(xs []int) {
	for _, x := range xs {
		a.handle(x)
	}
}

// handle runs on the actor goroutine: owned-type calls here are fine.
func (a *actor) handle(x int) {
	a.n = a.m.Apply(x)
	a.n = a.h.Apply(x)
}

// stats is called from connection goroutines; reading the engine here
// races the actor.
func (a *actor) stats() int {
	return a.m.Apply(0)
}

// pump is a subscriber-side helper; the interface call still reaches the
// owned engine.
func pump(h host) int {
	return h.Apply(1)
}

// snapshot is a deliberate pre-start access, suppressed.
func snapshot(m *turboflux.MultiEngine) int {
	return m.Apply(0) //tf:actor-ok fixture: construction precedes actor start
}
