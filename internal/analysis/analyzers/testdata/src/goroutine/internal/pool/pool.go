// Package pool is the goroutine-lifecycle fixture: tracked launches
// (WaitGroup pairing, range-close, stop-receive), a naked goroutine and
// an annotated-but-untracked goroutine (findings).
package pool

import "sync"

// Pool launches one worker per shutdown style.
type Pool struct {
	ch   chan func()
	done chan struct{}
	wg   sync.WaitGroup
}

// New starts the pool's goroutines.
func New() *Pool {
	p := &Pool{ch: make(chan func(), 8), done: make(chan struct{})}
	//tf:goroutine pool-worker
	go p.worker()
	p.wg.Add(1)
	//tf:goroutine pool-waiter
	go func() {
		defer p.wg.Done()
		<-p.done
	}()
	go p.tick()
	//tf:goroutine pool-spinner
	go spin()
	return p
}

// worker drains the task channel until Close closes it.
func (p *Pool) worker() {
	for fn := range p.ch {
		fn()
	}
}

// tick never observes shutdown; nothing in the package can join it.
func (p *Pool) tick() {
	for {
		select {
		case fn := <-p.pending():
			fn()
		}
	}
}

func (p *Pool) pending() chan func() { return nil }

// spin is annotated but has no shutdown path either.
func spin() {
	for {
	}
}

// Close stops the tracked goroutines.
func (p *Pool) Close() {
	close(p.ch)
	close(p.done)
	p.wg.Wait()
}
