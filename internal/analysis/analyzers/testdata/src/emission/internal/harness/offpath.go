package harness

// OffPath ranges a map outside the emission scope: no finding.
func OffPath(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
