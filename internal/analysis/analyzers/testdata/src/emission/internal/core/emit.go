package core

import "sort"

// EmitUnsorted iterates a map on an emission path without ordering.
func EmitUnsorted(counts map[int]int, emit func(int)) {
	for v := range counts {
		emit(v)
	}
}

// EmitSorted collects then sorts before emitting: no finding.
func EmitSorted(counts map[int]int, emit func(int)) {
	vs := make([]int, 0, len(counts))
	for v := range counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs {
		emit(v)
	}
}

// Tally accumulates order-independently and says so: no finding.
func Tally(counts map[int]int) int {
	total := 0
	//tf:unordered-ok summing is order-independent
	for _, n := range counts {
		total += n
	}
	return total
}

// Slices are ordered; ranging one is fine.
func EmitSlice(vs []int, emit func(int)) {
	for _, v := range vs {
		emit(v)
	}
}
