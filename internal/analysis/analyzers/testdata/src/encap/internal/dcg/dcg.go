package dcg

// DCG exposes fields for read access; writes must go through the API.
type DCG struct {
	NumEdges int
	In       map[int]int
}

// EdgeKey is a value type; mutating a local copy is harmless.
type EdgeKey struct {
	From int
	To   int
}

// MakeTransition is the exported mutation API.
func (d *DCG) MakeTransition(delta int) { d.NumEdges += delta }
