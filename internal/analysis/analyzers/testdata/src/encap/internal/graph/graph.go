package graph

// Graph exposes a counter for reading.
type Graph struct {
	NumEdges int
}
