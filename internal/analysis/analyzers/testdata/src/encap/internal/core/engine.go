package core

import (
	"turboflux/internal/dcg"
	"turboflux/internal/graph"
)

// Corrupt bypasses the transition API in four different ways.
func Corrupt(d *dcg.DCG, g *graph.Graph) {
	d.NumEdges = 7
	d.NumEdges++
	d.In[1] = 2
	delete(d.In, 1)
	g.NumEdges--
}

// LocalCopy mutates a value copy of a DCG type: harmless, no finding.
func LocalCopy() dcg.EdgeKey {
	var k dcg.EdgeKey
	k.From = 1
	return k
}

// ThroughAPI mutates via the exported API: no finding.
func ThroughAPI(d *dcg.DCG) {
	d.MakeTransition(1)
}
