// Package util is outside the serving scope: unbuffered channels here
// are not channel-discipline findings.
package util

// Feed returns an unbuffered channel; util is off the serving path.
func Feed() chan int {
	return make(chan int)
}
