// Package server is the channel-discipline fixture: serving-path
// channels must carry an explicit capacity. Unbuffered data channels are
// findings; struct{} signal channels, annotated rendezvous channels and
// buffered channels are fine.
package server

type event struct {
	n int
}

type hub struct {
	events chan event
	acks   chan int
	burst  chan event
	stop   chan struct{}
}

func newHub(depth int) *hub {
	return &hub{
		events: make(chan event),
		acks:   make(chan int, 0),
		burst:  make(chan event, depth),
		stop:   make(chan struct{}),
	}
}

// control returns a deliberate rendezvous channel, suppressed.
func control() chan event {
	return make(chan event) //tf:unbuffered-ok fixture: synchronous handshake
}
