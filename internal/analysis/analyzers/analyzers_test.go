package analyzers

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"turboflux/internal/analysis"
)

// update rewrites every fixture's want.txt from the current analyzer
// output instead of comparing: go test ./internal/analysis/... -update.
// CI runs the test without -update, so drift between the analyzers and
// the checked-in goldens fails the build.
var update = flag.Bool("update", false, "rewrite golden want.txt files")

// TestGolden runs the full analyzer suite over every fixture module under
// testdata/src and compares the formatted diagnostics against the module's
// want.txt. Each fixture is a self-contained mini-module named "turboflux" so
// the analyzers' package-scope rules apply exactly as they do on the real tree.
func TestGolden(t *testing.T) {
	cases, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no fixture modules under testdata/src")
	}
	for _, dir := range cases {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			diags, err := analysis.Run(dir, []string{"./..."}, All())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			var got strings.Builder
			for _, d := range diags {
				rel, err := filepath.Rel(abs, d.Position.Filename)
				if err != nil {
					rel = d.Position.Filename
				}
				fmt.Fprintf(&got, "%s:%d: [%s] %s\n",
					filepath.ToSlash(rel), d.Position.Line, d.Analyzer, d.Message)
			}
			goldenPath := filepath.Join(dir, "want.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got.String()), 0o644); err != nil {
					t.Fatalf("rewriting golden file: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden file: %v", err)
			}
			if got.String() != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got.String(), want)
			}
		})
	}
}
