package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"turboflux/internal/analysis"
)

// HotpathAlloc checks functions annotated //tf:hotpath — the per-update
// maintenance and search loops, where one allocation per call multiplies
// into one allocation per DCG edge or per search node. It flags:
//
//   - fmt.Sprintf/Sprint/Sprintln/Errorf calls (always allocate);
//   - function literals that capture enclosing variables (the closure and
//     its captures escape to the heap when passed to a non-inlined callee);
//   - self-appends to a slice declared in the function without capacity
//     (`var s []T; ... s = append(s, x)` regrows under the loop).
//
// Individual findings are suppressed with //tf:alloc-ok on the line.
var HotpathAlloc = &analysis.Analyzer{
	Name: "hotpath-alloc",
	Doc:  "no avoidable allocations in //tf:hotpath functions",
	// Allocation discipline is a performance concern, not a correctness
	// contract: findings are reported but do not fail CI.
	Severity: analysis.SeverityWarn,
	Run:      runHotpathAlloc,
}

// hotpathEntryPoints are function names checked even without a
// //tf:hotpath annotation: the batch evaluation entry points and the
// recovery replay path are hot by construction (one call covers a whole
// batch of updates), and new implementations of these names must not
// silently opt out of the allocation discipline.
var hotpathEntryPoints = map[string]bool{
	"ApplyBatch":     true,
	"ApplyBatchFunc": true,
	"replayBatch":    true,
}

func runHotpathAlloc(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !ann.FuncAnnotated(fn, "hotpath") && !hotpathEntryPoints[fn.Name.Name] {
				continue
			}
			checkHotFunc(pass, ann, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *analysis.Pass, ann *analysis.Annotations, fn *ast.FuncDecl) {
	sliceInits := collectSliceInits(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkFmtAlloc(pass, ann, fn, e)
		case *ast.FuncLit:
			checkClosureCapture(pass, ann, fn, e)
		case *ast.AssignStmt:
			checkAppendGrowth(pass, ann, fn, e, sliceInits)
		}
		return true
	})
}

func checkFmtAlloc(pass *analysis.Pass, ann *analysis.Annotations, fn *ast.FuncDecl, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee, ok := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" {
		return
	}
	name := callee.Name()
	if name != "Sprintf" && name != "Sprint" && name != "Sprintln" && name != "Errorf" {
		return
	}
	if ann.At(call.Pos(), "alloc-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"fmt.%s allocates on every call inside hot-path function %s; format outside the hot path or annotate //tf:alloc-ok",
		name, fn.Name.Name)
}

// checkClosureCapture flags function literals that capture variables of
// the enclosing function: captured variables (and the closure itself) are
// heap-allocated when the literal escapes into a callee.
func checkClosureCapture(pass *analysis.Pass, ann *analysis.Annotations, fn *ast.FuncDecl, lit *ast.FuncLit) {
	if ann.At(lit.Pos(), "alloc-ok") {
		return
	}
	captured := make(map[string]bool)
	var order []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Pkg.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside fn (params included) but before the
		// literal itself.
		if v.Pos() >= fn.Pos() && v.Pos() < lit.Pos() && !captured[v.Name()] {
			captured[v.Name()] = true
			order = append(order, v.Name())
		}
		return true
	})
	if len(order) == 0 {
		return
	}
	pass.Reportf(lit.Pos(),
		"closure in hot-path function %s captures %s and may escape to the heap on every call; restructure as a plain loop or annotate //tf:alloc-ok",
		fn.Name.Name, strings.Join(order, ", "))
}

// collectSliceInits maps each local slice variable of fn to whether its
// declaration preallocates capacity (make with an explicit length or
// capacity, or any non-empty initializer expression).
func collectSliceInits(pass *analysis.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	prealloc := make(map[*types.Var]bool)
	record := func(id *ast.Ident, init ast.Expr) {
		v, ok := pass.Pkg.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		prealloc[v] = initPreallocates(pass, init)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok.String() != ":=" || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, st.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var init ast.Expr
					if i < len(vs.Values) {
						init = vs.Values[i]
					}
					record(id, init)
				}
			}
		}
		return true
	})
	return prealloc
}

// initPreallocates reports whether init gives the slice capacity up front.
func initPreallocates(pass *analysis.Pass, init ast.Expr) bool {
	switch e := init.(type) {
	case nil:
		return false // var s []T
	case *ast.CompositeLit:
		return len(e.Elts) > 0
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.Pkg.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				if len(e.Args) >= 3 {
					return true
				}
				if len(e.Args) == 2 {
					return !isZeroLiteral(e.Args[1])
				}
				return false
			}
		}
		return true // value produced by a callee, e.g. a preallocated snapshot
	default:
		return true // conversions, received slices, etc.
	}
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// checkAppendGrowth flags s = append(s, ...) when s is a local slice
// declared without capacity in a hot-path function.
func checkAppendGrowth(pass *analysis.Pass, ann *analysis.Annotations, fn *ast.FuncDecl, st *ast.AssignStmt, prealloc map[*types.Var]bool) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return
	}
	funID, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pass.Pkg.TypesInfo.Uses[funID].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	lhsID, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	argID, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	v, ok := pass.Pkg.TypesInfo.Uses[lhsID].(*types.Var)
	if !ok {
		if v, ok = pass.Pkg.TypesInfo.Defs[lhsID].(*types.Var); !ok {
			return
		}
	}
	if pass.Pkg.TypesInfo.Uses[argID] != v && pass.Pkg.TypesInfo.Defs[argID] != v {
		return // not self-append
	}
	wasPrealloc, isLocal := prealloc[v]
	if !isLocal || wasPrealloc {
		return
	}
	if ann.At(st.Pos(), "alloc-ok") {
		return
	}
	pass.Reportf(st.Pos(),
		"append grows %s without preallocation in hot-path function %s; declare it with make(..., 0, n) or annotate //tf:alloc-ok",
		v.Name(), fn.Name.Name)
}
