package analyzers

import (
	"go/ast"
	"go/types"
	"sort"

	"turboflux/internal/analysis"
)

// HotpathMap guards the dense-layout contract of DESIGN.md §16: per-update
// evaluation state is slot-indexed slices, never hash maps — a map probe
// per DCG edge costs a hash plus a pointer chase where the dense layout
// costs one bounds-checked load. In internal/core it reports map index,
// map range and delete() operations in any function reachable (through
// same-package calls) from an eval entry point; in internal/dcg — whose
// maintenance code runs only inside evaluation — and internal/mqo — whose
// registry sits on the multi-query fan-out path — it checks every
// function.
//
// Exemptions: //tf:map-ok on the operation's line suppresses one finding
// (e.g. a map touched only on a gated ablation branch); //tf:map-ok or
// //tf:oracle-ok on the function exempts it wholesale (oracle fixpoints
// and test-support validators are deliberately map-shaped).
var HotpathMap = &analysis.Analyzer{
	Name: "hotpath-map",
	Doc:  "no hash-map operations on eval paths: per-update state is slot-indexed dense slices (DESIGN.md §16)",
	// Like hotpath-alloc, this is a performance discipline, not a
	// correctness contract: findings warn but do not fail CI.
	Severity: analysis.SeverityWarn,
	Run:      runHotpathMap,
}

func runHotpathMap(pass *analysis.Pass) error {
	rel := pass.RelPath()
	if rel != "internal/core" && rel != "internal/dcg" && rel != "internal/mqo" {
		return nil
	}

	decls := map[*types.Func]*declInfo{}
	var order []*types.Func
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &declInfo{decl: fn, file: file}
			collectCalls(pass, fn.Body, info)
			decls[obj] = info
			order = append(order, obj)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return decls[order[i]].decl.Pos() < decls[order[j]].decl.Pos()
	})

	exempt := func(info *declInfo) bool {
		ann := pass.Annotations(info.file)
		return ann.FuncAnnotated(info.decl, "map-ok") ||
			ann.FuncAnnotated(info.decl, "oracle-ok")
	}

	if rel == "internal/dcg" || rel == "internal/mqo" {
		for _, obj := range order {
			info := decls[obj]
			if exempt(info) {
				continue
			}
			reportMapOps(pass, info, "")
		}
		return nil
	}

	// internal/core: BFS the same-package call graph from the eval entry
	// points (shared with eval-readonly), then check the reachable set.
	origin := map[*types.Func]string{}
	var queue []*types.Func
	for _, obj := range order {
		info := decls[obj]
		if evalEntryPoints[obj.Name()] ||
			pass.Annotations(info.file).FuncAnnotated(info.decl, "eval-path") {
			origin[obj] = declName(info.decl)
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		for _, callee := range decls[obj].callees {
			if _, seen := origin[callee]; seen {
				continue
			}
			if decls[callee] == nil {
				continue
			}
			origin[callee] = origin[obj]
			queue = append(queue, callee)
		}
	}
	for _, obj := range order {
		root, reachable := origin[obj]
		if !reachable {
			continue
		}
		info := decls[obj]
		if exempt(info) {
			continue
		}
		reportMapOps(pass, info, root)
	}
	return nil
}

// reportMapOps walks one function body and reports every map operation
// not suppressed by a line-level //tf:map-ok. root names the eval entry
// point the function was reached from; empty for the package-wide rule.
func reportMapOps(pass *analysis.Pass, info *declInfo, root string) {
	ann := pass.Annotations(info.file)
	name := declName(info.decl)
	report := func(n ast.Node, op string) {
		if ann.At(n.Pos(), "map-ok") {
			return
		}
		if root != "" {
			pass.Reportf(n.Pos(),
				"%s in %s, reachable from eval entry point %s: per-update state must be slot-indexed dense slices (DESIGN.md §16); annotate //tf:map-ok if the operation is cold",
				op, name, root)
			return
		}
		pass.Reportf(n.Pos(),
			"%s in %s: this package runs on the eval path and must keep per-update state in slot-indexed dense slices (DESIGN.md §16); annotate //tf:map-ok if the operation is cold",
			op, name)
	}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			if isMapExpr(pass, e.X) {
				report(e, "map index")
			}
		case *ast.RangeStmt:
			if isMapExpr(pass, e.X) {
				report(e, "map range")
			}
		case *ast.CallExpr:
			id, ok := e.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Pkg.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				report(e, "map delete")
			}
		}
		return true
	})
}

// isMapExpr reports whether e's type is a hash map.
func isMapExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.Pkg.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
