package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"turboflux/internal/analysis"
)

// rootEvalMethods are the root-package engine methods that run
// evaluation; calling one while holding a lock couples the lock to the
// whole matching pipeline.
var rootEvalMethods = map[string]bool{
	"Apply":          true,
	"ApplyAll":       true,
	"ApplyBatch":     true,
	"ApplyBatchFunc": true,
	"Insert":         true,
	"Delete":         true,
	"InitialMatches": true,
}

// LockScope bans long or re-entrant work inside sync.Mutex / sync.RWMutex
// critical sections — the lock-held-across-barrier deadlocks the actor
// design exists to avoid. Within a Lock/RLock → first matching Unlock
// span (to the end of the function when the unlock is deferred), it
// reports calls into evaluation (core eval entry points, root-package
// engine methods, //tf:eval-path functions in the same package), I/O (the
// net and os packages, and internal/durable — the WAL), and worker-pool
// dispatch (internal/fanout from outside the package). //tf:lock-ok
// <reason> on the call line exempts deliberate nonblocking control
// operations.
var LockScope = &analysis.Analyzer{
	Name: "lock-scope",
	Doc:  "no eval, I/O or pool dispatch inside mutex critical sections (//tf:lock-ok exempts)",
	Run:  runLockScope,
}

// lockEvent is one mutex Lock/Unlock call in a function body.
type lockEvent struct {
	key      string // rendered mutex expression, e.g. "s.mu"
	pos      token.Pos
	acquire  bool
	deferred bool
}

func runLockScope(pass *analysis.Pass) error {
	rel := pass.RelPath()

	// //tf:eval-path functions declared anywhere in this package are eval
	// roots wherever they are called from.
	evalPath := map[*types.Func]bool{}
	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if ann.FuncAnnotated(fn, "eval-path") {
				if obj, ok := pass.Pkg.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					evalPath[obj] = true
				}
			}
		}
	}

	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockSpans(pass, rel, fn, ann, evalPath)
		}
	}
	return nil
}

func checkLockSpans(pass *analysis.Pass, rel string, fn *ast.FuncDecl,
	ann *analysis.Annotations, evalPath map[*types.Func]bool) {
	var events []lockEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		key, acquire, ok := mutexOp(pass, call)
		if !ok {
			return true
		}
		events = append(events, lockEvent{key: key, pos: call.Pos(), acquire: acquire, deferred: deferred})
		return !deferred
	})
	if len(events) == 0 {
		return
	}

	// For each acquisition, the critical section runs to the first
	// later non-deferred release of the same mutex, or to the end of the
	// function when the release is deferred (or missing). Nested
	// lock/unlock pairs of *other* mutexes don't end the span; a second
	// acquisition of the same mutex between Lock and Unlock would be a
	// deadlock the race detector catches, not this analyzer's business.
	type span struct {
		key      string
		from, to token.Pos
	}
	var spans []span
	for _, ev := range events {
		if !ev.acquire || ev.deferred {
			continue
		}
		end := fn.Body.End()
		for _, rl := range events {
			if !rl.acquire && !rl.deferred && rl.key == ev.key && rl.pos > ev.pos {
				end = rl.pos
				break
			}
		}
		spans = append(spans, span{key: ev.key, from: ev.pos, to: end})
	}
	if len(spans) == 0 {
		return
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		desc, banned := bannedCall(pass, rel, call, evalPath)
		if !banned {
			return true
		}
		for _, sp := range spans {
			if call.Pos() <= sp.from || call.Pos() >= sp.to {
				continue
			}
			if ann.At(call.Pos(), "lock-ok") {
				break
			}
			pass.Reportf(call.Fun.Pos(),
				"%s inside the %s critical section of %s: critical sections must stay short and self-contained — move the call outside the lock or annotate //tf:lock-ok with a reason",
				desc, sp.key, declName(fn))
			break
		}
		return true
	})
}

// mutexOp classifies call as a sync.Mutex / sync.RWMutex operation and
// returns the rendered mutex expression and whether it acquires.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	f, isFunc := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFunc {
		return "", false, false
	}
	sig, isSig := f.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", false, false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

// bannedCall classifies call as eval, I/O or pool dispatch. rel is the
// analyzed package's module-relative path (same-package fan-out code may
// use its own internals under its own lock).
func bannedCall(pass *analysis.Pass, rel string, call *ast.CallExpr, evalPath map[*types.Func]bool) (string, bool) {
	var f *types.Func
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		f, _ = pass.Pkg.TypesInfo.Uses[fun.Sel].(*types.Func)
	case *ast.Ident:
		f, _ = pass.Pkg.TypesInfo.Uses[fun].(*types.Func)
	}
	if f == nil {
		return "", false
	}
	if evalPath[f] {
		return "call to eval-path function " + f.Name(), true
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if named, ok := pass.TypeInPackages(recv, "internal/core"); ok &&
			named.Obj().Name() == "Engine" && evalEntryPoints[f.Name()] {
			return "eval entry point core.Engine." + f.Name(), true
		}
		if named, ok := pass.TypeInPackages(recv, ""); ok &&
			actorOwnedRootTypes[named.Obj().Name()] && rootEvalMethods[f.Name()] {
			return "evaluation via " + named.Obj().Name() + "." + f.Name(), true
		}
	}
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "net", "os":
		return pkg.Path() + " I/O call " + f.Name(), true
	}
	// net.Conn and friends are interfaces from package net even when the
	// dynamic value is something else; methods on net types are caught by
	// the package check above. Module-internal bans:
	switch pkg.Path() {
	case pass.ModulePath + "/internal/durable":
		return "WAL I/O call durable." + f.Name(), true
	case pass.ModulePath + "/internal/fanout":
		if rel != "internal/fanout" {
			return "worker-pool dispatch fanout." + f.Name(), true
		}
	}
	return "", false
}
