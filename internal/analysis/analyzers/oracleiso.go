package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"turboflux/internal/analysis"
)

// oraclePkg and oracleFile locate the DCG oracle: the declarative fixpoint
// of the edge transition model (the paper's Algorithm 1), kept in
// internal/dcg/spec.go. It recomputes the whole DCG from scratch and must
// never leak into the incremental fast path; production code reaches it
// only through explicitly gated slow paths annotated //tf:oracle-ok (the
// NaiveEL ablation), and everything else that wants it belongs in _test.go
// files, which turboflux-vet does not load.
const (
	oraclePkg  = "internal/dcg"
	oracleFile = "spec.go"
)

// OracleIsolation flags references to objects declared in the oracle file
// from production code.
var OracleIsolation = &analysis.Analyzer{
	Name: "oracle-isolation",
	Doc:  "the DCG fixpoint oracle (internal/dcg/spec.go) must stay out of production fast paths",
	Run:  runOracleIsolation,
}

func runOracleIsolation(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.TypesInfo.Uses[id]
			if obj == nil || !isOracleObject(pass, obj) {
				return true
			}
			// References inside the oracle file itself are its own business.
			if filepath.Base(pass.Fset.Position(id.Pos()).Filename) == oracleFile &&
				pass.RelPath() == oraclePkg {
				return true
			}
			if fn := enclosingFuncDecl(file, id.Pos()); fn != nil && ann.FuncAnnotated(fn, "oracle-ok") {
				return true
			}
			if ann.At(id.Pos(), "oracle-ok") {
				return true
			}
			pass.Reportf(id.Pos(),
				"reference to DCG oracle %s (declared in %s/%s) from production code; the fixpoint oracle is for tests and gated ablations only (annotate the enclosing function //tf:oracle-ok if this is a gated slow path)",
				obj.Name(), oraclePkg, oracleFile)
			return true
		})
	}
	return nil
}

// isOracleObject reports whether obj is declared in the oracle file of the
// oracle package.
func isOracleObject(pass *analysis.Pass, obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	if rel := relOf(pass, pkg.Path()); rel != oraclePkg {
		return false
	}
	pos := pass.Fset.Position(obj.Pos())
	return filepath.Base(pos.Filename) == oracleFile
}

func relOf(pass *analysis.Pass, pkgPath string) string {
	if pkgPath == pass.ModulePath {
		return ""
	}
	prefix := pass.ModulePath + "/"
	if len(pkgPath) > len(prefix) && pkgPath[:len(prefix)] == prefix {
		return pkgPath[len(prefix):]
	}
	return pkgPath
}
