package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"turboflux/internal/analysis"
)

// UncheckedError flags call statements that discard an error result.
// Silent error loss in the streaming paths (a failed Apply in a fan-out, a
// swallowed encode error in the harness) corrupts experiment results
// without a trace. Only non-test code is loaded, so tests may stay terse.
// Deliberate discards are annotated //tf:unchecked-ok.
var UncheckedError = &analysis.Analyzer{
	Name: "unchecked-error",
	Doc:  "error results must be checked (or explicitly discarded with //tf:unchecked-ok)",
	Run:  runUncheckedError,
}

// errWhitelist lists callees whose error results are conventionally
// ignored: terminal printing (the error is unactionable) and writers that
// are documented never to fail.
var errWhitelist = []string{
	"fmt.Print",
	"fmt.Fprint",
	"(*strings.Builder).",
	"(*bytes.Buffer).",
	"(*text/tabwriter.Writer).",
}

func runUncheckedError(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(pass, call) || whitelisted(pass, call) {
				return true
			}
			if ann.At(call.Pos(), "unchecked-ok") {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s includes an error that is discarded; handle it or annotate //tf:unchecked-ok",
				calleeName(pass, call))
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's result type is or contains error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func whitelisted(pass *analysis.Pass, call *ast.CallExpr) bool {
	name := calleeName(pass, call)
	for _, w := range errWhitelist {
		if strings.HasPrefix(name, w) {
			return true
		}
	}
	return false
}

// calleeName renders the callee like go/types.Func.FullName:
// "fmt.Println", "(*bytes.Buffer).WriteString", or the expression text for
// dynamic calls.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if f, ok := pass.Pkg.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f.FullName()
		}
		return fun.Sel.Name
	case *ast.Ident:
		if f, ok := pass.Pkg.TypesInfo.Uses[fun].(*types.Func); ok {
			return f.FullName()
		}
		return fun.Name
	default:
		return "call"
	}
}
