package analyzers

import (
	"go/ast"
	"go/types"
	"sort"

	"turboflux/internal/analysis"
)

// actorOwnedRootTypes are the root-package engine types whose access the
// server serializes through its engine-owner goroutine (DESIGN.md §10).
// Their declarations must carry //tf:actor-owned so the contract is
// visible at the definition site; the confinement proof below treats them
// as owned whether or not the directive is present.
var actorOwnedRootTypes = map[string]bool{
	"MultiEngine":        true,
	"Engine":             true,
	"DurableMultiEngine": true,
}

// ActorConfinement proves the engine-owner actor discipline: inside
// internal/server, methods of actor-owned types (the engine surface) may
// only be called from functions reachable — through same-package calls —
// from an //tf:actor-loop root (the actor goroutine). A conn or
// subscriber handler touching the engine directly would race the actor;
// //tf:actor-ok on the call line exempts deliberate pre-start or
// immutable-state access. In the root package it additionally checks that
// every engine type's declaration carries //tf:actor-owned.
var ActorConfinement = &analysis.Analyzer{
	Name: "actor-confinement",
	Doc:  "engine access in internal/server and internal/shard must stay on the actor goroutine (//tf:actor-loop roots)",
	Run:  runActorConfinement,
}

func runActorConfinement(pass *analysis.Pass) error {
	switch pass.RelPath() {
	case "":
		checkOwnedDirectives(pass)
		return nil
	case "internal/server", "internal/shard":
		return checkConfinement(pass)
	default:
		return nil
	}
}

// checkOwnedDirectives reports root-package engine types whose
// declarations are missing the //tf:actor-owned directive.
func checkOwnedDirectives(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !actorOwnedRootTypes[ts.Name.Name] {
					continue
				}
				if ann.DeclAnnotated(gd.Doc, gd.Pos(), "actor-owned") ||
					ann.DeclAnnotated(ts.Doc, ts.Pos(), "actor-owned") {
					continue
				}
				pass.Reportf(ts.Pos(),
					"type %s is actor-owned (the server serializes all access through the engine-owner goroutine) but its declaration lacks //tf:actor-owned",
					ts.Name.Name)
			}
		}
	}
}

// checkConfinement runs the call-graph proof over internal/server.
func checkConfinement(pass *analysis.Pass) error {
	// Owned types visible here: the hardcoded root-package engine types
	// plus any type declared in this package with //tf:actor-owned (the
	// engineHost interface, so interface-mediated calls are caught too).
	ownedLocal := map[*types.TypeName]bool{}
	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !ann.DeclAnnotated(gd.Doc, gd.Pos(), "actor-owned") &&
					!ann.DeclAnnotated(ts.Doc, ts.Pos(), "actor-owned") {
					continue
				}
				if tn, ok := pass.Pkg.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					ownedLocal[tn] = true
				}
			}
		}
	}

	type ownedCall struct {
		call     *ast.CallExpr
		method   string
		typeName string
	}
	type confInfo struct {
		decl    *ast.FuncDecl
		file    *ast.File
		callees []*types.Func
		owned   []ownedCall
	}

	decls := map[*types.Func]*confInfo{}
	var order []*types.Func
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &confInfo{decl: fn, file: file}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					// Plain function calls cannot be owned-type methods;
					// record same-package callees for the BFS.
					if id, ok := call.Fun.(*ast.Ident); ok {
						if f, ok := pass.Pkg.TypesInfo.Uses[id].(*types.Func); ok && f.Pkg() == pass.Pkg.Types {
							info.callees = append(info.callees, f)
						}
					}
					return true
				}
				f, ok := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				if tn, ok := ownedReceiver(pass, f, ownedLocal); ok {
					info.owned = append(info.owned, ownedCall{call: call, method: f.Name(), typeName: tn})
				} else if f.Pkg() == pass.Pkg.Types {
					info.callees = append(info.callees, f)
				}
				return true
			})
			decls[obj] = info
			order = append(order, obj)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return decls[order[i]].decl.Pos() < decls[order[j]].decl.Pos()
	})

	// BFS the same-package call graph from the //tf:actor-loop roots.
	reachable := map[*types.Func]bool{}
	var queue []*types.Func
	for _, obj := range order {
		info := decls[obj]
		if pass.Annotations(info.file).FuncAnnotated(info.decl, "actor-loop") {
			reachable[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		for _, callee := range decls[obj].callees {
			if reachable[callee] || decls[callee] == nil {
				continue
			}
			reachable[callee] = true
			queue = append(queue, callee)
		}
	}

	for _, obj := range order {
		if reachable[obj] {
			continue
		}
		info := decls[obj]
		ann := pass.Annotations(info.file)
		for _, oc := range info.owned {
			if ann.At(oc.call.Pos(), "actor-ok") {
				continue
			}
			pass.Reportf(oc.call.Fun.Pos(),
				"%s.%s called in %s, which no //tf:actor-loop root reaches: only the engine-owner goroutine may touch actor-owned types — route the call through the actor's request channel (//tf:actor-ok exempts pre-start or immutable-state access)",
				oc.typeName, oc.method, declName(info.decl))
		}
	}
	return nil
}

// ownedReceiver reports whether f is a method of an actor-owned type: a
// root-package engine type or a locally //tf:actor-owned-annotated type
// (including interfaces, so calls through the engine-surface interface
// count). It returns the owned type's name.
func ownedReceiver(pass *analysis.Pass, f *types.Func, ownedLocal map[*types.TypeName]bool) (string, bool) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if ownedLocal[named.Obj()] {
		return named.Obj().Name(), true
	}
	if _, inRoot := pass.TypeInPackages(named, ""); inRoot && actorOwnedRootTypes[named.Obj().Name()] {
		return named.Obj().Name(), true
	}
	return "", false
}
