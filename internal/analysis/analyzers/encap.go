package analyzers

import (
	"go/ast"
	"go/types"

	"turboflux/internal/analysis"
)

// protectedPkgs are the packages whose state may only be mutated through
// their own exported API: the DCG (every state change must flow through
// MakeTransition so the explicit-edge counters, out-adjacency and
// per-label totals stay consistent) and the data graph (every mutation
// must flow through InsertEdge/DeleteEdge/EnsureVertex so degree counts
// and label indexes stay consistent).
var protectedPkgs = []string{"internal/dcg", "internal/graph"}

// DCGEncapsulation flags writes to fields of DCG/graph types from outside
// their owning packages. Today Go's export rules already make most such
// writes impossible; the analyzer is defense in depth for the day a field
// is exported for read access — a pointer-mediated write from core would
// silently desynchronize the DCG's counters from its stored edges.
var DCGEncapsulation = &analysis.Analyzer{
	Name: "dcg-encapsulation",
	Doc:  "DCG and graph state may only be mutated through their exported transition APIs",
	Run:  runDCGEncapsulation,
}

func runDCGEncapsulation(pass *analysis.Pass) error {
	rel := pass.RelPath()
	for _, p := range protectedPkgs {
		if rel == p {
			return nil // the owning package maintains its own invariants
		}
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkProtectedWrite(pass, lhs, "assignment to")
				}
			case *ast.IncDecStmt:
				checkProtectedWrite(pass, st.X, st.Tok.String()+" on")
			case *ast.CallExpr:
				if id, ok := st.Fun.(*ast.Ident); ok && len(st.Args) > 0 {
					if b, ok := pass.Pkg.TypesInfo.Uses[id].(*types.Builtin); ok &&
						(b.Name() == "delete" || b.Name() == "clear") {
						checkProtectedWrite(pass, st.Args[0], b.Name()+" on")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkProtectedWrite reports expr when it writes through a field of a
// protected type reached via a pointer (a value-copy field write only
// mutates the local copy and is harmless).
func checkProtectedWrite(pass *analysis.Pass, expr ast.Expr, verb string) {
	sel := baseSelector(expr)
	if sel == nil {
		return
	}
	selection := pass.Pkg.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	recv := selection.Recv()
	named, ok := pass.TypeInPackages(recv, protectedPkgs...)
	if !ok {
		return
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr && !selection.Indirect() {
		return // write to a local value copy
	}
	pass.Reportf(sel.Sel.Pos(),
		"%s field %s.%s outside its owning package; mutate it through the exported transition API",
		verb, named.Obj().Name(), sel.Sel.Name)
}

// baseSelector unwraps parens, indexes and derefs down to the selector
// being written through: d.in[u][v] = s  ->  d.in.
func baseSelector(expr ast.Expr) *ast.SelectorExpr {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			return e
		default:
			return nil
		}
	}
}
