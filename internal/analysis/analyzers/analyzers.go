// Package analyzers holds the turboflux-vet analyzer suite: eleven checks
// that machine-enforce TurboFlux invariants the compiler cannot see —
// seven data-flow invariants (DESIGN.md §8) and four concurrency contracts
// (DESIGN.md §13). See those sections for the invariant each check guards
// and the suppression annotations it honors.
package analyzers

import (
	"go/ast"
	"go/token"

	"turboflux/internal/analysis"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		OracleIsolation,
		DCGEncapsulation,
		DeterministicEmission,
		EvalReadonly,
		HotpathAlloc,
		HotpathMap,
		UncheckedError,
		ActorConfinement,
		GoroutineLifecycle,
		ChannelDiscipline,
		LockScope,
	}
}

// emissionScope lists the module-relative package paths whose code runs on
// match-emission or matching-order paths: the root package fans matches
// out to OnMatch callbacks, core emits them, dcg enumerates the candidates
// they are built from, query computes the matching order, mqo decides
// which queries share one evaluation, and server fans match events out to
// network subscribers.
var emissionScope = map[string]bool{
	"":                true,
	"internal/core":   true,
	"internal/dcg":    true,
	"internal/fanout": true,
	"internal/mqo":    true,
	"internal/query":  true,
	"internal/server": true,
	"internal/shard":  true,
}

// enclosingFuncDecl returns the top-level function declaration containing
// pos in file, or nil.
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos < fn.End() {
			return fn
		}
	}
	return nil
}

// enclosingFunc returns the innermost function body (FuncDecl or FuncLit)
// containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || pos >= n.End() {
			return false
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			best = n
		}
		return true
	})
	return best
}
