package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"turboflux/internal/analysis"
)

// graphMutators are the *graph.Graph methods that change graph state.
// Everything else on Graph is a pure read (the graph keeps no lazy
// caches), which is what makes concurrent evaluation sound.
var graphMutators = map[string]bool{
	"AddVertex":    true,
	"EnsureVertex": true,
	"InsertEdge":   true,
	"DeleteEdge":   true,
}

// evalEntryPoints are the core.Engine methods the multi-query fan-out
// invokes inside the parallel window, i.e. while other engines may be
// reading the same graph concurrently. They are implicit roots of the
// eval-readonly reachability check; //tf:eval-path marks additional
// roots.
var evalEntryPoints = map[string]bool{
	"EvalInsertedEdge":  true,
	"EvalBeforeDelete":  true,
	"InitialMatches":    true,
	"NotifyVertexAdded": true,
}

// EvalReadonly proves the frozen-graph window of the parallel fan-out
// (DESIGN.md §11): during evaluation, engines only read the shared data
// graph. In internal/core it reports any graph-mutator call reachable
// (through same-package calls) from an eval entry point; in
// internal/dcg — whose code runs only inside evaluation — it reports
// every graph-mutator call outright. //tf:graph-write on a function
// exempts coordinator-only code.
var EvalReadonly = &analysis.Analyzer{
	Name: "eval-readonly",
	Doc:  "eval paths must never mutate the shared data graph (frozen-graph window of the parallel fan-out)",
	Run:  runEvalReadonly,
}

// mutCall is one call to a graph mutator.
type mutCall struct {
	pos  token.Pos
	name string // mutator method name
}

// declInfo is one top-level function's slice of the same-package call
// graph.
type declInfo struct {
	decl    *ast.FuncDecl
	file    *ast.File
	callees []*types.Func // same-package calls, in source order
	muts    []mutCall     // graph-mutator calls, in source order
}

func runEvalReadonly(pass *analysis.Pass) error {
	rel := pass.RelPath()
	if rel != "internal/core" && rel != "internal/dcg" {
		return nil
	}

	decls := map[*types.Func]*declInfo{}
	var order []*types.Func // source order, for deterministic reports
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &declInfo{decl: fn, file: file}
			collectCalls(pass, fn.Body, info)
			decls[obj] = info
			order = append(order, obj)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return decls[order[i]].decl.Pos() < decls[order[j]].decl.Pos()
	})

	if rel == "internal/dcg" {
		// DCG maintenance runs only inside evaluation, so every function
		// in the package is on the eval path.
		for _, obj := range order {
			info := decls[obj]
			if pass.Annotations(info.file).FuncAnnotated(info.decl, "graph-write") {
				continue
			}
			for _, mc := range info.muts {
				pass.Reportf(mc.pos,
					"Graph.%s called in %s: DCG maintenance runs inside the frozen-graph eval window and must not mutate the data graph (//tf:graph-write exempts coordinator-only code)",
					mc.name, declName(info.decl))
			}
		}
		return nil
	}

	// internal/core: BFS the same-package call graph from the eval entry
	// points, then report mutator calls in the reachable set.
	origin := map[*types.Func]string{} // reached func -> entry point name
	var queue []*types.Func
	for _, obj := range order {
		info := decls[obj]
		if evalEntryPoints[obj.Name()] ||
			pass.Annotations(info.file).FuncAnnotated(info.decl, "eval-path") {
			origin[obj] = declName(info.decl)
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		for _, callee := range decls[obj].callees {
			if _, seen := origin[callee]; seen {
				continue
			}
			if decls[callee] == nil {
				continue
			}
			origin[callee] = origin[obj]
			queue = append(queue, callee)
		}
	}
	for _, obj := range order {
		root, reachable := origin[obj]
		if !reachable {
			continue
		}
		info := decls[obj]
		if pass.Annotations(info.file).FuncAnnotated(info.decl, "graph-write") {
			continue
		}
		for _, mc := range info.muts {
			pass.Reportf(mc.pos,
				"Graph.%s called in %s, reachable from eval entry point %s: evaluation runs against a frozen graph during the parallel fan-out — move the mutation to the coordinator",
				mc.name, declName(info.decl), root)
		}
	}
	return nil
}

// collectCalls records body's graph-mutator calls and same-package
// callees into info. Function literals are attributed to the enclosing
// declaration: a closure built on an eval path runs on it.
func collectCalls(pass *analysis.Pass, body ast.Node, info *declInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			obj = pass.Pkg.TypesInfo.Uses[fun.Sel]
		case *ast.Ident:
			obj = pass.Pkg.TypesInfo.Uses[fun]
		default:
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		if isGraphMutator(pass, fn) {
			info.muts = append(info.muts, mutCall{pos: call.Fun.Pos(), name: fn.Name()})
			return true
		}
		if fn.Pkg() == pass.Pkg.Types {
			info.callees = append(info.callees, fn)
		}
		return true
	})
}

// isGraphMutator reports whether fn is a state-changing method of
// graph.Graph.
func isGraphMutator(pass *analysis.Pass, fn *types.Func) bool {
	if !graphMutators[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := pass.TypeInPackages(sig.Recv().Type(), "internal/graph")
	return ok && named.Obj().Name() == "Graph"
}

// declName renders "Engine.EvalInsertedEdge" for methods, "New" for
// plain functions.
func declName(fn *ast.FuncDecl) string {
	name := fn.Name.Name
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + name
	}
	return name
}
