package analyzers

import (
	"go/ast"
	"go/types"

	"turboflux/internal/analysis"
)

// DeterministicEmission flags `range` over a map in packages on the
// match-emission and matching-order paths. Go randomizes map iteration
// order per loop, so a map range anywhere between candidate enumeration
// and OnMatch delivery makes match order — and therefore every
// golden-output comparison and replay — nondeterministic. A loop is
// accepted when its results are sorted later in the same function, or when
// it is annotated //tf:unordered-ok (order-independent accumulation such
// as building a set, counting, or finding an error).
var DeterministicEmission = &analysis.Analyzer{
	Name: "deterministic-emission",
	Doc:  "no unordered map iteration on match-emission or matching-order paths",
	Run:  runDeterministicEmission,
}

func runDeterministicEmission(pass *analysis.Pass) error {
	if !emissionScope[pass.RelPath()] {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		ann := pass.Annotations(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.TypesInfo.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if ann.At(rng.Pos(), "unordered-ok") {
				return true
			}
			if sortedAfter(pass, file, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration order is nondeterministic and this package is on the match-emission/matching-order path; sort the collected results or annotate //tf:unordered-ok with a justification")
			return true
		})
	}
	return nil
}

// sortedAfter reports whether the enclosing function calls into package
// sort or slices after the range loop ends — the collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) bool {
	fn := enclosingFunc(file, rng.Pos())
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName); ok {
			p := pn.Imported().Path()
			if p == "sort" || p == "slices" {
				found = true
			}
		}
		return !found
	})
	return found
}
