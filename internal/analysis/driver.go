package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ExpandPatterns resolves go-tool-style package patterns ("./...",
// "./internal/core", ".") relative to dir into package directories:
// directories containing at least one non-test .go file. testdata, vendor,
// hidden and underscore-prefixed directories are skipped, as are nested
// modules (a subdirectory with its own go.mod).
func ExpandPatterns(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(dir, filepath.FromSlash(pat))
		fi, err := os.Stat(base)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q: no such directory", pat)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", base)
			}
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if p != base {
				if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// SelectAnalyzers filters all by comma-separated analyzer-name lists:
// only ("" = no restriction) keeps the named analyzers, skip then removes
// its names. Unknown names are an error, so a typo cannot silently
// disable a check.
func SelectAnalyzers(all []*Analyzer, only, skip string) ([]*Analyzer, error) {
	byName := make(map[string]bool, len(all))
	for _, az := range all {
		byName[az.Name] = true
	}
	parse := func(list, flagName string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !byName[name] {
				return nil, fmt.Errorf("analysis: -%s: unknown analyzer %q", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only, "only")
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip, "skip")
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, az := range all {
		if onlySet != nil && !onlySet[az.Name] {
			continue
		}
		if skipSet[az.Name] {
			continue
		}
		out = append(out, az)
	}
	return out, nil
}

// Run loads every package selected by patterns (resolved relative to dir,
// whose enclosing module becomes the analysis root) and applies each
// analyzer to each package. Diagnostics come back sorted; an error means
// the analysis could not run (unreadable pattern, type-check failure), not
// that findings exist.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, err
		}
		for _, az := range analyzers {
			pass := &Pass{
				Analyzer:   az,
				Fset:       loader.Fset,
				ModulePath: loader.ModulePath,
				Pkg:        pkg,
				report:     func(dg Diagnostic) { diags = append(diags, dg) },
			}
			if err := az.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", az.Name, pkg.Path, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}
