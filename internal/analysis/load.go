package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package (non-test files only —
// turboflux-vet analyzes production code; _test.go files are exactly the
// place where e.g. the spec oracle is allowed).
type Package struct {
	// Path is the import path, e.g. "turboflux/internal/dcg".
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test sources, ordered by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo carries resolved uses, defs, types and selections.
	TypesInfo *types.Info
}

// Loader loads and type-checks packages of one module. Module-local
// imports resolve against the source tree through the shared FileSet, so
// cross-package object positions are real source positions; standard
// library imports are type-checked from GOROOT source (binary export data
// is not shipped with modern toolchains).
type Loader struct {
	Fset       *token.FileSet
	Root       string // module root (directory containing go.mod)
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root, which must
// contain a go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		Root:       abs,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadDir loads the package in the given directory, which must be inside
// the module root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, TypesInfo: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test .go files of dir in file-name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter routes module-local import paths to the loader and
// everything else to the standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
