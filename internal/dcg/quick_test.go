package dcg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turboflux/internal/graph"
)

// TestQuickTransitionSequences drives random state-transition sequences
// through a DCG and checks that every counter invariant holds afterwards
// (Validate recomputes them from the stored maps).
func TestQuickTransitionSequences(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(tr)
		verts := []graph.VertexID{0, 2, 4, 5, 104, graph.NoVertex}
		states := []State{Null, Implicit, Explicit}
		for i := 0; i < int(steps); i++ {
			from := verts[rng.Intn(len(verts))]
			to := verts[rng.Intn(len(verts)-1)] // NoVertex never a target
			u := graph.VertexID(rng.Intn(tr.Q.NumVertices()))
			d.MakeTransition(from, u, to, states[rng.Intn(len(states))])
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransitionCounts: after any transition sequence, the number of
// stored edges equals the number of snapshot entries and never exceeds the
// paper's bound |V(q)|·(|E(g)|+|V(g)|) when transitions are restricted to
// edges that exist in the data graph.
func TestQuickTransitionCounts(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	dataEdges := g.Edges()
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(tr)
		states := []State{Null, Implicit, Explicit}
		for i := 0; i < int(steps); i++ {
			e := dataEdges[rng.Intn(len(dataEdges))]
			u := graph.VertexID(1 + rng.Intn(tr.Q.NumVertices()-1))
			d.MakeTransition(e.From, u, e.To, states[rng.Intn(len(states))])
		}
		snap := d.Snapshot()
		if len(snap) != d.NumEdges() {
			return false
		}
		bound := tr.Q.NumVertices() * (g.NumEdges() + g.NumVertices())
		return d.NumEdges() <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIdempotence: re-applying a transition to the current state is
// always a no-op and never disturbs counters.
func TestQuickIdempotence(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	f := func(u8 uint8, s8 uint8) bool {
		d := New(tr)
		u := graph.VertexID(u8 % 5)
		target := State(s8 % 3)
		d.MakeTransition(2, u, 4, target)
		before := d.NumEdges()
		beforeExpl := d.NumExplicit()
		if d.MakeTransition(2, u, 4, target) {
			return false // must report no change
		}
		return d.NumEdges() == before && d.NumExplicit() == beforeExpl && d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
