package dcg

import (
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// Vertex labels.
const (
	lA graph.Label = iota
	lB
	lC
	lD
)

// Edge labels.
const (
	e1 graph.Label = iota // u0 -> u1
	e2                    // u1 -> u2
	e3                    // u1 -> u3
	e4                    // u3 -> u4
)

// paperQuery mirrors the shape of Figure 1's query at miniature scale:
//
//	u0(A) -e1-> u1(B); u1 -e2-> u2(C); u1 -e3-> u3(C); u3 -e4-> u4(D)
func paperQuery(t *testing.T) *query.Graph {
	t.Helper()
	q := query.NewGraph(5)
	q.SetLabels(0, lA)
	q.SetLabels(1, lB)
	q.SetLabels(2, lC)
	q.SetLabels(3, lC)
	q.SetLabels(4, lD)
	for _, e := range []graph.Edge{
		{From: 0, Label: e1, To: 1},
		{From: 1, Label: e2, To: 2},
		{From: 1, Label: e3, To: 3},
		{From: 3, Label: e4, To: 4},
	} {
		if err := q.AddEdge(e.From, e.Label, e.To); err != nil {
			t.Fatal(err)
		}
	}
	return q
}

// paperData builds the matching miniature of Figure 1's g0:
//
//	v0(A) -e1-> v2(B); v2 -e2-> v4(C), v5(C); v2 -e3-> v104(C)
//
// v104 has no e4 child yet, so the u3 branch is unmatched: every edge on
// the path to v104 and above stays IMPLICIT while the u2 branch is
// EXPLICIT.
func paperData(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddVertex(0, lA))
	must(g.AddVertex(2, lB))
	must(g.AddVertex(4, lC))
	must(g.AddVertex(5, lC))
	must(g.AddVertex(104, lC))
	g.InsertEdge(0, e1, 2)
	g.InsertEdge(2, e2, 4)
	g.InsertEdge(2, e2, 5)
	g.InsertEdge(2, e3, 104)
	return g
}

func paperTree(t *testing.T, g *graph.Graph) *query.Tree {
	t.Helper()
	tr, err := query.TransformToTree(paperQuery(t), 0, g)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMakeTransitionCounters(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	d := New(tr)

	if s := d.GetState(0, 1, 2); s != Null {
		t.Fatalf("initial state = %v, want N", s)
	}
	if !d.MakeTransition(0, 1, 2, Implicit) {
		t.Fatal("N->I must report change")
	}
	if d.MakeTransition(0, 1, 2, Implicit) {
		t.Fatal("I->I must report no change")
	}
	if d.NumEdges() != 1 || d.NumExplicit() != 0 {
		t.Fatalf("counts after I: edges=%d expl=%d", d.NumEdges(), d.NumExplicit())
	}
	if !d.MakeTransition(0, 1, 2, Explicit) {
		t.Fatal("I->E must report change")
	}
	if d.NumEdges() != 1 || d.NumExplicit() != 1 {
		t.Fatalf("counts after E: edges=%d expl=%d", d.NumEdges(), d.NumExplicit())
	}
	if d.ExplicitOut(0, 1) != 1 {
		t.Fatalf("ExplicitOut(0,1) = %d, want 1", d.ExplicitOut(0, 1))
	}
	if d.ExplicitCount(1) != 1 {
		t.Fatalf("ExplicitCount(1) = %d, want 1", d.ExplicitCount(1))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// E -> I (Transition 4).
	if !d.MakeTransition(0, 1, 2, Implicit) {
		t.Fatal("E->I must report change")
	}
	if d.ExplicitOut(0, 1) != 0 || d.NumExplicit() != 0 || d.NumEdges() != 1 {
		t.Fatal("E->I counter maintenance wrong")
	}
	// I -> N (Transition 5).
	if !d.MakeTransition(0, 1, 2, Null) {
		t.Fatal("I->N must report change")
	}
	if d.NumEdges() != 0 || d.InDegree(2, 1) != 0 {
		t.Fatal("I->N did not remove edge")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRootEdges(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	d := New(tr)
	d.MakeTransition(graph.NoVertex, 0, 0, Implicit)
	if d.InDegree(0, 0) != 1 {
		t.Fatal("root edge not stored")
	}
	if got := d.RootCandidates(false); len(got) != 1 || got[0] != 0 {
		t.Fatalf("RootCandidates = %v", got)
	}
	if got := d.RootCandidates(true); len(got) != 0 {
		t.Fatalf("explicit RootCandidates = %v, want empty", got)
	}
	d.MakeTransition(graph.NoVertex, 0, 0, Explicit)
	if got := d.RootCandidates(true); len(got) != 1 {
		t.Fatalf("explicit RootCandidates after E = %v", got)
	}
	// graph.NoVertex parent must not create an out counter.
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchAllChildren(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	d := New(tr)
	// u1's children are u2 and u3. Leaf u4 has none.
	if !d.MatchAllChildren(2, 4) {
		t.Fatal("leaf query vertex must always match-all-children")
	}
	if d.MatchAllChildren(2, 1) {
		t.Fatal("u1 with no explicit children must fail")
	}
	d.MakeTransition(2, 2, 4, Explicit) // v2 -u2-> v4 explicit
	if d.MatchAllChildren(2, 1) {
		t.Fatal("u1 with only u2 matched must fail")
	}
	d.MakeTransition(2, 3, 104, Explicit) // v2 -u3-> v104 explicit
	if !d.MatchAllChildren(2, 1) {
		t.Fatal("u1 with both children matched must succeed")
	}
}

func TestInLabelsAndParents(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	d := New(tr)
	d.MakeTransition(0, 1, 2, Implicit)
	d.MakeTransition(5, 1, 2, Explicit) // hypothetical second parent
	ls := d.InLabels(2)
	if len(ls) != 1 || ls[0] != 1 {
		t.Fatalf("InLabels = %v", ls)
	}
	if !d.HasInLabel(2, 1) || d.HasInLabel(2, 2) {
		t.Fatal("HasInLabel wrong")
	}
	all := d.InParents(2, 1, false)
	if len(all) != 2 {
		t.Fatalf("InParents all = %v", all)
	}
	expl := d.InParents(2, 1, true)
	if len(expl) != 1 || expl[0] != 5 {
		t.Fatalf("InParents explicit = %v", expl)
	}
	n := 0
	d.ForEachInEdge(2, 1, func(p graph.VertexID, s State) { n++ })
	if n != 2 {
		t.Fatalf("ForEachInEdge visited %d, want 2", n)
	}
}

func TestExplicitChildrenEnumeration(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	d := New(tr)
	d.MakeTransition(2, 2, 4, Explicit)
	d.MakeTransition(2, 2, 5, Implicit)
	var got []graph.VertexID
	d.ExplicitChildren(2, 2, func(v graph.VertexID) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("ExplicitChildren = %v, want [4]", got)
	}
	// Early stop.
	d.MakeTransition(2, 2, 5, Explicit)
	n := 0
	d.ExplicitChildren(2, 2, func(graph.VertexID) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop enumeration visited %d, want 1", n)
	}
	// No explicit out: must not even scan.
	d.ExplicitChildren(0, 2, func(graph.VertexID) bool {
		t.Fatal("vertex without explicit out must enumerate nothing")
		return true
	})
	defer func() {
		if recover() == nil {
			t.Fatal("ExplicitChildren on root label must panic")
		}
	}()
	d.ExplicitChildren(0, tr.Root, func(graph.VertexID) bool { return true })
}

func TestSizeAccounting(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	d := New(tr)
	d.MakeTransition(0, 1, 2, Implicit)
	d.MakeTransition(2, 2, 4, Explicit)
	if d.SizeBytes() != 2*EdgeBytes {
		t.Fatalf("SizeBytes = %d, want %d", d.SizeBytes(), 2*EdgeBytes)
	}
	snap := d.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot has %d edges, want 2", len(snap))
	}
	if d.SnapshotMap()[EdgeKey{From: 0, QV: 1, To: 2}] != Implicit {
		t.Fatal("snapshot state wrong")
	}
	// DCG size bound: edges <= |V(q)| * (|E(g)| + |V(g)|) — root edges count
	// against vertices. With 4 data edges and 5 query vertices the bound is
	// comfortable; check the paper's bound form on the stored count.
	if d.NumEdges() > tr.Q.NumVertices()*(g.NumEdges()+g.NumVertices()) {
		t.Fatal("DCG exceeded storage bound")
	}
}

func TestStateString(t *testing.T) {
	if Null.String() != "N" || Implicit.String() != "I" || Explicit.String() != "E" {
		t.Fatal("State.String wrong")
	}
	if State(9).String() != "?" {
		t.Fatal("unknown state must render ?")
	}
	k := EdgeKey{From: graph.NoVertex, QV: 0, To: 3}
	if k.String() != "(v*, u0, v3)" {
		t.Fatalf("EdgeKey root string = %q", k.String())
	}
	k2 := EdgeKey{From: 1, QV: 2, To: 3}
	if k2.String() != "(v1, u2, v3)" {
		t.Fatalf("EdgeKey string = %q", k2.String())
	}
}
