package dcg

import (
	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// ComputeSpec computes the DCG states for data graph g and query tree t
// directly from Definitions 4 and 5 — the declarative fixpoint the edge
// transition model (Transitions 0–5) must converge to. It is the oracle
// against which the incrementally maintained DCG is compared in property
// tests, and the reference implementation of the paper's Algorithm 1 (EL).
//
// Presence (implicit-or-explicit) is computed top-down in query-tree
// preorder: an edge (v, u', v') is present iff (v, v') matches the tree
// edge of u' and v has a present incoming edge labeled P(u'). Explicitness
// is computed bottom-up in reverse preorder: a present edge is explicit iff
// for every child u” of u', v' has a present-and-explicit outgoing edge
// labeled u”. Both passes are single-pass because presence of label u'
// depends only on strictly shallower labels and explicitness only on
// strictly deeper ones.
//
//tf:oracle-ok declarative fixpoint oracle, never on the eval path
func ComputeSpec(g *graph.Graph, t *query.Tree) map[EdgeKey]State {
	q := t.Q
	present := make(map[EdgeKey]bool)
	// candidates[u] = data vertices with >=1 present incoming edge labeled u.
	candidates := make([]map[graph.VertexID]bool, q.NumVertices())
	for u := range candidates {
		candidates[u] = make(map[graph.VertexID]bool)
	}

	pre := t.VerticesPreorder()

	// Top-down pass: presence.
	rootLabels := q.Labels(t.Root)
	if len(rootLabels) == 0 {
		g.ForEachVertex(func(v graph.VertexID) {
			present[EdgeKey{From: graph.NoVertex, QV: t.Root, To: v}] = true
			candidates[t.Root][v] = true
		})
	} else {
		for _, v := range g.VerticesWithLabel(rootLabels[0]) {
			if g.HasAllLabels(v, rootLabels) {
				present[EdgeKey{From: graph.NoVertex, QV: t.Root, To: v}] = true
				candidates[t.Root][v] = true
			}
		}
	}
	for _, u := range pre[1:] {
		te := t.ParentEdge[u]
		uLabels := q.Labels(u)
		//tf:unordered-ok the presence fixpoint is a set; order-free
		for v := range candidates[te.Parent] {
			var nbrs []graph.VertexID
			if te.Forward {
				nbrs = g.OutNeighbors(v, te.Label)
			} else {
				nbrs = g.InNeighbors(v, te.Label)
			}
			for _, v2 := range nbrs {
				if !g.HasAllLabels(v2, uLabels) {
					continue
				}
				present[EdgeKey{From: v, QV: u, To: v2}] = true
				candidates[u][v2] = true
			}
		}
	}

	// Bottom-up pass: explicitness. explicitAt[u][v'] = v' has >=1 explicit
	// outgoing edge labeled u.
	explicitAt := make([]map[graph.VertexID]bool, q.NumVertices())
	for u := range explicitAt {
		explicitAt[u] = make(map[graph.VertexID]bool)
	}
	states := make(map[EdgeKey]State, len(present))
	for i := len(pre) - 1; i >= 0; i-- {
		u := pre[i]
		//tf:unordered-ok explicitness per label depends only on deeper labels
		for k := range present {
			if k.QV != u {
				continue
			}
			expl := true
			for _, c := range t.Children[u] {
				if !explicitAt[c][k.To] {
					expl = false
					break
				}
			}
			if expl {
				states[k] = Explicit
				if k.From != graph.NoVertex {
					explicitAt[u][k.From] = true
				}
			} else {
				states[k] = Implicit
			}
		}
	}
	return states
}
