package dcg

import (
	"testing"

	"turboflux/internal/graph"
)

// TestSpecPaperExample hand-checks ComputeSpec against the miniature
// Figure 1 scenario: the u2 branch of the data is fully matched (explicit)
// while the u3 branch lacks its u4 leaf, so everything on the path through
// u3 — and therefore the u1 edge and the root edge — stays implicit.
func TestSpecPaperExample(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	states := ComputeSpec(g, tr)

	want := map[EdgeKey]State{
		{From: graph.NoVertex, QV: 0, To: 0}: Implicit, // (v*, u0, v0)
		{From: 0, QV: 1, To: 2}:              Implicit, // (v0, u1, v2)
		{From: 2, QV: 2, To: 4}:              Explicit, // (v2, u2, v4)
		{From: 2, QV: 2, To: 5}:              Explicit, // (v2, u2, v5)
		{From: 2, QV: 3, To: 104}:            Implicit, // (v2, u3, v104): no u4 child
	}
	if len(states) != len(want) {
		t.Fatalf("spec has %d edges, want %d: %v", len(states), len(want), states)
	}
	for k, s := range want {
		if states[k] != s {
			t.Errorf("spec[%v] = %v, want %v", k, states[k], s)
		}
	}
}

// TestSpecAfterCompletingEdge completes the missing (v104, e4, v414) edge;
// all states must flip to explicit, mirroring Figure 4f–4h.
func TestSpecAfterCompletingEdge(t *testing.T) {
	g := paperData(t)
	if err := g.AddVertex(414, lD); err != nil {
		t.Fatal(err)
	}
	g.InsertEdge(104, e4, 414)
	tr := paperTree(t, g)
	states := ComputeSpec(g, tr)
	if len(states) != 6 {
		t.Fatalf("spec has %d edges, want 6", len(states))
	}
	for k, s := range states {
		if s != Explicit {
			t.Errorf("spec[%v] = %v, want E", k, s)
		}
	}
}

// TestSpecDisconnectedBranch: a data vertex matching u1's labels but not
// reachable from any u0-candidate must produce no DCG edges at all.
func TestSpecDisconnectedBranch(t *testing.T) {
	g := paperData(t)
	if err := g.AddVertex(50, lB); err != nil { // B vertex with no A parent
		t.Fatal(err)
	}
	if err := g.AddVertex(51, lC); err != nil {
		t.Fatal(err)
	}
	g.InsertEdge(50, e2, 51)
	tr := paperTree(t, g)
	states := ComputeSpec(g, tr)
	for k := range states {
		if k.To == 51 || k.To == 50 {
			t.Errorf("unreachable branch produced edge %v", k)
		}
	}
}

// TestSpecUnlabeledQuery: with no vertex labels anywhere (the Netflow
// regime), every vertex is a root candidate.
func TestSpecUnlabeledQuery(t *testing.T) {
	g := graph.New()
	g.InsertEdge(0, 7, 1)
	g.InsertEdge(1, 7, 2)
	q := newPathQuery(t, 2, 7) // u0 -7-> u1 -7-> u2, all unlabeled
	tr := mustTree(t, q, 0, g)
	states := ComputeSpec(g, tr)
	// Root candidates: v0, v1, v2 (3 root edges). Depth-1: (0,u1,1), (1,u1,2).
	// Depth-2: (1,u2,2) — only v1 is a u1-candidate with an outgoing 7-edge.
	roots := 0
	for k := range states {
		if k.From == graph.NoVertex {
			roots++
		}
	}
	if roots != 3 {
		t.Fatalf("root edges = %d, want 3", roots)
	}
	if states[EdgeKey{From: 1, QV: 2, To: 2}] != Explicit {
		t.Fatal("(v1,u2,v2) must be explicit")
	}
	if states[EdgeKey{From: 0, QV: 1, To: 1}] != Explicit {
		t.Fatal("(v0,u1,v1) must be explicit: v1 has explicit u2 child")
	}
	if states[EdgeKey{From: 1, QV: 1, To: 2}] != Implicit {
		t.Fatal("(v1,u1,v2) must be implicit: v2 has no u2 child")
	}
}
