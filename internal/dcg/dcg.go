// Package dcg implements the data-centric graph (DCG), TurboFlux's compact
// representation of intermediate results (Section 3 of the paper).
//
// The DCG conceptually is a complete multigraph over the data vertices in
// which every ordered pair (v, v') has one edge per non-root query vertex
// u', labeled u', whose state is NULL, IMPLICIT or EXPLICIT:
//
//   - an IMPLICIT edge (v, u', v') records that some data path v_s→v.v'
//     matches the query-tree path u_s→P(u').u', but some subtree of u' is
//     not yet matched under v' (Definition 5);
//   - an EXPLICIT edge additionally has every subtree of u' matched under
//     v' (Definition 4).
//
// NULL edges are never stored. Edges whose label is the root u_s emanate
// from the artificial source v*_s, represented here by graph.NoVertex.
//
// The concrete layout follows Section 3.1: each participating data vertex
// owns its incoming DCG edges grouped by query-vertex label, plus a
// per-label count of outgoing EXPLICIT edges — the paper's bitmap — so that
// MatchAllChildren is O(|Children(u)|) integer tests.
package dcg

import (
	"fmt"
	"slices"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// State is the state of a DCG edge.
type State uint8

const (
	// Null means the edge is not present in the DCG.
	Null State = iota
	// Implicit marks a candidate whose subtrees are not all matched yet.
	Implicit
	// Explicit marks a candidate whose subtrees are all matched.
	Explicit
)

// String returns N/I/E, the abbreviations used in the paper's figures.
func (s State) String() string {
	switch s {
	case Null:
		return "N"
	case Implicit:
		return "I"
	case Explicit:
		return "E"
	default:
		return "?"
	}
}

// EdgeBytes is the accounting cost of one stored DCG edge, used for the
// intermediate-result-size comparisons (Figures 6b, 7b, 8b, 9b): parent
// vertex ID, child vertex ID, query-vertex label and state, plus index
// overhead.
const EdgeBytes = 16

// outAdj is a set of explicit children supporting O(1) add/remove and
// allocation-free slice iteration (Go map iteration pays a per-iteration
// randomization cost that dominates small hot loops).
type outAdj struct {
	list []graph.VertexID
	pos  map[graph.VertexID]int32
}

//tf:hotpath
func (a *outAdj) add(v graph.VertexID) {
	if a.pos == nil {
		a.pos = make(map[graph.VertexID]int32)
	}
	a.pos[v] = int32(len(a.list))
	a.list = append(a.list, v)
}

//tf:hotpath
func (a *outAdj) remove(v graph.VertexID) {
	i, ok := a.pos[v]
	if !ok {
		return
	}
	last := int32(len(a.list) - 1)
	moved := a.list[last]
	a.list[i] = moved
	a.pos[moved] = i
	a.list = a.list[:last]
	delete(a.pos, v)
}

// node holds the per-data-vertex DCG storage.
type node struct {
	// in[u'] maps parent data vertex -> state of DCG edge (parent, u', v).
	// For the root label u_s the parent is graph.NoVertex (v*_s).
	in []map[graph.VertexID]State
	// out[u'] holds this vertex's EXPLICIT children labeled u', for the
	// forward enumeration of SubgraphSearch (candidates come straight from
	// the DCG, never by filtering data-graph adjacency).
	out []outAdj
	// outExplicit[u'] counts outgoing EXPLICIT edges of this vertex labeled
	// u'. outExplicit[u'] > 0 is the paper's bitmap bit.
	outExplicit []int32
}

// DCG is the data-centric graph for one query tree. The zero value is not
// usable; call New.
type DCG struct {
	tree  *query.Tree
	nq    int
	nodes map[graph.VertexID]*node

	numEdges    int     // stored (implicit + explicit) edges
	numExplicit int     // stored explicit edges
	explByLabel []int64 // explicit-edge count per query-vertex label
}

// New returns an empty DCG for query tree t.
func New(t *query.Tree) *DCG {
	return &DCG{
		tree:        t,
		nq:          t.Q.NumVertices(),
		nodes:       make(map[graph.VertexID]*node),
		explByLabel: make([]int64, t.Q.NumVertices()),
	}
}

// Tree returns the query tree this DCG indexes.
func (d *DCG) Tree() *query.Tree { return d.tree }

func (d *DCG) getNode(v graph.VertexID) *node {
	n := d.nodes[v]
	if n == nil {
		n = &node{
			in:          make([]map[graph.VertexID]State, d.nq),
			out:         make([]outAdj, d.nq),
			outExplicit: make([]int32, d.nq),
		}
		d.nodes[v] = n
	}
	return n
}

// GetState returns the state of DCG edge (v, u, v2). Use graph.NoVertex as
// v for root-labeled edges (v*_s, u_s, v2).
//
//tf:hotpath
func (d *DCG) GetState(v graph.VertexID, u graph.VertexID, v2 graph.VertexID) State {
	n := d.nodes[v2]
	if n == nil || n.in[u] == nil {
		return Null
	}
	return n.in[u][v]
}

// MakeTransition sets the state of DCG edge (v, u, v2) to target and
// reports whether the stored state actually changed. Counts (per-vertex
// explicit-out, per-label explicit totals, total edges) are maintained
// here so every engine path stays consistent.
//
//tf:hotpath
func (d *DCG) MakeTransition(v graph.VertexID, u graph.VertexID, v2 graph.VertexID, target State) bool {
	cur := d.GetState(v, u, v2)
	if cur == target {
		return false
	}
	// Update storage.
	if target == Null {
		n := d.nodes[v2]
		delete(n.in[u], v)
	} else {
		n := d.getNode(v2)
		if n.in[u] == nil {
			n.in[u] = make(map[graph.VertexID]State)
		}
		n.in[u][v] = target
	}
	// Update counters.
	if cur == Null {
		d.numEdges++
	}
	if target == Null {
		d.numEdges--
	}
	if cur == Explicit {
		d.numExplicit--
		d.explByLabel[u]--
		if v != graph.NoVertex {
			pn := d.getNode(v)
			pn.outExplicit[u]--
			pn.out[u].remove(v2)
		}
	}
	if target == Explicit {
		d.numExplicit++
		d.explByLabel[u]++
		if v != graph.NoVertex {
			pn := d.getNode(v)
			pn.outExplicit[u]++
			pn.out[u].add(v2)
		}
	}
	return true
}

// InDegree returns the number of stored (implicit or explicit) incoming
// edges of v2 labeled u — the paper's |GetImplAndExplEdges(v2, u, in)|.
//
//tf:hotpath
func (d *DCG) InDegree(v2 graph.VertexID, u graph.VertexID) int {
	n := d.nodes[v2]
	if n == nil || n.in[u] == nil {
		return 0
	}
	return len(n.in[u])
}

// ForEachInEdge calls fn for every stored incoming edge (parent, u, v2)
// in unspecified order — callers must not derive emission order from it.
// fn must not mutate the DCG for edges labeled u of v2; engines that need
// to mutate during iteration snapshot the parents first (see InParents).
func (d *DCG) ForEachInEdge(v2 graph.VertexID, u graph.VertexID, fn func(parent graph.VertexID, s State)) {
	n := d.nodes[v2]
	if n == nil || n.in[u] == nil {
		return
	}
	//tf:unordered-ok documented order-free; ordered callers use InParents
	for p, s := range n.in[u] {
		fn(p, s)
	}
}

// InParents returns a snapshot of the parents of v2's stored incoming
// edges labeled u, optionally restricted to explicit edges, in ascending
// vertex order. The upward traversals climb these snapshots on the way to
// reporting matches, so their order must not inherit Go's randomized map
// iteration — sorting here is what makes match emission reproducible for
// a given update stream.
func (d *DCG) InParents(v2 graph.VertexID, u graph.VertexID, explicitOnly bool) []graph.VertexID {
	n := d.nodes[v2]
	if n == nil || n.in[u] == nil {
		return nil
	}
	out := make([]graph.VertexID, 0, len(n.in[u]))
	for p, s := range n.in[u] {
		if explicitOnly && s != Explicit {
			continue
		}
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// HasInLabel reports whether v has at least one stored incoming edge
// labeled u (the "u ∈ U" test in Algorithms 5 and 8).
//
//tf:hotpath
func (d *DCG) HasInLabel(v graph.VertexID, u graph.VertexID) bool {
	return d.InDegree(v, u) > 0
}

// InLabels returns the set U of query vertices u such that v has at least
// one stored incoming edge labeled u.
func (d *DCG) InLabels(v graph.VertexID) []graph.VertexID {
	n := d.nodes[v]
	if n == nil {
		return nil
	}
	var out []graph.VertexID
	for u, m := range n.in {
		if len(m) > 0 {
			out = append(out, graph.VertexID(u))
		}
	}
	return out
}

// ExplicitOut returns the number of outgoing EXPLICIT edges of v labeled u.
//
//tf:hotpath
func (d *DCG) ExplicitOut(v graph.VertexID, u graph.VertexID) int32 {
	n := d.nodes[v]
	if n == nil {
		return 0
	}
	return n.outExplicit[u]
}

// MatchAllChildren reports whether, for every child u' of u in the query
// tree, v has an outgoing EXPLICIT edge labeled u' (Algorithm 4). O(1) per
// child via the explicit-out counters.
//
//tf:hotpath
func (d *DCG) MatchAllChildren(v graph.VertexID, u graph.VertexID) bool {
	n := d.nodes[v]
	children := d.tree.Children[u]
	if n == nil {
		return len(children) == 0
	}
	for _, c := range children {
		if n.outExplicit[c] == 0 {
			return false
		}
	}
	return true
}

// ExplicitChildren enumerates the explicit out-neighbors of v labeled u:
// the data vertices v' with GetState(v, u, v') == Explicit. This is the
// candidate enumeration used by SubgraphSearch (Algorithm 7, Line 15).
// Candidates come straight from the DCG's out-adjacency — never by
// filtering data-graph neighbors — which keeps the search cost
// proportional to the number of candidates, not the vertex degree.
//
//tf:hotpath
func (d *DCG) ExplicitChildren(v graph.VertexID, u graph.VertexID, fn func(v2 graph.VertexID) bool) {
	if u == d.tree.Root {
		// Root candidates come from the artificial source; enumerate stored
		// root edges instead (only valid when v == graph.NoVertex).
		panic("dcg: ExplicitChildren must not be called for the root label")
	}
	n := d.nodes[v]
	if n == nil {
		return
	}
	for _, v2 := range n.out[u].list {
		if !fn(v2) {
			return
		}
	}
}

// ExplicitChildrenList returns the explicit out-neighbors of v labeled u
// as a slice owned by the DCG: callers must not mutate it and must not
// hold it across transitions. Used by the worst-case-optimal search to
// pick the smallest candidate list before intersecting.
//
//tf:hotpath
func (d *DCG) ExplicitChildrenList(v graph.VertexID, u graph.VertexID) []graph.VertexID {
	n := d.nodes[v]
	if n == nil {
		return nil
	}
	return n.out[u].list
}

// RootCandidates returns the data vertices v_s whose root edge
// (v*_s, u_s, v_s) is stored, filtered to explicit ones when explicitOnly,
// in ascending vertex order. SubgraphSearch seeds from this slice, so a
// deterministic order here is a precondition for deterministic match
// emission.
func (d *DCG) RootCandidates(explicitOnly bool) []graph.VertexID {
	var out []graph.VertexID
	us := d.tree.Root
	for v, n := range d.nodes {
		if n.in[us] == nil {
			continue
		}
		if s, ok := n.in[us][graph.NoVertex]; ok && (!explicitOnly || s == Explicit) {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// NumEdges returns the number of stored (implicit + explicit) DCG edges,
// including root edges from v*_s.
func (d *DCG) NumEdges() int { return d.numEdges }

// NumExplicit returns the number of stored EXPLICIT edges.
func (d *DCG) NumExplicit() int { return d.numExplicit }

// ExplicitCount returns the number of EXPLICIT edges labeled u — the exact
// count of explicit data paths ending at a u-candidate, used to drive the
// matching order (Section 4.1).
func (d *DCG) ExplicitCount(u graph.VertexID) int64 { return d.explByLabel[u] }

// SizeBytes returns the accounting size of the DCG for intermediate-result
// comparisons: stored edges times EdgeBytes.
func (d *DCG) SizeBytes() int64 { return int64(d.numEdges) * EdgeBytes }

// Validate checks internal consistency: per-label explicit counts,
// per-vertex explicit-out counters and the total counters must agree with
// the stored maps. It returns the first inconsistency found. Tests and the
// failure-injection suite call this after every update.
func (d *DCG) Validate() error {
	edges, explicit := 0, 0
	explByLabel := make([]int64, d.nq)
	outExpl := make(map[graph.VertexID][]int32)
	//tf:unordered-ok recounting into totals is order-independent
	for v2, n := range d.nodes {
		for u, m := range n.in {
			//tf:unordered-ok recounting into totals is order-independent
			for p, s := range m {
				if s == Null {
					return fmt.Errorf("dcg: stored NULL edge (%d,%d,%d)", p, u, v2)
				}
				edges++
				if s == Explicit {
					explicit++
					explByLabel[u]++
					if p != graph.NoVertex {
						oe := outExpl[p]
						if oe == nil {
							oe = make([]int32, d.nq)
							outExpl[p] = oe
						}
						oe[u]++
					}
				}
			}
		}
	}
	if edges != d.numEdges {
		return fmt.Errorf("dcg: numEdges=%d, stored=%d", d.numEdges, edges)
	}
	if explicit != d.numExplicit {
		return fmt.Errorf("dcg: numExplicit=%d, stored=%d", d.numExplicit, explicit)
	}
	for u := 0; u < d.nq; u++ {
		if explByLabel[u] != d.explByLabel[u] {
			return fmt.Errorf("dcg: explByLabel[%d]=%d, stored=%d", u, d.explByLabel[u], explByLabel[u])
		}
	}
	//tf:unordered-ok any stored inconsistency is reported, order-free
	for v, n := range d.nodes {
		want := outExpl[v]
		for u := 0; u < d.nq; u++ {
			w := int32(0)
			if want != nil {
				w = want[u]
			}
			if n.outExplicit[u] != w {
				return fmt.Errorf("dcg: outExplicit[%d][%d]=%d, stored=%d", v, u, n.outExplicit[u], w)
			}
			if int32(len(n.out[u].list)) != w {
				return fmt.Errorf("dcg: out-adjacency[%d][%d] has %d entries, want %d", v, u, len(n.out[u].list), w)
			}
			for i, v2 := range n.out[u].list {
				if d.GetState(v, graph.VertexID(u), v2) != Explicit {
					return fmt.Errorf("dcg: out-adjacency (%d,%d,%d) not explicit", v, u, v2)
				}
				if n.out[u].pos[v2] != int32(i) {
					return fmt.Errorf("dcg: out-adjacency position index broken at (%d,%d,%d)", v, u, v2)
				}
			}
		}
	}
	return nil
}

// Snapshot returns all stored edges as a map from (parent, label, child) to
// state. Used by the oracle-equivalence tests.
func (d *DCG) Snapshot() map[EdgeKey]State {
	out := make(map[EdgeKey]State, d.numEdges)
	//tf:unordered-ok building a map result is order-independent
	for v2, n := range d.nodes {
		for u, m := range n.in {
			//tf:unordered-ok building a map result is order-independent
			for p, s := range m {
				out[EdgeKey{From: p, QV: graph.VertexID(u), To: v2}] = s
			}
		}
	}
	return out
}

// EdgeKey identifies one DCG edge: (From, QV, To) where QV is the
// query-vertex label and From is graph.NoVertex for root edges.
type EdgeKey struct {
	From graph.VertexID
	QV   graph.VertexID
	To   graph.VertexID
}

// String formats the key like the paper's figures, e.g. "(v2, u3, v104)".
func (k EdgeKey) String() string {
	if k.From == graph.NoVertex {
		return fmt.Sprintf("(v*, u%d, v%d)", k.QV, k.To)
	}
	return fmt.Sprintf("(v%d, u%d, v%d)", k.From, k.QV, k.To)
}
