// Package dcg implements the data-centric graph (DCG), TurboFlux's compact
// representation of intermediate results (Section 3 of the paper).
//
// The DCG conceptually is a complete multigraph over the data vertices in
// which every ordered pair (v, v') has one edge per non-root query vertex
// u', labeled u', whose state is NULL, IMPLICIT or EXPLICIT:
//
//   - an IMPLICIT edge (v, u', v') records that some data path v_s→v.v'
//     matches the query-tree path u_s→P(u').u', but some subtree of u' is
//     not yet matched under v' (Definition 5);
//   - an EXPLICIT edge additionally has every subtree of u' matched under
//     v' (Definition 4).
//
// NULL edges are never stored. Edges whose label is the root u_s emanate
// from the artificial source v*_s, represented here by graph.NoVertex.
//
// Data layout (DESIGN.md §16): the DCG is a dense slot-interned structure
// with no hash maps anywhere on the update/eval path, mirroring the flat
// vector + edge-index layout of the reference C++ implementations. A
// vertex interner maps each participating data vertex to a compact slot;
// deleted slots are recycled through a free list with an epoch stamp so
// future cross-query caches can detect stale slot references. Each slot
// owns, per query-vertex label u':
//
//   - a sorted in-edge list (parent, state) searched by binary search —
//     ascending parent order also makes every parent enumeration
//     deterministic without per-call sorting;
//   - a sorted explicit-children array (the candidate list SubgraphSearch
//     enumerates), maintained by binary-search insert/remove. Keeping it
//     sorted makes candidate enumeration a pure function of the DCG
//     *state*, independent of the insertion/deletion history that
//     produced it — the property the multi-query layer relies on when
//     several queries share one DCG and each must reproduce, byte for
//     byte, the transcript a private DCG (with a different history)
//     would have produced (DESIGN.md §17).
//
// The per-label explicit-out count — the paper's bitmap bit — is simply
// the length of the explicit-children array, so MatchAllChildren stays
// O(|Children(u)|) integer tests.
package dcg

import (
	"cmp"
	"fmt"
	"slices"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// State is the state of a DCG edge.
type State uint8

const (
	// Null means the edge is not present in the DCG.
	Null State = iota
	// Implicit marks a candidate whose subtrees are not all matched yet.
	Implicit
	// Explicit marks a candidate whose subtrees are all matched.
	Explicit
)

// String returns N/I/E, the abbreviations used in the paper's figures.
func (s State) String() string {
	switch s {
	case Null:
		return "N"
	case Implicit:
		return "I"
	case Explicit:
		return "E"
	default:
		return "?"
	}
}

// EdgeBytes is the accounting cost of one stored DCG edge, used for the
// intermediate-result-size comparisons (Figures 6b, 7b, 8b, 9b): parent
// vertex ID, child vertex ID, query-vertex label and state, plus index
// overhead.
const EdgeBytes = 16

// inEdge is one stored incoming DCG edge of a vertex: the parent data
// vertex (graph.NoVertex for root edges) and the edge state. The
// parent-side explicit-children entry is found by binary search over the
// sorted children array when the edge leaves Explicit.
type inEdge struct {
	parent graph.VertexID
	state  State
}

// searchIn returns the position of parent p in the sorted in-edge list l
// and whether it is present; an absent parent maps to its insertion
// position. graph.NoVertex is the maximum VertexID, so root edges sort
// last.
//
//tf:hotpath
func searchIn(l []inEdge, p graph.VertexID) (int, bool) {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid].parent < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l) && l[lo].parent == p
}

// searchOut returns the position of child v in the sorted explicit-
// children list l and whether it is present; an absent child maps to its
// insertion position.
//
//tf:hotpath
func searchOut(l []graph.VertexID, v graph.VertexID) (int, bool) {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l) && l[lo] == v
}

// inShrinkMin is the smallest in-edge backing-array capacity delete
// compaction bothers with; inKeepEmpty is the largest backing array a
// fully drained list retains for alloc-free churn around zero (same
// policy as the graph's adjacency lists).
const (
	inShrinkMin = 16
	inKeepEmpty = 4
)

// node holds the per-slot DCG storage of one participating data vertex.
// A released slot keeps its (emptied) per-label arrays so recycling it
// for a new vertex allocates nothing.
type node struct {
	// in[u'] lists the stored incoming edges labeled u', sorted by parent.
	in [][]inEdge
	// out[u'] holds this vertex's EXPLICIT children labeled u', for the
	// forward enumeration of SubgraphSearch (candidates come straight from
	// the DCG, never by filtering data-graph adjacency). len(out[u']) is
	// the paper's bitmap bit / explicit-out counter.
	out [][]graph.VertexID
	// inTotal/outTotal track total stored in-edges and explicit children
	// across labels; the slot is recycled when both reach zero.
	inTotal  int32
	outTotal int32
}

// DCG is the data-centric graph for one query tree. The zero value is not
// usable; call New.
type DCG struct {
	tree *query.Tree
	nq   int

	slotOf []int32          // data vertex -> interner slot, -1 when absent
	vids   []graph.VertexID // slot -> data vertex, NoVertex when free
	epoch  []uint32         // slot -> epoch, bumped each time the slot is recycled
	nodes  []node           // slot-indexed storage
	free   []uint32         // recycled slots (LIFO)

	numEdges    int     // stored (implicit + explicit) edges
	numExplicit int     // stored explicit edges
	explByLabel []int64 // explicit-edge count per query-vertex label
}

// New returns an empty DCG for query tree t.
func New(t *query.Tree) *DCG {
	return &DCG{
		tree:        t,
		nq:          t.Q.NumVertices(),
		explByLabel: make([]int64, t.Q.NumVertices()),
	}
}

// Tree returns the query tree this DCG indexes.
func (d *DCG) Tree() *query.Tree { return d.tree }

// slot returns the interner slot of v, or -1. graph.NoVertex never has a
// slot (its index exceeds any slotOf length).
//
//tf:hotpath
func (d *DCG) slot(v graph.VertexID) int32 {
	if int(v) < len(d.slotOf) {
		return d.slotOf[v]
	}
	return -1
}

// ensureSlot returns v's slot, interning it if absent: recycled slots are
// reused (bumping nothing — the epoch was stamped at release), otherwise a
// fresh slot is appended.
func (d *DCG) ensureSlot(v graph.VertexID) int32 {
	if int(v) >= len(d.slotOf) {
		n := int(v) + 1
		if n < 2*len(d.slotOf) {
			n = 2 * len(d.slotOf) // amortize repeated growth
		}
		ns := make([]int32, n)
		copy(ns, d.slotOf)
		for i := len(d.slotOf); i < n; i++ {
			ns[i] = -1
		}
		d.slotOf = ns
	}
	if s := d.slotOf[v]; s >= 0 {
		return s
	}
	var s int32
	if n := len(d.free); n > 0 {
		s = int32(d.free[n-1])
		d.free = d.free[:n-1]
	} else {
		s = int32(len(d.nodes))
		d.nodes = append(d.nodes, node{
			in:  make([][]inEdge, d.nq),
			out: make([][]graph.VertexID, d.nq),
		})
		d.vids = append(d.vids, graph.NoVertex)
		d.epoch = append(d.epoch, 0)
	}
	d.vids[s] = v
	d.slotOf[v] = s
	return s
}

// maybeRelease recycles slot s when its vertex no longer stores any
// in-edge or explicit child: the slot goes on the free list with a bumped
// epoch, invalidating any (slot, epoch) reference a cache may hold.
func (d *DCG) maybeRelease(s int32) {
	n := &d.nodes[s]
	if n.inTotal != 0 || n.outTotal != 0 || d.vids[s] == graph.NoVertex {
		return
	}
	d.slotOf[d.vids[s]] = -1
	d.vids[s] = graph.NoVertex
	d.epoch[s]++
	d.free = append(d.free, uint32(s))
}

// GetState returns the state of DCG edge (v, u, v2). Use graph.NoVertex as
// v for root-labeled edges (v*_s, u_s, v2).
//
//tf:hotpath
func (d *DCG) GetState(v graph.VertexID, u graph.VertexID, v2 graph.VertexID) State {
	s := d.slot(v2)
	if s < 0 {
		return Null
	}
	l := d.nodes[s].in[u]
	if i, ok := searchIn(l, v); ok {
		return l[i].state
	}
	return Null
}

// MakeTransition sets the state of DCG edge (v, u, v2) to target and
// reports whether the stored state actually changed. Counts (per-vertex
// explicit-out, per-label explicit totals, total edges) are maintained
// here so every engine path stays consistent.
//
//tf:hotpath
func (d *DCG) MakeTransition(v graph.VertexID, u graph.VertexID, v2 graph.VertexID, target State) bool {
	s2 := d.slot(v2)
	idx := 0
	cur := Null
	if s2 >= 0 {
		var ok bool
		idx, ok = searchIn(d.nodes[s2].in[u], v)
		if ok {
			cur = d.nodes[s2].in[u][idx].state
		}
	}
	if cur == target {
		return false
	}

	// Leaving Explicit: remove v2 from the parent's sorted explicit-
	// children array, preserving ascending order so candidate enumeration
	// stays a pure function of the DCG state (see the package comment).
	if cur == Explicit {
		d.numExplicit--
		d.explByLabel[u]--
		if v != graph.NoVertex {
			pn := &d.nodes[d.slot(v)] // parent owns an out entry, so it has a slot
			list := pn.out[u]
			op, _ := searchOut(list, v2)
			copy(list[op:], list[op+1:])
			pn.out[u] = list[:len(list)-1]
			pn.outTotal--
		}
	}

	// Update v2's in-edge storage.
	switch {
	case target == Null: // cur != Null: remove, keeping the list sorted
		n := &d.nodes[s2]
		l := n.in[u]
		copy(l[idx:], l[idx+1:])
		l = l[:len(l)-1]
		switch {
		case len(l) == 0 && cap(l) > inKeepEmpty:
			n.in[u] = nil
		case cap(l) >= inShrinkMin && len(l)*4 <= cap(l):
			nl := make([]inEdge, len(l), cap(l)/2)
			copy(nl, l)
			n.in[u] = nl
		default:
			n.in[u] = l
		}
		n.inTotal--
		d.numEdges--
	case cur == Null: // insert at the sorted position
		if s2 < 0 {
			s2 = d.ensureSlot(v2)
			idx = 0
		}
		n := &d.nodes[s2]
		l := append(n.in[u], inEdge{})
		copy(l[idx+1:], l[idx:])
		l[idx] = inEdge{parent: v, state: target}
		n.in[u] = l
		n.inTotal++
		d.numEdges++
	default: // Implicit <-> Explicit: in place
		d.nodes[s2].in[u][idx].state = target
	}

	// Entering Explicit: insert v2 into the parent's explicit-children
	// array at its sorted position. ensureSlot may grow d.nodes, so slot
	// pointers are re-resolved after it.
	if target == Explicit {
		d.numExplicit++
		d.explByLabel[u]++
		if v != graph.NoVertex {
			ps := d.ensureSlot(v)
			pn := &d.nodes[ps]
			list := append(pn.out[u], graph.NoVertex)
			op, _ := searchOut(list[:len(list)-1], v2)
			copy(list[op+1:], list[op:])
			list[op] = v2
			pn.out[u] = list
			pn.outTotal++
		}
	}

	// Recycle emptied slots: v2 after an in-edge removal, the parent after
	// losing its last explicit child.
	if cur == Explicit && target != Explicit && v != graph.NoVertex {
		d.maybeRelease(d.slot(v))
	}
	if target == Null {
		d.maybeRelease(s2)
	}
	return true
}

// InDegree returns the number of stored (implicit or explicit) incoming
// edges of v2 labeled u — the paper's |GetImplAndExplEdges(v2, u, in)|.
//
//tf:hotpath
func (d *DCG) InDegree(v2 graph.VertexID, u graph.VertexID) int {
	s := d.slot(v2)
	if s < 0 {
		return 0
	}
	return len(d.nodes[s].in[u])
}

// ForEachInEdge calls fn for every stored incoming edge (parent, u, v2) in
// ascending parent order (root edges from graph.NoVertex last). fn must
// not mutate the DCG for edges labeled u of v2; engines that need to
// mutate during iteration snapshot the parents first (see AppendInParents).
func (d *DCG) ForEachInEdge(v2 graph.VertexID, u graph.VertexID, fn func(parent graph.VertexID, s State)) {
	s := d.slot(v2)
	if s < 0 {
		return
	}
	for _, e := range d.nodes[s].in[u] {
		fn(e.parent, e.state)
	}
}

// AppendInParents appends the parents of v2's stored incoming edges
// labeled u to dst, optionally restricted to explicit edges, in ascending
// vertex order, and returns the extended slice. The upward traversals
// climb these snapshots on the way to reporting matches, so their order
// must be reproducible for a given update stream — the sorted in-edge
// layout provides that without per-call sorting or allocation (callers
// pass a reusable scratch buffer).
//
//tf:hotpath
func (d *DCG) AppendInParents(dst []graph.VertexID, v2 graph.VertexID, u graph.VertexID, explicitOnly bool) []graph.VertexID {
	s := d.slot(v2)
	if s < 0 {
		return dst
	}
	for _, e := range d.nodes[s].in[u] {
		if explicitOnly && e.state != Explicit {
			continue
		}
		dst = append(dst, e.parent)
	}
	return dst
}

// InParents returns a freshly allocated snapshot of the parents of v2's
// stored incoming edges labeled u, in ascending vertex order. Hot paths
// use AppendInParents with a reused buffer instead.
func (d *DCG) InParents(v2 graph.VertexID, u graph.VertexID, explicitOnly bool) []graph.VertexID {
	return d.AppendInParents(nil, v2, u, explicitOnly)
}

// HasInLabel reports whether v has at least one stored incoming edge
// labeled u (the "u ∈ U" test in Algorithms 5 and 8).
//
//tf:hotpath
func (d *DCG) HasInLabel(v graph.VertexID, u graph.VertexID) bool {
	return d.InDegree(v, u) > 0
}

// InLabels returns the set U of query vertices u such that v has at least
// one stored incoming edge labeled u, in ascending label order.
func (d *DCG) InLabels(v graph.VertexID) []graph.VertexID {
	s := d.slot(v)
	if s < 0 {
		return nil
	}
	var out []graph.VertexID
	for u, l := range d.nodes[s].in {
		if len(l) > 0 {
			out = append(out, graph.VertexID(u))
		}
	}
	return out
}

// ExplicitOut returns the number of outgoing EXPLICIT edges of v labeled u.
//
//tf:hotpath
func (d *DCG) ExplicitOut(v graph.VertexID, u graph.VertexID) int32 {
	s := d.slot(v)
	if s < 0 {
		return 0
	}
	return int32(len(d.nodes[s].out[u]))
}

// MatchAllChildren reports whether, for every child u' of u in the query
// tree, v has an outgoing EXPLICIT edge labeled u' (Algorithm 4). O(1) per
// child via the explicit-children array lengths.
//
//tf:hotpath
func (d *DCG) MatchAllChildren(v graph.VertexID, u graph.VertexID) bool {
	children := d.tree.Children[u]
	s := d.slot(v)
	if s < 0 {
		return len(children) == 0
	}
	n := &d.nodes[s]
	for _, c := range children {
		if len(n.out[c]) == 0 {
			return false
		}
	}
	return true
}

// ExplicitChildren enumerates the explicit out-neighbors of v labeled u:
// the data vertices v' with GetState(v, u, v') == Explicit. This is the
// candidate enumeration used by SubgraphSearch (Algorithm 7, Line 15).
// Candidates come straight from the DCG's explicit-children arrays — never
// by filtering data-graph neighbors — which keeps the search cost
// proportional to the number of candidates, not the vertex degree.
//
//tf:hotpath
func (d *DCG) ExplicitChildren(v graph.VertexID, u graph.VertexID, fn func(v2 graph.VertexID) bool) {
	if u == d.tree.Root {
		// Root candidates come from the artificial source; enumerate stored
		// root edges instead (only valid when v == graph.NoVertex).
		panic("dcg: ExplicitChildren must not be called for the root label")
	}
	s := d.slot(v)
	if s < 0 {
		return
	}
	for _, v2 := range d.nodes[s].out[u] {
		if !fn(v2) {
			return
		}
	}
}

// ExplicitChildrenList returns the explicit out-neighbors of v labeled u
// as a slice owned by the DCG: callers must not mutate it and must not
// hold it across transitions. Used by the worst-case-optimal search to
// pick the smallest candidate list before intersecting.
//
//tf:hotpath
func (d *DCG) ExplicitChildrenList(v graph.VertexID, u graph.VertexID) []graph.VertexID {
	s := d.slot(v)
	if s < 0 {
		return nil
	}
	return d.nodes[s].out[u]
}

// RootCandidates returns the data vertices v_s whose root edge
// (v*_s, u_s, v_s) is stored, filtered to explicit ones when explicitOnly,
// in ascending vertex order. SubgraphSearch seeds from this slice, so a
// deterministic order here is a precondition for deterministic match
// emission.
func (d *DCG) RootCandidates(explicitOnly bool) []graph.VertexID {
	var out []graph.VertexID
	us := d.tree.Root
	for s := range d.nodes {
		v := d.vids[s]
		if v == graph.NoVertex {
			continue // recycled slot
		}
		l := d.nodes[s].in[us]
		// Root edges come from graph.NoVertex, the maximum VertexID, so a
		// stored root edge is always the last in-edge.
		if len(l) == 0 || l[len(l)-1].parent != graph.NoVertex {
			continue
		}
		if !explicitOnly || l[len(l)-1].state == Explicit {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// NumEdges returns the number of stored (implicit + explicit) DCG edges,
// including root edges from v*_s.
func (d *DCG) NumEdges() int { return d.numEdges }

// NumExplicit returns the number of stored EXPLICIT edges.
func (d *DCG) NumExplicit() int { return d.numExplicit }

// ExplicitCount returns the number of EXPLICIT edges labeled u — the exact
// count of explicit data paths ending at a u-candidate, used to drive the
// matching order (Section 4.1).
func (d *DCG) ExplicitCount(u graph.VertexID) int64 { return d.explByLabel[u] }

// SizeBytes returns the accounting size of the DCG for intermediate-result
// comparisons: stored edges times EdgeBytes.
func (d *DCG) SizeBytes() int64 { return int64(d.numEdges) * EdgeBytes }

// slotStats returns interner occupancy: slots ever allocated and slots
// currently on the free list. Tests use it to pin recycling behavior.
func (d *DCG) slotStats() (slots, free int) {
	return len(d.nodes), len(d.free)
}

// Validate checks internal consistency: the sorted-in-edge invariant, the
// explicit-children arrays with their outPos back-indexes, the interner
// (slotOf/vids agreement, free-list hygiene), and the per-label and total
// counters must all agree with the stored edges. It returns the first
// inconsistency found. Tests and the failure-injection suite call this
// after every update.
//
//tf:map-ok test-support invariant checker, never on the eval path
func (d *DCG) Validate() error {
	if len(d.vids) != len(d.nodes) || len(d.epoch) != len(d.nodes) {
		return fmt.Errorf("dcg: interner arrays out of sync: %d nodes, %d vids, %d epochs",
			len(d.nodes), len(d.vids), len(d.epoch))
	}
	onFree := make(map[int32]bool, len(d.free))
	for _, s := range d.free {
		if int(s) >= len(d.nodes) {
			return fmt.Errorf("dcg: free slot %d out of range", s)
		}
		if onFree[int32(s)] {
			return fmt.Errorf("dcg: slot %d on the free list twice", s)
		}
		onFree[int32(s)] = true
	}
	for v, s := range d.slotOf {
		if s < 0 {
			continue
		}
		if int(s) >= len(d.nodes) {
			return fmt.Errorf("dcg: slotOf[%d]=%d out of range", v, s)
		}
		if d.vids[s] != graph.VertexID(v) {
			return fmt.Errorf("dcg: slotOf[%d]=%d but vids[%d]=%d", v, s, s, d.vids[s])
		}
	}
	edges, explicit := 0, 0
	explByLabel := make([]int64, d.nq)
	for s := range d.nodes {
		n := &d.nodes[s]
		v2 := d.vids[s]
		if v2 == graph.NoVertex {
			if !onFree[int32(s)] {
				return fmt.Errorf("dcg: slot %d has no vertex but is not on the free list", s)
			}
			if n.inTotal != 0 || n.outTotal != 0 {
				return fmt.Errorf("dcg: free slot %d has inTotal=%d outTotal=%d", s, n.inTotal, n.outTotal)
			}
			for u := 0; u < d.nq; u++ {
				if len(n.in[u]) != 0 || len(n.out[u]) != 0 {
					return fmt.Errorf("dcg: free slot %d stores edges under label %d", s, u)
				}
			}
			continue
		}
		if onFree[int32(s)] {
			return fmt.Errorf("dcg: live slot %d (vertex %d) is on the free list", s, v2)
		}
		if int(v2) >= len(d.slotOf) || d.slotOf[v2] != int32(s) {
			return fmt.Errorf("dcg: vids[%d]=%d but slotOf does not point back", s, v2)
		}
		inTotal, outTotal := int32(0), int32(0)
		for u := 0; u < d.nq; u++ {
			l := n.in[u]
			inTotal += int32(len(l))
			outTotal += int32(len(n.out[u]))
			for i, e := range l {
				if i > 0 && l[i-1].parent >= e.parent {
					return fmt.Errorf("dcg: in-edges of (%d, u%d) not strictly sorted at %d", v2, u, i)
				}
				if e.state == Null {
					return fmt.Errorf("dcg: stored NULL edge (%d,%d,%d)", e.parent, u, v2)
				}
				edges++
				if e.state != Explicit {
					continue
				}
				explicit++
				explByLabel[u]++
				if e.parent == graph.NoVertex {
					continue
				}
				ps := d.slot(e.parent)
				if ps < 0 {
					return fmt.Errorf("dcg: explicit edge (%d,%d,%d) but parent has no slot", e.parent, u, v2)
				}
				plist := d.nodes[ps].out[u]
				if _, ok := searchOut(plist, v2); !ok {
					return fmt.Errorf("dcg: explicit edge (%d,%d,%d) missing from parent's children", e.parent, u, v2)
				}
			}
			for i, c := range n.out[u] {
				if i > 0 && n.out[u][i-1] >= c {
					return fmt.Errorf("dcg: explicit children of (%d, u%d) not strictly sorted at %d", v2, u, i)
				}
				cs := d.slot(c)
				if cs < 0 {
					return fmt.Errorf("dcg: explicit child (%d,%d,%d) has no slot", v2, u, c)
				}
				cl := d.nodes[cs].in[u]
				j, ok := searchIn(cl, v2)
				if !ok || cl[j].state != Explicit {
					return fmt.Errorf("dcg: out-adjacency (%d,%d,%d) not explicit", v2, u, c)
				}
			}
		}
		if inTotal != n.inTotal || outTotal != n.outTotal {
			return fmt.Errorf("dcg: slot %d totals in=%d/%d out=%d/%d", s, n.inTotal, inTotal, n.outTotal, outTotal)
		}
		if inTotal == 0 && outTotal == 0 {
			return fmt.Errorf("dcg: empty slot %d (vertex %d) was not recycled", s, v2)
		}
	}
	if edges != d.numEdges {
		return fmt.Errorf("dcg: numEdges=%d, stored=%d", d.numEdges, edges)
	}
	if explicit != d.numExplicit {
		return fmt.Errorf("dcg: numExplicit=%d, stored=%d", d.numExplicit, explicit)
	}
	for u := 0; u < d.nq; u++ {
		if explByLabel[u] != d.explByLabel[u] {
			return fmt.Errorf("dcg: explByLabel[%d]=%d, stored=%d", u, d.explByLabel[u], explByLabel[u])
		}
	}
	return nil
}

// SnapEdge is one stored DCG edge with its state, as returned by Snapshot.
type SnapEdge struct {
	Key   EdgeKey
	State State
}

// Snapshot returns all stored edges sorted by (From, QV, To) — root edges
// from v*_s last, since graph.NoVertex is the maximum VertexID. The result
// is built in one pre-sized pass and is deterministic for a given DCG
// content, so byte/deep comparisons between snapshots need no
// canonicalization. Used by the oracle-equivalence and determinism tests.
func (d *DCG) Snapshot() []SnapEdge {
	out := make([]SnapEdge, 0, d.numEdges)
	for s := range d.nodes {
		v2 := d.vids[s]
		if v2 == graph.NoVertex {
			continue // recycled slot
		}
		for u, l := range d.nodes[s].in {
			for _, e := range l {
				out = append(out, SnapEdge{
					Key:   EdgeKey{From: e.parent, QV: graph.VertexID(u), To: v2},
					State: e.state,
				})
			}
		}
	}
	slices.SortFunc(out, func(a, b SnapEdge) int {
		if c := cmp.Compare(a.Key.From, b.Key.From); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Key.QV, b.Key.QV); c != 0 {
			return c
		}
		return cmp.Compare(a.Key.To, b.Key.To)
	})
	return out
}

// SnapshotMap returns all stored edges as a map, the shape ComputeSpec
// produces — a convenience for oracle comparisons off the hot path.
//
//tf:oracle-ok cold oracle-comparison helper
func (d *DCG) SnapshotMap() map[EdgeKey]State {
	m := make(map[EdgeKey]State, d.numEdges)
	for _, e := range d.Snapshot() {
		m[e.Key] = e.State
	}
	return m
}

// EdgeKey identifies one DCG edge: (From, QV, To) where QV is the
// query-vertex label and From is graph.NoVertex for root edges.
type EdgeKey struct {
	From graph.VertexID
	QV   graph.VertexID
	To   graph.VertexID
}

// String formats the key like the paper's figures, e.g. "(v2, u3, v104)".
func (k EdgeKey) String() string {
	if k.From == graph.NoVertex {
		return fmt.Sprintf("(v*, u%d, v%d)", k.QV, k.To)
	}
	return fmt.Sprintf("(v%d, u%d, v%d)", k.From, k.QV, k.To)
}
