package dcg

import (
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// newPathQuery builds an unlabeled path query u0 -l-> u1 -l-> ... of the
// given length (number of edges).
func newPathQuery(t *testing.T, edges int, l graph.Label) *query.Graph {
	t.Helper()
	q := query.NewGraph(edges + 1)
	for i := 0; i < edges; i++ {
		if err := q.AddEdge(graph.VertexID(i), l, graph.VertexID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return q
}

func mustTree(t *testing.T, q *query.Graph, root graph.VertexID, g *graph.Graph) *query.Tree {
	t.Helper()
	tr, err := query.TransformToTree(q, root, g)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
