package dcg

import (
	"math/rand"
	"testing"

	"turboflux/internal/graph"
)

// TestSlotRecycling pins the interner contract of DESIGN.md §16: a vertex
// whose last DCG edge is nulled releases its slot, the epoch stamp is
// bumped, and a later re-creation of the same (or another) vertex reuses
// the freed slot instead of growing the node table.
func TestSlotRecycling(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	d := New(tr)

	const n = 32
	for i := 0; i < n; i++ {
		v := graph.VertexID(200 + i)
		d.MakeTransition(graph.NoVertex, 0, v, Implicit)
	}
	slots, free := d.slotStats()
	if free != 0 {
		t.Fatalf("free = %d with all vertices live", free)
	}
	if slots < n {
		t.Fatalf("slots = %d after %d root edges", slots, n)
	}
	epochBefore := make([]uint32, len(d.epoch))
	copy(epochBefore, d.epoch)

	// Null every root edge: each vertex loses its last DCG edge and must
	// release its slot.
	for i := 0; i < n; i++ {
		v := graph.VertexID(200 + i)
		d.MakeTransition(graph.NoVertex, 0, v, Null)
	}
	slots2, free2 := d.slotStats()
	if slots2 != slots {
		t.Fatalf("node table resized on release: %d -> %d", slots, slots2)
	}
	if free2 != n {
		t.Fatalf("free = %d after nulling %d vertices", free2, n)
	}
	bumped := 0
	for s := range d.epoch {
		if d.epoch[s] != epochBefore[s] {
			bumped++
		}
	}
	if bumped != n {
		t.Fatalf("%d epochs bumped, want %d", bumped, n)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	// Re-create the same vertices: every one must land on a recycled slot
	// — the node table must not grow.
	for i := 0; i < n; i++ {
		v := graph.VertexID(200 + i)
		d.MakeTransition(graph.NoVertex, 0, v, Implicit)
		if d.GetState(graph.NoVertex, 0, v) != Implicit {
			t.Fatalf("vertex %d lost its re-created root edge", v)
		}
	}
	slots3, free3 := d.slotStats()
	if slots3 != slots {
		t.Fatalf("node table grew on re-creation: %d -> %d slots", slots, slots3)
	}
	if free3 != 0 {
		t.Fatalf("free = %d after re-creating all vertices", free3)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSlotRecyclingAllocFree pins the reason released slots keep their
// per-label arrays: steady-state churn of a vertex's last edge (release,
// recycle, release, ...) must not allocate.
func TestSlotRecyclingAllocFree(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)
	d := New(tr)
	v := graph.VertexID(300)
	cycle := func() {
		d.MakeTransition(graph.NoVertex, 0, v, Implicit)
		d.MakeTransition(graph.NoVertex, 0, v, Null)
	}
	cycle() // warm: first creation sizes the slot's arrays
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("recycle cycle allocates %v per run, want 0", avg)
	}
}

// TestSnapshotSortedDeterministic pins the Snapshot contract: the slice is
// sorted by (From, QV, To) — with root edges (From = NoVertex) last — and
// two DCGs holding the same edge set return identical snapshots regardless
// of the order the edges were stored in.
func TestSnapshotSortedDeterministic(t *testing.T) {
	g := paperData(t)
	tr := paperTree(t, g)

	type op struct {
		from, to graph.VertexID
		u        graph.VertexID
		s        State
	}
	rng := rand.New(rand.NewSource(41))
	verts := []graph.VertexID{0, 2, 4, 5, 104, graph.NoVertex}
	states := []State{Implicit, Explicit}
	var ops []op
	for i := 0; i < 200; i++ {
		ops = append(ops, op{
			from: verts[rng.Intn(len(verts))],
			to:   verts[rng.Intn(len(verts)-1)],
			u:    graph.VertexID(rng.Intn(tr.Q.NumVertices())),
			s:    states[rng.Intn(len(states))],
		})
	}
	build := func(perm []int) *DCG {
		d := New(tr)
		for _, i := range perm {
			d.MakeTransition(ops[i].from, ops[i].u, ops[i].to, ops[i].s)
		}
		return d
	}
	fwd := make([]int, len(ops))
	for i := range fwd {
		fwd[i] = i
	}
	a := build(fwd)
	snap := a.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	for i := 1; i < len(snap); i++ {
		p, c := snap[i-1].Key, snap[i].Key
		if p.From > c.From ||
			(p.From == c.From && p.QV > c.QV) ||
			(p.From == c.From && p.QV == c.QV && p.To >= c.To) {
			t.Fatalf("snapshot not strictly sorted at %d: %v then %v", i, p, c)
		}
	}

	// Absolute-state transitions commute, so any permutation that keeps
	// the last write per edge key yields the same edge set. Shuffling the
	// prefix and replaying the full sequence preserves exactly that.
	perm := rng.Perm(len(ops))
	b := build(append(perm, fwd...))
	got, want := b.Snapshot(), snap
	if len(got) != len(want) {
		t.Fatalf("snapshot sizes diverge: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot entry %d diverges: %v vs %v", i, got[i], want[i])
		}
	}
}
