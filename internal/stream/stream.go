// Package stream defines graph update streams (Definition 2 of the paper)
// and a line-oriented text codec for persisting and replaying them.
//
// Format, one record per line:
//
//	v <id> [<label>[,<label>...]]   declare a labeled vertex (used for g0)
//	i <from> <label> <to>           insert edge
//	d <from> <label> <to>           delete edge
//	# ...                           comment
package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"turboflux/internal/graph"
)

// Op is the type of an update operation.
type Op uint8

const (
	// OpInsert inserts an edge.
	OpInsert Op = iota
	// OpDelete deletes an edge.
	OpDelete
	// OpVertex declares a vertex with labels (initial-graph loading only).
	OpVertex
)

// String returns the single-letter code used by the text format.
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "i"
	case OpDelete:
		return "d"
	case OpVertex:
		return "v"
	default:
		return "?"
	}
}

// Update is one operation Δo of a graph update stream.
type Update struct {
	Op     Op
	Edge   graph.Edge     // for OpInsert / OpDelete
	Vertex graph.VertexID // for OpVertex
	Labels []graph.Label  // for OpVertex
}

// String renders the update as its text-format record (without trailing
// newline), e.g. "i 1 5 2" or "v 3 1,7" — the one rendering shared by
// logs and errors across the stream, durable and cmd layers.
func (u Update) String() string {
	switch u.Op {
	case OpInsert, OpDelete:
		return fmt.Sprintf("%s %d %d %d", u.Op, u.Edge.From, u.Edge.Label, u.Edge.To)
	case OpVertex:
		if len(u.Labels) == 0 {
			return fmt.Sprintf("v %d", u.Vertex)
		}
		parts := make([]string, len(u.Labels))
		for i, l := range u.Labels {
			parts[i] = strconv.Itoa(int(l))
		}
		return fmt.Sprintf("v %d %s", u.Vertex, strings.Join(parts, ","))
	default:
		return fmt.Sprintf("? op=%d", u.Op)
	}
}

// Insert returns an edge-insertion update.
func Insert(from graph.VertexID, l graph.Label, to graph.VertexID) Update {
	return Update{Op: OpInsert, Edge: graph.Edge{From: from, Label: l, To: to}}
}

// Delete returns an edge-deletion update.
func Delete(from graph.VertexID, l graph.Label, to graph.VertexID) Update {
	return Update{Op: OpDelete, Edge: graph.Edge{From: from, Label: l, To: to}}
}

// DeclareVertex returns a vertex-declaration update.
func DeclareVertex(v graph.VertexID, labels ...graph.Label) Update {
	return Update{Op: OpVertex, Vertex: v, Labels: labels}
}

// Apply applies u to g. It reports whether the graph changed (duplicate
// inserts and deletes of absent edges report false; vertex declarations
// report true when the vertex was new).
func (u Update) Apply(g *graph.Graph) bool {
	switch u.Op {
	case OpInsert:
		return g.InsertEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case OpDelete:
		return g.DeleteEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case OpVertex:
		if g.HasVertex(u.Vertex) {
			return false
		}
		g.EnsureVertex(u.Vertex, u.Labels...)
		return true
	default:
		return false
	}
}

// Encode writes updates in the text format.
func Encode(w io.Writer, ups []Update) error {
	bw := bufio.NewWriter(w)
	for _, u := range ups {
		var err error
		switch u.Op {
		case OpVertex:
			if len(u.Labels) == 0 {
				_, err = fmt.Fprintf(bw, "v %d\n", u.Vertex)
			} else {
				parts := make([]string, len(u.Labels))
				for i, l := range u.Labels {
					parts[i] = strconv.Itoa(int(l))
				}
				_, err = fmt.Fprintf(bw, "v %d %s\n", u.Vertex, strings.Join(parts, ","))
			}
		case OpInsert, OpDelete:
			_, err = fmt.Fprintf(bw, "%s %d %d %d\n", u.Op, u.Edge.From, u.Edge.Label, u.Edge.To)
		default:
			err = fmt.Errorf("stream: unknown op %d", u.Op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads updates in the text format until EOF.
func Decode(r io.Reader) ([]Update, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ups []Update
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		u, err := parseFields(fields)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
		}
		ups = append(ups, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ups, nil
}

// ParseLine parses one text-format record ("i 1 5 2", "v 3 1,7") without
// the surrounding stream framing. Blank lines and comments are errors here;
// Decode filters them before calling in. The network server reuses this to
// accept single wire updates in the stream text format.
func ParseLine(line string) (Update, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Update{}, fmt.Errorf("stream: empty record")
	}
	return parseFields(fields)
}

func parseFields(fields []string) (Update, error) {
	switch fields[0] {
	case "v":
		if len(fields) < 2 || len(fields) > 3 {
			return Update{}, fmt.Errorf("bad vertex record %q", strings.Join(fields, " "))
		}
		id, err := parseVertex(fields[1])
		if err != nil {
			return Update{}, err
		}
		u := Update{Op: OpVertex, Vertex: id}
		if len(fields) == 3 {
			for _, s := range strings.Split(fields[2], ",") {
				l, err := parseLabel(s)
				if err != nil {
					return Update{}, err
				}
				u.Labels = append(u.Labels, l)
			}
		}
		return u, nil
	case "i", "d":
		if len(fields) != 4 {
			return Update{}, fmt.Errorf("bad edge record %q", strings.Join(fields, " "))
		}
		from, err := parseVertex(fields[1])
		if err != nil {
			return Update{}, err
		}
		l, err := parseLabel(fields[2])
		if err != nil {
			return Update{}, err
		}
		to, err := parseVertex(fields[3])
		if err != nil {
			return Update{}, err
		}
		op := OpInsert
		if fields[0] == "d" {
			op = OpDelete
		}
		return Update{Op: op, Edge: graph.Edge{From: from, Label: l, To: to}}, nil
	default:
		return Update{}, fmt.Errorf("unknown op %q", fields[0])
	}
}

func parseVertex(s string) (graph.VertexID, error) {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex id %q: %w", s, err)
	}
	return graph.VertexID(n), nil
}

func parseLabel(s string) (graph.Label, error) {
	n, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bad label %q: %w", s, err)
	}
	return graph.Label(n), nil
}

// ApplyAll applies every update to g and returns how many changed the
// graph. Used to materialize g0 from a vertex+edge prelude.
func ApplyAll(g *graph.Graph, ups []Update) int {
	n := 0
	for _, u := range ups {
		if u.Apply(g) {
			n++
		}
	}
	return n
}

// Batches splits ups into consecutive batches of at most size updates.
// Graphflow is driven in 100 K batches in the paper's measurement setup.
func Batches(ups []Update, size int) [][]Update {
	if size <= 0 {
		return [][]Update{ups}
	}
	var out [][]Update
	for len(ups) > size {
		out = append(out, ups[:size])
		ups = ups[size:]
	}
	if len(ups) > 0 {
		out = append(out, ups)
	}
	return out
}
