package stream

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode checks that the stream decoder never panics and that whatever
// it accepts survives an encode/decode round trip.
func FuzzDecode(f *testing.F) {
	for _, seed := range []string{
		"i 1 2 3\n",
		"d 0 0 0\n",
		"v 7 1,2\n# comment\n\ni 7 1 8\n",
		"x y z\n",
		"i 4294967295 65535 0\n",
		"v 1\n",
		// Server protocol frames (see internal/server): the decoder must
		// reject the command lines without choking on the embedded records.
		"REGISTER q (a:0)-[:0]->(b)\n",
		"SUBSCRIBE q\n",
		"BATCH 2\ni 1 2 3\nd 1 2 3\n",
		"BATCHB 16\ni 1 2 3\n",
		"STATS\nQUIT\n",
		"+OK 1 0\n-ERR bad\n*EVENT q 1 + 2 3\n",
		"i 1 2 3\r\nPING\r\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ups, err := Decode(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, ups); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded stream failed: %v", err)
		}
		if len(again) != len(ups) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(ups))
		}
		for i := range ups {
			if ups[i].Op != again[i].Op || ups[i].Edge != again[i].Edge || ups[i].Vertex != again[i].Vertex {
				t.Fatalf("round trip changed record %d: %+v vs %+v", i, ups[i], again[i])
			}
		}

		// Cross-codec property on the shared corpus: anything the text
		// decoder accepts must survive binary encode→decode and re-render
		// to the identical text stream.
		var bin []byte
		for _, u := range ups {
			var err error
			if bin, err = AppendBinary(bin, u); err != nil {
				t.Fatalf("AppendBinary(%s): %v", u, err)
			}
		}
		var viaBin []Update
		for len(bin) > 0 {
			u, n, err := DecodeBinary(bin)
			if err != nil {
				t.Fatalf("DecodeBinary after text decode: %v", err)
			}
			viaBin = append(viaBin, u)
			bin = bin[n:]
		}
		var text2 bytes.Buffer
		if err := Encode(&text2, viaBin); err != nil {
			t.Fatalf("re-encode via binary failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), text2.Bytes()) {
			t.Fatalf("binary codec disagrees with text codec:\ntext:\n%s\nvia binary:\n%s",
				buf.String(), text2.String())
		}
	})
}
