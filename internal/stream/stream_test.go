package stream

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"turboflux/internal/graph"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []Update{
		DeclareVertex(0, 1, 2),
		DeclareVertex(1),
		Insert(0, 5, 1),
		Delete(0, 5, 1),
		Insert(1, 0, 0),
	}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDecodeCommentsAndBlank(t *testing.T) {
	src := "# header\n\nv 3 7\ni 3 0 4\n  # trailing\nd 3 0 4\n"
	ups, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 3 {
		t.Fatalf("decoded %d updates, want 3", len(ups))
	}
	if ups[0].Op != OpVertex || ups[0].Vertex != 3 || len(ups[0].Labels) != 1 || ups[0].Labels[0] != 7 {
		t.Fatalf("vertex record parsed wrong: %+v", ups[0])
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, src := range []string{
		"x 1 2 3\n",
		"i 1 2\n",
		"i a 2 3\n",
		"i 1 b 3\n",
		"i 1 2 c\n",
		"v\n",
		"v 1 2 3\n",
		"v 1 notalabel\n",
		"i 1 99999 3\n", // label overflows uint16
	} {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("Decode(%q) should fail", src)
		}
	}
}

func TestApply(t *testing.T) {
	g := graph.New()
	if !DeclareVertex(7, 1).Apply(g) {
		t.Fatal("vertex declaration should change graph")
	}
	if DeclareVertex(7, 2).Apply(g) {
		t.Fatal("re-declaration must be a no-op")
	}
	if !Insert(7, 0, 8).Apply(g) || Insert(7, 0, 8).Apply(g) {
		t.Fatal("insert semantics wrong")
	}
	if !Delete(7, 0, 8).Apply(g) || Delete(7, 0, 8).Apply(g) {
		t.Fatal("delete semantics wrong")
	}
	n := ApplyAll(g, []Update{Insert(1, 0, 2), Insert(1, 0, 2), Insert(2, 0, 3)})
	if n != 2 {
		t.Fatalf("ApplyAll effective count = %d, want 2", n)
	}
}

func TestBatches(t *testing.T) {
	ups := make([]Update, 10)
	b := Batches(ups, 4)
	if len(b) != 3 || len(b[0]) != 4 || len(b[2]) != 2 {
		t.Fatalf("Batches sizes wrong: %d batches", len(b))
	}
	if got := Batches(ups, 0); len(got) != 1 || len(got[0]) != 10 {
		t.Fatal("size<=0 must return one batch")
	}
	if got := Batches(nil, 4); got != nil {
		t.Fatal("empty input must return nil")
	}
}
