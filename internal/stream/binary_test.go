package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"turboflux/internal/graph"
)

func TestBinaryRoundTrip(t *testing.T) {
	in := []Update{
		DeclareVertex(0, 1, 2),
		DeclareVertex(1),
		DeclareVertex(4294967295, 65535),
		Insert(0, 5, 1),
		Delete(0, 5, 1),
		Insert(4294967295, 65535, 0),
		Insert(1, 0, 0),
	}
	var buf []byte
	for _, u := range in {
		var err error
		buf, err = AppendBinary(buf, u)
		if err != nil {
			t.Fatalf("AppendBinary(%s): %v", u, err)
		}
	}
	var out []Update
	for len(buf) > 0 {
		u, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatalf("DecodeBinary: %v", err)
		}
		out = append(out, u)
		buf = buf[n:]
	}
	if !reflect.DeepEqual(normalize(in), normalize(out)) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

// normalize maps nil and empty label slices to nil so DeepEqual compares
// update contents, not allocation details.
func normalize(ups []Update) []Update {
	out := make([]Update, len(ups))
	for i, u := range ups {
		if len(u.Labels) == 0 {
			u.Labels = nil
		}
		out[i] = u
	}
	return out
}

func TestBinaryDecodeErrors(t *testing.T) {
	full, err := AppendBinary(nil, Insert(300, 70, 99999))
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of a valid record is a truncation error.
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeBinary(full[:i]); err == nil {
			t.Errorf("DecodeBinary of %d-byte prefix should fail", i)
		}
	}
	for name, b := range map[string][]byte{
		"unknown op":     {9, 1, 2, 3},
		"vertex cut":     {2, 5},
		"huge vertex id": append([]byte{0}, bytesOfUvarint(1<<40)...),
	} {
		if _, _, err := DecodeBinary(b); err == nil {
			t.Errorf("%s: DecodeBinary should fail", name)
		}
	}
}

func bytesOfUvarint(x uint64) []byte {
	var b []byte
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x), 1, 1, 1, 1, 1, 1, 1, 1, 1)
}

// randomUpdates draws a corpus covering all ops and the extremes of the
// id/label domains.
func randomUpdates(rng *rand.Rand, n int) []Update {
	ups := make([]Update, 0, n)
	vid := func() graph.VertexID {
		switch rng.Intn(4) {
		case 0:
			return graph.VertexID(rng.Intn(8))
		case 1:
			return graph.VertexID(rng.Uint32())
		default:
			return graph.VertexID(rng.Intn(1 << 20))
		}
	}
	lab := func() graph.Label {
		if rng.Intn(4) == 0 {
			return graph.Label(rng.Intn(1 << 16))
		}
		return graph.Label(rng.Intn(8))
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			ups = append(ups, Insert(vid(), lab(), vid()))
		case 1:
			ups = append(ups, Delete(vid(), lab(), vid()))
		default:
			ls := make([]graph.Label, rng.Intn(4))
			for j := range ls {
				ls[j] = lab()
			}
			ups = append(ups, DeclareVertex(vid(), ls...))
		}
	}
	return ups
}

// TestBinaryTextCrossCheck is the cross-codec property test: for random
// update sequences, text encode→decode→binary encode→decode→text encode
// must reproduce the first text rendering byte-for-byte.
func TestBinaryTextCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		ups := randomUpdates(rng, 1+rng.Intn(40))

		var text1 bytes.Buffer
		if err := Encode(&text1, ups); err != nil {
			t.Fatal(err)
		}
		viaText, err := Decode(bytes.NewReader(text1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}

		var bin []byte
		for _, u := range viaText {
			if bin, err = AppendBinary(bin, u); err != nil {
				t.Fatal(err)
			}
		}
		var viaBin []Update
		for len(bin) > 0 {
			u, n, err := DecodeBinary(bin)
			if err != nil {
				t.Fatalf("round %d: DecodeBinary: %v", round, err)
			}
			viaBin = append(viaBin, u)
			bin = bin[n:]
		}

		var text2 bytes.Buffer
		if err := Encode(&text2, viaBin); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(text1.Bytes(), text2.Bytes()) {
			t.Fatalf("round %d: codecs disagree\ntext1:\n%s\ntext2:\n%s",
				round, text1.String(), text2.String())
		}
	}
}

func TestUpdateString(t *testing.T) {
	for _, tc := range []struct {
		u    Update
		want string
	}{
		{Insert(1, 5, 2), "i 1 5 2"},
		{Delete(0, 0, 0), "d 0 0 0"},
		{DeclareVertex(3), "v 3"},
		{DeclareVertex(3, 1, 7), "v 3 1,7"},
		{DeclareVertex(4294967295, 65535), "v 4294967295 65535"},
		{Update{Op: Op(9)}, "? op=9"},
	} {
		if got := tc.u.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.u, got, tc.want)
		}
	}
	// String must agree with the text codec line rendering for valid ops.
	ups := []Update{Insert(7, 1, 8), Delete(7, 1, 8), DeclareVertex(9, 2)}
	var buf bytes.Buffer
	if err := Encode(&buf, ups); err != nil {
		t.Fatal(err)
	}
	var lines bytes.Buffer
	for _, u := range ups {
		lines.WriteString(u.String())
		lines.WriteByte('\n')
	}
	if buf.String() != lines.String() {
		t.Fatalf("String and Encode disagree:\nencode:\n%s\nstring:\n%s", buf.String(), lines.String())
	}
}
