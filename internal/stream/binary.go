package stream

import (
	"encoding/binary"
	"errors"
	"fmt"

	"turboflux/internal/graph"
)

const (
	maxVertexID = uint64(^uint32(0))
	maxLabel    = uint64(^uint16(0))
)

// Binary update codec: the compact per-record encoding used as the payload
// of write-ahead-log records (internal/durable). The text codec in this
// package remains the human-readable interchange format; the two are
// cross-checked by property tests on the shared fuzz corpus.
//
// Layout (unsigned varints):
//
//	op (1 byte: 0=insert, 1=delete, 2=vertex)
//	insert/delete: from, label, to
//	vertex:        id, labelCount, labels...
//
// The encoding is self-delimiting: DecodeBinary reports how many bytes it
// consumed, so records can be concatenated without separators.

// Prebuilt error values: decode runs on the recovery path per record and
// must not format per call.
var (
	errBinShort    = errors.New("stream: truncated binary record")
	errBinOp       = errors.New("stream: unknown binary op")
	errBinVertex   = errors.New("stream: binary vertex id overflows uint32")
	errBinLabel    = errors.New("stream: binary label overflows uint16")
	errBinLabelLen = errors.New("stream: binary label count implausible")
)

// AppendBinary appends the binary encoding of u to dst and returns the
// extended slice. It fails only on an unknown op.
//
//tf:hotpath
func AppendBinary(dst []byte, u Update) ([]byte, error) {
	switch u.Op {
	case OpInsert, OpDelete:
		dst = append(dst, byte(u.Op))
		dst = binary.AppendUvarint(dst, uint64(u.Edge.From))
		dst = binary.AppendUvarint(dst, uint64(u.Edge.Label))
		dst = binary.AppendUvarint(dst, uint64(u.Edge.To))
		return dst, nil
	case OpVertex:
		dst = append(dst, byte(u.Op))
		dst = binary.AppendUvarint(dst, uint64(u.Vertex))
		dst = binary.AppendUvarint(dst, uint64(len(u.Labels)))
		for _, l := range u.Labels {
			dst = binary.AppendUvarint(dst, uint64(l))
		}
		return dst, nil
	default:
		return dst, errBinOp
	}
}

// DecodeBinary decodes one update from the front of b, returning the
// update and the number of bytes consumed. Trailing bytes are left for the
// caller; a record cut short mid-field returns errBinShort.
func DecodeBinary(b []byte) (Update, int, error) {
	if len(b) == 0 {
		return Update{}, 0, errBinShort
	}
	op := Op(b[0])
	pos := 1
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, errBinShort
		}
		pos += n
		return v, nil
	}
	switch op {
	case OpInsert, OpDelete:
		from, err := next()
		if err != nil {
			return Update{}, 0, err
		}
		label, err := next()
		if err != nil {
			return Update{}, 0, err
		}
		to, err := next()
		if err != nil {
			return Update{}, 0, err
		}
		if from > maxVertexID || to > maxVertexID {
			return Update{}, 0, errBinVertex
		}
		if label > maxLabel {
			return Update{}, 0, errBinLabel
		}
		e := graph.Edge{From: graph.VertexID(from), Label: graph.Label(label), To: graph.VertexID(to)}
		return Update{Op: op, Edge: e}, pos, nil
	case OpVertex:
		id, err := next()
		if err != nil {
			return Update{}, 0, err
		}
		if id > maxVertexID {
			return Update{}, 0, errBinVertex
		}
		nl, err := next()
		if err != nil {
			return Update{}, 0, err
		}
		if nl > maxLabel+1 {
			return Update{}, 0, errBinLabelLen
		}
		u := Update{Op: OpVertex, Vertex: graph.VertexID(id)}
		if nl > 0 {
			u.Labels = make([]graph.Label, 0, nl)
			for i := uint64(0); i < nl; i++ {
				l, err := next()
				if err != nil {
					return Update{}, 0, err
				}
				if l > maxLabel {
					return Update{}, 0, errBinLabel
				}
				u.Labels = append(u.Labels, graph.Label(l))
			}
		}
		return u, pos, nil
	default:
		return Update{}, 0, fmt.Errorf("%w %d", errBinOp, b[0])
	}
}
