// Package fanout implements the parallel multi-query fan-out layer: a
// persistent worker pool that evaluates one update against many engines
// concurrently, and the per-engine emission buffers that make the
// parallel window invisible to OnMatch observers.
//
// The contract (DESIGN.md §11): graph mutation stays serial per update,
// engines only read the shared data graph during evaluation (the
// frozen-graph window, machine-checked by turboflux-vet's eval-readonly
// analyzer), and every OnMatch emission produced inside the window is
// buffered per engine and replayed in registration order after the
// barrier — so transcripts are byte-identical to the sequential path.
package fanout

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"turboflux/internal/graph"
)

// Stats is a snapshot of fan-out counters. Workers, Pooled, Batches,
// BusyNs and PerWorker are owned by the Pool; Evals and Skipped are
// owned by the coordinator (MultiEngine) and merged into the snapshot.
type Stats struct {
	// Workers is the configured pool size.
	Workers int `json:"workers"`
	// Evals counts per-engine evaluations actually run (any mode).
	Evals uint64 `json:"evals"`
	// Skipped counts engine evaluations elided by label-relevance
	// routing: the update's edge label does not occur in the query, so
	// evaluation would have been a no-op.
	Skipped uint64 `json:"skipped"`
	// Pooled counts evaluations dispatched to pool workers (the rest ran
	// inline on the coordinator goroutine).
	Pooled uint64 `json:"pooled"`
	// Batches counts parallel fan-out barriers executed.
	Batches uint64 `json:"batches"`
	// BusyNs is total worker-goroutine busy time in nanoseconds.
	BusyNs uint64 `json:"busy_ns"`
	// PerWorker is the number of tasks each worker executed.
	PerWorker []uint64 `json:"per_worker"`
}

// task is one unit handed to a worker: run it, then signal the batch
// barrier.
type task struct {
	run func()
	wg  *sync.WaitGroup
}

// Pool is a persistent worker pool sized once at construction. Workers
// start lazily on the first parallel batch, so a pool behind an engine
// that only ever sees single-relevant-query updates costs nothing.
//
// Run and Close must not be called concurrently with each other; the
// pool matches MultiEngine's single-coordinator discipline.
type Pool struct {
	workers int

	mu      sync.Mutex
	ch      chan task
	started bool
	closed  bool

	// wg is the reusable batch barrier. Reuse across Run calls is safe
	// because Run is never concurrent with itself: Wait returns only when
	// the previous batch's count reaches zero, strictly before the next
	// Add. Owning it here (instead of a per-Run local) keeps the barrier
	// off the heap: a local WaitGroup escapes through the task channel and
	// would cost one allocation per parallel update.
	wg sync.WaitGroup

	batches   atomic.Uint64
	pooled    atomic.Uint64
	busyNs    atomic.Uint64
	perWorker []atomic.Uint64
}

// New builds a pool of the given size; n <= 0 means GOMAXPROCS.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n, perWorker: make([]atomic.Uint64, n)}
}

// Workers returns the configured pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes every task and returns once all have completed — the
// fan-out barrier. The first task runs inline on the caller's goroutine
// (it would otherwise sit idle at the barrier); the rest go to the
// workers. With a single worker, or after Close, all tasks run inline
// in order.
func (p *Pool) Run(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	inline := p.workers <= 1 || len(tasks) == 1
	if !inline {
		p.mu.Lock()
		switch {
		case p.closed:
			inline = true
		case !p.started:
			p.started = true
			p.ch = make(chan task) //tf:unbuffered-ok rendezvous handoff; the batch barrier bounds outstanding tasks
			for i := 0; i < p.workers; i++ {
				//tf:goroutine fanout-worker
				go p.worker(i)
			}
		}
		p.mu.Unlock()
	}
	if inline {
		for _, fn := range tasks {
			fn()
		}
		return
	}
	p.batches.Add(1)
	p.pooled.Add(uint64(len(tasks) - 1))
	p.wg.Add(len(tasks) - 1)
	for _, fn := range tasks[1:] {
		p.ch <- task{run: fn, wg: &p.wg}
	}
	tasks[0]()
	p.wg.Wait()
}

func (p *Pool) worker(i int) {
	for t := range p.ch {
		t0 := time.Now()
		t.run()
		p.busyNs.Add(uint64(time.Since(t0).Nanoseconds()))
		p.perWorker[i].Add(1)
		t.wg.Done()
	}
}

// Close releases the worker goroutines. Idempotent. The pool stays
// usable afterwards: Run degrades to inline execution, so a closed pool
// behaves exactly like workers=1.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.started {
		close(p.ch)
	}
}

// Stats snapshots the pool-owned counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		Workers:   p.workers,
		Pooled:    p.pooled.Load(),
		Batches:   p.batches.Load(),
		BusyNs:    p.busyNs.Load(),
		PerWorker: make([]uint64, len(p.perWorker)),
	}
	for i := range p.perWorker {
		s.PerWorker[i] = p.perWorker[i].Load()
	}
	return s
}

// Emission is one buffered OnMatch delivery.
type Emission struct {
	Positive bool
	Mapping  []graph.VertexID
}

// EmissionBuffer captures OnMatch deliveries produced during the
// parallel window so the coordinator can replay them in registration
// order after the barrier. Each buffer is written by exactly one worker
// per update (the one evaluating its engine) and read by the
// coordinator after the barrier, so no locking is needed.
//
// Mapping storage is recycled across updates: Record copies the
// engine-owned mapping slice (engines reuse it between emissions), and
// Reset keeps the backing arrays for the next update.
//
// For batch evaluation a buffer additionally tags emissions with the
// batch update index that produced them: the worker calls BeginUpdate
// before evaluating each of its updates, and the coordinator replays one
// update's emissions at a time with ReplayMark, merging buffers across
// engines in (update index, registration order). Mark storage is
// recycled exactly like emission storage.
type EmissionBuffer struct {
	ems   []Emission
	n     int
	marks []mark
	nm    int
}

// mark tags the emissions recorded after one BeginUpdate call with the
// batch update index they belong to.
type mark struct {
	idx   int32 // batch update index
	start int32 // position of the mark's first emission
}

// Record appends one emission, copying the mapping.
func (b *EmissionBuffer) Record(positive bool, m []graph.VertexID) {
	if b.n < len(b.ems) {
		e := &b.ems[b.n]
		e.Positive = positive
		e.Mapping = append(e.Mapping[:0], m...)
	} else {
		b.ems = append(b.ems, Emission{
			Positive: positive,
			Mapping:  append([]graph.VertexID(nil), m...),
		})
	}
	b.n++
}

// Replay invokes fn for each recorded emission in record order. The
// mapping slice passed to fn is buffer-owned and reused, matching the
// engine's own OnMatch contract.
func (b *EmissionBuffer) Replay(fn func(positive bool, mapping []graph.VertexID)) {
	for i := 0; i < b.n; i++ {
		fn(b.ems[i].Positive, b.ems[i].Mapping)
	}
}

// BeginUpdate records that every emission from here to the next
// BeginUpdate (or Reset) belongs to batch update idx. Called by the
// worker evaluating the buffer's engine, before each of its updates.
func (b *EmissionBuffer) BeginUpdate(idx int) {
	if b.nm < len(b.marks) {
		b.marks[b.nm] = mark{idx: int32(idx), start: int32(b.n)}
	} else {
		b.marks = append(b.marks, mark{idx: int32(idx), start: int32(b.n)})
	}
	b.nm++
}

// Marks reports the number of BeginUpdate calls since the last Reset.
func (b *EmissionBuffer) Marks() int { return b.nm }

// MarkIndex returns the batch update index the k-th mark was tagged with.
func (b *EmissionBuffer) MarkIndex(k int) int { return int(b.marks[k].idx) }

// ReplayMark invokes fn for the emissions recorded under the k-th
// BeginUpdate mark, in record order, with the same mapping ownership
// rules as Replay.
func (b *EmissionBuffer) ReplayMark(k int, fn func(positive bool, mapping []graph.VertexID)) {
	if k < 0 || k >= b.nm {
		return
	}
	end := b.n
	if k+1 < b.nm {
		end = int(b.marks[k+1].start)
	}
	for i := int(b.marks[k].start); i < end; i++ {
		fn(b.ems[i].Positive, b.ems[i].Mapping)
	}
}

// Reset forgets the recorded emissions and marks but keeps their storage.
func (b *EmissionBuffer) Reset() { b.n, b.nm = 0, 0 }

// Len reports the number of buffered emissions.
func (b *EmissionBuffer) Len() int { return b.n }
