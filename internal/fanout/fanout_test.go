package fanout

import (
	"runtime"
	"sync/atomic"
	"testing"

	"turboflux/internal/graph"
)

func TestPoolRunsAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		var n atomic.Int64
		for batch := 0; batch < 10; batch++ {
			tasks := make([]func(), 0, 7)
			for i := 0; i < 7; i++ {
				tasks = append(tasks, func() { n.Add(1) })
			}
			p.Run(tasks)
		}
		p.Close()
		if got := n.Load(); got != 70 {
			t.Fatalf("workers=%d: ran %d tasks, want 70", workers, got)
		}
	}
}

func TestPoolBarrier(t *testing.T) {
	// Every task's effect must be visible to the caller once Run returns.
	p := New(4)
	defer p.Close()
	out := make([]int, 16)
	for round := 0; round < 50; round++ {
		tasks := make([]func(), len(out))
		for i := range out {
			i := i
			tasks[i] = func() { out[i] = round + 1 }
		}
		p.Run(tasks)
		for i, v := range out {
			if v != round+1 {
				t.Fatalf("round %d: task %d effect not visible after barrier (got %d)", round, i, v)
			}
		}
	}
}

func TestPoolDefaultSize(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestPoolCloseIdempotentAndInlineAfter(t *testing.T) {
	p := New(4)
	ran := false
	p.Run([]func(){func() {}, func() {}}) // start workers
	p.Close()
	p.Close()
	p.Run([]func(){func() { ran = true }, func() {}})
	if !ran {
		t.Fatal("Run after Close did not execute tasks inline")
	}
}

func TestPoolNeverStartedClose(t *testing.T) {
	p := New(4)
	p.Close() // must not panic or leak
	var n int
	p.Run([]func(){func() { n++ }})
	if n != 1 {
		t.Fatalf("inline run after Close ran %d tasks, want 1", n)
	}
}

func TestPoolStats(t *testing.T) {
	p := New(2)
	defer p.Close()
	tasks := []func(){func() {}, func() {}, func() {}}
	p.Run(tasks)
	p.Run(tasks)
	s := p.Stats()
	if s.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", s.Workers)
	}
	if s.Batches != 2 {
		t.Fatalf("Batches = %d, want 2", s.Batches)
	}
	// One task per batch runs inline on the caller.
	if s.Pooled != 4 {
		t.Fatalf("Pooled = %d, want 4", s.Pooled)
	}
	var perWorker uint64
	for _, c := range s.PerWorker {
		perWorker += c
	}
	if perWorker != s.Pooled {
		t.Fatalf("sum(PerWorker) = %d, want Pooled = %d", perWorker, s.Pooled)
	}
}

func TestEmissionBufferRecordReplayReset(t *testing.T) {
	var b EmissionBuffer
	scratch := []graph.VertexID{1, 2, 3}
	b.Record(true, scratch)
	scratch[0] = 99 // engine reuses its mapping slice; the buffer must have copied
	b.Record(false, scratch[:2])
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	type em struct {
		pos bool
		m   []graph.VertexID
	}
	var got []em
	b.Replay(func(p bool, m []graph.VertexID) {
		got = append(got, em{p, append([]graph.VertexID(nil), m...)})
	})
	if len(got) != 2 || !got[0].pos || got[1].pos {
		t.Fatalf("replay signs wrong: %+v", got)
	}
	if got[0].m[0] != 1 || got[0].m[1] != 2 || got[0].m[2] != 3 {
		t.Fatalf("first mapping not copied at record time: %v", got[0].m)
	}
	if len(got[1].m) != 2 || got[1].m[0] != 99 {
		t.Fatalf("second mapping wrong: %v", got[1].m)
	}

	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", b.Len())
	}
	// Storage is recycled: recording again must not grow the backing slice.
	b.Record(true, []graph.VertexID{7})
	var n int
	b.Replay(func(p bool, m []graph.VertexID) {
		n++
		if len(m) != 1 || m[0] != 7 {
			t.Fatalf("recycled record wrong: %v", m)
		}
	})
	if n != 1 {
		t.Fatalf("replay after reset delivered %d emissions, want 1", n)
	}
}
