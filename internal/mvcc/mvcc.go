// Package mvcc is a multi-version edge store providing snapshot-isolated
// reads over a streaming graph — the extension the paper names as future
// work (Section 2.2: continuous matching under snapshot isolation "if we
// adopt multiversion concurrency control").
//
// The store accepts committed update batches from a single writer and
// serves two kinds of readers concurrently:
//
//   - point-in-time readers materialize the graph as of any retained
//     version (Snapshot / Materialize), e.g. to answer "which matches
//     existed at commit 42?" with the static matcher;
//   - streaming readers (a TurboFlux engine) catch up incrementally with
//     Since(v), replaying exactly the committed operations after their
//     last seen version.
//
// Version chains are per-edge intervals [Begin, End); End == 0 means the
// edge is live. Truncate garbage-collects versions no reader needs,
// mirroring the paper's HANA-style hybrid GC citation [19] in spirit.
package mvcc

import (
	"fmt"
	"sync"

	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

// Version is a commit timestamp. Version 0 is the empty store.
type Version uint64

// interval is one lifetime of an edge: visible in [Begin, End), End == 0
// while the edge is live.
type interval struct {
	Begin Version
	End   Version
}

type vertexRec struct {
	labels []graph.Label
	since  Version
}

// Store is the multi-version graph store. A single writer calls Commit;
// any number of readers may call the read methods concurrently.
type Store struct {
	mu    sync.RWMutex
	clock Version
	verts map[graph.VertexID]vertexRec
	edges map[graph.Edge][]interval
	// log holds committed updates per version (index 0 = version 1), for
	// incremental reader catch-up; truncated holds how many versions were
	// garbage-collected off the front.
	log       [][]stream.Update
	truncated Version
}

// NewStore returns an empty store at version 0.
func NewStore() *Store {
	return &Store{
		verts: make(map[graph.VertexID]vertexRec),
		edges: make(map[graph.Edge][]interval),
	}
}

// Current returns the latest committed version.
func (s *Store) Current() Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clock
}

// Commit atomically applies one batch of updates and returns the new
// version. Duplicate inserts and deletes of absent edges are dropped from
// the committed batch (they would be no-ops for every reader). An empty
// effective batch still advances the clock so writers can rely on one
// version per call.
func (s *Store) Commit(ups []stream.Update) Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.clock + 1
	var effective []stream.Update
	for _, u := range ups {
		switch u.Op {
		case stream.OpVertex:
			if _, ok := s.verts[u.Vertex]; ok {
				continue
			}
			s.verts[u.Vertex] = vertexRec{
				labels: append([]graph.Label(nil), u.Labels...),
				since:  v,
			}
			effective = append(effective, u)
		case stream.OpInsert:
			if s.liveLocked(u.Edge) {
				continue
			}
			s.ensureVertexLocked(u.Edge.From, v)
			s.ensureVertexLocked(u.Edge.To, v)
			s.edges[u.Edge] = append(s.edges[u.Edge], interval{Begin: v})
			effective = append(effective, u)
		case stream.OpDelete:
			ivs := s.edges[u.Edge]
			if len(ivs) == 0 || ivs[len(ivs)-1].End != 0 {
				continue
			}
			ivs[len(ivs)-1].End = v
			effective = append(effective, u)
		}
	}
	s.clock = v
	s.log = append(s.log, effective)
	return v
}

func (s *Store) liveLocked(e graph.Edge) bool {
	ivs := s.edges[e]
	return len(ivs) > 0 && ivs[len(ivs)-1].End == 0
}

func (s *Store) ensureVertexLocked(id graph.VertexID, v Version) {
	if _, ok := s.verts[id]; !ok {
		s.verts[id] = vertexRec{since: v}
	}
}

// HasEdgeAt reports whether e is visible at version v.
func (s *Store) HasEdgeAt(e graph.Edge, v Version) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, iv := range s.edges[e] {
		if iv.Begin <= v && (iv.End == 0 || v < iv.End) {
			return true
		}
	}
	return false
}

// Materialize builds the graph as of version v. It fails when v is newer
// than the current version or already truncated below the vertex/edge
// retention horizon.
func (s *Store) Materialize(v Version) (*graph.Graph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v > s.clock {
		return nil, fmt.Errorf("mvcc: version %d not committed yet (current %d)", v, s.clock)
	}
	if v < s.truncated {
		return nil, fmt.Errorf("mvcc: version %d truncated (horizon %d)", v, s.truncated)
	}
	g := graph.New()
	for id, rec := range s.verts {
		if rec.since <= v {
			g.EnsureVertex(id, rec.labels...)
		}
	}
	for e, ivs := range s.edges {
		for _, iv := range ivs {
			if iv.Begin <= v && (iv.End == 0 || v < iv.End) {
				g.InsertEdge(e.From, e.Label, e.To)
				break
			}
		}
	}
	return g, nil
}

// Since returns the committed updates of versions (after, current], in
// commit order, for streaming readers catching up. It fails when part of
// that range was truncated.
func (s *Store) Since(after Version) ([]stream.Update, Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if after < s.truncated {
		return nil, 0, fmt.Errorf("mvcc: version %d truncated (horizon %d)", after, s.truncated)
	}
	var out []stream.Update
	for v := after + 1; v <= s.clock; v++ {
		out = append(out, s.log[v-1-s.truncated]...)
	}
	return out, s.clock, nil
}

// Truncate garbage-collects state no reader at or above `keep` needs:
// closed version intervals that ended at or before keep, and the update
// log below keep. Snapshots older than keep become unavailable.
func (s *Store) Truncate(keep Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keep > s.clock {
		keep = s.clock
	}
	if keep <= s.truncated {
		return
	}
	for e, ivs := range s.edges {
		w := 0
		for _, iv := range ivs {
			if iv.End != 0 && iv.End <= keep {
				continue
			}
			ivs[w] = iv
			w++
		}
		if w == 0 {
			delete(s.edges, e)
		} else {
			s.edges[e] = ivs[:w]
		}
	}
	s.log = append([][]stream.Update(nil), s.log[keep-s.truncated:]...)
	s.truncated = keep
}

// Horizon returns the oldest version still materializable.
func (s *Store) Horizon() Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.truncated
}

// Stats summarizes store occupancy.
type Stats struct {
	Current   Version
	Horizon   Version
	Vertices  int
	EdgeKeys  int
	Intervals int
}

// Stats returns a snapshot of store occupancy.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Current:  s.clock,
		Horizon:  s.truncated,
		Vertices: len(s.verts),
		EdgeKeys: len(s.edges),
	}
	for _, ivs := range s.edges {
		st.Intervals += len(ivs)
	}
	return st
}
