package mvcc

import (
	"sync"
	"testing"

	"turboflux/internal/core"
	"turboflux/internal/graph"
	"turboflux/internal/matcher"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

func TestCommitVisibility(t *testing.T) {
	s := NewStore()
	e := graph.Edge{From: 1, Label: 0, To: 2}
	v1 := s.Commit([]stream.Update{stream.Insert(1, 0, 2)})
	if v1 != 1 || s.Current() != 1 {
		t.Fatalf("v1 = %d, current = %d", v1, s.Current())
	}
	v2 := s.Commit([]stream.Update{stream.Delete(1, 0, 2)})
	if s.HasEdgeAt(e, 0) {
		t.Fatal("edge visible before insert")
	}
	if !s.HasEdgeAt(e, v1) {
		t.Fatal("edge invisible at insert version")
	}
	if s.HasEdgeAt(e, v2) {
		t.Fatal("edge visible after delete")
	}
	// Reinsert opens a second interval.
	v3 := s.Commit([]stream.Update{stream.Insert(1, 0, 2)})
	if !s.HasEdgeAt(e, v3) || s.HasEdgeAt(e, v2) {
		t.Fatal("second interval wrong")
	}
	st := s.Stats()
	if st.Intervals != 2 || st.EdgeKeys != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCommitDropsNoOps(t *testing.T) {
	s := NewStore()
	s.Commit([]stream.Update{stream.Insert(1, 0, 2)})
	v := s.Commit([]stream.Update{
		stream.Insert(1, 0, 2), // duplicate
		stream.Delete(3, 0, 4), // absent
	})
	ups, cur, err := s.Since(v - 1)
	if err != nil {
		t.Fatal(err)
	}
	if cur != v || len(ups) != 0 {
		t.Fatalf("no-op batch produced %d log records", len(ups))
	}
}

func TestMaterialize(t *testing.T) {
	s := NewStore()
	s.Commit([]stream.Update{
		stream.DeclareVertex(1, 7),
		stream.Insert(1, 0, 2),
	})
	s.Commit([]stream.Update{stream.Insert(2, 0, 3)})
	s.Commit([]stream.Update{stream.Delete(1, 0, 2)})

	g1, err := s.Materialize(1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != 1 || !g1.HasEdge(1, 0, 2) || !g1.HasLabel(1, 7) {
		t.Fatal("version 1 wrong")
	}
	if g1.HasVertex(3) {
		t.Fatal("vertex 3 must not exist at version 1")
	}
	g2, _ := s.Materialize(2)
	if g2.NumEdges() != 2 {
		t.Fatal("version 2 wrong")
	}
	g3, _ := s.Materialize(3)
	if g3.NumEdges() != 1 || g3.HasEdge(1, 0, 2) {
		t.Fatal("version 3 wrong")
	}
	if _, err := s.Materialize(9); err == nil {
		t.Fatal("future version must fail")
	}
}

func TestSinceAndEngineCatchUp(t *testing.T) {
	// A TurboFlux engine fed through Since must report the same totals as
	// one fed the updates directly.
	s := NewStore()
	q := query.NewGraph(3)
	_ = q.AddEdge(0, 1, 1)
	_ = q.AddEdge(1, 2, 2)

	direct, err := core.New(graph.New(), q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := core.New(graph.New(), q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var seen Version
	batches := [][]stream.Update{
		{stream.Insert(1, 1, 2), stream.Insert(2, 2, 3)},
		{stream.Insert(2, 2, 4)},
		{stream.Delete(1, 1, 2)},
		{stream.Insert(5, 1, 2)},
	}
	for _, b := range batches {
		s.Commit(b)
		for _, u := range b {
			if _, err := direct.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
		// Streaming reader catches up from its last version.
		ups, cur, err := s.Since(seen)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ups {
			if _, err := streaming.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
		seen = cur
	}
	if direct.PositiveCount() != streaming.PositiveCount() ||
		direct.NegativeCount() != streaming.NegativeCount() {
		t.Fatalf("direct +%d/-%d, streaming +%d/-%d",
			direct.PositiveCount(), direct.NegativeCount(),
			streaming.PositiveCount(), streaming.NegativeCount())
	}
	if direct.PositiveCount() == 0 {
		t.Fatal("fixture produced no matches")
	}
}

func TestSnapshotMatchingAcrossVersions(t *testing.T) {
	// "How many matches existed at version v?" answered per version with
	// the static matcher over materialized snapshots.
	s := NewStore()
	q := query.NewGraph(2)
	_ = q.AddEdge(0, 0, 1)
	s.Commit([]stream.Update{stream.Insert(1, 0, 2)})
	s.Commit([]stream.Update{stream.Insert(3, 0, 4)})
	s.Commit([]stream.Update{stream.Delete(1, 0, 2)})
	want := []int64{0, 1, 2, 1}
	for v := Version(0); v <= 3; v++ {
		g, err := s.Materialize(v)
		if err != nil {
			t.Fatal(err)
		}
		n, err := matcher.Count(g, q, false)
		if err != nil {
			t.Fatal(err)
		}
		if n != want[v] {
			t.Fatalf("version %d: %d matches, want %d", v, n, want[v])
		}
	}
}

func TestTruncate(t *testing.T) {
	s := NewStore()
	s.Commit([]stream.Update{stream.Insert(1, 0, 2)})
	s.Commit([]stream.Update{stream.Delete(1, 0, 2)})
	s.Commit([]stream.Update{stream.Insert(3, 0, 4)})
	s.Truncate(2)
	if s.Horizon() != 2 {
		t.Fatalf("horizon = %d", s.Horizon())
	}
	if _, err := s.Materialize(1); err == nil {
		t.Fatal("truncated version must fail")
	}
	if _, _, err := s.Since(1); err == nil {
		t.Fatal("Since below horizon must fail")
	}
	// Live data intact.
	g, err := s.Materialize(3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(3, 0, 4) || g.HasEdge(1, 0, 2) {
		t.Fatal("live state damaged by truncate")
	}
	// Closed interval of (1,0,2) is gone.
	if s.Stats().EdgeKeys != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// Truncating backwards or beyond clock is clamped/no-op.
	s.Truncate(1)
	s.Truncate(99)
	if s.Horizon() != 3 {
		t.Fatalf("horizon after clamp = %d", s.Horizon())
	}
}

// TestConcurrentReadersAndWriter exercises snapshot isolation under the
// race detector: one writer commits while readers materialize and verify
// invariants of whatever version they observe.
func TestConcurrentReadersAndWriter(t *testing.T) {
	s := NewStore()
	const commits = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			v := graph.VertexID(i % 20)
			s.Commit([]stream.Update{
				stream.Insert(v, 0, v+1),
				stream.Delete(graph.VertexID((i+7)%20), 0, graph.VertexID((i+7)%20)+1),
			})
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cur := s.Current()
				g, err := s.Materialize(cur)
				if err != nil {
					t.Error(err)
					return
				}
				// Invariant: a materialized snapshot is internally
				// consistent — every edge endpoint exists.
				g.ForEachEdge(func(e graph.Edge) {
					if !g.HasVertex(e.From) || !g.HasVertex(e.To) {
						t.Errorf("dangling edge %v at version %d", e, cur)
					}
				})
			}
		}()
	}
	wg.Wait()
	if s.Current() != commits {
		t.Fatalf("clock = %d, want %d", s.Current(), commits)
	}
}
