package graphflow

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/matcher"
	"turboflux/internal/naive"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func randQuery(rng *rand.Rand, n, extra int) *query.Graph {
	q := query.NewGraph(n)
	for u := 0; u < n; u++ {
		if rng.Intn(3) > 0 {
			q.SetLabels(graph.VertexID(u), graph.Label(rng.Intn(3)))
		}
	}
	for u := 1; u < n; u++ {
		p := graph.VertexID(rng.Intn(u))
		l := graph.Label(rng.Intn(3))
		if rng.Intn(2) == 0 {
			_ = q.AddEdge(p, l, graph.VertexID(u))
		} else {
			_ = q.AddEdge(graph.VertexID(u), l, p)
		}
	}
	for i := 0; i < extra; i++ {
		_ = q.AddEdge(graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(3)), graph.VertexID(rng.Intn(n)))
	}
	return q
}

// TestDifferentialVsNaive replays random mixed streams through Graphflow
// and the naive oracle, comparing per-update positive and negative sets.
func TestDifferentialVsNaive(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		injective := seed%2 == 1
		q := randQuery(rng, 3+rng.Intn(3), rng.Intn(3))
		const nv = 10
		g0 := graph.New()
		for v := 0; v < nv; v++ {
			_ = g0.AddVertex(graph.VertexID(v), graph.Label(rng.Intn(3)))
		}
		for i := 0; i < 10; i++ {
			g0.InsertEdge(graph.VertexID(rng.Intn(nv)), graph.Label(rng.Intn(3)), graph.VertexID(rng.Intn(nv)))
		}
		pos, neg := map[string]bool{}, map[string]bool{}
		eng, err := New(g0.Clone(), q, Options{Injective: injective, OnMatch: func(positive bool, m []graph.VertexID) {
			k := matcher.Key(m)
			if positive {
				if pos[k] {
					t.Fatalf("seed %d: duplicate positive %s", seed, k)
				}
				pos[k] = true
			} else {
				if neg[k] {
					t.Fatalf("seed %d: duplicate negative %s", seed, k)
				}
				neg[k] = true
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := naive.New(g0.Clone(), q, injective)
		if err != nil {
			t.Fatal(err)
		}
		live := map[graph.Edge]bool{}
		g0.ForEachEdge(func(e graph.Edge) { live[e] = true })
		for step := 0; step < 60; step++ {
			var up stream.Update
			if len(live) > 0 && rng.Intn(3) == 0 {
				es := make([]graph.Edge, 0, len(live))
				for e := range live {
					es = append(es, e)
				}
				sort.Slice(es, func(i, j int) bool {
					return es[i].From < es[j].From ||
						(es[i].From == es[j].From && (es[i].Label < es[j].Label ||
							(es[i].Label == es[j].Label && es[i].To < es[j].To)))
				})
				e := es[rng.Intn(len(es))]
				up = stream.Delete(e.From, e.Label, e.To)
				delete(live, e)
			} else {
				e := graph.Edge{
					From:  graph.VertexID(rng.Intn(nv)),
					Label: graph.Label(rng.Intn(3)),
					To:    graph.VertexID(rng.Intn(nv)),
				}
				up = stream.Insert(e.From, e.Label, e.To)
				live[e] = true
			}
			pos, neg = map[string]bool{}, map[string]bool{}
			if _, err := eng.Apply(up); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			oPos, oNeg, err := oracle.Apply(up)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sortedKeys(pos), sortedKeys(oPos); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d (%v %v): positives\n got %v\nwant %v\nquery %v",
					seed, step, up.Op, up.Edge, got, want, q)
			}
			if got, want := sortedKeys(neg), sortedKeys(oNeg); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d (%v %v): negatives\n got %v\nwant %v\nquery %v",
					seed, step, up.Op, up.Edge, got, want, q)
			}
		}
	}
}

func TestStatelessAndCounters(t *testing.T) {
	q := query.NewGraph(2)
	_ = q.AddEdge(0, 1, 1)
	e, err := New(graph.New(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.IntermediateSizeBytes() != 0 {
		t.Fatal("Graphflow must report zero intermediate state")
	}
	if n, _ := e.InsertEdge(1, 1, 2); n != 1 {
		t.Fatalf("insert n=%d", n)
	}
	if n, _ := e.InsertEdge(1, 1, 2); n != 0 {
		t.Fatalf("duplicate insert n=%d", n)
	}
	if n, _ := e.DeleteEdge(1, 1, 2); n != 1 {
		t.Fatalf("delete n=%d", n)
	}
	if n, _ := e.DeleteEdge(1, 1, 2); n != 0 {
		t.Fatalf("double delete n=%d", n)
	}
	if e.PositiveCount() != 1 || e.NegativeCount() != 1 {
		t.Fatalf("counters pos=%d neg=%d", e.PositiveCount(), e.NegativeCount())
	}
	if _, err := e.Apply(stream.DeclareVertex(9, 3)); err != nil {
		t.Fatal(err)
	}
	if !e.Graph().HasVertex(9) {
		t.Fatal("vertex declaration ignored")
	}
	if _, err := e.Apply(stream.Update{Op: 99}); err == nil {
		t.Fatal("unknown op must error")
	}
	if _, err := New(graph.New(), query.NewGraph(0), Options{}); err == nil {
		t.Fatal("invalid query must error")
	}
}
