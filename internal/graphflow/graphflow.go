// Package graphflow implements the Graphflow baseline (Kankanamge et al.,
// SIGMOD 2017; Section 2.2 of the TurboFlux paper): stateless delta
// evaluation with a worst-case-optimal-style one-vertex-at-a-time join.
//
// For every updated edge (v, v') and every query edge (u, u') it matches,
// the engine evaluates subgraph matching starting from the partial binding
// {(u, v), (u', v')}. No intermediate results are maintained, so each
// update pays the full join cost — the behaviour the paper's Figure 9
// shows degrading with dataset size.
//
// Exactness for repeated relations uses the standard delta rule: when the
// trigger is query edge i, query edges ordered before i must not map onto
// the updated data edge, which makes each positive/negative match appear
// under exactly one trigger without set differences.
package graphflow

import (
	"errors"
	"fmt"

	"turboflux/internal/graph"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

// ErrWorkBudget reports that an update exceeded Options.WorkBudget.
var ErrWorkBudget = errors.New("graphflow: per-update work budget exceeded")

// MatchFunc receives one match; the mapping slice is reused across calls.
type MatchFunc func(positive bool, m []graph.VertexID)

// Options configures a Graphflow engine.
type Options struct {
	// Injective selects subgraph isomorphism.
	Injective bool
	// OnMatch, when non-nil, receives every match.
	OnMatch MatchFunc
	// WorkBudget caps extension steps per update (0 = unlimited); exceeding
	// it aborts the update with ErrWorkBudget (the harness's censoring
	// hook for non-selective queries).
	WorkBudget int64
}

// Engine is a Graphflow-style continuous matcher. It owns its data graph.
type Engine struct {
	g         *graph.Graph
	q         *query.Graph
	injective bool
	onMatch   MatchFunc

	// orders[i] is the vertex extension order used when query edge i is
	// the trigger: trigger endpoints first, then a connected expansion.
	orders [][]extStep

	workBudget int64

	m        []graph.VertexID
	used     map[graph.VertexID]bool
	updEdge  graph.Edge
	trigger  int
	positive bool
	matches  int64
	opWork   int64
	aborted  bool

	posTotal, negTotal int64
}

// extStep describes one extension step: bind query vertex U using query
// edge Via (whose other endpoint is already bound).
type extStep struct {
	U   graph.VertexID
	Via int
}

// New builds a Graphflow engine over the initial graph g0. Initial matches
// are not enumerated (Graphflow evaluates deltas only; the paper measures
// join time on the update stream). g0 must not be mutated by the caller.
func New(g0 *graph.Graph, q *query.Graph, opt Options) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		g:          g0,
		q:          q,
		injective:  opt.Injective,
		onMatch:    opt.OnMatch,
		workBudget: opt.WorkBudget,
		m:          make([]graph.VertexID, q.NumVertices()),
	}
	for i := range e.m {
		e.m[i] = graph.NoVertex
	}
	if opt.Injective {
		e.used = make(map[graph.VertexID]bool)
	}
	e.orders = make([][]extStep, q.NumEdges())
	for i := range e.orders {
		e.orders[i] = extensionOrder(q, i)
	}
	return e, nil
}

// extensionOrder returns a connected extension order for trigger edge ti.
func extensionOrder(q *query.Graph, ti int) []extStep {
	te := q.Edge(ti)
	bound := make([]bool, q.NumVertices())
	bound[te.From] = true
	bound[te.To] = true
	var steps []extStep
	for {
		found := false
		for ei, qe := range q.Edges() {
			var next graph.VertexID
			switch {
			case bound[qe.From] && !bound[qe.To]:
				next = qe.To
			case bound[qe.To] && !bound[qe.From]:
				next = qe.From
			default:
				continue
			}
			bound[next] = true
			steps = append(steps, extStep{U: next, Via: ei})
			found = true
			break
		}
		if !found {
			return steps
		}
	}
}

// Apply processes one update.
func (e *Engine) Apply(u stream.Update) (int64, error) {
	switch u.Op {
	case stream.OpInsert:
		return e.InsertEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpDelete:
		return e.DeleteEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case stream.OpVertex:
		if !e.g.HasVertex(u.Vertex) {
			e.g.EnsureVertex(u.Vertex, u.Labels...)
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("graphflow: unknown op %d", u.Op)
	}
}

// InsertEdge inserts the edge and reports positive matches.
func (e *Engine) InsertEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	if !e.g.InsertEdge(v, l, v2) {
		return 0, nil
	}
	n := e.evaluate(graph.Edge{From: v, Label: l, To: v2}, true)
	if e.aborted {
		return n, ErrWorkBudget
	}
	return n, nil
}

// DeleteEdge reports negative matches (evaluated while the edge is still
// present) and then deletes the edge.
func (e *Engine) DeleteEdge(v graph.VertexID, l graph.Label, v2 graph.VertexID) (int64, error) {
	if !e.g.HasEdge(v, l, v2) {
		return 0, nil
	}
	n := e.evaluate(graph.Edge{From: v, Label: l, To: v2}, false)
	e.g.DeleteEdge(v, l, v2)
	if e.aborted {
		return n, ErrWorkBudget
	}
	return n, nil
}

// charge consumes one work unit; it reports whether evaluation continues.
func (e *Engine) charge() bool {
	if e.aborted {
		return false
	}
	if e.workBudget <= 0 {
		return true
	}
	e.opWork++
	if e.opWork > e.workBudget {
		e.aborted = true
		return false
	}
	return true
}

func (e *Engine) evaluate(ed graph.Edge, positive bool) int64 {
	e.updEdge = ed
	e.positive = positive
	e.matches = 0
	e.opWork = 0
	e.aborted = false
	for ti, qe := range e.q.Edges() {
		if qe.Label != ed.Label {
			continue
		}
		if !e.g.HasAllLabels(ed.From, e.q.Labels(qe.From)) ||
			!e.g.HasAllLabels(ed.To, e.q.Labels(qe.To)) {
			continue
		}
		if qe.From == qe.To && ed.From != ed.To {
			continue
		}
		if e.injective && qe.From != qe.To && ed.From == ed.To {
			continue
		}
		e.trigger = ti
		e.bind(qe.From, ed.From)
		if qe.To != qe.From {
			e.bind(qe.To, ed.To)
		}
		if e.checkBoundEdges(qe.From) && (qe.To == qe.From || e.checkBoundEdges(qe.To)) {
			e.extend(0)
		}
		if qe.To != qe.From {
			e.unbind(qe.To)
		}
		e.unbind(qe.From)
	}
	n := e.matches
	if positive {
		e.posTotal += n
	} else {
		e.negTotal += n
	}
	return n
}

func (e *Engine) bind(u, v graph.VertexID) {
	e.m[u] = v
	if e.used != nil {
		e.used[v] = true
	}
}

func (e *Engine) unbind(u graph.VertexID) {
	if e.used != nil && e.m[u] != graph.NoVertex {
		delete(e.used, e.m[u])
	}
	e.m[u] = graph.NoVertex
}

// extend binds the remaining query vertices one at a time (generic-join
// style: candidates from one bound neighbor's adjacency, validated against
// every other bound neighbor).
func (e *Engine) extend(step int) {
	if !e.charge() {
		return
	}
	steps := e.orders[e.trigger]
	if step == len(steps) {
		e.matches++
		if e.onMatch != nil {
			e.onMatch(e.positive, e.m)
		}
		return
	}
	st := steps[step]
	via := e.q.Edge(st.Via)
	var cands []graph.VertexID
	if via.To == st.U {
		cands = e.g.OutNeighbors(e.m[via.From], via.Label)
	} else {
		cands = e.g.InNeighbors(e.m[via.To], via.Label)
	}
	labels := e.q.Labels(st.U)
	for _, v := range cands {
		if e.aborted {
			return
		}
		if e.injective && e.used[v] {
			continue
		}
		if !e.g.HasAllLabels(v, labels) {
			continue
		}
		e.m[st.U] = v
		if e.used != nil {
			e.used[v] = true
		}
		if e.checkBoundEdges(st.U) {
			e.extend(step + 1)
		}
		if e.used != nil {
			delete(e.used, v)
		}
		e.m[st.U] = graph.NoVertex
	}
}

// checkBoundEdges validates every query edge incident to u whose other
// endpoint is bound: the data edge must exist, and the delta rule must
// hold — query edges ranked before the trigger must not map onto the
// updated data edge (for insertions they see the pre-update graph; for
// deletions the rule is mirrored so each match has exactly one trigger).
func (e *Engine) checkBoundEdges(u graph.VertexID) bool {
	for _, ei := range e.q.IncidentEdges(u) {
		qe := e.q.Edge(ei)
		mf, mt := e.m[qe.From], e.m[qe.To]
		if mf == graph.NoVertex || mt == graph.NoVertex {
			continue
		}
		if !e.g.HasEdge(mf, qe.Label, mt) {
			return false
		}
		if ei != e.trigger && ei < e.trigger &&
			mf == e.updEdge.From && mt == e.updEdge.To && qe.Label == e.updEdge.Label {
			return false // owned by the earlier trigger
		}
	}
	return true
}

// PositiveCount returns total positives reported.
func (e *Engine) PositiveCount() int64 { return e.posTotal }

// NegativeCount returns total negatives reported.
func (e *Engine) NegativeCount() int64 { return e.negTotal }

// IntermediateSizeBytes is always zero: Graphflow maintains no state.
func (e *Engine) IntermediateSizeBytes() int64 { return 0 }

// Graph returns the engine's data graph (for assertions in tests).
func (e *Engine) Graph() *graph.Graph { return e.g }
