package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"turboflux"
	"turboflux/internal/replica"
)

// errServerClosed is returned to connection goroutines whose requests race
// the actor's shutdown.
var errServerClosed = errors.New("server: shut down")

// defaultQueueDepth is the per-subscriber event queue capacity when
// Options.QueueDepth is zero.
const defaultQueueDepth = 256

// Options configures a Server.
type Options struct {
	// QueueDepth is the per-subscriber bounded event queue capacity
	// (default 256). Together with Slow it defines the slow-consumer
	// behavior.
	QueueDepth int
	// Slow selects what happens when a subscriber's queue is full:
	// PolicyBlock (default, lossless backpressure), PolicyDrop or
	// PolicyEvict.
	Slow SlowPolicy

	// DataDir, when non-empty, backs the server with a durable store
	// (turboflux.OpenDurableMulti): every accepted update is journaled to
	// the write-ahead log before it is evaluated or acknowledged, and a
	// restarted server recovers the graph from disk.
	DataDir string
	// Fsync is the durable-mode WAL sync policy ("always", "interval",
	// "none"); ignored without DataDir.
	Fsync string

	// VertexLabels / EdgeLabels, when non-nil, seed the label
	// dictionaries that REGISTER patterns and LABEL lookups resolve
	// through. In durable mode they are merged with the recovered
	// dictionaries exactly as for OpenDurable.
	VertexLabels, EdgeLabels *turboflux.Dict

	// Bootstrap is an optional initial-graph history applied (and, in
	// durable mode, journaled) when the store is fresh.
	Bootstrap []turboflux.Update

	// FanOutWorkers sizes the engine's multi-query fan-out worker pool
	// (default GOMAXPROCS; 1 forces the sequential evaluation path). The
	// actor still serializes updates — the pool parallelizes the
	// per-update evaluation across registered queries.
	FanOutWorkers int

	// Follow, when non-empty, starts the server as a read-only follower
	// replicating from the leader at this address (requires DataDir). The
	// follower journals every replicated update into its own WAL, serves
	// queries and subscriptions locally, and rejects writes until PROMOTE.
	Follow string
	// ReplFeedDepth is the per-follower live-chunk queue capacity on a
	// leader (default 256). A follower that falls further behind than this
	// many queued chunks is disconnected (feed overrun) and must
	// reconnect to catch up from its applied LSN.
	ReplFeedDepth int
	// ReplOptions tunes the follower's replication-link timing (dial and
	// read timeouts, reconnect backoff).
	ReplOptions replica.Options
}

// Server is the TurboFlux network server: one engine-owner goroutine (the
// actor) serializing all mutation and evaluation of a shared MultiEngine,
// an acceptor, and one reader goroutine plus one pump goroutine per
// subscription on every connection. See the package comment for the wire
// protocol and DESIGN.md §10 for the architecture.
type Server struct {
	opt   Options
	actor *actor
	host  engineHost

	ln   net.Listener
	link *replica.Link // follower mode; nil on a born leader

	mu      sync.Mutex
	conns   map[*conn]struct{}
	connSeq uint64

	connWG    sync.WaitGroup
	connCount atomic.Int64

	stopping  chan struct{}
	stopOnce  sync.Once
	actorOnce sync.Once
}

// New builds a server over a fresh in-memory engine, or over the durable
// store in opt.DataDir. The actor starts immediately; call Shutdown to
// release it even if Serve is never reached.
func New(opt Options) (*Server, error) {
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = defaultQueueDepth
	}
	if opt.Follow != "" && opt.DataDir == "" {
		return nil, errors.New("server: Follow requires DataDir (followers journal the replicated log)")
	}
	var (
		host    engineHost
		durable *turboflux.DurableMultiEngine
		vdict   = opt.VertexLabels
		edict   = opt.EdgeLabels
	)
	if opt.DataDir != "" {
		d, err := turboflux.OpenDurableMulti(opt.DataDir, turboflux.DurableMultiOptions{
			Fsync:         opt.Fsync,
			VertexLabels:  opt.VertexLabels,
			EdgeLabels:    opt.EdgeLabels,
			Bootstrap:     opt.Bootstrap,
			FanOutWorkers: opt.FanOutWorkers,
		})
		if err != nil {
			return nil, err
		}
		durable = d
		host = d
		vdict = d.VertexLabels() //tf:actor-ok construction precedes actor start
		edict = d.EdgeLabels()   //tf:actor-ok construction precedes actor start
	} else {
		if vdict == nil {
			vdict = turboflux.NewDict()
		}
		if edict == nil {
			edict = turboflux.NewDict()
		}
		g := turboflux.NewGraph()
		for _, u := range opt.Bootstrap {
			u.Apply(g)
		}
		m := turboflux.NewMultiEngine(g)
		m.SetFanOutWorkers(opt.FanOutWorkers) //tf:actor-ok construction precedes actor start
		host = m
	}
	s := &Server{
		opt:      opt,
		host:     host,
		conns:    make(map[*conn]struct{}),
		stopping: make(chan struct{}),
	}
	s.actor = newActor(host, durable, vdict, edict, opt.Slow, opt.QueueDepth, &s.connCount)
	if opt.ReplFeedDepth > 0 {
		s.actor.feedDepth = opt.ReplFeedDepth
	}
	if opt.Follow != "" {
		s.actor.role = roleFollower
		s.actor.leaderAddr = opt.Follow
	}
	if durable != nil {
		// The append tap fires on the actor goroutine (appends happen only
		// inside apply handlers), so follower feeds stay actor-confined.
		durable.Store().SetTap(s.actor.shipFrames) //tf:actor-ok construction precedes actor start
	}
	//tf:goroutine engine-owner-actor
	go s.actor.run()
	if opt.Follow != "" {
		s.link = replica.NewLink(opt.Follow, s.linkCallbacks(), opt.ReplOptions)
		s.link.Start()
	}
	return s, nil
}

// linkCallbacks wires the replication link to the engine-owner actor, so
// snapshot seeding and frame application stay on the actor goroutine
// (actor-confinement holds for replicated state too).
func (s *Server) linkCallbacks() replica.Callbacks {
	return replica.Callbacks{
		Applied: func() uint64 {
			resp, err := s.actor.call(request{kind: reqReplLSN})
			if err != nil {
				return 0
			}
			return resp.seq
		},
		Seed: func(lsn uint64, data []byte) (uint64, error) {
			resp, err := s.actor.call(request{kind: reqReplSeed, data: data})
			if err != nil {
				return 0, err
			}
			return resp.seq, resp.err
		},
		Apply: func(first uint64, count int, frames []byte) (uint64, error) {
			resp, err := s.actor.call(request{kind: reqReplFrames, lsn: first, count: count, data: frames})
			if err != nil {
				return 0, err
			}
			return resp.seq, resp.err
		},
		Status: func(st replica.State) {
			s.actor.send(request{kind: reqReplStatus, state: st}) //tf:unchecked-ok best-effort status report
		},
	}
}

// stopLink stops the follower's replication link, if any. Idempotent and
// safe to call concurrently (PROMOTE races Shutdown); it blocks until the
// link goroutine has exited, so no replication callback runs afterwards.
func (s *Server) stopLink() {
	if s.link != nil {
		s.link.Stop()
	}
}

// Recovery returns what a durable-mode server found on disk; the zero
// value in memory-only mode.
func (s *Server) Recovery() turboflux.RecoveryInfo {
	if s.actor.durable == nil {
		return turboflux.RecoveryInfo{}
	}
	return s.actor.durable.Recovery() //tf:actor-ok recovery info is immutable after open
}

// Listen binds the TCP address ("host:port"; ":0" picks a free port).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listener address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown. It returns nil on graceful
// shutdown, or the first fatal accept error.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopping:
				return nil
			default:
				return fmt.Errorf("server: accept: %w", err)
			}
		}
		s.mu.Lock()
		select {
		case <-s.stopping:
			s.mu.Unlock()
			nc.Close() //tf:unchecked-ok rejecting during shutdown
			continue
		default:
		}
		s.connSeq++
		c := newConn(s, nc, s.connSeq)
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connCount.Add(1)
		s.connWG.Add(1)
		//tf:goroutine conn-reader
		go func() {
			defer s.connWG.Done()
			c.serve()
		}()
	}
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// snapshotConns copies the live connection set under s.mu so callers can
// touch the sockets without holding the lock.
func (s *Server) snapshotConns() []*conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	conns := make([]*conn, 0, len(s.conns))
	//tf:unordered-ok snapshot; callers' per-conn operations are order-independent
	for c := range s.conns {
		conns = append(conns, c)
	}
	return conns
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.connCount.Add(-1)
}

// Shutdown stops the server gracefully: stop accepting, wake every
// connection reader so in-flight requests finish, wait for the pumps to
// flush the subscriber queues, then stop the actor — which drains the
// requests already accepted and closes the WAL cleanly. If ctx expires
// first, remaining connections are force-closed (their pumps then drain
// to a dead socket, so nothing blocks) and shutdown still completes;
// ctx's error is reported after the store is closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		close(s.stopping)
	})
	if s.ln != nil {
		s.ln.Close() //tf:unchecked-ok shutting down
	}
	// Stop the replication link first: its callbacks call into the actor,
	// which must still be running while the link winds down.
	s.stopLink()
	// Snapshot the live connections and do the socket calls outside s.mu:
	// a deadline or close syscall under the lock would stall every conn
	// teardown (removeConn) behind it (lock-scope).
	for _, c := range s.snapshotConns() {
		c.nc.SetReadDeadline(time.Now()) //tf:unchecked-ok best-effort wake
	}

	connsDone := make(chan struct{})
	//tf:goroutine shutdown-conn-waiter
	go func() {
		s.connWG.Wait()
		close(connsDone)
	}()
	var ctxErr error
	select {
	case <-connsDone:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		for _, c := range s.snapshotConns() {
			c.nc.Close() //tf:unchecked-ok force close
		}
		<-connsDone
	}

	s.actorOnce.Do(func() {
		close(s.actor.stop)
	})
	<-s.actor.done
	if s.actor.closeErr != nil {
		return s.actor.closeErr
	}
	return ctxErr
}
