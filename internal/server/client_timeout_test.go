package server

// Client dial/request timeout behavior and the typed STATS view
// (ParseStats / StatsInfo) across server roles.

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestClientRequestTimeout holds DialWith's RequestTimeout to its
// contract: an exchange against a peer that never replies fails within
// the bound, and the connection is poisoned so later requests fail fast
// instead of hanging.
func TestClientRequestTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	//tf:goroutine timeout-test-accept
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- nc // hold the conn open, never reply
	}()

	c, err := DialWith(ln.Addr().String(), DialOptions{
		Timeout:        time.Second,
		RequestTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Ping()
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Ping against a silent peer: got %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}
	// The connection is poisoned: the next request must fail fast, not
	// wait out another timeout against a dead exchange.
	if err := c.Ping(); err == nil {
		t.Fatal("Ping on a poisoned connection succeeded")
	}
	if nc := <-accepted; nc != nil {
		nc.Close() //tf:unchecked-ok test cleanup
	}
}

// TestClientRequestTimeoutNotTriggered proves a configured timeout does
// not interfere with healthy exchanges, including the multi-line STATS
// framing.
func TestClientRequestTimeoutNotTriggered(t *testing.T) {
	_, addr := startServer(t, Options{})
	c, err := DialWith(addr, DialOptions{
		Timeout:        time.Second,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("q", "(a:P)-[:e]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
}

// TestShardStatsRejectedByServer: the SHARDSTATS verb parses everywhere
// but only a coordinator answers it.
func TestShardStatsRejectedByServer(t *testing.T) {
	_, addr := startServer(t, Options{})
	c := dialTest(t, addr)
	if _, err := c.ShardStats(); err == nil || !strings.Contains(err.Error(), "coordinator") {
		t.Fatalf("ShardStats on a plain server: got %v, want coordinator error", err)
	}
	// The connection must survive the rejection.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsInfoStandalone covers the typed view of a plain server's
// STATS payload.
func TestStatsInfoStandalone(t *testing.T) {
	_, addr := startServer(t, Options{})
	c := dialTest(t, addr)
	if err := c.Register("q1", "(a:P)-[:e]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("q1"); err != nil {
		t.Fatal(err)
	}
	info, err := c.StatsInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "standalone" {
		t.Fatalf("role = %q, want standalone", info.Role)
	}
	if info.Conns != 1 {
		t.Fatalf("conns = %d, want 1", info.Conns)
	}
	if len(info.Queries) != 1 || info.Queries[0].Name != "q1" {
		t.Fatalf("queries = %+v, want one entry q1", info.Queries)
	}
	if info.Queries[0].Subs != 1 || info.Queries[0].Shard != -1 {
		t.Fatalf("query stat = %+v, want subs=1 shard=-1", info.Queries[0])
	}
}

// TestStatsInfoLeaderFollower covers role detection and link counters on
// a live replication pair.
func TestStatsInfoLeaderFollower(t *testing.T) {
	_, leaderAddr, _ := startReplServer(t, leaderOpts(t.TempDir()))
	_, followerAddr, _ := startReplServer(t, followerOpts(t.TempDir(), leaderAddr))

	cl := dialTest(t, leaderAddr)
	cf := dialTest(t, followerAddr)
	waitForLSN(t, cl, replBootstrapLen)
	waitForLSN(t, cf, replBootstrapLen)

	li, err := cl.StatsInfo()
	if err != nil {
		t.Fatal(err)
	}
	if li.Role != "leader" {
		t.Fatalf("leader role = %q, want leader", li.Role)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		fi, err := cf.StatsInfo()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Role != "follower" {
			t.Fatalf("follower role = %q, want follower", fi.Role)
		}
		if fi.Connected && fi.AppliedLSN >= replBootstrapLen {
			if fi.Leader != leaderAddr {
				t.Fatalf("follower leader = %q, want %q", fi.Leader, leaderAddr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never connected: %+v", fi)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The leader sees the follower once the link is up.
	deadline = time.Now().Add(10 * time.Second)
	for {
		li, err = cl.StatsInfo()
		if err != nil {
			t.Fatal(err)
		}
		if len(li.Followers) == 1 && li.Followers[0].AppliedLSN >= replBootstrapLen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never saw the follower: %+v", li)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParseStatsCoordinator covers the coordinator payload shape against
// synthetic lines (the live path is covered by the shard e2e).
func TestParseStatsCoordinator(t *testing.T) {
	info, err := ParseStats([]string{
		"cluster role=coordinator shards=4 alive=3 seq=100 updates=90 events=42 conns=2",
		"shard 0 addr=127.0.0.1:7001 alive=true queries=6 seq=100 lag=0 ping_us=120 misses=0",
		"shard 1 addr=127.0.0.1:7002 alive=false queries=6 seq=80 lag=20 ping_us=-1 misses=3",
		"query q1 shard=0 subs=2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "coordinator" {
		t.Fatalf("role = %q, want coordinator", info.Role)
	}
	if info.ShardsTotal != 4 || info.ShardsAlive != 3 || info.Seq != 100 {
		t.Fatalf("cluster counters = %+v", info)
	}
	if len(info.Shards) != 2 {
		t.Fatalf("shards = %+v, want 2", info.Shards)
	}
	s1 := info.Shards[1]
	if s1.ID != 1 || s1.Alive || s1.Lag != 20 || s1.PingUs != -1 || s1.Misses != 3 {
		t.Fatalf("shard 1 = %+v", s1)
	}
	if len(info.Queries) != 1 || info.Queries[0].Shard != 0 || info.Queries[0].Subs != 2 {
		t.Fatalf("queries = %+v", info.Queries)
	}
}

// TestParseStatsMalformed: malformed numeric values error instead of
// being silently zeroed.
func TestParseStatsMalformed(t *testing.T) {
	for _, lines := range [][]string{
		{"server conns=zap policy=block queue_cap=1024 seq=0 updates=0 events=0 dropped=0 evicted=0"},
		{"shard x addr=127.0.0.1:1 alive=true"},
		{"replica role=chief"},
		{"cluster role=coordinator shards=-2"},
	} {
		if _, err := ParseStats(lines); err == nil {
			t.Fatalf("ParseStats(%q) succeeded, want error", lines)
		}
	}
}
