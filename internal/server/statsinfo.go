package server

import (
	"fmt"
	"strconv"
	"strings"
)

// StatsInfo is the typed view of a STATS payload. Role is one of
// "standalone" (no replication line), "leader", "follower", or
// "coordinator" (shard router). Fields that the role's payload does not
// carry are zero; Raw always holds the verbatim lines for anything the
// typed view does not model.
type StatsInfo struct {
	Role string

	// server line (absent on a coordinator, which renders cluster instead).
	Conns    int
	Policy   string
	QueueCap int
	Seq      uint64
	Updates  uint64
	Events   uint64
	Dropped  uint64
	Evicted  uint64

	// follower link state (Role == "follower").
	Leader     string
	Connected  bool
	AppliedLSN uint64
	LeaderLSN  uint64
	Lag        uint64

	// leader fan-out (Role == "leader", durable mode).
	Followers []FollowerStat

	// coordinator totals and per-shard health (Role == "coordinator").
	ShardsTotal int
	ShardsAlive int
	Shards      []ShardStat

	// mqo line: sub-pattern sharing counters (DESIGN.md §17). A server
	// reports its own engine; a coordinator reports the sum of its shards'
	// last-probed counters.
	MQO MQOStat

	Queries []QueryStat
	Raw     []string
}

// MQOStat is the "mqo ..." line: the multi-query sharing state of an
// engine (or, on a coordinator, the aggregate over shards).
type MQOStat struct {
	SubPatterns   int
	Shared        int
	Refs          int
	MaintainRuns  uint64
	SavedEvals    uint64
	SharedReplays uint64
}

// DedupRatio returns the member maintenance evaluations avoided per
// maintainer run — the sharing payoff per maintained update (0 when
// nothing has been maintained).
func (s MQOStat) DedupRatio() float64 {
	if s.MaintainRuns == 0 {
		return 0
	}
	return float64(s.SavedEvals) / float64(s.MaintainRuns)
}

// FollowerStat is one "follower ..." line on a leader.
type FollowerStat struct {
	Conn       uint64
	Addr       string
	AppliedLSN uint64
	Lag        uint64
	Catchup    bool
}

// ShardStat is one "shard ..." line on a coordinator.
type ShardStat struct {
	ID      int
	Addr    string
	Alive   bool
	Queries int
	Seq     uint64
	Lag     uint64
	PingUs  int64
	Misses  int
	// Sub-pattern sharing state from the shard's last STATS probe.
	SubPatterns int
	Refs        int
	SavedEvals  uint64
}

// QueryStat is one "query ..." line. A server reports match counters; a
// coordinator reports the shard placement (Shard is -1 when the payload
// has no placement, i.e. on a plain server).
type QueryStat struct {
	Name  string
	Pos   int64
	Neg   int64
	Subs  int
	Shard int
}

// StatsInfo fetches STATS and parses it into the typed view.
func (c *Client) StatsInfo() (StatsInfo, error) {
	lines, err := c.Stats()
	if err != nil {
		return StatsInfo{}, err
	}
	return ParseStats(lines)
}

// ParseStats parses STATS payload lines into the typed view. Unknown
// line kinds are preserved in Raw and otherwise ignored, so the parser
// stays forward-compatible with new counters.
func ParseStats(lines []string) (StatsInfo, error) {
	info := StatsInfo{Role: "standalone", Raw: lines}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		p := kvParser{line: line, kv: parseKV(fields[1:])}
		switch fields[0] {
		case "server":
			info.Conns = int(p.uint("conns"))
			info.Policy = p.kv["policy"]
			info.QueueCap = int(p.uint("queue_cap"))
			info.Seq = p.uint("seq")
			info.Updates = p.uint("updates")
			info.Events = p.uint("events")
			info.Dropped = p.uint("dropped")
			info.Evicted = p.uint("evicted")
		case "cluster":
			info.Role = "coordinator"
			info.ShardsTotal = int(p.uint("shards"))
			info.ShardsAlive = int(p.uint("alive"))
			info.Seq = p.uint("seq")
			info.Updates = p.uint("updates")
			info.Events = p.uint("events")
			info.Conns = int(p.uint("conns"))
		case "replica":
			switch p.kv["role"] {
			case "follower":
				info.Role = "follower"
				info.Leader = p.kv["leader"]
				info.Connected = p.bool("connected")
				info.AppliedLSN = p.uint("applied_lsn")
				info.LeaderLSN = p.uint("leader_lsn")
				info.Lag = p.uint("lag")
			case "leader":
				info.Role = "leader"
			default:
				return StatsInfo{}, fmt.Errorf("server: bad replica role in %q", line)
			}
		case "follower":
			info.Followers = append(info.Followers, FollowerStat{
				Conn:       p.uint("conn"),
				Addr:       p.kv["addr"],
				AppliedLSN: p.uint("applied_lsn"),
				Lag:        p.uint("lag"),
				Catchup:    p.bool("catchup"),
			})
		case "shard":
			if len(fields) < 2 {
				return StatsInfo{}, fmt.Errorf("server: bad shard line %q", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return StatsInfo{}, fmt.Errorf("server: bad shard id in %q", line)
			}
			p.kv = parseKV(fields[2:])
			info.Shards = append(info.Shards, ShardStat{
				ID:          id,
				Addr:        p.kv["addr"],
				Alive:       p.bool("alive"),
				Queries:     int(p.uint("queries")),
				Seq:         p.uint("seq"),
				Lag:         p.uint("lag"),
				PingUs:      p.int("ping_us"),
				Misses:      int(p.uint("misses")),
				SubPatterns: int(p.uint("subpats")),
				Refs:        int(p.uint("refs")),
				SavedEvals:  p.uint("saved"),
			})
		case "mqo":
			info.MQO = MQOStat{
				SubPatterns:   int(p.uint("subpats")),
				Shared:        int(p.uint("shared")),
				Refs:          int(p.uint("refs")),
				MaintainRuns:  p.uint("maintain"),
				SavedEvals:    p.uint("saved"),
				SharedReplays: p.uint("replays"),
			}
		case "query":
			if len(fields) < 2 {
				return StatsInfo{}, fmt.Errorf("server: bad query line %q", line)
			}
			p.kv = parseKV(fields[2:])
			q := QueryStat{
				Name:  fields[1],
				Pos:   p.int("pos"),
				Neg:   p.int("neg"),
				Subs:  int(p.uint("subs")),
				Shard: -1,
			}
			if _, ok := p.kv["shard"]; ok {
				q.Shard = int(p.int("shard"))
			}
			info.Queries = append(info.Queries, q)
		}
		if p.err != nil {
			return StatsInfo{}, p.err
		}
	}
	return info, nil
}

// parseKV splits "k=v" fields; fields without '=' are dropped.
func parseKV(fields []string) map[string]string {
	kv := make(map[string]string, len(fields))
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			kv[k] = v
		}
	}
	return kv
}

// kvParser reads typed values out of one line's k=v fields, remembering
// the first malformed value (missing keys read as zero).
type kvParser struct {
	line string
	kv   map[string]string
	err  error
}

func (p *kvParser) uint(key string) uint64 {
	v, ok := p.kv[key]
	if !ok {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("server: bad %s in %q", key, p.line)
	}
	return n
}

func (p *kvParser) int(key string) int64 {
	v, ok := p.kv[key]
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("server: bad %s in %q", key, p.line)
	}
	return n
}

func (p *kvParser) bool(key string) bool {
	v, ok := p.kv[key]
	if !ok {
		return false
	}
	b, err := strconv.ParseBool(v)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("server: bad %s in %q", key, p.line)
	}
	return b
}
