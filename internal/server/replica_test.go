package server

// In-process replication tests: transcript equivalence between leader and
// follower, catch-up across follower restarts, corrupt-frame recovery
// over a real TCP path, promotion, and the follower's read-only gate.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"turboflux"
	"turboflux/internal/replica"
)

const replPattern = "(a:P)-[:knows]->(b:P)"

// replDicts builds one server's pre-interned dictionaries ("P"=0,
// "knows"=0). Each server needs its own instances, interned in the same
// order, so numeric labels on the wire mean the same thing everywhere.
func replDicts() (vd, ed *turboflux.Dict) {
	vd = turboflux.NewDict()
	vd.Intern("P")
	ed = turboflux.NewDict()
	ed.Intern("knows")
	return vd, ed
}

func leaderOpts(dir string) Options {
	vd, ed := replDicts()
	return Options{
		DataDir:      dir,
		Fsync:        "interval",
		VertexLabels: vd,
		EdgeLabels:   ed,
		Bootstrap: []turboflux.Update{
			turboflux.DeclareVertex(1, 0),
			turboflux.DeclareVertex(2, 0),
			turboflux.DeclareVertex(3, 0),
			turboflux.DeclareVertex(4, 0),
		},
	}
}

// replBootstrapLen is the journaled bootstrap length of leaderOpts; the
// first client update is acked with sequence number replBootstrapLen+1.
const replBootstrapLen = 4

func followerOpts(dir, leader string) Options {
	vd, ed := replDicts()
	return Options{
		DataDir:      dir,
		Fsync:        "interval",
		VertexLabels: vd,
		EdgeLabels:   ed,
		Follow:       leader,
		ReplOptions: replica.Options{
			DialTimeout: time.Second,
			BackoffMin:  20 * time.Millisecond,
			BackoffMax:  200 * time.Millisecond,
		},
	}
}

// replUpdate is the k-th update of the test workload: alternating
// insert/delete over two vertex pairs, so every update produces exactly
// one match event.
func replUpdate(k int) turboflux.Update {
	pairs := [...][2]turboflux.VertexID{{1, 2}, {3, 4}}
	p := pairs[(k/2)%len(pairs)]
	if k%2 == 0 {
		return turboflux.Insert(p[0], 0, p[1])
	}
	return turboflux.Delete(p[0], 0, p[1])
}

// startReplServer is startServer with an explicit, idempotent stop so
// tests can shut one server down mid-test (follower restart, dead
// leader).
func startReplServer(t *testing.T, opt Options) (*Server, string, func()) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-serveDone; err != nil {
				t.Errorf("serve: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return s, s.Addr().String(), stop
}

// rawSubscribe opens a raw protocol connection and subscribes, so the
// test can capture the *EVENT lines exactly as written to the wire.
func rawSubscribe(t *testing.T, addr, query string) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() }) //tf:unchecked-ok test cleanup
	br := bufio.NewReader(nc)
	if _, err := fmt.Fprintf(nc, "SUBSCRIBE %s\n", query); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //tf:unchecked-ok test conn
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "+OK") {
		t.Fatalf("SUBSCRIBE reply %q", line)
	}
	return nc, br
}

// collectEvents reads exactly n *EVENT lines (trailing newline stripped).
func collectEvents(t *testing.T, nc net.Conn, br *bufio.Reader, n int) []string {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(10 * time.Second)) //tf:unchecked-ok test conn
	out := make([]string, 0, n)
	for len(out) < n {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading events (%d/%d): %v", len(out), n, err)
		}
		line = strings.TrimRight(line, "\n")
		if !strings.HasPrefix(line, "*EVENT ") {
			t.Fatalf("unexpected push %q", line)
		}
		out = append(out, line)
	}
	return out
}

// statsUint extracts key=<uint> from the first STATS line with the given
// prefix.
func statsUint(lines []string, linePrefix, key string) (uint64, bool) {
	for _, l := range lines {
		if !strings.HasPrefix(l, linePrefix) {
			continue
		}
		for _, f := range strings.Fields(l) {
			if k, v, ok := strings.Cut(f, "="); ok && k == key {
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return 0, false
				}
				return n, true
			}
		}
	}
	return 0, false
}

func statsLine(lines []string, prefix string) (string, bool) {
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) {
			return l, true
		}
	}
	return "", false
}

// waitForLSN polls STATS until the server's durable LSN reaches want.
func waitForLSN(t *testing.T, c *Client, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		lines, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if lsn, ok := statsUint(lines, "wal ", "lsn"); ok && lsn >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never reached LSN %d", want)
}

// TestFollowerMirrorsLeaderTranscript is the core replication contract:
// a follower subscribed to the same query emits a byte-identical event
// transcript, and both sides' STATS agree on positions and lag.
func TestFollowerMirrorsLeaderTranscript(t *testing.T) {
	const updates = 20
	_, leaderAddr, _ := startReplServer(t, leaderOpts(t.TempDir()))
	_, followerAddr, _ := startReplServer(t, followerOpts(t.TempDir(), leaderAddr))

	cl := dialTest(t, leaderAddr)
	cf := dialTest(t, followerAddr)
	if err := cl.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	if err := cf.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	lnc, lbr := rawSubscribe(t, leaderAddr, "q")
	fnc, fbr := rawSubscribe(t, followerAddr, "q")

	var lastSeq uint64
	for k := 0; k < updates; k++ {
		ack, err := cl.Apply(replUpdate(k))
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		if want := uint64(replBootstrapLen + k + 1); ack.Seq != want {
			t.Fatalf("update %d acked seq %d, want %d (seq must equal LSN)", k, ack.Seq, want)
		}
		lastSeq = ack.Seq
	}
	waitForLSN(t, cf, lastSeq)

	evL := collectEvents(t, lnc, lbr, updates)
	evF := collectEvents(t, fnc, fbr, updates)
	for i := range evL {
		if evL[i] != evF[i] {
			t.Fatalf("transcript diverges at event %d:\n  leader   %q\n  follower %q", i, evL[i], evF[i])
		}
	}

	// Leader STATS: role, durable position, per-follower lag.
	lines, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := statsLine(lines, "replica "); !ok || !strings.Contains(l, "role=leader followers=1") {
		t.Fatalf("leader replica line = %q", l)
	}
	if lsn, ok := statsUint(lines, "wal ", "lsn"); !ok || lsn != lastSeq {
		t.Fatalf("leader wal lsn = %d, want %d", lsn, lastSeq)
	}
	if _, ok := statsUint(lines, "wal ", "snap_lsn"); !ok {
		t.Fatal("leader STATS missing snap_lsn")
	}
	fl, ok := statsLine(lines, "follower ")
	if !ok {
		t.Fatalf("leader STATS has no follower line: %q", lines)
	}
	if applied, ok := statsUint([]string{fl}, "follower ", "applied_lsn"); !ok || applied != lastSeq {
		t.Fatalf("follower line %q: applied_lsn want %d", fl, lastSeq)
	}
	if lag, ok := statsUint([]string{fl}, "follower ", "lag"); !ok || lag != 0 {
		t.Fatalf("follower line %q: lag want 0", fl)
	}

	// Follower STATS: link state.
	lines, err = cf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	rl, ok := statsLine(lines, "replica ")
	if !ok || !strings.Contains(rl, "role=follower") || !strings.Contains(rl, "connected=true") {
		t.Fatalf("follower replica line = %q", rl)
	}
	if applied, ok := statsUint([]string{rl}, "replica ", "applied_lsn"); !ok || applied != lastSeq {
		t.Fatalf("follower replica line %q: applied_lsn want %d", rl, lastSeq)
	}

	// The follower is read-only.
	if _, err := cf.Insert(1, 0, 2); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower accepted a write: err=%v", err)
	}
	if _, err := cf.Batch([]turboflux.Update{turboflux.Insert(1, 0, 2)}); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower accepted a batch: err=%v", err)
	}
}

// TestFollowerRestartCatchup stops a follower mid-stream, keeps writing
// on the leader, restarts the follower over the same data directory and
// checks it catches up from its own WAL position with a byte-identical
// transcript for the missed suffix.
func TestFollowerRestartCatchup(t *testing.T) {
	const phase = 10
	_, leaderAddr, _ := startReplServer(t, leaderOpts(t.TempDir()))
	followerDir := t.TempDir()
	_, followerAddr, stopFollower := startReplServer(t, followerOpts(followerDir, leaderAddr))

	cl := dialTest(t, leaderAddr)
	cf := dialTest(t, followerAddr)
	if err := cl.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	if err := cf.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	lnc, lbr := rawSubscribe(t, leaderAddr, "q")

	var lastSeq uint64
	for k := 0; k < phase; k++ {
		ack, err := cl.Apply(replUpdate(k))
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		lastSeq = ack.Seq
	}
	waitForLSN(t, cf, lastSeq)
	cf.Close() //tf:unchecked-ok test teardown
	stopFollower()

	for k := phase; k < 2*phase; k++ {
		ack, err := cl.Apply(replUpdate(k))
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		lastSeq = ack.Seq
	}

	// Restart over the same directory: catch-up starts from the LSN the
	// first run journaled, not from zero. The link is routed through a
	// gated proxy that relays only once the query is re-registered and
	// subscribed, so every missed update deterministically emits its
	// event after the restart.
	gate := make(chan struct{})
	proxyAddr := startGateProxy(t, leaderAddr, gate)
	_, followerAddr2, _ := startReplServer(t, followerOpts(followerDir, proxyAddr))
	cf2 := dialTest(t, followerAddr2)
	if err := cf2.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	fnc, fbr := rawSubscribe(t, followerAddr2, "q")
	close(gate)
	waitForLSN(t, cf2, lastSeq)

	evL := collectEvents(t, lnc, lbr, 2*phase)
	evF := collectEvents(t, fnc, fbr, phase)
	for i := range evF {
		if evF[i] != evL[phase+i] {
			t.Fatalf("restart transcript diverges at event %d:\n  leader   %q\n  follower %q",
				i, evL[phase+i], evF[i])
		}
	}
}

// startGateProxy relays TCP connections to leaderAddr, but holds every
// accepted connection until gate closes — letting a test pin down when a
// follower's replication session may begin.
func startGateProxy(t *testing.T, leaderAddr string, gate <-chan struct{}) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() }) //tf:unchecked-ok test cleanup
	go func() {
		for {
			cc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(cc net.Conn) {
				defer cc.Close()
				<-gate
				lc, err := net.Dial("tcp", leaderAddr)
				if err != nil {
					return
				}
				defer lc.Close()
				go func() {
					io.Copy(lc, cc) //tf:unchecked-ok proxy teardown
					lc.Close()
					cc.Close()
				}()
				io.Copy(cc, lc) //tf:unchecked-ok proxy teardown
			}(cc)
		}
	}()
	return ln.Addr().String()
}

// flipProxy relays follower→leader traffic untouched and flips one bit
// of the leader→follower stream during the first session, simulating a
// torn/corrupt frame on the wire. Later sessions pass through clean.
type flipProxy struct {
	ln       net.Listener
	leader   string
	flipAt   int
	sessions atomic.Int32
}

func startFlipProxy(t *testing.T, leaderAddr string, flipAt int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flipProxy{ln: ln, leader: leaderAddr, flipAt: flipAt}
	t.Cleanup(func() { ln.Close() }) //tf:unchecked-ok test cleanup
	go p.acceptLoop()
	return ln.Addr().String()
}

func (p *flipProxy) acceptLoop() {
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		corrupt := p.sessions.Add(1) == 1
		go p.relay(cc, corrupt)
	}
}

func (p *flipProxy) relay(cc net.Conn, corrupt bool) {
	defer cc.Close()
	lc, err := net.Dial("tcp", p.leader)
	if err != nil {
		return
	}
	defer lc.Close()
	go func() {
		io.Copy(lc, cc) //tf:unchecked-ok proxy teardown
		lc.Close()
		cc.Close()
	}()
	buf := make([]byte, 4096)
	written := 0
	for {
		n, rerr := lc.Read(buf)
		if n > 0 {
			if corrupt && written <= p.flipAt && p.flipAt < written+n {
				buf[p.flipAt-written] ^= 0x01
			}
			written += n
			if _, werr := cc.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

// TestCorruptFrameOverWireResume routes replication through a proxy that
// flips one bit mid-catch-up: the follower must detect the corruption
// (CRC or framing), drop the session, reconnect and resume from its last
// applied LSN — converging on exactly the leader's LSN, so nothing was
// applied twice or skipped.
func TestCorruptFrameOverWireResume(t *testing.T) {
	const updates = 50
	_, leaderAddr, _ := startReplServer(t, leaderOpts(t.TempDir()))
	cl := dialTest(t, leaderAddr)
	if err := cl.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for k := 0; k < updates; k++ {
		ack, err := cl.Apply(replUpdate(k))
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		lastSeq = ack.Seq
	}

	// Byte 120 lands inside the first catch-up chunk's frame body (the
	// handshake reply and chunk header are well under 40 bytes, the body
	// is several hundred).
	proxyAddr := startFlipProxy(t, leaderAddr, 120)
	_, followerAddr, _ := startReplServer(t, followerOpts(t.TempDir(), proxyAddr))
	cf := dialTest(t, followerAddr)
	waitForLSN(t, cf, lastSeq)

	// The corruption must have cost the first session.
	lines, err := cf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if lsn, ok := statsUint(lines, "wal ", "lsn"); !ok || lsn != lastSeq {
		t.Fatalf("follower lsn = %d, want exactly %d (duplicates would overshoot)", lsn, lastSeq)
	}

	// Live stream still works after the resume.
	ack, err := cl.Apply(replUpdate(updates))
	if err != nil {
		t.Fatal(err)
	}
	waitForLSN(t, cf, ack.Seq)
}

// TestPromoteFollower kills the leader, promotes the follower and checks
// it seals its log, accepts writes and serves subscriptions.
func TestPromoteFollower(t *testing.T) {
	const updates = 8
	_, leaderAddr, stopLeader := startReplServer(t, leaderOpts(t.TempDir()))
	_, followerAddr, _ := startReplServer(t, followerOpts(t.TempDir(), leaderAddr))

	cl := dialTest(t, leaderAddr)
	cf := dialTest(t, followerAddr)
	if err := cl.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	if err := cf.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for k := 0; k < updates; k++ {
		ack, err := cl.Apply(replUpdate(k))
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		lastSeq = ack.Seq
	}
	waitForLSN(t, cf, lastSeq)
	cl.Close() //tf:unchecked-ok test teardown
	stopLeader()

	if err := cf.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := cf.Promote(); err == nil || !strings.Contains(err.Error(), "already leader") {
		t.Fatalf("second promote: err=%v", err)
	}
	lines, err := cf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := statsLine(lines, "replica "); !ok || !strings.Contains(l, "role=leader") {
		t.Fatalf("promoted replica line = %q", l)
	}

	// Writes are accepted and numbered after the replicated history.
	if _, err := cf.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	ack, err := cf.Apply(replUpdate(updates))
	if err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	if ack.Seq != lastSeq+1 {
		t.Fatalf("post-promote seq = %d, want %d", ack.Seq, lastSeq+1)
	}
	select {
	case ev := <-cf.Events():
		if ev.Seq != ack.Seq {
			t.Fatalf("post-promote event seq = %d, want %d", ev.Seq, ack.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event after promotion")
	}
}

// TestReplicateRequiresDurableStore rejects REPLICATE on a memory-only
// server and on connections that already hold subscriptions.
func TestReplicateRequiresDurableStore(t *testing.T) {
	_, addr := startServer(t, Options{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //tf:unchecked-ok test cleanup
	br := bufio.NewReader(nc)
	if _, err := io.WriteString(nc, "REPLICATE 0\n"); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //tf:unchecked-ok test conn
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "-ERR") || !strings.Contains(line, "durable") {
		t.Fatalf("REPLICATE on memory server: %q", line)
	}
}

func TestReplicateRejectedWithSubscriptions(t *testing.T) {
	_, addr, _ := startReplServer(t, leaderOpts(t.TempDir()))
	c := dialTest(t, addr)
	if err := c.Register("q", replPattern); err != nil {
		t.Fatal(err)
	}
	nc, br := rawSubscribe(t, addr, "q")
	if _, err := io.WriteString(nc, "REPLICATE 0\n"); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //tf:unchecked-ok test conn
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "-ERR") || !strings.Contains(line, "subscriptions") {
		t.Fatalf("REPLICATE on subscribed conn: %q", line)
	}
}
