package server

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"turboflux"
)

// transcriptEntry is one match delivery in a per-query transcript, in a
// form comparable between the live subscription and an offline replay.
type transcriptEntry struct {
	seq     uint64
	sign    byte
	mapping string
}

func (e transcriptEntry) String() string {
	return fmt.Sprintf("%d%c%s", e.seq, e.sign, e.mapping)
}

func mappingKey(m []turboflux.VertexID) string {
	s := ""
	for i, v := range m {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s
}

// TestServerE2EDeterminism drives one server with 4 concurrent writer
// clients, each also subscribed to every query, then checks the
// determinism contract: every subscriber's per-query event stream equals
// the transcript a single-threaded MultiEngine emits when replaying the
// same total update order (reconstructed from the acked sequence
// numbers). The workers=4 variant runs the same check against the
// parallel fan-out actor — two of its queries share the "knows" label so
// the worker pool actually executes barriers — and then asserts the
// STATS worker-utilization counters are populated.
func TestServerE2EDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runServerE2EDeterminism(t, workers)
		})
	}
}

func runServerE2EDeterminism(t *testing.T, workers int) {
	const (
		nClients   = 4
		perClient  = 50
		nVertices  = 10
		labelP     = turboflux.Label(0) // "P"
		labelKnows = turboflux.Label(0) // "knows"
		labelLikes = turboflux.Label(1) // "likes"
	)
	queries := map[string]string{
		"knows2": "(a:P)-[:knows]->(b:P)",
		"likes2": "(a:P)-[:likes]->(b:P)",
		// A distinct tree shape on the same label: a reversed 2-path would
		// collapse into knows2's shared sub-pattern and ride its pool task,
		// leaving nothing to pool.
		"knows3": "(a:P)-[:knows]->(b:P), (b)-[:knows]->(c:P)",
	}

	vdict := turboflux.NewDict()
	vdict.Intern("P")
	edict := turboflux.NewDict()
	edict.Intern("knows")
	edict.Intern("likes")
	var boot []turboflux.Update
	for v := turboflux.VertexID(1); v <= nVertices; v++ {
		boot = append(boot, turboflux.DeclareVertex(v, labelP))
	}

	_, addr := startServer(t, Options{
		Slow:          PolicyBlock, // lossless: every subscriber must see the full transcript
		QueueDepth:    64,
		VertexLabels:  vdict,
		EdgeLabels:    edict,
		Bootstrap:     boot,
		FanOutWorkers: workers,
	})

	admin := dialTest(t, addr)
	for name, pattern := range queries {
		if err := admin.Register(name, pattern); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}

	clients := make([]*Client, nClients)
	for i := range clients {
		// Events are drained only after every writer finishes, so the
		// Events channel must hold each client's whole transcript — knows3
		// alone emits thousands of 3-path matches on this dense workload,
		// far past Dial's default 256 buffer (a full channel would block the
		// read loop and deadlock the writers behind their own event
		// backlog).
		c, err := DialBuffered(addr, 1<<19)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() }) //tf:unchecked-ok test cleanup
		clients[i] = c
		for name := range queries {
			if seq, err := clients[i].Subscribe(name); err != nil || seq != 0 {
				t.Fatalf("client %d subscribe %s: seq=%d err=%v", i, name, seq, err)
			}
		}
	}

	// Writers: each client applies a deterministic pseudo-random mix of
	// inserts and deletes; the acks record where each update landed in the
	// server's total order.
	type ackedUpdate struct {
		seq uint64
		u   turboflux.Update
	}
	acked := make([][]ackedUpdate, nClients)
	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			for k := 0; k < perClient; k++ {
				from := turboflux.VertexID(rng.Intn(nVertices) + 1)
				to := turboflux.VertexID(rng.Intn(nVertices) + 1)
				label := labelKnows
				if rng.Intn(2) == 1 {
					label = labelLikes
				}
				u := turboflux.Insert(from, label, to)
				if rng.Intn(4) == 0 {
					u = turboflux.Delete(from, label, to)
				}
				ack, err := clients[i].Apply(u)
				if err != nil {
					errCh <- fmt.Errorf("client %d update %d: %w", i, k, err)
					return
				}
				acked[i] = append(acked[i], ackedUpdate{seq: ack.Seq, u: u})
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Reconstruct the total order from the acked sequence numbers; it must
	// be a contiguous 1..N with no duplicates.
	var total []ackedUpdate
	for _, c := range acked {
		total = append(total, c...)
	}
	sort.Slice(total, func(i, j int) bool { return total[i].seq < total[j].seq })
	if len(total) != nClients*perClient {
		t.Fatalf("acked %d updates, want %d", len(total), nClients*perClient)
	}
	for i, au := range total {
		if au.seq != uint64(i+1) {
			t.Fatalf("sequence numbers not contiguous: position %d has seq %d", i, au.seq)
		}
	}

	// Offline replay: a fresh single-threaded MultiEngine over the same
	// bootstrap and queries, fed the same total order, defines the expected
	// per-query transcripts.
	g := turboflux.NewGraph()
	for _, u := range boot {
		u.Apply(g)
	}
	replay := turboflux.NewMultiEngine(g)
	replay.SetFanOutWorkers(1) // the reference is the sequential path
	expected := map[string][]transcriptEntry{}
	var replaySeq uint64
	for name, pattern := range queries {
		q, _, err := turboflux.ParseQuery(pattern, vdict, edict)
		if err != nil {
			t.Fatal(err)
		}
		name := name
		err = replay.Register(name, q, turboflux.Options{
			OnMatch: func(positive bool, m []turboflux.VertexID) {
				sign := byte('+')
				if !positive {
					sign = '-'
				}
				expected[name] = append(expected[name], transcriptEntry{
					seq: replaySeq, sign: sign, mapping: mappingKey(m)})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, au := range total {
		replaySeq = au.seq
		if _, err := replay.Apply(au.u); err != nil {
			t.Fatalf("replay seq %d: %v", au.seq, err)
		}
	}
	want := 0
	for _, es := range expected {
		want += len(es)
	}
	if want == 0 {
		t.Fatal("replay produced no matches; the workload is too weak to test anything")
	}

	// Every subscriber must now deliver exactly those transcripts.
	for i, c := range clients {
		got := map[string][]transcriptEntry{}
		n := 0
		timeout := time.After(10 * time.Second)
		for n < want {
			select {
			case ev, ok := <-c.Events():
				if !ok {
					t.Fatalf("client %d: event stream closed after %d/%d events: %v", i, n, want, c.Err())
				}
				if ev.Evicted {
					t.Fatalf("client %d: evicted from %s under block policy", i, ev.Query)
				}
				sign := byte('+')
				if !ev.Positive {
					sign = '-'
				}
				got[ev.Query] = append(got[ev.Query], transcriptEntry{
					seq: ev.Seq, sign: sign, mapping: mappingKey(ev.Mapping)})
				n++
			case <-timeout:
				t.Fatalf("client %d: %d/%d events after 10s", i, n, want)
			}
		}
		select {
		case ev := <-c.Events():
			t.Fatalf("client %d: unexpected extra event %+v", i, ev)
		case <-time.After(50 * time.Millisecond):
		}
		for name, wantEntries := range expected {
			gotEntries := got[name]
			if len(gotEntries) != len(wantEntries) {
				t.Fatalf("client %d query %s: %d events, want %d", i, name, len(gotEntries), len(wantEntries))
			}
			for k := range wantEntries {
				if gotEntries[k] != wantEntries[k] {
					t.Fatalf("client %d query %s event %d: got %v, want %v",
						i, name, k, gotEntries[k], wantEntries[k])
				}
			}
		}
	}

	// STATS must surface the fan-out worker-utilization counters.
	lines, err := admin.Stats()
	if err != nil {
		t.Fatal(err)
	}
	fanout := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "fanout ") {
			fanout = l
		}
	}
	if fanout == "" {
		t.Fatalf("STATS has no fanout line: %q", lines)
	}
	kv := map[string]uint64{}
	for _, f := range strings.Fields(fanout)[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("malformed fanout field %q in %q", f, fanout)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("fanout field %q: %v", f, err)
		}
		kv[k] = n
	}
	if got := kv["workers"]; got != uint64(workers) {
		t.Fatalf("fanout workers = %d, want %d", got, workers)
	}
	if kv["evals"] == 0 {
		t.Fatalf("fanout evals = 0: %q", fanout)
	}
	if workers > 1 {
		// knows2 and knows3 share a label but not a tree shape, so "knows"
		// updates pool two sub-pattern tasks; likes2 is skipped on those
		// updates.
		if kv["batches"] == 0 || kv["pooled"] == 0 {
			t.Fatalf("parallel actor never pooled work: %q", fanout)
		}
		if kv["skipped"] == 0 {
			t.Fatalf("label routing never skipped an engine: %q", fanout)
		}
	}
}

// TestServerGracefulShutdownDurable checks the full shutdown sequence
// against a durable store: in-flight work finishes, subscriber queues are
// flushed to the socket, and the write-ahead log closes cleanly — a reopen
// finds no torn tail and the complete update history.
func TestServerGracefulShutdownDurable(t *testing.T) {
	const updates = 20
	dir := t.TempDir()

	vdict := turboflux.NewDict()
	vdict.Intern("P")
	edict := turboflux.NewDict()
	edict.Intern("knows")
	boot := []turboflux.Update{
		turboflux.DeclareVertex(1, 0),
		turboflux.DeclareVertex(2, 0),
	}
	s, err := New(Options{
		DataDir:      dir,
		Fsync:        "interval",
		VertexLabels: vdict,
		EdgeLabels:   edict,
		Bootstrap:    boot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Recovery().Fresh {
		t.Fatalf("recovery = %+v, want fresh", s.Recovery())
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //tf:unchecked-ok test cleanup
	if err := c.Register("knows2", "(a:P)-[:knows]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("knows2"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < updates; k++ {
		u := turboflux.Insert(1, 0, 2)
		if k%2 == 1 {
			u = turboflux.Delete(1, 0, 2)
		}
		if _, err := c.Apply(u); err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
	}

	// Shut down while the subscriber still has events in flight. The acks
	// above guarantee the events are enqueued; the shutdown contract says
	// they reach the socket before the connection closes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	got := 0
	for ev := range c.Events() {
		if ev.Evicted {
			t.Fatalf("unexpected eviction %+v", ev)
		}
		got++
	}
	if got != updates {
		t.Fatalf("subscriber saw %d events, want %d flushed before close", got, updates)
	}

	// Reopen the store: a clean close leaves no torn tail and the full
	// journaled history (bootstrap + updates, nothing compacted away).
	d, err := turboflux.OpenDurableMulti(dir, turboflux.DurableMultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //tf:unchecked-ok test cleanup
	rec := d.Recovery()
	if rec.Fresh {
		t.Fatal("reopen must not be fresh")
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean shutdown left %d torn bytes", rec.TruncatedBytes)
	}
	if want := len(boot) + updates; rec.SnapshotLSN == 0 && rec.Replayed != want {
		t.Fatalf("recovered %d updates (snapshot@%d), want %d", rec.Replayed, rec.SnapshotLSN, want)
	}
	// updates is even, so the edge was deleted last.
	if got := d.Graph().NumEdges(); got != 0 {
		t.Fatalf("recovered edges = %d, want 0", got)
	}
}
