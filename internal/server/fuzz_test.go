package server

import (
	"strings"
	"testing"
)

// FuzzParseRequest holds the request parser to its contract: malformed
// input of any shape yields an error, never a panic, and success implies a
// concrete request kind.
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		"PING",
		"QUIT",
		"QUERIES",
		"STATS",
		"REGISTER pay (a:0)-[:1]->(b:0)",
		"REGISTER R MATCH (a:Person)-[:follows]->(b:Person)",
		"UNREGISTER pay",
		"SUBSCRIBE pay",
		"UNSUBSCRIBE pay",
		"LABEL vertex Person",
		"LABEL edge follows",
		"BATCH 3",
		"BATCHB 128",
		"REPLICATE 0",
		"REPLICATE 18446744073709551615",
		"REPLICATE -1",
		"REPLICATE 1 2",
		"PROMOTE",
		"PROMOTE now",
		"SHARDSTATS",
		"SHARDSTATS 3",
		"SHARDSTATS\r",
		"RACK 7",
		"i 1 2 3",
		"d 1 2 3",
		"v 7 1,2",
		"v 7",
		"",
		"   ",
		"\r",
		"REGISTER",
		"BATCH 99999999999999999999",
		"BATCHB -5",
		"i 18446744073709551616 0 0",
		"LABEL vertex \x00",
		"PING PING PING",
		strings.Repeat("A", 200),
		"REGISTER " + strings.Repeat("n", 200) + " (a)-[:0]->(b)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		req, err := ParseRequest(line)
		if err == nil && req.Kind == KindNone {
			t.Fatalf("ParseRequest(%q) succeeded with KindNone", line)
		}
		if err != nil && req.Kind != KindNone {
			t.Fatalf("ParseRequest(%q) errored with kind %d", line, req.Kind)
		}
		if req.Kind == KindBatch && (req.Count <= 0 || req.Count > MaxBatchRecords) {
			t.Fatalf("ParseRequest(%q) accepted batch count %d", line, req.Count)
		}
		if req.Kind == KindBatchBin && (req.Count <= 0 || req.Count > MaxBatchBytes) {
			t.Fatalf("ParseRequest(%q) accepted batch byte count %d", line, req.Count)
		}
	})
}
