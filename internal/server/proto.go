// Package server implements the TurboFlux network serving subsystem: a
// concurrent TCP server that lets many clients drive one shared
// MultiEngine — registering continuous queries over the wire, streaming
// graph updates, and subscribing to per-query match streams — plus the Go
// client used by the integration tests.
//
// # Wire protocol
//
// The protocol is line-oriented text (LF-terminated, CR tolerated), with
// one binary escape for bulk ingest. Client requests:
//
//	PING                          liveness probe
//	QUIT                          close the connection
//	REGISTER <name> <pattern>     register a continuous query (qlang pattern)
//	UNREGISTER <name>             remove a query
//	QUERIES                       list registered query names
//	LABEL vertex|edge <name>      intern a label name, returning its id
//	SUBSCRIBE <name>              stream this query's matches to this conn
//	UNSUBSCRIBE <name>            stop streaming
//	STATS                         engine, queue and lag counters
//	i <from> <label> <to>         apply one edge insertion (stream text format)
//	d <from> <label> <to>         apply one edge deletion
//	v <id> [<label>,...]          declare a vertex
//	BATCH <n>                     followed by n stream-text records
//	BATCHB <bytes>                followed by <bytes> of binary-codec records
//	REPLICATE <lsn>               become a replication stream: the server
//	                              ships a snapshot and/or WAL tail for
//	                              catch-up past <lsn>, then live frames
//	                              (durable mode only; see internal/replica
//	                              for the push/ack framing)
//	PROMOTE                       flip a follower to leader: its link to
//	                              the old leader stops, its WAL is sealed
//	                              and synced, and writes are accepted
//	SHARDSTATS                    per-shard liveness/lag counters; answered
//	                              by a coordinator (internal/shard) with the
//	                              STATS framing, rejected by a plain server
//
// After an accepted REPLICATE the connection is in replication mode: the
// server pushes *RSNAP/*RFRAMES/*RPING messages and the only requests
// accepted are "RACK <appliedLSN>" acknowledgments and QUIT.
//
// Update records and BATCH bodies reuse the internal/stream text codec;
// BATCHB bodies reuse its binary codec, so a WAL segment payload can be
// replayed over the wire unchanged.
//
// Server responses start with '+' (success) or '-' (error); asynchronous
// pushes start with '*' so clients can demultiplex them from command
// replies on the same connection:
//
//	+OK [fields...]               command reply
//	+DATA <n>                     followed by n payload lines (STATS)
//	-ERR <message>                command failed
//	*EVENT <query> <seq> <+|-> <v0> <v1> ...   one match (mapping in
//	                              query-vertex order; seq is the server's
//	                              global update sequence number)
//	*EVICTED <query>              this subscription was dropped by the
//	                              slow-consumer policy
//
// Update acks carry the assigned sequence number and per-query match
// counts ("+OK <seq> <total> [name=n ...]"), so a client fleet can
// reconstruct the server's total update order and replay it offline —
// the determinism contract the end-to-end tests check.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"turboflux/internal/stream"
)

// Kind identifies a parsed request.
type Kind uint8

const (
	// KindNone is the zero Kind; ParseRequest never returns it without an
	// error.
	KindNone Kind = iota
	// KindPing is the PING liveness probe.
	KindPing
	// KindQuit closes the connection.
	KindQuit
	// KindRegister registers a query from a pattern.
	KindRegister
	// KindUnregister removes a query.
	KindUnregister
	// KindQueries lists registered queries.
	KindQueries
	// KindLabel interns a label name.
	KindLabel
	// KindSubscribe subscribes the connection to a query's matches.
	KindSubscribe
	// KindUnsubscribe removes a subscription.
	KindUnsubscribe
	// KindStats requests server and engine counters.
	KindStats
	// KindUpdate applies a single stream update.
	KindUpdate
	// KindBatch applies Count stream-text records that follow.
	KindBatch
	// KindBatchBin applies Count bytes of binary records that follow.
	KindBatchBin
	// KindReplicate switches the connection into a replication stream
	// serving catch-up and live WAL frames past LSN.
	KindReplicate
	// KindPromote flips a follower into leader mode.
	KindPromote
	// KindShardStats requests per-shard liveness and lag counters; only a
	// coordinator (internal/shard) answers it, a plain server rejects it.
	KindShardStats
)

// Limits on request framing. Requests outside them are rejected before any
// allocation proportional to the claimed size.
const (
	// MaxLineBytes bounds one request or record line.
	MaxLineBytes = 64 * 1024
	// MaxBatchRecords bounds the record count of a BATCH.
	MaxBatchRecords = 100_000
	// MaxBatchBytes bounds the payload of a BATCHB.
	MaxBatchBytes = 4 << 20
	// maxNameLen bounds query and label names.
	maxNameLen = 128
)

// Request is one parsed client request. Batch bodies are framed separately
// by the connection loop; ParseRequest only validates the header.
type Request struct {
	Kind   Kind
	Name   string        // query name; "vertex"/"edge" for KindLabel
	Arg    string        // pattern (REGISTER), label name (LABEL)
	Update stream.Update // KindUpdate
	Count  int           // record count (BATCH) / byte count (BATCHB)
	LSN    uint64        // follower applied LSN (REPLICATE)
}

// ParseRequest parses one request line (without trailing newline).
// Malformed input of any shape must yield an error, never a panic — the
// fuzz target holds it to that.
func ParseRequest(line string) (Request, error) {
	line = strings.TrimSuffix(line, "\r")
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Request{}, fmt.Errorf("server: empty request")
	}
	switch fields[0] {
	case "PING":
		return reqNoArgs(KindPing, fields)
	case "QUIT":
		return reqNoArgs(KindQuit, fields)
	case "QUERIES":
		return reqNoArgs(KindQueries, fields)
	case "STATS":
		return reqNoArgs(KindStats, fields)
	case "REGISTER":
		if len(fields) < 3 {
			return Request{}, fmt.Errorf("server: REGISTER needs a name and a pattern")
		}
		if err := checkName(fields[1]); err != nil {
			return Request{}, err
		}
		// The pattern is everything after the name (qlang is
		// whitespace-insensitive, so trimming is enough).
		return Request{Kind: KindRegister, Name: fields[1], Arg: afterFields(line, 2)}, nil
	case "UNREGISTER":
		return reqOneName(KindUnregister, fields)
	case "SUBSCRIBE":
		return reqOneName(KindSubscribe, fields)
	case "UNSUBSCRIBE":
		return reqOneName(KindUnsubscribe, fields)
	case "LABEL":
		if len(fields) != 3 {
			return Request{}, fmt.Errorf("server: LABEL needs a kind (vertex|edge) and a name")
		}
		if fields[1] != "vertex" && fields[1] != "edge" {
			return Request{}, fmt.Errorf("server: LABEL kind must be vertex or edge, got %q", fields[1])
		}
		if len(fields[2]) > maxNameLen {
			return Request{}, fmt.Errorf("server: label name longer than %d bytes", maxNameLen)
		}
		return Request{Kind: KindLabel, Name: fields[1], Arg: fields[2]}, nil
	case "BATCH":
		n, err := parseCount(fields, MaxBatchRecords)
		if err != nil {
			return Request{}, err
		}
		return Request{Kind: KindBatch, Count: n}, nil
	case "BATCHB":
		n, err := parseCount(fields, MaxBatchBytes)
		if err != nil {
			return Request{}, err
		}
		return Request{Kind: KindBatchBin, Count: n}, nil
	case "REPLICATE":
		if len(fields) != 2 {
			return Request{}, fmt.Errorf("server: REPLICATE needs exactly one applied LSN")
		}
		lsn, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("server: bad REPLICATE LSN %q", clip(fields[1]))
		}
		return Request{Kind: KindReplicate, LSN: lsn}, nil
	case "PROMOTE":
		return reqNoArgs(KindPromote, fields)
	case "SHARDSTATS":
		return reqNoArgs(KindShardStats, fields)
	case "i", "d", "v":
		u, err := stream.ParseLine(line)
		if err != nil {
			return Request{}, err
		}
		return Request{Kind: KindUpdate, Update: u}, nil
	default:
		return Request{}, fmt.Errorf("server: unknown command %q", clip(fields[0]))
	}
}

func reqNoArgs(k Kind, fields []string) (Request, error) {
	if len(fields) != 1 {
		return Request{}, fmt.Errorf("server: %s takes no arguments", fields[0])
	}
	return Request{Kind: k}, nil
}

func reqOneName(k Kind, fields []string) (Request, error) {
	if len(fields) != 2 {
		return Request{}, fmt.Errorf("server: %s needs exactly one query name", fields[0])
	}
	if err := checkName(fields[1]); err != nil {
		return Request{}, err
	}
	return Request{Kind: k, Name: fields[1]}, nil
}

func parseCount(fields []string, max int) (int, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("server: %s needs exactly one count", fields[0])
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("server: bad %s count %q", fields[0], clip(fields[1]))
	}
	if n > max {
		return 0, fmt.Errorf("server: %s count %d exceeds limit %d", fields[0], n, max)
	}
	return n, nil
}

// checkName validates a query name: 1..maxNameLen of [A-Za-z0-9._-].
func checkName(name string) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("server: query name must be 1..%d characters", maxNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("server: query name %q contains %q (allowed: letters, digits, '.', '_', '-')", clip(name), c)
		}
	}
	return nil
}

// afterFields returns the remainder of line after skipping n
// whitespace-delimited fields, trimmed of surrounding whitespace.
func afterFields(line string, n int) string {
	rest := line
	for i := 0; i < n; i++ {
		rest = strings.TrimLeft(rest, " \t")
		j := strings.IndexAny(rest, " \t")
		if j < 0 {
			return ""
		}
		rest = rest[j:]
	}
	return strings.TrimSpace(rest)
}

// clip bounds attacker-controlled text quoted into error messages.
func clip(s string) string {
	const n = 64
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// appendEventLine renders one match event as its wire line (without the
// trailing newline) into dst — append-based so the per-subscriber pump
// can reuse one scratch buffer instead of formatting through fmt.
func appendEventLine(dst []byte, ev event) []byte {
	dst = append(dst, "*EVENT "...)
	dst = append(dst, ev.query...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, ev.seq, 10)
	if ev.positive {
		dst = append(dst, " +"...)
	} else {
		dst = append(dst, " -"...)
	}
	for _, v := range ev.mapping {
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, uint64(v), 10)
	}
	return dst
}
