package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"

	"turboflux/internal/stream"
)

// conn is one client connection. The reader goroutine (serve) owns br and
// the subs map; responses and subscription events share the socket through
// wmu, one full line per critical section, so pushes never interleave
// mid-line with replies.
type conn struct {
	srv *Server
	a   *actor
	nc  net.Conn
	id  uint64

	br *bufio.Reader

	wmu  sync.Mutex
	bw   *bufio.Writer
	werr error // sticky first write error

	subs  map[string]*subscriber // this connection's subscriptions, by query
	pumps sync.WaitGroup
}

func newConn(srv *Server, nc net.Conn, id uint64) *conn {
	return &conn{
		srv:  srv,
		a:    srv.actor,
		nc:   nc,
		id:   id,
		br:   bufio.NewReaderSize(nc, MaxLineBytes),
		bw:   bufio.NewWriterSize(nc, 32*1024),
		subs: make(map[string]*subscriber),
	}
}

// serve runs the request loop until the peer disconnects, QUITs, sends an
// unrecoverable frame, or the server shuts the connection down.
func (c *conn) serve() {
	defer c.teardown()
	for {
		line, err := c.readLine()
		if err != nil {
			return
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		req, err := ParseRequest(line)
		if err != nil {
			if c.writeErr(err) != nil {
				return
			}
			continue
		}
		if !c.dispatch(req) {
			return
		}
	}
}

// readLine reads one LF-terminated line (LF stripped). Lines longer than
// MaxLineBytes are a framing error: the stream cannot be resynchronized,
// so the connection drops.
func (c *conn) readLine() (string, error) {
	b, err := c.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		c.writeErr(fmt.Errorf("server: request line exceeds %d bytes", MaxLineBytes)) //tf:unchecked-ok dropping the conn either way
		return "", err
	}
	if err != nil {
		return "", err
	}
	return string(b[:len(b)-1]), nil
}

// dispatch executes one parsed request. It returns false when the
// connection should close (QUIT, write failure, or server shutdown).
func (c *conn) dispatch(req Request) bool {
	switch req.Kind {
	case KindPing:
		return c.writeLine("+OK pong") == nil
	case KindQuit:
		c.writeLine("+OK bye") //tf:unchecked-ok closing anyway
		return false
	case KindUpdate:
		resp, err := c.a.call(request{kind: reqApply, u: req.Update})
		if err != nil {
			return false
		}
		if resp.err != nil {
			return c.writeErr(resp.err) == nil
		}
		return c.writeAck(resp) == nil
	case KindBatch:
		ups, ferr, perr := c.readBatchText(req.Count)
		if ferr != nil {
			return false
		}
		if perr != nil {
			return c.writeErr(perr) == nil
		}
		return c.finishBatch(ups)
	case KindBatchBin:
		ups, ferr, perr := c.readBatchBinary(req.Count)
		if ferr != nil {
			return false
		}
		if perr != nil {
			return c.writeErr(perr) == nil
		}
		return c.finishBatch(ups)
	case KindRegister:
		return c.simpleCall(request{kind: reqRegister, name: req.Name, arg: req.Arg})
	case KindUnregister:
		return c.simpleCall(request{kind: reqUnregister, name: req.Name})
	case KindQueries:
		resp, err := c.a.call(request{kind: reqQueries})
		if err != nil {
			return false
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "+OK %d", len(resp.names))
		for _, n := range resp.names {
			sb.WriteByte(' ')
			sb.WriteString(n)
		}
		return c.writeLine(sb.String()) == nil
	case KindLabel:
		resp, err := c.a.call(request{kind: reqLabel, name: req.Name, arg: req.Arg})
		if err != nil {
			return false
		}
		return c.writeLine(fmt.Sprintf("+OK %d", resp.label)) == nil
	case KindSubscribe:
		return c.subscribe(req.Name)
	case KindUnsubscribe:
		return c.unsubscribe(req.Name)
	case KindReplicate:
		return c.replicate(req)
	case KindPromote:
		return c.promote()
	case KindShardStats:
		return c.writeErr(fmt.Errorf("server: SHARDSTATS requires a coordinator (turboflux-shard)")) == nil
	case KindStats:
		resp, err := c.a.call(request{kind: reqStats})
		if err != nil {
			return false
		}
		if werr := c.writeLine(fmt.Sprintf("+DATA %d", len(resp.lines))); werr != nil {
			return false
		}
		for _, l := range resp.lines {
			if werr := c.writeLine(l); werr != nil {
				return false
			}
		}
		return true
	default:
		return c.writeErr(fmt.Errorf("server: unhandled request kind %d", req.Kind)) == nil
	}
}

// simpleCall forwards a request whose success reply carries no payload.
func (c *conn) simpleCall(req request) bool {
	resp, err := c.a.call(req)
	if err != nil {
		return false
	}
	if resp.err != nil {
		return c.writeErr(resp.err) == nil
	}
	return c.writeLine("+OK") == nil
}

// readBatchText reads n stream-text records. A framing (I/O) error is
// fatal; a parse error is reported to the client after the whole body has
// been consumed, so the protocol stays in sync. Nothing is applied unless
// every record parses.
func (c *conn) readBatchText(n int) (ups []stream.Update, framing, parse error) {
	ups = make([]stream.Update, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return nil, err, nil
		}
		if parse != nil {
			continue // consume remaining body
		}
		u, err := stream.ParseLine(strings.TrimSuffix(line, "\r"))
		if err != nil {
			parse = fmt.Errorf("server: batch record %d: %w", i+1, err)
			continue
		}
		ups = append(ups, u)
	}
	if parse != nil {
		return nil, nil, parse
	}
	return ups, nil, nil
}

// readBatchBinary reads n bytes of binary-codec records.
func (c *conn) readBatchBinary(n int) (ups []stream.Update, framing, parse error) {
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, err, nil
	}
	for len(body) > 0 {
		u, used, err := stream.DecodeBinary(body)
		if err != nil {
			return nil, nil, fmt.Errorf("server: batch record %d: %w", len(ups)+1, err)
		}
		ups = append(ups, u)
		body = body[used:]
	}
	if len(ups) == 0 {
		return nil, nil, fmt.Errorf("server: empty binary batch")
	}
	return ups, nil, nil
}

func (c *conn) finishBatch(ups []stream.Update) bool {
	resp, err := c.a.call(request{kind: reqBatch, ups: ups})
	if err != nil {
		return false
	}
	if resp.err != nil {
		return c.writeErr(resp.err) == nil
	}
	return c.writeLine(fmt.Sprintf("+OK %d %d %d", resp.seq, len(ups), resp.total)) == nil
}

// writeAck renders an update acknowledgment: sequence number, total match
// count, then per-query counts sorted by name for a deterministic wire
// image.
func (c *conn) writeAck(resp response) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "+OK %d %d", resp.seq, resp.total)
	if len(resp.counts) > 0 {
		names := make([]string, 0, len(resp.counts))
		//tf:unordered-ok keys are sorted before emission
		for n := range resp.counts {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&sb, " %s=%d", n, resp.counts[n])
		}
	}
	return c.writeLine(sb.String())
}

func (c *conn) subscribe(name string) bool {
	if _, dup := c.subs[name]; dup {
		return c.writeErr(fmt.Errorf("server: already subscribed to %q", name)) == nil
	}
	sub := newSubscriber(name, c.id, c.srv.opt.QueueDepth)
	resp, err := c.a.call(request{kind: reqSubscribe, name: name, sub: sub})
	if err != nil {
		return false
	}
	if resp.err != nil {
		return c.writeErr(resp.err) == nil
	}
	c.subs[name] = sub
	c.pumps.Add(1)
	//tf:goroutine sub-pump
	go c.pump(sub)
	return c.writeLine(fmt.Sprintf("+OK %d", resp.seq)) == nil
}

func (c *conn) unsubscribe(name string) bool {
	sub, ok := c.subs[name]
	if !ok {
		return c.writeErr(fmt.Errorf("server: not subscribed to %q", name)) == nil
	}
	delete(c.subs, name)
	sub.close()
	resp, err := c.a.call(request{kind: reqUnsubscribe, name: name, connID: c.id})
	if err != nil {
		return false
	}
	if resp.err != nil {
		return c.writeErr(resp.err) == nil
	}
	return c.writeLine("+OK") == nil
}

// pump drains one subscription's bounded queue onto the socket. When the
// subscription finishes (unsubscribe, eviction, unregistration, teardown)
// it flushes the events already queued — the graceful-shutdown "flush
// subscriber queues" step — and sends the *EVICTED notice if the server
// cancelled the stream. Write errors are sticky in writeBytes, so a dead
// peer degrades this loop to a fast drain that releases the actor.
func (c *conn) pump(sub *subscriber) {
	defer c.pumps.Done()
	var buf []byte
	for {
		select {
		case ev := <-sub.ch:
			buf = c.writeEvent(buf, ev, len(sub.ch) == 0)
		case <-sub.done:
			for {
				select {
				case ev := <-sub.ch:
					buf = c.writeEvent(buf, ev, len(sub.ch) == 0)
				default:
					if sub.evicted.Load() {
						c.writeLine("*EVICTED " + sub.query) //tf:unchecked-ok peer may be gone
					}
					return
				}
			}
		}
	}
}

// writeEvent renders ev into the reusable scratch buffer and writes it,
// flushing only when the queue is momentarily empty so bursts coalesce
// into fewer syscalls.
func (c *conn) writeEvent(scratch []byte, ev event, flush bool) []byte {
	scratch = appendEventLine(scratch[:0], ev)
	scratch = append(scratch, '\n')
	c.writeBytes(scratch, flush) //tf:unchecked-ok sticky error; pump keeps draining
	return scratch
}

func (c *conn) writeLine(line string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	if _, err := c.bw.WriteString(line); err != nil {
		c.werr = err
		return err
	}
	if err := c.bw.WriteByte('\n'); err != nil {
		c.werr = err
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.werr = err
		return err
	}
	return nil
}

func (c *conn) writeBytes(b []byte, flush bool) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return
	}
	if _, err := c.bw.Write(b); err != nil {
		c.werr = err
		return
	}
	if flush {
		if err := c.bw.Flush(); err != nil {
			c.werr = err
		}
	}
}

// writeErr reports a request failure on one line.
func (c *conn) writeErr(err error) error {
	msg := strings.NewReplacer("\r", " ", "\n", " ").Replace(err.Error())
	return c.writeLine("-ERR " + msg)
}

// teardown ends the connection: it finishes this connection's
// subscriptions (releasing any actor blocked on a full queue), tells the
// actor to forget them, waits for the pumps to flush what was queued,
// and closes the socket.
func (c *conn) teardown() {
	//tf:unordered-ok closing subscriptions; per-queue order is preserved by the pumps
	for _, sub := range c.subs {
		sub.close()
	}
	c.a.send(request{kind: reqDropConn, connID: c.id}) //tf:unchecked-ok best-effort after shutdown
	c.pumps.Wait()
	c.wmu.Lock()
	c.bw.Flush() //tf:unchecked-ok closing
	c.wmu.Unlock()
	c.nc.Close() //tf:unchecked-ok closing
	c.srv.removeConn(c)
}
