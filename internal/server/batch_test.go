package server

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"turboflux"
)

// batchWorkload builds a deterministic update mix over 10 bootstrapped
// vertices: edge churn on the "knows"/"likes" labels plus occasional
// fresh vertex declarations (the batch scheduler's solo path) and deletes
// of absent edges (its no-op path).
func batchWorkload() []turboflux.Update {
	const nVertices = 10
	rng := rand.New(rand.NewSource(42))
	var ups []turboflux.Update
	next := turboflux.VertexID(nVertices + 1)
	for len(ups) < 160 {
		hi := int(next) - 1
		l := turboflux.Label(rng.Intn(2)) // knows or likes
		from := turboflux.VertexID(1 + rng.Intn(hi))
		to := turboflux.VertexID(1 + rng.Intn(hi))
		switch r := rng.Float64(); {
		case r < 0.06:
			ups = append(ups, turboflux.DeclareVertex(next, 0))
			next++
		case r < 0.75:
			ups = append(ups, turboflux.Insert(from, l, to))
		default:
			ups = append(ups, turboflux.Delete(from, l, to))
		}
	}
	return ups
}

// runServerBatchWorkload drives one server with the workload and returns
// the subscriber's per-query transcripts plus the final STATS lines.
// batchSize 1 means per-update i/d/v requests; larger sizes send BATCH
// (or BATCHB) frames of that many updates.
func runServerBatchWorkload(t *testing.T, workers, batchSize int, binary bool) (map[string][]transcriptEntry, []string) {
	t.Helper()
	vdict := turboflux.NewDict()
	vdict.Intern("P")
	edict := turboflux.NewDict()
	edict.Intern("knows")
	edict.Intern("likes")
	var boot []turboflux.Update
	for v := turboflux.VertexID(1); v <= 10; v++ {
		boot = append(boot, turboflux.DeclareVertex(v, 0))
	}
	_, addr := startServer(t, Options{
		Slow:          PolicyBlock,
		QueueDepth:    256,
		VertexLabels:  vdict,
		EdgeLabels:    edict,
		Bootstrap:     boot,
		FanOutWorkers: workers,
	})

	admin := dialTest(t, addr)
	// Registration order is part of the emission order within an update,
	// so it must be fixed across runs.
	for _, reg := range []struct{ name, pattern string }{
		{"knows2", "(a:P)-[:knows]->(b:P)"},
		{"likes2", "(a:P)-[:likes]->(b:P)"},
		{"knows2rev", "(b:P)-[:knows]->(a:P)"},
	} {
		if err := admin.Register(reg.name, reg.pattern); err != nil {
			t.Fatalf("register %s: %v", reg.name, err)
		}
	}
	sub := dialTest(t, addr)
	for _, name := range []string{"knows2", "likes2", "knows2rev"} {
		if _, err := sub.Subscribe(name); err != nil {
			t.Fatalf("subscribe %s: %v", name, err)
		}
	}

	ups := batchWorkload()
	var want int64
	if batchSize <= 1 {
		for i, u := range ups {
			ack, err := admin.Apply(u)
			if err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
			want += ack.Total
		}
	} else {
		for off := 0; off < len(ups); off += batchSize {
			end := off + batchSize
			if end > len(ups) {
				end = len(ups)
			}
			var back BatchAck
			var err error
			if binary {
				back, err = admin.BatchBinary(ups[off:end])
			} else {
				back, err = admin.Batch(ups[off:end])
			}
			if err != nil {
				t.Fatalf("batch at %d: %v", off, err)
			}
			if back.Applied != end-off {
				t.Fatalf("batch at %d: applied %d of %d", off, back.Applied, end-off)
			}
			want += back.Total
		}
	}
	if want == 0 {
		t.Fatal("workload produced no matches; nothing to compare")
	}

	got := map[string][]transcriptEntry{}
	var n int64
	timeout := time.After(10 * time.Second)
	for n < want {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("event stream closed after %d/%d events: %v", n, want, sub.Err())
			}
			if ev.Evicted {
				t.Fatalf("evicted from %s under block policy", ev.Query)
			}
			sign := byte('+')
			if !ev.Positive {
				sign = '-'
			}
			got[ev.Query] = append(got[ev.Query], transcriptEntry{
				seq: ev.Seq, sign: sign, mapping: mappingKey(ev.Mapping)})
			n++
		case <-timeout:
			t.Fatalf("%d/%d events after 10s", n, want)
		}
	}
	select {
	case ev := <-sub.Events():
		t.Fatalf("unexpected extra event %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	lines, err := admin.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return got, lines
}

// comparableStats filters STATS down to the lines and fields that must be
// identical between a BATCH run and its per-update equivalent: the server
// sequencing counters and the per-query match counters. apply_latency is
// wall-clock timing; the sub lines carry pump-timing-dependent queue
// depths; the fanout line mixes equivalent fields (evals, skipped) with
// ones batching legitimately changes (batches, pooled, busy_ns), so it is
// reduced to the equivalent fields only when requested. The mqo line is
// reduced to its structural fields (subpats, shared, refs) — the
// maintain/saved/replays counters depend on how updates group into runs
// (the batch scheduler maintains a sub-pattern only for the updates it
// routes to it, the sequential path for every update).
func comparableStats(t *testing.T, lines []string, fanout bool) []string {
	t.Helper()
	var out []string
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "apply_latency"), strings.HasPrefix(l, "sub "):
		case strings.HasPrefix(l, "mqo "):
			kv := map[string]string{}
			for _, f := range strings.Fields(l)[1:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					t.Fatalf("malformed mqo field %q in %q", f, l)
				}
				kv[k] = v
			}
			out = append(out, fmt.Sprintf("mqo subpats=%s shared=%s refs=%s",
				kv["subpats"], kv["shared"], kv["refs"]))
		case strings.HasPrefix(l, "fanout "):
			if !fanout {
				continue
			}
			kv := map[string]string{}
			for _, f := range strings.Fields(l)[1:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					t.Fatalf("malformed fanout field %q in %q", f, l)
				}
				kv[k] = v
			}
			out = append(out, fmt.Sprintf("fanout workers=%s evals=%s skipped=%s",
				kv["workers"], kv["evals"], kv["skipped"]))
		default:
			out = append(out, l)
		}
	}
	return out
}

// TestServerBatchEquivalence pins the serving contract for BATCH frames:
// a BATCH (and BATCHB) frame must produce exactly the subscriber
// transcript — same events, same per-update sequence stamps, same order —
// and the same STATS counters as the equivalent sequence of i/d/v
// requests, at both worker counts. The fan-out routing counters are
// compared at workers=4 only: the per-update workers=1 path evaluates
// every engine sequentially and never routes, so evals/skipped
// legitimately differ there.
func TestServerBatchEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			fanout := workers > 1
			wantTr, wantLines := runServerBatchWorkload(t, workers, 1, false)
			wantStats := comparableStats(t, wantLines, fanout)
			for _, run := range []struct {
				name      string
				batchSize int
				binary    bool
			}{
				{"BATCH/64", 64, false},
				{"BATCHB/64", 64, true},
			} {
				gotTr, gotLines := runServerBatchWorkload(t, workers, run.batchSize, run.binary)
				for name, want := range wantTr {
					gotEntries := gotTr[name]
					if len(gotEntries) != len(want) {
						t.Fatalf("%s query %s: %d events, want %d", run.name, name, len(gotEntries), len(want))
					}
					for k := range want {
						if gotEntries[k] != want[k] {
							t.Fatalf("%s query %s event %d: got %v, want %v",
								run.name, name, k, gotEntries[k], want[k])
						}
					}
				}
				for name := range gotTr {
					if _, ok := wantTr[name]; !ok {
						t.Fatalf("%s: unexpected events for query %s", run.name, name)
					}
				}
				gotStats := comparableStats(t, gotLines, fanout)
				if len(gotStats) != len(wantStats) {
					t.Fatalf("%s: %d comparable STATS lines, want %d:\n%s\nvs\n%s",
						run.name, len(gotStats), len(wantStats),
						strings.Join(gotStats, "\n"), strings.Join(wantStats, "\n"))
				}
				for i := range wantStats {
					if gotStats[i] != wantStats[i] {
						t.Fatalf("%s STATS line %d:\n  got:  %s\n  want: %s",
							run.name, i, gotStats[i], wantStats[i])
					}
				}
			}
		})
	}
}
