package server

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"turboflux"
)

// TestShutdownMidBatchNoGoroutineLeak is the dynamic complement of the
// goroutine-lifecycle analyzer: it kills the server while a large BATCH
// is in flight — with a context deadline short enough to hit the
// force-close path — and asserts that every server goroutine (actor,
// acceptor waiter, conn readers, pumps) and client read loop exits, via a
// runtime.NumGoroutine delta with retry-loop settling.
func TestShutdownMidBatchNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s, err := New(Options{QueueDepth: 4, Slow: PolicyBlock})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	addr := s.Addr().String()

	admin, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.Register("q", "(a:P)-[:e]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	// A subscriber that never drains: with QueueDepth 4 and PolicyBlock
	// the actor stalls mid-batch on its full queue, so Shutdown really
	// does interrupt an in-flight BATCH.
	slow, err := DialBuffered(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slow.Subscribe("q"); err != nil {
		t.Fatal(err)
	}

	// Fire a batch big enough to outlive the shutdown deadline.
	ups := make([]turboflux.Update, 0, 4096)
	for i := 0; i < 4096; i++ {
		v := turboflux.VertexID(i%64 + 1)
		ups = append(ups, turboflux.Insert(v, 0, v+1))
	}
	batchErr := make(chan error, 1)
	go func() {
		_, err := admin.Batch(ups)
		batchErr <- err
	}()

	// Let the batch reach the actor, then shut down with a deadline that
	// expires while it is still blocked on the slow subscriber.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil && err != context.DeadlineExceeded {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	<-batchErr // whatever the outcome, the exchange must terminate
	admin.Close()
	slow.Close()

	// Goroutine counts settle asynchronously (conn teardowns race the
	// Shutdown return), so retry before judging.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), fmt.Sprintf("%.4000s", buf[:n]))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
