package server

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"turboflux"
	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

// newTestActor builds an actor over a fresh in-memory MultiEngine, started
// and torn down with the test.
func newTestActor(t *testing.T, policy SlowPolicy, depth int) *actor {
	t.Helper()
	var conns atomic.Int64
	a := newActor(turboflux.NewMultiEngine(turboflux.NewGraph()),
		nil, turboflux.NewDict(), turboflux.NewDict(), policy, depth, &conns)
	go a.run()
	t.Cleanup(func() {
		select {
		case <-a.done:
		default:
			close(a.stop)
			<-a.done
		}
	})
	return a
}

// prepareSocial registers a Person-knows-Person query and declares n
// labeled vertices 1..n, returning the interned edge label.
func prepareSocial(t *testing.T, a *actor, n int) turboflux.Label {
	t.Helper()
	if resp, err := a.call(request{kind: reqRegister, name: "social", arg: "(a:Person)-[:knows]->(b:Person)"}); err != nil || resp.err != nil {
		t.Fatalf("register: %v %v", err, resp.err)
	}
	person, _ := a.vdict.Lookup("Person")
	knows, ok := a.edict.Lookup("knows")
	if !ok {
		t.Fatal("knows not interned by REGISTER")
	}
	for i := 1; i <= n; i++ {
		u := stream.DeclareVertex(graph.VertexID(i), person)
		if resp, err := a.call(request{kind: reqApply, u: u}); err != nil || resp.err != nil {
			t.Fatalf("declare %d: %v %v", i, err, resp.err)
		}
	}
	return knows
}

func TestActorPolicyDrop(t *testing.T) {
	a := newTestActor(t, PolicyDrop, 1)
	knows := prepareSocial(t, a, 4)
	sub := newSubscriber("social", 1, 1)
	if resp, err := a.call(request{kind: reqSubscribe, name: "social", sub: sub}); err != nil || resp.err != nil {
		t.Fatalf("subscribe: %v %v", err, resp.err)
	}
	// Three matches into a capacity-1 queue nobody drains: one queued, two
	// dropped, ingest never stalls.
	for i := 0; i < 3; i++ {
		u := stream.Insert(graph.VertexID(i+1), knows, graph.VertexID(i+2))
		resp, err := a.call(request{kind: reqApply, u: u})
		if err != nil || resp.err != nil {
			t.Fatalf("insert %d: %v %v", i, err, resp.err)
		}
		if resp.total != 1 {
			t.Fatalf("insert %d: total = %d", i, resp.total)
		}
	}
	resp, err := a.call(request{kind: reqStats})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(resp.lines, "\n")
	if !strings.Contains(joined, "dropped=2") {
		t.Fatalf("STATS missing dropped=2:\n%s", joined)
	}
	if sub.closed() {
		t.Fatal("drop policy must not close the subscription")
	}
	// Stop the actor (happens-before via done) and check the counters.
	close(a.stop)
	<-a.done
	if sub.enqueued != 1 || sub.dropped != 2 {
		t.Fatalf("enqueued=%d dropped=%d, want 1/2", sub.enqueued, sub.dropped)
	}
	if len(sub.ch) != 1 {
		t.Fatalf("queue depth = %d", len(sub.ch))
	}
	if ev := <-sub.ch; ev.seq == 0 || !ev.positive {
		t.Fatalf("queued event = %+v", ev)
	}
}

func TestActorPolicyEvict(t *testing.T) {
	a := newTestActor(t, PolicyEvict, 1)
	knows := prepareSocial(t, a, 3)
	sub := newSubscriber("social", 1, 1)
	if resp, err := a.call(request{kind: reqSubscribe, name: "social", sub: sub}); err != nil || resp.err != nil {
		t.Fatalf("subscribe: %v %v", err, resp.err)
	}
	// First match fills the queue; the second overflows and cancels the
	// subscription instead of stalling or dropping silently.
	for i := 0; i < 2; i++ {
		u := stream.Insert(graph.VertexID(i+1), knows, graph.VertexID(i+2))
		if resp, err := a.call(request{kind: reqApply, u: u}); err != nil || resp.err != nil {
			t.Fatalf("insert %d: %v %v", i, err, resp.err)
		}
	}
	if !sub.closed() {
		t.Fatal("overflow must close the subscription")
	}
	if !sub.evicted.Load() {
		t.Fatal("overflow must mark the subscription evicted")
	}
	resp, err := a.call(request{kind: reqStats})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(resp.lines, "\n")
	if !strings.Contains(joined, "evicted=1") {
		t.Fatalf("STATS missing evicted=1:\n%s", joined)
	}
	// The event queued before eviction is still there for the pump to
	// flush.
	if len(sub.ch) != 1 {
		t.Fatalf("queue depth = %d", len(sub.ch))
	}
}

func TestActorPolicyBlock(t *testing.T) {
	a := newTestActor(t, PolicyBlock, 1)
	knows := prepareSocial(t, a, 3)
	sub := newSubscriber("social", 1, 1)
	if resp, err := a.call(request{kind: reqSubscribe, name: "social", sub: sub}); err != nil || resp.err != nil {
		t.Fatalf("subscribe: %v %v", err, resp.err)
	}
	if resp, err := a.call(request{kind: reqApply, u: stream.Insert(1, knows, 2)}); err != nil || resp.err != nil {
		t.Fatalf("insert: %v %v", err, resp.err)
	}
	// The queue is full: the next matching update must not be acked until
	// the subscriber drains — lossless backpressure.
	ack := make(chan response, 1)
	go func() {
		resp, err := a.call(request{kind: reqApply, u: stream.Insert(2, knows, 3)})
		if err == nil {
			ack <- resp
		}
	}()
	select {
	case resp := <-ack:
		t.Fatalf("blocked update acked early: %+v", resp)
	case <-time.After(50 * time.Millisecond):
	}
	// Three vertex declarations preceded the inserts, so the first match
	// carries sequence number 4.
	ev := <-sub.ch // drain one slot; the actor unblocks
	if ev.seq != 4 || !ev.positive {
		t.Fatalf("first event = %+v", ev)
	}
	select {
	case resp := <-ack:
		if resp.err != nil || resp.total != 1 {
			t.Fatalf("unblocked ack = %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update still blocked after drain")
	}
	if ev := <-sub.ch; ev.seq != 5 {
		t.Fatalf("second event = %+v", ev)
	}
	// A blocked actor must also release when the subscription closes (the
	// connection-teardown path).
	done := make(chan struct{})
	go func() {
		a.call(request{kind: reqApply, u: stream.Insert(1, knows, 3)}) //tf:unchecked-ok only liveness matters
		a.call(request{kind: reqApply, u: stream.Insert(2, knows, 1)}) //tf:unchecked-ok only liveness matters
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	sub.close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("closing the subscription did not release the actor")
	}
}

// startServer runs a server on a loopback port and tears it down with the
// test; it returns the server and its dial address.
func startServer(t *testing.T, opt Options) (*Server, string) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, s.Addr().String()
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //tf:unchecked-ok test cleanup
	return c
}

func TestServerBasics(t *testing.T) {
	_, addr := startServer(t, Options{})
	c := dialTest(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("social", "(a:Person)-[:knows]->(b:Person)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("social", "(a)-[:knows]->(b)"); err == nil {
		t.Fatal("duplicate register must fail")
	}
	names, err := c.Queries()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "social" {
		t.Fatalf("Queries = %v", names)
	}
	person, err := c.Label("vertex", "Person")
	if err != nil {
		t.Fatal(err)
	}
	knows, err := c.Label("edge", "knows")
	if err != nil {
		t.Fatal(err)
	}
	for v := turboflux.VertexID(1); v <= 4; v++ {
		if _, err := c.DeclareVertex(v, person); err != nil {
			t.Fatal(err)
		}
	}
	ack, err := c.Insert(1, knows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Total != 1 || ack.Counts["social"] != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if ack.Seq == 0 {
		t.Fatal("ack missing sequence number")
	}

	seq, err := c.Subscribe("social")
	if err != nil {
		t.Fatal(err)
	}
	if seq != ack.Seq {
		t.Fatalf("subscribe seq = %d, want %d", seq, ack.Seq)
	}
	if _, err := c.Subscribe("social"); err == nil {
		t.Fatal("duplicate subscribe must fail")
	}
	if _, err := c.Subscribe("nosuch"); err == nil {
		t.Fatal("subscribe to unknown query must fail")
	}

	ack2, err := c.Insert(2, knows, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev := <-c.Events()
	if ev.Query != "social" || !ev.Positive || ev.Seq != ack2.Seq {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Mapping) != 2 || ev.Mapping[0] != 2 || ev.Mapping[1] != 3 {
		t.Fatalf("event mapping = %v", ev.Mapping)
	}
	if _, err := c.Delete(2, knows, 3); err != nil {
		t.Fatal(err)
	}
	ev = <-c.Events()
	if ev.Positive {
		t.Fatalf("expected negative event, got %+v", ev)
	}

	// Batch ingest, text and binary framing.
	batch := []turboflux.Update{
		turboflux.Insert(3, knows, 4),
		turboflux.Delete(3, knows, 4),
	}
	back, err := c.Batch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if back.Applied != 2 || back.Total != 2 {
		t.Fatalf("batch ack = %+v", back)
	}
	<-c.Events()
	<-c.Events()
	bback, err := c.BatchBinary(batch)
	if err != nil {
		t.Fatal(err)
	}
	if bback.Applied != 2 || bback.Total != 2 || bback.FirstSeq != back.FirstSeq+2 {
		t.Fatalf("binary batch ack = %+v after %+v", bback, back)
	}
	<-c.Events()
	<-c.Events()

	lines, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"server conns=", "apply_latency n=", "query social ", "sub social conn="} {
		if !strings.Contains(joined, want) {
			t.Fatalf("STATS missing %q:\n%s", want, joined)
		}
	}

	if err := c.Unsubscribe("social"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe("social"); err == nil {
		t.Fatal("double unsubscribe must fail")
	}
	if err := c.Unregister("social"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister("social"); err == nil {
		t.Fatal("double unregister must fail")
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
}

func TestServerBadInput(t *testing.T) {
	_, addr := startServer(t, Options{})
	c := dialTest(t, addr)
	// Protocol errors are per-request: the connection survives them.
	if _, err := c.do("NOSUCH", nil); err == nil {
		t.Fatal("unknown command must fail")
	}
	if _, err := c.do("i 1 2", nil); err == nil {
		t.Fatal("short update must fail")
	}
	if _, err := c.do("BATCH 2", []byte("i 1 2 3\nbogus line\n")); err == nil {
		t.Fatal("bad batch record must fail")
	}
	// The failed batch applied nothing and the connection is still usable.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Insert(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 1 {
		t.Fatalf("seq = %d, want 1 (failed batch must not consume sequence numbers)", ack.Seq)
	}
}

func TestServerEvictedNoticeOnUnregister(t *testing.T) {
	_, addr := startServer(t, Options{})
	owner := dialTest(t, addr)
	watcher := dialTest(t, addr)

	if err := owner.Register("q", "(a:P)-[:e]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	if _, err := watcher.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	if err := owner.Unregister("q"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-watcher.Events():
		if !ev.Evicted || ev.Query != "q" {
			t.Fatalf("event = %+v, want eviction notice for q", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no *EVICTED notice after UNREGISTER")
	}
}
