package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"turboflux"
	"turboflux/internal/stream"
)

// Event is one push received on a subscription: a match (Positive,
// Mapping, Seq) or — when Evicted is set — the notice that the server
// cancelled the subscription (slow-consumer eviction or query
// unregistration).
type Event struct {
	Query    string
	Seq      uint64
	Positive bool
	Mapping  []turboflux.VertexID
	Evicted  bool
}

// Ack is the acknowledgment of a single update: the server's global
// sequence number and the per-query match counts it produced.
type Ack struct {
	Seq    uint64
	Total  int64
	Counts map[string]int64
}

// BatchAck acknowledges a batch: the sequence number of its first update,
// the number of updates applied, and the total match count.
type BatchAck struct {
	FirstSeq uint64
	Applied  int
	Total    int64
}

// Client is a Go client for the TurboFlux server, safe for one
// request/response caller plus any number of Events consumers. Pushed
// events are delivered on the Events channel; if the consumer stops
// reading, the client stops reading the socket, which is exactly the
// slow-consumer pressure the server's policy acts on.
type Client struct {
	nc net.Conn

	mu sync.Mutex // serializes request/response exchanges
	bw *bufio.Writer

	// reqTimeout bounds one request/response exchange (DialOptions). A
	// timed-out exchange poisons the connection — the reply could still
	// arrive later and desynchronize the stream — so the socket is closed
	// and every later request fails fast.
	reqTimeout time.Duration

	resp   chan respMsg
	events chan Event

	done     chan struct{} // closed by Close
	dead     chan struct{} // closed when the read loop exits
	errMu    sync.Mutex
	readErr  error
	closeOne sync.Once
}

type respMsg struct {
	line string
}

// DialOptions tunes a client connection. The zero value means no dial
// bound, no per-request bound, and the default event buffer — Dial's
// behavior. The shard coordinator sets both timeouts so one hung shard
// cannot block the router forever.
type DialOptions struct {
	// Timeout bounds the TCP connect (0 = the OS default).
	Timeout time.Duration
	// RequestTimeout bounds each request/response exchange, measured from
	// the first write to the reply. On expiry the exchange fails and the
	// connection is closed: a late reply cannot be re-synchronized with a
	// line protocol, so the client must redial.
	RequestTimeout time.Duration
	// EventBuf is the Events channel capacity (0 = Dial's default 256;
	// negative = unbuffered).
	EventBuf int
}

// Dial connects to a TurboFlux server with the default event buffer.
func Dial(addr string) (*Client, error) { return DialBuffered(addr, 256) }

// DialBuffered connects with an explicit Events channel capacity
// (0 = unbuffered, for tests that want the tightest backpressure).
func DialBuffered(addr string, eventBuf int) (*Client, error) {
	if eventBuf <= 0 {
		eventBuf = -1 // DialOptions spells "unbuffered" as negative
	}
	return DialWith(addr, DialOptions{EventBuf: eventBuf})
}

// DialWith connects with explicit dial and request timeouts.
func DialWith(addr string, opt DialOptions) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, opt.Timeout)
	if err != nil {
		return nil, err
	}
	eventBuf := opt.EventBuf
	switch {
	case eventBuf == 0:
		eventBuf = 256
	case eventBuf < 0:
		eventBuf = 0
	}
	c := &Client{
		nc:         nc,
		bw:         bufio.NewWriter(nc),
		reqTimeout: opt.RequestTimeout,
		resp:       make(chan respMsg), //tf:unbuffered-ok request/response rendezvous; one exchange in flight by design
		events:     make(chan Event, eventBuf),
		done:       make(chan struct{}),
		dead:       make(chan struct{}),
	}
	//tf:goroutine client-read-loop
	go c.readLoop()
	return c, nil
}

// Events returns the push stream. It is closed when the connection ends.
func (c *Client) Events() <-chan Event { return c.events }

// Err returns the terminal read-loop error, if any (nil while healthy and
// after a clean Close).
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.readErr
}

// Close tears the connection down. Pending Events deliveries end; the
// Events channel is closed once the read loop exits.
func (c *Client) Close() error {
	c.closeOne.Do(func() { close(c.done) })
	err := c.nc.Close()
	<-c.dead
	return err
}

func (c *Client) readLoop() {
	defer close(c.events)
	defer close(c.dead)
	br := bufio.NewReaderSize(c.nc, MaxLineBytes)
	for {
		b, err := br.ReadSlice('\n')
		if err != nil {
			c.setErr(err)
			return
		}
		line := strings.TrimRight(string(b), "\r\n")
		if strings.HasPrefix(line, "*") {
			ev, err := parseEvent(line)
			if err != nil {
				c.setErr(err)
				return
			}
			select {
			case c.events <- ev:
			case <-c.done:
				return
			}
			continue
		}
		select {
		case c.resp <- respMsg{line: line}:
		case <-c.done:
			return
		}
	}
}

func (c *Client) setErr(err error) {
	select {
	case <-c.done:
		return // closed deliberately; the read error is just the close
	default:
	}
	c.errMu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.errMu.Unlock()
}

// parseEvent decodes "*EVENT <query> <seq> <sign> <v...>" and
// "*EVICTED <query>" lines.
func parseEvent(line string) (Event, error) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "*EVICTED":
		if len(fields) != 2 {
			return Event{}, fmt.Errorf("server: bad eviction notice %q", line)
		}
		return Event{Query: fields[1], Evicted: true}, nil
	case "*EVENT":
		if len(fields) < 4 {
			return Event{}, fmt.Errorf("server: bad event %q", line)
		}
		seq, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("server: bad event seq %q", line)
		}
		ev := Event{Query: fields[1], Seq: seq, Positive: fields[3] == "+"}
		if !ev.Positive && fields[3] != "-" {
			return Event{}, fmt.Errorf("server: bad event sign %q", line)
		}
		ev.Mapping = make([]turboflux.VertexID, 0, len(fields)-4)
		for _, f := range fields[4:] {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return Event{}, fmt.Errorf("server: bad event vertex %q", line)
			}
			ev.Mapping = append(ev.Mapping, turboflux.VertexID(v))
		}
		return ev, nil
	default:
		return Event{}, fmt.Errorf("server: unknown push %q", line)
	}
}

// do performs one request/response exchange. body, when non-nil, is
// written verbatim after the request line (batch payloads).
func (c *Client) do(reqLine string, body []byte) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := c.startExchange()
	if _, err := c.bw.WriteString(reqLine); err != nil {
		return "", err
	}
	if err := c.bw.WriteByte('\n'); err != nil {
		return "", err
	}
	if body != nil {
		if _, err := c.bw.Write(body); err != nil {
			return "", err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return "", err
	}
	return c.recv(deadline)
}

// startExchange begins one request/response exchange under mu: with a
// request timeout configured it arms the write deadline and returns the
// reply deadline channel (nil otherwise, which never fires).
func (c *Client) startExchange() <-chan time.Time {
	if c.reqTimeout <= 0 {
		return nil
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.reqTimeout)) //tf:unchecked-ok deadline on a live conn; writes surface the error
	return time.After(c.reqTimeout)
}

// timedOut poisons the connection after an expired exchange: the reply may
// still arrive and cannot be matched to a request anymore, so the socket
// is closed (the read loop then exits and later requests fail fast).
func (c *Client) timedOut() error {
	err := fmt.Errorf("server: request timed out after %v", c.reqTimeout)
	c.setErr(err)
	c.nc.Close() //tf:unchecked-ok poisoning a timed-out conn
	return err
}

// recv waits for the next response line (the caller holds mu).
func (c *Client) recv(deadline <-chan time.Time) (string, error) {
	select {
	case m := <-c.resp:
		if strings.HasPrefix(m.line, "-ERR ") {
			return "", errors.New(strings.TrimPrefix(m.line, "-ERR "))
		}
		if strings.HasPrefix(m.line, "-") {
			return "", errors.New(strings.TrimPrefix(m.line, "-"))
		}
		if !strings.HasPrefix(m.line, "+") {
			return "", fmt.Errorf("server: unexpected response %q", m.line)
		}
		return strings.TrimPrefix(m.line, "+"), nil
	case <-deadline:
		return "", c.timedOut()
	case <-c.dead:
		if err := c.Err(); err != nil {
			return "", err
		}
		return "", errors.New("server: connection closed")
	}
}

// recvLine waits for one raw payload line (STATS body).
func (c *Client) recvLine(deadline <-chan time.Time) (string, error) {
	select {
	case m := <-c.resp:
		return m.line, nil
	case <-deadline:
		return "", c.timedOut()
	case <-c.dead:
		return "", errors.New("server: connection closed")
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.do("PING", nil)
	return err
}

// Register registers a continuous query from a qlang pattern.
func (c *Client) Register(name, pattern string) error {
	_, err := c.do("REGISTER "+name+" "+pattern, nil)
	return err
}

// Unregister removes a query. Its subscribers receive eviction notices.
func (c *Client) Unregister(name string) error {
	_, err := c.do("UNREGISTER "+name, nil)
	return err
}

// Queries lists the registered query names in registration order.
func (c *Client) Queries() ([]string, error) {
	line, err := c.do("QUERIES", nil)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(line) // "OK <k> names..."
	if len(fields) < 2 {
		return nil, fmt.Errorf("server: bad QUERIES reply %q", line)
	}
	return fields[2:], nil
}

// Label interns a label name of the given kind ("vertex" or "edge") and
// returns its numeric id, the value update records use on the wire.
func (c *Client) Label(kind, name string) (turboflux.Label, error) {
	line, err := c.do("LABEL "+kind+" "+name, nil)
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return 0, fmt.Errorf("server: bad LABEL reply %q", line)
	}
	n, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("server: bad LABEL reply %q", line)
	}
	return turboflux.Label(n), nil
}

// Apply sends one update and returns its acknowledgment.
func (c *Client) Apply(u turboflux.Update) (Ack, error) {
	line, err := c.do(u.String(), nil)
	if err != nil {
		return Ack{}, err
	}
	return parseAck(line)
}

// Insert applies one edge insertion.
func (c *Client) Insert(from turboflux.VertexID, l turboflux.Label, to turboflux.VertexID) (Ack, error) {
	return c.Apply(turboflux.Insert(from, l, to))
}

// Delete applies one edge deletion.
func (c *Client) Delete(from turboflux.VertexID, l turboflux.Label, to turboflux.VertexID) (Ack, error) {
	return c.Apply(turboflux.Delete(from, l, to))
}

// DeclareVertex declares a labeled vertex.
func (c *Client) DeclareVertex(v turboflux.VertexID, labels ...turboflux.Label) (Ack, error) {
	return c.Apply(turboflux.DeclareVertex(v, labels...))
}

func parseAck(line string) (Ack, error) {
	fields := strings.Fields(line) // "OK <seq> <total> [k=v ...]"
	if len(fields) < 3 {
		return Ack{}, fmt.Errorf("server: bad update ack %q", line)
	}
	seq, err1 := strconv.ParseUint(fields[1], 10, 64)
	total, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		return Ack{}, fmt.Errorf("server: bad update ack %q", line)
	}
	ack := Ack{Seq: seq, Total: total}
	if len(fields) > 3 {
		ack.Counts = make(map[string]int64, len(fields)-3)
		for _, f := range fields[3:] {
			name, val, ok := strings.Cut(f, "=")
			if !ok {
				return Ack{}, fmt.Errorf("server: bad update ack %q", line)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Ack{}, fmt.Errorf("server: bad update ack %q", line)
			}
			ack.Counts[name] = n
		}
	}
	return ack, nil
}

// Batch applies updates through the text batch frame.
func (c *Client) Batch(ups []turboflux.Update) (BatchAck, error) {
	if len(ups) == 0 {
		return BatchAck{}, errors.New("server: empty batch")
	}
	var body strings.Builder
	for _, u := range ups {
		body.WriteString(u.String())
		body.WriteByte('\n')
	}
	line, err := c.do(fmt.Sprintf("BATCH %d", len(ups)), []byte(body.String()))
	if err != nil {
		return BatchAck{}, err
	}
	return parseBatchAck(line)
}

// BatchBinary applies updates through the binary batch frame — the same
// record encoding the write-ahead log uses.
func (c *Client) BatchBinary(ups []turboflux.Update) (BatchAck, error) {
	if len(ups) == 0 {
		return BatchAck{}, errors.New("server: empty batch")
	}
	var body []byte
	for _, u := range ups {
		var err error
		if body, err = stream.AppendBinary(body, u); err != nil {
			return BatchAck{}, err
		}
	}
	line, err := c.do(fmt.Sprintf("BATCHB %d", len(body)), body)
	if err != nil {
		return BatchAck{}, err
	}
	return parseBatchAck(line)
}

func parseBatchAck(line string) (BatchAck, error) {
	fields := strings.Fields(line) // "OK <firstSeq> <applied> <total>"
	if len(fields) != 4 {
		return BatchAck{}, fmt.Errorf("server: bad batch ack %q", line)
	}
	first, err1 := strconv.ParseUint(fields[1], 10, 64)
	applied, err2 := strconv.Atoi(fields[2])
	total, err3 := strconv.ParseInt(fields[3], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return BatchAck{}, fmt.Errorf("server: bad batch ack %q", line)
	}
	return BatchAck{FirstSeq: first, Applied: applied, Total: total}, nil
}

// Subscribe starts streaming the query's matches to Events. It returns
// the server sequence number the subscription starts after: matches of
// later updates are delivered, earlier ones are not.
func (c *Client) Subscribe(name string) (uint64, error) {
	line, err := c.do("SUBSCRIBE "+name, nil)
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return 0, fmt.Errorf("server: bad SUBSCRIBE reply %q", line)
	}
	seq, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("server: bad SUBSCRIBE reply %q", line)
	}
	return seq, nil
}

// Unsubscribe stops streaming the query's matches.
func (c *Client) Unsubscribe(name string) error {
	_, err := c.do("UNSUBSCRIBE "+name, nil)
	return err
}

// Stats returns the STATS payload lines (see the package comment).
func (c *Client) Stats() ([]string, error) { return c.dataLines("STATS") }

// ShardStats returns the per-shard liveness and lag lines from a
// coordinator (a plain server rejects the request).
func (c *Client) ShardStats() ([]string, error) { return c.dataLines("SHARDSTATS") }

// dataLines performs one "+DATA <n>" framed exchange and returns the n
// payload lines.
func (c *Client) dataLines(cmd string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := c.startExchange()
	if _, err := c.bw.WriteString(cmd + "\n"); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	head, err := c.recv(deadline)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(head) // "DATA <n>"
	if len(fields) != 2 || fields[0] != "DATA" {
		return nil, fmt.Errorf("server: bad %s reply %q", cmd, head)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("server: bad %s reply %q", cmd, head)
	}
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l, err := c.recvLine(deadline)
		if err != nil {
			return nil, err
		}
		lines = append(lines, l)
	}
	return lines, nil
}

// Promote flips a follower server into leader mode: its replication link
// stops, its WAL is sealed, and it accepts writes from here on.
func (c *Client) Promote() error {
	_, err := c.do("PROMOTE", nil)
	return err
}

// Quit sends a clean goodbye and closes the connection.
func (c *Client) Quit() error {
	_, err := c.do("QUIT", nil)
	cerr := c.Close()
	if err != nil {
		return err
	}
	return cerr
}
