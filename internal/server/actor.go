package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"turboflux"
	"turboflux/internal/durable"
	"turboflux/internal/graph"
	"turboflux/internal/qlang"
	"turboflux/internal/replica"
	"turboflux/internal/stats"
	"turboflux/internal/stream"
)

// engineHost is the engine surface the actor drives; *turboflux.MultiEngine
// and *turboflux.DurableMultiEngine both provide it. Only functions
// reachable from the actor loop may call through it (actor-confinement).
//
//tf:actor-owned
type engineHost interface {
	Register(name string, q *turboflux.Query, opt turboflux.Options) error
	Unregister(name string) bool
	Queries() []string
	Apply(u turboflux.Update) (map[string]int64, error)
	ApplyBatchFunc(ups []turboflux.Update, boundary func(i int)) (map[string]int64, error)
	Stats() map[string]turboflux.Stats
	FanOutStats() turboflux.FanOutStats
	MQOStats() turboflux.MQOStats
	Close() error
}

type reqKind uint8

const (
	reqApply reqKind = iota
	reqBatch
	reqRegister
	reqUnregister
	reqQueries
	reqLabel
	reqSubscribe
	reqUnsubscribe
	reqDropConn
	reqStats
	reqReplicate    // register a replication stream (leader)
	reqReplAck      // record a follower's acknowledged LSN (leader)
	reqReplCaughtUp // release a stream's catch-up pin (leader)
	reqReplFrames   // apply a replicated chunk (follower)
	reqReplSeed     // adopt a leader snapshot (follower)
	reqReplStatus   // record the link's state (follower)
	reqReplLSN      // read the durable LSN (follower link positioning)
	reqPromote      // flip follower to leader
)

// request is one message to the engine-owner goroutine. reply, when
// non-nil, receives exactly one response and must have capacity 1 so the
// actor never blocks sending it.
type request struct {
	kind   reqKind
	u      stream.Update
	ups    []stream.Update
	name   string // query name / "vertex" / "edge"
	arg    string // pattern / label name
	sub    *subscriber
	connID uint64
	reply  chan response

	// Replication payloads.
	lsn   uint64        // follower applied LSN / acked LSN / chunk first LSN
	count int           // record count of a replicated chunk
	data  []byte        // raw snapshot or frame bytes
	addr  string        // follower's remote address (STATS)
	state replica.State // follower link state (reqReplStatus)
}

type response struct {
	err    error
	seq    uint64
	total  int64
	counts map[string]int64
	names  []string
	lines  []string
	label  graph.Label
	plan   *durable.Plan // catch-up plan (reqReplicate)
	feed   *replica.Feed // live-frame feed (reqReplicate)
}

// actor is the engine-owner goroutine (the serving subsystem's core): it
// serializes every graph mutation, query registration and subscription
// change onto the single-threaded MultiEngine, so any number of
// connections can drive it concurrently. Matches reported by the engines
// during an update are buffered in pending and fanned out to that query's
// subscribers — in emission order — before the update is acknowledged.
type actor struct {
	host    engineHost
	durable *turboflux.DurableMultiEngine // nil in memory-only mode
	vdict   *turboflux.Dict
	edict   *turboflux.Dict

	policy SlowPolicy
	depth  int

	// Replication state, actor-owned. role is set before the actor starts
	// (Options.Follow) and flipped by reqPromote; followers holds one
	// handle per live replication stream, keyed by connection id.
	role       role
	leaderAddr string // follower mode: the leader's address (STATS)
	feedDepth  int    // per-follower live-chunk queue capacity
	followers  map[uint64]*followerHandle
	repl       replica.State // follower mode: last reported link state

	reqCh chan request
	stop  chan struct{} // closed by Shutdown once connections are done
	done  chan struct{} // closed by run after drain + store close

	subs    map[string][]*subscriber
	pending []event
	seq     uint64 // global update sequence number (acked to clients)

	// Counters surfaced by STATS; owned by the actor goroutine.
	updates   uint64
	events    uint64
	drops     uint64
	evictions uint64
	lat       *stats.Latency

	conns    *atomic.Int64 // live connection count, owned by Server
	closeErr error         // store-close error, read after done

	// boundary is the persistent per-update hook handed to ApplyBatchFunc
	// (built once so batch frames allocate no closures).
	boundary func(i int)
}

func newActor(host engineHost, durable *turboflux.DurableMultiEngine, vdict, edict *turboflux.Dict, policy SlowPolicy, depth int, conns *atomic.Int64) *actor {
	a := &actor{
		host:    host,
		durable: durable,
		vdict:   vdict,
		edict:   edict,
		policy:  policy,
		depth:   depth,
		reqCh:   make(chan request, 128),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		subs:    make(map[string][]*subscriber),
		lat:     stats.NewLatency(0),
		conns:   conns,

		feedDepth: defaultFeedDepth,
		followers: make(map[uint64]*followerHandle),
	}
	if durable != nil {
		// Acked sequence numbers equal WAL LSNs in durable mode, so a
		// follower applying the same journal emits byte-identical events.
		a.seq = durable.LSN() //tf:actor-ok construction precedes actor start
	}
	a.boundary = func(int) {
		a.seq++
		a.updates++
		a.flushPending(a.seq)
	}
	return a
}

// run is the actor loop. Everything that touches the engine happens here:
// it is the confinement root the actor-confinement analyzer proves every
// owned-type access reachable from.
//
//tf:hotpath
//tf:actor-loop
func (a *actor) run() {
	for {
		select {
		case req := <-a.reqCh:
			a.handle(req)
		case <-a.stop:
			a.shutdown()
			return
		}
	}
}

// shutdown drains the requests already queued (connections are gone by
// now, so no new ones arrive), flushes every subscriber queue by closing
// the subscriptions, closes the engine host (fan-out pool and, in
// durable mode, the store), and signals done.
func (a *actor) shutdown() {
	for {
		select {
		case req := <-a.reqCh:
			a.handle(req)
			continue
		default:
		}
		break
	}
	//tf:unordered-ok closing subscriptions; per-queue event order is preserved by the pumps
	for _, subs := range a.subs {
		for _, s := range subs {
			s.close()
		}
	}
	// Release any replication streams whose teardown message never
	// arrived, so their feeds close and their compaction pins lift.
	//tf:unordered-ok independent per-follower teardown
	for id := range a.followers {
		a.dropRepl(id)
	}
	// Close releases the fan-out worker pool and, in durable mode, syncs
	// and closes the WAL.
	a.closeErr = a.host.Close()
	close(a.done)
}

func (a *actor) handle(req request) {
	var resp response
	switch req.kind {
	case reqApply:
		if a.role == roleFollower {
			resp.err = errFollowerReadOnly
			break
		}
		resp.seq, resp.counts, resp.err = a.applyOne(req.u)
		//tf:unordered-ok summing counts is order-independent
		for _, n := range resp.counts {
			resp.total += n
		}
	case reqBatch:
		if a.role == roleFollower {
			resp.err = errFollowerReadOnly
			break
		}
		resp.seq, resp.counts, resp.err = a.applyBatch(req.ups)
		//tf:unordered-ok summing counts is order-independent
		for _, n := range resp.counts {
			resp.total += n
		}
	case reqRegister:
		resp.err = a.register(req.name, req.arg)
	case reqUnregister:
		if !a.host.Unregister(req.name) {
			resp.err = fmt.Errorf("server: query %q is not registered", req.name)
			break
		}
		// Terminate the query's subscriptions; their pumps drain what is
		// already queued and then send the *EVICTED notice.
		for _, s := range a.subs[req.name] {
			s.evicted.Store(true)
			s.close()
		}
		delete(a.subs, req.name)
	case reqQueries:
		resp.names = a.host.Queries()
	case reqLabel:
		d := a.vdict
		if req.name == "edge" {
			d = a.edict
		}
		resp.label = d.Intern(req.arg)
	case reqSubscribe:
		if !a.registered(req.name) {
			resp.err = fmt.Errorf("server: query %q is not registered", req.name)
			break
		}
		a.subs[req.name] = append(a.subs[req.name], req.sub)
		resp.seq = a.seq
	case reqUnsubscribe:
		subs := a.subs[req.name]
		live := subs[:0]
		removed := false
		for _, s := range subs {
			if s.connID == req.connID {
				s.close()
				removed = true
			} else {
				live = append(live, s)
			}
		}
		a.subs[req.name] = live
		if !removed {
			resp.err = fmt.Errorf("server: no subscription for query %q on this connection", req.name)
		}
	case reqDropConn:
		//tf:unordered-ok removal; per-queue event order is unaffected
		for q, subs := range a.subs {
			live := subs[:0]
			for _, s := range subs {
				if s.connID == req.connID {
					s.close()
				} else {
					live = append(live, s)
				}
			}
			a.subs[q] = live
		}
		a.dropRepl(req.connID)
	case reqStats:
		resp.lines = a.statsLines()
	case reqReplicate:
		resp = a.handleReplicate(req)
	case reqReplAck:
		a.handleReplAck(req)
	case reqReplCaughtUp:
		a.handleReplCaughtUp(req.connID)
	case reqReplFrames:
		resp = a.handleReplFrames(req)
	case reqReplSeed:
		resp = a.handleReplSeed(req)
	case reqReplStatus:
		a.repl = req.state
	case reqReplLSN:
		if a.durable != nil {
			resp.seq = a.durable.LSN()
		}
	case reqPromote:
		resp = a.handlePromote()
	default:
		resp.err = fmt.Errorf("server: unknown request kind %d", req.kind)
	}
	if req.reply != nil {
		req.reply <- resp
	}
}

// register parses the pattern through the server's dictionaries and
// registers the query with an OnMatch hook that buffers events for
// fan-out. Parsing happens here, not in the connection goroutine, because
// qlang interns labels into the shared dictionaries.
func (a *actor) register(name, pattern string) error {
	q, _, err := qlang.Parse(pattern, a.vdict, a.edict)
	if err != nil {
		return err
	}
	return a.host.Register(name, q, turboflux.Options{OnMatch: a.onMatchFunc(name)})
}

// onMatchFunc returns the per-query OnMatch hook. The engine reuses the
// mapping slice across calls, so the hook copies it into the event.
func (a *actor) onMatchFunc(name string) func(bool, []graph.VertexID) {
	return func(positive bool, m []graph.VertexID) {
		cp := make([]graph.VertexID, len(m))
		copy(cp, m)
		a.pending = append(a.pending, event{query: name, positive: positive, mapping: cp})
	}
}

func (a *actor) registered(name string) bool {
	for _, n := range a.host.Queries() {
		if n == name {
			return true
		}
	}
	return false
}

// applyOne assigns the next sequence number, applies (journaling first in
// durable mode) and fans the resulting matches out to subscribers. On an
// engine error (e.g. a per-query work budget) the update may have been
// partially evaluated; matches reported before the error are still
// delivered, which is exactly what a single-threaded replay would emit.
func (a *actor) applyOne(u stream.Update) (uint64, map[string]int64, error) {
	start := time.Now()
	counts, err := a.host.Apply(u)
	a.seq++
	a.updates++
	a.flushPending(a.seq)
	a.lat.Observe(time.Since(start))
	return a.seq, counts, err
}

// applyBatch executes a whole BATCH/BATCHB frame through the engine's
// batched pipeline (journaling the frame as one log write in durable
// mode) and returns the sequence number of its first update. The
// boundary hook preserves the per-update serving contract: it fires once
// per batch index, after that update's matches have been replayed into
// pending and before any later update's, so each event is stamped with
// its own update's sequence number and delivered before the next
// update's events — the same interleaving a client driving updates
// one at a time would observe. Unlike the pre-batching loop, an engine
// error on one update no longer abandons the rest of the frame: every
// update is applied and the per-update errors are aggregated.
//
//tf:hotpath
func (a *actor) applyBatch(ups []stream.Update) (uint64, map[string]int64, error) {
	start := time.Now()
	first := a.seq + 1
	counts, err := a.host.ApplyBatchFunc(ups, a.boundary)
	a.lat.Observe(time.Since(start))
	return first, counts, err
}

// flushPending delivers the matches buffered during one update to their
// queries' subscribers, preserving emission order per query. This is the
// per-match fan-out step: no allocations besides the lazy compaction of
// subscriber lists when one closed.
//
//tf:hotpath
func (a *actor) flushPending(seq uint64) {
	for i := range a.pending {
		a.pending[i].seq = seq
		ev := a.pending[i]
		subs := a.subs[ev.query]
		anyClosed := false
		for _, s := range subs {
			if s.closed() {
				anyClosed = true
				continue
			}
			if s.enqueue(ev, a.policy) {
				a.events++
				continue
			}
			switch a.policy {
			case PolicyDrop:
				a.drops++
			case PolicyEvict:
				if s.evicted.Load() {
					a.evictions++
					anyClosed = true
				}
			}
		}
		if anyClosed {
			live := subs[:0]
			for _, s := range subs {
				if !s.closed() {
					live = append(live, s)
				}
			}
			a.subs[ev.query] = live
		}
	}
	a.pending = a.pending[:0]
}

// statsLines renders the STATS payload: one server line, one apply-latency
// line, an optional WAL line, then one line per registered query and one
// per live subscription, in deterministic order.
func (a *actor) statsLines() []string {
	var subCount int
	//tf:unordered-ok counting
	for _, subs := range a.subs {
		subCount += len(subs)
	}
	lines := make([]string, 0, 3+len(a.subs)+subCount)
	lines = append(lines, fmt.Sprintf(
		"server conns=%d policy=%s queue_cap=%d seq=%d updates=%d events=%d dropped=%d evicted=%d",
		a.conns.Load(), a.policy, a.depth, a.seq, a.updates, a.events, a.drops, a.evictions))
	qs := a.lat.Quantiles(50, 95, 99)
	lines = append(lines, fmt.Sprintf("apply_latency n=%d p50_ns=%d p95_ns=%d p99_ns=%d",
		a.lat.Count(), qs[0].Nanoseconds(), qs[1].Nanoseconds(), qs[2].Nanoseconds()))
	fs := a.host.FanOutStats()
	lines = append(lines, fmt.Sprintf(
		"fanout workers=%d evals=%d skipped=%d pooled=%d batches=%d busy_ns=%d",
		fs.Workers, fs.Evals, fs.Skipped, fs.Pooled, fs.Batches, fs.BusyNs))
	ms := a.host.MQOStats()
	lines = append(lines, fmt.Sprintf(
		"mqo subpats=%d shared=%d refs=%d maintain=%d saved=%d replays=%d",
		ms.SubPatterns, ms.SharedSubPatterns, ms.Refs, ms.MaintainRuns, ms.SavedEvals, ms.SharedReplays))
	if a.durable != nil {
		lines = append(lines, fmt.Sprintf("wal lsn=%d snap_lsn=%d",
			a.durable.LSN(), a.durable.Store().SnapLSN()))
	}
	lines = a.replStatsLines(lines)
	engStats := a.host.Stats()
	for _, name := range a.host.Queries() {
		st := engStats[name]
		lines = append(lines, fmt.Sprintf("query %s pos=%d neg=%d dcg_edges=%d bytes=%d subs=%d",
			name, st.PositiveMatches, st.NegativeMatches, st.DCGEdges, st.IntermediateBytes, len(a.subs[name])))
	}
	names := make([]string, 0, len(a.subs))
	//tf:unordered-ok keys are sorted before emission
	for name := range a.subs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, s := range a.subs[name] {
			lines = append(lines, fmt.Sprintf(
				"sub %s conn=%d depth=%d cap=%d enqueued=%d dropped=%d max_depth=%d",
				name, s.connID, len(s.ch), cap(s.ch), s.enqueued, s.dropped, s.maxDepth))
		}
	}
	for i, l := range lines {
		if strings.ContainsAny(l, "\r\n") {
			lines[i] = strings.NewReplacer("\r", " ", "\n", " ").Replace(l)
		}
	}
	return lines
}

// send enqueues req for the actor, failing fast once the actor has
// stopped so connection goroutines never block on a dead server.
func (a *actor) send(req request) error {
	select {
	case a.reqCh <- req:
		return nil
	case <-a.done:
		return errServerClosed
	}
}

// call sends req and waits for the actor's response.
func (a *actor) call(req request) (response, error) {
	req.reply = make(chan response, 1)
	if err := a.send(req); err != nil {
		return response{}, err
	}
	select {
	case resp := <-req.reply:
		return resp, nil
	case <-a.done:
		// The actor drains queued requests before closing done, so a
		// request it accepted always gets its reply; this arm only fires
		// if done closed between accept and drain completion — re-check
		// the reply to avoid losing it.
		select {
		case resp := <-req.reply:
			return resp, nil
		default:
			return response{}, errServerClosed
		}
	}
}
