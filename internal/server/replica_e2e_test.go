package server

// Multi-process replication e2e: real turboflux-serve leader and follower
// processes over TCP, a SIGKILLed leader mid-batch, and promotion of the
// follower with no confirmed-replicated update lost.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"turboflux"
)

var (
	serveBinOnce sync.Once
	serveBinPath string
	serveBinErr  error
)

// buildServeBin builds cmd/turboflux-serve once per test process.
func buildServeBin(t *testing.T) string {
	t.Helper()
	serveBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "turboflux-serve-bin")
		if err != nil {
			serveBinErr = err
			return
		}
		bin := filepath.Join(dir, "turboflux-serve")
		cmd := exec.Command("go", "build", "-o", bin, "turboflux/cmd/turboflux-serve")
		cmd.Dir = moduleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			serveBinErr = fmt.Errorf("building turboflux-serve: %v\n%s", err, out)
			return
		}
		serveBinPath = bin
	})
	if serveBinErr != nil {
		t.Fatal(serveBinErr)
	}
	return serveBinPath
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// serveProc is one child turboflux-serve process.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
}

// startServeProc launches turboflux-serve with the given extra flags on a
// kernel-assigned port and waits for its "# serving on" banner.
func startServeProc(t *testing.T, extra ...string) *serveProc {
	t.Helper()
	bin := buildServeBin(t)
	args := append([]string{"-addr", "127.0.0.1:0", "-numeric-labels"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd}
	t.Cleanup(func() {
		cmd.Process.Kill() //tf:unchecked-ok test teardown
		cmd.Wait()         //tf:unchecked-ok test teardown
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "# serving on ") {
				fields := strings.Fields(line)
				addrCh <- fields[3]
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("turboflux-serve never printed its serving banner")
	}
	return p
}

// e2eUpdate is the k-th edge update of the process-e2e workload (numeric
// labels: vertex label 0, edge label 0), one match event per update.
func e2eUpdate(k int) turboflux.Update {
	pairs := [...][2]turboflux.VertexID{{1, 2}, {3, 4}}
	p := pairs[(k/2)%len(pairs)]
	if k%2 == 0 {
		return turboflux.Insert(p[0], 0, p[1])
	}
	return turboflux.Delete(p[0], 0, p[1])
}

// TestE2EKillLeaderPromoteFollower drives a leader and follower as real
// processes: a writer streams batches into the leader while a subscriber
// listens on the follower; once a prefix is confirmed replicated
// (follower lag 0 over it) the leader is SIGKILLed mid-stream, the
// follower is promoted, and the test checks the confirmed prefix
// survived, writes resume with contiguous LSNs, and the follower's
// subscriber keeps receiving — with strictly increasing, never duplicated
// sequence numbers across the promotion.
func TestE2EKillLeaderPromoteFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	leaderDir := t.TempDir()
	followerDir := t.TempDir()

	// Bootstrap graph: four vertices with label 0, journaled on the fresh
	// leader and replicated to the follower.
	graphPath := filepath.Join(t.TempDir(), "boot.txt")
	boot := "v 1 0\nv 2 0\nv 3 0\nv 4 0\n"
	if err := os.WriteFile(graphPath, []byte(boot), 0o644); err != nil {
		t.Fatal(err)
	}
	const bootLen = 4
	const pattern = "(a:0)-[:0]->(b:0)"

	leader := startServeProc(t, "-data-dir", leaderDir, "-graph", graphPath)
	follower := startServeProc(t, "-data-dir", followerDir, "-follow", leader.addr)

	cl, err := Dial(leader.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //tf:unchecked-ok test teardown
	if err := cl.Register("q", pattern); err != nil {
		t.Fatal(err)
	}

	cfCtl := dialTest(t, follower.addr)
	if err := cfCtl.Register("q", pattern); err != nil {
		t.Fatal(err)
	}
	cfSub := dialTest(t, follower.addr)
	if _, err := cfSub.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	var (
		seqMu sync.Mutex
		seqs  []uint64
	)
	go func() {
		for ev := range cfSub.Events() {
			if ev.Evicted {
				return
			}
			seqMu.Lock()
			seqs = append(seqs, ev.Seq)
			seqMu.Unlock()
		}
	}()

	// Writer: stream batches into the leader until it dies.
	const batchSize = 10
	var (
		ackMu    sync.Mutex
		ackedLSN uint64
	)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		k := 0
		for {
			ups := make([]turboflux.Update, batchSize)
			for i := range ups {
				ups[i] = e2eUpdate(k)
				k++
			}
			ack, err := cl.Batch(ups)
			if err != nil {
				return // leader is gone
			}
			ackMu.Lock()
			ackedLSN = ack.FirstSeq + uint64(ack.Applied) - 1
			ackMu.Unlock()
		}
	}()

	// Wait for a substantial acked prefix, then for the follower to
	// confirm it (lag 0 over the prefix).
	readAcked := func() uint64 {
		ackMu.Lock()
		defer ackMu.Unlock()
		return ackedLSN
	}
	deadline := time.Now().Add(30 * time.Second)
	for readAcked() < bootLen+200 {
		if time.Now().After(deadline) {
			t.Fatal("writer never reached 200 acked updates")
		}
		time.Sleep(5 * time.Millisecond)
	}
	confirmed := readAcked()
	waitForLSN(t, cfCtl, confirmed)

	// SIGKILL the leader mid-stream: the writer is still batching.
	if err := leader.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	leader.cmd.Wait() //tf:unchecked-ok child was SIGKILLed
	<-writerDone

	// Promote the follower and check the confirmed prefix survived.
	if err := cfCtl.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	lines, err := cfCtl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	lsn, ok := statsUint(lines, "wal ", "lsn")
	if !ok || lsn < confirmed {
		t.Fatalf("promoted follower lsn = %d, want >= confirmed %d", lsn, confirmed)
	}
	if l, _ := statsLine(lines, "replica "); !strings.Contains(l, "role=leader") {
		t.Fatalf("promoted replica line = %q", l)
	}

	// Writes resume with contiguous LSNs and the subscriber keeps
	// receiving events.
	ack, err := cfCtl.Apply(turboflux.Insert(1, 0, 2))
	if err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	if ack.Seq != lsn+1 {
		t.Fatalf("post-promote seq = %d, want %d", ack.Seq, lsn+1)
	}
	sawResume := false
	for wait := time.Now().Add(10 * time.Second); time.Now().Before(wait); {
		seqMu.Lock()
		n := len(seqs)
		sawResume = n > 0 && seqs[n-1] >= ack.Seq
		seqMu.Unlock()
		if sawResume {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawResume {
		t.Fatalf("subscriber never saw the post-promote event (seq %d)", ack.Seq)
	}

	// No duplicate and no reordered delivery across the promotion.
	seqMu.Lock()
	defer seqMu.Unlock()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("event seqs not strictly increasing at %d: %d then %d", i, seqs[i-1], seqs[i])
		}
	}
}

// TestE2EFollowerServesReads checks the fan-out tier shape with real
// processes: one leader, two followers, all serving the same query; both
// followers converge on the leader's LSN and answer STATS/read traffic
// locally while rejecting writes.
func TestE2EFollowerServesReads(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	const updates = 100
	graphPath := filepath.Join(t.TempDir(), "boot.txt")
	if err := os.WriteFile(graphPath, []byte("v 1 0\nv 2 0\nv 3 0\nv 4 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	leader := startServeProc(t, "-data-dir", leaderDirOf(t), "-graph", graphPath)
	f1 := startServeProc(t, "-data-dir", leaderDirOf(t), "-follow", leader.addr)
	f2 := startServeProc(t, "-data-dir", leaderDirOf(t), "-follow", leader.addr)

	cl := dialTest(t, leader.addr)
	if err := cl.Register("q", "(a:0)-[:0]->(b:0)"); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for k := 0; k < updates; k++ {
		ack, err := cl.Apply(e2eUpdate(k))
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		last = ack.Seq
	}
	for i, f := range []*serveProc{f1, f2} {
		cf := dialTest(t, f.addr)
		waitForLSN(t, cf, last)
		if _, err := cf.Insert(1, 0, 2); err == nil || !strings.Contains(err.Error(), "read-only") {
			t.Fatalf("follower %d accepted a write: err=%v", i, err)
		}
	}

	// The leader sees both followers caught up.
	lines, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := statsLine(lines, "replica "); !strings.Contains(l, "followers=2") {
		t.Fatalf("leader replica line = %q", l)
	}
}

func leaderDirOf(t *testing.T) string { return t.TempDir() }
