package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"turboflux/internal/graph"
)

// SlowPolicy selects what the engine-owner does when a subscriber's
// bounded event queue is full.
type SlowPolicy uint8

const (
	// PolicyBlock stalls the update (and therefore its ack) until the
	// subscriber drains — lossless backpressure that propagates to every
	// producer, because updates are serialized through one actor.
	PolicyBlock SlowPolicy = iota
	// PolicyDrop discards the newest event and increments the
	// subscriber's drop counter (surfaced by STATS). Ingest never stalls;
	// the subscriber's transcript gets holes.
	PolicyDrop
	// PolicyEvict cancels the subscription: the subscriber receives an
	// *EVICTED notice after the events already queued. Ingest never
	// stalls and surviving subscribers keep lossless transcripts.
	PolicyEvict
)

// ParseSlowPolicy parses "block", "drop" or "evict".
func ParseSlowPolicy(s string) (SlowPolicy, error) {
	switch s {
	case "block":
		return PolicyBlock, nil
	case "drop":
		return PolicyDrop, nil
	case "evict":
		return PolicyEvict, nil
	default:
		return 0, fmt.Errorf("server: unknown slow-consumer policy %q (want block, drop or evict)", s)
	}
}

// String returns the flag spelling of the policy.
func (p SlowPolicy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDrop:
		return "drop"
	case PolicyEvict:
		return "evict"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// event is one match delivery: the query it belongs to, the server's
// global update sequence number that produced it, the sign, and a private
// copy of the query-vertex -> data-vertex mapping.
type event struct {
	query    string
	seq      uint64
	positive bool
	mapping  []graph.VertexID
}

// subscriber is one (connection, query) match stream: a bounded queue
// filled by the engine-owner goroutine and drained by the connection's
// pump goroutine. All counter fields are owned by the actor goroutine
// (written during enqueue, read during STATS); the pump only receives
// from ch and waits on done.
type subscriber struct {
	query  string
	connID uint64
	ch     chan event
	done   chan struct{} // closed exactly once: unsubscribe, eviction, conn teardown or shutdown
	once   sync.Once
	// evicted is set by the actor when the policy cancels the
	// subscription and read by the pump after done closes; atomic because
	// a concurrent connection teardown can race the eviction.
	evicted atomic.Bool

	// Actor-owned lag counters, surfaced by STATS.
	enqueued uint64
	dropped  uint64
	maxDepth int
}

func newSubscriber(query string, connID uint64, depth int) *subscriber {
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	return &subscriber{
		query:  query,
		connID: connID,
		ch:     make(chan event, depth),
		done:   make(chan struct{}),
	}
}

// close marks the subscription finished. Safe to call from any goroutine,
// any number of times.
func (s *subscriber) close() { s.once.Do(s.closeDone) }

func (s *subscriber) closeDone() { close(s.done) }

// closed reports whether the subscription has finished (nonblocking).
func (s *subscriber) closed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// enqueue delivers ev under the given policy and reports whether the
// event was queued. Called only by the engine-owner goroutine; this is
// the per-match fan-out step, so it must not allocate.
//
//tf:hotpath
func (s *subscriber) enqueue(ev event, policy SlowPolicy) bool {
	switch policy {
	case PolicyBlock:
		select {
		case s.ch <- ev:
		case <-s.done:
			return false
		}
	case PolicyDrop:
		select {
		case s.ch <- ev:
		default:
			s.dropped++
			return false
		}
	case PolicyEvict:
		select {
		case s.ch <- ev:
		default:
			s.evicted.Store(true)
			s.close()
			return false
		}
	default:
		return false
	}
	s.enqueued++
	if d := len(s.ch); d > s.maxDepth {
		s.maxDepth = d
	}
	return true
}
