package server

import (
	"strings"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

func TestParseRequest(t *testing.T) {
	tests := []struct {
		line    string
		want    Request
		wantErr bool
	}{
		{line: "PING", want: Request{Kind: KindPing}},
		{line: "PING\r", want: Request{Kind: KindPing}},
		{line: "  PING  ", want: Request{Kind: KindPing}},
		{line: "PING extra", wantErr: true},
		{line: "QUIT", want: Request{Kind: KindQuit}},
		{line: "QUERIES", want: Request{Kind: KindQueries}},
		{line: "STATS", want: Request{Kind: KindStats}},
		{line: "", wantErr: true},
		{line: "   ", wantErr: true},
		{line: "ping", wantErr: true}, // commands are case-sensitive
		{line: "NOSUCH", wantErr: true},

		{
			line: "REGISTER pay (a:0)-[:1]->(b:0)",
			want: Request{Kind: KindRegister, Name: "pay", Arg: "(a:0)-[:1]->(b:0)"},
		},
		{
			// The pattern keeps its internal spacing; the name may recur
			// inside the command word or the pattern without confusing the
			// parser.
			line: "REGISTER R (R:0)-[:1]->(b:0),  (b)-[:2]->(c)",
			want: Request{Kind: KindRegister, Name: "R", Arg: "(R:0)-[:1]->(b:0),  (b)-[:2]->(c)"},
		},
		{line: "REGISTER onlyname", wantErr: true},
		{line: "REGISTER bad/name (a)-[:0]->(b)", wantErr: true},
		{line: "REGISTER " + strings.Repeat("n", maxNameLen+1) + " (a)-[:0]->(b)", wantErr: true},

		{line: "UNREGISTER pay", want: Request{Kind: KindUnregister, Name: "pay"}},
		{line: "UNREGISTER", wantErr: true},
		{line: "UNREGISTER a b", wantErr: true},
		{line: "SUBSCRIBE q-1.x_Y", want: Request{Kind: KindSubscribe, Name: "q-1.x_Y"}},
		{line: "SUBSCRIBE q uery", wantErr: true},
		{line: "UNSUBSCRIBE pay", want: Request{Kind: KindUnsubscribe, Name: "pay"}},

		{line: "LABEL vertex Person", want: Request{Kind: KindLabel, Name: "vertex", Arg: "Person"}},
		{line: "LABEL edge follows", want: Request{Kind: KindLabel, Name: "edge", Arg: "follows"}},
		{line: "LABEL hyperedge x", wantErr: true},
		{line: "LABEL vertex", wantErr: true},
		{line: "LABEL vertex " + strings.Repeat("x", maxNameLen+1), wantErr: true},

		{line: "BATCH 3", want: Request{Kind: KindBatch, Count: 3}},
		{line: "BATCH 0", wantErr: true},
		{line: "BATCH -1", wantErr: true},
		{line: "BATCH many", wantErr: true},
		{line: "BATCH 100001", wantErr: true},
		{line: "BATCHB 16", want: Request{Kind: KindBatchBin, Count: 16}},
		{line: "BATCHB 4194305", wantErr: true},

		{line: "i 1 2 3", want: Request{Kind: KindUpdate, Update: stream.Insert(1, 2, 3)}},
		{line: "d 1 2 3", want: Request{Kind: KindUpdate, Update: stream.Delete(1, 2, 3)}},
		{line: "v 7 1,2", want: Request{Kind: KindUpdate, Update: stream.DeclareVertex(7, 1, 2)}},
		{line: "i 1 2", wantErr: true},
		{line: "i x y z", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseRequest(tt.line)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseRequest(%q) = %+v, want error", tt.line, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRequest(%q): %v", tt.line, err)
			continue
		}
		if got.Kind != tt.want.Kind || got.Name != tt.want.Name || got.Arg != tt.want.Arg || got.Count != tt.want.Count {
			t.Errorf("ParseRequest(%q) = %+v, want %+v", tt.line, got, tt.want)
		}
		if got.Kind == KindUpdate && got.Update.String() != tt.want.Update.String() {
			t.Errorf("ParseRequest(%q).Update = %v, want %v", tt.line, got.Update, tt.want.Update)
		}
	}
}

func TestAppendEventLine(t *testing.T) {
	ev := event{query: "pay", seq: 42, positive: true, mapping: []graph.VertexID{1, 20, 3}}
	got := string(appendEventLine(nil, ev))
	if got != "*EVENT pay 42 + 1 20 3" {
		t.Fatalf("event line = %q", got)
	}
	ev.positive = false
	ev.mapping = nil
	got = string(appendEventLine(nil, ev))
	if got != "*EVENT pay 42 -" {
		t.Fatalf("negative event line = %q", got)
	}
}
