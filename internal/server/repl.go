package server

// Replication wiring: the leader side (REPLICATE streams served off the
// durable store's catch-up plans and live append tap) and the follower
// side (applying shipped frames through the engine-owner actor, so the
// replica's transcript is byte-identical to the leader's). See DESIGN.md
// §14 and the internal/replica package for the protocol.

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"turboflux/internal/durable"
	"turboflux/internal/replica"
	"turboflux/internal/stream"
)

// role is the actor's replication role. A server starts as a leader
// (accepting writes) or, with Options.Follow, as a read-only follower;
// PROMOTE flips a follower to leader.
type role uint8

const (
	roleLeader role = iota
	roleFollower
)

// replPingInterval is how often an idle replication stream pings its
// follower (liveness + lag refresh).
const replPingInterval = 500 * time.Millisecond

// defaultFeedDepth is the per-follower live-chunk queue capacity when
// Options.ReplFeedDepth is zero.
const defaultFeedDepth = 256

// followerHandle is the actor-owned state of one connected replication
// stream (one per follower connection).
type followerHandle struct {
	connID  uint64
	addr    string
	feed    *replica.Feed
	plan    *durable.Plan // live until catch-up completes, then released
	cut     uint64        // leader LSN at handshake
	applied uint64        // follower's last acknowledged LSN
	catchup bool          // still streaming the sealed tail
}

// errFollowerReadOnly rejects writes on a follower.
var errFollowerReadOnly = fmt.Errorf("server: read-only follower; send writes to the leader")

// shipFrames is the durable store's append tap: it runs on the actor
// goroutine (inside Store.Append/AppendBatch, called from an apply
// handler) and forwards the freshly journaled frames to every follower
// feed. The frame bytes are copied once and shared read-only across
// feeds. A follower whose feed is full is cut off (feed overrun) and
// will reconnect and catch up — a slow replica never stalls ingest.
//
//tf:hotpath
func (a *actor) shipFrames(first, last uint64, frames []byte) {
	if len(a.followers) == 0 {
		return
	}
	data := make([]byte, len(frames))
	copy(data, frames)
	c := replica.Chunk{First: first, Count: int(last - first + 1), Data: data}
	//tf:unordered-ok independent per-follower queues
	for _, f := range a.followers {
		f.feed.Offer(c)
	}
}

// handleReplicate registers a new replication stream: it cuts a catch-up
// plan at the current LSN (sealing the active segment and pinning what
// the plan references) and registers the live feed under the same actor
// message, so no append can fall between the plan's cut and the feed.
func (a *actor) handleReplicate(req request) (resp response) {
	if a.durable == nil {
		resp.err = fmt.Errorf("server: replication requires a durable store (-data-dir)")
		return resp
	}
	if _, dup := a.followers[req.connID]; dup {
		resp.err = fmt.Errorf("server: connection already replicating")
		return resp
	}
	plan, err := a.durable.Store().CatchupPlan(req.lsn)
	if err != nil {
		resp.err = err
		return resp
	}
	f := &followerHandle{
		connID:  req.connID,
		addr:    req.addr,
		feed:    replica.NewFeed(a.feedDepth),
		plan:    plan,
		cut:     plan.CutLSN,
		applied: req.lsn,
		catchup: true,
	}
	a.followers[req.connID] = f
	resp.seq = plan.CutLSN
	resp.plan = plan
	resp.feed = f.feed
	return resp
}

// handleReplAck records a follower's applied position (the lag STATS
// reports is durable LSN minus this).
func (a *actor) handleReplAck(req request) {
	if f := a.followers[req.connID]; f != nil && req.lsn > f.applied {
		f.applied = req.lsn
	}
}

// handleReplCaughtUp releases a stream's catch-up pin once its pump has
// finished (or abandoned) the sealed tail; Compact may then reclaim the
// segments it was reading.
func (a *actor) handleReplCaughtUp(connID uint64) {
	if f := a.followers[connID]; f != nil && f.plan != nil {
		f.plan.Release()
		f.plan = nil
		f.catchup = false
	}
}

// dropRepl tears down a connection's replication stream: the pin is
// released and the feed closed, which terminates the pump's drain loop.
func (a *actor) dropRepl(connID uint64) {
	f := a.followers[connID]
	if f == nil {
		return
	}
	if f.plan != nil {
		f.plan.Release()
		f.plan = nil
	}
	f.feed.Close()
	delete(a.followers, connID)
}

// handleReplFrames applies one shipped chunk on a follower: decode every
// frame (CRC-verified), journal them into the follower's own WAL — the
// follower assigns the same LSNs the leader did, because the chunk
// starts exactly at its LSN+1 — and evaluate them through the engine
// with the normal per-update boundary, so subscribers see events
// byte-identical to the leader's. Applies are accepted regardless of
// role: they come from the replication link, not a client write.
func (a *actor) handleReplFrames(req request) (resp response) {
	if a.durable == nil {
		resp.err = fmt.Errorf("server: not a durable store")
		return resp
	}
	lsn := a.durable.LSN()
	if req.lsn != lsn+1 {
		resp.err = fmt.Errorf("server: replication gap: chunk starts at LSN %d, store is at %d", req.lsn, lsn)
		return resp
	}
	ups := make([]stream.Update, 0, req.count)
	body := req.data
	for len(body) > 0 {
		u, n, err := durable.DecodeFrame(body)
		if err != nil {
			resp.err = fmt.Errorf("server: replicated frame %d: %w", len(ups)+1, err)
			return resp
		}
		ups = append(ups, u)
		body = body[n:]
	}
	if len(ups) != req.count {
		resp.err = fmt.Errorf("server: replicated chunk decoded %d records, header said %d", len(ups), req.count)
		return resp
	}
	_, err := a.host.ApplyBatchFunc(ups, a.boundary)
	resp.err = err
	resp.seq = a.durable.LSN()
	return resp
}

// handleReplSeed adopts a leader snapshot on a fresh follower. The
// engine is rebuilt over the snapshot's graph; the actor re-points its
// dictionaries and fast-forwards its sequence counter so acked sequence
// numbers keep equaling LSNs.
func (a *actor) handleReplSeed(req request) (resp response) {
	if a.durable == nil {
		resp.err = fmt.Errorf("server: not a durable store")
		return resp
	}
	if err := a.durable.Reseed(req.data); err != nil {
		resp.err = err
		return resp
	}
	a.vdict = a.durable.VertexLabels()
	a.edict = a.durable.EdgeLabels()
	a.seq = a.durable.LSN()
	resp.seq = a.seq
	return resp
}

// handlePromote flips a follower to leader: the WAL is sealed (rotated
// and synced) so the promoted history ends on an immutable segment
// boundary, and writes are accepted from here on. The server stops the
// replication link before sending this message.
func (a *actor) handlePromote() (resp response) {
	if a.role != roleFollower {
		resp.err = fmt.Errorf("server: already leader")
		return resp
	}
	if a.durable != nil {
		st := a.durable.Store()
		if err := st.Rotate(); err != nil {
			resp.err = err
			return resp
		}
		if err := st.Sync(); err != nil {
			resp.err = err
			return resp
		}
	}
	a.role = roleLeader
	resp.seq = a.seq
	return resp
}

// replStatsLines renders the replication STATS lines: the leader's
// per-follower positions, or the follower's link state.
func (a *actor) replStatsLines(lines []string) []string {
	if a.role == roleFollower {
		lsn := uint64(0)
		if a.durable != nil {
			lsn = a.durable.LSN()
		}
		leaderLSN := a.repl.LeaderLSN
		if lsn > leaderLSN {
			leaderLSN = lsn
		}
		lines = append(lines, fmt.Sprintf(
			"replica role=follower leader=%s connected=%t applied_lsn=%d leader_lsn=%d lag=%d",
			a.leaderAddr, a.repl.Connected, lsn, leaderLSN, leaderLSN-lsn))
		return lines
	}
	if a.durable == nil {
		return lines
	}
	lines = append(lines, fmt.Sprintf("replica role=leader followers=%d", len(a.followers)))
	ids := make([]uint64, 0, len(a.followers))
	//tf:unordered-ok ids are sorted before emission
	for id := range a.followers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	lsn := a.durable.LSN()
	for _, id := range ids {
		f := a.followers[id]
		lines = append(lines, fmt.Sprintf(
			"follower conn=%d addr=%s applied_lsn=%d lag=%d catchup=%t",
			f.connID, f.addr, f.applied, lsn-f.applied, f.catchup))
	}
	return lines
}

// replicate serves one REPLICATE request: register the stream with the
// actor, then split the connection — a pump goroutine pushes catch-up
// and live frames while this (reader) goroutine consumes RACK
// acknowledgments until the peer goes away. Always returns false-on-exit
// semantics like dispatch: the connection closes when replication ends.
func (c *conn) replicate(req Request) bool {
	if len(c.subs) > 0 {
		return c.writeErr(fmt.Errorf("server: REPLICATE not allowed on a connection with subscriptions")) == nil
	}
	resp, err := c.a.call(request{kind: reqReplicate, connID: c.id, lsn: req.LSN, addr: c.nc.RemoteAddr().String()})
	if err != nil {
		return false
	}
	if resp.err != nil {
		return c.writeErr(resp.err) == nil
	}
	if c.writeLine(fmt.Sprintf("+OK %d", resp.seq)) != nil {
		return false
	}
	c.pumps.Add(1)
	//tf:goroutine repl-pump
	go c.replPump(resp.plan, resp.feed)

	// Replication-mode read loop: only RACK and QUIT are meaningful.
	for {
		line, err := c.readLine()
		if err != nil {
			return false
		}
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			continue
		case replica.IsAck(trimmed):
			lsn, perr := replica.ParseAck(trimmed)
			if perr != nil {
				if c.writeErr(perr) != nil {
					return false
				}
				continue
			}
			if c.a.send(request{kind: reqReplAck, connID: c.id, lsn: lsn}) != nil {
				return false
			}
		case trimmed == "QUIT":
			c.writeLine("+OK bye") //tf:unchecked-ok closing anyway
			return false
		default:
			if c.writeErr(fmt.Errorf("server: connection is replicating; only RACK and QUIT accepted")) != nil {
				return false
			}
		}
	}
}

// replPump streams one follower's data: the catch-up plan's snapshot
// and sealed segments first, then the live feed, pinging when idle. It
// ends when the feed closes (connection teardown or overrun) or the
// catch-up fails; a failed or overrun stream force-closes the socket so
// the reader loop tears the connection down and the follower reconnects.
func (c *conn) replPump(plan *durable.Plan, feed *replica.Feed) {
	defer c.pumps.Done()
	lastShipped, cerr := c.streamCatchup(plan)
	// Release the compaction pin whether or not catch-up succeeded.
	c.a.send(request{kind: reqReplCaughtUp, connID: c.id}) //tf:unchecked-ok best-effort after shutdown
	if cerr != nil {
		c.nc.Close() //tf:unchecked-ok forcing reader-loop teardown
		c.drainFeed(feed)
		return
	}
	ticker := time.NewTicker(replPingInterval)
	defer ticker.Stop()
	var scratch []byte
	for {
		select {
		case ch, ok := <-feed.Chunks():
			if !ok {
				if feed.Overrun() {
					c.nc.Close() //tf:unchecked-ok forcing reader-loop teardown
				}
				return
			}
			scratch = replica.AppendFramesHeader(scratch[:0], ch.First, ch.Count, len(ch.Data))
			c.writeFrame(scratch, ch.Data, len(feed.Chunks()) == 0) //tf:unchecked-ok sticky error; reader loop notices the dead peer
			lastShipped = ch.Last()
		case <-ticker.C:
			c.writeBytes(replica.AppendPing(scratch[:0], lastShipped), true)
		}
	}
}

// drainFeed empties a feed after a failed catch-up so chunks queued
// before the actor processes the drop do not accumulate.
func (c *conn) drainFeed(feed *replica.Feed) {
	for range feed.Chunks() {
	}
}

// streamCatchup ships the plan's snapshot and sealed-segment tail,
// returning the highest LSN shipped.
func (c *conn) streamCatchup(plan *durable.Plan) (uint64, error) {
	var scratch []byte
	shipped := plan.After
	if plan.SnapPath != "" {
		data, err := os.ReadFile(plan.SnapPath)
		if err != nil {
			return shipped, err
		}
		scratch = replica.AppendSnapHeader(scratch[:0], plan.SnapLSN, len(data))
		if err := c.writeFrame(scratch, data, true); err != nil {
			return shipped, err
		}
		shipped = plan.SnapLSN
	}
	err := replica.ChunkSegments(plan.Segments, shipped, func(ch replica.Chunk) error {
		scratch = replica.AppendFramesHeader(scratch[:0], ch.First, ch.Count, len(ch.Data))
		if err := c.writeFrame(scratch, ch.Data, true); err != nil {
			return err
		}
		shipped = ch.Last()
		return nil
	})
	return shipped, err
}

// writeFrame writes a push header and its raw body as one atomic wire
// unit (no other line can interleave between them).
func (c *conn) writeFrame(header, body []byte, flush bool) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	if _, err := c.bw.Write(header); err != nil {
		c.werr = err
		return err
	}
	if _, err := c.bw.Write(body); err != nil {
		c.werr = err
		return err
	}
	if flush {
		if err := c.bw.Flush(); err != nil {
			c.werr = err
			return err
		}
	}
	return nil
}

// promote handles PROMOTE: stop the replication link first (on this
// goroutine, so the link's in-flight actor calls can complete), then
// flip the actor's role.
func (c *conn) promote() bool {
	c.srv.stopLink()
	return c.simpleCall(request{kind: reqPromote})
}
