package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"turboflux/internal/query"
	"turboflux/internal/stream"
	"turboflux/internal/workload"
)

func tinyConfig(buf *bytes.Buffer) Config {
	cfg := DefaultConfig(buf)
	cfg.Users = 120
	cfg.Hosts = 300
	cfg.Triples = 4000
	cfg.QueriesPerSet = 2
	cfg.Timeout = time.Second
	cfg.WorkBudget = 1_000_000
	cfg.SizeCap = 1 << 24
	return cfg
}

// TestRunAllExperiments drives every experiment at miniature scale and
// checks each banner and at least one data row appears.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	if err := Run("all", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 3", "Figure 6", "Figure 7", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11", "Figure 12", "Figure 13", "Figure 14",
		"Figure 15", "Figure 16", "Figure 17", "NEC",
		"tree-3", "graph-6", "TurboFlux",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- output ---\n%s", want, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", tinyConfig(&buf)); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if err := Run("fig6", Config{}); err == nil {
		t.Fatal("nil writer must error")
	}
}

func TestRunQueryBasics(t *testing.T) {
	ds := workload.LSBench(workload.LSBenchConfig{Users: 120, StreamFraction: 0.1, Seed: 1})
	qs := ds.TreeQueries(3, 3, 5)
	rc := RunConfig{Timeout: time.Second, Engine: EngineOptions{WorkBudget: 1_000_000}}
	for _, kind := range []Kind{TurboFlux, SJTree, Graphflow} {
		r := RunQuery(kind, ds, qs[0], rc)
		if r.TimedOut {
			t.Fatalf("%v timed out on tiny workload", kind)
		}
		if r.Ops != len(ds.Stream) {
			t.Fatalf("%v applied %d ops, want %d", kind, r.Ops, len(ds.Stream))
		}
	}
	// Engines must agree on total matches for an insert-only stream.
	tf := RunQuery(TurboFlux, ds, qs[0], rc)
	sj := RunQuery(SJTree, ds, qs[0], rc)
	gf := RunQuery(Graphflow, ds, qs[0], rc)
	if tf.Matches != sj.Matches || tf.Matches != gf.Matches {
		t.Fatalf("match counts disagree: TF=%d SJ=%d GF=%d", tf.Matches, sj.Matches, gf.Matches)
	}
}

// TestEnginesAgreeOnMixedStream cross-checks TurboFlux, Graphflow and
// IncIsoMat match totals on a stream with deletions at workload scale —
// the macro-level analogue of the per-update differential tests.
func TestEnginesAgreeOnMixedStream(t *testing.T) {
	ds := workload.LSBench(workload.LSBenchConfig{
		Users: 120, StreamFraction: 0.08, DeletionRate: 0.1, Seed: 2,
	})
	qs := ds.TreeQueries(2, 4, 9)
	rc := RunConfig{Timeout: 5 * time.Second, Engine: EngineOptions{WorkBudget: 5_000_000}}
	for _, q := range qs {
		tf := RunQuery(TurboFlux, ds, q, rc)
		gf := RunQuery(Graphflow, ds, q, rc)
		if tf.TimedOut || gf.TimedOut {
			continue
		}
		if tf.Matches != gf.Matches {
			t.Fatalf("TF=%d GF=%d on %v", tf.Matches, gf.Matches, q)
		}
	}
}

func TestRunQueryCensoring(t *testing.T) {
	ds := workload.Netflow(workload.NetflowConfig{Hosts: 200, Triples: 8000, StreamFraction: 0.2, Seed: 3})
	qs := ds.TreeQueries(1, 9, 1)
	// A work budget of 1 censors immediately.
	r := RunQuery(Graphflow, ds, qs[0], RunConfig{Engine: EngineOptions{WorkBudget: 1}})
	if !r.TimedOut {
		t.Fatal("tiny budget must censor the query")
	}
	// SJ-Tree tuple cap censors at construction or during replay.
	r = RunQuery(SJTree, ds, qs[0], RunConfig{Engine: EngineOptions{TupleCap: 8}})
	if !r.TimedOut {
		t.Fatal("tiny tuple cap must censor SJ-Tree")
	}
}

func TestSelectQueriesFiltersEmpty(t *testing.T) {
	ds := workload.LSBench(workload.LSBenchConfig{Users: 120, StreamFraction: 0.1, Seed: 1})
	// A query that cannot match anything: label 99 does not exist.
	dead := query.NewGraph(2)
	dead.SetLabels(0, 99)
	_ = dead.AddEdge(0, workload.EdgeFollows, 1)
	live := ds.TreeQueries(1, 3, 5)[0]
	got := selectQueries(ds, []*query.Graph{dead, live}, 2,
		RunConfig{Timeout: time.Second, Engine: EngineOptions{WorkBudget: 1_000_000}})
	for _, q := range got {
		if q == dead {
			t.Fatal("zero-match query must be filtered")
		}
	}
}

func TestKindString(t *testing.T) {
	if TurboFlux.String() != "TurboFlux" || SJTree.String() != "SJ-Tree" ||
		Graphflow.String() != "Graphflow" || IncIsoMat.String() != "IncIsoMat" {
		t.Fatal("Kind names wrong")
	}
	if Kind(99).String() != "?" {
		t.Fatal("unknown kind must render ?")
	}
	if _, err := NewEngine(Kind(99), workload.LSBench(workload.LSBenchConfig{Users: 50, Seed: 1}).Graph,
		nil, EngineOptions{}); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestWithDeletionsHelper(t *testing.T) {
	ins := make([]stream.Update, 50)
	for i := range ins {
		ins[i] = stream.Insert(0, 0, 1)
	}
	out := withDeletions(ins, 50, 1)
	dels := 0
	for _, u := range out {
		if u.Op == stream.OpDelete {
			dels++
		}
	}
	if dels == 0 {
		t.Fatal("no deletions interleaved")
	}
	if got := prefixInserts(out, 10); len(got) != 10 {
		t.Fatalf("prefixInserts = %d", len(got))
	}
	for _, u := range prefixInserts(out, 10) {
		if u.Op != stream.OpInsert {
			t.Fatal("prefixInserts returned a non-insert")
		}
	}
}
