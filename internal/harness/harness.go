// Package harness drives the paper's experiments: it instantiates each
// continuous-matching engine on a generated dataset, replays the update
// stream per query under a timeout, and prints the table/series each
// figure of the evaluation section reports (see the per-experiment index
// in DESIGN.md §5).
package harness

import (
	"errors"
	"fmt"
	"io"
	"time"

	"turboflux/internal/core"
	"turboflux/internal/graph"
	"turboflux/internal/graphflow"
	"turboflux/internal/incisomat"
	"turboflux/internal/query"
	"turboflux/internal/sjtree"
	"turboflux/internal/stats"
	"turboflux/internal/stream"
	"turboflux/internal/workload"
)

// Kind selects a continuous matching engine.
type Kind int

const (
	// TurboFlux is this repository's core engine.
	TurboFlux Kind = iota
	// SJTree is the materialized-join baseline (insert-only).
	SJTree
	// Graphflow is the stateless delta-join baseline.
	Graphflow
	// IncIsoMat is the repeated-search baseline.
	IncIsoMat
)

// String returns the engine's display name.
func (k Kind) String() string {
	switch k {
	case TurboFlux:
		return "TurboFlux"
	case SJTree:
		return "SJ-Tree"
	case Graphflow:
		return "Graphflow"
	case IncIsoMat:
		return "IncIsoMat"
	default:
		return "?"
	}
}

// ContinuousEngine is the uniform driver interface every engine satisfies.
type ContinuousEngine interface {
	Apply(stream.Update) (int64, error)
	IntermediateSizeBytes() int64
}

// EngineOptions tweak engine construction for ablation experiments and
// per-update censoring.
type EngineOptions struct {
	Injective            bool
	DisableCheckAndAvoid bool
	DisableOrderAdjust   bool
	NaiveEL              bool
	// WCOSearch switches TurboFlux to the worst-case-optimal search
	// strategy over the DCG (Section 4.3 sketch).
	WCOSearch bool
	// WorkBudget caps per-update work inside TurboFlux, Graphflow and
	// IncIsoMat so non-selective queries can be censored mid-operation
	// (0 = unlimited).
	WorkBudget int64
	// TupleCap bounds SJ-Tree's total materialized tuples (0 = unlimited).
	TupleCap int64
	// Deadline censors SJ-Tree construction/replay by wall clock; RunQuery
	// derives it from RunConfig.Timeout.
	Deadline time.Time
}

// NewEngine builds an engine of the given kind over a private clone of g0.
func NewEngine(kind Kind, g0 *graph.Graph, q *query.Graph, opt EngineOptions) (ContinuousEngine, error) {
	g := g0.Clone()
	switch kind {
	case TurboFlux:
		copt := core.DefaultOptions()
		if opt.Injective {
			copt.Semantics = core.Isomorphism
		}
		copt.DisableCheckAndAvoid = opt.DisableCheckAndAvoid
		copt.DisableOrderAdjust = opt.DisableOrderAdjust
		copt.NaiveEL = opt.NaiveEL
		copt.WorkBudget = opt.WorkBudget
		if opt.WCOSearch {
			copt.Search = core.WCOJoin
		}
		return core.New(g, q, copt)
	case SJTree:
		return sjtree.New(g, q, sjtree.Options{
			Injective: opt.Injective,
			TupleCap:  opt.TupleCap,
			Deadline:  opt.Deadline,
		})
	case Graphflow:
		return graphflow.New(g, q, graphflow.Options{Injective: opt.Injective, WorkBudget: opt.WorkBudget})
	case IncIsoMat:
		return incisomat.New(g, q, incisomat.Options{Injective: opt.Injective, WorkBudget: opt.WorkBudget})
	default:
		return nil, fmt.Errorf("harness: unknown engine kind %d", kind)
	}
}

// Result is the outcome of replaying one query's stream on one engine.
type Result struct {
	Cost     time.Duration // cost(M(Δg,q)): total matching time over the stream
	Ops      int           // update operations applied
	Matches  int64         // positive + negative matches reported
	PeakSize int64         // peak intermediate-result size observed (bytes)
	TimedOut bool          // censored at Timeout or SizeCap
}

// RunConfig bounds one query run.
type RunConfig struct {
	// Timeout censors a query whose stream replay exceeds it (the paper
	// uses 2 hours at cluster scale; defaults here are laptop-scale).
	Timeout time.Duration
	// SizeCap censors a query whose engine materializes more intermediate
	// state than this many bytes (keeps SJ-Tree blow-ups from exhausting
	// memory); 0 disables.
	SizeCap int64
	// Stream overrides the dataset stream (e.g. a rate-limited prefix).
	Stream []stream.Update
	// Latency, when non-nil, records per-operation durations (adds one
	// clock read per update).
	Latency *stats.Latency
	Engine  EngineOptions
}

// checkEvery is how many operations pass between timeout/size checks.
const checkEvery = 64

// RunQuery builds engine kind on ds and replays the stream, measuring only
// the Apply calls. Engines that reject an operation type (SJ-Tree on
// deletions) have those operations skipped, matching the paper's setup
// where SJ-Tree is excluded from deletion experiments.
func RunQuery(kind Kind, ds *workload.Dataset, q *query.Graph, cfg RunConfig) Result {
	ups := cfg.Stream
	if ups == nil {
		ups = ds.Stream
	}
	eopt := cfg.Engine
	start := time.Now()
	deadline := time.Time{}
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
		eopt.Deadline = deadline
	}
	eng, err := NewEngine(kind, ds.Graph, q, eopt)
	if err != nil {
		return Result{TimedOut: true, Cost: time.Since(start)}
	}
	var res Result
	// cost(M(Δg,q)) covers stream processing only; the initial build is
	// excluded (the paper separates g0 loading from Δg processing) but
	// still counts against the wall-clock deadline above.
	loopStart := time.Now()
	for i, u := range ups {
		var opStart time.Time
		if cfg.Latency != nil {
			opStart = time.Now()
		}
		n, err := eng.Apply(u)
		if cfg.Latency != nil {
			cfg.Latency.Observe(time.Since(opStart))
		}
		if err != nil && !errors.Is(err, sjtree.ErrDeletionUnsupported) {
			res.TimedOut = true
			break
		}
		res.Matches += n
		res.Ops++
		// The deadline is checked every op: a single update can take
		// seconds on censor-worthy queries. Size sampling stays coarse.
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		if i%checkEvery == 0 {
			if sz := eng.IntermediateSizeBytes(); sz > res.PeakSize {
				res.PeakSize = sz
			}
			if cfg.SizeCap > 0 && eng.IntermediateSizeBytes() > cfg.SizeCap {
				res.TimedOut = true
				break
			}
		}
	}
	res.Cost = time.Since(loopStart)
	if sz := eng.IntermediateSizeBytes(); sz > res.PeakSize {
		res.PeakSize = sz
	}
	return res
}

// RunSet replays the stream for every query on one engine and aggregates.
func RunSet(kind Kind, ds *workload.Dataset, qs []*query.Graph, cfg RunConfig) *stats.Summary {
	var s stats.Summary
	for _, q := range qs {
		r := RunQuery(kind, ds, q, cfg)
		if r.TimedOut {
			s.AddTimeout()
			continue
		}
		s.AddQuery(r.Cost, r.PeakSize, r.Matches)
	}
	return &s
}

// Row prints one result row: label, then per-engine mean cost, and
// optionally mean intermediate size.
func Row(w io.Writer, label string, sums map[Kind]*stats.Summary, kinds []Kind, withSize bool) {
	fmt.Fprintf(w, "%-14s", label)
	for _, k := range kinds {
		s := sums[k]
		if s == nil || len(s.Costs) == 0 {
			fmt.Fprintf(w, " %14s", "timeout")
			continue
		}
		cell := stats.FormatDuration(s.MeanCost())
		if s.Timeouts > 0 {
			cell += fmt.Sprintf("(%dT)", s.Timeouts)
		}
		fmt.Fprintf(w, " %14s", cell)
	}
	if withSize {
		for _, k := range kinds {
			s := sums[k]
			if s == nil || len(s.Sizes) == 0 {
				fmt.Fprintf(w, " %12s", "-")
				continue
			}
			fmt.Fprintf(w, " %12s", stats.FormatBytes(s.MeanSize()))
		}
	}
	fmt.Fprintln(w)
}

// Header prints the table header for Row output.
func Header(w io.Writer, first string, kinds []Kind, withSize bool) {
	fmt.Fprintf(w, "%-14s", first)
	for _, k := range kinds {
		fmt.Fprintf(w, " %14s", k)
	}
	if withSize {
		for _, k := range kinds {
			fmt.Fprintf(w, " %12s", k.String()+" sz")
		}
	}
	fmt.Fprintln(w)
}
