package harness

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"

	"turboflux/internal/stats"
)

// CSVSink accumulates experiment rows and writes one CSV file per
// experiment, for plotting the figures outside the terminal tables.
// A nil *CSVSink is a no-op, so experiments can emit unconditionally.
type CSVSink struct {
	dir  string
	rows map[string][][]string
}

// NewCSVSink returns a sink writing into dir (created on Flush).
func NewCSVSink(dir string) *CSVSink {
	return &CSVSink{dir: dir, rows: make(map[string][][]string)}
}

// Add appends one data row for experiment exp. The first Add for an
// experiment should be preceded by AddHeader.
func (c *CSVSink) Add(exp string, row ...string) {
	if c == nil {
		return
	}
	c.rows[exp] = append(c.rows[exp], row)
}

// AddHeader sets the column header for experiment exp (idempotent: only
// the first header is kept).
func (c *CSVSink) AddHeader(exp string, cols ...string) {
	if c == nil {
		return
	}
	if len(c.rows[exp]) == 0 {
		c.rows[exp] = append(c.rows[exp], cols)
	}
}

// AddSummaries appends one row per engine for a labeled experiment cell.
func (c *CSVSink) AddSummaries(exp, label string, sums map[Kind]*stats.Summary, kinds []Kind) {
	if c == nil {
		return
	}
	c.AddHeader(exp, "label", "engine", "mean_cost_ns", "mean_size_bytes", "completed", "timeouts", "matches")
	for _, k := range kinds {
		s := sums[k]
		if s == nil {
			continue
		}
		c.Add(exp, label, k.String(),
			strconv.FormatInt(int64(s.MeanCost()), 10),
			strconv.FormatInt(s.MeanSize(), 10),
			strconv.Itoa(len(s.Costs)),
			strconv.Itoa(s.Timeouts),
			strconv.FormatInt(s.TotalMatches(), 10))
	}
}

// Flush writes every accumulated experiment to <dir>/<exp>.csv.
func (c *CSVSink) Flush() error {
	if c == nil || len(c.rows) == 0 {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	for exp, rows := range c.rows {
		f, err := os.Create(filepath.Join(c.dir, exp+".csv"))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.WriteAll(rows); err != nil {
			f.Close() //tf:unchecked-ok already failing; the write error wins
			return err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close() //tf:unchecked-ok already failing; the write error wins
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
