package harness

import (
	"testing"
	"time"

	"turboflux/internal/workload"
)

// TestPaperShapes asserts the paper's headline comparative results at
// miniature scale. Margins are deliberately loose (2x) so the test stays
// robust on loaded machines; the benchmarks measure the real gaps.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-shape test")
	}
	ds := workload.LSBench(workload.LSBenchConfig{Users: 600, StreamFraction: 0.1, Seed: 1})
	rc := RunConfig{
		Timeout: 10 * time.Second,
		SizeCap: 1 << 28,
		Engine:  EngineOptions{WorkBudget: 20_000_000, TupleCap: 1 << 23},
	}
	qs := ds.TreeQueries(18, 6, 7)
	qs = selectQueries(ds, qs, 6, rc)
	if len(qs) < 3 {
		t.Fatalf("only %d usable queries", len(qs))
	}

	tf := RunSet(TurboFlux, ds, qs, rc)
	sj := RunSet(SJTree, ds, qs, rc)
	gf := RunSet(Graphflow, ds, qs, rc)

	// Shape 1 (Figures 3/6): TurboFlux is faster than SJ-Tree on average.
	if len(tf.Costs) == 0 || len(sj.Costs) == 0 {
		t.Fatalf("unexpected censoring: tf=%d sj=%d", len(tf.Costs), len(sj.Costs))
	}
	if tf.MeanCost() > sj.MeanCost()*2 {
		t.Errorf("TurboFlux (%v) not clearly faster than SJ-Tree (%v)",
			tf.MeanCost(), sj.MeanCost())
	}
	// Shape 2 (Figure 6b): the DCG is much smaller than SJ-Tree's
	// materialized tuples.
	if tf.MeanSize()*5 > sj.MeanSize() {
		t.Errorf("DCG size %d not ≥5x smaller than SJ-Tree size %d",
			tf.MeanSize(), sj.MeanSize())
	}
	// Shape 3: every engine agrees on total matches (insert-only stream).
	if tf.TotalMatches() != sj.TotalMatches() || tf.TotalMatches() != gf.TotalMatches() {
		t.Errorf("match totals disagree: TF=%d SJ=%d GF=%d",
			tf.TotalMatches(), sj.TotalMatches(), gf.TotalMatches())
	}

	// Shape 4 (Figure 9): growing the initial graph hurts Graphflow far
	// more than TurboFlux (stateless recompute vs maintained index).
	small := ds
	big := workload.LSBench(workload.LSBenchConfig{Users: 2400, StreamFraction: 0.1, Seed: 1})
	rcBig := rc
	if len(big.Stream) > len(small.Stream) {
		rcBig.Stream = big.Stream[:len(small.Stream)]
	}
	q := qs[0]
	tfSmall := RunQuery(TurboFlux, small, q, rc)
	gfSmall := RunQuery(Graphflow, small, q, rc)
	// Regenerate a comparable query for the big dataset (same seed recipe).
	bigQs := selectQueries(big, big.TreeQueries(18, 6, 7), 1, rcBig)
	if len(bigQs) == 0 {
		t.Skip("no usable query at 4x scale")
	}
	tfBig := RunQuery(TurboFlux, big, bigQs[0], rcBig)
	gfBig := RunQuery(Graphflow, big, bigQs[0], rcBig)
	if tfSmall.TimedOut || gfSmall.TimedOut || tfBig.TimedOut || gfBig.TimedOut {
		t.Skip("censoring at this scale; skip growth-shape check")
	}
	tfGrowth := float64(tfBig.Cost) / float64(tfSmall.Cost+1)
	gfGrowth := float64(gfBig.Cost) / float64(gfSmall.Cost+1)
	if tfGrowth > gfGrowth*4 {
		t.Errorf("TurboFlux growth %.2fx should not dwarf Graphflow growth %.2fx",
			tfGrowth, gfGrowth)
	}

	// Shape 5 (Figure 12): IncIsoMat is at least an order of magnitude
	// slower per update on a short stream.
	short := rc
	short.Stream = prefixInserts(ds.Stream, 150)
	tfShort := RunQuery(TurboFlux, ds, q, short)
	imShort := RunQuery(IncIsoMat, ds, q, short)
	if !imShort.TimedOut && imShort.Cost < tfShort.Cost*5 {
		t.Errorf("IncIsoMat (%v) not ≥5x slower than TurboFlux (%v)",
			imShort.Cost, tfShort.Cost)
	}
}
