package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"turboflux/internal/stats"
)

func TestCSVSink(t *testing.T) {
	dir := t.TempDir()
	c := NewCSVSink(dir)
	var s stats.Summary
	s.AddQuery(3*time.Millisecond, 1024, 7)
	s.AddTimeout()
	c.AddSummaries("fig6", "tree-3", map[Kind]*stats.Summary{TurboFlux: &s}, []Kind{TurboFlux, SJTree})
	c.AddSummaries("fig6", "tree-6", map[Kind]*stats.Summary{TurboFlux: &s}, []Kind{TurboFlux})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.HasPrefix(out, "label,engine,mean_cost_ns") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "tree-3,TurboFlux,3000000,1024,1,1,7") {
		t.Fatalf("missing data row: %q", out)
	}
	if strings.Count(out, "\n") != 3 { // header + 2 rows
		t.Fatalf("row count wrong: %q", out)
	}
}

func TestCSVSinkNil(t *testing.T) {
	var c *CSVSink
	c.Add("x", "a")
	c.AddHeader("x", "a")
	c.AddSummaries("x", "l", nil, nil)
	if err := c.Flush(); err != nil {
		t.Fatal("nil sink must be a silent no-op")
	}
	// Empty sink flush is also a no-op.
	if err := NewCSVSink(t.TempDir()).Flush(); err != nil {
		t.Fatal(err)
	}
}
