package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"turboflux/internal/query"
	"turboflux/internal/stats"
	"turboflux/internal/stream"
	"turboflux/internal/workload"
)

// Config scales the experiment suite. The defaults are laptop-scale
// miniatures of Table 1; every knob maps to a paper parameter.
type Config struct {
	Users         int           // LSBench scale factor (paper: 0.1M/1M/10M)
	Hosts         int           // Netflow hosts
	Triples       int           // Netflow triples
	QueriesPerSet int           // queries per (type, size) set (paper: 100)
	Timeout       time.Duration // per-query censoring (paper: 2h)
	SizeCap       int64         // per-query intermediate-size cap, bytes
	WorkBudget    int64         // per-update work cap inside each engine
	Seed          int64
	Scatter       bool // print per-query scatter rows (Figures 6c/d, 7c/d)
	Out           io.Writer
	// CSV, when non-nil, additionally records every experiment cell for
	// plotting; call CSV.Flush after Run.
	CSV *CSVSink
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Users:         1500,
		Hosts:         2500,
		Triples:       50000,
		QueriesPerSet: 8,
		Timeout:       5 * time.Second,
		SizeCap:       1 << 28,
		WorkBudget:    20_000_000,
		Seed:          1,
		Out:           out,
	}
}

// Experiments lists every experiment id accepted by Run.
func Experiments() []string {
	return []string{
		"fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "nec", "all",
	}
}

// Run executes one experiment by id (or "all").
func Run(exp string, cfg Config) error {
	if cfg.Out == nil {
		return fmt.Errorf("harness: nil output writer")
	}
	runs := map[string]func(Config){
		"fig3":  Fig3Tradeoff,
		"fig6":  Fig6TreeQueries,
		"fig7":  Fig7GraphQueries,
		"fig8":  Fig8InsertionRate,
		"fig9":  Fig9DatasetSize,
		"fig10": Fig10Isomorphism,
		"fig11": Fig11DeletionRate,
		"fig12": Fig12IncIsoMat,
		"fig13": Fig13NetflowTree,
		"fig14": Fig14NetflowGraph,
		"fig15": Fig15NetflowPath,
		"fig16": Fig16NetflowBTree,
		"fig17": Fig17Selectivity,
		"nec":   NECCompression,
	}
	if exp == "all" {
		for _, id := range Experiments() {
			if id == "all" {
				continue
			}
			runs[id](cfg)
		}
		return nil
	}
	f, ok := runs[exp]
	if !ok {
		return fmt.Errorf("harness: unknown experiment %q (known: %v)", exp, Experiments())
	}
	f(cfg)
	return nil
}

func (cfg Config) lsbench() *workload.Dataset {
	return workload.LSBench(workload.LSBenchConfig{
		Users: cfg.Users, StreamFraction: 0.1, Seed: cfg.Seed,
	})
}

func (cfg Config) netflow() *workload.Dataset {
	return workload.Netflow(workload.NetflowConfig{
		Hosts: cfg.Hosts, Triples: cfg.Triples, StreamFraction: 0.1, Seed: cfg.Seed,
	})
}

func (cfg Config) runCfg() RunConfig {
	return RunConfig{
		Timeout: cfg.Timeout,
		SizeCap: cfg.SizeCap,
		Engine: EngineOptions{
			WorkBudget: cfg.WorkBudget,
			TupleCap:   cfg.SizeCap / 32,
		},
	}
}

func banner(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

func speedupLine(w io.Writer, base Kind, sums map[Kind]*stats.Summary, others []Kind) {
	tf := sums[base]
	if tf == nil || len(tf.Costs) == 0 {
		return
	}
	for _, k := range others {
		s := sums[k]
		if s == nil || len(s.Costs) == 0 {
			fmt.Fprintf(w, "  %s vs %s: all %s queries censored\n", base, k, k)
			continue
		}
		fmt.Fprintf(w, "  %s vs %s: %.2fx faster", base, k, tf.Speedup(s))
		if len(tf.Sizes) > 0 && len(s.Sizes) > 0 && tf.MeanSize() > 0 {
			fmt.Fprintf(w, ", %.2fx smaller intermediate results",
				float64(s.MeanSize())/float64(tf.MeanSize()))
		}
		fmt.Fprintln(w)
	}
}

// selectQueries mirrors the paper's query-set post-processing: queries
// with no positive matches over the entire insertion stream are excluded
// (Section 5.1). Candidates are screened with a TurboFlux run; up to want
// surviving queries are returned.
func selectQueries(ds *workload.Dataset, cands []*query.Graph, want int, rc RunConfig) []*query.Graph {
	var out []*query.Graph
	for _, q := range cands {
		r := RunQuery(TurboFlux, ds, q, rc)
		if !r.TimedOut && r.Matches == 0 {
			continue
		}
		out = append(out, q)
		if len(out) == want {
			break
		}
	}
	return out
}

// treeSet generates a filtered tree query set.
func (cfg Config) treeSet(ds *workload.Dataset, size int, seed int64) []*query.Graph {
	cands := ds.TreeQueries(cfg.QueriesPerSet*3, size, seed)
	return selectQueries(ds, cands, cfg.QueriesPerSet, cfg.runCfg())
}

// cyclicSet generates a filtered cyclic query set.
func (cfg Config) cyclicSet(ds *workload.Dataset, size int, seed int64) []*query.Graph {
	cands := ds.CyclicQueries(cfg.QueriesPerSet*3, size, seed)
	return selectQueries(ds, cands, cfg.QueriesPerSet, cfg.runCfg())
}

// querySetSums runs every engine in kinds on the query set and returns the
// per-engine summaries.
func querySetSums(ds *workload.Dataset, qs []*query.Graph, kinds []Kind, rc RunConfig) map[Kind]*stats.Summary {
	out := make(map[Kind]*stats.Summary, len(kinds))
	for _, k := range kinds {
		out[k] = RunSet(k, ds, qs, rc)
	}
	return out
}

// Fig3Tradeoff prints the performance/storage trade-off summary of
// Figure 3: one row per engine on the default LSBench tree-q6 set.
func Fig3Tradeoff(cfg Config) {
	banner(cfg.Out, "Figure 3: performance vs storage trade-off (LSBench, tree q6)")
	ds := cfg.lsbench()
	qs := cfg.treeSet(ds, 6, cfg.Seed+60)
	rc := cfg.runCfg()
	// IncIsoMat is orders of magnitude slower: give it a truncated stream
	// so the row completes, and report per-op cost for comparability.
	short := rc
	if len(ds.Stream) > 200 {
		short.Stream = ds.Stream[:200]
	}
	fmt.Fprintf(cfg.Out, "%-12s %14s %14s %12s\n", "engine", "cost/op", "total", "intermediate")
	for _, k := range []Kind{TurboFlux, SJTree, Graphflow, IncIsoMat} {
		r := rc
		if k == IncIsoMat {
			r = short
		}
		s := RunSet(k, ds, qs, r)
		if len(s.Costs) == 0 {
			fmt.Fprintf(cfg.Out, "%-12s %14s %14s %12s\n", k, "timeout", "timeout", "-")
			continue
		}
		ops := len(r.Stream)
		if ops == 0 {
			ops = len(ds.Stream)
		}
		perOp := s.MeanCost() / time.Duration(ops)
		fmt.Fprintf(cfg.Out, "%-12s %14s %14s %12s\n",
			k, stats.FormatDuration(perOp), stats.FormatDuration(s.MeanCost()),
			stats.FormatBytes(s.MeanSize()))
	}
	// Per-update latency tail for TurboFlux (the means above hide it).
	if len(qs) > 0 {
		lat := rc
		lat.Latency = stats.NewLatency(0)
		RunQuery(TurboFlux, ds, qs[0], lat)
		fmt.Fprintf(cfg.Out, "TurboFlux per-update latency (first query): %s\n", lat.Latency)
	}
}

// Fig6TreeQueries reproduces Figure 6: LSBench tree queries of sizes
// 3/6/9/12 — (a) mean cost per engine, (b) mean intermediate size, and
// with cfg.Scatter the per-query scatter pairs of (c)/(d).
func Fig6TreeQueries(cfg Config) {
	banner(cfg.Out, "Figure 6: LSBench tree queries (a: cost, b: intermediate size)")
	ds := cfg.lsbench()
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	Header(cfg.Out, "query size", kinds, true)
	for _, size := range []int{3, 6, 9, 12} {
		qs := cfg.treeSet(ds, size, cfg.Seed+int64(size))
		sums := querySetSums(ds, qs, kinds, cfg.runCfg())
		Row(cfg.Out, fmt.Sprintf("tree-%d", size), sums, kinds, true)
		cfg.CSV.AddSummaries("fig6", fmt.Sprintf("tree-%d", size), sums, kinds)
		speedupLine(cfg.Out, TurboFlux, sums, []Kind{SJTree, Graphflow})
		if cfg.Scatter {
			scatterRows(cfg.Out, ds, qs, cfg.runCfg(), size)
		}
	}
}

// scatterRows prints per-query cost pairs, the data behind Figures 6c/d
// and 7c/d.
func scatterRows(w io.Writer, ds *workload.Dataset, qs []*query.Graph, rc RunConfig, size int) {
	fmt.Fprintf(w, "  scatter (size %d): query  TurboFlux  SJ-Tree  Graphflow\n", size)
	for i, q := range qs {
		tf := RunQuery(TurboFlux, ds, q, rc)
		sj := RunQuery(SJTree, ds, q, rc)
		gf := RunQuery(Graphflow, ds, q, rc)
		fmt.Fprintf(w, "    Q%02d %12s %12s %12s\n", i,
			cell(tf), cell(sj), cell(gf))
	}
}

func cell(r Result) string {
	if r.TimedOut {
		return "timeout"
	}
	return stats.FormatDuration(r.Cost)
}

// Fig7GraphQueries reproduces Figure 7: LSBench cyclic queries of sizes
// 6/9/12.
func Fig7GraphQueries(cfg Config) {
	banner(cfg.Out, "Figure 7: LSBench graph (cyclic) queries")
	ds := cfg.lsbench()
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	Header(cfg.Out, "query size", kinds, true)
	for _, size := range []int{6, 9, 12} {
		qs := cfg.cyclicSet(ds, size, cfg.Seed+100+int64(size))
		sums := querySetSums(ds, qs, kinds, cfg.runCfg())
		Row(cfg.Out, fmt.Sprintf("graph-%d", size), sums, kinds, true)
		cfg.CSV.AddSummaries("fig7", fmt.Sprintf("graph-%d", size), sums, kinds)
		speedupLine(cfg.Out, TurboFlux, sums, []Kind{SJTree, Graphflow})
		if cfg.Scatter {
			scatterRows(cfg.Out, ds, qs, cfg.runCfg(), size)
		}
	}
}

// Fig8InsertionRate reproduces Figure 8: tree-q6 cost while the insertion
// rate (stream share of all triples) grows from 2% to 10%.
func Fig8InsertionRate(cfg Config) {
	banner(cfg.Out, "Figure 8: varying insertion rate (LSBench, tree q6)")
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	Header(cfg.Out, "insert rate", kinds, true)
	for _, rate := range []int{2, 4, 6, 8, 10} {
		ds := workload.LSBench(workload.LSBenchConfig{
			Users: cfg.Users, StreamFraction: float64(rate) / 100, Seed: cfg.Seed,
		})
		qs := cfg.treeSet(ds, 6, cfg.Seed+200)
		sums := querySetSums(ds, qs, kinds, cfg.runCfg())
		Row(cfg.Out, fmt.Sprintf("%d%%", rate), sums, kinds, true)
		cfg.CSV.AddSummaries("fig8", fmt.Sprintf("%d%%", rate), sums, kinds)
	}
}

// Fig9DatasetSize reproduces Figure 9: fixed-size stream over initial
// graphs scaled 1x / 4x / 16x (the paper scales users 0.1M/1M/10M).
func Fig9DatasetSize(cfg Config) {
	banner(cfg.Out, "Figure 9: varying dataset size (fixed stream)")
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	Header(cfg.Out, "users", kinds, true)
	// The paper replays the same queries and stream size against every
	// initial-graph scale; select the query set once at 1x.
	base := workload.LSBench(workload.LSBenchConfig{
		Users: cfg.Users, StreamFraction: 0.1, Seed: cfg.Seed,
	})
	qs := cfg.treeSet(base, 6, cfg.Seed+300)
	streamLen := len(base.Stream)
	for _, mult := range []int{1, 4, 16} {
		ds := base
		if mult != 1 {
			ds = workload.LSBench(workload.LSBenchConfig{
				Users: cfg.Users * mult, StreamFraction: 0.1, Seed: cfg.Seed,
			})
		}
		rc := cfg.runCfg()
		if len(ds.Stream) > streamLen {
			rc.Stream = ds.Stream[:streamLen]
		}
		sums := querySetSums(ds, qs, kinds, rc)
		Row(cfg.Out, fmt.Sprintf("%dx", mult), sums, kinds, true)
		cfg.CSV.AddSummaries("fig9", fmt.Sprintf("%dx", mult), sums, kinds)
	}
}

// Fig10Isomorphism reproduces Figure 10 (Appendix B.1): subgraph
// isomorphism semantics on LSBench tree and graph queries.
func Fig10Isomorphism(cfg Config) {
	banner(cfg.Out, "Figure 10: subgraph isomorphism semantics (LSBench)")
	ds := cfg.lsbench()
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	rc := cfg.runCfg()
	rc.Engine.Injective = true
	Header(cfg.Out, "query set", kinds, false)
	for _, set := range []struct {
		label string
		qs    []*query.Graph
	}{
		{"tree-6", cfg.treeSet(ds, 6, cfg.Seed+400)},
		{"graph-6", cfg.cyclicSet(ds, 6, cfg.Seed+410)},
	} {
		sums := querySetSums(ds, set.qs, kinds, rc)
		Row(cfg.Out, set.label, sums, kinds, false)
		cfg.CSV.AddSummaries("fig10", set.label, sums, kinds)
		speedupLine(cfg.Out, TurboFlux, sums, []Kind{SJTree, Graphflow})
	}
}

// Fig11DeletionRate reproduces Figure 11 (Appendix B.2): insertion rate
// fixed at 6%, deletion rate (#deletions/#insertions) 2%–10%. SJ-Tree is
// excluded: it does not support deletion.
func Fig11DeletionRate(cfg Config) {
	banner(cfg.Out, "Figure 11: varying deletion rate (LSBench, tree q6; no SJ-Tree)")
	kinds := []Kind{TurboFlux, Graphflow}
	Header(cfg.Out, "delete rate", kinds, true)
	for _, rate := range []int{2, 4, 6, 8, 10} {
		ds := workload.LSBench(workload.LSBenchConfig{
			Users: cfg.Users, StreamFraction: 0.06,
			DeletionRate: float64(rate) / 100, Seed: cfg.Seed,
		})
		qs := cfg.treeSet(ds, 6, cfg.Seed+500)
		sums := querySetSums(ds, qs, kinds, cfg.runCfg())
		Row(cfg.Out, fmt.Sprintf("%d%%", rate), sums, kinds, true)
		cfg.CSV.AddSummaries("fig11", fmt.Sprintf("%d%%", rate), sums, kinds)
	}
}

// Fig12IncIsoMat reproduces Figure 12 (Appendix B.3): TurboFlux vs
// IncIsoMat on the cheapest and most expensive tree-q6 queries, over a
// short insert stream (a) and the same stream with 6% deletions (b).
func Fig12IncIsoMat(cfg Config) {
	banner(cfg.Out, "Figure 12: comparison with IncIsoMat (LSBench)")
	ds := cfg.lsbench()
	qs := cfg.treeSet(ds, 6, cfg.Seed+600)
	insertStream := prefixInserts(ds.Stream, 1000)
	rc := cfg.runCfg()
	rc.Stream = insertStream

	// Locate min- and max-cost queries on TurboFlux.
	type scored struct {
		q *query.Graph
		c time.Duration
	}
	var ss []scored
	for _, q := range qs {
		r := RunQuery(TurboFlux, ds, q, rc)
		if !r.TimedOut {
			ss = append(ss, scored{q, r.Cost})
		}
	}
	if len(ss) == 0 {
		fmt.Fprintln(cfg.Out, "  all queries censored")
		return
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].c < ss[j].c })
	sel := []scored{ss[0], ss[len(ss)-1]}

	delStream := withDeletions(insertStream, 6, cfg.Seed)
	for i, variant := range []struct {
		label  string
		stream []stream.Update
	}{
		{"(a) 1k inserts", insertStream},
		{"(b) +6% deletes", delStream},
	} {
		fmt.Fprintf(cfg.Out, "%s\n", variant.label)
		fmt.Fprintf(cfg.Out, "%-10s %14s %14s %10s\n", "query", "TurboFlux", "IncIsoMat", "speedup")
		for j, sc := range sel {
			r := cfg.runCfg()
			r.Stream = variant.stream
			tf := RunQuery(TurboFlux, ds, sc.q, r)
			im := RunQuery(IncIsoMat, ds, sc.q, r)
			name := fmt.Sprintf("Q%s-%d", []string{"min", "max"}[j], i)
			if im.TimedOut {
				fmt.Fprintf(cfg.Out, "%-10s %14s %14s %10s\n", name, cell(tf), "timeout", ">")
				continue
			}
			fmt.Fprintf(cfg.Out, "%-10s %14s %14s %9.0fx\n",
				name, cell(tf), cell(im), float64(im.Cost)/float64(max64(int64(tf.Cost), 1)))
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// prefixInserts returns the first n insert operations of ups.
func prefixInserts(ups []stream.Update, n int) []stream.Update {
	out := make([]stream.Update, 0, n)
	for _, u := range ups {
		if u.Op != stream.OpInsert {
			continue
		}
		out = append(out, u)
		if len(out) == n {
			break
		}
	}
	return out
}

// withDeletions interleaves pct% deletions of previously inserted edges.
func withDeletions(ins []stream.Update, pct int, seed int64) []stream.Update {
	out := make([]stream.Update, 0, len(ins)+len(ins)*pct/100)
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*2862933555777941757 + 3037000493
		return int(state % uint64(n))
	}
	for i, u := range ins {
		out = append(out, u)
		if i > 0 && next(100) < pct {
			d := ins[next(i)]
			out = append(out, stream.Delete(d.Edge.From, d.Edge.Label, d.Edge.To))
		}
	}
	return out
}

// Fig13NetflowTree reproduces Figure 13 (Appendix B.4): Netflow tree
// queries. The label-poor dataset makes the baselines time out, which is
// the paper's finding; they run under the same censoring here.
func Fig13NetflowTree(cfg Config) {
	banner(cfg.Out, "Figure 13: Netflow tree queries")
	ds := cfg.netflow()
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	Header(cfg.Out, "query size", kinds, true)
	for _, size := range []int{3, 6, 9, 12} {
		qs := cfg.treeSet(ds, size, cfg.Seed+700+int64(size))
		sums := querySetSums(ds, qs, kinds, cfg.runCfg())
		Row(cfg.Out, fmt.Sprintf("tree-%d", size), sums, kinds, true)
		cfg.CSV.AddSummaries("fig13", fmt.Sprintf("tree-%d", size), sums, kinds)
	}
}

// Fig14NetflowGraph reproduces Figure 14: Netflow cyclic queries.
func Fig14NetflowGraph(cfg Config) {
	banner(cfg.Out, "Figure 14: Netflow graph (cyclic) queries")
	ds := cfg.netflow()
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	Header(cfg.Out, "query size", kinds, true)
	for _, size := range []int{6, 9, 12} {
		qs := cfg.cyclicSet(ds, size, cfg.Seed+800+int64(size))
		sums := querySetSums(ds, qs, kinds, cfg.runCfg())
		Row(cfg.Out, fmt.Sprintf("graph-%d", size), sums, kinds, true)
		cfg.CSV.AddSummaries("fig14", fmt.Sprintf("graph-%d", size), sums, kinds)
	}
}

// Fig15NetflowPath reproduces Figure 15 (Appendix B.6): the path queries
// of the SJ-Tree paper, sizes 3–5.
func Fig15NetflowPath(cfg Config) {
	banner(cfg.Out, "Figure 15: Netflow path queries from [7]")
	ds := cfg.netflow()
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	Header(cfg.Out, "query size", kinds, true)
	for _, size := range []int{3, 4, 5} {
		qs := ds.PathQueries(cfg.QueriesPerSet, size, cfg.Seed+900+int64(size))
		sums := querySetSums(ds, qs, kinds, cfg.runCfg())
		Row(cfg.Out, fmt.Sprintf("path-%d", size), sums, kinds, true)
		cfg.CSV.AddSummaries("fig15", fmt.Sprintf("path-%d", size), sums, kinds)
		speedupLine(cfg.Out, TurboFlux, sums, []Kind{SJTree, Graphflow})
	}
}

// Fig16NetflowBTree reproduces Figure 16: the binary-tree queries of the
// SJ-Tree paper, sizes 4–14.
func Fig16NetflowBTree(cfg Config) {
	banner(cfg.Out, "Figure 16: Netflow binary-tree queries from [7]")
	ds := cfg.netflow()
	kinds := []Kind{TurboFlux, SJTree, Graphflow}
	Header(cfg.Out, "query size", kinds, true)
	for _, size := range []int{4, 8, 11, 14} {
		qs := ds.BinaryTreeQueries(cfg.QueriesPerSet, size, cfg.Seed+950+int64(size))
		sums := querySetSums(ds, qs, kinds, cfg.runCfg())
		Row(cfg.Out, fmt.Sprintf("btree-%d", size), sums, kinds, true)
		cfg.CSV.AddSummaries("fig16", fmt.Sprintf("btree-%d", size), sums, kinds)
	}
}

// Fig17Selectivity reproduces Figure 17 (Appendix C): the distribution of
// positive-match counts per query set, as stacked-histogram fractions.
func Fig17Selectivity(cfg Config) {
	banner(cfg.Out, "Figure 17: selectivity distribution (positive matches per query)")
	type set struct {
		label string
		ds    *workload.Dataset
		qs    []*query.Graph
	}
	ls := cfg.lsbench()
	nf := cfg.netflow()
	sets := []set{
		{"LSBench tree-6", ls, ls.TreeQueries(cfg.QueriesPerSet, 6, cfg.Seed+60)},
		{"LSBench graph-6", ls, ls.CyclicQueries(cfg.QueriesPerSet, 6, cfg.Seed+61)},
		{"Netflow tree-3", nf, nf.TreeQueries(cfg.QueriesPerSet, 3, cfg.Seed+62)},
		{"Netflow path-3", nf, nf.PathQueries(cfg.QueriesPerSet, 3, cfg.Seed+63)},
		{"Netflow btree-4", nf, nf.BinaryTreeQueries(cfg.QueriesPerSet, 4, cfg.Seed+64)},
	}
	for _, s := range sets {
		h := stats.NewSelectivityHistogram()
		for _, q := range s.qs {
			r := RunQuery(TurboFlux, s.ds, q, cfg.runCfg())
			if !r.TimedOut {
				h.Observe(r.Matches)
			}
		}
		fmt.Fprintf(cfg.Out, "%-16s %s\n", s.label, h)
	}
}

// NECCompression reproduces Appendix B.5's NEC part: how many queries the
// NEC tree compresses, and SJ-Tree's cost/size on original vs compressed
// queries.
func NECCompression(cfg Config) {
	banner(cfg.Out, "Appendix B.5: SJ-Tree with NEC query compression")
	ds := cfg.lsbench()
	qs := cfg.treeSet(ds, 6, cfg.Seed+60)
	compressible := 0
	var origCost, compCost time.Duration
	var origSize, compSize int64
	rc := cfg.runCfg()
	for _, q := range qs {
		cq, ok := query.NECCompress(q)
		if !ok {
			continue
		}
		compressible++
		o := RunQuery(SJTree, ds, q, rc)
		c := RunQuery(SJTree, ds, cq, rc)
		if o.TimedOut || c.TimedOut {
			continue
		}
		origCost += o.Cost
		compCost += c.Cost
		origSize += o.PeakSize
		compSize += c.PeakSize
	}
	fmt.Fprintf(cfg.Out, "compressible queries: %d/%d\n", compressible, len(qs))
	if origCost > 0 {
		fmt.Fprintf(cfg.Out, "SJ-Tree cost: original %s, NEC-compressed %s (%.1f%% saved)\n",
			stats.FormatDuration(origCost), stats.FormatDuration(compCost),
			100*(1-float64(compCost)/float64(origCost)))
		fmt.Fprintf(cfg.Out, "SJ-Tree size: original %s, NEC-compressed %s\n",
			stats.FormatBytes(origSize), stats.FormatBytes(compSize))
	}
	// The paper's conclusion: TurboFlux still wins by orders of magnitude.
	sums := querySetSums(ds, qs, []Kind{TurboFlux, SJTree}, rc)
	speedupLine(cfg.Out, TurboFlux, sums, []Kind{SJTree})
}
