package query

import "turboflux/internal/graph"

// DetermineMatchingOrder computes a matching order over the query tree:
// a root-first sequence in which every parent precedes its children and,
// among the available frontier vertices, the one with the smallest
// estimated partial-solution count is matched first.
//
// The paper derives the order by greedily shrinking q' one leaf edge at a
// time, each step removing the edge that minimizes the partial-solution
// count of the shrunk tree; under a multiplicative fan-out model that is
// equivalent to this frontier-greedy construction (most selective subtree
// first), which is what we implement. cost(u) supplies the per-vertex
// estimate — the engine passes the number of explicit DCG edges labeled u,
// i.e. the exact count of explicit data paths ending at u.
func DetermineMatchingOrder(t *Tree, cost func(u graph.VertexID) float64) []graph.VertexID {
	n := t.Q.NumVertices()
	order := make([]graph.VertexID, 0, n)
	order = append(order, t.Root)
	frontier := append([]graph.VertexID(nil), t.Children[t.Root]...)
	for len(frontier) > 0 {
		best := 0
		bestCost := cost(frontier[0])
		for i := 1; i < len(frontier); i++ {
			if c := cost(frontier[i]); c < bestCost {
				best, bestCost = i, c
			}
		}
		u := frontier[best]
		frontier[best] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		order = append(order, u)
		frontier = append(frontier, t.Children[u]...)
	}
	return order
}

// ValidOrder reports whether order is a permutation of the query vertices
// in which every parent precedes its children. Used in tests and as a
// defensive check when a caller supplies a custom order.
func ValidOrder(t *Tree, order []graph.VertexID) bool {
	n := t.Q.NumVertices()
	if len(order) != n {
		return false
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, u := range order {
		if int(u) >= n || pos[u] != -1 {
			return false
		}
		pos[u] = i
	}
	if order[0] != t.Root {
		return false
	}
	for u := 0; u < n; u++ {
		if graph.VertexID(u) == t.Root {
			continue
		}
		if pos[t.ParentEdge[u].Parent] > pos[u] {
			return false
		}
	}
	return true
}
