// Package query models query graphs and their spanning-tree form.
//
// A query graph is a small directed labeled graph whose vertices carry
// label-set constraints. TurboFlux converts a query graph q into a query
// tree q' rooted at a starting query vertex u_s (Section 3.1 of the paper);
// the edges of q not selected for the tree become non-tree edges that are
// checked during SubgraphSearch.
package query

import (
	"fmt"
	"sort"

	"turboflux/internal/graph"
)

// Graph is a query graph. Query vertex IDs are dense: 0 .. NumVertices-1.
type Graph struct {
	labels [][]graph.Label
	edges  []graph.Edge // From/To are query vertex IDs; Label is the edge label
	adj    [][]int      // vertex -> indices into edges touching it (both directions)
}

// NewGraph returns a query graph with n unconstrained vertices.
func NewGraph(n int) *Graph {
	return &Graph{
		labels: make([][]graph.Label, n),
		adj:    make([][]int, n),
	}
}

// NumVertices reports the number of query vertices.
func (q *Graph) NumVertices() int { return len(q.labels) }

// NumEdges reports the number of query edges.
func (q *Graph) NumEdges() int { return len(q.edges) }

// SetLabels sets the label constraint of query vertex u. Labels are sorted
// and deduplicated; an empty set matches any data vertex.
func (q *Graph) SetLabels(u graph.VertexID, labels ...graph.Label) {
	ls := append([]graph.Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	w := 0
	for i, l := range ls {
		if i == 0 || l != ls[i-1] {
			ls[w] = l
			w++
		}
	}
	q.labels[u] = ls[:w]
}

// Labels returns the label constraint of u. The slice must not be mutated.
func (q *Graph) Labels(u graph.VertexID) []graph.Label { return q.labels[u] }

// AddEdge adds directed query edge (u, l, u'). Duplicate edges (same
// endpoints and label) are rejected so that the total order over query
// edges is well defined.
func (q *Graph) AddEdge(u graph.VertexID, l graph.Label, u2 graph.VertexID) error {
	if int(u) >= len(q.labels) || int(u2) >= len(q.labels) {
		return fmt.Errorf("query: edge (%d,%d,%d) references unknown vertex", u, l, u2)
	}
	e := graph.Edge{From: u, Label: l, To: u2}
	for _, ex := range q.edges {
		if ex == e {
			return fmt.Errorf("query: duplicate edge %v", e)
		}
	}
	idx := len(q.edges)
	q.edges = append(q.edges, e)
	q.adj[u] = append(q.adj[u], idx)
	if u2 != u {
		q.adj[u2] = append(q.adj[u2], idx)
	}
	return nil
}

// Edge returns the i-th query edge. The index i is also the edge's position
// in the total order used for duplicate-result avoidance.
func (q *Graph) Edge(i int) graph.Edge { return q.edges[i] }

// Edges returns all query edges in total order. Must not be mutated.
func (q *Graph) Edges() []graph.Edge { return q.edges }

// EdgeIndex returns the total-order index of e, or -1 if e is not a query
// edge.
func (q *Graph) EdgeIndex(e graph.Edge) int {
	for i, ex := range q.edges {
		if ex == e {
			return i
		}
	}
	return -1
}

// IncidentEdges returns the indices of edges incident to u (either
// direction). Must not be mutated.
func (q *Graph) IncidentEdges(u graph.VertexID) []int { return q.adj[u] }

// Validate checks that the query is non-empty and weakly connected; every
// engine in this repository requires a connected query.
func (q *Graph) Validate() error {
	n := q.NumVertices()
	if n == 0 {
		return fmt.Errorf("query: empty query")
	}
	if n == 1 {
		if len(q.edges) == 0 {
			return fmt.Errorf("query: single-vertex queries without edges are not supported")
		}
		return nil
	}
	seen := make([]bool, n)
	stack := []graph.VertexID{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range q.adj[u] {
			e := q.edges[ei]
			for _, nb := range [2]graph.VertexID{e.From, e.To} {
				if !seen[nb] {
					seen[nb] = true
					cnt++
					stack = append(stack, nb)
				}
			}
		}
	}
	if cnt != n {
		return fmt.Errorf("query: graph is disconnected (%d of %d vertices reachable)", cnt, n)
	}
	return nil
}

// Diameter returns the length of the longest shortest path in q, treating
// edges as undirected. IncIsoMat uses this to bound the affected subgraph.
func (q *Graph) Diameter() int {
	n := q.NumVertices()
	diam := 0
	dist := make([]int, n)
	queue := make([]graph.VertexID, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], graph.VertexID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, ei := range q.adj[u] {
				e := q.edges[ei]
				for _, nb := range [2]graph.VertexID{e.From, e.To} {
					if dist[nb] == -1 {
						dist[nb] = dist[u] + 1
						if dist[nb] > diam {
							diam = dist[nb]
						}
						queue = append(queue, nb)
					}
				}
			}
		}
	}
	return diam
}

// Clone returns a deep copy of q.
func (q *Graph) Clone() *Graph {
	c := NewGraph(q.NumVertices())
	for u, ls := range q.labels {
		c.labels[u] = append([]graph.Label(nil), ls...)
	}
	c.edges = append([]graph.Edge(nil), q.edges...)
	for u, a := range q.adj {
		c.adj[u] = append([]int(nil), a...)
	}
	return c
}

// String renders the query in a compact single-line form, mainly for test
// failure messages.
func (q *Graph) String() string {
	s := fmt.Sprintf("q{n=%d", q.NumVertices())
	for _, e := range q.edges {
		s += fmt.Sprintf(" %d-%d->%d", e.From, e.Label, e.To)
	}
	return s + "}"
}
