package query

import (
	"testing"

	"turboflux/internal/graph"
)

func TestNECCompressMergesEquivalentLeaves(t *testing.T) {
	// u0 with three equivalent leaves: u1, u2, u3 all (label 5) reached via
	// edge label 7 from u0, plus one non-equivalent leaf u4.
	q := NewGraph(5)
	q.SetLabels(0, 1)
	for _, u := range []graph.VertexID{1, 2, 3} {
		q.SetLabels(u, 5)
		if err := q.AddEdge(0, 7, u); err != nil {
			t.Fatal(err)
		}
	}
	q.SetLabels(4, 6)
	if err := q.AddEdge(0, 7, 4); err != nil {
		t.Fatal(err)
	}
	c, ok := NECCompress(q)
	if !ok {
		t.Fatal("expected compression")
	}
	if c.NumVertices() != 3 { // u0, one representative leaf, u4
		t.Fatalf("compressed to %d vertices, want 3", c.NumVertices())
	}
	if c.NumEdges() != 2 {
		t.Fatalf("compressed to %d edges, want 2", c.NumEdges())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNECCompressDirectionMatters(t *testing.T) {
	// Leaves with the same label but opposite edge directions must not
	// merge.
	q := NewGraph(3)
	q.SetLabels(1, 5)
	q.SetLabels(2, 5)
	_ = q.AddEdge(0, 7, 1)
	_ = q.AddEdge(2, 7, 0)
	if _, ok := NECCompress(q); ok {
		t.Fatal("opposite-direction leaves must not merge")
	}
}

func TestNECCompressLabelMatters(t *testing.T) {
	q := NewGraph(3)
	q.SetLabels(1, 5)
	q.SetLabels(2, 6)
	_ = q.AddEdge(0, 7, 1)
	_ = q.AddEdge(0, 7, 2)
	if _, ok := NECCompress(q); ok {
		t.Fatal("differently-labeled leaves must not merge")
	}
}

func TestNECCompressNoOp(t *testing.T) {
	q := fixtureQuery() // a path: no equivalent leaves
	c, ok := NECCompress(q)
	if ok {
		t.Fatal("path query must not compress")
	}
	if c != q {
		t.Fatal("no-op compression must return the original")
	}
}

func TestNECCompressPreservesNonLeafStructure(t *testing.T) {
	// Two equivalent leaves hanging off the middle of a path.
	q := NewGraph(5)
	_ = q.AddEdge(0, 1, 1)
	_ = q.AddEdge(1, 2, 2)
	q.SetLabels(3, 9)
	q.SetLabels(4, 9)
	_ = q.AddEdge(1, 8, 3)
	_ = q.AddEdge(1, 8, 4)
	c, ok := NECCompress(q)
	if !ok {
		t.Fatal("expected compression")
	}
	if c.NumVertices() != 4 || c.NumEdges() != 3 {
		t.Fatalf("compressed shape %d/%d, want 4 vertices / 3 edges", c.NumVertices(), c.NumEdges())
	}
}
