package query

import (
	"testing"

	"turboflux/internal/graph"
)

// Labels used by the test fixtures.
const (
	lA graph.Label = iota
	lB
	lC
	lD
)

const (
	eX graph.Label = iota // edge labels
	eY
	eZ
)

// fixtureData builds a small data graph:
//
//	one A-vertex (0) fanning out via eX to 50 B-vertices (1..50);
//	each B-vertex connects via eY to the single C-vertex 100;
//	C connects via eZ to the single D-vertex 200.
func fixtureData() *graph.Graph {
	g := graph.New()
	_ = g.AddVertex(0, lA)
	_ = g.AddVertex(100, lC)
	_ = g.AddVertex(200, lD)
	for i := graph.VertexID(1); i <= 50; i++ {
		_ = g.AddVertex(i, lB)
		g.InsertEdge(0, eX, i)
		g.InsertEdge(i, eY, 100)
	}
	g.InsertEdge(100, eZ, 200)
	return g
}

// fixtureQuery: u0(A) -x-> u1(B) -y-> u2(C) -z-> u3(D).
func fixtureQuery() *Graph {
	q := NewGraph(4)
	q.SetLabels(0, lA)
	q.SetLabels(1, lB)
	q.SetLabels(2, lC)
	q.SetLabels(3, lD)
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(q.AddEdge(0, eX, 1))
	must(q.AddEdge(1, eY, 2))
	must(q.AddEdge(2, eZ, 3))
	return q
}

func TestValidate(t *testing.T) {
	q := fixtureQuery()
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dis := NewGraph(3)
	_ = dis.AddEdge(0, eX, 1) // vertex 2 unreachable
	if err := dis.Validate(); err == nil {
		t.Fatal("disconnected query must fail validation")
	}
	if err := NewGraph(0).Validate(); err == nil {
		t.Fatal("empty query must fail validation")
	}
	if err := NewGraph(1).Validate(); err == nil {
		t.Fatal("single vertex without edges must fail validation")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	q := NewGraph(2)
	if err := q.AddEdge(0, eX, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(0, eX, 1); err == nil {
		t.Fatal("duplicate edge must be rejected")
	}
	if err := q.AddEdge(0, eX, 5); err == nil {
		t.Fatal("edge to unknown vertex must be rejected")
	}
}

func TestDiameter(t *testing.T) {
	q := fixtureQuery() // path of 4 vertices -> diameter 3
	if d := q.Diameter(); d != 3 {
		t.Fatalf("Diameter = %d, want 3", d)
	}
	tri := NewGraph(3)
	_ = tri.AddEdge(0, eX, 1)
	_ = tri.AddEdge(1, eX, 2)
	_ = tri.AddEdge(2, eX, 0)
	if d := tri.Diameter(); d != 1 {
		t.Fatalf("triangle Diameter = %d, want 1", d)
	}
}

func TestEstimateEdgeMatches(t *testing.T) {
	g := fixtureData()
	q := fixtureQuery()
	// (u0 A) -x-> (u1 B): exactly 50 data edges.
	got := EstimateEdgeMatches(g, q.Labels(0), eX, q.Labels(1))
	if got != 50 {
		t.Fatalf("estimate A-x->B = %v, want 50", got)
	}
	// (u2 C) -z-> (u3 D): exactly 1.
	if got := EstimateEdgeMatches(g, q.Labels(2), eZ, q.Labels(3)); got != 1 {
		t.Fatalf("estimate C-z->D = %v, want 1", got)
	}
	// unconstrained endpoints fall back to the per-label edge count.
	if got := EstimateEdgeMatches(g, nil, eY, nil); got != 50 {
		t.Fatalf("estimate *-y->* = %v, want 50", got)
	}
	// no matching endpoints at all.
	if got := EstimateEdgeMatches(g, []graph.Label{lD}, eX, []graph.Label{lA}); got != 0 {
		t.Fatalf("estimate D-x->A = %v, want 0", got)
	}
}

func TestChooseStartQVertex(t *testing.T) {
	g := fixtureData()
	q := fixtureQuery()
	// The most selective edge is (u2, z, u3) with exactly 1 match; both
	// endpoints have 1 matching vertex; u2 has larger degree (2 vs 1).
	if us := ChooseStartQVertex(q, g); us != 2 {
		t.Fatalf("ChooseStartQVertex = %d, want 2", us)
	}
}

func TestTransformToTreePath(t *testing.T) {
	g := fixtureData()
	q := fixtureQuery()
	tr, err := TransformToTree(q, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 2 {
		t.Fatalf("root = %d, want 2", tr.Root)
	}
	// Path query: all 3 edges must be tree edges, none non-tree.
	if len(tr.NonTree) != 0 {
		t.Fatalf("NonTree = %v, want empty", tr.NonTree)
	}
	// u2's parent is NoVertex; u1's parent is u2 via reversed edge (u1->u2).
	if tr.Parent(2) != graph.NoVertex {
		t.Fatal("root must have no parent")
	}
	pe := tr.ParentEdge[1]
	if pe.Parent != 2 || pe.Forward {
		t.Fatalf("u1 parent edge = %+v, want parent 2, reversed", pe)
	}
	if pe.QueryEdge() != (graph.Edge{From: 1, Label: eY, To: 2}) {
		t.Fatalf("QueryEdge round trip = %v", pe.QueryEdge())
	}
	if tr.Depth[2] != 0 || tr.Depth[1] != 1 || tr.Depth[0] != 2 || tr.Depth[3] != 1 {
		t.Fatalf("depths = %v", tr.Depth)
	}
	pre := tr.VerticesPreorder()
	if len(pre) != 4 || pre[0] != 2 {
		t.Fatalf("preorder = %v", pre)
	}
}

func TestTransformToTreeCycle(t *testing.T) {
	g := fixtureData()
	// Triangle query u0(A)-x->u1(B), u1-y->u2(C), u0-?->u2: use eX for the
	// closing edge so the cycle exists structurally.
	q := NewGraph(3)
	q.SetLabels(0, lA)
	q.SetLabels(1, lB)
	q.SetLabels(2, lC)
	_ = q.AddEdge(0, eX, 1)
	_ = q.AddEdge(1, eY, 2)
	_ = q.AddEdge(0, eZ, 2)
	tr, err := TransformToTree(q, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.NonTree) != 1 {
		t.Fatalf("NonTree count = %d, want 1", len(tr.NonTree))
	}
	nt := tr.NonTree[0]
	if tr.IsTreeEdge(nt) {
		t.Fatal("IsTreeEdge must be false for the non-tree edge")
	}
	e := q.Edge(nt)
	found := false
	for _, i := range tr.NonTreeAt[e.From] {
		if i == nt {
			found = true
		}
	}
	if !found {
		t.Fatal("NonTreeAt must index the non-tree edge at its endpoints")
	}
	// Tree must span all 3 vertices.
	if tr.Parent(1) == graph.NoVertex && tr.Parent(2) == graph.NoVertex {
		t.Fatal("tree does not span the query")
	}
}

func TestDetermineMatchingOrder(t *testing.T) {
	g := fixtureData()
	q := fixtureQuery()
	tr, err := TransformToTree(q, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	// Cost: u3 cheap (1), u1 expensive (50), u0 cheap once u1 matched.
	cost := func(u graph.VertexID) float64 {
		switch u {
		case 3:
			return 1
		case 1:
			return 50
		default:
			return 10
		}
	}
	order := DetermineMatchingOrder(tr, cost)
	if !ValidOrder(tr, order) {
		t.Fatalf("order %v invalid", order)
	}
	if order[0] != 2 || order[1] != 3 {
		t.Fatalf("order = %v; cheap child u3 should be matched before u1", order)
	}
}

func TestValidOrder(t *testing.T) {
	g := fixtureData()
	q := fixtureQuery()
	tr, _ := TransformToTree(q, 2, g)
	if ValidOrder(tr, []graph.VertexID{2, 3}) {
		t.Fatal("short order must be invalid")
	}
	if ValidOrder(tr, []graph.VertexID{3, 2, 1, 0}) {
		t.Fatal("order not starting at root must be invalid")
	}
	if ValidOrder(tr, []graph.VertexID{2, 0, 1, 3}) {
		t.Fatal("child before parent must be invalid")
	}
	if ValidOrder(tr, []graph.VertexID{2, 2, 1, 0}) {
		t.Fatal("repeated vertex must be invalid")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := fixtureQuery()
	c := q.Clone()
	_ = c.AddEdge(3, eX, 0)
	if q.NumEdges() == c.NumEdges() {
		t.Fatal("clone mutation leaked into original")
	}
	if q.EdgeIndex(graph.Edge{From: 0, Label: eX, To: 1}) != 0 {
		t.Fatal("EdgeIndex broken")
	}
	if q.EdgeIndex(graph.Edge{From: 3, Label: eX, To: 0}) != -1 {
		t.Fatal("EdgeIndex of absent edge must be -1")
	}
}
