package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turboflux/internal/graph"
)

// randConnectedQuery builds a random connected query from a seed.
func randConnectedQuery(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(6)
	q := NewGraph(n)
	for u := 0; u < n; u++ {
		if rng.Intn(2) == 0 {
			q.SetLabels(graph.VertexID(u), graph.Label(rng.Intn(4)))
		}
	}
	for u := 1; u < n; u++ {
		p := graph.VertexID(rng.Intn(u))
		if rng.Intn(2) == 0 {
			_ = q.AddEdge(p, graph.Label(rng.Intn(3)), graph.VertexID(u))
		} else {
			_ = q.AddEdge(graph.VertexID(u), graph.Label(rng.Intn(3)), p)
		}
	}
	for i := rng.Intn(4); i > 0; i-- {
		_ = q.AddEdge(graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(3)), graph.VertexID(rng.Intn(n)))
	}
	return q
}

// TestQuickTreeSpansQuery: for any connected query and any root, the
// spanning tree covers every vertex exactly once, tree depth increases by
// one along parent edges, and tree+non-tree edges partition the query's
// edge set.
func TestQuickTreeSpansQuery(t *testing.T) {
	g := fixtureData()
	f := func(seed int64) bool {
		q := randConnectedQuery(seed)
		root := graph.VertexID(int(seed>>8&0xff) % q.NumVertices())
		tr, err := TransformToTree(q, root, g)
		if err != nil {
			return false
		}
		// Every non-root vertex has a parent; depths are consistent.
		seen := 1
		for u := 0; u < q.NumVertices(); u++ {
			uv := graph.VertexID(u)
			if uv == root {
				if tr.Parent(uv) != graph.NoVertex || tr.Depth[u] != 0 {
					return false
				}
				continue
			}
			p := tr.Parent(uv)
			if p == graph.NoVertex || tr.Depth[u] != tr.Depth[p]+1 {
				return false
			}
			seen++
		}
		if seen != q.NumVertices() {
			return false
		}
		// Partition: tree edges + non-tree edges = all edges, no overlap.
		used := make([]bool, q.NumEdges())
		treeCount := 0
		for u := 0; u < q.NumVertices(); u++ {
			if graph.VertexID(u) == root {
				continue
			}
			idx := tr.ParentEdge[u].Index
			if used[idx] {
				return false
			}
			used[idx] = true
			treeCount++
			// The tree edge must be the query edge it claims to be.
			if tr.ParentEdge[u].QueryEdge() != q.Edge(idx) {
				return false
			}
		}
		for _, nt := range tr.NonTree {
			if used[nt] {
				return false
			}
			used[nt] = true
		}
		for _, u := range used {
			if !u {
				return false
			}
		}
		return treeCount == q.NumVertices()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMatchingOrderValid: DetermineMatchingOrder always yields a
// valid parent-first permutation regardless of the cost function.
func TestQuickMatchingOrderValid(t *testing.T) {
	g := fixtureData()
	f := func(seed int64, costSeed int64) bool {
		q := randConnectedQuery(seed)
		tr, err := TransformToTree(q, 0, g)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(costSeed))
		costs := make([]float64, q.NumVertices())
		for i := range costs {
			costs[i] = rng.Float64() * 100
		}
		order := DetermineMatchingOrder(tr, func(u graph.VertexID) float64 {
			return costs[u]
		})
		return ValidOrder(tr, order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNECCompressValid: compression output is always a valid
// connected query with no more vertices/edges than the input.
func TestQuickNECCompressValid(t *testing.T) {
	f := func(seed int64) bool {
		q := randConnectedQuery(seed)
		c, _ := NECCompress(q)
		if c.Validate() != nil {
			return false
		}
		return c.NumVertices() <= q.NumVertices() && c.NumEdges() <= q.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiameterBounds: 1 <= diameter <= |V|-1 for connected queries
// with at least one edge.
func TestQuickDiameterBounds(t *testing.T) {
	f := func(seed int64) bool {
		q := randConnectedQuery(seed)
		d := q.Diameter()
		return d >= 1 && d <= q.NumVertices()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
