package query

import (
	"sort"

	"turboflux/internal/graph"
)

// NECCompress applies the NEC (neighborhood equivalence class) query
// compression of TurboISO [14] in the restricted form that benefits
// SJ-Tree (Appendix B.5): leaf query vertices with identical label
// constraints attached to the same neighbor through the same edge label
// and direction are merged into one representative. It returns the
// compressed query and whether any merge happened.
//
// Match counts over a compressed query differ from the original (each
// merged class of size k would need its candidate assignments re-expanded
// k-fold); the B.5 experiment compares maintenance cost and intermediate
// size, which the compression affects directly.
func NECCompress(q *Graph) (*Graph, bool) {
	n := q.NumVertices()
	deg := make([]int, n)
	for _, e := range q.Edges() {
		deg[e.From]++
		deg[e.To]++
	}
	type classKey struct {
		neighbor graph.VertexID
		label    graph.Label
		forward  bool // true: neighbor -> leaf
		sig      string
	}
	classes := make(map[classKey][]graph.VertexID)
	for u := 0; u < n; u++ {
		if deg[u] != 1 {
			continue
		}
		// The single incident edge of the leaf.
		ei := q.IncidentEdges(graph.VertexID(u))[0]
		e := q.Edge(ei)
		var key classKey
		if e.From == graph.VertexID(u) {
			key = classKey{neighbor: e.To, label: e.Label, forward: false}
		} else {
			key = classKey{neighbor: e.From, label: e.Label, forward: true}
		}
		key.sig = labelSig(q.Labels(graph.VertexID(u)))
		classes[key] = append(classes[key], graph.VertexID(u))
	}
	drop := make(map[graph.VertexID]bool)
	//tf:unordered-ok builds the drop set; members are sorted per class
	for _, members := range classes {
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, u := range members[1:] {
			drop[u] = true
		}
	}
	if len(drop) == 0 {
		return q, false
	}
	remap := make([]graph.VertexID, n)
	kept := 0
	for u := 0; u < n; u++ {
		if drop[graph.VertexID(u)] {
			remap[u] = graph.NoVertex
			continue
		}
		remap[u] = graph.VertexID(kept)
		kept++
	}
	c := NewGraph(kept)
	for u := 0; u < n; u++ {
		if remap[u] != graph.NoVertex {
			c.SetLabels(remap[u], q.Labels(graph.VertexID(u))...)
		}
	}
	for _, e := range q.Edges() {
		if drop[e.From] || drop[e.To] {
			continue
		}
		// Duplicate edges cannot arise: dropped leaves own their edges.
		if err := c.AddEdge(remap[e.From], e.Label, remap[e.To]); err != nil {
			return q, false
		}
	}
	if c.Validate() != nil {
		return q, false
	}
	return c, true
}

func labelSig(ls []graph.Label) string {
	b := make([]byte, 0, len(ls)*3)
	for _, l := range ls {
		b = append(b, byte(l), byte(l>>8), ',')
	}
	return string(b)
}
