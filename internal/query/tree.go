package query

import (
	"fmt"

	"turboflux/internal/graph"
)

// TreeEdge describes the tree edge between a child query vertex and its
// parent in q'. Forward reports the orientation of the underlying query
// edge: true when the original edge is Parent --Label--> Child, false when
// it is Child --Label--> Parent. All "(u,u') matches (v,v')" checks in the
// engines respect this orientation.
type TreeEdge struct {
	Parent  graph.VertexID
	Child   graph.VertexID
	Label   graph.Label
	Forward bool
	// Index is the total-order index of the underlying query edge.
	Index int
}

// QueryEdge returns the underlying directed query edge.
func (te TreeEdge) QueryEdge() graph.Edge {
	if te.Forward {
		return graph.Edge{From: te.Parent, Label: te.Label, To: te.Child}
	}
	return graph.Edge{From: te.Child, Label: te.Label, To: te.Parent}
}

// Tree is the query tree q' obtained by TransformToTree, plus the non-tree
// edges of q.
type Tree struct {
	Q    *Graph
	Root graph.VertexID // u_s

	// ParentEdge[u] is the tree edge connecting u to its parent; the root's
	// entry has Parent == graph.NoVertex and is otherwise zero.
	ParentEdge []TreeEdge
	// Children[u] lists u's child query vertices in insertion order.
	Children [][]graph.VertexID
	// NonTree lists the query edges of q not selected for the tree, as
	// total-order indices into Q.Edges().
	NonTree []int
	// NonTreeAt[u] lists the non-tree edge indices incident to u.
	NonTreeAt [][]int
	// Depth[u] is the tree depth of u (root = 0).
	Depth []int
}

// Parent returns the parent of u, or graph.NoVertex for the root.
func (t *Tree) Parent(u graph.VertexID) graph.VertexID {
	if u == t.Root {
		return graph.NoVertex
	}
	return t.ParentEdge[u].Parent
}

// Selectivity estimation -----------------------------------------------------

// estimateSampleCap bounds how many candidate vertices the cardinality
// estimator inspects per query edge. Estimation runs only at engine
// initialization and on matching-order adjustment, never per update.
const estimateSampleCap = 512

// EstimateEdgeMatches estimates how many data edges of g match the directed
// query edge (uFrom --l--> uTo) whose endpoints carry the given label
// constraints. Exact when a constrained endpoint has at most
// estimateSampleCap candidates; otherwise a scaled sample.
func EstimateEdgeMatches(g *graph.Graph, fromLabels []graph.Label, l graph.Label, toLabels []graph.Label) float64 {
	if len(fromLabels) == 0 && len(toLabels) == 0 {
		return float64(g.EdgeCount(l))
	}
	// Pick the constrained endpoint with the fewest candidates and count its
	// incident label-l edges whose other endpoint satisfies the opposite
	// constraint.
	fromCand, toCand := -1, -1
	if len(fromLabels) > 0 {
		fromCand = candidateCount(g, fromLabels)
	}
	if len(toLabels) > 0 {
		toCand = candidateCount(g, toLabels)
	}
	useFrom := toCand < 0 || (fromCand >= 0 && fromCand <= toCand)
	if useFrom {
		return sampleCount(g, fromLabels, func(v graph.VertexID) int {
			n := 0
			for _, w := range g.OutNeighbors(v, l) {
				if g.HasAllLabels(w, toLabels) {
					n++
				}
			}
			return n
		})
	}
	return sampleCount(g, toLabels, func(v graph.VertexID) int {
		n := 0
		for _, w := range g.InNeighbors(v, l) {
			if g.HasAllLabels(w, fromLabels) {
				n++
			}
		}
		return n
	})
}

func candidateCount(g *graph.Graph, labels []graph.Label) int {
	rare := labels[0]
	for _, l := range labels[1:] {
		if len(g.VerticesWithLabel(l)) < len(g.VerticesWithLabel(rare)) {
			rare = l
		}
	}
	return len(g.VerticesWithLabel(rare))
}

func sampleCount(g *graph.Graph, labels []graph.Label, per func(graph.VertexID) int) float64 {
	rare := labels[0]
	for _, l := range labels[1:] {
		if len(g.VerticesWithLabel(l)) < len(g.VerticesWithLabel(rare)) {
			rare = l
		}
	}
	cands := g.VerticesWithLabel(rare)
	if len(cands) == 0 {
		return 0
	}
	limit := len(cands)
	if limit > estimateSampleCap {
		limit = estimateSampleCap
	}
	total := 0
	for _, v := range cands[:limit] {
		if !g.HasAllLabels(v, labels) {
			continue
		}
		total += per(v)
	}
	return float64(total) * float64(len(cands)) / float64(limit)
}

// ChooseStartQVertex picks the starting query vertex u_s per Section 4.1:
// take the query edge with the fewest matching data edges; between its two
// endpoints pick the one with fewer matching data vertices; break ties by
// larger query-vertex degree.
func ChooseStartQVertex(q *Graph, g *graph.Graph) graph.VertexID {
	bestEdge := 0
	bestCost := -1.0
	for i, e := range q.Edges() {
		c := EstimateEdgeMatches(g, q.Labels(e.From), e.Label, q.Labels(e.To))
		if bestCost < 0 || c < bestCost {
			bestCost = c
			bestEdge = i
		}
	}
	e := q.Edge(bestEdge)
	fromV := g.CountVerticesWithLabels(q.Labels(e.From))
	toV := g.CountVerticesWithLabels(q.Labels(e.To))
	switch {
	case fromV < toV:
		return e.From
	case toV < fromV:
		return e.To
	case len(q.IncidentEdges(e.From)) >= len(q.IncidentEdges(e.To)):
		return e.From
	default:
		return e.To
	}
}

// TransformToTree converts q into the query tree q' rooted at us. The tree
// is grown greedily: at each step the frontier query edge with the smallest
// estimated number of matching data edges is attached (the "most selective
// tree" heuristic of Section 4.1). Query edges connecting two already-
// attached vertices become non-tree edges.
func TransformToTree(q *Graph, us graph.VertexID, g *graph.Graph) (*Tree, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := q.NumVertices()
	t := &Tree{
		Q:          q,
		Root:       us,
		ParentEdge: make([]TreeEdge, n),
		Children:   make([][]graph.VertexID, n),
		NonTreeAt:  make([][]int, n),
		Depth:      make([]int, n),
	}
	for u := range t.ParentEdge {
		t.ParentEdge[u].Parent = graph.NoVertex
	}
	inTree := make([]bool, n)
	inTree[us] = true
	usedEdge := make([]bool, q.NumEdges())

	for attached := 1; attached < n; attached++ {
		bestEdge, bestChild := -1, graph.NoVertex
		var bestParent graph.VertexID
		bestForward := false
		bestCost := 0.0
		for i, e := range q.Edges() {
			if usedEdge[i] {
				continue
			}
			var parent, child graph.VertexID
			var forward bool
			switch {
			case inTree[e.From] && !inTree[e.To]:
				parent, child, forward = e.From, e.To, true
			case inTree[e.To] && !inTree[e.From]:
				parent, child, forward = e.To, e.From, false
			default:
				continue
			}
			c := EstimateEdgeMatches(g, q.Labels(e.From), e.Label, q.Labels(e.To))
			if bestEdge < 0 || c < bestCost {
				bestEdge, bestChild, bestParent, bestForward, bestCost = i, child, parent, forward, c
			}
		}
		if bestEdge < 0 {
			return nil, fmt.Errorf("query: cannot grow tree from vertex %d (query disconnected?)", us)
		}
		usedEdge[bestEdge] = true
		inTree[bestChild] = true
		e := q.Edge(bestEdge)
		t.ParentEdge[bestChild] = TreeEdge{
			Parent:  bestParent,
			Child:   bestChild,
			Label:   e.Label,
			Forward: bestForward,
			Index:   bestEdge,
		}
		t.Children[bestParent] = append(t.Children[bestParent], bestChild)
		t.Depth[bestChild] = t.Depth[bestParent] + 1
	}
	for i := range q.Edges() {
		if !usedEdge[i] {
			t.NonTree = append(t.NonTree, i)
			e := q.Edge(i)
			t.NonTreeAt[e.From] = append(t.NonTreeAt[e.From], i)
			if e.To != e.From {
				t.NonTreeAt[e.To] = append(t.NonTreeAt[e.To], i)
			}
		}
	}
	return t, nil
}

// IsTreeEdge reports whether query-edge index i was selected for the tree.
func (t *Tree) IsTreeEdge(i int) bool {
	for _, nt := range t.NonTree {
		if nt == i {
			return false
		}
	}
	return true
}

// VerticesPreorder returns the query vertices in a root-first preorder.
func (t *Tree) VerticesPreorder() []graph.VertexID {
	out := make([]graph.VertexID, 0, t.Q.NumVertices())
	var rec func(u graph.VertexID)
	rec = func(u graph.VertexID) {
		out = append(out, u)
		for _, c := range t.Children[u] {
			rec(c)
		}
	}
	rec(t.Root)
	return out
}
