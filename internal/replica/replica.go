// Package replica implements WAL-shipping replication for the TurboFlux
// server: the wire codec shared by leader and follower, the leader-side
// per-follower feed of live frame chunks, the catch-up chunker that
// streams a durable.Plan's sealed segments, and the follower-side Link
// that maintains the connection to the leader and applies what arrives.
//
// # Protocol
//
// A follower dials the leader's normal client port and sends
//
//	REPLICATE <appliedLSN>
//
// where appliedLSN is the LSN of the last record it has applied (0 for a
// fresh replica). The leader replies "+OK <cutLSN>" and the connection
// switches to replication mode: the leader pushes, the follower only
// sends acknowledgments. Pushes are:
//
//	*RSNAP <lsn> <nbytes>      nbytes of snapshot follow; seed state
//	                           covering records 1..lsn (fresh followers)
//	*RFRAMES <first> <count> <nbytes>
//	                           nbytes of CRC-framed WAL records follow:
//	                           count records with LSNs first..first+count-1
//	*RPING <lsn>               leader heartbeat; lsn is the newest LSN
//	                           shipped or durable on the leader
//
// and the follower acknowledges applied state with
//
//	RACK <appliedLSN>
//
// after every applied chunk and in response to every ping. Frames are
// the exact bytes of the leader's WAL (internal/durable record framing:
// length, CRC32-C, binary update), so the follower verifies each record's
// checksum before applying it; a torn or corrupt frame drops the
// connection and the follower reconnects from its last applied LSN,
// skipping any duplicate prefix the leader re-sends. See DESIGN.md §14.
package replica

// Chunk is one contiguous run of CRC-framed WAL records: count records
// with LSNs First..First+Count-1, encoded back to back in Data exactly as
// they appear in the leader's log.
type Chunk struct {
	First uint64
	Count int
	Data  []byte
}

// Last returns the LSN of the chunk's final record.
func (c Chunk) Last() uint64 { return c.First + uint64(c.Count) - 1 }

// Size limits on replication pushes. A leader never exceeds them; a
// follower rejects headers claiming more before allocating.
const (
	// MaxFramesBytes bounds one *RFRAMES body. Live chunks are one WAL
	// append (at most a BATCH frame, 4 MiB of records) and catch-up chunks
	// are far smaller, so 8 MiB leaves headroom without letting a corrupt
	// header demand gigabytes.
	MaxFramesBytes = 8 << 20
	// MaxSnapshotBytes bounds one *RSNAP body.
	MaxSnapshotBytes = 1 << 31
	// MaxChunkRecords bounds the record count of one chunk.
	MaxChunkRecords = 200_000
)
