package replica

import (
	"fmt"
	"strconv"
	"strings"
)

// Wire keywords. Pushes start with '*' so a follower (or any client
// library) can demultiplex them from command replies.
const (
	snapWord   = "*RSNAP"
	framesWord = "*RFRAMES"
	pingWord   = "*RPING"
	ackWord    = "RACK"
)

// AppendSnapHeader appends the "*RSNAP <lsn> <nbytes>\n" header line; the
// nbytes of snapshot payload follow it raw.
func AppendSnapHeader(dst []byte, lsn uint64, nbytes int) []byte {
	dst = append(dst, snapWord...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, lsn, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(nbytes), 10)
	return append(dst, '\n')
}

// AppendFramesHeader appends the "*RFRAMES <first> <count> <nbytes>\n"
// header line; the nbytes of CRC-framed records follow it raw.
func AppendFramesHeader(dst []byte, first uint64, count, nbytes int) []byte {
	dst = append(dst, framesWord...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, first, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(count), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(nbytes), 10)
	return append(dst, '\n')
}

// AppendPing appends the "*RPING <lsn>\n" heartbeat line.
func AppendPing(dst []byte, lsn uint64) []byte {
	dst = append(dst, pingWord...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, lsn, 10)
	return append(dst, '\n')
}

// AppendAck appends the follower's "RACK <appliedLSN>\n" line.
func AppendAck(dst []byte, applied uint64) []byte {
	dst = append(dst, ackWord...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, applied, 10)
	return append(dst, '\n')
}

// ParseAck parses a follower's "RACK <appliedLSN>" line (no newline).
func ParseAck(line string) (uint64, error) {
	fields := strings.Fields(strings.TrimSuffix(line, "\r"))
	if len(fields) != 2 || fields[0] != ackWord {
		return 0, fmt.Errorf("replica: malformed ack %q", clip(line))
	}
	lsn, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: bad ack LSN %q", clip(fields[1]))
	}
	return lsn, nil
}

// IsAck reports whether line is a RACK line (cheap check before ParseAck).
func IsAck(line string) bool {
	return strings.HasPrefix(line, ackWord) &&
		(len(line) == len(ackWord) || line[len(ackWord)] == ' ')
}

// pushKind identifies a parsed leader push header.
type pushKind uint8

const (
	pushSnap pushKind = iota + 1
	pushFrames
	pushPing
)

// push is one parsed leader push header. For pushSnap and pushFrames the
// body (NBytes raw bytes) follows the header line on the wire.
type push struct {
	Kind   pushKind
	LSN    uint64 // pushSnap: covered LSN; pushPing: leader LSN
	First  uint64 // pushFrames: LSN of the first record
	Count  int    // pushFrames: record count
	NBytes int    // body length
}

// parsePush parses one leader push header line (no trailing newline).
func parsePush(line string) (push, error) {
	fields := strings.Fields(strings.TrimSuffix(line, "\r"))
	if len(fields) == 0 {
		return push{}, fmt.Errorf("replica: empty push line")
	}
	switch fields[0] {
	case snapWord:
		if len(fields) != 3 {
			return push{}, fmt.Errorf("replica: malformed %s header %q", snapWord, clip(line))
		}
		lsn, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return push{}, fmt.Errorf("replica: bad %s LSN %q", snapWord, clip(fields[1]))
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 || n > MaxSnapshotBytes {
			return push{}, fmt.Errorf("replica: bad %s length %q", snapWord, clip(fields[2]))
		}
		return push{Kind: pushSnap, LSN: lsn, NBytes: n}, nil
	case framesWord:
		if len(fields) != 4 {
			return push{}, fmt.Errorf("replica: malformed %s header %q", framesWord, clip(line))
		}
		first, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil || first == 0 {
			return push{}, fmt.Errorf("replica: bad %s first LSN %q", framesWord, clip(fields[1]))
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil || count <= 0 || count > MaxChunkRecords {
			return push{}, fmt.Errorf("replica: bad %s count %q", framesWord, clip(fields[2]))
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n <= 0 || n > MaxFramesBytes {
			return push{}, fmt.Errorf("replica: bad %s length %q", framesWord, clip(fields[3]))
		}
		return push{Kind: pushFrames, First: first, Count: count, NBytes: n}, nil
	case pingWord:
		if len(fields) != 2 {
			return push{}, fmt.Errorf("replica: malformed %s header %q", pingWord, clip(line))
		}
		lsn, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return push{}, fmt.Errorf("replica: bad %s LSN %q", pingWord, clip(fields[1]))
		}
		return push{Kind: pushPing, LSN: lsn}, nil
	default:
		return push{}, fmt.Errorf("replica: unknown push %q", clip(fields[0]))
	}
}

// clip bounds wire-controlled text quoted into error messages.
func clip(s string) string {
	const n = 64
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
