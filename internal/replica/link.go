package replica

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"turboflux/internal/durable"
)

// State is the follower's view of its replication link, delivered through
// Callbacks.Status whenever it changes.
type State struct {
	// Connected reports whether a replication session is live.
	Connected bool
	// AppliedLSN is the follower's last applied LSN.
	AppliedLSN uint64
	// LeaderLSN is the newest leader LSN the link has seen (handshake cut,
	// shipped chunk, or ping). AppliedLSN lags it by the replication gap.
	LeaderLSN uint64
	// LastError describes why the previous session ended, when it ended
	// in error.
	LastError string
}

// Callbacks connect a Link to the follower's engine. Seed and Apply run
// on the link's goroutine; the server wires them to engine-owner actor
// calls so all engine access stays confined to the actor.
type Callbacks struct {
	// Applied returns the follower's current applied LSN; called at the
	// start of every session to position the catch-up request.
	Applied func() uint64
	// Seed adopts a leader snapshot covering records 1..lsn as the
	// follower's entire state, returning the new applied LSN.
	Seed func(lsn uint64, data []byte) (uint64, error)
	// Apply applies count CRC-framed records with LSNs first..first+count-1
	// (first is always appliedLSN+1; the link strips duplicate prefixes),
	// returning the new applied LSN.
	Apply func(first uint64, count int, frames []byte) (uint64, error)
	// Status, when non-nil, observes link state changes.
	Status func(st State)
}

// Options tune a Link's timing.
type Options struct {
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
	// ReadTimeout bounds one read from the leader; the leader pings when
	// idle, so expiry means a dead peer (default 15s).
	ReadTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff (default
	// 100ms..5s; doubles per failed attempt, resets on a successful
	// handshake).
	BackoffMin, BackoffMax time.Duration
}

func (o *Options) applyDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 15 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
}

// Link maintains a follower's replication session with its leader:
// dial, REPLICATE handshake, stream application, and reconnect with
// exponential backoff until Stop.
type Link struct {
	leader string
	cb     Callbacks
	opt    Options

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewLink builds a link to the leader at addr. Call Start to run it.
func NewLink(addr string, cb Callbacks, opt Options) *Link {
	opt.applyDefaults()
	return &Link{
		leader: addr,
		cb:     cb,
		opt:    opt,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the link's goroutine.
func (l *Link) Start() {
	//tf:goroutine replica-link
	go l.run()
}

// Stop ends the link: the current session (if any) is torn down and no
// reconnect follows. Blocks until the link goroutine has exited.
// Idempotent.
func (l *Link) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// Done returns a channel closed when the link goroutine has exited.
func (l *Link) Done() <-chan struct{} { return l.done }

// run is the reconnect loop: each session streams until an error or
// Stop, then the loop backs off and retries.
func (l *Link) run() {
	defer close(l.done)
	backoff := l.opt.BackoffMin
	for {
		handshaken, err := l.session()
		select {
		case <-l.stop:
			return
		default:
		}
		st := State{Connected: false, AppliedLSN: l.cb.Applied()}
		if err != nil {
			st.LastError = err.Error()
		}
		l.status(st)
		if handshaken {
			backoff = l.opt.BackoffMin
		}
		select {
		case <-l.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > l.opt.BackoffMax {
			backoff = l.opt.BackoffMax
		}
	}
}

func (l *Link) status(st State) {
	if l.cb.Status != nil {
		l.cb.Status(st)
	}
}

// session runs one replication session: dial, handshake, apply pushes
// until the connection breaks or Stop closes it. handshaken reports
// whether the REPLICATE handshake succeeded (resets the backoff).
func (l *Link) session() (handshaken bool, err error) {
	nc, err := net.DialTimeout("tcp", l.leader, l.opt.DialTimeout)
	if err != nil {
		return false, err
	}
	defer nc.Close() //tf:unchecked-ok session teardown

	// Stop must interrupt a blocked read: close the socket when it fires.
	sessionEnd := make(chan struct{})
	defer close(sessionEnd)
	//tf:goroutine replica-link-stopper
	go func() {
		select {
		case <-l.stop:
			nc.Close() //tf:unchecked-ok forced teardown
		case <-sessionEnd:
		}
	}()

	br := bufio.NewReaderSize(nc, 64*1024)
	bw := bufio.NewWriterSize(nc, 4*1024)
	applied := l.cb.Applied()
	if _, err := fmt.Fprintf(bw, "REPLICATE %d\n", applied); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}
	line, err := l.readLine(nc, br)
	if err != nil {
		return false, err
	}
	cut, err := parseHandshakeReply(line)
	if err != nil {
		return false, err
	}
	leaderLSN := cut
	if applied > leaderLSN {
		leaderLSN = applied
	}
	l.status(State{Connected: true, AppliedLSN: applied, LeaderLSN: leaderLSN})

	var scratch []byte
	ack := func() error {
		scratch = AppendAck(scratch[:0], applied)
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
		return bw.Flush()
	}
	for {
		line, err := l.readLine(nc, br)
		if err != nil {
			return true, err
		}
		p, err := parsePush(line)
		if err != nil {
			return true, err
		}
		switch p.Kind {
		case pushSnap:
			body, err := l.readBody(nc, br, p.NBytes)
			if err != nil {
				return true, err
			}
			if applied, err = l.cb.Seed(p.LSN, body); err != nil {
				return true, err
			}
			if p.LSN > leaderLSN {
				leaderLSN = p.LSN
			}
			if err := ack(); err != nil {
				return true, err
			}
		case pushFrames:
			body, err := l.readBody(nc, br, p.NBytes)
			if err != nil {
				return true, err
			}
			first, count, frames := p.First, p.Count, body
			// A reconnecting leader may re-send records the follower already
			// applied; strip them (CRC-verifying each) so nothing applies
			// twice.
			for count > 0 && first <= applied {
				if _, n, derr := durable.DecodeFrame(frames); derr != nil {
					return true, derr
				} else {
					frames = frames[n:]
				}
				first++
				count--
			}
			if count > 0 {
				if first != applied+1 {
					return true, fmt.Errorf("replica: stream gap: chunk starts at LSN %d, applied is %d", first, applied)
				}
				if applied, err = l.cb.Apply(first, count, frames); err != nil {
					return true, err
				}
			}
			if last := p.First + uint64(p.Count) - 1; last > leaderLSN {
				leaderLSN = last
			}
			if err := ack(); err != nil {
				return true, err
			}
			l.status(State{Connected: true, AppliedLSN: applied, LeaderLSN: leaderLSN})
		case pushPing:
			if p.LSN > leaderLSN {
				leaderLSN = p.LSN
			}
			if err := ack(); err != nil {
				return true, err
			}
			l.status(State{Connected: true, AppliedLSN: applied, LeaderLSN: leaderLSN})
		}
	}
}

// readLine reads one LF-terminated line under the read deadline.
func (l *Link) readLine(nc net.Conn, br *bufio.Reader) (string, error) {
	if err := nc.SetReadDeadline(time.Now().Add(l.opt.ReadTimeout)); err != nil {
		return "", err
	}
	b, err := br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return "", fmt.Errorf("replica: push header exceeds %d bytes", br.Size())
		}
		return "", err
	}
	return string(b[:len(b)-1]), nil
}

// readBody reads exactly n raw bytes under a deadline scaled to the body
// size, so a large snapshot is not cut off by the idle timeout.
func (l *Link) readBody(nc net.Conn, br *bufio.Reader, n int) ([]byte, error) {
	timeout := l.opt.ReadTimeout + time.Duration(n/(1<<20))*time.Second
	if err := nc.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// parseHandshakeReply parses the leader's "+OK <cutLSN>" reply to
// REPLICATE.
func parseHandshakeReply(line string) (cut uint64, err error) {
	fields := strings.Fields(strings.TrimSuffix(line, "\r"))
	if len(fields) >= 1 && fields[0] == "-ERR" {
		return 0, fmt.Errorf("replica: leader rejected handshake: %s", clip(strings.TrimPrefix(line, "-ERR ")))
	}
	if len(fields) != 2 || fields[0] != "+OK" {
		return 0, fmt.Errorf("replica: malformed handshake reply %q", clip(line))
	}
	if cut, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
		return 0, fmt.Errorf("replica: bad handshake cut LSN %q", clip(fields[1]))
	}
	return cut, nil
}
