package replica

import "turboflux/internal/durable"

// Catch-up chunking targets: a chunk flushes once it holds this many
// bytes or records, whichever comes first.
const (
	chunkTargetBytes   = 256 << 10
	chunkTargetRecords = 4096
)

// ChunkSegments streams the sealed-segment tail of a catch-up plan as
// bounded frame chunks: every record with LSN > after, in order, packed
// into chunks of at most chunkTargetBytes/chunkTargetRecords. The chunk
// passed to emit reuses one internal buffer — emit must finish with it
// (write it to the socket) before returning. A decode error inside a
// segment aborts the walk.
func ChunkSegments(segs []durable.PlanSegment, after uint64, emit func(Chunk) error) error {
	buf := make([]byte, 0, chunkTargetBytes+4096)
	var first uint64
	count := 0
	flush := func() error {
		if count == 0 {
			return nil
		}
		err := emit(Chunk{First: first, Count: count, Data: buf})
		buf = buf[:0]
		count = 0
		return err
	}
	applied := after
	for _, seg := range segs {
		err := durable.ReadSegmentFrames(seg.Path, seg.First, applied, func(lsn uint64, frame []byte) error {
			if count == 0 {
				first = lsn
			}
			buf = append(buf, frame...)
			count++
			applied = lsn
			if len(buf) >= chunkTargetBytes || count >= chunkTargetRecords {
				return flush()
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return flush()
}
