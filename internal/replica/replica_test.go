package replica

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"turboflux/internal/durable"
	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

func TestCodecRoundTrip(t *testing.T) {
	cases := []struct {
		line string
		want push
	}{
		{string(AppendSnapHeader(nil, 42, 1000)), push{Kind: pushSnap, LSN: 42, NBytes: 1000}},
		{string(AppendFramesHeader(nil, 7, 3, 99)), push{Kind: pushFrames, First: 7, Count: 3, NBytes: 99}},
		{string(AppendPing(nil, 123)), push{Kind: pushPing, LSN: 123}},
	}
	for _, c := range cases {
		got, err := parsePush(strings.TrimSuffix(c.line, "\n"))
		if err != nil {
			t.Fatalf("parsePush(%q): %v", c.line, err)
		}
		if got != c.want {
			t.Fatalf("parsePush(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}

	ackLine := string(AppendAck(nil, 77))
	if !IsAck(strings.TrimSuffix(ackLine, "\n")) {
		t.Fatalf("IsAck(%q) = false", ackLine)
	}
	lsn, err := ParseAck(strings.TrimSuffix(ackLine, "\n"))
	if err != nil || lsn != 77 {
		t.Fatalf("ParseAck(%q) = %d, %v", ackLine, lsn, err)
	}

	for _, bad := range []string{
		"", "*RSNAP", "*RSNAP x 10", "*RSNAP 1 -5", "*RSNAP 1 99999999999999",
		"*RFRAMES 1 2", "*RFRAMES 0 1 10", "*RFRAMES 1 0 10", "*RFRAMES 1 1 0",
		"*RPING", "*RPING x", "*BOGUS 1",
	} {
		if _, err := parsePush(bad); err == nil {
			t.Fatalf("parsePush(%q) succeeded, want error", bad)
		}
	}
	for _, bad := range []string{"", "RACK", "RACK x", "ACK 5"} {
		if _, err := ParseAck(bad); err == nil {
			t.Fatalf("ParseAck(%q) succeeded, want error", bad)
		}
	}
}

func TestFeedOverrun(t *testing.T) {
	f := NewFeed(2)
	if !f.Offer(Chunk{First: 1, Count: 1}) || !f.Offer(Chunk{First: 2, Count: 1}) {
		t.Fatal("offers within capacity failed")
	}
	if f.Offer(Chunk{First: 3, Count: 1}) {
		t.Fatal("offer beyond capacity succeeded")
	}
	if !f.Overrun() {
		t.Fatal("feed not marked overrun")
	}
	// The queued chunks drain, then the channel closes.
	var got []uint64
	for c := range f.Chunks() {
		got = append(got, c.First)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v, want [1 2]", got)
	}
	// Offers after overrun stay rejected.
	if f.Offer(Chunk{First: 4, Count: 1}) {
		t.Fatal("offer after overrun succeeded")
	}
}

func TestFeedClose(t *testing.T) {
	f := NewFeed(4)
	f.Offer(Chunk{First: 1, Count: 1})
	f.Close()
	f.Close() // idempotent
	n := 0
	for range f.Chunks() {
		n++
	}
	if n != 1 {
		t.Fatalf("drained %d chunks, want 1", n)
	}
	if f.Overrun() {
		t.Fatal("clean close reported as overrun")
	}
	if f.Offer(Chunk{First: 2, Count: 1}) {
		t.Fatal("offer after close succeeded")
	}
}

// testFrames encodes updates n..m (1-based LSNs) as CRC frames.
func testFrames(t *testing.T, first, count int) []byte {
	t.Helper()
	var buf []byte
	var err error
	for i := 0; i < count; i++ {
		k := first + i
		u := stream.Insert(graph.VertexID(k), graph.Label(k%5), graph.VertexID(k+1))
		if buf, err = durable.AppendFrame(buf, u); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestChunkSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNone, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test teardown
	for i := 1; i <= 100; i++ {
		u := stream.Insert(graph.VertexID(i), 0, graph.VertexID(i+1))
		if _, err := s.Append(u); err != nil {
			t.Fatal(err)
		}
		u.Apply(s.Graph())
	}
	p, err := s.CatchupPlan(10)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	next := uint64(11)
	err = ChunkSegments(p.Segments, 10, func(c Chunk) error {
		if c.First != next {
			t.Fatalf("chunk starts at %d, want %d", c.First, next)
		}
		// Every frame decodes and the count matches.
		b := c.Data
		for i := 0; i < c.Count; i++ {
			if _, n, err := durable.DecodeFrame(b); err != nil {
				return err
			} else {
				b = b[n:]
			}
		}
		if len(b) != 0 {
			t.Fatalf("chunk has %d trailing bytes", len(b))
		}
		next = c.Last() + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 101 {
		t.Fatalf("chunks cover through %d, want 100", next-1)
	}
}

// scriptedLeader is a fake leader: it accepts replication handshakes and
// runs a per-session script against the follower link under test.
type scriptedLeader struct {
	t  *testing.T
	ln net.Listener
	wg sync.WaitGroup
}

func newScriptedLeader(t *testing.T, session func(i int, applied uint64, rw *bufio.ReadWriter, nc net.Conn)) *scriptedLeader {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sl := &scriptedLeader{t: t, ln: ln}
	sl.wg.Add(1)
	//tf:goroutine test-scripted-leader
	go func() {
		defer sl.wg.Done()
		for i := 0; ; i++ {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed: test over
			}
			rw := bufio.NewReadWriter(bufio.NewReader(nc), bufio.NewWriter(nc))
			line, err := rw.ReadString('\n')
			if err != nil {
				nc.Close() //tf:unchecked-ok test teardown
				continue
			}
			var applied uint64
			if _, err := fmt.Sscanf(line, "REPLICATE %d", &applied); err != nil {
				t.Errorf("bad handshake %q: %v", line, err)
				nc.Close() //tf:unchecked-ok test teardown
				continue
			}
			session(i, applied, rw, nc)
			nc.Close() //tf:unchecked-ok test teardown
		}
	}()
	return sl
}

func (sl *scriptedLeader) close() {
	sl.ln.Close() //tf:unchecked-ok test teardown
	sl.wg.Wait()
}

// applyingCallbacks returns callbacks that decode and count applied
// updates, mimicking the follower engine.
func applyingCallbacks(t *testing.T, applied *uint64, mu *sync.Mutex) Callbacks {
	return Callbacks{
		Applied: func() uint64 { mu.Lock(); defer mu.Unlock(); return *applied },
		Seed: func(lsn uint64, data []byte) (uint64, error) {
			mu.Lock()
			defer mu.Unlock()
			*applied = lsn
			return lsn, nil
		},
		Apply: func(first uint64, count int, frames []byte) (uint64, error) {
			mu.Lock()
			defer mu.Unlock()
			if first != *applied+1 {
				return *applied, fmt.Errorf("apply gap: first=%d applied=%d", first, *applied)
			}
			for i := 0; i < count; i++ {
				_, n, err := durable.DecodeFrame(frames)
				if err != nil {
					return *applied, err
				}
				frames = frames[n:]
			}
			*applied = first + uint64(count) - 1
			return *applied, nil
		},
	}
}

// TestLinkAppliesStream drives a link through handshake, catch-up chunk,
// live chunk and ping, checking acks and applied progression.
func TestLinkAppliesStream(t *testing.T) {
	var mu sync.Mutex
	var applied uint64
	acks := make(chan uint64, 16)

	sl := newScriptedLeader(t, func(i int, got uint64, rw *bufio.ReadWriter, nc net.Conn) {
		if i > 0 {
			return // only the first session scripts anything
		}
		if got != 0 {
			t.Errorf("first handshake applied=%d, want 0", got)
		}
		fmt.Fprintf(rw, "+OK 5\n")
		// Catch-up: LSNs 1..5 in one chunk, then live: 6..8, then ping.
		b := testFrames(t, 1, 5)
		rw.Write(AppendFramesHeader(nil, 1, 5, len(b))) //tf:unchecked-ok test script
		rw.Write(b)                                     //tf:unchecked-ok test script
		b = testFrames(t, 6, 3)
		rw.Write(AppendFramesHeader(nil, 6, 3, len(b))) //tf:unchecked-ok test script
		rw.Write(b)                                     //tf:unchecked-ok test script
		rw.Write(AppendPing(nil, 8))                    //tf:unchecked-ok test script
		rw.Flush()
		for j := 0; j < 3; j++ {
			line, err := rw.ReadString('\n')
			if err != nil {
				t.Errorf("reading ack %d: %v", j, err)
				return
			}
			lsn, err := ParseAck(strings.TrimSpace(line))
			if err != nil {
				t.Errorf("ack %d: %v", j, err)
				return
			}
			acks <- lsn
		}
	})
	defer sl.close()

	l := NewLink(sl.ln.Addr().String(), applyingCallbacks(t, &applied, &mu), Options{
		ReadTimeout: 2 * time.Second,
	})
	l.Start()
	defer l.Stop()

	want := []uint64{5, 8, 8}
	for i, w := range want {
		select {
		case got := <-acks:
			if got != w {
				t.Fatalf("ack %d = %d, want %d", i, got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for ack %d", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if applied != 8 {
		t.Fatalf("applied = %d, want 8", applied)
	}
}

// TestLinkCorruptFrameResume is the torn/corrupt-frame-over-the-wire
// test: the first session ships a chunk whose second frame is corrupted;
// the link must reject it, disconnect, and reconnect announcing only the
// cleanly applied prefix — after which the leader re-sends (with overlap)
// and the follower ends up having applied each record exactly once.
func TestLinkCorruptFrameResume(t *testing.T) {
	var mu sync.Mutex
	var applied uint64
	applyCount := 0
	base := applyingCallbacks(t, &applied, &mu)
	innerApply := base.Apply
	base.Apply = func(first uint64, count int, frames []byte) (uint64, error) {
		lsn, err := innerApply(first, count, frames)
		if err == nil {
			mu.Lock()
			applyCount += count
			mu.Unlock()
		}
		return lsn, err
	}

	handshakes := make(chan uint64, 4)
	done := make(chan struct{})
	sl := newScriptedLeader(t, func(i int, got uint64, rw *bufio.ReadWriter, nc net.Conn) {
		handshakes <- got
		switch i {
		case 0:
			if got != 0 {
				t.Errorf("session 0 handshake applied=%d, want 0", got)
			}
			fmt.Fprintf(rw, "+OK 6\n")
			// First chunk: LSNs 1..3 clean.
			b := testFrames(t, 1, 3)
			rw.Write(AppendFramesHeader(nil, 1, 3, len(b))) //tf:unchecked-ok test script
			rw.Write(b)                                     //tf:unchecked-ok test script
			// Second chunk: LSNs 4..6 with a bit flipped mid-frame.
			b = testFrames(t, 4, 3)
			b[len(b)/2] ^= 0x10
			rw.Write(AppendFramesHeader(nil, 4, 3, len(b))) //tf:unchecked-ok test script
			rw.Write(b)                                     //tf:unchecked-ok test script
			rw.Flush()
			// The link acks chunk 1, then drops the connection on chunk 2.
			rw.ReadString('\n') //tf:unchecked-ok test script
		case 1:
			if got != 3 {
				t.Errorf("session 1 handshake applied=%d, want 3", got)
			}
			fmt.Fprintf(rw, "+OK 6\n")
			// Re-send with overlap: LSNs 2..6 clean. The link must strip the
			// duplicate prefix (2..3) and apply only 4..6.
			b := testFrames(t, 2, 5)
			rw.Write(AppendFramesHeader(nil, 2, 5, len(b))) //tf:unchecked-ok test script
			rw.Write(b)                                     //tf:unchecked-ok test script
			rw.Flush()
			line, err := rw.ReadString('\n')
			if err != nil {
				t.Errorf("session 1 ack: %v", err)
				return
			}
			if lsn, err := ParseAck(strings.TrimSpace(line)); err != nil || lsn != 6 {
				t.Errorf("session 1 ack = %q, want RACK 6", strings.TrimSpace(line))
			}
			close(done)
		}
	})
	defer sl.close()

	l := NewLink(sl.ln.Addr().String(), base, Options{
		ReadTimeout: 2 * time.Second,
		BackoffMin:  10 * time.Millisecond,
	})
	l.Start()
	defer l.Stop()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for resumed session")
	}
	mu.Lock()
	defer mu.Unlock()
	if applied != 6 {
		t.Fatalf("applied = %d, want 6", applied)
	}
	if applyCount != 6 {
		t.Fatalf("apply callback saw %d records, want exactly 6 (no duplicates)", applyCount)
	}
}

// TestLinkReconnectBackoff checks that a link keeps retrying while the
// leader is down and recovers once it returns.
func TestLinkReconnectBackoff(t *testing.T) {
	// Grab an address, then close it so the first dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //tf:unchecked-ok freeing the port on purpose

	var mu sync.Mutex
	var applied uint64
	connected := make(chan struct{}, 1)
	cb := applyingCallbacks(t, &applied, &mu)
	cb.Status = func(st State) {
		if st.Connected {
			select {
			case connected <- struct{}{}:
			default:
			}
		}
	}
	l := NewLink(addr, cb, Options{
		DialTimeout: 500 * time.Millisecond,
		ReadTimeout: 2 * time.Second,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	l.Start()
	defer l.Stop()

	// Let it fail a few times, then bring the leader up on the same port.
	time.Sleep(100 * time.Millisecond)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	//tf:goroutine test-late-leader
	go func() {
		defer wg.Done()
		for {
			nc, err := ln2.Accept()
			if err != nil {
				return
			}
			rw := bufio.NewReadWriter(bufio.NewReader(nc), bufio.NewWriter(nc))
			if _, err := rw.ReadString('\n'); err == nil {
				fmt.Fprintf(rw, "+OK 0\n")
				rw.Write(AppendPing(nil, 0)) //tf:unchecked-ok test script
				rw.Flush()
				rw.ReadString('\n') //tf:unchecked-ok test script
			}
			nc.Close() //tf:unchecked-ok test teardown
		}
	}()
	defer func() {
		ln2.Close() //tf:unchecked-ok test teardown
		wg.Wait()
	}()

	select {
	case <-connected:
	case <-time.After(10 * time.Second):
		t.Fatal("link never connected after leader came back")
	}
}

// TestLinkStopInterruptsBlockedRead checks Stop returns promptly even
// while the link is blocked reading from a silent leader.
func TestLinkStopInterruptsBlockedRead(t *testing.T) {
	sl := newScriptedLeader(t, func(i int, got uint64, rw *bufio.ReadWriter, nc net.Conn) {
		fmt.Fprintf(rw, "+OK 0\n")
		rw.Flush()
		// Say nothing more; hold the conn open until the peer goes away.
		rw.ReadString('\n') //tf:unchecked-ok test script
	})
	defer sl.close()

	var mu sync.Mutex
	var applied uint64
	l := NewLink(sl.ln.Addr().String(), applyingCallbacks(t, &applied, &mu), Options{
		ReadTimeout: time.Minute, // force Stop to do the interrupting
	})
	l.Start()
	time.Sleep(50 * time.Millisecond) // let it get into the blocked read
	doneCh := make(chan struct{})
	//tf:goroutine test-stopper
	go func() {
		l.Stop()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not interrupt a blocked read")
	}
}
