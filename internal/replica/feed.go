package replica

import "sync/atomic"

// Feed is the leader-side live-frame queue of one follower: the
// engine-owner actor offers every appended chunk, the follower's
// connection pump drains it onto the socket. The queue is bounded and
// Offer never blocks — a follower that cannot keep up overruns the feed,
// which closes it; the pump then drops the connection and the follower
// reconnects and catches up from its applied LSN. This keeps a slow or
// dead replica from ever stalling the leader's ingest path.
//
// Offer and Close are called only by the actor goroutine; Chunks and
// Overrun only by the pump. Chunk data is shared read-only between feeds.
type Feed struct {
	ch      chan Chunk
	overrun atomic.Bool
	closed  bool // actor-side guard against double close
}

// NewFeed builds a feed holding up to depth chunks.
func NewFeed(depth int) *Feed {
	if depth <= 0 {
		depth = 256
	}
	return &Feed{ch: make(chan Chunk, depth)}
}

// Offer enqueues c without blocking. On a full queue it marks the feed
// overrun and closes it, returning false; the feed accepts nothing
// afterwards.
//
//tf:hotpath
func (f *Feed) Offer(c Chunk) bool {
	if f.closed {
		return false
	}
	select {
	case f.ch <- c:
		return true
	default:
		f.overrun.Store(true)
		f.closed = true
		close(f.ch)
		return false
	}
}

// Close ends the feed; the pump's range loop terminates after draining
// what is queued. Idempotent (but never call it after Offer returned
// false — Offer already closed the channel).
func (f *Feed) Close() {
	if !f.closed {
		f.closed = true
		close(f.ch)
	}
}

// Chunks returns the drain side of the feed. The channel closes when the
// actor closes the feed or it overruns.
func (f *Feed) Chunks() <-chan Chunk { return f.ch }

// Overrun reports whether the feed was closed because the follower fell
// too far behind (checked by the pump after the channel closes).
func (f *Feed) Overrun() bool { return f.overrun.Load() }
