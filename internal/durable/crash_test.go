package durable

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

// copyDir clones a store directory so each injection point mutates a
// private copy, the way a crash leaves the on-disk state behind.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("unexpected subdirectory %s in store", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// buildStore journals ups into a fresh directory and abandons the store
// without closing it (appends hit the OS immediately; the un-synced close
// is the crash).
func buildStore(t *testing.T, ups []stream.Update, opt Options) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups)
	return dir
}

// recordOffsets scans a segment file and returns the byte offset where
// each record begins, plus the file length.
func recordOffsets(t *testing.T, path string) ([]int, int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			t.Fatalf("segment %s invalid at offset %d: %v", filepath.Base(path), off, err)
		}
		offs = append(offs, off)
		off += n
	}
	return offs, len(data)
}

// expectPrefix opens dir and asserts recovery succeeded with exactly the
// first n of ups applied.
func expectPrefix(t *testing.T, dir string, ups []stream.Update, n int) {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after crash injection: %v", err)
	}
	defer s.Close() //tf:unchecked-ok test cleanup
	if got := int(s.LSN()); got != n {
		t.Fatalf("recovered LSN = %d, want %d", got, n)
	}
	sameGraph(t, s.Graph(), graphFromPrefix(ups, n))
}

// TestCrashTruncationMatrix truncates the log at every byte offset of the
// final record (including offsets that cut into its frame header) and
// asserts recovery always yields the clean prefix of all earlier records.
func TestCrashTruncationMatrix(t *testing.T) {
	const n = 40
	ups := testUpdates(n)
	dir := buildStore(t, ups, Options{Fsync: FsyncNone})
	firsts, err := segmentList(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(firsts) != 1 {
		t.Fatalf("want a single segment, got %d", len(firsts))
	}
	seg := segName(firsts[0])
	offs, size := recordOffsets(t, filepath.Join(dir, seg))
	if len(offs) != n {
		t.Fatalf("segment has %d records, want %d", len(offs), n)
	}
	last := offs[n-1]

	// Untouched file: full replay.
	expectPrefix(t, copyDir(t, dir), ups, n)

	for cut := last; cut < size; cut++ {
		crash := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crash, seg), int64(cut)); err != nil {
			t.Fatal(err)
		}
		expectPrefix(t, crash, ups, n-1)

		// Recovery truncated the torn tail, so the reopened store must
		// accept new appends and recover them on the next open.
		s, err := Open(crash, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(ups[n-1]); err != nil {
			t.Fatal(err)
		}
		ups[n-1].Apply(s.Graph())
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		expectPrefix(t, crash, ups, n)
	}
}

// TestCrashBitFlipMatrix flips random bits across the whole log under a
// seeded PRNG and asserts recovery always yields the clean prefix of the
// records before the damaged one — never an error, never garbage state.
func TestCrashBitFlipMatrix(t *testing.T) {
	const n = 40
	ups := testUpdates(n)
	dir := buildStore(t, ups, Options{Fsync: FsyncNone})
	firsts, err := segmentList(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := segName(firsts[0])
	offs, size := recordOffsets(t, filepath.Join(dir, seg))

	// prefixAt maps a damaged byte offset to the number of intact records
	// before it.
	prefixAt := func(off int) int {
		k := 0
		for k < len(offs) && offs[k] <= off {
			k++
		}
		return k - 1
	}

	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 120; trial++ {
		var off int
		if trial < 40 {
			// First sweep the final record's bytes, per the crash matrix.
			off = offs[len(offs)-1] + rng.Intn(size-offs[len(offs)-1])
		} else {
			off = rng.Intn(size)
		}
		crash := copyDir(t, dir)
		path := filepath.Join(crash, seg)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 1 << rng.Intn(8)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		expectPrefix(t, crash, ups, prefixAt(off))
	}
}

// TestCrashBitFlipAcrossSegments damages a middle segment: the clean
// prefix ends there and the later segments are dropped entirely.
func TestCrashBitFlipAcrossSegments(t *testing.T) {
	const n = 120
	ups := testUpdates(n)
	dir := buildStore(t, ups, Options{Fsync: FsyncNone, SegmentSize: 256})
	firsts, err := segmentList(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(firsts) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(firsts))
	}
	mid := firsts[len(firsts)/2]
	segPath := filepath.Join(dir, segName(mid))
	offs, _ := recordOffsets(t, segPath)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		recIdx := rng.Intn(len(offs))
		crash := copyDir(t, dir)
		path := filepath.Join(crash, segName(mid))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[offs[recIdx]+rng.Intn(frameHeaderSize)] ^= 1 << rng.Intn(8)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Records before the damaged one survive: those of earlier
		// segments plus recIdx records of the damaged segment.
		expectPrefix(t, crash, ups, int(mid)-1+recIdx)
	}
}

// TestCrashDuringCompaction: a crash between writing the .tmp snapshot
// and the rename leaves a .tmp leftover that recovery must ignore, and a
// crash after the rename but before segment cleanup leaves extra covered
// segments that recovery must tolerate.
func TestCrashDuringCompaction(t *testing.T) {
	const n = 60
	ups := testUpdates(n)
	dir := buildStore(t, ups, Options{Fsync: FsyncNone, SegmentSize: 256})

	// Half-written .tmp snapshot (as if the crash hit mid-write).
	if err := os.WriteFile(filepath.Join(dir, snapName(30)+tmpSuffix), []byte("TFSNgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	expectPrefix(t, copyDir(t, dir), ups, n)

	// Snapshot renamed into place but covered segments not yet removed:
	// replay must skip the covered records and still land on full state.
	crash := copyDir(t, dir)
	g := graphFromPrefix(ups, n)
	if err := writeSnapshot(crash, uint64(n), g, graph.NewDict(), graph.NewDict()); err != nil {
		t.Fatal(err)
	}
	s, err := Open(crash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test cleanup
	if s.Recovery().SnapshotLSN != uint64(n) || s.Recovery().Replayed != 0 {
		t.Fatalf("recovery = %+v, want snapshot %d + 0 replayed", s.Recovery(), n)
	}
	sameGraph(t, s.Graph(), g)
}
