package durable

// Replication support: the leader-side store exports exactly what WAL
// shipping needs — the CRC frame codec (so followers can verify and decode
// shipped records), an append tap (so the server can forward freshly
// journaled frames to follower feeds), a catch-up plan (snapshot + sealed
// log tail, pinned against Compact while a follower reads it), and a
// snapshot seed (so a fresh follower can adopt the leader's state without
// replaying its whole history). See DESIGN.md §14.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"turboflux/internal/stream"
)

// Tap observes successful appends: it receives the LSN range just
// journaled and the exact CRC-framed bytes written to the log. The store
// calls it synchronously on the appending goroutine (the engine-owner
// actor in the server), after the write succeeds and before Append
// returns; frames is reused by the next append, so the tap must copy
// anything it keeps.
type Tap func(first, last uint64, frames []byte)

// SetTap installs (or, with nil, removes) the append tap.
func (s *Store) SetTap(t Tap) { s.tap = t }

// AppendFrame appends the CRC-framed encoding of u to dst — the exact
// bytes Append would journal, usable to synthesize replication traffic.
func AppendFrame(dst []byte, u stream.Update) ([]byte, error) {
	return appendRecord(dst, u)
}

// DecodeFrame decodes one CRC-framed record from the front of b,
// returning the update and the bytes consumed. Torn or corrupt input
// yields an error, never a partial update — the follower's mid-stream
// corruption detection rides on this.
func DecodeFrame(b []byte) (stream.Update, int, error) {
	return decodeRecord(b)
}

// SnapLSN returns the covered LSN of the newest snapshot on disk (0 when
// none has been written).
func (s *Store) SnapLSN() uint64 { return s.snapLSN }

// Rotate seals the active segment so every journaled record lives in an
// immutable file; the next append opens a fresh segment. No-op on an
// empty active segment.
func (s *Store) Rotate() error {
	if s.w == nil {
		return errClosed
	}
	return s.w.rotate()
}

// PlanSegment is one sealed log segment a catch-up stream reads.
type PlanSegment struct {
	// First is the LSN of the segment's first record.
	First uint64
	// Path is the segment file path.
	Path string
}

// Plan is a catch-up manifest: everything a replication stream must send
// so a follower at LSN After catches up to CutLSN. While the plan is
// held, Compact keeps the referenced snapshot and every segment holding
// records > After; call Release once the catch-up phase is done (or
// abandoned). Frames appended after CutLSN reach the follower through
// the live tap, never through the plan.
type Plan struct {
	// After is the follower's applied LSN; the plan covers (After, CutLSN].
	After uint64
	// CutLSN is the store's LSN when the plan was cut.
	CutLSN uint64
	// SnapPath/SnapLSN name the snapshot to seed from; empty/0 when the
	// log tail alone covers the gap.
	SnapPath string
	SnapLSN  uint64
	// Segments are the sealed segments holding records in (After, CutLSN]
	// (their leading records may predate After; readers skip by LSN).
	Segments []PlanSegment

	pin *Pin
}

// Release drops the plan's compaction pin. Idempotent; may be called
// from the goroutine that owns the store only (like every Store method).
func (p *Plan) Release() {
	if p.pin != nil {
		p.pin.Release()
		p.pin = nil
	}
}

// Pin marks on-disk state as in use by a reader so Compact will not
// remove it: every segment containing records > after stays, as does the
// snapshot covering snapLSN (when non-zero).
type Pin struct {
	s     *Store
	after uint64
	snap  uint64
}

// Release removes the pin. Idempotent.
func (p *Pin) Release() {
	if p.s != nil {
		delete(p.s.pins, p)
		p.s = nil
	}
}

// pin registers a new pin with the store.
func (s *Store) pin(after, snap uint64) *Pin {
	p := &Pin{s: s, after: after, snap: snap}
	s.pins[p] = struct{}{}
	return p
}

// pinnedFloor returns the smallest pinned after-LSN (segments holding
// records beyond it must stay) and the set of pinned snapshot LSNs.
func (s *Store) pinnedFloor() (after uint64, snaps map[uint64]bool, any bool) {
	after = ^uint64(0)
	for p := range s.pins { //tf:unordered-ok min + set union are order-independent
		any = true
		if p.after < after {
			after = p.after
		}
		if p.snap != 0 {
			if snaps == nil {
				snaps = make(map[uint64]bool, len(s.pins))
			}
			snaps[p.snap] = true
		}
	}
	return after, snaps, any
}

// ErrBehindCompaction reports that a follower's log position has been
// compacted away and the follower holds state, so neither a log tail nor
// a snapshot re-seed can bring it forward; it must be re-seeded from
// scratch (wipe its data directory).
var ErrBehindCompaction = errors.New("durable: follower position predates the oldest retained segment; re-seed from scratch")

// CatchupPlan cuts a catch-up manifest for a follower whose applied LSN
// is after. It seals the active segment (so every record <= CutLSN lives
// in an immutable file a concurrent reader may stream without racing the
// appender) and pins the referenced files against Compact until the plan
// is released.
//
// A fresh follower (after == 0) is seeded from the newest snapshot when
// one exists, then tailed from the segments past it. A non-fresh
// follower gets the log tail from after+1 — or ErrBehindCompaction when
// compaction has already dropped those records.
func (s *Store) CatchupPlan(after uint64) (*Plan, error) {
	if s.w == nil {
		return nil, errClosed
	}
	if after > s.lsn {
		return nil, fmt.Errorf("durable: follower LSN %d is ahead of the leader's %d (diverged histories)", after, s.lsn)
	}
	if err := s.w.rotate(); err != nil {
		return nil, err
	}
	p := &Plan{After: after, CutLSN: s.lsn}

	tailFrom := after + 1
	if after == 0 && s.snapLSN > 0 {
		p.SnapPath = filepath.Join(s.dir, snapName(s.snapLSN))
		p.SnapLSN = s.snapLSN
		tailFrom = s.snapLSN + 1
	}

	firsts, err := segmentList(s.dir)
	if err != nil {
		return nil, err
	}
	for i, first := range firsts {
		if first == s.w.firstLSN {
			break // the active segment is streamed live through the tap
		}
		end := s.lsn // last record of this sealed segment
		if i+1 < len(firsts) {
			end = firsts[i+1] - 1
		}
		if end < tailFrom {
			continue
		}
		p.Segments = append(p.Segments, PlanSegment{First: first, Path: filepath.Join(s.dir, segName(first))})
	}
	// The tail must start inside the first planned segment (or be empty
	// because the follower is already at the cut).
	if tailFrom <= p.CutLSN {
		if len(p.Segments) == 0 || p.Segments[0].First > tailFrom {
			return nil, ErrBehindCompaction
		}
	}
	p.pin = s.pin(tailFrom-1, p.SnapLSN)
	return p, nil
}

// ReadSegmentFrames walks one sealed segment file whose first record has
// LSN firstLSN, calling emit with each record's LSN and raw CRC-framed
// bytes for every record with LSN > after. The frame slice aliases the
// file buffer and is only valid during the call. Torn or corrupt content
// is an error: sealed segments were validated by recovery, so damage here
// means concurrent truncation or disk fault, and the catch-up stream must
// fail rather than ship garbage.
func ReadSegmentFrames(path string, firstLSN, after uint64, emit func(lsn uint64, frame []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lsn := firstLSN - 1
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			return fmt.Errorf("durable: segment %s record %d: %w", filepath.Base(path), lsn+1, err)
		}
		lsn++
		if lsn > after {
			if err := emit(lsn, data[off:off+n]); err != nil {
				return err
			}
		}
		off += n
	}
	return nil
}

// SeedFromSnapshot adopts a serialized snapshot (the raw bytes of a
// snapshot file, e.g. shipped by a replication leader) as this store's
// entire state. Only a fresh store (nothing journaled, no snapshot) may
// be seeded: the snapshot replaces the graph and label dictionaries, is
// persisted locally so restarts recover from it, and the log restarts at
// its covered LSN + 1 — exactly the state a follower that had replayed
// records 1..coveredLSN would hold.
//
// The caller owns re-pointing anything built over the previous (empty)
// graph and dictionaries.
func (s *Store) SeedFromSnapshot(data []byte) error {
	if s.w == nil {
		return errClosed
	}
	if s.lsn != 0 || s.snapLSN != 0 {
		return fmt.Errorf("durable: cannot seed a non-fresh store (lsn=%d snapshot=%d)", s.lsn, s.snapLSN)
	}
	lsn, g, vdict, edict, err := decodeSnapshot(data, "seed")
	if err != nil {
		return err
	}
	// Persist first: write the snapshot under its own name, then move the
	// (empty) log past it. A crash in between recovers either fresh state
	// or the seeded snapshot — never a half-seeded store.
	tmp := filepath.Join(s.dir, snapName(lsn)+tmpSuffix)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName(lsn))); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.w.Close(); err != nil {
		return err
	}
	if err := removeAllSegments(s.dir); err != nil {
		return err
	}
	if err := s.w.openSegment(lsn+1, true); err != nil {
		return err
	}
	s.w.nextLSN = lsn + 1
	s.g = g
	s.vdict = vdict
	s.edict = edict
	s.lsn = lsn
	s.snapLSN = lsn
	return nil
}
