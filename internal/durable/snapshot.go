package durable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"turboflux/internal/graph"
)

// Snapshot file layout:
//
//	magic "TFSN" (4 bytes)
//	version (1 byte, currently 1)
//	coveredLSN (uint64 LE)       records 1..coveredLSN are baked in
//	payloadLen (uint64 LE)
//	payloadCRC (uint32 LE)       CRC32-C of the payload
//	headerCRC  (uint32 LE)       CRC32-C of the 25 bytes above
//	payload: vertex dict, edge dict (graph.Dict.WriteBinary),
//	         data graph (graph.Graph.WriteBinary)
//
// Snapshots are written to a .tmp file, fsynced, then renamed into place
// and the directory fsynced: a crash leaves either the old set of
// snapshots or the old set plus a complete new one, never a half-visible
// file under the .snap name.
const (
	snapMagic      = "TFSN"
	snapVersion    = 1
	snapHeaderSize = 4 + 1 + 8 + 8 + 4 + 4

	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func snapName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := name[len(snapPrefix) : len(name)-len(snapSuffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeSnapshotPayload writes the dicts and graph into buf.
//
//tf:hotpath
func encodeSnapshotPayload(buf *bytes.Buffer, g *graph.Graph, vdict, edict *graph.Dict) error {
	if err := vdict.WriteBinary(buf); err != nil {
		return err
	}
	if err := edict.WriteBinary(buf); err != nil {
		return err
	}
	return g.WriteBinary(buf)
}

// writeSnapshot atomically persists the state covering records 1..lsn.
func writeSnapshot(dir string, lsn uint64, g *graph.Graph, vdict, edict *graph.Dict) error {
	var payload bytes.Buffer
	if err := encodeSnapshotPayload(&payload, g, vdict, edict); err != nil {
		return err
	}
	header := make([]byte, snapHeaderSize)
	copy(header, snapMagic)
	header[4] = snapVersion
	binary.LittleEndian.PutUint64(header[5:], lsn)
	binary.LittleEndian.PutUint64(header[13:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(header[21:], crc32.Checksum(payload.Bytes(), castagnoli))
	binary.LittleEndian.PutUint32(header[25:], crc32.Checksum(header[:25], castagnoli))

	final := filepath.Join(dir, snapName(lsn))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(header)
	if err == nil {
		_, err = f.Write(payload.Bytes())
	}
	if err == nil {
		err = f.Sync()
	}
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //tf:unchecked-ok best-effort cleanup of failed write
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadSnapshot reads and verifies one snapshot file.
func loadSnapshot(path string) (lsn uint64, g *graph.Graph, vdict, edict *graph.Dict, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	return decodeSnapshot(data, filepath.Base(path))
}

// decodeSnapshot verifies and decodes a serialized snapshot (the byte
// contents of a snapshot file, whether read locally or shipped by a
// replication leader). name labels errors.
func decodeSnapshot(data []byte, name string) (lsn uint64, g *graph.Graph, vdict, edict *graph.Dict, err error) {
	if len(data) < snapHeaderSize {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s truncated header", name)
	}
	header := data[:snapHeaderSize]
	if crc32.Checksum(header[:25], castagnoli) != binary.LittleEndian.Uint32(header[25:]) {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s header checksum mismatch", name)
	}
	if string(header[:4]) != snapMagic {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s bad magic", name)
	}
	if header[4] != snapVersion {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s unsupported version %d", name, header[4])
	}
	lsn = binary.LittleEndian.Uint64(header[5:])
	payloadLen := binary.LittleEndian.Uint64(header[13:])
	payload := data[snapHeaderSize:]
	if uint64(len(payload)) != payloadLen {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s payload is %d bytes, header says %d",
			name, len(payload), payloadLen)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(header[21:]) {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s payload checksum mismatch", name)
	}
	br := bufio.NewReader(bytes.NewReader(payload))
	if vdict, err = graph.ReadDict(br); err != nil {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s vertex dict: %w", name, err)
	}
	if edict, err = graph.ReadDict(br); err != nil {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s edge dict: %w", name, err)
	}
	if g, err = graph.ReadBinary(br); err != nil {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s graph: %w", name, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return 0, nil, nil, nil, fmt.Errorf("durable: snapshot %s has trailing bytes", name)
	}
	return lsn, g, vdict, edict, nil
}

// snapshotList returns the covered LSNs of the snapshots in dir,
// descending (newest first). Leftover .tmp files are ignored.
func snapshotList(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseSnapName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	return lsns, nil
}

// newestValidSnapshot loads the newest snapshot that verifies, falling
// back to older ones when a newer file is corrupt. With no usable
// snapshot it returns lsn 0 and fresh empty state.
func newestValidSnapshot(dir string) (lsn uint64, g *graph.Graph, vdict, edict *graph.Dict, err error) {
	lsns, err := snapshotList(dir)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	for _, l := range lsns {
		lsn, g, vdict, edict, err = loadSnapshot(filepath.Join(dir, snapName(l)))
		if err == nil {
			return lsn, g, vdict, edict, nil
		}
	}
	return 0, graph.New(), graph.NewDict(), graph.NewDict(), nil
}
