package durable

import (
	"testing"
)

// TestStoreAppendBatch checks the batched journal append: one call
// frames the whole batch as one write, hands back the LSN range, and a
// reopen recovers exactly the same graph as per-record appends.
func TestStoreAppendBatch(t *testing.T) {
	dir := t.TempDir()
	ups := testUpdates(300)
	s, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var lsn uint64
	for off := 0; off < len(ups); off += 64 {
		end := off + 64
		if end > len(ups) {
			end = len(ups)
		}
		first, last, err := s.AppendBatch(ups[off:end])
		if err != nil {
			t.Fatalf("AppendBatch at %d: %v", off, err)
		}
		if first != lsn+1 || last != lsn+uint64(end-off) {
			t.Fatalf("AppendBatch at %d: lsn range [%d,%d], want [%d,%d]",
				off, first, last, lsn+1, lsn+uint64(end-off))
		}
		lsn = last
		for _, u := range ups[off:end] {
			u.Apply(s.Graph())
		}
	}
	if s.LSN() != uint64(len(ups)) {
		t.Fatalf("LSN = %d, want %d", s.LSN(), len(ups))
	}
	// An empty batch is a no-op that does not consume sequence numbers.
	if first, last, err := s.AppendBatch(nil); err != nil || first != lsn || last != lsn {
		t.Fatalf("empty AppendBatch = (%d, %d, %v), want (%d, %d, nil)", first, last, err, lsn, lsn)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //tf:unchecked-ok test cleanup
	rec := s2.Recovery()
	if rec.Fresh || rec.Replayed != len(ups) || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v, want %d replayed clean", rec, len(ups))
	}
	sameGraph(t, s2.Graph(), graphFromPrefix(ups, len(ups)))
}

// TestStoreRecoveryBatchEquivalence pins the recovery-batching contract:
// replaying the log tail through the batched Applier (any batch size)
// recovers a graph identical to the legacy record-at-a-time path
// (ReplayBatch: 1), with the same Replayed accounting.
func TestStoreRecoveryBatchEquivalence(t *testing.T) {
	dir := t.TempDir()
	ups := testUpdates(1000)
	s, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	want := graphFromPrefix(ups, len(ups))
	// 1 is the legacy per-record path; 0 the default (1024); 7 a size
	// that never divides the history evenly; 4096 larger than the log.
	for _, rb := range []int{1, 0, 7, 4096} {
		s, err := Open(dir, Options{ReplayBatch: rb})
		if err != nil {
			t.Fatalf("ReplayBatch=%d: %v", rb, err)
		}
		rec := s.Recovery()
		if rec.Replayed != len(ups) {
			t.Fatalf("ReplayBatch=%d: replayed %d, want %d", rb, rec.Replayed, len(ups))
		}
		if s.LSN() != uint64(len(ups)) {
			t.Fatalf("ReplayBatch=%d: LSN = %d, want %d", rb, s.LSN(), len(ups))
		}
		sameGraph(t, s.Graph(), want)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
