package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

// Options configures a Store.
type Options struct {
	// Fsync selects the WAL sync policy (default FsyncInterval).
	Fsync Policy
	// FsyncEvery is the FsyncInterval period (default 100ms).
	FsyncEvery time.Duration
	// SegmentSize rotates the WAL once the active segment reaches this
	// many bytes (default 4 MiB).
	SegmentSize int64
	// VertexLabels / EdgeLabels seed the label dictionaries of a fresh
	// store (no snapshot on disk). Ignored when a snapshot is recovered;
	// see Store.SetDicts for re-adopting caller-owned dictionaries.
	VertexLabels, EdgeLabels *graph.Dict
	// ReplayBatch sets how many WAL-tail records recovery buffers before
	// applying them to the graph in one batched pass (graph.Applier:
	// fused probes, deferred counters). 0 selects the default (1024);
	// 1 replays record-at-a-time through stream.Update.Apply, the
	// pre-batching path kept for A/B comparison.
	ReplayBatch int
}

// defaultReplayBatch is the recovery replay batch size when
// Options.ReplayBatch is zero.
const defaultReplayBatch = 1024

func (o *Options) applyDefaults() {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// SnapshotLSN is the covered LSN of the snapshot recovery started
	// from (0 when none).
	SnapshotLSN uint64
	// Replayed is the number of WAL records applied on top of it.
	Replayed int
	// TruncatedBytes is the size of the torn or corrupt log tail that was
	// discarded.
	TruncatedBytes int
	// Fresh reports that the directory held no snapshot and no records.
	Fresh bool
}

// Store is the durable state of one engine: a data graph, its label
// dictionaries, and the WAL journaling every change. Not safe for
// concurrent use.
type Store struct {
	dir string
	opt Options

	w     *wal
	g     *graph.Graph
	vdict *graph.Dict
	edict *graph.Dict

	lsn     uint64 // LSN of the last record appended or recovered
	snapLSN uint64 // covered LSN of the newest snapshot on disk
	rec     RecoveryInfo

	// tap, when set, observes every successful append (see SetTap).
	tap Tap
	// pins holds the active replication pins protecting segments and
	// snapshots from Compact. Owned by the store's single-threaded caller,
	// like every other field.
	pins map[*Pin]struct{}
}

// Open recovers (or initializes) the store in dir: it loads the newest
// valid snapshot, replays the WAL tail on top of it, truncates any torn
// or corrupt log tail, and leaves the log open for appending.
func Open(dir string, opt Options) (*Store, error) {
	opt.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapLSN, g, vdict, edict, err := newestValidSnapshot(dir)
	if err != nil {
		return nil, err
	}
	if snapLSN == 0 {
		// No snapshot to recover dictionaries from: adopt the caller's.
		if opt.VertexLabels != nil {
			vdict = opt.VertexLabels
		}
		if opt.EdgeLabels != nil {
			edict = opt.EdgeLabels
		}
	}
	s := &Store{dir: dir, opt: opt, g: g, vdict: vdict, edict: edict, snapLSN: snapLSN, pins: make(map[*Pin]struct{})}
	s.rec.SnapshotLSN = snapLSN

	rb := opt.ReplayBatch
	if rb <= 0 {
		rb = defaultReplayBatch
	}
	var res scanResult
	if rb == 1 {
		res, err = scanWAL(dir, snapLSN, func(lsn uint64, u stream.Update) error {
			u.Apply(g)
			s.rec.Replayed++
			return nil
		})
	} else {
		ap := graph.NewApplier(g)
		batch := make([]stream.Update, 0, rb)
		res, err = scanWAL(dir, snapLSN, func(lsn uint64, u stream.Update) error {
			batch = append(batch, u)
			if len(batch) >= rb {
				replayBatch(ap, batch)
				batch = batch[:0]
			}
			s.rec.Replayed++
			return nil
		})
		replayBatch(ap, batch)
		ap.Flush()
	}
	if err != nil {
		return nil, err
	}
	s.rec.TruncatedBytes = res.truncated
	s.lsn = res.lastLSN

	w := &wal{dir: dir, policy: opt.Fsync, interval: opt.FsyncEvery, segSize: opt.SegmentSize}
	switch {
	case s.lsn < snapLSN:
		// The usable log prefix ended before the snapshot's coverage
		// (possible when an old segment is corrupted after a newer
		// snapshot was written). The log contributes nothing; restart it
		// after the snapshot so future LSNs never collide.
		if err := removeAllSegments(dir); err != nil {
			return nil, err
		}
		s.lsn = snapLSN
		if err := w.openSegment(snapLSN+1, true); err != nil {
			return nil, err
		}
	case res.activeLSN == s.lsn+1 && !segmentExists(dir, res.activeLSN):
		// Empty log (fresh store or everything compacted away).
		if err := w.openSegment(res.activeLSN, true); err != nil {
			return nil, err
		}
	default:
		if err := w.openSegment(res.activeLSN, false); err != nil {
			return nil, err
		}
	}
	w.nextLSN = s.lsn + 1
	s.w = w
	s.rec.Fresh = snapLSN == 0 && s.lsn == 0
	return s, nil
}

func segmentExists(dir string, firstLSN uint64) bool {
	_, err := os.Stat(filepath.Join(dir, segName(firstLSN)))
	return err == nil
}

func removeAllSegments(dir string) error {
	firsts, err := segmentList(dir)
	if err != nil {
		return err
	}
	var res scanResult
	if err := dropSegments(dir, firsts, &res); err != nil {
		return err
	}
	return syncDir(dir)
}

// Recovery returns what Open found.
func (s *Store) Recovery() RecoveryInfo { return s.rec }

// Graph returns the recovered data graph. The caller (normally the
// engine) owns and mutates it; the store only reads it during Compact.
func (s *Store) Graph() *graph.Graph { return s.g }

// VertexLabels returns the live vertex-label dictionary.
func (s *Store) VertexLabels() *graph.Dict { return s.vdict }

// EdgeLabels returns the live edge-label dictionary.
func (s *Store) EdgeLabels() *graph.Dict { return s.edict }

// SetDicts swaps the dictionaries Compact snapshots, so a caller that owns
// its Dict instances (and has merged the recovered names into them) keeps
// them durable.
func (s *Store) SetDicts(vdict, edict *graph.Dict) {
	if vdict != nil {
		s.vdict = vdict
	}
	if edict != nil {
		s.edict = edict
	}
}

// LSN returns the LSN of the last appended or recovered record.
func (s *Store) LSN() uint64 { return s.lsn }

// Append journals u and returns its LSN. It does not apply u to the
// graph; the engine does that after journaling succeeds (write-ahead
// order).
func (s *Store) Append(u stream.Update) (uint64, error) {
	if s.w == nil {
		return 0, errClosed
	}
	lsn, err := s.w.Append(u)
	if err != nil {
		return 0, fmt.Errorf("durable: journaling %q: %w", u, err)
	}
	s.lsn = lsn
	if s.tap != nil {
		s.tap(lsn, lsn, s.w.buf)
	}
	return lsn, nil
}

// replayBatch applies one buffered batch of recovered updates through
// the Applier: duplicate/existence probes fuse with the mutation and
// edge-counter maintenance is deferred to the Applier's Flush. Update
// semantics match stream.Update.Apply exactly (duplicate inserts, absent
// deletes and re-declarations are no-ops).
func replayBatch(ap *graph.Applier, batch []stream.Update) {
	for _, u := range batch {
		switch u.Op {
		case stream.OpInsert:
			ap.InsertEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
		case stream.OpDelete:
			ap.DeleteEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
		case stream.OpVertex:
			ap.DeclareVertex(u.Vertex, u.Labels)
		}
	}
}

// AppendBatch journals ups as one write and returns the LSN range
// [first, last] it was assigned. Like Append it does not apply the
// updates to the graph; the engine does that after journaling succeeds.
// An empty batch is a no-op returning the current LSN twice.
//
//tf:hotpath
func (s *Store) AppendBatch(ups []stream.Update) (first, last uint64, err error) {
	if s.w == nil {
		return 0, 0, errClosed
	}
	if len(ups) == 0 {
		return s.lsn, s.lsn, nil
	}
	first, last, err = s.w.AppendBatch(ups)
	if err != nil {
		return 0, 0, fmt.Errorf("durable: journaling batch of %d: %w", len(ups), err) //tf:alloc-ok error path
	}
	s.lsn = last
	if s.tap != nil {
		s.tap(first, last, s.w.buf)
	}
	return first, last, nil
}

var errClosed = errors.New("durable: store is closed")

// Sync forces journaled records to stable storage regardless of policy.
func (s *Store) Sync() error {
	if s.w == nil {
		return errClosed
	}
	return s.w.Sync()
}

// Compact writes a fresh snapshot covering every journaled record and
// drops the log segments and snapshots it makes obsolete. The caller must
// ensure the graph reflects exactly the journaled history (i.e. call it
// between updates, not mid-apply).
func (s *Store) Compact() error {
	if s.w == nil {
		return errClosed
	}
	// Rotate first so the active segment starts at lsn+1 and every other
	// segment becomes fully covered by the snapshot.
	if err := s.w.rotate(); err != nil {
		return err
	}
	if err := writeSnapshot(s.dir, s.lsn, s.g, s.vdict, s.edict); err != nil {
		return err
	}
	s.snapLSN = s.lsn
	pinAfter, pinnedSnaps, pinned := s.pinnedFloor()
	// Retain the two newest snapshots so a corrupt newest one can still
	// fall back to its predecessor with a full replay tail; drop the rest,
	// except snapshots an active replication catch-up stream is reading.
	lsns, err := snapshotList(s.dir)
	if err != nil {
		return err
	}
	for _, l := range lsns[min(2, len(lsns)):] {
		if pinnedSnaps[l] {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, snapName(l))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	// Obsolete segments: those whose every record is covered by the oldest
	// retained snapshot (a segment ends where the next one begins; the
	// active segment always stays). A replication pin lowers the floor:
	// segments holding records a catch-up stream has yet to ship must stay.
	floor := lsns[min(2, len(lsns))-1]
	if pinned && pinAfter < floor {
		floor = pinAfter
	}
	firsts, err := segmentList(s.dir)
	if err != nil {
		return err
	}
	var res scanResult
	for i, first := range firsts {
		if first == s.w.firstLSN || i+1 >= len(firsts) {
			break
		}
		if firsts[i+1] > floor+1 {
			break // ascending: later segments are covered even less
		}
		if err := dropSegments(s.dir, []uint64{first}, &res); err != nil {
			return err
		}
	}
	return syncDir(s.dir)
}

// Close syncs and closes the log. The store is unusable afterwards.
func (s *Store) Close() error {
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.w = nil
	return err
}
