package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

// testUpdates is a deterministic little history exercising all ops.
func testUpdates(n int) []stream.Update {
	ups := make([]stream.Update, 0, n)
	for i := 0; i < n; i++ {
		v := graph.VertexID(i % 17)
		w := graph.VertexID((i*7 + 3) % 17)
		l := graph.Label(i % 5)
		switch i % 5 {
		case 0:
			ups = append(ups, stream.DeclareVertex(v, l, l+1))
		case 3:
			ups = append(ups, stream.Delete(v, l, w))
		default:
			ups = append(ups, stream.Insert(v, l, w))
		}
	}
	return ups
}

// graphFromPrefix materializes the graph after applying ups[:n].
func graphFromPrefix(ups []stream.Update, n int) *graph.Graph {
	g := graph.New()
	for _, u := range ups[:n] {
		u.Apply(g)
	}
	return g
}

// sortedEdges renders a graph's edge set deterministically for equality.
func sortedEdges(g *graph.Graph) []graph.Edge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		if es[i].Label != es[j].Label {
			return es[i].Label < es[j].Label
		}
		return es[i].To < es[j].To
	})
	return es
}

func sameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("graph shape mismatch: got %dv/%de, want %dv/%de",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	if !reflect.DeepEqual(sortedEdges(got), sortedEdges(want)) {
		t.Fatalf("edge sets differ")
	}
	want.ForEachVertex(func(v graph.VertexID) {
		if !reflect.DeepEqual(got.Labels(v), want.Labels(v)) {
			t.Fatalf("labels of vertex %d differ: got %v, want %v", v, got.Labels(v), want.Labels(v))
		}
	})
}

// appendAll journals ups and applies them to the store's graph, as the
// engine wrapper does.
func appendAll(t *testing.T, s *Store, ups []stream.Update) {
	t.Helper()
	for _, u := range ups {
		if _, err := s.Append(u); err != nil {
			t.Fatalf("Append(%s): %v", u, err)
		}
		u.Apply(s.Graph())
	}
}

func TestStoreOpenFresh(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test cleanup
	if !s.Recovery().Fresh {
		t.Error("fresh dir should report Fresh")
	}
	if s.LSN() != 0 {
		t.Errorf("fresh LSN = %d, want 0", s.LSN())
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ups := testUpdates(100)
	s, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups)
	if s.LSN() != 100 {
		t.Fatalf("LSN = %d, want 100", s.LSN())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //tf:unchecked-ok test cleanup
	rec := s2.Recovery()
	if rec.Fresh || rec.Replayed != 100 || rec.SnapshotLSN != 0 {
		t.Fatalf("recovery = %+v, want 100 replayed from no snapshot", rec)
	}
	if s2.LSN() != 100 {
		t.Fatalf("recovered LSN = %d, want 100", s2.LSN())
	}
	sameGraph(t, s2.Graph(), graphFromPrefix(ups, 100))

	// Appends continue with fresh LSNs.
	lsn, err := s2.Append(stream.Insert(1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 101 {
		t.Fatalf("post-recovery LSN = %d, want 101", lsn)
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	ups := testUpdates(300)
	s, err := Open(dir, Options{SegmentSize: 256, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	firsts, err := segmentList(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(firsts) < 3 {
		t.Fatalf("expected several segments, got %d", len(firsts))
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //tf:unchecked-ok test cleanup
	if s2.Recovery().Replayed != 300 {
		t.Fatalf("replayed %d, want 300", s2.Recovery().Replayed)
	}
	sameGraph(t, s2.Graph(), graphFromPrefix(ups, 300))
}

func TestStoreCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	ups := testUpdates(200)
	s, err := Open(dir, Options{SegmentSize: 512, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups[:150])
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups[150:])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovery()
	if rec.SnapshotLSN != 150 || rec.Replayed != 50 {
		t.Fatalf("recovery = %+v, want snapshot 150 + 50 replayed", rec)
	}
	sameGraph(t, s2.Graph(), graphFromPrefix(ups, 200))

	// A second compact cycle retains at most two snapshots and keeps
	// working after reopen.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	snaps, err := snapshotList(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > 2 {
		t.Fatalf("compaction left %d snapshots, want <= 2", len(snaps))
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close() //tf:unchecked-ok test cleanup
	if s3.Recovery().SnapshotLSN != 200 || s3.Recovery().Replayed != 0 {
		t.Fatalf("recovery after compact = %+v", s3.Recovery())
	}
	sameGraph(t, s3.Graph(), graphFromPrefix(ups, 200))
}

func TestStoreSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	ups := testUpdates(120)
	s, err := Open(dir, Options{SegmentSize: 256, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups[:60])
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups[60:100])
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups[100:])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot: recovery must fall back to the older
	// one and replay the full tail from LSN 61 on.
	path := filepath.Join(dir, snapName(100))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //tf:unchecked-ok test cleanup
	rec := s2.Recovery()
	if rec.SnapshotLSN != 60 || rec.Replayed != 60 {
		t.Fatalf("recovery = %+v, want fallback snapshot 60 + 60 replayed", rec)
	}
	sameGraph(t, s2.Graph(), graphFromPrefix(ups, 120))
}

func TestStoreDictPersistence(t *testing.T) {
	dir := t.TempDir()
	vd, ed := graph.NewDict(), graph.NewDict()
	vd.Intern("person")
	vd.Intern("post")
	ed.Intern("follows")
	s, err := Open(dir, Options{VertexLabels: vd, EdgeLabels: ed})
	if err != nil {
		t.Fatal(err)
	}
	if s.VertexLabels() != vd || s.EdgeLabels() != ed {
		t.Fatal("fresh store must adopt the seed dictionaries")
	}
	appendAll(t, s, testUpdates(10))
	ed.Intern("likes")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //tf:unchecked-ok test cleanup
	if got := s2.VertexLabels().Len(); got != 2 {
		t.Fatalf("recovered vertex dict has %d names, want 2", got)
	}
	if l, ok := s2.EdgeLabels().Lookup("likes"); !ok || l != 1 {
		t.Fatalf("recovered edge dict lost %q (got %d,%v)", "likes", l, ok)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"always": FsyncAlways, "interval": FsyncInterval, "": FsyncInterval, "none": FsyncNone,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
		if s != "" && got.String() != s {
			t.Errorf("Policy(%q).String() = %q", s, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy should reject unknown values")
	}
}

func TestFsyncPolicies(t *testing.T) {
	ups := testUpdates(50)
	for _, pol := range []Policy{FsyncAlways, FsyncInterval, FsyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{Fsync: pol})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, s, ups)
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close() //tf:unchecked-ok test cleanup
			sameGraph(t, s2.Graph(), graphFromPrefix(ups, len(ups)))
		})
	}
}

func TestStoreClosed(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(stream.Insert(1, 1, 2)); err == nil {
		t.Error("Append on closed store should fail")
	}
	if err := s.Compact(); err == nil {
		t.Error("Compact on closed store should fail")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close should be a no-op, got %v", err)
	}
}
