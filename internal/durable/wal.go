package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"turboflux/internal/stream"
)

// Policy selects when the WAL fsyncs appended records to stable storage.
type Policy uint8

const (
	// FsyncInterval syncs at most once per FsyncEvery, checked on append
	// and forced on Sync/Close — the default: bounded data loss without a
	// syscall per record.
	FsyncInterval Policy = iota
	// FsyncAlways syncs after every append: no acknowledged record is ever
	// lost, at the cost of one fdatasync per update.
	FsyncAlways
	// FsyncNone never syncs except on Sync/Close; crash durability is
	// whatever the OS page cache survives.
	FsyncNone
)

// ParsePolicy parses the -fsync flag values "always", "interval", "none".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or none)", s)
	}
}

// String returns the flag spelling of p.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	default:
		return "policy?"
	}
}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix)
}

// parseSegName extracts the first LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// wal is the append side of the log. Not safe for concurrent use; the
// engine is single-threaded per stream and so is its journal.
type wal struct {
	dir      string
	policy   Policy
	interval time.Duration
	segSize  int64

	f        *os.File // active segment
	firstLSN uint64   // LSN of the active segment's first record
	size     int64    // bytes written to the active segment
	nextLSN  uint64   // LSN the next append receives
	buf      []byte   // reusable frame buffer
	lastSync time.Time
	dirty    bool
}

// Append journals u and returns its LSN.
//
//tf:hotpath
func (w *wal) Append(u stream.Update) (uint64, error) {
	buf, err := appendRecord(w.buf[:0], u)
	w.buf = buf
	if err != nil {
		return 0, err
	}
	if _, err := w.f.Write(buf); err != nil {
		return 0, err
	}
	w.size += int64(len(buf))
	lsn := w.nextLSN
	w.nextLSN++
	w.dirty = true
	if err := w.maybeSync(); err != nil {
		return 0, err
	}
	if w.size >= w.segSize {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// AppendBatch journals every update in ups as one frame-and-write,
// returning the LSNs of the first and last record appended. The frame
// buffer, the write syscall, the fsync-policy check and the rotation
// check are paid once per batch instead of once per record. The caller
// guarantees ups is non-empty.
//
//tf:hotpath
func (w *wal) AppendBatch(ups []stream.Update) (first, last uint64, err error) {
	buf := w.buf[:0]
	for _, u := range ups {
		if buf, err = appendRecord(buf, u); err != nil {
			w.buf = buf[:0]
			return 0, 0, err
		}
	}
	w.buf = buf
	if _, err := w.f.Write(buf); err != nil {
		return 0, 0, err
	}
	w.size += int64(len(buf))
	first = w.nextLSN
	w.nextLSN += uint64(len(ups))
	last = w.nextLSN - 1
	w.dirty = true
	if err := w.maybeSync(); err != nil {
		return 0, 0, err
	}
	if w.size >= w.segSize {
		if err := w.rotate(); err != nil {
			return 0, 0, err
		}
	}
	return first, last, nil
}

// maybeSync applies the fsync policy after an append.
//
//tf:hotpath
func (w *wal) maybeSync() error {
	switch w.policy {
	case FsyncAlways:
		w.dirty = false
		return w.f.Sync()
	case FsyncInterval:
		now := time.Now()
		if now.Sub(w.lastSync) >= w.interval {
			w.lastSync = now
			w.dirty = false
			return w.f.Sync()
		}
	}
	return nil
}

// Sync forces buffered records to stable storage regardless of policy.
func (w *wal) Sync() error {
	if !w.dirty {
		return nil
	}
	w.dirty = false
	w.lastSync = time.Now()
	return w.f.Sync()
}

// rotate closes the active segment and starts a new one whose first LSN is
// the next append's LSN. No-op on an empty active segment.
func (w *wal) rotate() error {
	if w.size == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return w.openSegment(w.nextLSN, true)
}

// openSegment makes the segment starting at firstLSN the active one,
// creating it if asked. The directory is synced after creation so the new
// name survives a crash.
func (w *wal) openSegment(firstLSN uint64, create bool) error {
	flags := os.O_WRONLY | os.O_APPEND
	if create {
		flags |= os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segName(firstLSN)), flags, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //tf:unchecked-ok already failing
		return err
	}
	w.f = f
	w.firstLSN = firstLSN
	w.size = st.Size()
	w.dirty = false
	if create {
		return syncDir(w.dir)
	}
	return nil
}

// Close syncs and closes the active segment.
func (w *wal) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.Sync()
	cerr := w.f.Close()
	w.f = nil
	if err != nil {
		return err
	}
	return cerr
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// segmentList returns the segment first-LSNs present in dir, ascending.
func segmentList(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseSegName(e.Name()); ok {
			firsts = append(firsts, lsn)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

// scanResult describes the clean prefix of the log found by scanWAL.
type scanResult struct {
	lastLSN   uint64   // LSN of the last valid record (0 if none)
	activeLSN uint64   // first LSN of the segment appends continue in
	truncated int      // bytes of torn/corrupt tail discarded
	dropped   []uint64 // segments beyond the torn point, deleted
}

// scanWAL walks the segments of dir in order, calling apply for every
// valid record with LSN > afterLSN. The first torn or corrupt record ends
// the clean prefix: the segment is truncated there and any later segments
// are deleted. It returns where the prefix ends so the wal can resume
// appending.
func scanWAL(dir string, afterLSN uint64, apply func(lsn uint64, u stream.Update) error) (scanResult, error) {
	res := scanResult{}
	firsts, err := segmentList(dir)
	if err != nil {
		return res, err
	}
	if len(firsts) == 0 {
		res.lastLSN = afterLSN
		res.activeLSN = afterLSN + 1
		return res, nil
	}
	if firsts[0] > afterLSN+1 {
		return res, fmt.Errorf("durable: log gap: snapshot covers LSN %d but oldest segment starts at %d", afterLSN, firsts[0])
	}
	lsn := firsts[0] - 1
	active := firsts[0]
	for i, first := range firsts {
		if first != lsn+1 {
			// Missing records between segments: everything from here on is
			// unreachable. Treat like a torn tail.
			if err := dropSegments(dir, firsts[i:], &res); err != nil {
				return res, err
			}
			break
		}
		active = first
		path := filepath.Join(dir, segName(first))
		data, err := os.ReadFile(path)
		if err != nil {
			return res, err
		}
		off := 0
		for off < len(data) {
			u, n, derr := decodeRecord(data[off:])
			if derr != nil {
				// Clean prefix ends inside this segment: truncate it and
				// drop every later segment.
				res.truncated += len(data) - off
				if err := os.Truncate(path, int64(off)); err != nil {
					return res, err
				}
				if err := dropSegments(dir, firsts[i+1:], &res); err != nil {
					return res, err
				}
				res.lastLSN = lsn
				res.activeLSN = first
				return res, syncDir(dir)
			}
			lsn++
			if lsn > afterLSN {
				if err := apply(lsn, u); err != nil {
					return res, err
				}
			}
			off += n
		}
	}
	res.lastLSN = lsn
	res.activeLSN = active
	return res, nil
}

func dropSegments(dir string, firsts []uint64, res *scanResult) error {
	for _, first := range firsts {
		if err := os.Remove(filepath.Join(dir, segName(first))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		res.dropped = append(res.dropped, first)
	}
	return nil
}
