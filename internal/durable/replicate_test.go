package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"turboflux/internal/stream"
)

// TestTapObservesAppends checks that the tap sees every append with the
// exact frame bytes journaled, for both single-record and batched writes.
func TestTapObservesAppends(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test teardown

	type obs struct {
		first, last uint64
		frames      []byte
	}
	var got []obs
	s.SetTap(func(first, last uint64, frames []byte) {
		got = append(got, obs{first, last, bytes.Clone(frames)})
	})

	ups := testUpdates(10)
	if _, err := s.Append(ups[0]); err != nil {
		t.Fatal(err)
	}
	ups[0].Apply(s.Graph())
	if _, _, err := s.AppendBatch(ups[1:]); err != nil {
		t.Fatal(err)
	}
	for _, u := range ups[1:] {
		u.Apply(s.Graph())
	}

	if len(got) != 2 {
		t.Fatalf("tap fired %d times, want 2", len(got))
	}
	if got[0].first != 1 || got[0].last != 1 {
		t.Fatalf("single append observed as [%d,%d], want [1,1]", got[0].first, got[0].last)
	}
	if got[1].first != 2 || got[1].last != 10 {
		t.Fatalf("batch append observed as [%d,%d], want [2,10]", got[1].first, got[1].last)
	}

	// The observed frames must decode back to the original updates.
	var decoded []stream.Update
	for _, o := range got {
		b := o.frames
		for len(b) > 0 {
			u, n, err := DecodeFrame(b)
			if err != nil {
				t.Fatalf("decoding tapped frame: %v", err)
			}
			decoded = append(decoded, u)
			b = b[n:]
		}
	}
	if !reflect.DeepEqual(decoded, ups) {
		t.Fatalf("tapped frames decode to %v, want %v", decoded, ups)
	}

	// And they must be the same bytes AppendFrame produces.
	var want []byte
	for _, u := range ups[1:] {
		if want, err = AppendFrame(want, u); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got[1].frames, want) {
		t.Fatal("tapped batch frames differ from AppendFrame encoding")
	}
}

// TestCatchupPlanFreshFollower checks the snapshot + tail manifest for a
// follower starting from nothing.
func TestCatchupPlanFreshFollower(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNone, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test teardown

	ups := testUpdates(40)
	appendAll(t, s, ups[:20])
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups[20:])

	p, err := s.CatchupPlan(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if p.CutLSN != 40 {
		t.Fatalf("CutLSN = %d, want 40", p.CutLSN)
	}
	if p.SnapLSN != 20 || p.SnapPath == "" {
		t.Fatalf("plan snapshot = %q@%d, want snapshot covering 20", p.SnapPath, p.SnapLSN)
	}

	// Replaying snapshot + planned segment tail must reproduce the state.
	data, err := os.ReadFile(p.SnapPath)
	if err != nil {
		t.Fatal(err)
	}
	lsn, g, _, _, err := decodeSnapshot(data, "plan")
	if err != nil {
		t.Fatal(err)
	}
	applied := lsn
	for _, seg := range p.Segments {
		err := ReadSegmentFrames(seg.Path, seg.First, applied, func(l uint64, frame []byte) error {
			u, _, err := DecodeFrame(frame)
			if err != nil {
				return err
			}
			if l != applied+1 {
				t.Fatalf("segment frames out of order: got LSN %d after %d", l, applied)
			}
			applied = l
			u.Apply(g)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if applied != p.CutLSN {
		t.Fatalf("tail replay reached LSN %d, want cut %d", applied, p.CutLSN)
	}
	sameGraph(t, g, graphFromPrefix(ups, 40))
}

// TestCatchupPlanTail checks the log-tail-only manifest for a follower
// that is only a little behind.
func TestCatchupPlanTail(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncNone, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test teardown

	ups := testUpdates(30)
	appendAll(t, s, ups)

	p, err := s.CatchupPlan(12)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if p.SnapPath != "" || p.SnapLSN != 0 {
		t.Fatalf("tail plan unexpectedly references snapshot %q@%d", p.SnapPath, p.SnapLSN)
	}
	applied := uint64(12)
	for _, seg := range p.Segments {
		err := ReadSegmentFrames(seg.Path, seg.First, applied, func(l uint64, frame []byte) error {
			if l != applied+1 {
				t.Fatalf("got LSN %d after %d", l, applied)
			}
			applied = l
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if applied != 30 {
		t.Fatalf("tail covers through %d, want 30", applied)
	}

	// A follower already at the cut gets an empty plan.
	p2, err := s.CatchupPlan(30)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Release()
	if len(p2.Segments) != 0 || p2.SnapPath != "" {
		t.Fatalf("caught-up plan not empty: %+v", p2)
	}

	// A follower claiming to be ahead of the leader is an error.
	if _, err := s.CatchupPlan(31); err == nil {
		t.Fatal("CatchupPlan(ahead) succeeded, want error")
	}
}

// TestCompactHonorsPins is the compact-during-catch-up regression test:
// segments and snapshots referenced by an active plan survive Compact,
// and are reclaimed by the next Compact after release.
func TestCompactHonorsPins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNone, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test teardown

	ups := testUpdates(60)
	appendAll(t, s, ups[:30])

	// Cut a plan for a follower at LSN 5, then compact twice (two new
	// snapshots) while the plan is live.
	p, err := s.CatchupPlan(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, ups[30:])
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	// Every planned segment file must still exist and still stream the
	// same record range.
	applied := uint64(5)
	for _, seg := range p.Segments {
		if _, err := os.Stat(seg.Path); err != nil {
			t.Fatalf("planned segment removed by Compact: %v", err)
		}
		err := ReadSegmentFrames(seg.Path, seg.First, applied, func(l uint64, frame []byte) error {
			applied = l
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if applied != p.CutLSN {
		t.Fatalf("pinned tail covers through %d, want %d", applied, p.CutLSN)
	}

	// Release and compact again: the old segments are now reclaimable.
	p.Release()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	firsts, err := segmentList(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, first := range firsts {
		if first <= p.CutLSN && first != s.w.firstLSN {
			// Old sealed segments fully covered by the newest snapshot
			// should be gone once nothing pins them.
			lastOfSeg := uint64(0)
			for _, f2 := range firsts {
				if f2 > first && (lastOfSeg == 0 || f2 < lastOfSeg) {
					lastOfSeg = f2
				}
			}
			if lastOfSeg != 0 && lastOfSeg-1 <= s.snapLSN {
				t.Fatalf("segment %d still present after release+compact", first)
			}
		}
	}
}

// TestCompactPinsSnapshot checks that the snapshot referenced by a fresh
// follower's plan survives subsequent compactions.
func TestCompactPinsSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNone, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test teardown

	ups := testUpdates(80)
	appendAll(t, s, ups[:20])
	if err := s.Compact(); err != nil { // snapshot @20
		t.Fatal(err)
	}
	p, err := s.CatchupPlan(0) // plan references snapshot @20
	if err != nil {
		t.Fatal(err)
	}
	if p.SnapLSN != 20 {
		t.Fatalf("plan snapshot @%d, want 20", p.SnapLSN)
	}
	// Two more compactions would normally retire snapshot @20 (retention
	// is 2 newest).
	appendAll(t, s, ups[20:50])
	if err := s.Compact(); err != nil { // @50
		t.Fatal(err)
	}
	appendAll(t, s, ups[50:])
	if err := s.Compact(); err != nil { // @80
		t.Fatal(err)
	}
	if _, err := os.Stat(p.SnapPath); err != nil {
		t.Fatalf("pinned snapshot removed by Compact: %v", err)
	}
	p.Release()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p.SnapPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("released snapshot still present after Compact: err=%v", err)
	}
}

// TestCatchupPlanBehindCompaction checks the unrecoverable case: the
// follower's position predates the oldest retained segment.
func TestCatchupPlanBehindCompaction(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncNone, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //tf:unchecked-ok test teardown

	ups := testUpdates(60)
	appendAll(t, s, ups[:40])
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // second pass drops pre-snapshot segments
		t.Fatal(err)
	}
	appendAll(t, s, ups[40:])

	if _, err := s.CatchupPlan(3); !errors.Is(err, ErrBehindCompaction) {
		t.Fatalf("CatchupPlan(compacted position) = %v, want ErrBehindCompaction", err)
	}
	// A fresh follower is still fine: it takes the snapshot route.
	p, err := s.CatchupPlan(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if p.SnapLSN == 0 {
		t.Fatal("fresh-follower plan has no snapshot after compaction")
	}
}

// TestSeedFromSnapshot checks that a fresh store seeded from another
// store's snapshot bytes holds identical state, persists it, and resumes
// the log at the right LSN.
func TestSeedFromSnapshot(t *testing.T) {
	leaderDir := t.TempDir()
	leader, err := Open(leaderDir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close() //tf:unchecked-ok test teardown
	ups := testUpdates(25)
	appendAll(t, leader, ups)
	if err := leader.Compact(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(leaderDir, snapName(leader.SnapLSN())))
	if err != nil {
		t.Fatal(err)
	}

	followerDir := t.TempDir()
	f, err := Open(followerDir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SeedFromSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if f.LSN() != 25 || f.SnapLSN() != 25 {
		t.Fatalf("seeded store at lsn=%d snap=%d, want 25/25", f.LSN(), f.SnapLSN())
	}
	sameGraph(t, f.Graph(), graphFromPrefix(ups, 25))

	// Seeding twice (or after any append) must fail.
	if err := f.SeedFromSnapshot(snap); err == nil {
		t.Fatal("second SeedFromSnapshot succeeded, want error")
	}

	// Appends continue at 26 and survive reopen.
	more := testUpdates(30)[25:]
	appendAll(t, f, more)
	if f.LSN() != 30 {
		t.Fatalf("post-seed LSN = %d, want 30", f.LSN())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(followerDir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close() //tf:unchecked-ok test teardown
	if f2.LSN() != 30 || f2.Recovery().SnapshotLSN != 25 {
		t.Fatalf("reopened seeded store at lsn=%d snap=%d, want 30/25", f2.LSN(), f2.Recovery().SnapshotLSN)
	}
	sameGraph(t, f2.Graph(), graphFromPrefix(testUpdates(30), 30))
}

// TestReadSegmentFramesCorrupt checks that a damaged sealed segment is
// reported, not silently shipped.
func TestReadSegmentFramesCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, testUpdates(10))
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ReadSegmentFrames(path, 1, 0, func(uint64, []byte) error { return nil })
	if err == nil {
		t.Fatal("ReadSegmentFrames on corrupt segment succeeded, want error")
	}
}
