// Package durable is the storage subsystem: an append-only write-ahead
// log of stream updates plus atomic binary snapshots of the data graph and
// label dictionaries, tied together by a Store whose Open recovers state
// by loading the newest valid snapshot and replaying the WAL tail.
//
// On-disk layout inside a store directory:
//
//	wal-<firstLSN, 16 hex digits>.seg    log segments, oldest first
//	snap-<coveredLSN, 16 hex>.snap       snapshots (newest wins)
//	snap-<coveredLSN, 16 hex>.tmp        interrupted snapshot writes (ignored)
//
// Records are numbered by LSN starting at 1; a snapshot at LSN n contains
// the effect of records 1..n, so recovery replays records n+1.. from the
// segments. Every record and snapshot is protected by CRC32-C; a torn or
// corrupted log tail is detected on open and truncated, so recovery always
// yields a clean prefix of the appended history.
package durable

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"turboflux/internal/stream"
)

// Record frame: payload length (uint32 LE), CRC32-C of the payload
// (uint32 LE), then the payload — one binary-encoded stream.Update.
const (
	frameHeaderSize = 8
	// maxRecordSize bounds a frame payload. The largest legal update is a
	// vertex declaration with 65536 labels (~320 KiB); anything bigger is
	// corruption, not data.
	maxRecordSize = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	errTornRecord  = errors.New("durable: torn record")
	errCorruptCRC  = errors.New("durable: record checksum mismatch")
	errRecordSize  = errors.New("durable: record size implausible")
	errRecordSlack = errors.New("durable: record payload has trailing bytes")
)

// appendRecord appends the framed encoding of u to dst and returns the
// extended slice.
//
//tf:hotpath
func appendRecord(dst []byte, u stream.Update) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst, err := stream.AppendBinary(dst, u)
	if err != nil {
		return dst[:start], err
	}
	payload := dst[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst, nil
}

// decodeRecord decodes one framed record from the front of b, returning
// the update and bytes consumed. A short buffer returns errTornRecord; a
// checksum mismatch errCorruptCRC. Both mean "clean prefix ends here" to
// the recovery scan.
func decodeRecord(b []byte) (stream.Update, int, error) {
	if len(b) < frameHeaderSize {
		return stream.Update{}, 0, errTornRecord
	}
	size := binary.LittleEndian.Uint32(b)
	if size > maxRecordSize {
		return stream.Update{}, 0, errRecordSize
	}
	end := frameHeaderSize + int(size)
	if len(b) < end {
		return stream.Update{}, 0, errTornRecord
	}
	payload := b[frameHeaderSize:end]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return stream.Update{}, 0, errCorruptCRC
	}
	u, n, err := stream.DecodeBinary(payload)
	if err != nil {
		return stream.Update{}, 0, err
	}
	if n != len(payload) {
		return stream.Update{}, 0, errRecordSlack
	}
	return u, end, nil
}
