package shard

// In-process shard cluster tests: placement, rebalancing, label-dictionary
// sync, sequence-gap detection, heartbeat death, and transcript
// equivalence against a single server. Shards are real server.Server
// instances on loopback; the multi-process variant lives in
// e2e_test.go.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"turboflux"
	"turboflux/internal/server"
)

// startShardServer runs one plain server on loopback and returns its
// address.
func startShardServer(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shard server shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("shard server serve: %v", err)
		}
	})
	return s.Addr().String()
}

// startCluster runs n shard servers plus a coordinator and returns the
// coordinator's client address and the shard addresses. The coordinator
// is stopped by t.Cleanup with an idempotent stop (returned for tests
// that shut it down mid-test).
func startCluster(t *testing.T, n int, opt Options) (addr string, shards []string, stop func()) {
	t.Helper()
	for i := 0; i < n; i++ {
		shards = append(shards, startShardServer(t))
	}
	opt.Shards = shards
	co, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- co.Serve() }()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := co.Shutdown(ctx); err != nil {
				t.Errorf("coordinator shutdown: %v", err)
			}
			if err := <-serveDone; err != nil {
				t.Errorf("coordinator serve: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return co.Addr().String(), shards, stop
}

func dialTest(t *testing.T, addr string) *server.Client {
	t.Helper()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //tf:unchecked-ok test cleanup
	return c
}

// entry is one comparable transcript event.
type entry struct {
	seq     uint64
	sign    string
	mapping string
}

func toEntry(ev server.Event) entry {
	sign := "-"
	if ev.Positive {
		sign = "+"
	}
	return entry{seq: ev.Seq, sign: sign, mapping: fmt.Sprint(ev.Mapping)}
}

// collectEvents drains want events from the client, keyed by query.
func collectEvents(t *testing.T, c *server.Client, want int) map[string][]entry {
	t.Helper()
	got := make(map[string][]entry)
	for i := 0; i < want; i++ {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("event stream closed after %d of %d events", i, want)
			}
			if ev.Evicted {
				t.Fatalf("unexpected eviction of %q", ev.Query)
			}
			got[ev.Query] = append(got[ev.Query], toEntry(ev))
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d of %d events", i, want)
		}
	}
	select {
	case ev := <-c.Events():
		t.Fatalf("unexpected extra event %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
	return got
}

// clusterWorkload registers nq single-edge queries (one per edge label),
// declares 4 vertices and drives alternating inserts/deletes across all
// edge labels, so every query sees a deterministic transcript.
func clusterWorkload(t *testing.T, c *server.Client, nq, updates int) (events int) {
	t.Helper()
	for i := 0; i < nq; i++ {
		if err := c.Register(fmt.Sprintf("q%d", i), fmt.Sprintf("(a:P)-[:e%d]->(b:P)", i)); err != nil {
			t.Fatal(err)
		}
	}
	vlabel, err := c.Label("vertex", "P")
	if err != nil {
		t.Fatal(err)
	}
	for v := turboflux.VertexID(1); v <= 4; v++ {
		if _, err := c.DeclareVertex(v, vlabel); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nq; i++ {
		if _, err := c.Subscribe(fmt.Sprintf("q%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for k := 0; k < updates; k++ {
		el := turboflux.Label(k % nq)
		from, to := turboflux.VertexID(1+(k%2)*2), turboflux.VertexID(2+(k%2)*2)
		var ack server.Ack
		if (k/nq)%2 == 0 {
			ack, err = c.Insert(from, el, to)
		} else {
			ack, err = c.Delete(from, el, to)
		}
		if err != nil {
			t.Fatal(err)
		}
		total += int(ack.Total)
	}
	return total
}

// TestClusterTranscriptEquivalence is the core sharding contract: a
// coordinator over 4 shards produces per-query transcripts identical to
// one server receiving the same workload.
func TestClusterTranscriptEquivalence(t *testing.T) {
	const nq, updates = 8, 64

	// Reference: a single plain server.
	ref := dialTest(t, startShardServer(t))
	refEvents := clusterWorkload(t, ref, nq, updates)
	want := collectEvents(t, ref, refEvents)

	// Cluster: coordinator over 4 shards.
	addr, _, _ := startCluster(t, 4, Options{})
	c := dialTest(t, addr)
	gotEvents := clusterWorkload(t, c, nq, updates)
	if gotEvents != refEvents {
		t.Fatalf("cluster acked %d total matches, single server %d", gotEvents, refEvents)
	}
	got := collectEvents(t, c, gotEvents)

	for name, wantEntries := range want {
		gotEntries := got[name]
		if len(gotEntries) != len(wantEntries) {
			t.Fatalf("query %s: %d events, want %d", name, len(gotEntries), len(wantEntries))
		}
		for k := range wantEntries {
			if gotEntries[k] != wantEntries[k] {
				t.Fatalf("query %s event %d: got %+v, want %+v", name, k, gotEntries[k], wantEntries[k])
			}
		}
	}
}

// TestPlacementAndRebalance: queries spread least-loaded-first, and an
// unregistered query's slot is reused by the next registration.
func TestPlacementAndRebalance(t *testing.T) {
	addr, _, _ := startCluster(t, 2, Options{})
	c := dialTest(t, addr)
	for i := 0; i < 4; i++ {
		if err := c.Register(fmt.Sprintf("q%d", i), fmt.Sprintf("(a:P)-[:e%d]->(b:P)", i)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := c.StatsInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "coordinator" {
		t.Fatalf("role = %q, want coordinator", info.Role)
	}
	placement := make(map[string]int)
	for _, q := range info.Queries {
		placement[q.Name] = q.Shard
	}
	// Least-loaded with lowest-id tiebreak alternates 0,1,0,1.
	for i, want := range []int{0, 1, 0, 1} {
		if got := placement[fmt.Sprintf("q%d", i)]; got != want {
			t.Fatalf("q%d placed on shard %d, want %d (placement %v)", i, got, want, placement)
		}
	}
	// Unregistering a shard-0 query rebalances: the next query lands on 0.
	if err := c.Unregister("q0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("q4", "(a:P)-[:e4]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	info, err = c.StatsInfo()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range info.Queries {
		if q.Name == "q4" && q.Shard != 0 {
			t.Fatalf("q4 placed on shard %d, want 0 after rebalance", q.Shard)
		}
		if q.Name == "q0" {
			t.Fatal("q0 still registered after UNREGISTER")
		}
	}
	// The shard-side registration really moved: shard stats show 2/2.
	for _, s := range info.Shards {
		if s.Queries != 2 {
			t.Fatalf("shard %d owns %d queries, want 2: %+v", s.ID, s.Queries, info.Shards)
		}
	}
}

// TestLabelDictionarySync: labels intern in coordinator id order on
// every shard even though each shard only ever registers a subset of
// the queries. Matching across shards then agrees on wire ids.
func TestLabelDictionarySync(t *testing.T) {
	addr, shards, _ := startCluster(t, 2, Options{})
	c := dialTest(t, addr)
	// q0 → shard 0 interns P,e0; q1 → shard 1 must also know P (id 0)
	// and intern e1 as id 1.
	if err := c.Register("q0", "(a:P)-[:e0]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("q1", "(a:P)-[:e1]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	for i, addr := range shards {
		sc := dialTest(t, addr)
		for _, probe := range []struct {
			kind, name string
			want       turboflux.Label
		}{{"vertex", "P", 0}, {"edge", "e0", 0}, {"edge", "e1", 1}} {
			id, err := sc.Label(probe.kind, probe.name)
			if err != nil {
				t.Fatal(err)
			}
			if id != probe.want {
				t.Fatalf("shard %d interned %s %q as %d, want %d", i, probe.kind, probe.name, id, probe.want)
			}
		}
	}
	// A coordinator LABEL of a new name syncs too.
	id, err := c.Label("edge", "e2")
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("coordinator interned e2 as %d, want 2", id)
	}
	for i, addr := range shards {
		sc := dialTest(t, addr)
		got, err := sc.Label("edge", "e2")
		if err != nil {
			t.Fatal(err)
		}
		if got != 2 {
			t.Fatalf("shard %d interned e2 as %d, want 2", i, got)
		}
	}
}

// TestSequenceGapMarksShardDown: a write that bypasses the coordinator
// desynchronizes that shard's sequence; the next fanned update detects
// the gap and the shard is marked down fail-stop, while the cluster
// keeps serving from the others.
func TestSequenceGapMarksShardDown(t *testing.T) {
	addr, shards, _ := startCluster(t, 2, Options{})
	c := dialTest(t, addr)
	if err := c.Register("q0", "(a:P)-[:e0]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("q1", "(a:P)-[:e1]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeclareVertex(1, 0); err != nil {
		t.Fatal(err)
	}

	// Divergent write behind the coordinator's back.
	rogue := dialTest(t, shards[0])
	if _, err := rogue.DeclareVertex(99, 0); err != nil {
		t.Fatal(err)
	}

	// The next coordinated update sees the gap on shard 0 but still acks
	// (shard 1 applied it).
	if _, err := c.DeclareVertex(2, 0); err != nil {
		t.Fatal(err)
	}
	lines, err := c.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	info, err := server.ParseStats(lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Shards) != 2 || info.Shards[0].Alive || !info.Shards[1].Alive {
		t.Fatalf("shard health after gap = %+v, want shard 0 down, shard 1 alive", info.Shards)
	}

	// Queries on the dead shard error on subscribe; the others still work.
	if _, err := c.Subscribe("q0"); err == nil {
		t.Fatal("subscribe to a dead shard's query succeeded")
	}
	if _, err := c.Subscribe("q1"); err != nil {
		t.Fatalf("subscribe to a live shard's query failed: %v", err)
	}
	if _, err := c.Insert(1, 1, 2); err != nil {
		t.Fatalf("update after shard death failed: %v", err)
	}
}

// TestHeartbeatMarksDeadShardDown: killing a shard server trips the
// heartbeat prober and degrades the cluster instead of wedging it.
func TestHeartbeatMarksDeadShardDown(t *testing.T) {
	// Shard 1 is started manually so the test can kill it mid-flight.
	shard0 := startShardServer(t)
	s1, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	s1Done := make(chan error, 1)
	go func() { s1Done <- s1.Serve() }()
	stopS1 := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s1.Shutdown(ctx) //tf:unchecked-ok killing the shard is the point
		<-s1Done
	}

	co, err := New(Options{
		Shards:            []string{shard0, s1.Addr().String()},
		HeartbeatInterval: 20 * time.Millisecond,
		RequestTimeout:    time.Second,
	})
	if err != nil {
		stopS1()
		t.Fatal(err)
	}
	if err := co.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	coDone := make(chan error, 1)
	go func() { coDone <- co.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := co.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
		<-coDone
	})
	c := dialTest(t, co.Addr().String())
	if err := c.Register("q0", "(a:P)-[:e0]->(b:P)"); err != nil {
		t.Fatal(err)
	}

	stopS1()

	deadline := time.Now().Add(10 * time.Second)
	for {
		lines, err := c.ShardStats()
		if err != nil {
			t.Fatal(err)
		}
		info, err := server.ParseStats(lines)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Shards[1].Alive {
			if info.Shards[1].Misses == 0 {
				t.Fatalf("dead shard reports 0 misses: %+v", info.Shards[1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never marked down: %+v", info.Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The survivor keeps accepting work.
	if _, err := c.DeclareVertex(1, 0); err != nil {
		t.Fatalf("update after shard death failed: %v", err)
	}
}

// TestCoordinatorStats covers the coordinator's typed STATS view over
// the Go client: role, totals and placement all parse.
func TestCoordinatorStats(t *testing.T) {
	addr, _, _ := startCluster(t, 2, Options{})
	c := dialTest(t, addr)
	if err := c.Register("q0", "(a:P)-[:e0]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("q0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeclareVertex(1, 0); err != nil {
		t.Fatal(err)
	}
	info, err := c.StatsInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "coordinator" {
		t.Fatalf("role = %q, want coordinator", info.Role)
	}
	if info.ShardsTotal != 2 || info.ShardsAlive != 2 {
		t.Fatalf("shards = %d/%d, want 2/2", info.ShardsAlive, info.ShardsTotal)
	}
	if info.Seq != 1 {
		t.Fatalf("seq = %d, want 1", info.Seq)
	}
	if len(info.Queries) != 1 || info.Queries[0].Subs != 1 || info.Queries[0].Shard != 0 {
		t.Fatalf("queries = %+v", info.Queries)
	}
	for _, s := range info.Shards {
		if s.Seq != 1 || s.Lag != 0 {
			t.Fatalf("shard %d seq/lag = %d/%d, want 1/0", s.ID, s.Seq, s.Lag)
		}
	}
}

// TestBatchThroughCoordinator: BATCH and BATCHB frames fan out as one
// task and ack with the coordinator's first sequence number.
func TestBatchThroughCoordinator(t *testing.T) {
	addr, _, _ := startCluster(t, 2, Options{})
	c := dialTest(t, addr)
	if err := c.Register("q0", "(a:P)-[:e0]->(b:P)"); err != nil {
		t.Fatal(err)
	}
	ups := []turboflux.Update{
		turboflux.DeclareVertex(1, 0),
		turboflux.DeclareVertex(2, 0),
		turboflux.Insert(1, 0, 2),
	}
	ack, err := c.Batch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if ack.FirstSeq != 1 || ack.Applied != 3 || ack.Total != 1 {
		t.Fatalf("batch ack = %+v, want {1 3 1}", ack)
	}
	back, err := c.BatchBinary([]turboflux.Update{turboflux.Delete(1, 0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if back.FirstSeq != 4 || back.Applied != 1 || back.Total != 1 {
		t.Fatalf("binary batch ack = %+v, want {4 1 1}", back)
	}
}
