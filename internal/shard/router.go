package shard

import (
	"errors"
	"fmt"

	"turboflux"
	"turboflux/internal/qlang"
)

// errCoordClosed is returned to connection goroutines whose requests
// race the router's shutdown.
var errCoordClosed = errors.New("shard: coordinator shut down")

type rkind uint8

const (
	rApply rkind = iota
	rBatch
	rRegister
	rUnregister
	rUnassign // roll an optimistic placement back after a failed register
	rQueries
	rLabel
	rSubscribe
	rSubRelease
	rStats
	rShardStats
)

// rreq is one message to the router actor. reply, when non-nil, receives
// exactly one response and must have capacity 1 so the router never
// blocks sending it.
type rreq struct {
	kind  rkind
	u     turboflux.Update
	ups   []turboflux.Update
	name  string // query name / "vertex" / "edge" (rLabel)
	arg   string // pattern (rRegister) / label name (rLabel)
	reply chan rresp
}

type rresp struct {
	err   error
	seq   uint64  // coordinator sequence of the (first) update
	pend  pending // all-shard fan-out barrier (updates, label sync)
	reg   pending // owner-shard barrier (register/unregister)
	names []string
	lines []string
	label turboflux.Label
	addr  string // owner shard address (rSubscribe)
}

// assignTable is the query-placement state: which shard owns each query,
// per-shard load, and registration order. It belongs to the router
// goroutine alone — connection goroutines reach it only through the
// request channel.
//
//tf:actor-owned
type assignTable struct {
	byName map[string]*assignment
	order  []string
	counts []int // registered queries per shard id
}

type assignment struct {
	shard int
	subs  int // live coordinator-side subscriptions (STATS)
}

func newAssignTable(shards int) *assignTable {
	return &assignTable{
		byName: make(map[string]*assignment),
		counts: make([]int, shards),
	}
}

func (t *assignTable) get(name string) (*assignment, bool) {
	a, ok := t.byName[name]
	return a, ok
}

func (t *assignTable) add(name string, shard int) {
	t.byName[name] = &assignment{shard: shard}
	t.order = append(t.order, name)
	t.counts[shard]++
}

// remove drops a query, rebalancing the owner's load count so the next
// registration prefers the now-lighter shard.
func (t *assignTable) remove(name string) {
	a, ok := t.byName[name]
	if !ok {
		return
	}
	delete(t.byName, name)
	t.counts[a.shard]--
	for i, n := range t.order {
		if n == name {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// names returns the registered query names in registration order.
func (t *assignTable) names() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// router is the coordinator's actor: it owns the placement table, the
// coordinator sequence counter and the fanner enqueue order (the
// cluster's total update order). It never performs network I/O — fanner
// goroutines do, and connection goroutines collect their results — so a
// slow or hung shard cannot stall routing.
type router struct {
	co     *Coordinator
	shards []*shardHandle
	vdict  *turboflux.Dict
	edict  *turboflux.Dict

	reqCh chan rreq
	stop  chan struct{}
	done  chan struct{}

	table *assignTable
	seq   uint64 // updates fanned so far; acked to clients
}

func newRouter(co *Coordinator, vdict, edict *turboflux.Dict) *router {
	return &router{
		co:     co,
		shards: co.shards,
		vdict:  vdict,
		edict:  edict,
		reqCh:  make(chan rreq, 128),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		table:  newAssignTable(len(co.shards)),
	}
}

// run is the router loop: the confinement root every placement-table
// access must be reachable from.
//
//tf:actor-loop
func (r *router) run() {
	for {
		select {
		case req := <-r.reqCh:
			r.handle(req)
		case <-r.stop:
			r.shutdown()
			return
		}
	}
}

// shutdown drains the requests already queued (connections are gone by
// now), closes the task FIFOs so the fanners finish their backlogs and
// exit, stops the heartbeats, and releases the shard clients.
func (r *router) shutdown() {
	for {
		select {
		case req := <-r.reqCh:
			r.handle(req)
			continue
		default:
		}
		break
	}
	for _, h := range r.shards {
		close(h.tasks)
		close(h.stop)
	}
	for _, h := range r.shards {
		h.wg.Wait()
		h.closeClients()
	}
	close(r.done)
}

func (r *router) handle(req rreq) {
	var resp rresp
	switch req.kind {
	case rApply:
		r.seq++
		resp.seq = r.seq
		resp.pend = r.fanAll(&task{kind: taskApply, seq: r.seq, u: req.u})
	case rBatch:
		first := r.seq + 1
		r.seq += uint64(len(req.ups))
		resp.seq = first
		resp.pend = r.fanAll(&task{kind: taskBatch, seq: first, ups: req.ups})
	case rRegister:
		resp = r.register(req)
	case rUnassign:
		r.table.remove(req.name)
	case rUnregister:
		a, ok := r.table.get(req.name)
		if !ok {
			resp.err = fmt.Errorf("shard: query %q is not registered", req.name)
			break
		}
		r.table.remove(req.name)
		resp.reg = r.fanTo(a.shard, &task{kind: taskUnregister, name: req.name})
	case rQueries:
		resp.names = r.table.names()
	case rLabel:
		resp = r.label(req)
	case rSubscribe:
		a, ok := r.table.get(req.name)
		if !ok {
			resp.err = fmt.Errorf("shard: query %q is not registered", req.name)
			break
		}
		h := r.shards[a.shard]
		if !h.alive.Load() {
			resp.err = fmt.Errorf("shard: query %q lives on shard %d (%s), which is down: %s",
				req.name, h.id, h.addr, h.downReason())
			break
		}
		a.subs++
		resp.addr = h.addr
	case rSubRelease:
		if a, ok := r.table.get(req.name); ok && a.subs > 0 {
			a.subs--
		}
	case rStats:
		resp.lines = r.statsLines()
	case rShardStats:
		resp.lines = r.shardLines(nil)
	}
	if req.reply != nil {
		req.reply <- resp
	}
}

// register validates and interns the pattern locally, places the query
// on the least-loaded alive shard, and enqueues the label sync (all
// shards) and the registration (owner) in FIFO order. The placement is
// recorded optimistically; the connection goroutine rolls it back with
// rUnassign if the owner rejects.
func (r *router) register(req rreq) rresp {
	var resp rresp
	if _, dup := r.table.get(req.name); dup {
		resp.err = fmt.Errorf("shard: query %q is already registered", req.name)
		return resp
	}
	labels, err := r.internPattern(req.arg)
	if err != nil {
		resp.err = err
		return resp
	}
	owner, ok := r.leastLoaded()
	if !ok {
		resp.err = errors.New("shard: no alive shards")
		return resp
	}
	if len(labels) > 0 {
		resp.pend = r.fanAll(&task{kind: taskLabels, labels: labels})
	}
	resp.reg = r.fanTo(owner, &task{kind: taskRegister, name: req.name, pattern: req.arg})
	r.table.add(req.name, owner)
	return resp
}

// label interns one client-requested label locally and, when it is new,
// syncs it to every shard.
func (r *router) label(req rreq) rresp {
	var resp rresp
	d := r.vdict
	if req.name == "edge" {
		d = r.edict
	}
	if id, ok := d.Lookup(req.arg); ok {
		resp.label = id // already cluster-wide; nothing to sync
		return resp
	}
	id := d.Intern(req.arg)
	resp.label = id
	resp.pend = r.fanAll(&task{kind: taskLabels, labels: []labelDef{{kind: req.name, name: req.arg, want: id}}})
	return resp
}

// internPattern parses the pattern through the coordinator's
// dictionaries and returns the newly interned labels, in id order, for
// syncing to the shards.
func (r *router) internPattern(pattern string) ([]labelDef, error) {
	v0, e0 := r.vdict.Len(), r.edict.Len()
	if _, _, err := qlang.Parse(pattern, r.vdict, r.edict); err != nil {
		return nil, err
	}
	var defs []labelDef
	for i := v0; i < r.vdict.Len(); i++ {
		l := turboflux.Label(i)
		defs = append(defs, labelDef{kind: "vertex", name: r.vdict.Name(l), want: l})
	}
	for i := e0; i < r.edict.Len(); i++ {
		l := turboflux.Label(i)
		defs = append(defs, labelDef{kind: "edge", name: r.edict.Name(l), want: l})
	}
	return defs, nil
}

// leastLoaded picks the alive shard owning the fewest queries (lowest
// id breaks ties).
func (r *router) leastLoaded() (int, bool) {
	best, found := -1, false
	for _, h := range r.shards {
		if !h.alive.Load() {
			continue
		}
		if !found || r.table.counts[h.id] < r.table.counts[best] {
			best, found = h.id, true
		}
	}
	return best, found
}

// fanAll enqueues one task to every alive shard's FIFO and returns the
// barrier handle. Dead shards are skipped; a shard dying after the
// enqueue still replies (with an error), so collect always terminates.
func (r *router) fanAll(t *task) pending {
	t.res = make(chan taskResult, len(r.shards))
	n := 0
	for _, h := range r.shards {
		if !h.alive.Load() {
			continue
		}
		h.tasks <- t
		n++
	}
	return pending{n: n, seq: t.seq, res: t.res}
}

// fanTo enqueues one task to a single shard's FIFO.
func (r *router) fanTo(shard int, t *task) pending {
	t.res = make(chan taskResult, 1)
	r.shards[shard].tasks <- t
	return pending{n: 1, seq: t.seq, res: t.res}
}

// statsLines renders the coordinator STATS payload: the cluster line,
// the aggregate mqo line (summed over the shards' last-probed sharing
// counters), one line per shard, then one line per query in
// registration order.
func (r *router) statsLines() []string {
	alive := 0
	for _, h := range r.shards {
		if h.alive.Load() {
			alive++
		}
	}
	lines := make([]string, 0, 1+len(r.shards)+len(r.table.order))
	lines = append(lines, fmt.Sprintf(
		"cluster role=coordinator shards=%d alive=%d seq=%d updates=%d events=%d conns=%d",
		len(r.shards), alive, r.seq, r.seq, r.co.events.Load(), r.co.connCount.Load()))
	var mq struct{ subpats, shared, refs, maintain, saved, replays uint64 }
	for _, h := range r.shards {
		mq.subpats += uint64(h.mqoSubpats.Load())
		mq.shared += uint64(h.mqoShared.Load())
		mq.refs += uint64(h.mqoRefs.Load())
		mq.maintain += h.mqoMaintain.Load()
		mq.saved += h.mqoSaved.Load()
		mq.replays += h.mqoReplays.Load()
	}
	lines = append(lines, fmt.Sprintf(
		"mqo subpats=%d shared=%d refs=%d maintain=%d saved=%d replays=%d",
		mq.subpats, mq.shared, mq.refs, mq.maintain, mq.saved, mq.replays))
	lines = r.shardLines(lines)
	for _, name := range r.table.order {
		a := r.table.byName[name]
		lines = append(lines, fmt.Sprintf("query %s shard=%d subs=%d", name, a.shard, a.subs))
	}
	return lines
}

// shardLines renders the per-shard liveness and lag lines (the
// SHARDSTATS payload, also embedded in STATS).
func (r *router) shardLines(lines []string) []string {
	for _, h := range r.shards {
		applied := h.applied.Load()
		lines = append(lines, fmt.Sprintf(
			"shard %d addr=%s alive=%t queries=%d seq=%d lag=%d ping_us=%d misses=%d subpats=%d refs=%d saved=%d",
			h.id, h.addr, h.alive.Load(), r.table.counts[h.id],
			h.base+applied, r.seq-applied, h.pingUs.Load(), h.misses.Load(),
			h.mqoSubpats.Load(), h.mqoRefs.Load(), h.mqoSaved.Load()))
	}
	return lines
}

// send enqueues req without waiting for a response, failing fast once
// the router has stopped.
func (r *router) send(req rreq) error {
	select {
	case r.reqCh <- req:
		return nil
	case <-r.done:
		return errCoordClosed
	}
}

// call performs one request/response round trip with the router.
func (r *router) call(req rreq) (rresp, error) {
	req.reply = make(chan rresp, 1)
	select {
	case r.reqCh <- req:
	case <-r.done:
		return rresp{}, errCoordClosed
	}
	select {
	case resp := <-req.reply:
		return resp, nil
	case <-r.done:
		// The router drains reqCh before closing done, so a reply may
		// still have been sent; prefer it over the shutdown error.
		select {
		case resp := <-req.reply:
			return resp, nil
		default:
			return rresp{}, errCoordClosed
		}
	}
}
