// Package shard implements the TurboFlux sharded cluster tier: a
// coordinator that partitions registered queries across N shard servers
// (plain internal/server instances, each holding a full graph replica)
// and speaks the ordinary line protocol to clients, so a client cannot
// tell a coordinator from a single server.
//
// # Architecture
//
// Query-partitioned sharding with full replicas is exact and
// embarrassingly parallel: every shard applies the complete update
// stream in the coordinator's total order, but each continuous query is
// registered on exactly one shard, so the per-update evaluation work —
// the dominant cost with many registered queries — splits across shards.
//
//	clients ──► coordinator (router actor)
//	               │ REGISTER q → least-loaded shard
//	               │ updates    → every shard, one FIFO per shard
//	               ▼
//	        shard 0 … shard N-1   (turboflux-serve; may lead followers)
//
// The router actor owns the placement table and the coordinator
// sequence counter. Each shard has a fanner goroutine draining a FIFO
// task queue, so all shards observe the same total order; the router
// never waits on the network — connection goroutines collect the
// per-shard acknowledgments. Every ack is checked against the expected
// per-shard sequence number (attach base + fanned updates): a gap means
// the shard diverged (someone wrote to it directly) and the shard is
// marked down, fail-stop. A heartbeat prober pings each shard and marks
// it down after consecutive misses.
//
// Label dictionaries must agree cluster-wide because updates carry
// numeric label ids. The coordinator parses every REGISTER pattern
// locally and fans newly interned names to all shards as LABEL requests
// in id order, asserting the returned ids match; shards must therefore
// start with dictionaries identical to the coordinator's (normally:
// empty).
//
// Subscriptions are delegated: each coordinator-side SUBSCRIBE opens a
// dedicated connection to the owning shard and relays its *EVENT lines
// verbatim, so per-query event order and sequence numbers are exactly
// the shard's — which, by the total-order fan-out, are exactly a single
// server's. Slow-consumer policy is the shard's own, applied per
// subscriber.
package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"turboflux"
)

// Defaults for Options' zero values.
const (
	defaultDialTimeout       = 2 * time.Second
	defaultRequestTimeout    = 5 * time.Second
	defaultHeartbeatInterval = 500 * time.Millisecond
	defaultHeartbeatMisses   = 3
	// fannerQueueDepth bounds each shard's pending task FIFO; a full queue
	// backpressures the router (and through it the writing clients).
	fannerQueueDepth = 1024
)

// Options configures a Coordinator.
type Options struct {
	// Shards lists the shard server addresses. At least one is required;
	// shard ids are positions in this slice.
	Shards []string

	// VertexLabels / EdgeLabels seed the coordinator's label dictionaries.
	// They must match the shards' dictionaries exactly (normally both are
	// empty); divergence is detected on the first LABEL sync and marks the
	// offending shard down.
	VertexLabels, EdgeLabels *turboflux.Dict

	// DialTimeout bounds every connect to a shard (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds every request/response exchange with a shard
	// (default 5s). A timed-out exchange poisons that connection and marks
	// the shard down, so one hung shard cannot block the router forever.
	RequestTimeout time.Duration
	// HeartbeatInterval is the per-shard liveness probe period (default
	// 500ms).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive failed probes mark a shard
	// down (default 3).
	HeartbeatMisses int
}

func (o *Options) setDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = defaultRequestTimeout
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = defaultHeartbeatInterval
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = defaultHeartbeatMisses
	}
}

// Coordinator is the cluster front end: it accepts the ordinary line
// protocol and drives the shard fleet. See the package comment for the
// architecture and New/Listen/Serve/Shutdown for the lifecycle (which
// mirrors server.Server).
type Coordinator struct {
	opt    Options
	router *router
	shards []*shardHandle

	ln net.Listener

	mu      sync.Mutex
	conns   map[*cconn]struct{}
	connSeq uint64

	connWG    sync.WaitGroup
	connCount atomic.Int64
	events    atomic.Uint64 // relayed match events (STATS)

	stopping   chan struct{}
	stopOnce   sync.Once
	routerOnce sync.Once
}

// New connects to every shard and starts the router. All shards must be
// reachable and writable (a follower shard is rejected); their current
// sequence numbers become the per-shard ack bases for gap detection.
func New(opt Options) (*Coordinator, error) {
	if len(opt.Shards) == 0 {
		return nil, errors.New("shard: at least one shard address is required")
	}
	opt.setDefaults()
	vdict := opt.VertexLabels
	if vdict == nil {
		vdict = turboflux.NewDict()
	}
	edict := opt.EdgeLabels
	if edict == nil {
		edict = turboflux.NewDict()
	}
	co := &Coordinator{
		opt:      opt,
		conns:    make(map[*cconn]struct{}),
		stopping: make(chan struct{}),
	}
	for i, addr := range opt.Shards {
		h, err := attach(i, addr, opt)
		if err != nil {
			for _, prev := range co.shards {
				prev.closeClients()
			}
			return nil, fmt.Errorf("shard: attaching shard %d (%s): %w", i, addr, err)
		}
		co.shards = append(co.shards, h)
	}
	co.router = newRouter(co, vdict, edict)
	//tf:goroutine shard-router-actor
	go co.router.run()
	for _, h := range co.shards {
		h.start()
	}
	return co, nil
}

// Listen binds the client-facing TCP address (":0" picks a free port).
func (co *Coordinator) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	co.ln = ln
	return nil
}

// Addr returns the bound listener address (nil before Listen).
func (co *Coordinator) Addr() net.Addr {
	if co.ln == nil {
		return nil
	}
	return co.ln.Addr()
}

// Serve accepts client connections until Shutdown. It returns nil on
// graceful shutdown, or the first fatal accept error.
func (co *Coordinator) Serve() error {
	if co.ln == nil {
		return errors.New("shard: Serve before Listen")
	}
	for {
		nc, err := co.ln.Accept()
		if err != nil {
			select {
			case <-co.stopping:
				return nil
			default:
				return fmt.Errorf("shard: accept: %w", err)
			}
		}
		co.mu.Lock()
		select {
		case <-co.stopping:
			co.mu.Unlock()
			nc.Close() //tf:unchecked-ok rejecting during shutdown
			continue
		default:
		}
		co.connSeq++
		c := newCConn(co, nc, co.connSeq)
		co.conns[c] = struct{}{}
		co.mu.Unlock()
		co.connCount.Add(1)
		co.connWG.Add(1)
		//tf:goroutine coordinator-conn-reader
		go func() {
			defer co.connWG.Done()
			c.serve()
		}()
	}
}

// ListenAndServe binds addr and serves until Shutdown.
func (co *Coordinator) ListenAndServe(addr string) error {
	if err := co.Listen(addr); err != nil {
		return err
	}
	return co.Serve()
}

// snapshotConns copies the live connection set under co.mu so callers
// can touch the sockets without holding the lock.
func (co *Coordinator) snapshotConns() []*cconn {
	co.mu.Lock()
	defer co.mu.Unlock()
	conns := make([]*cconn, 0, len(co.conns))
	//tf:unordered-ok snapshot; callers' per-conn operations are order-independent
	for c := range co.conns {
		conns = append(conns, c)
	}
	return conns
}

func (co *Coordinator) removeConn(c *cconn) {
	co.mu.Lock()
	delete(co.conns, c)
	co.mu.Unlock()
	co.connCount.Add(-1)
}

// Shutdown stops the coordinator gracefully: stop accepting, wake every
// connection reader so in-flight requests finish (their subscription
// relays close with them), then stop the router — which drains the task
// queues into the shards and closes the shard clients. If ctx expires
// first, remaining connections are force-closed and shutdown still
// completes; ctx's error is reported afterwards.
func (co *Coordinator) Shutdown(ctx context.Context) error {
	co.stopOnce.Do(func() {
		close(co.stopping)
	})
	if co.ln != nil {
		co.ln.Close() //tf:unchecked-ok shutting down
	}
	for _, c := range co.snapshotConns() {
		c.nc.SetReadDeadline(time.Now()) //tf:unchecked-ok best-effort wake
	}

	connsDone := make(chan struct{})
	//tf:goroutine shard-shutdown-conn-waiter
	go func() {
		co.connWG.Wait()
		close(connsDone)
	}()
	var ctxErr error
	select {
	case <-connsDone:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		for _, c := range co.snapshotConns() {
			c.nc.Close() //tf:unchecked-ok force close
		}
		<-connsDone
	}

	co.routerOnce.Do(func() {
		close(co.router.stop)
	})
	<-co.router.done
	return ctxErr
}
