package shard

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"turboflux"
	"turboflux/internal/server"
	"turboflux/internal/stream"
)

// cconn is one client connection to the coordinator. It mirrors the
// server's connection discipline: the reader goroutine owns br and the
// subs map; replies and relayed subscription events share the socket
// through wmu, one full line per critical section.
type cconn struct {
	co *Coordinator
	r  *router
	nc net.Conn
	id uint64

	br *bufio.Reader

	wmu  sync.Mutex
	bw   *bufio.Writer
	werr error // sticky first write error

	subs   map[string]*relaySub
	relays sync.WaitGroup
}

// relaySub is one delegated subscription: a dedicated client connection
// to the owning shard whose *EVENT stream is relayed verbatim.
type relaySub struct {
	query      string
	cli        *server.Client
	closedByUs atomic.Bool // set before a deliberate close, so the relay
	// does not report a clean unsubscribe as an eviction
}

func newCConn(co *Coordinator, nc net.Conn, id uint64) *cconn {
	return &cconn{
		co:   co,
		r:    co.router,
		nc:   nc,
		id:   id,
		br:   bufio.NewReaderSize(nc, server.MaxLineBytes),
		bw:   bufio.NewWriterSize(nc, 32*1024),
		subs: make(map[string]*relaySub),
	}
}

// serve runs the request loop until the peer disconnects, QUITs, sends
// an unrecoverable frame, or the coordinator shuts the connection down.
func (c *cconn) serve() {
	defer c.teardown()
	for {
		line, err := c.readLine()
		if err != nil {
			return
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		req, err := server.ParseRequest(line)
		if err != nil {
			if c.writeErr(err) != nil {
				return
			}
			continue
		}
		if !c.dispatch(req) {
			return
		}
	}
}

func (c *cconn) readLine() (string, error) {
	b, err := c.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		c.writeErr(fmt.Errorf("shard: request line exceeds %d bytes", server.MaxLineBytes)) //tf:unchecked-ok dropping the conn either way
		return "", err
	}
	if err != nil {
		return "", err
	}
	return string(b[:len(b)-1]), nil
}

// dispatch executes one parsed request. It returns false when the
// connection should close.
func (c *cconn) dispatch(req server.Request) bool {
	switch req.Kind {
	case server.KindPing:
		return c.writeLine("+OK pong") == nil
	case server.KindQuit:
		c.writeLine("+OK bye") //tf:unchecked-ok closing anyway
		return false
	case server.KindUpdate:
		resp, err := c.r.call(rreq{kind: rApply, u: req.Update})
		if err != nil {
			return false
		}
		return c.writeApplyReply(resp.seq, resp.pend.collect()) == nil
	case server.KindBatch:
		ups, ferr, perr := c.readBatchText(req.Count)
		if ferr != nil {
			return false
		}
		if perr != nil {
			return c.writeErr(perr) == nil
		}
		return c.finishBatch(ups)
	case server.KindBatchBin:
		ups, ferr, perr := c.readBatchBinary(req.Count)
		if ferr != nil {
			return false
		}
		if perr != nil {
			return c.writeErr(perr) == nil
		}
		return c.finishBatch(ups)
	case server.KindRegister:
		return c.register(req.Name, req.Arg)
	case server.KindUnregister:
		resp, err := c.r.call(rreq{kind: rUnregister, name: req.Name})
		if err != nil {
			return false
		}
		if resp.err != nil {
			return c.writeErr(resp.err) == nil
		}
		// The placement is gone either way; an exec error just means the
		// owner died and was marked down.
		resp.reg.collect()
		return c.writeLine("+OK") == nil
	case server.KindQueries:
		resp, err := c.r.call(rreq{kind: rQueries})
		if err != nil {
			return false
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "+OK %d", len(resp.names))
		for _, n := range resp.names {
			sb.WriteByte(' ')
			sb.WriteString(n)
		}
		return c.writeLine(sb.String()) == nil
	case server.KindLabel:
		resp, err := c.r.call(rreq{kind: rLabel, name: req.Name, arg: req.Arg})
		if err != nil {
			return false
		}
		if resp.err != nil {
			return c.writeErr(resp.err) == nil
		}
		resp.pend.collect() // sync failures mark the shard down
		return c.writeLine(fmt.Sprintf("+OK %d", resp.label)) == nil
	case server.KindSubscribe:
		return c.subscribe(req.Name)
	case server.KindUnsubscribe:
		return c.unsubscribe(req.Name)
	case server.KindStats:
		return c.writeData(rStats)
	case server.KindShardStats:
		return c.writeData(rShardStats)
	case server.KindReplicate, server.KindPromote:
		return c.writeErr(errors.New("shard: coordinators do not replicate; connect to the shard servers directly")) == nil
	default:
		return c.writeErr(fmt.Errorf("shard: unhandled request kind %d", req.Kind)) == nil
	}
}

// writeData performs one router exchange whose payload uses the
// "+DATA <n>" framing (STATS, SHARDSTATS).
func (c *cconn) writeData(kind rkind) bool {
	resp, err := c.r.call(rreq{kind: kind})
	if err != nil {
		return false
	}
	if werr := c.writeLine(fmt.Sprintf("+DATA %d", len(resp.lines))); werr != nil {
		return false
	}
	for _, l := range resp.lines {
		if werr := c.writeLine(l); werr != nil {
			return false
		}
	}
	return true
}

// readBatchText reads n stream-text records (same framing discipline as
// the server: framing errors are fatal, parse errors are reported after
// the body is consumed).
func (c *cconn) readBatchText(n int) (ups []turboflux.Update, framing, parse error) {
	ups = make([]turboflux.Update, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return nil, err, nil
		}
		if parse != nil {
			continue // consume remaining body
		}
		u, err := stream.ParseLine(strings.TrimSuffix(line, "\r"))
		if err != nil {
			parse = fmt.Errorf("shard: batch record %d: %w", i+1, err)
			continue
		}
		ups = append(ups, u)
	}
	if parse != nil {
		return nil, nil, parse
	}
	return ups, nil, nil
}

// readBatchBinary reads n bytes of binary-codec records.
func (c *cconn) readBatchBinary(n int) (ups []turboflux.Update, framing, parse error) {
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, err, nil
	}
	for len(body) > 0 {
		u, used, err := stream.DecodeBinary(body)
		if err != nil {
			return nil, nil, fmt.Errorf("shard: batch record %d: %w", len(ups)+1, err)
		}
		ups = append(ups, u)
		body = body[used:]
	}
	if len(ups) == 0 {
		return nil, nil, fmt.Errorf("shard: empty binary batch")
	}
	return ups, nil, nil
}

func (c *cconn) finishBatch(ups []turboflux.Update) bool {
	resp, err := c.r.call(rreq{kind: rBatch, ups: ups})
	if err != nil {
		return false
	}
	results := resp.pend.collect()
	var total int64
	okCount := 0
	var firstErr error
	for _, res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		okCount++
		total += res.batch.Total
	}
	if okCount == 0 {
		if firstErr == nil {
			firstErr = errors.New("shard: no alive shards")
		}
		return c.writeErr(firstErr) == nil
	}
	return c.writeLine(fmt.Sprintf("+OK %d %d %d", resp.seq, len(ups), total)) == nil
}

// writeApplyReply merges the per-shard update acknowledgments into one
// client ack. Queries partition across shards, so the per-query counts
// are disjoint and merge by union; the sequence number is the
// coordinator's. A shard that died mid-update is skipped — the update
// is acknowledged as long as one alive shard applied it.
func (c *cconn) writeApplyReply(seq uint64, results []taskResult) error {
	counts := make(map[string]int64)
	var total int64
	okCount := 0
	var firstErr error
	for _, res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		okCount++
		total += res.ack.Total
		for name, n := range res.ack.Counts {
			counts[name] += n
		}
	}
	if okCount == 0 {
		if firstErr == nil {
			firstErr = errors.New("shard: no alive shards")
		}
		return c.writeErr(firstErr)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "+OK %d %d", seq, total)
	if len(counts) > 0 {
		names := make([]string, 0, len(counts))
		//tf:unordered-ok keys are sorted before emission
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&sb, " %s=%d", n, counts[n])
		}
	}
	return c.writeLine(sb.String())
}

// register runs the two-stage registration: label sync to every shard,
// then the registration on the owner, rolling the placement back if the
// owner rejects it.
func (c *cconn) register(name, pattern string) bool {
	resp, err := c.r.call(rreq{kind: rRegister, name: name, arg: pattern})
	if err != nil {
		return false
	}
	if resp.err != nil {
		return c.writeErr(resp.err) == nil
	}
	resp.pend.collect() // label sync; failures mark shards down
	reg := resp.reg.collect()[0]
	if reg.err != nil {
		c.r.send(rreq{kind: rUnassign, name: name}) //tf:unchecked-ok rollback is moot once the router stopped
		return c.writeErr(reg.err) == nil
	}
	return c.writeLine("+OK") == nil
}

// subscribe opens the delegated subscription: a dedicated client to the
// owning shard, relayed by one goroutine for the life of the
// subscription.
func (c *cconn) subscribe(name string) bool {
	if _, dup := c.subs[name]; dup {
		return c.writeErr(fmt.Errorf("shard: already subscribed to %q", name)) == nil
	}
	resp, err := c.r.call(rreq{kind: rSubscribe, name: name})
	if err != nil {
		return false
	}
	if resp.err != nil {
		return c.writeErr(resp.err) == nil
	}
	cli, err := server.DialWith(resp.addr, server.DialOptions{Timeout: c.co.opt.DialTimeout})
	if err != nil {
		c.r.send(rreq{kind: rSubRelease, name: name}) //tf:unchecked-ok reservation dies with the router
		return c.writeErr(fmt.Errorf("shard: dialing shard for %q: %w", name, err)) == nil
	}
	seq, err := cli.Subscribe(name)
	if err != nil {
		cli.Close()                                   //tf:unchecked-ok abandoning a failed subscription
		c.r.send(rreq{kind: rSubRelease, name: name}) //tf:unchecked-ok reservation dies with the router
		return c.writeErr(err) == nil
	}
	sub := &relaySub{query: name, cli: cli}
	c.subs[name] = sub
	c.relays.Add(1)
	//tf:goroutine sub-relay
	go c.relay(sub)
	return c.writeLine(fmt.Sprintf("+OK %d", seq)) == nil
}

func (c *cconn) unsubscribe(name string) bool {
	sub, ok := c.subs[name]
	if !ok {
		return c.writeErr(fmt.Errorf("shard: not subscribed to %q", name)) == nil
	}
	delete(c.subs, name)
	sub.closedByUs.Store(true)
	sub.cli.Close() //tf:unchecked-ok closing a delegated subscription
	return c.writeLine("+OK") == nil
}

// relay pumps one delegated subscription's events onto the client
// socket, verbatim: the shard's per-query order and sequence numbers
// are the cluster's. It ends when the shard connection closes — clean
// unsubscribe or teardown (silent), shard-side eviction (*EVICTED
// relayed), or shard death (*EVICTED synthesized, since the stream can
// never resume).
func (c *cconn) relay(sub *relaySub) {
	defer c.relays.Done()
	defer c.r.send(rreq{kind: rSubRelease, name: sub.query}) //tf:unchecked-ok reservation dies with the router
	var scratch []byte
	events := sub.cli.Events()
	for ev := range events {
		if ev.Evicted {
			c.writeLine("*EVICTED " + sub.query) //tf:unchecked-ok peer may be gone
			return
		}
		c.co.events.Add(1)
		scratch = appendEventLine(scratch[:0], ev)
		scratch = append(scratch, '\n')
		c.writeBytes(scratch, len(events) == 0) //tf:unchecked-ok sticky error; relay keeps draining
	}
	if !sub.closedByUs.Load() {
		c.writeLine("*EVICTED " + sub.query) //tf:unchecked-ok peer may be gone
	}
}

// appendEventLine renders one relayed match event back into its wire
// form (without the trailing newline).
func appendEventLine(dst []byte, ev server.Event) []byte {
	dst = append(dst, "*EVENT "...)
	dst = append(dst, ev.Query...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, ev.Seq, 10)
	if ev.Positive {
		dst = append(dst, " +"...)
	} else {
		dst = append(dst, " -"...)
	}
	for _, v := range ev.Mapping {
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, uint64(v), 10)
	}
	return dst
}

func (c *cconn) writeLine(line string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	if _, err := c.bw.WriteString(line); err != nil {
		c.werr = err
		return err
	}
	if err := c.bw.WriteByte('\n'); err != nil {
		c.werr = err
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.werr = err
		return err
	}
	return nil
}

func (c *cconn) writeBytes(b []byte, flush bool) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return
	}
	if _, err := c.bw.Write(b); err != nil {
		c.werr = err
		return
	}
	if flush {
		if err := c.bw.Flush(); err != nil {
			c.werr = err
		}
	}
}

func (c *cconn) writeErr(err error) error {
	msg := strings.NewReplacer("\r", " ", "\n", " ").Replace(err.Error())
	return c.writeLine("-ERR " + msg)
}

// teardown ends the connection: close every delegated subscription
// (their relays drain and exit), flush, close the socket.
func (c *cconn) teardown() {
	//tf:unordered-ok closing delegated subscriptions; per-query order is preserved by the relays
	for _, sub := range c.subs {
		sub.closedByUs.Store(true)
		sub.cli.Close() //tf:unchecked-ok closing
	}
	c.relays.Wait()
	c.wmu.Lock()
	c.bw.Flush() //tf:unchecked-ok closing
	c.wmu.Unlock()
	c.nc.Close() //tf:unchecked-ok closing
	c.co.removeConn(c)
}
