package shard

// Multi-process shard e2e: real turboflux-serve shard processes behind an
// in-process coordinator. Proves byte-identical per-query subscriber
// transcripts against a single-process run of the same workload, and
// graceful degradation when one shard is SIGKILLed mid-stream.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"turboflux"
	"turboflux/internal/server"
)

var (
	serveBinOnce sync.Once
	serveBinPath string
	serveBinErr  error
)

// buildServeBin builds cmd/turboflux-serve once per test process.
func buildServeBin(t *testing.T) string {
	t.Helper()
	serveBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "turboflux-shard-bin")
		if err != nil {
			serveBinErr = err
			return
		}
		bin := filepath.Join(dir, "turboflux-serve")
		cmd := exec.Command("go", "build", "-o", bin, "turboflux/cmd/turboflux-serve")
		cmd.Dir = moduleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			serveBinErr = fmt.Errorf("building turboflux-serve: %v\n%s", err, out)
			return
		}
		serveBinPath = bin
	})
	if serveBinErr != nil {
		t.Fatal(serveBinErr)
	}
	return serveBinPath
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// serveProc is one child turboflux-serve process (a shard).
type serveProc struct {
	cmd  *exec.Cmd
	addr string
}

// startServeProc launches turboflux-serve on a kernel-assigned port with
// fresh (empty) label dictionaries — the coordinator's LABEL sync is
// responsible for keeping them aligned — and waits for its banner.
func startServeProc(t *testing.T, extra ...string) *serveProc {
	t.Helper()
	bin := buildServeBin(t)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd}
	t.Cleanup(func() {
		cmd.Process.Kill() //tf:unchecked-ok test teardown
		cmd.Wait()         //tf:unchecked-ok test teardown
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "# serving on ") {
				addrCh <- strings.Fields(line)[3]
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("turboflux-serve never printed its serving banner")
	}
	return p
}

// startCoordinatorOver starts an in-process coordinator over the given
// shard addresses and returns its client address.
func startCoordinatorOver(t *testing.T, shardAddrs []string, opt Options) string {
	t.Helper()
	opt.Shards = shardAddrs
	co, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- co.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := co.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("coordinator serve: %v", err)
		}
	})
	return co.Addr().String()
}

// rawSubscriber is a raw protocol connection capturing *EVENT lines
// exactly as written to the wire, so transcript comparison is
// byte-level.
type rawSubscriber struct {
	nc net.Conn
	br *bufio.Reader
}

func rawSubscribe(t *testing.T, addr string, queries []string) *rawSubscriber {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() }) //tf:unchecked-ok test cleanup
	br := bufio.NewReader(nc)
	for _, q := range queries {
		if _, err := fmt.Fprintf(nc, "SUBSCRIBE %s\n", q); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(10 * time.Second)) //tf:unchecked-ok test conn
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(line, "+OK") {
			t.Fatalf("SUBSCRIBE %s: %q", q, line)
		}
	}
	return &rawSubscriber{nc: nc, br: br}
}

// collectLines reads n push lines, grouped by the query name (second
// field). Cross-query interleaving on one connection is nondeterministic
// even on a single server, so per-query sequences are the comparison
// unit.
func (s *rawSubscriber) collectLines(t *testing.T, n int) map[string][]string {
	t.Helper()
	got := make(map[string][]string)
	for i := 0; i < n; i++ {
		s.nc.SetReadDeadline(time.Now().Add(30 * time.Second)) //tf:unchecked-ok test conn
		line, err := s.br.ReadString('\n')
		if err != nil {
			t.Fatalf("after %d of %d push lines: %v", i, n, err)
		}
		line = strings.TrimRight(line, "\r\n")
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "*") {
			t.Fatalf("unexpected push line %q", line)
		}
		got[fields[1]] = append(got[fields[1]], line)
	}
	return got
}

// e2eWorkload registers nq label-disjoint queries, declares vertices,
// subscribes to everything on one raw connection, applies updates and
// returns the captured per-query transcripts plus the acked match total.
func e2eWorkload(t *testing.T, addr string, nq, updates int) map[string][]string {
	t.Helper()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //tf:unchecked-ok test teardown
	queries := make([]string, nq)
	for i := range queries {
		queries[i] = fmt.Sprintf("q%d", i)
		if err := c.Register(queries[i], fmt.Sprintf("(a:P)-[:e%d]->(b:P)", i)); err != nil {
			t.Fatal(err)
		}
	}
	vlabel, err := c.Label("vertex", "P")
	if err != nil {
		t.Fatal(err)
	}
	for v := turboflux.VertexID(1); v <= 4; v++ {
		if _, err := c.DeclareVertex(v, vlabel); err != nil {
			t.Fatal(err)
		}
	}
	sub := rawSubscribe(t, addr, queries)

	total := 0
	for k := 0; k < updates; k++ {
		el := turboflux.Label(k % nq)
		from, to := turboflux.VertexID(1+(k%2)*2), turboflux.VertexID(2+(k%2)*2)
		var ack server.Ack
		if (k/nq)%2 == 0 {
			ack, err = c.Insert(from, el, to)
		} else {
			ack, err = c.Delete(from, el, to)
		}
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		total += int(ack.Total)
	}
	return sub.collectLines(t, total)
}

// TestE2ETranscriptEquivalence is the tentpole acceptance test: a
// coordinator over 4 real shard processes produces byte-identical
// per-query subscriber transcripts to one single server process running
// the same workload.
func TestE2ETranscriptEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	const nq, updates = 8, 96

	single := startServeProc(t)
	want := e2eWorkload(t, single.addr, nq, updates)

	shardProcs := make([]string, 4)
	for i := range shardProcs {
		shardProcs[i] = startServeProc(t).addr
	}
	coAddr := startCoordinatorOver(t, shardProcs, Options{})
	got := e2eWorkload(t, coAddr, nq, updates)

	if len(got) != len(want) {
		t.Fatalf("cluster produced events for %d queries, single server %d", len(got), len(want))
	}
	for name, wantLines := range want {
		gotLines := got[name]
		if len(gotLines) != len(wantLines) {
			t.Fatalf("query %s: %d events, want %d", name, len(gotLines), len(wantLines))
		}
		for k := range wantLines {
			if gotLines[k] != wantLines[k] {
				t.Fatalf("query %s event %d:\n  cluster: %q\n  single:  %q", name, k, gotLines[k], wantLines[k])
			}
		}
	}
}

// TestE2EKillShardDegrades SIGKILLs one of four shard processes
// mid-stream: its queries error and their subscribers are evicted, while
// the other shards' queries keep streaming and updates keep acking.
func TestE2EKillShardDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	procs := make([]*serveProc, 4)
	addrs := make([]string, 4)
	for i := range procs {
		procs[i] = startServeProc(t)
		addrs[i] = procs[i].addr
	}
	coAddr := startCoordinatorOver(t, addrs, Options{
		HeartbeatInterval: 50 * time.Millisecond,
		RequestTimeout:    2 * time.Second,
	})
	c, err := server.Dial(coAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //tf:unchecked-ok test teardown

	// q0..q3 place round-robin on shards 0..3.
	for i := 0; i < 4; i++ {
		if err := c.Register(fmt.Sprintf("q%d", i), fmt.Sprintf("(a:P)-[:e%d]->(b:P)", i)); err != nil {
			t.Fatal(err)
		}
	}
	vlabel, err := c.Label("vertex", "P")
	if err != nil {
		t.Fatal(err)
	}
	for v := turboflux.VertexID(1); v <= 2; v++ {
		if _, err := c.DeclareVertex(v, vlabel); err != nil {
			t.Fatal(err)
		}
	}
	// One subscriber connection watching a doomed query and a survivor.
	sub, err := server.Dial(coAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()                              //tf:unchecked-ok test teardown
	if _, err := sub.Subscribe("q1"); err != nil { // lives on shard 1 (to be killed)
		t.Fatal(err)
	}
	if _, err := sub.Subscribe("q2"); err != nil { // lives on shard 2 (survives)
		t.Fatal(err)
	}

	if err := procs[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[1].cmd.Wait() //tf:unchecked-ok child was SIGKILLed

	// The next updates ack from the survivors; the dead shard is marked
	// down either by its failing control connection or the heartbeat.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := c.Insert(1, 0, 2); err != nil {
			t.Fatalf("update after shard kill failed: %v", err)
		}
		lines, err := c.ShardStats()
		if err != nil {
			t.Fatal(err)
		}
		info, err := server.ParseStats(lines)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Shards[1].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never marked down: %+v", info.Shards)
		}
		time.Sleep(20 * time.Millisecond)
		if _, err := c.Delete(1, 0, 2); err != nil {
			t.Fatalf("update after shard kill failed: %v", err)
		}
	}

	// Dead shard's query: eviction notice arrives, resubscribe errors.
	evicted := false
	for wait := time.Now().Add(10 * time.Second); time.Now().Before(wait) && !evicted; {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatal("subscriber stream closed")
			}
			if ev.Evicted && ev.Query == "q1" {
				evicted = true
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	if !evicted {
		t.Fatal("q1 subscriber never received its eviction notice")
	}
	c2, err := server.Dial(coAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close() //tf:unchecked-ok test teardown
	if _, err := c2.Subscribe("q1"); err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("subscribe to dead shard's query: err=%v, want down error", err)
	}

	// Survivor query still streams: drive a q2 match and watch it arrive.
	ack, err := c.Insert(1, 2, 2) // edge label e2 → q2
	if err != nil {
		t.Fatal(err)
	}
	if ack.Counts["q2"] != 1 {
		t.Fatalf("q2 count = %v, want 1", ack.Counts)
	}
	sawQ2 := false
	for wait := time.Now().Add(10 * time.Second); time.Now().Before(wait) && !sawQ2; {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatal("subscriber stream closed")
			}
			if ev.Query == "q2" && ev.Seq == ack.Seq {
				sawQ2 = true
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	if !sawQ2 {
		t.Fatal("q2 subscriber never saw the post-kill match")
	}
}
