package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"turboflux"
	"turboflux/internal/server"
)

// taskKind identifies one unit of shard work in a fanner's FIFO.
type taskKind uint8

const (
	// taskApply applies one update.
	taskApply taskKind = iota
	// taskBatch applies a batch of updates as one frame.
	taskBatch
	// taskRegister registers a query (owner shard only).
	taskRegister
	// taskUnregister removes a query (owner shard only).
	taskUnregister
	// taskLabels interns label names, asserting id equality with the
	// coordinator's dictionaries.
	taskLabels
)

// labelDef is one label to sync: the shard must intern name to exactly
// want, or its dictionary has diverged from the coordinator's.
type labelDef struct {
	kind string // "vertex" or "edge"
	name string
	want turboflux.Label
}

// task is one queued unit of shard work. Fan-out tasks share one result
// channel (capacity = number of shards enqueued to), so fanners never
// block sending results and connection goroutines collect exactly
// pending.n of them.
type task struct {
	kind    taskKind
	seq     uint64 // coordinator sequence of the (first) update
	u       turboflux.Update
	ups     []turboflux.Update
	name    string
	pattern string
	labels  []labelDef
	res     chan taskResult
}

// taskResult is one shard's outcome for one task.
type taskResult struct {
	shard int
	err   error
	ack   server.Ack
	batch server.BatchAck
}

// pending is a fan-out barrier handle: the router returns it immediately
// and the connection goroutine collects the n per-shard results, keeping
// the router itself off the network.
type pending struct {
	n   int
	seq uint64
	res chan taskResult
}

// collect waits for all n results. Fanners always reply — a task queued
// behind a shard's death gets an error result — so this terminates.
func (p pending) collect() []taskResult {
	out := make([]taskResult, 0, p.n)
	for i := 0; i < p.n; i++ {
		out = append(out, <-p.res)
	}
	return out
}

// shardHandle is the coordinator's view of one shard server: a control
// client owned by the fanner goroutine (updates, registration, label
// sync — the ordered path) and a prober client owned by the heartbeat
// goroutine. Liveness and lag counters are atomics so the router and
// STATS read them without handshakes.
type shardHandle struct {
	id   int
	addr string
	ctl  *server.Client
	hb   *server.Client

	// base is the shard's sequence number at attach; after the
	// coordinator has fanned k updates the shard must ack base+k.
	base uint64

	tasks chan *task
	stop  chan struct{} // stops the heartbeat prober
	wg    sync.WaitGroup

	alive   atomic.Bool
	applied atomic.Uint64 // updates acked since attach
	misses  atomic.Int64  // consecutive heartbeat misses
	pingUs  atomic.Int64  // last successful probe round trip

	// Sub-pattern sharing counters mirrored from the shard's last STATS
	// probe: the heartbeat goroutine writes, the router's STATS rendering
	// reads. The coordinator holds no engine of its own, so this mirror is
	// its only view of shard-side sharing (DESIGN.md §17).
	mqoSubpats  atomic.Int64
	mqoShared   atomic.Int64
	mqoRefs     atomic.Int64
	mqoMaintain atomic.Uint64
	mqoSaved    atomic.Uint64
	mqoReplays  atomic.Uint64

	reasonMu sync.Mutex
	reason   string // first cause of death

	hbInterval time.Duration
	hbMisses   int
}

// attach dials one shard and verifies it is writable. The shard's
// current sequence number (from STATS) becomes the ack base.
func attach(id int, addr string, opt Options) (*shardHandle, error) {
	dialOpt := server.DialOptions{
		Timeout:        opt.DialTimeout,
		RequestTimeout: opt.RequestTimeout,
	}
	ctl, err := server.DialWith(addr, dialOpt)
	if err != nil {
		return nil, err
	}
	hb, err := server.DialWith(addr, dialOpt)
	if err != nil {
		ctl.Close() //tf:unchecked-ok abandoning a half-attached shard
		return nil, err
	}
	info, err := hb.StatsInfo()
	if err != nil {
		ctl.Close() //tf:unchecked-ok abandoning a half-attached shard
		hb.Close()  //tf:unchecked-ok abandoning a half-attached shard
		return nil, err
	}
	if info.Role == "follower" {
		ctl.Close() //tf:unchecked-ok abandoning a half-attached shard
		hb.Close()  //tf:unchecked-ok abandoning a half-attached shard
		return nil, fmt.Errorf("shard is a read-only follower of %s", info.Leader)
	}
	h := &shardHandle{
		id:         id,
		addr:       addr,
		ctl:        ctl,
		hb:         hb,
		base:       info.Seq,
		tasks:      make(chan *task, fannerQueueDepth),
		stop:       make(chan struct{}),
		hbInterval: opt.HeartbeatInterval,
		hbMisses:   opt.HeartbeatMisses,
	}
	h.alive.Store(true)
	h.storeMQO(info.MQO)
	return h, nil
}

// storeMQO mirrors one STATS probe's sharing counters into the handle's
// atomics.
func (h *shardHandle) storeMQO(s server.MQOStat) {
	h.mqoSubpats.Store(int64(s.SubPatterns))
	h.mqoShared.Store(int64(s.Shared))
	h.mqoRefs.Store(int64(s.Refs))
	h.mqoMaintain.Store(s.MaintainRuns)
	h.mqoSaved.Store(s.SavedEvals)
	h.mqoReplays.Store(s.SharedReplays)
}

// start launches the fanner and heartbeat goroutines (after the router
// exists, so down-marking has somewhere to surface).
func (h *shardHandle) start() {
	h.wg.Add(2)
	//tf:goroutine shard-fanner
	go h.fanner()
	//tf:goroutine shard-heartbeat
	go h.heartbeat()
}

// closeClients releases the shard connections (attach-failure cleanup
// and router shutdown).
func (h *shardHandle) closeClients() {
	h.ctl.Close() //tf:unchecked-ok closing
	h.hb.Close()  //tf:unchecked-ok closing
}

// down marks the shard dead (fail-stop: it is never revived) and
// returns the decorated error. Only the first cause is kept.
func (h *shardHandle) down(cause error) error {
	h.reasonMu.Lock()
	if h.reason == "" {
		h.reason = cause.Error()
	}
	h.reasonMu.Unlock()
	h.alive.Store(false)
	return fmt.Errorf("shard: shard %d (%s) down: %w", h.id, h.addr, cause)
}

func (h *shardHandle) downReason() string {
	h.reasonMu.Lock()
	defer h.reasonMu.Unlock()
	return h.reason
}

// fanner drains the shard's task FIFO onto its control connection. One
// goroutine per shard preserves the router's enqueue order — the
// cluster's total update order — per shard; fanners of different shards
// overlap their round trips.
func (h *shardHandle) fanner() {
	defer h.wg.Done()
	for t := range h.tasks {
		t.res <- h.execute(t)
	}
}

// execute performs one task against the shard. Any transport error or
// sequence mismatch marks the shard down; tasks queued behind a death
// report errors without touching the network.
func (h *shardHandle) execute(t *task) taskResult {
	res := taskResult{shard: h.id}
	if !h.alive.Load() {
		res.err = fmt.Errorf("shard: shard %d (%s) is down: %s", h.id, h.addr, h.downReason())
		return res
	}
	switch t.kind {
	case taskApply:
		ack, err := h.ctl.Apply(t.u)
		if err != nil {
			res.err = h.down(fmt.Errorf("apply: %w", err))
			return res
		}
		if want := h.base + t.seq; ack.Seq != want {
			res.err = h.down(fmt.Errorf("sequence gap: shard acked %d, want %d", ack.Seq, want))
			return res
		}
		h.applied.Add(1)
		res.ack = ack
	case taskBatch:
		back, err := h.ctl.Batch(t.ups)
		if err != nil {
			res.err = h.down(fmt.Errorf("batch: %w", err))
			return res
		}
		if want := h.base + t.seq; back.FirstSeq != want || back.Applied != len(t.ups) {
			res.err = h.down(fmt.Errorf("sequence gap: shard acked batch %d+%d, want %d+%d",
				back.FirstSeq, back.Applied, want, len(t.ups)))
			return res
		}
		h.applied.Add(uint64(len(t.ups)))
		res.batch = back
	case taskRegister:
		// The coordinator already parsed the pattern, so a rejection here
		// is a version or dictionary divergence, not a client error.
		if err := h.ctl.Register(t.name, t.pattern); err != nil {
			res.err = h.down(fmt.Errorf("register %q: %w", t.name, err))
		}
	case taskUnregister:
		if err := h.ctl.Unregister(t.name); err != nil {
			res.err = h.down(fmt.Errorf("unregister %q: %w", t.name, err))
		}
	case taskLabels:
		for _, l := range t.labels {
			id, err := h.ctl.Label(l.kind, l.name)
			if err != nil {
				res.err = h.down(fmt.Errorf("label %s %q: %w", l.kind, l.name, err))
				return res
			}
			if id != l.want {
				res.err = h.down(fmt.Errorf("label dictionary divergence: %s %q interned as %d, want %d",
					l.kind, l.name, id, l.want))
				return res
			}
		}
	}
	return res
}

// heartbeat probes the shard at hbInterval and marks it down after
// hbMisses consecutive failures. A timed-out probe poisons the prober
// connection, so later probes fail fast and the misses accumulate —
// fail-stop, no redial. The probe is a STATS round trip rather than a
// bare PING: the same request that proves liveness refreshes the
// handle's mirror of the shard's sharing counters.
func (h *shardHandle) heartbeat() {
	defer h.wg.Done()
	tick := time.NewTicker(h.hbInterval)
	defer tick.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-tick.C:
			if !h.alive.Load() {
				continue
			}
			start := time.Now()
			info, err := h.hb.StatsInfo()
			if err != nil {
				if n := h.misses.Add(1); int(n) >= h.hbMisses {
					h.down(fmt.Errorf("heartbeat: %d consecutive misses: %w", n, err)) //tf:unchecked-ok down-marking is the effect; no caller to report to
				}
				continue
			}
			h.misses.Store(0)
			h.pingUs.Store(time.Since(start).Microseconds())
			h.storeMQO(info.MQO)
		}
	}
}
