package workload

import (
	"math/rand"

	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

// LSBench vertex type indices.
const (
	TypeUser = iota
	TypePost
	TypeComment
	TypePhoto
	TypeAlbum
	TypeChannel
	TypeTag
	numLSTypes
)

// LSBench edge labels.
const (
	EdgeFollows graph.Label = iota
	EdgeFriendOf
	EdgeCreatorOf
	EdgeLikes
	EdgeAuthorOf
	EdgeReplyOf
	EdgeContainerOf
	EdgeOwnerOf
	EdgeSubscriberOf
	EdgeChannelPost
	EdgeHasTag
	EdgeTaggedWith
	EdgeMentions
	EdgeUserTag
	// Rare relations: generated at low volume so that random label choice
	// produces queries across the whole selectivity spectrum, as in the
	// paper's query generation ("we randomly choose an edge label
	// regardless of the edge distribution", Section 5.1).
	EdgeModeratorOf
	EdgePinnedIn
	EdgeReportedBy
	EdgeAvatarOf
	numLSEdgeLabels
)

// LSBenchConfig configures the LSBench-like generator. Users is the scale
// factor (the paper scales 0.1 M / 1 M / 10 M users; defaults here are
// laptop-scale).
type LSBenchConfig struct {
	Users int
	// StreamFraction is the share of triples held back as the update
	// stream Δg (the paper's split is ≈10%).
	StreamFraction float64
	// DeletionRate is (#deletions / #insertions) in Δg (Appendix B.2);
	// deletions of previously live edges are interleaved into the stream.
	DeletionRate float64
	Seed         int64
}

// DefaultLSBenchConfig returns the default laptop-scale configuration
// (≈20 triples per user, mirroring LSBench's ≈21 M triples for 0.1 M
// users at 1/10 the per-user density for tractable test runs).
func DefaultLSBenchConfig() LSBenchConfig {
	return LSBenchConfig{Users: 2000, StreamFraction: 0.1, Seed: 1}
}

// Dataset is a generated benchmark input: the initial graph g0, the update
// stream Δg, and the schema the query generators draw from.
type Dataset struct {
	Name   string
	Graph  *graph.Graph // g0 (vertices of the whole universe are declared)
	Stream []stream.Update
	Schema *Schema
}

// LSBenchSchema returns the social-network schema used by the generator.
func LSBenchSchema() *Schema {
	return &Schema{
		VertexTypes: []graph.Label{0, 1, 2, 3, 4, 5, 6},
		VertexTypeNames: []string{
			"User", "Post", "Comment", "Photo", "Album", "Channel", "Tag",
		},
		EdgeLabelNames: []string{
			"follows", "friendOf", "creatorOf", "likes", "authorOf",
			"replyOf", "containerOf", "ownerOf", "subscriberOf",
			"channelPost", "hasTag", "taggedWith", "mentions", "userTag",
			"moderatorOf", "pinnedIn", "reportedBy", "avatarOf",
		},
		Edges: []SchemaEdge{
			{TypeUser, EdgeFollows, TypeUser},
			{TypeUser, EdgeFriendOf, TypeUser},
			{TypeUser, EdgeCreatorOf, TypePost},
			{TypeUser, EdgeLikes, TypePost},
			{TypeUser, EdgeAuthorOf, TypeComment},
			{TypeComment, EdgeReplyOf, TypePost},
			{TypeAlbum, EdgeContainerOf, TypePhoto},
			{TypeUser, EdgeOwnerOf, TypeAlbum},
			{TypeUser, EdgeSubscriberOf, TypeChannel},
			{TypeChannel, EdgeChannelPost, TypePost},
			{TypePost, EdgeHasTag, TypeTag},
			{TypePhoto, EdgeTaggedWith, TypeTag},
			{TypeComment, EdgeMentions, TypeUser},
			{TypePhoto, EdgeUserTag, TypeUser},
			{TypeUser, EdgeModeratorOf, TypeChannel},
			{TypePost, EdgePinnedIn, TypeChannel},
			{TypeComment, EdgeReportedBy, TypeUser},
			{TypePhoto, EdgeAvatarOf, TypeUser},
		},
	}
}

// LSBench generates the LSBench-like dataset.
func LSBench(cfg LSBenchConfig) *Dataset {
	if cfg.Users <= 0 {
		cfg.Users = DefaultLSBenchConfig().Users
	}
	if cfg.StreamFraction <= 0 || cfg.StreamFraction >= 1 {
		cfg.StreamFraction = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := LSBenchSchema()

	// Entity counts derived from the user scale factor.
	users := cfg.Users
	posts := 4 * users
	comments := 5 * users
	photos := 2 * users
	albums := users / 2
	if albums == 0 {
		albums = 1
	}
	channels := users/20 + 1
	tags := users/10 + 20

	// Vertex ID layout: contiguous ranges per type.
	base := make([]graph.VertexID, numLSTypes+1)
	counts := []int{users, posts, comments, photos, albums, channels, tags}
	for i, c := range counts {
		base[i+1] = base[i] + graph.VertexID(c)
	}
	vid := func(t, i int) graph.VertexID { return base[t] + graph.VertexID(i) }

	g := graph.New()
	for t, c := range counts {
		for i := 0; i < c; i++ {
			_ = g.AddVertex(vid(t, i), sc.VertexTypes[t])
		}
	}

	// Zipf-skewed entity popularity: a few users/posts attract more edges
	// than the median, with a flattened head (large v) so homomorphism
	// counts stay in the paper's selectivity range (Figure 17a/b).
	zUser := rand.NewZipf(rng, 1.2, 48, uint64(users-1))
	zPost := rand.NewZipf(rng, 1.2, 48, uint64(posts-1))
	zTag := rand.NewZipf(rng, 1.3, 16, uint64(tags-1))
	hotUser := func() int { return int(zUser.Uint64()) }
	hotPost := func() int { return int(zPost.Uint64()) }

	var triples []graph.Edge
	add := func(t1, i1 int, l graph.Label, t2, i2 int) {
		triples = append(triples, graph.Edge{From: vid(t1, i1), Label: l, To: vid(t2, i2)})
	}

	// Social graph: ~3 follows and ~2 friendOf per user, skewed targets.
	for u := 0; u < users; u++ {
		for k := 0; k < 3; k++ {
			add(TypeUser, u, EdgeFollows, TypeUser, hotUser())
		}
		for k := 0; k < 2; k++ {
			add(TypeUser, u, EdgeFriendOf, TypeUser, hotUser())
		}
		add(TypeUser, u, EdgeSubscriberOf, TypeChannel, rng.Intn(channels))
	}
	// Rare relations: one moderator per channel, sparse pins/reports/avatars.
	for c := 0; c < channels; c++ {
		add(TypeUser, rng.Intn(users), EdgeModeratorOf, TypeChannel, c)
		add(TypePost, rng.Intn(posts), EdgePinnedIn, TypeChannel, c)
	}
	for i := 0; i < users/20+1; i++ {
		add(TypeComment, rng.Intn(comments), EdgeReportedBy, TypeUser, rng.Intn(users))
		add(TypePhoto, rng.Intn(photos), EdgeAvatarOf, TypeUser, rng.Intn(users))
	}
	// Content graph.
	for p := 0; p < posts; p++ {
		add(TypeUser, hotUser(), EdgeCreatorOf, TypePost, p)
		add(TypeChannel, rng.Intn(channels), EdgeChannelPost, TypePost, p)
		for k := rng.Intn(3); k > 0; k-- {
			add(TypePost, p, EdgeHasTag, TypeTag, int(zTag.Uint64()))
		}
		for k := rng.Intn(4); k > 0; k-- {
			add(TypeUser, hotUser(), EdgeLikes, TypePost, p)
		}
	}
	for c := 0; c < comments; c++ {
		add(TypeUser, hotUser(), EdgeAuthorOf, TypeComment, c)
		add(TypeComment, c, EdgeReplyOf, TypePost, hotPost())
		if rng.Intn(3) == 0 {
			add(TypeComment, c, EdgeMentions, TypeUser, hotUser())
		}
	}
	for a := 0; a < albums; a++ {
		add(TypeUser, rng.Intn(users), EdgeOwnerOf, TypeAlbum, a)
	}
	for ph := 0; ph < photos; ph++ {
		add(TypeAlbum, rng.Intn(albums), EdgeContainerOf, TypePhoto, ph)
		if rng.Intn(2) == 0 {
			add(TypePhoto, ph, EdgeTaggedWith, TypeTag, int(zTag.Uint64()))
		}
		if rng.Intn(3) == 0 {
			add(TypePhoto, ph, EdgeUserTag, TypeUser, hotUser())
		}
	}

	return assemble("lsbench", g, sc, triples, cfg.StreamFraction, cfg.DeletionRate, rng)
}

// assemble shuffles triples, loads the initial fraction into g, and builds
// the update stream with interleaved deletions of live edges.
func assemble(name string, g *graph.Graph, sc *Schema, triples []graph.Edge,
	streamFraction, deletionRate float64, rng *rand.Rand) *Dataset {
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })
	split := int(float64(len(triples)) * (1 - streamFraction))
	var live []graph.Edge
	for _, e := range triples[:split] {
		if g.InsertEdge(e.From, e.Label, e.To) {
			live = append(live, e)
		}
	}
	var ups []stream.Update
	for _, e := range triples[split:] {
		ups = append(ups, stream.Insert(e.From, e.Label, e.To))
		live = append(live, e)
		if deletionRate > 0 && rng.Float64() < deletionRate {
			i := rng.Intn(len(live))
			d := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			ups = append(ups, stream.Delete(d.From, d.Label, d.To))
		}
	}
	return &Dataset{Name: name, Graph: g, Stream: ups, Schema: sc}
}
