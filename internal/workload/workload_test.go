package workload

import (
	"testing"

	"turboflux/internal/graph"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

func TestLSBenchDeterministic(t *testing.T) {
	cfg := LSBenchConfig{Users: 200, StreamFraction: 0.1, Seed: 7}
	a := LSBench(cfg)
	b := LSBench(cfg)
	if a.Graph.NumEdges() != b.Graph.NumEdges() || a.Graph.NumVertices() != b.Graph.NumVertices() {
		t.Fatal("generator not deterministic on g0")
	}
	if len(a.Stream) != len(b.Stream) {
		t.Fatal("generator not deterministic on stream")
	}
	for i := range a.Stream {
		if a.Stream[i].Op != b.Stream[i].Op || a.Stream[i].Edge != b.Stream[i].Edge {
			t.Fatalf("stream diverges at %d", i)
		}
	}
}

func TestLSBenchShape(t *testing.T) {
	d := LSBench(LSBenchConfig{Users: 300, StreamFraction: 0.1, Seed: 3})
	g := d.Graph
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty dataset")
	}
	// Stream should be roughly 10% of total triples.
	total := g.NumEdges() + len(d.Stream)
	frac := float64(len(d.Stream)) / float64(total)
	if frac < 0.05 || frac > 0.2 {
		t.Fatalf("stream fraction = %v, want ~0.1", frac)
	}
	// All 14 edge labels must be present; every vertex carries exactly one
	// type label.
	for l := graph.Label(0); l < numLSEdgeLabels; l++ {
		if g.EdgeCount(l) == 0 && !streamHasLabel(d.Stream, l) {
			t.Errorf("edge label %s absent", d.Schema.EdgeLabelNames[l])
		}
	}
	g.ForEachVertex(func(v graph.VertexID) {
		if len(g.Labels(v)) != 1 {
			t.Fatalf("vertex %d has %d labels", v, len(g.Labels(v)))
		}
	})
	// Zipf skew: the most-followed user should have far more followers than
	// the median.
	maxIn := 0
	for _, u := range g.VerticesWithLabel(d.Schema.VertexTypes[TypeUser]) {
		if n := len(g.InNeighbors(u, EdgeFollows)); n > maxIn {
			maxIn = n
		}
	}
	if maxIn < 10 {
		t.Fatalf("max follower count = %d; expected heavy skew", maxIn)
	}
}

func streamHasLabel(ups []stream.Update, l graph.Label) bool {
	for _, u := range ups {
		if u.Op == stream.OpInsert && u.Edge.Label == l {
			return true
		}
	}
	return false
}

func TestLSBenchDeletions(t *testing.T) {
	d := LSBench(LSBenchConfig{Users: 200, StreamFraction: 0.1, DeletionRate: 0.5, Seed: 5})
	ins, del := 0, 0
	for _, u := range d.Stream {
		switch u.Op {
		case stream.OpInsert:
			ins++
		case stream.OpDelete:
			del++
		}
	}
	if ins == 0 || del == 0 {
		t.Fatalf("ins=%d del=%d", ins, del)
	}
	ratio := float64(del) / float64(ins)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("deletion ratio = %v, want ~0.5", ratio)
	}
	// Every deletion must target an edge that is live at that point.
	g := d.Graph.Clone()
	for i, u := range d.Stream {
		if u.Op == stream.OpDelete && !g.HasEdge(u.Edge.From, u.Edge.Label, u.Edge.To) {
			t.Fatalf("stream[%d] deletes a dead edge %v", i, u.Edge)
		}
		u.Apply(g)
	}
}

func TestNetflowShape(t *testing.T) {
	d := Netflow(NetflowConfig{Hosts: 500, Triples: 5000, StreamFraction: 0.1, Seed: 2})
	g := d.Graph
	// Unlabeled vertices, eight edge labels.
	g.ForEachVertex(func(v graph.VertexID) {
		if len(g.Labels(v)) != 0 {
			t.Fatalf("netflow vertex %d is labeled", v)
		}
	})
	if d.Schema.Typed() {
		t.Fatal("netflow schema must be untyped")
	}
	if len(d.Schema.Edges) != int(numFlowLabels) {
		t.Fatalf("schema has %d edge labels, want %d", len(d.Schema.Edges), numFlowLabels)
	}
	if g.NumEdges() == 0 || len(d.Stream) == 0 {
		t.Fatal("empty netflow dataset")
	}
	// Defaults kick in for zero values.
	d2 := Netflow(NetflowConfig{Seed: 2})
	if d2.Graph.NumVertices() != DefaultNetflowConfig().Hosts {
		t.Fatal("default hosts not applied")
	}
}

func TestTreeQueries(t *testing.T) {
	d := LSBench(LSBenchConfig{Users: 100, Seed: 1})
	for _, size := range []int{3, 6, 9, 12} {
		qs := d.TreeQueries(20, size, 11)
		if len(qs) != 20 {
			t.Fatalf("size %d: got %d queries", size, len(qs))
		}
		for _, q := range qs {
			if q.NumEdges() != size {
				t.Fatalf("size %d: query has %d edges", size, q.NumEdges())
			}
			if q.NumVertices() != size+1 {
				t.Fatalf("tree query must have size+1 vertices, got %d", q.NumVertices())
			}
			if err := q.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCyclicQueries(t *testing.T) {
	d := LSBench(LSBenchConfig{Users: 100, Seed: 1})
	qs := d.CyclicQueries(20, 6, 13)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.NumEdges() != 6 {
			t.Fatalf("query has %d edges, want 6", q.NumEdges())
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		// Cyclic: edges >= vertices.
		if q.NumEdges() < q.NumVertices() {
			t.Fatalf("query not cyclic: %d edges, %d vertices", q.NumEdges(), q.NumVertices())
		}
	}
}

func TestNetflowQueries(t *testing.T) {
	d := Netflow(NetflowConfig{Hosts: 200, Triples: 2000, Seed: 1})
	for _, q := range d.TreeQueries(10, 4, 3) {
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < q.NumVertices(); u++ {
			if len(q.Labels(graph.VertexID(u))) != 0 {
				t.Fatal("netflow query vertices must be unlabeled")
			}
		}
	}
	if qs := d.CyclicQueries(5, 5, 3); len(qs) != 5 {
		t.Fatalf("cyclic netflow queries: %d", len(qs))
	}
}

func TestPathQueries(t *testing.T) {
	d := Netflow(NetflowConfig{Hosts: 200, Triples: 2000, Seed: 1})
	for _, size := range []int{3, 4, 5} {
		for _, q := range d.PathQueries(10, size, 17) {
			if q.NumEdges() != size || q.NumVertices() != size+1 {
				t.Fatalf("path size %d: %d edges %d vertices", size, q.NumEdges(), q.NumVertices())
			}
			// Every vertex has degree <= 2: a path.
			for u := 0; u < q.NumVertices(); u++ {
				if len(q.IncidentEdges(graph.VertexID(u))) > 2 {
					t.Fatal("not a path")
				}
			}
		}
	}
	// LSBench paths must also work (typed schema).
	ls := LSBench(LSBenchConfig{Users: 100, Seed: 1})
	if qs := ls.PathQueries(5, 3, 9); len(qs) != 5 {
		t.Fatalf("lsbench paths: %d", len(qs))
	}
}

func TestBinaryTreeQueries(t *testing.T) {
	d := Netflow(NetflowConfig{Hosts: 200, Triples: 2000, Seed: 1})
	for _, size := range []int{4, 8, 14} {
		for _, q := range d.BinaryTreeQueries(5, size, 23) {
			if q.NumEdges() != size {
				t.Fatalf("btree size %d: %d edges", size, q.NumEdges())
			}
			if err := q.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestShrinkQuery(t *testing.T) {
	d := LSBench(LSBenchConfig{Users: 100, Seed: 1})
	q12 := d.TreeQueries(1, 12, 31)[0]
	q11 := ShrinkQuery(q12, 1)
	if q11 == nil {
		t.Fatal("shrink failed")
	}
	if q11.NumEdges() != 11 {
		t.Fatalf("shrunk query has %d edges, want 11", q11.NumEdges())
	}
	if err := q11.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shrinking all the way down stays connected.
	q := q12
	for q.NumEdges() > 1 {
		nq := ShrinkQuery(q, int64(q.NumEdges()))
		if nq == nil {
			t.Fatalf("cannot shrink below %d edges", q.NumEdges())
		}
		q = nq
	}
}

func TestOverlappingQueries(t *testing.T) {
	d := LSBench(LSBenchConfig{Users: 100, Seed: 1})
	qs := d.OverlappingQueries(8, 4, 0.5, 7)
	if len(qs) != 8 {
		t.Fatalf("got %d queries, want 8", len(qs))
	}
	same := func(a, b *query.Graph) bool {
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			return false
		}
		for u := 0; u < a.NumVertices(); u++ {
			la, lb := a.Labels(graph.VertexID(u)), b.Labels(graph.VertexID(u))
			if len(la) != len(lb) {
				return false
			}
			for i := range la {
				if la[i] != lb[i] {
					return false
				}
			}
		}
		for i, e := range a.Edges() {
			if b.Edge(i) != e {
				return false
			}
		}
		return true
	}
	// The first round(0.5*8)=4 queries are copies of one base tree.
	for i := 1; i < 4; i++ {
		if !same(qs[0], qs[i]) {
			t.Fatalf("query %d does not share the base tree", i)
		}
		if qs[0] == qs[i] {
			t.Fatalf("query %d aliases the base instead of cloning it", i)
		}
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		if q.NumEdges() != 4 {
			t.Fatalf("query has %d edges, want 4", q.NumEdges())
		}
	}
	// Overlap clamps: everything shared at >1, nothing at <0.
	all := d.OverlappingQueries(4, 3, 1.5, 9)
	for i := 1; i < len(all); i++ {
		if !same(all[0], all[i]) {
			t.Fatal("overlap > 1 must clamp to a fully shared set")
		}
	}
	if got := len(d.OverlappingQueries(4, 3, -0.5, 9)); got != 4 {
		t.Fatalf("overlap < 0: got %d queries, want 4", got)
	}
}
