// Package workload generates the synthetic datasets and query sets used by
// the benchmark harness. It provides laptop-scale substitutes for the two
// datasets of the paper's evaluation (DESIGN.md §4):
//
//   - LSBench: a social-network stream in the shape produced by the Linked
//     Stream Benchmark generator — a typed schema (users, posts, comments,
//     photos, …), Zipf-skewed fan-out and a #users scale factor;
//   - Netflow: label-poor IP traffic — unlabeled hosts, eight edge labels,
//     heavy-tailed host popularity.
//
// Query generators follow Section 5.1: tree queries by random schema-graph
// traversal, cyclic (graph) queries grown from triangles/squares/
// pentagons, and the path/binary-tree query shapes of Appendix B.6.
// All generation is deterministic given a seed.
package workload

import (
	"math/rand"

	"turboflux/internal/graph"
)

// SchemaEdge is one allowed relation of a dataset schema: vertices of type
// Src connect to vertices of type Dst through edge label Label. NoType
// marks untyped endpoints (the Netflow regime).
type SchemaEdge struct {
	Src   int
	Label graph.Label
	Dst   int
}

// NoType marks an untyped schema endpoint.
const NoType = -1

// Schema describes the type structure of a dataset.
type Schema struct {
	// VertexTypes[i] is the vertex Label of type i; an empty schema (no
	// types) means vertices are unlabeled.
	VertexTypes []graph.Label
	// VertexTypeNames[i] names type i (debugging / CLI output).
	VertexTypeNames []string
	// EdgeLabelNames[l] names edge label l.
	EdgeLabelNames []string
	// Edges are the allowed relations.
	Edges []SchemaEdge
}

// Typed reports whether the schema constrains vertex types.
func (s *Schema) Typed() bool { return len(s.VertexTypes) > 0 }

// edgesAt returns the indices of schema edges whose Src or Dst is type t
// (either endpoint for untyped schemas).
func (s *Schema) edgesAt(t int) []int {
	var out []int
	for i, e := range s.Edges {
		if !s.Typed() || e.Src == t || e.Dst == t {
			out = append(out, i)
		}
	}
	return out
}

// selfTypeEdges returns schema edges connecting a type to itself — the
// relations usable for building cyclic queries of arbitrary length.
func (s *Schema) selfTypeEdges() []int {
	var out []int
	for i, e := range s.Edges {
		if e.Src == e.Dst {
			out = append(out, i)
		}
	}
	return out
}

// pick returns a random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}
