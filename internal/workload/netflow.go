package workload

import (
	"math/rand"

	"turboflux/internal/graph"
)

// Netflow edge labels: eight traffic classes, as in the paper's Netflow
// dataset ("only eight edge labels and no vertex label").
const (
	FlowTCP graph.Label = iota
	FlowUDP
	FlowICMP
	FlowHTTP
	FlowHTTPS
	FlowDNS
	FlowFTP
	FlowSSH
	numFlowLabels
)

// NetflowConfig configures the Netflow-like generator.
type NetflowConfig struct {
	// Hosts is the number of IP endpoints (unlabeled vertices).
	Hosts int
	// Triples is the total number of flow edges generated.
	Triples int
	// StreamFraction is the share of triples held back as Δg (paper: 10%).
	StreamFraction float64
	// DeletionRate is (#deletions / #insertions) in Δg.
	DeletionRate float64
	Seed         int64
}

// DefaultNetflowConfig returns the default laptop-scale configuration.
func DefaultNetflowConfig() NetflowConfig {
	return NetflowConfig{Hosts: 3000, Triples: 60000, StreamFraction: 0.1, Seed: 1}
}

// NetflowSchema returns the label-poor traffic schema: one untyped vertex
// kind and eight edge labels.
func NetflowSchema() *Schema {
	s := &Schema{
		EdgeLabelNames: []string{
			"tcp", "udp", "icmp", "http", "https", "dns", "ftp", "ssh",
		},
	}
	for l := graph.Label(0); l < numFlowLabels; l++ {
		s.Edges = append(s.Edges, SchemaEdge{Src: NoType, Label: l, Dst: NoType})
	}
	return s
}

// Netflow generates the Netflow-like dataset: anonymized backbone traffic
// with heavy-tailed host popularity (a few servers receive most flows) and
// a skewed protocol mix.
func Netflow(cfg NetflowConfig) *Dataset {
	def := DefaultNetflowConfig()
	if cfg.Hosts <= 0 {
		cfg.Hosts = def.Hosts
	}
	if cfg.Triples <= 0 {
		cfg.Triples = def.Triples
	}
	if cfg.StreamFraction <= 0 || cfg.StreamFraction >= 1 {
		cfg.StreamFraction = def.StreamFraction
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := NetflowSchema()

	g := graph.New()
	for h := 0; h < cfg.Hosts; h++ {
		_ = g.AddVertex(graph.VertexID(h))
	}

	zDst := rand.NewZipf(rng, 1.2, 8, uint64(cfg.Hosts-1))
	zLbl := rand.NewZipf(rng, 1.5, 2, uint64(numFlowLabels-1))
	triples := make([]graph.Edge, 0, cfg.Triples)
	for i := 0; i < cfg.Triples; i++ {
		triples = append(triples, graph.Edge{
			From:  graph.VertexID(rng.Intn(cfg.Hosts)),
			Label: graph.Label(zLbl.Uint64()),
			To:    graph.VertexID(zDst.Uint64()),
		})
	}
	return assemble("netflow", g, sc, triples, cfg.StreamFraction, cfg.DeletionRate, rng)
}
