package workload

import (
	"math/rand"

	"turboflux/internal/graph"
	"turboflux/internal/query"
)

// qbuilder accumulates a query under construction: each query vertex has a
// schema type (NoType when untyped).
type qbuilder struct {
	sc    *Schema
	types []int
	edges []graph.Edge // From/To are query vertex indices
}

func newQBuilder(sc *Schema) *qbuilder { return &qbuilder{sc: sc} }

func (b *qbuilder) addVertex(t int) graph.VertexID {
	b.types = append(b.types, t)
	return graph.VertexID(len(b.types) - 1)
}

// hasEdge reports whether the exact directed labeled edge already exists.
func (b *qbuilder) hasEdge(e graph.Edge) bool {
	for _, x := range b.edges {
		if x == e {
			return true
		}
	}
	return false
}

// grow attaches one random schema-conformant edge to the query: pick an
// existing query vertex, pick a schema edge incident to its type, and
// either connect to a fresh vertex of the other type or (sometimes) close
// onto an existing compatible vertex. Reports whether it made progress.
func (b *qbuilder) grow(rng *rand.Rand, allowClose bool) bool {
	for attempt := 0; attempt < 32; attempt++ {
		at := rng.Intn(len(b.types))
		cands := b.sc.edgesAt(b.types[at])
		if len(cands) == 0 {
			continue
		}
		se := b.sc.Edges[pick(rng, cands)]
		// Orient: the picked vertex plays Src or Dst.
		var srcT, dstT = se.Src, se.Dst
		var from, to graph.VertexID
		if !b.sc.Typed() || srcT == b.types[at] {
			from = graph.VertexID(at)
			to = b.otherEndpoint(rng, dstT, allowClose)
		} else {
			to = graph.VertexID(at)
			from = b.otherEndpoint(rng, srcT, allowClose)
		}
		e := graph.Edge{From: from, Label: se.Label, To: to}
		if from == to || b.hasEdge(e) {
			continue
		}
		b.edges = append(b.edges, e)
		return true
	}
	return false
}

// otherEndpoint returns either a fresh vertex of type t or, when
// allowClose, occasionally an existing vertex of type t (creating a cycle
// or a reconvergent shape).
func (b *qbuilder) otherEndpoint(rng *rand.Rand, t int, allowClose bool) graph.VertexID {
	if allowClose && rng.Intn(4) == 0 {
		var compat []graph.VertexID
		for i, ty := range b.types {
			if !b.sc.Typed() || ty == t {
				compat = append(compat, graph.VertexID(i))
			}
		}
		if len(compat) > 0 {
			return pick(rng, compat)
		}
	}
	return b.addVertex(t)
}

// build converts the accumulated structure into a query.Graph.
func (b *qbuilder) build() *query.Graph {
	q := query.NewGraph(len(b.types))
	for i, t := range b.types {
		if b.sc.Typed() && t != NoType {
			q.SetLabels(graph.VertexID(i), b.sc.VertexTypes[t])
		}
	}
	for _, e := range b.edges {
		if err := q.AddEdge(e.From, e.Label, e.To); err != nil {
			// hasEdge prevents duplicates; unreachable.
			panic(err)
		}
	}
	return q
}

// TreeQueries generates count tree-shaped queries of the given size
// (number of edges) by random traversal of the schema graph (Section 5.1).
func (d *Dataset) TreeQueries(count, size int, seed int64) []*query.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*query.Graph, 0, count)
	for len(out) < count {
		b := newQBuilder(d.Schema)
		b.addVertex(d.startType(rng))
		ok := true
		for len(b.edges) < size {
			if !b.grow(rng, false) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, b.build())
		}
	}
	return out
}

// CyclicQueries generates count graph (cyclic) queries of the given size:
// a seed cycle of length 3, 4 or 5 (triangle, square, pentagon) built from
// self-type schema relations, extended with random triples (Section 5.1).
func (d *Dataset) CyclicQueries(count, size int, seed int64) []*query.Graph {
	rng := rand.New(rand.NewSource(seed))
	selfEdges := d.Schema.selfTypeEdges()
	if !d.Schema.Typed() {
		selfEdges = d.Schema.edgesAt(NoType)
	}
	if len(selfEdges) == 0 {
		return nil
	}
	out := make([]*query.Graph, 0, count)
	for len(out) < count {
		cycLen := 3 + rng.Intn(3)
		if cycLen > size {
			cycLen = size
		}
		b := newQBuilder(d.Schema)
		se0 := d.Schema.Edges[pick(rng, selfEdges)]
		t := se0.Src
		first := b.addVertex(t)
		prev := first
		okCycle := true
		for i := 1; i < cycLen; i++ {
			nxt := b.addVertex(t)
			se := d.Schema.Edges[pick(rng, selfEdges)]
			b.edges = append(b.edges, graph.Edge{From: prev, Label: se.Label, To: nxt})
			prev = nxt
		}
		se := d.Schema.Edges[pick(rng, selfEdges)]
		closing := graph.Edge{From: prev, Label: se.Label, To: first}
		if b.hasEdge(closing) || prev == first {
			continue
		}
		b.edges = append(b.edges, closing)
		for len(b.edges) < size {
			if !b.grow(rng, true) {
				okCycle = false
				break
			}
		}
		if okCycle {
			out = append(out, b.build())
		}
	}
	return out
}

// PathQueries generates count directed path queries with size edges — the
// query shape of [7] used in Appendix B.6 (Figure 15).
func (d *Dataset) PathQueries(count, size int, seed int64) []*query.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*query.Graph, 0, count)
	for len(out) < count {
		b := newQBuilder(d.Schema)
		cur := b.addVertex(d.startType(rng))
		ok := true
		for i := 0; i < size; i++ {
			curType := b.types[cur]
			cands := d.Schema.edgesAt(curType)
			// Prefer edges leaving the current type so the path stays
			// directed head-to-tail.
			var outEdges []SchemaEdge
			for _, ei := range cands {
				se := d.Schema.Edges[ei]
				if !d.Schema.Typed() || se.Src == curType {
					outEdges = append(outEdges, se)
				}
			}
			if len(outEdges) == 0 {
				ok = false
				break
			}
			se := pick(rng, outEdges)
			nxt := b.addVertex(se.Dst)
			b.edges = append(b.edges, graph.Edge{From: cur, Label: se.Label, To: nxt})
			cur = nxt
		}
		if ok {
			out = append(out, b.build())
		}
	}
	return out
}

// BinaryTreeQueries generates count binary-tree queries with size edges —
// the other query shape of [7] (Figure 16): each vertex has at most two
// children, filled level by level.
func (d *Dataset) BinaryTreeQueries(count, size int, seed int64) []*query.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*query.Graph, 0, count)
	for len(out) < count {
		b := newQBuilder(d.Schema)
		b.addVertex(d.startType(rng))
		childCount := []int{0}
		ok := true
		for len(b.edges) < size {
			// Attach to the earliest vertex with fewer than two children.
			parent := -1
			for i, c := range childCount {
				if c < 2 {
					parent = i
					break
				}
			}
			if parent < 0 {
				ok = false
				break
			}
			pt := b.types[parent]
			cands := d.Schema.edgesAt(pt)
			if len(cands) == 0 {
				ok = false
				break
			}
			se := d.Schema.Edges[pick(rng, cands)]
			var e graph.Edge
			var childType int
			if !d.Schema.Typed() || se.Src == pt {
				childType = se.Dst
				child := b.addVertex(childType)
				e = graph.Edge{From: graph.VertexID(parent), Label: se.Label, To: child}
			} else {
				childType = se.Src
				child := b.addVertex(childType)
				e = graph.Edge{From: child, Label: se.Label, To: graph.VertexID(parent)}
			}
			childCount[parent]++
			childCount = append(childCount, 0)
			b.edges = append(b.edges, e)
		}
		if ok && len(b.edges) == size {
			out = append(out, b.build())
		}
	}
	return out
}

// OverlappingQueries generates a query set with a controllable sharing
// axis for the multi-query optimization layer (DESIGN.md §17):
// round(overlap*count) of the queries are copies of one base tree query
// — identical spanning trees, so a multi-query engine collapses them
// into a single shared sub-pattern — and the rest are independent
// random tree queries (which may still overlap by chance; the fraction
// is a floor, not an exact share). overlap is clamped to [0, 1].
func (d *Dataset) OverlappingQueries(count, size int, overlap float64, seed int64) []*query.Graph {
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	nShared := int(overlap*float64(count) + 0.5)
	out := make([]*query.Graph, 0, count)
	if nShared > 0 {
		base := d.TreeQueries(1, size, seed)
		for i := 0; i < nShared && len(base) == 1; i++ {
			out = append(out, CloneQuery(base[0]))
		}
	}
	return append(out, d.TreeQueries(count-len(out), size, seed+101)...)
}

// CloneQuery deep-copies a query so each registration owns its pattern.
func CloneQuery(q *query.Graph) *query.Graph {
	nq := query.NewGraph(q.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		nq.SetLabels(graph.VertexID(u), q.Labels(graph.VertexID(u))...)
	}
	for _, e := range q.Edges() {
		if err := nq.AddEdge(e.From, e.Label, e.To); err != nil {
			// Copying a validated query; unreachable.
			panic(err)
		}
	}
	return nq
}

// ShrinkQuery removes one random edge from q while keeping it connected —
// the paper constructs smaller tree queries from size-12 ones this way. It
// returns nil when no edge can be removed without disconnecting q or
// leaving an isolated vertex.
func ShrinkQuery(q *query.Graph, seed int64) *query.Graph {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(q.NumEdges())
	for _, drop := range perm {
		nq := rebuildWithout(q, drop)
		if nq != nil && nq.Validate() == nil {
			return nq
		}
	}
	return nil
}

// rebuildWithout rebuilds q without edge index drop, compacting away a
// vertex that becomes isolated (only ever the dropped edge's endpoint).
func rebuildWithout(q *query.Graph, drop int) *query.Graph {
	deg := make([]int, q.NumVertices())
	for i, e := range q.Edges() {
		if i == drop {
			continue
		}
		deg[e.From]++
		deg[e.To]++
	}
	remap := make([]graph.VertexID, q.NumVertices())
	n := 0
	for u := range deg {
		if deg[u] > 0 {
			remap[u] = graph.VertexID(n)
			n++
		} else {
			remap[u] = graph.NoVertex
		}
	}
	if n < 2 {
		return nil
	}
	nq := query.NewGraph(n)
	for u := 0; u < q.NumVertices(); u++ {
		if remap[u] != graph.NoVertex {
			nq.SetLabels(remap[u], q.Labels(graph.VertexID(u))...)
		}
	}
	for i, e := range q.Edges() {
		if i == drop {
			continue
		}
		if err := nq.AddEdge(remap[e.From], e.Label, remap[e.To]); err != nil {
			return nil
		}
	}
	return nq
}

// startType picks a random starting vertex type (NoType for untyped
// schemas).
func (d *Dataset) startType(rng *rand.Rand) int {
	if !d.Schema.Typed() {
		return NoType
	}
	return rng.Intn(len(d.Schema.VertexTypes))
}
