package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary snapshot format: a compact varint encoding for persisting large
// generated graphs (the text stream format in internal/stream is the
// interchange format; this one is ~5x smaller and faster to load).
//
// Layout (all unsigned varints unless noted):
//
//	magic "TFG1" (4 bytes)
//	vertexCount
//	  per vertex: id, labelCount, labels...
//	edgeCount
//	  per edge: from, label, to
const binaryMagic = "TFG1"

// WriteBinary writes a snapshot of g.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(g.NumVertices())); err != nil {
		return err
	}
	var werr error
	g.ForEachVertex(func(v VertexID) {
		if werr != nil {
			return
		}
		ls := g.Labels(v)
		if werr = put(uint64(v)); werr != nil {
			return
		}
		if werr = put(uint64(len(ls))); werr != nil {
			return
		}
		for _, l := range ls {
			if werr = put(uint64(l)); werr != nil {
				return
			}
		}
	})
	if werr != nil {
		return werr
	}
	if err := put(uint64(g.NumEdges())); err != nil {
		return err
	}
	// Emit edges in sorted order: the edge set lives in a map, and loading
	// a snapshot rebuilds adjacency lists in file order, so an unsorted
	// dump would make recovered match-emission order vary run to run.
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		if es[i].Label != es[j].Label {
			return es[i].Label < es[j].Label
		}
		return es[i].To < es[j].To
	})
	for _, e := range es {
		if err := put(uint64(e.From)); err != nil {
			return err
		}
		if err := put(uint64(e.Label)); err != nil {
			return err
		}
		if err := put(uint64(e.To)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary loads a snapshot written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	g := New()
	nv, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nv; i++ {
		id, err := get()
		if err != nil {
			return nil, err
		}
		if id > uint64(^uint32(0)) {
			return nil, fmt.Errorf("graph: vertex id %d overflows", id)
		}
		nl, err := get()
		if err != nil {
			return nil, err
		}
		if nl > 1<<16 {
			return nil, fmt.Errorf("graph: label count %d implausible", nl)
		}
		labels := make([]Label, 0, nl)
		for j := uint64(0); j < nl; j++ {
			l, err := get()
			if err != nil {
				return nil, err
			}
			if l > uint64(^uint16(0)) {
				return nil, fmt.Errorf("graph: label %d overflows", l)
			}
			labels = append(labels, Label(l))
		}
		if err := g.AddVertex(VertexID(id), labels...); err != nil {
			return nil, err
		}
	}
	ne, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ne; i++ {
		from, err := get()
		if err != nil {
			return nil, err
		}
		l, err := get()
		if err != nil {
			return nil, err
		}
		to, err := get()
		if err != nil {
			return nil, err
		}
		if from > uint64(^uint32(0)) || to > uint64(^uint32(0)) || l > uint64(^uint16(0)) {
			return nil, fmt.Errorf("graph: edge record %d overflows", i)
		}
		g.InsertEdge(VertexID(from), Label(l), VertexID(to))
	}
	return g, nil
}
