package graph

import "fmt"

// Dict interns strings to Labels. Vertex labels and edge labels use
// separate Dict instances (separate namespaces), mirroring how RDF loaders
// intern predicate and class IRIs independently.
type Dict struct {
	byName map[string]Label
	names  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]Label)}
}

// Intern returns the Label for name, assigning the next free Label on first
// use. It panics if more than 65535 distinct labels are interned, which is
// far beyond any workload in the paper (Netflow has 8 edge labels).
func (d *Dict) Intern(name string) Label {
	if l, ok := d.byName[name]; ok {
		return l
	}
	if len(d.names) >= 1<<16 {
		panic("graph: label dictionary overflow")
	}
	l := Label(len(d.names))
	d.byName[name] = l
	d.names = append(d.names, name)
	return l
}

// Lookup returns the Label for name and whether it was interned.
func (d *Dict) Lookup(name string) (Label, bool) {
	l, ok := d.byName[name]
	return l, ok
}

// Name returns the string for l. It returns a placeholder for labels never
// interned through this dictionary.
func (d *Dict) Name(l Label) string {
	if int(l) < len(d.names) {
		return d.names[l]
	}
	return fmt.Sprintf("label#%d", l)
}

// Len reports the number of interned labels.
func (d *Dict) Len() int { return len(d.names) }
