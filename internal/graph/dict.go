package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Dict interns strings to Labels. Vertex labels and edge labels use
// separate Dict instances (separate namespaces), mirroring how RDF loaders
// intern predicate and class IRIs independently.
type Dict struct {
	byName map[string]Label
	names  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]Label)}
}

// Intern returns the Label for name, assigning the next free Label on first
// use. It panics if more than 65535 distinct labels are interned, which is
// far beyond any workload in the paper (Netflow has 8 edge labels).
func (d *Dict) Intern(name string) Label {
	if l, ok := d.byName[name]; ok {
		return l
	}
	if len(d.names) >= 1<<16 {
		panic("graph: label dictionary overflow")
	}
	l := Label(len(d.names))
	d.byName[name] = l
	d.names = append(d.names, name)
	return l
}

// Lookup returns the Label for name and whether it was interned.
func (d *Dict) Lookup(name string) (Label, bool) {
	l, ok := d.byName[name]
	return l, ok
}

// Name returns the string for l. It returns a placeholder for labels never
// interned through this dictionary.
func (d *Dict) Name(l Label) string {
	if int(l) < len(d.names) {
		return d.names[l]
	}
	return fmt.Sprintf("label#%d", l)
}

// Len reports the number of interned labels.
func (d *Dict) Len() int { return len(d.names) }

// WriteBinary writes the dictionary in intern order: a varint count, then
// each name as a varint length + bytes. Reading the stream back and
// interning names in order reproduces identical Label assignments, which
// is what durable snapshots rely on.
func (d *Dict) WriteBinary(w io.Writer) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(d.names)))
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	for _, name := range d.names {
		n = binary.PutUvarint(buf[:], uint64(len(name)))
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, name); err != nil {
			return err
		}
	}
	return nil
}

// maxDictNameLen bounds a single label name when decoding; corrupt length
// fields must not trigger huge allocations.
const maxDictNameLen = 1 << 20

// ReadDict loads a dictionary written by WriteBinary.
func ReadDict(r *bufio.Reader) (*Dict, error) {
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading dict count: %w", err)
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("graph: dict count %d exceeds label space", count)
	}
	d := NewDict()
	for i := uint64(0); i < count; i++ {
		ln, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("graph: reading dict name length: %w", err)
		}
		if ln > maxDictNameLen {
			return nil, fmt.Errorf("graph: dict name length %d implausible", ln)
		}
		name := make([]byte, ln)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("graph: reading dict name: %w", err)
		}
		s := string(name)
		if _, dup := d.byName[s]; dup {
			return nil, fmt.Errorf("graph: duplicate dict name %q", s)
		}
		d.Intern(s)
	}
	return d, nil
}
