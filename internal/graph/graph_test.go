package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddVertexAndLabels(t *testing.T) {
	g := New()
	if err := g.AddVertex(1, 5, 3, 5, 1); err != nil {
		t.Fatalf("AddVertex: %v", err)
	}
	got := g.Labels(1)
	want := []Label{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Labels(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels(1) = %v, want %v", got, want)
		}
	}
	if err := g.AddVertex(1); err == nil {
		t.Fatal("re-adding vertex 1 should fail")
	}
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d, want 1", g.NumVertices())
	}
}

func TestHasAllLabels(t *testing.T) {
	g := New()
	if err := g.AddVertex(0, 2, 4, 6); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		req  []Label
		want bool
	}{
		{nil, true},
		{[]Label{2}, true},
		{[]Label{2, 6}, true},
		{[]Label{2, 4, 6}, true},
		{[]Label{3}, false},
		{[]Label{2, 5}, false},
		{[]Label{7}, false},
	}
	for _, c := range cases {
		if got := g.HasAllLabels(0, c.req); got != c.want {
			t.Errorf("HasAllLabels(0, %v) = %v, want %v", c.req, got, c.want)
		}
	}
	if g.HasAllLabels(99, nil) {
		t.Error("HasAllLabels on absent vertex must be false")
	}
}

func TestInsertDeleteEdge(t *testing.T) {
	g := New()
	if !g.InsertEdge(1, 7, 2) {
		t.Fatal("first insert should report true")
	}
	if g.InsertEdge(1, 7, 2) {
		t.Fatal("duplicate insert should report false")
	}
	if !g.HasEdge(1, 7, 2) || g.HasEdge(2, 7, 1) || g.HasEdge(1, 8, 2) {
		t.Fatal("HasEdge direction/label confusion")
	}
	if g.NumEdges() != 1 || g.EdgeCount(7) != 1 {
		t.Fatalf("edge counts wrong: %d / %d", g.NumEdges(), g.EdgeCount(7))
	}
	if n := g.OutNeighbors(1, 7); len(n) != 1 || n[0] != 2 {
		t.Fatalf("OutNeighbors = %v", n)
	}
	if n := g.InNeighbors(2, 7); len(n) != 1 || n[0] != 1 {
		t.Fatalf("InNeighbors = %v", n)
	}
	if !g.DeleteEdge(1, 7, 2) {
		t.Fatal("delete of existing edge should report true")
	}
	if g.DeleteEdge(1, 7, 2) {
		t.Fatal("double delete should report false")
	}
	if g.NumEdges() != 0 || g.EdgeCount(7) != 0 || g.HasEdge(1, 7, 2) {
		t.Fatal("edge not fully removed")
	}
	if g.Degree(1) != 0 || g.Degree(2) != 0 {
		t.Fatal("degrees not restored after delete")
	}
}

func TestSelfLoopAndParallelLabels(t *testing.T) {
	g := New()
	if !g.InsertEdge(3, 1, 3) {
		t.Fatal("self loop insert failed")
	}
	if !g.InsertEdge(3, 2, 3) {
		t.Fatal("parallel self loop with different label failed")
	}
	if g.Degree(3) != 4 { // each loop contributes one in and one out
		t.Fatalf("Degree(3) = %d, want 4", g.Degree(3))
	}
	if !g.DeleteEdge(3, 1, 3) {
		t.Fatal("self loop delete failed")
	}
	if !g.HasEdge(3, 2, 3) {
		t.Fatal("other self loop must survive")
	}
}

func TestVerticesWithLabel(t *testing.T) {
	g := New()
	for i := VertexID(0); i < 10; i++ {
		l := Label(i % 2)
		if err := g.AddVertex(i, l); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(g.VerticesWithLabel(0)); n != 5 {
		t.Fatalf("VerticesWithLabel(0) = %d, want 5", n)
	}
	if n := g.CountVerticesWithLabels([]Label{1}); n != 5 {
		t.Fatalf("CountVerticesWithLabels([1]) = %d, want 5", n)
	}
	if n := g.CountVerticesWithLabels(nil); n != 10 {
		t.Fatalf("CountVerticesWithLabels(nil) = %d, want 10", n)
	}
	if n := g.CountVerticesWithLabels([]Label{0, 1}); n != 0 {
		t.Fatalf("CountVerticesWithLabels([0,1]) = %d, want 0", n)
	}
}

func TestEnsureVertexIdempotent(t *testing.T) {
	g := New()
	if err := g.AddVertex(5, 9); err != nil {
		t.Fatal(err)
	}
	g.EnsureVertex(5, 1) // must not change labels
	if !g.HasLabel(5, 9) || g.HasLabel(5, 1) {
		t.Fatal("EnsureVertex must not relabel an existing vertex")
	}
	g.EnsureVertex(6)
	if !g.HasVertex(6) || len(g.Labels(6)) != 0 {
		t.Fatal("EnsureVertex must create unlabeled vertex")
	}
}

func TestClone(t *testing.T) {
	g := New()
	_ = g.AddVertex(0, 1)
	_ = g.AddVertex(1, 2)
	g.InsertEdge(0, 3, 1)
	g.InsertEdge(1, 4, 0)
	c := g.Clone()
	// Mutating the clone must not affect the original.
	c.InsertEdge(0, 5, 1)
	c.DeleteEdge(0, 3, 1)
	if !g.HasEdge(0, 3, 1) || g.HasEdge(0, 5, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 2 {
		t.Fatalf("edge counts: clone=%d orig=%d, want 2/2", c.NumEdges(), g.NumEdges())
	}
	if !c.HasLabel(0, 1) || !c.HasLabel(1, 2) {
		t.Fatal("clone lost vertex labels")
	}
}

func TestForEachEdgeAndVertex(t *testing.T) {
	g := New()
	g.InsertEdge(0, 0, 1)
	g.InsertEdge(1, 1, 2)
	g.InsertEdge(2, 0, 0)
	seen := map[Edge]bool{}
	g.ForEachEdge(func(e Edge) { seen[e] = true })
	if len(seen) != 3 {
		t.Fatalf("ForEachEdge saw %d edges, want 3", len(seen))
	}
	nv := 0
	g.ForEachVertex(func(VertexID) { nv++ })
	if nv != 3 {
		t.Fatalf("ForEachVertex saw %d, want 3", nv)
	}
	if len(g.Edges()) != 3 {
		t.Fatalf("Edges() len = %d, want 3", len(g.Edges()))
	}
}

// TestRandomInsertDeleteInvariants drives random insert/delete sequences and
// checks that counts, adjacency and the edge set stay consistent.
func TestRandomInsertDeleteInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New()
	ref := map[Edge]bool{}
	for step := 0; step < 5000; step++ {
		e := Edge{
			From:  VertexID(rng.Intn(30)),
			Label: Label(rng.Intn(4)),
			To:    VertexID(rng.Intn(30)),
		}
		if rng.Intn(3) == 0 {
			got := g.DeleteEdge(e.From, e.Label, e.To)
			if got != ref[e] {
				t.Fatalf("step %d: DeleteEdge(%v) = %v, ref %v", step, e, got, ref[e])
			}
			delete(ref, e)
		} else {
			got := g.InsertEdge(e.From, e.Label, e.To)
			if got == ref[e] {
				t.Fatalf("step %d: InsertEdge(%v) = %v but ref presence %v", step, e, got, ref[e])
			}
			ref[e] = true
		}
	}
	if g.NumEdges() != len(ref) {
		t.Fatalf("NumEdges = %d, ref = %d", g.NumEdges(), len(ref))
	}
	for e := range ref {
		if !g.HasEdge(e.From, e.Label, e.To) {
			t.Fatalf("missing edge %v", e)
		}
		found := false
		for _, n := range g.OutNeighbors(e.From, e.Label) {
			if n == e.To {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %v absent from adjacency", e)
		}
	}
	// Per-label edge counts must sum to NumEdges.
	total := 0
	for l := Label(0); l < 4; l++ {
		total += g.EdgeCount(l)
	}
	if total != g.NumEdges() {
		t.Fatalf("sum of per-label counts %d != NumEdges %d", total, g.NumEdges())
	}
}

// Property: inserting then deleting an edge restores HasEdge and counts.
func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	f := func(from, to uint16, l uint8) bool {
		g := New()
		e := Edge{From: VertexID(from), Label: Label(l), To: VertexID(to)}
		before := g.NumEdges()
		if !g.InsertEdge(e.From, e.Label, e.To) {
			return false
		}
		if !g.DeleteEdge(e.From, e.Label, e.To) {
			return false
		}
		return g.NumEdges() == before && !g.HasEdge(e.From, e.Label, e.To)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern("knows")
	b := d.Intern("likes")
	if a == b {
		t.Fatal("distinct names must intern to distinct labels")
	}
	if d.Intern("knows") != a {
		t.Fatal("Intern must be stable")
	}
	if d.Name(a) != "knows" || d.Name(b) != "likes" {
		t.Fatal("Name round trip failed")
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Fatal("Lookup of unknown name must report false")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Name(Label(999)) == "" {
		t.Fatal("Name of unknown label should return a placeholder")
	}
}
