package graph

// Applier streams mutations into a Graph with batch-amortized
// bookkeeping, the recovery-replay counterpart of the engine's batched
// evaluation pipeline (DESIGN.md §12). Compared to calling InsertEdge /
// DeleteEdge per update it:
//
//   - fuses the duplicate/existence probe with the mutation, so the
//     label bucket is located once per edge instead of twice;
//   - skips the redundant endpoint-existence checks InsertEdge pays via
//     EnsureVertex;
//   - defers the per-label edge counters and the global edge count into
//     scratch deltas merged once per Flush.
//
// The graph is fully consistent at every point except the counters
// returned by EdgeCount and NumEdges, which lag until Flush. Callers
// must Flush before handing the graph to any reader of those counters.
// An Applier is scratch, not state: create one per replay (or reuse it
// across batches of the same graph) and do not mix direct counter-
// touching mutations (InsertEdge/DeleteEdge) between Flushes.
type Applier struct {
	g *Graph

	edgeDelta []int   // per-label live-edge delta, indexed by Label
	touched   []Label // labels with a (possibly zero) recorded delta
	edges     int     // pending delta for g.numEdges
}

// NewApplier returns an Applier over g with empty pending deltas.
func NewApplier(g *Graph) *Applier { return &Applier{g: g} }

// bump records a per-label edge-count delta into the scratch array.
func (a *Applier) bump(l Label, d int) {
	if int(l) >= len(a.edgeDelta) {
		nd := make([]int, int(l)+1)
		copy(nd, a.edgeDelta)
		a.edgeDelta = nd
	}
	if a.edgeDelta[l] == 0 {
		a.touched = append(a.touched, l)
	}
	a.edgeDelta[l] += d
}

// ensureData returns the vertex data for v, creating an unlabeled vertex
// if absent (the InsertEdge auto-create rule).
func (a *Applier) ensureData(v VertexID) *vertexData {
	g := a.g
	if int(v) < len(g.verts) {
		if vd := g.verts[v]; vd != nil {
			return vd
		}
	}
	g.grow(v)
	vd := &vertexData{}
	g.verts[v] = vd
	g.numVerts++
	return vd
}

// InsertEdge adds edge (from, l, to), creating missing endpoints as
// unlabeled vertices, and reports whether the edge was newly inserted.
// Counter updates are deferred to Flush.
//
//tf:hotpath
func (a *Applier) InsertEdge(from VertexID, l Label, to VertexID) bool {
	fd := a.ensureData(from)
	td := fd
	if to != from {
		// ensureData only grows g.verts; fd's buckets stay valid.
		td = a.ensureData(to)
	}
	bi := fd.out.find(l)
	ti := td.in.find(l)
	var out, in []VertexID
	if bi >= 0 {
		out = fd.out.lists[bi]
	}
	if ti >= 0 {
		in = td.in.lists[ti]
	}
	// Duplicate probe on the shorter mirror, as in Graph.HasEdge.
	if len(in) < len(out) {
		for _, x := range in {
			if x == from {
				return false
			}
		}
	} else {
		for _, x := range out {
			if x == to {
				return false
			}
		}
	}
	if bi >= 0 {
		fd.out.lists[bi] = append(out, to)
	} else {
		nl := make([]VertexID, 1, 4)
		nl[0] = to
		fd.out.labels = append(fd.out.labels, l)
		fd.out.lists = append(fd.out.lists, nl)
	}
	fd.outDeg++
	if ti >= 0 {
		td.in.lists[ti] = append(in, from)
	} else {
		nl := make([]VertexID, 1, 4)
		nl[0] = from
		td.in.labels = append(td.in.labels, l)
		td.in.lists = append(td.in.lists, nl)
	}
	td.inDeg++
	a.bump(l, 1)
	a.edges++
	return true
}

// DeleteEdge removes edge (from, l, to) and reports whether it existed.
// Counter updates are deferred to Flush; bucket compaction matches
// Graph.DeleteEdge.
//
//tf:hotpath
func (a *Applier) DeleteEdge(from VertexID, l Label, to VertexID) bool {
	g := a.g
	if int(from) >= len(g.verts) || g.verts[from] == nil {
		return false
	}
	fd := g.verts[from]
	if !fd.out.remove(l, to) {
		return false
	}
	fd.outDeg--
	td := g.verts[to]
	td.in.remove(l, from)
	td.inDeg--
	a.bump(l, -1)
	a.edges--
	return true
}

// DeclareVertex creates v with the given labels if absent (the OpVertex
// rule: an existing vertex is left untouched) and reports whether it was
// created.
func (a *Applier) DeclareVertex(v VertexID, labels []Label) bool {
	if a.g.HasVertex(v) {
		return false
	}
	a.g.EnsureVertex(v, labels...)
	return true
}

// Flush merges the pending counter deltas into the graph. Cheap when
// nothing is pending, so callers flush once per batch unconditionally.
func (a *Applier) Flush() {
	g := a.g
	for _, l := range a.touched {
		if d := a.edgeDelta[l]; d != 0 {
			g.bumpEdgeCount(l, d)
			a.edgeDelta[l] = 0
		}
	}
	a.touched = a.touched[:0]
	g.numEdges += a.edges
	a.edges = 0
}
