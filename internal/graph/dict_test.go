package graph

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	names := []string{"person", "follows", "", "likes", "x y z", "follows2"}
	for _, n := range names {
		d.Intern(n)
	}
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDict(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("len %d, want %d", got.Len(), d.Len())
	}
	for i, n := range names {
		l, ok := got.Lookup(n)
		if !ok || l != Label(i) {
			t.Fatalf("Lookup(%q) = %d,%v; want %d,true", n, l, ok, i)
		}
	}
}

func TestDictRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDict().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDict(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("len %d, want 0", got.Len())
	}
}

func TestReadDictErrors(t *testing.T) {
	d := NewDict()
	d.Intern("a")
	d.Intern("bb")
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i++ {
		if _, err := ReadDict(bufio.NewReader(bytes.NewReader(full[:i]))); err == nil {
			t.Errorf("ReadDict of %d-byte prefix should fail", i)
		}
	}
	// Implausible count and duplicate names must be rejected.
	if _, err := ReadDict(bufio.NewReader(strings.NewReader("\xff\xff\xff\xff\x7f"))); err == nil {
		t.Error("huge count should fail")
	}
	var dup bytes.Buffer
	dup.WriteByte(2)
	for i := 0; i < 2; i++ {
		dup.WriteByte(1)
		dup.WriteString("a")
	}
	if _, err := ReadDict(bufio.NewReader(&dup)); err == nil {
		t.Error("duplicate names should fail")
	}
}
