package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := New()
	_ = g.AddVertex(0, 1, 2)
	_ = g.AddVertex(5)
	_ = g.AddVertex(1<<20, 9)
	g.InsertEdge(0, 3, 5)
	g.InsertEdge(5, 0, 1<<20)
	g.InsertEdge(0, 3, 0) // self loop

	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape %d/%d, want %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	g.ForEachEdge(func(e Edge) {
		if !got.HasEdge(e.From, e.Label, e.To) {
			t.Fatalf("edge %v lost", e)
		}
	})
	if !got.HasLabel(0, 1) || !got.HasLabel(0, 2) || !got.HasLabel(1<<20, 9) {
		t.Fatal("labels lost")
	}
	if len(got.Labels(5)) != 0 {
		t.Fatal("unlabeled vertex gained labels")
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nv uint8, ne uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := int(nv%20) + 1
		for v := 0; v < n; v++ {
			_ = g.AddVertex(VertexID(v), Label(rng.Intn(4)))
		}
		for i := 0; i < int(ne); i++ {
			g.InsertEdge(VertexID(rng.Intn(n)), Label(rng.Intn(4)), VertexID(rng.Intn(n)))
		}
		var buf bytes.Buffer
		if g.WriteBinary(&buf) != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.ForEachEdge(func(e Edge) {
			if !got.HasEdge(e.From, e.Label, e.To) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic must fail")
	}
	// Truncated payload.
	g := New()
	_ = g.AddVertex(1, 2)
	g.InsertEdge(1, 0, 2)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 4; cut < len(full)-1; cut++ {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
}

// TestBinaryDeterministic: two graphs holding the same vertex/edge set —
// even when built in different insertion orders — must serialize to the
// same bytes. The durable store's recovery rebuilds adjacency lists in
// file order, so snapshot bytes feed straight into match-emission order.
func TestBinaryDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	type edge struct {
		f, t VertexID
		l    Label
	}
	var edges []edge
	for i := 0; i < 300; i++ {
		edges = append(edges, edge{VertexID(rng.Intn(40)), VertexID(rng.Intn(40)), Label(rng.Intn(4))})
	}
	build := func(perm []int) []byte {
		g := New()
		for v := VertexID(0); v < 40; v++ {
			_ = g.AddVertex(v, Label(v%3))
		}
		for _, i := range perm {
			g.InsertEdge(edges[i].f, edges[i].l, edges[i].t)
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := make([]int, len(edges))
	for i := range base {
		base[i] = i
	}
	want := build(base)
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(edges))
		if got := build(perm); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: serialization depends on insertion order", trial)
		}
	}
}
