package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// TestAdjacencyCompaction pins the deleted-slot recycling contract:
// draining a large per-label adjacency list shrinks its backing array;
// a large emptied bucket is dropped outright, while a small one is kept
// empty so churn around degree zero stays allocation-free.
func TestAdjacencyCompaction(t *testing.T) {
	g := New()
	const n = 1024
	for i := 1; i <= n; i++ {
		if !g.InsertEdge(1, 0, VertexID(1+i)) {
			t.Fatalf("insert %d: duplicate?", i)
		}
	}
	if c := cap(g.verts[1].out.neighbors(0)); c < n {
		t.Fatalf("out cap = %d after %d inserts", c, n)
	}
	for i := 1; i <= n-8; i++ {
		if !g.DeleteEdge(1, 0, VertexID(1+i)) {
			t.Fatalf("delete %d: missing?", i)
		}
	}
	out := g.verts[1].out.neighbors(0)
	if len(out) != 8 {
		t.Fatalf("len = %d, want 8", len(out))
	}
	if cap(out) > 64 {
		t.Fatalf("out cap = %d after draining to 8: backing array not compacted", cap(out))
	}
	for i := n - 7; i <= n; i++ {
		if !g.DeleteEdge(1, 0, VertexID(1+i)) {
			t.Fatalf("delete %d: missing?", i)
		}
	}
	if g.verts[1].out.find(0) >= 0 {
		t.Fatal("large emptied adjacency bucket was not dropped")
	}
	// The in-side singleton buckets are small: they stay, emptied, with
	// their tiny backing arrays ready for reuse.
	for i := 1; i <= n; i++ {
		in := &g.verts[1+i].in
		bi := in.find(0)
		if bi < 0 {
			t.Fatalf("vertex %d dropped its small in-bucket", 1+i)
		}
		if l := in.lists[bi]; len(l) != 0 || cap(l) > adjKeepEmpty {
			t.Fatalf("vertex %d in-bucket len=%d cap=%d, want empty cap<=%d", 1+i, len(l), cap(l), adjKeepEmpty)
		}
	}
	if g.NumEdges() != 0 || g.EdgeCount(0) != 0 {
		t.Fatalf("counters: numEdges=%d edgeCount=%d", g.NumEdges(), g.EdgeCount(0))
	}
}

// TestAdjacencySteadyStateChurn is the regression the compaction exists
// for: long insert/delete churn at a stable live size must not grow the
// adjacency backing array unboundedly.
func TestAdjacencySteadyStateChurn(t *testing.T) {
	g := New()
	const live = 16
	next := VertexID(2)
	var fifo []VertexID
	for i := 0; i < live; i++ {
		g.InsertEdge(1, 0, next)
		fifo = append(fifo, next)
		next++
	}
	for i := 0; i < 20000; i++ {
		g.InsertEdge(1, 0, next)
		fifo = append(fifo, next)
		next++
		g.DeleteEdge(1, 0, fifo[0])
		fifo = fifo[1:]
	}
	out := g.verts[1].out.neighbors(0)
	if len(out) != live {
		t.Fatalf("len = %d, want %d", len(out), live)
	}
	if cap(out) > 4*live {
		t.Fatalf("out cap = %d after 20k churn ops at live size %d: unbounded growth", cap(out), live)
	}
}

// TestApplierMatchesDirectMutation checks the batched Applier produces a
// graph indistinguishable from per-update InsertEdge/DeleteEdge,
// including the counters it defers to Flush.
func TestApplierMatchesDirectMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type op struct {
		del      bool
		from, to VertexID
		l        Label
	}
	var ops []op
	for i := 0; i < 3000; i++ {
		ops = append(ops, op{
			del:  rng.Float64() < 0.4,
			from: VertexID(1 + rng.Intn(40)),
			to:   VertexID(1 + rng.Intn(40)),
			l:    Label(rng.Intn(4)),
		})
	}

	direct := New()
	for _, o := range ops {
		if o.del {
			direct.DeleteEdge(o.from, o.l, o.to)
		} else {
			direct.InsertEdge(o.from, o.l, o.to)
		}
	}

	batched := New()
	ap := NewApplier(batched)
	for i, o := range ops {
		if o.del {
			ap.DeleteEdge(o.from, o.l, o.to)
		} else {
			ap.InsertEdge(o.from, o.l, o.to)
		}
		if i%257 == 0 {
			ap.Flush()
		}
	}
	ap.Flush()

	if direct.NumVertices() != batched.NumVertices() {
		t.Fatalf("NumVertices: direct %d, batched %d", direct.NumVertices(), batched.NumVertices())
	}
	if direct.NumEdges() != batched.NumEdges() {
		t.Fatalf("NumEdges: direct %d, batched %d", direct.NumEdges(), batched.NumEdges())
	}
	for l := Label(0); l < 4; l++ {
		if direct.EdgeCount(l) != batched.EdgeCount(l) {
			t.Fatalf("EdgeCount(%d): direct %d, batched %d", l, direct.EdgeCount(l), batched.EdgeCount(l))
		}
	}
	sorted := func(vs []VertexID) []VertexID {
		cp := append([]VertexID(nil), vs...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		return cp
	}
	for v := VertexID(1); v <= 40; v++ {
		for l := Label(0); l < 4; l++ {
			d := sorted(direct.OutNeighbors(v, l))
			b := sorted(batched.OutNeighbors(v, l))
			if len(d) != len(b) {
				t.Fatalf("OutNeighbors(%d,%d): direct %v, batched %v", v, l, d, b)
			}
			for i := range d {
				if d[i] != b[i] {
					t.Fatalf("OutNeighbors(%d,%d): direct %v, batched %v", v, l, d, b)
				}
			}
		}
	}
}
