// Package graph implements the dynamic labeled directed multigraph that
// TurboFlux and all baseline engines operate on.
//
// The graph stores a set of vertices, each carrying a fixed set of vertex
// labels, and a set of directed edges (from, label, to). Edges live only in
// the per-vertex, per-label adjacency lists — duplicate detection, HasEdge
// and deletion scan the from-side list for the edge's label, so insertion
// and deletion are O(deg_l) on that list (short for the paper's workloads)
// with no global edge index to hash into on the update hot path. Adjacency
// is indexed per edge label in both directions so that engines can
// enumerate out- or in-neighbors reachable through a specific label without
// scanning.
//
// Vertex labels are fixed once the vertex is created: this matches the RDF
// datasets used by the paper (LSBench, Netflow), where the type of an entity
// never changes while edges stream in and out.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a data or query vertex. IDs are dense small integers
// assigned by the caller (workload generators allocate them sequentially).
type VertexID uint32

// NoVertex is a sentinel for "no vertex"; it is also used by the engine as
// the artificial DCG source vertex v*_s.
const NoVertex VertexID = ^VertexID(0)

// Label is an interned vertex or edge label. Vertex labels and edge labels
// live in separate namespaces (a Dict per namespace).
type Label uint16

// Edge is a directed labeled edge (From --Label--> To).
type Edge struct {
	From  VertexID
	Label Label
	To    VertexID
}

// String formats the edge as "from -l-> to".
func (e Edge) String() string {
	return fmt.Sprintf("%d -%d-> %d", e.From, e.Label, e.To)
}

// Reverse returns the edge with endpoints swapped (same label).
func (e Edge) Reverse() Edge {
	return Edge{From: e.To, Label: e.Label, To: e.From}
}

type vertexData struct {
	labels []Label // sorted, deduplicated; empty means "unlabeled vertex"
	out    map[Label][]VertexID
	in     map[Label][]VertexID
	outDeg int
	inDeg  int
}

// Graph is a dynamic labeled directed multigraph. The zero value is not
// usable; call New.
//
// Graph is not safe for concurrent mutation; the paper's system (and every
// baseline) is single-threaded per stream, and so are we.
type Graph struct {
	verts     []*vertexData        // indexed by VertexID; nil slot = vertex absent
	byLabel   map[Label][]VertexID // vertex label -> vertices carrying it (append-only)
	edgeCount map[Label]int        // edge label -> live edge count
	numVerts  int
	numEdges  int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		byLabel:   make(map[Label][]VertexID),
		edgeCount: make(map[Label]int),
	}
}

// NumVertices reports the number of live vertices.
func (g *Graph) NumVertices() int { return g.numVerts }

// NumEdges reports the number of live edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// HasVertex reports whether v exists.
func (g *Graph) HasVertex(v VertexID) bool {
	return int(v) < len(g.verts) && g.verts[v] != nil
}

// AddVertex creates vertex v with the given labels. Labels are sorted and
// deduplicated. Adding an existing vertex is an error (labels are immutable
// after creation); use EnsureVertex for idempotent creation of unlabeled
// vertices.
func (g *Graph) AddVertex(v VertexID, labels ...Label) error {
	if g.HasVertex(v) {
		return fmt.Errorf("graph: vertex %d already exists", v)
	}
	g.grow(v)
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	ls = dedupLabels(ls)
	// Adjacency maps are allocated lazily by the first incident edge:
	// reads on the nil maps are valid, and vertex-heavy streams (bulk
	// declarations, WAL replay) skip two map allocations per vertex.
	g.verts[v] = &vertexData{labels: ls}
	g.numVerts++
	for _, l := range ls {
		g.byLabel[l] = append(g.byLabel[l], v)
	}
	return nil
}

// EnsureVertex creates v with the given labels if it does not exist yet.
// If v already exists its labels are left untouched.
func (g *Graph) EnsureVertex(v VertexID, labels ...Label) {
	if !g.HasVertex(v) {
		// AddVertex cannot fail here: we just checked existence.
		_ = g.AddVertex(v, labels...)
	}
}

func (g *Graph) grow(v VertexID) {
	if int(v) >= len(g.verts) {
		n := int(v) + 1
		if n < 2*len(g.verts) {
			n = 2 * len(g.verts) // amortize repeated growth
		}
		nv := make([]*vertexData, n)
		copy(nv, g.verts)
		g.verts = nv
	}
}

func dedupLabels(ls []Label) []Label {
	if len(ls) < 2 {
		return ls
	}
	w := 1
	for i := 1; i < len(ls); i++ {
		if ls[i] != ls[i-1] {
			ls[w] = ls[i]
			w++
		}
	}
	return ls[:w]
}

// Labels returns the sorted label set of v (nil if v is absent or
// unlabeled). The returned slice must not be mutated.
func (g *Graph) Labels(v VertexID) []Label {
	if !g.HasVertex(v) {
		return nil
	}
	return g.verts[v].labels
}

// HasLabel reports whether v carries label l.
func (g *Graph) HasLabel(v VertexID, l Label) bool {
	if !g.HasVertex(v) {
		return false
	}
	ls := g.verts[v].labels
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	return i < len(ls) && ls[i] == l
}

// HasAllLabels reports whether required ⊆ labels(v). An empty required set
// matches every existing vertex (the homomorphism condition L(u) ⊆ L(m(u))).
func (g *Graph) HasAllLabels(v VertexID, required []Label) bool {
	if !g.HasVertex(v) {
		return false
	}
	ls := g.verts[v].labels
	i := 0
	for _, r := range required {
		for i < len(ls) && ls[i] < r {
			i++
		}
		if i >= len(ls) || ls[i] != r {
			return false
		}
	}
	return true
}

// VerticesWithLabel returns the vertices carrying label l. The slice is
// owned by the graph and must not be mutated. Because vertex labels are
// immutable, the index is append-only and always exact.
func (g *Graph) VerticesWithLabel(l Label) []VertexID {
	return g.byLabel[l]
}

// CountVerticesWithLabels returns the number of vertices whose label set is
// a superset of required. For an empty required set it returns NumVertices.
func (g *Graph) CountVerticesWithLabels(required []Label) int {
	if len(required) == 0 {
		return g.numVerts
	}
	// Scan the candidates of the rarest label.
	rare := required[0]
	for _, l := range required[1:] {
		if len(g.byLabel[l]) < len(g.byLabel[rare]) {
			rare = l
		}
	}
	n := 0
	for _, v := range g.byLabel[rare] {
		if g.HasAllLabels(v, required) {
			n++
		}
	}
	return n
}

// InsertEdge adds edge (from, l, to), creating missing endpoints as
// unlabeled vertices. It reports whether the edge was newly inserted
// (false for duplicates, which leave the graph unchanged).
func (g *Graph) InsertEdge(from VertexID, l Label, to VertexID) bool {
	if g.HasEdge(from, l, to) {
		return false
	}
	g.EnsureVertex(from)
	g.EnsureVertex(to)
	fd, td := g.verts[from], g.verts[to]
	if fd.out == nil {
		fd.out = make(map[Label][]VertexID, 2)
	}
	fd.out[l] = append(fd.out[l], to)
	fd.outDeg++
	if td.in == nil {
		td.in = make(map[Label][]VertexID, 2)
	}
	td.in[l] = append(td.in[l], from)
	td.inDeg++
	g.edgeCount[l]++
	g.numEdges++
	return true
}

// DeleteEdge removes edge (from, l, to). It reports whether the edge
// existed.
func (g *Graph) DeleteEdge(from VertexID, l Label, to VertexID) bool {
	if !g.HasEdge(from, l, to) {
		return false
	}
	fd, td := g.verts[from], g.verts[to]
	storeAdj(fd.out, l, removeFirst(fd.out[l], to))
	fd.outDeg--
	storeAdj(td.in, l, removeFirst(td.in[l], from))
	td.inDeg--
	g.edgeCount[l]--
	g.numEdges--
	return true
}

func removeFirst(s []VertexID, v VertexID) []VertexID {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// adjShrinkMin is the smallest backing-array capacity delete compaction
// bothers with; below it the waste is a few words per list.
const adjShrinkMin = 16

// storeAdj writes a per-label adjacency list back after a removal,
// recycling deleted-edge slots: an emptied list's map entry is dropped
// (releasing its backing array), and a list whose live length has fallen
// to a quarter of its capacity is reallocated at half capacity. The
// swap-remove in removeFirst already bounds length; this bounds the
// retained capacity too, so long insert/delete churn converges to the
// steady-state working set instead of pinning the high-water mark. The
// 4-to-1 shrink trigger against the 2-to-1 new capacity leaves headroom,
// so churn around a stable degree cannot thrash between shrinking and
// regrowing.
func storeAdj(m map[Label][]VertexID, l Label, s []VertexID) {
	switch {
	case len(s) == 0:
		delete(m, l)
	case cap(s) >= adjShrinkMin && len(s)*4 <= cap(s):
		ns := make([]VertexID, len(s), cap(s)/2)
		copy(ns, s)
		m[l] = ns
	default:
		m[l] = s
	}
}

// HasEdge reports whether edge (from, l, to) exists.
func (g *Graph) HasEdge(from VertexID, l Label, to VertexID) bool {
	if !g.HasVertex(from) {
		return false
	}
	for _, x := range g.verts[from].out[l] {
		if x == to {
			return true
		}
	}
	return false
}

// OutNeighbors returns the targets of edges from v with label l. The slice
// is owned by the graph; callers must not mutate it and must not hold it
// across graph mutations.
func (g *Graph) OutNeighbors(v VertexID, l Label) []VertexID {
	if !g.HasVertex(v) {
		return nil
	}
	return g.verts[v].out[l]
}

// InNeighbors returns the sources of edges into v with label l, with the
// same ownership rules as OutNeighbors.
func (g *Graph) InNeighbors(v VertexID, l Label) []VertexID {
	if !g.HasVertex(v) {
		return nil
	}
	return g.verts[v].in[l]
}

// OutDegree returns the total out-degree of v across all labels.
func (g *Graph) OutDegree(v VertexID) int {
	if !g.HasVertex(v) {
		return 0
	}
	return g.verts[v].outDeg
}

// InDegree returns the total in-degree of v across all labels.
func (g *Graph) InDegree(v VertexID) int {
	if !g.HasVertex(v) {
		return 0
	}
	return g.verts[v].inDeg
}

// Degree returns in-degree + out-degree of v.
func (g *Graph) Degree(v VertexID) int { return g.InDegree(v) + g.OutDegree(v) }

// EdgeCount returns the number of live edges with label l.
func (g *Graph) EdgeCount(l Label) int { return g.edgeCount[l] }

// ForEachOutLabel calls fn for every (label, neighbors) pair of v's
// outgoing adjacency. Neighbor slices follow OutNeighbors ownership rules.
func (g *Graph) ForEachOutLabel(v VertexID, fn func(l Label, nbrs []VertexID)) {
	if !g.HasVertex(v) {
		return
	}
	for l, nbrs := range g.verts[v].out {
		if len(nbrs) > 0 {
			fn(l, nbrs)
		}
	}
}

// ForEachInLabel calls fn for every (label, neighbors) pair of v's incoming
// adjacency.
func (g *Graph) ForEachInLabel(v VertexID, fn func(l Label, nbrs []VertexID)) {
	if !g.HasVertex(v) {
		return
	}
	for l, nbrs := range g.verts[v].in {
		if len(nbrs) > 0 {
			fn(l, nbrs)
		}
	}
}

// ForEachEdge calls fn for every live edge. Iteration order is unspecified.
// fn must not mutate the graph.
func (g *Graph) ForEachEdge(fn func(Edge)) {
	for id, vd := range g.verts {
		if vd == nil {
			continue
		}
		for l, nbrs := range vd.out {
			for _, to := range nbrs {
				fn(Edge{From: VertexID(id), Label: l, To: to})
			}
		}
	}
}

// Edges returns all live edges in an unspecified order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.numEdges)
	g.ForEachEdge(func(e Edge) { es = append(es, e) })
	return es
}

// ForEachVertex calls fn for every live vertex.
func (g *Graph) ForEachVertex(fn func(VertexID)) {
	for id, vd := range g.verts {
		if vd != nil {
			fn(VertexID(id))
		}
	}
}

// Clone returns a deep copy of the graph. Used by snapshot-based baselines
// (IncIsoMat, naive recompute) to evaluate "before" and "after" states.
func (g *Graph) Clone() *Graph {
	c := New()
	c.verts = make([]*vertexData, len(g.verts))
	for id, vd := range g.verts {
		if vd == nil {
			continue
		}
		nd := &vertexData{
			labels: vd.labels, // immutable: safe to share
			out:    make(map[Label][]VertexID, len(vd.out)),
			in:     make(map[Label][]VertexID, len(vd.in)),
			outDeg: vd.outDeg,
			inDeg:  vd.inDeg,
		}
		for l, nbrs := range vd.out {
			nd.out[l] = append([]VertexID(nil), nbrs...)
		}
		for l, nbrs := range vd.in {
			nd.in[l] = append([]VertexID(nil), nbrs...)
		}
		c.verts[id] = nd
	}
	c.numVerts = g.numVerts
	c.numEdges = g.numEdges
	for l, vs := range g.byLabel {
		c.byLabel[l] = append([]VertexID(nil), vs...)
	}
	for l, n := range g.edgeCount {
		c.edgeCount[l] = n
	}
	return c
}
