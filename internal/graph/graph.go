// Package graph implements the dynamic labeled directed multigraph that
// TurboFlux and all baseline engines operate on.
//
// The graph stores a set of vertices, each carrying a fixed set of vertex
// labels, and a set of directed edges (from, label, to). Edges live only in
// the per-vertex, per-label adjacency buckets — duplicate detection, HasEdge
// and deletion scan the from-side bucket for the edge's label, so insertion
// and deletion are O(deg_l) on that bucket (short for the paper's workloads)
// with no global edge index to hash into on the update hot path. Adjacency
// is indexed per edge label in both directions so that engines can
// enumerate out- or in-neighbors reachable through a specific label without
// scanning.
//
// Data layout (DESIGN.md §16): every hot-path structure is a dense slice.
// Per-vertex adjacency is label-bucketed — a short parallel pair of
// (label, neighbor-slice) arrays scanned linearly, since a vertex touches
// few distinct edge labels — and the per-label vertex index and edge
// counters are flat slices indexed by the interned Label. No hash map is
// touched anywhere on the insert/delete/enumerate path, and iteration
// order is deterministic (a property the emission-determinism contract
// leans on; Go map iteration is randomized by design).
//
// Vertex labels are fixed once the vertex is created: this matches the RDF
// datasets used by the paper (LSBench, Netflow), where the type of an entity
// never changes while edges stream in and out.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a data or query vertex. IDs are dense small integers
// assigned by the caller (workload generators allocate them sequentially).
type VertexID uint32

// NoVertex is a sentinel for "no vertex"; it is also used by the engine as
// the artificial DCG source vertex v*_s.
const NoVertex VertexID = ^VertexID(0)

// Label is an interned vertex or edge label. Vertex labels and edge labels
// live in separate namespaces (a Dict per namespace).
type Label uint16

// Edge is a directed labeled edge (From --Label--> To).
type Edge struct {
	From  VertexID
	Label Label
	To    VertexID
}

// String formats the edge as "from -l-> to".
func (e Edge) String() string {
	return fmt.Sprintf("%d -%d-> %d", e.From, e.Label, e.To)
}

// Reverse returns the edge with endpoints swapped (same label).
func (e Edge) Reverse() Edge {
	return Edge{From: e.To, Label: e.Label, To: e.From}
}

// halfAdj is one direction of a vertex's adjacency, bucketed by edge
// label: lists[i] holds the neighbors reachable through labels[i]. The
// bucket array is unordered and scanned linearly — a vertex touches few
// distinct edge labels, so the scan is a handful of 2-byte compares in
// one cache line, cheaper than hashing into a map. An emptied bucket is
// swap-removed so long-gone labels never lengthen the scan.
type halfAdj struct {
	labels []Label
	lists  [][]VertexID
}

// find returns the bucket index of label l, or -1.
//
//tf:hotpath
func (a *halfAdj) find(l Label) int {
	for i, bl := range a.labels {
		if bl == l {
			return i
		}
	}
	return -1
}

// neighbors returns the neighbor slice for label l (nil if no bucket).
//
//tf:hotpath
func (a *halfAdj) neighbors(l Label) []VertexID {
	if i := a.find(l); i >= 0 {
		return a.lists[i]
	}
	return nil
}

// add appends neighbor v to the bucket for label l, creating the bucket
// on first use.
//
//tf:hotpath
func (a *halfAdj) add(l Label, v VertexID) {
	if i := a.find(l); i >= 0 {
		a.lists[i] = append(a.lists[i], v)
		return
	}
	a.labels = append(a.labels, l)
	nl := make([]VertexID, 1, 4) // headroom: most vertices grow past 1 neighbor
	nl[0] = v
	a.lists = append(a.lists, nl)
}

// adjShrinkMin is the smallest backing-array capacity delete compaction
// bothers with; below it the waste is a few words per list.
const adjShrinkMin = 16

// adjKeepEmpty is the largest backing-array capacity an emptied bucket
// retains for reuse; a larger one is dropped to release its memory.
// Matches the capacity add gives a fresh bucket, so churn around degree
// zero settles into one retained 4-slot array per touched label.
const adjKeepEmpty = 4

// remove deletes the first occurrence of v from the bucket for label l
// and reports whether it was present, recycling deleted-edge slots: a
// list whose live length has fallen to a quarter of its capacity is
// reallocated at half capacity, and an emptied bucket is either dropped
// (releasing a large backing array) or kept empty (a small one), so the
// next insert of that label reuses it without allocating — delete-heavy
// churn around zero costs no allocation in steady state. The swap-remove
// bounds length; the shrink bounds the retained capacity; together long
// insert/delete churn converges to the steady-state working set instead
// of pinning the high-water mark. The 4-to-1 shrink trigger against the
// 2-to-1 new capacity leaves headroom, so churn around a stable degree
// cannot thrash between shrinking and regrowing.
//
//tf:hotpath
func (a *halfAdj) remove(l Label, v VertexID) bool {
	bi := a.find(l)
	if bi < 0 {
		return false
	}
	s := a.lists[bi]
	for i, x := range s {
		if x != v {
			continue
		}
		s[i] = s[len(s)-1]
		s = s[:len(s)-1]
		switch {
		case len(s) == 0 && cap(s) > adjKeepEmpty:
			// Drop the bucket: swap-remove keeps the scan short and the
			// backing array is released.
			last := len(a.labels) - 1
			a.labels[bi] = a.labels[last]
			a.lists[bi] = a.lists[last]
			a.labels = a.labels[:last]
			a.lists[last] = nil
			a.lists = a.lists[:last]
		case cap(s) >= adjShrinkMin && len(s)*4 <= cap(s):
			ns := make([]VertexID, len(s), cap(s)/2)
			copy(ns, s)
			a.lists[bi] = ns
		default:
			a.lists[bi] = s
		}
		return true
	}
	return false
}

type vertexData struct {
	labels []Label // sorted, deduplicated; empty means "unlabeled vertex"
	out    halfAdj
	in     halfAdj
	outDeg int
	inDeg  int
}

// Graph is a dynamic labeled directed multigraph. The zero value is not
// usable; call New.
//
// Graph is not safe for concurrent mutation; the paper's system (and every
// baseline) is single-threaded per stream, and so are we.
type Graph struct {
	verts     []*vertexData // indexed by VertexID; nil slot = vertex absent
	byLabel   [][]VertexID  // vertex label -> vertices carrying it (append-only), indexed by Label
	edgeCount []int         // edge label -> live edge count, indexed by Label
	numVerts  int
	numEdges  int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// NumVertices reports the number of live vertices.
func (g *Graph) NumVertices() int { return g.numVerts }

// NumEdges reports the number of live edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// HasVertex reports whether v exists.
func (g *Graph) HasVertex(v VertexID) bool {
	return int(v) < len(g.verts) && g.verts[v] != nil
}

// AddVertex creates vertex v with the given labels. Labels are sorted and
// deduplicated. Adding an existing vertex is an error (labels are immutable
// after creation); use EnsureVertex for idempotent creation of unlabeled
// vertices.
func (g *Graph) AddVertex(v VertexID, labels ...Label) error {
	if g.HasVertex(v) {
		return fmt.Errorf("graph: vertex %d already exists", v)
	}
	g.grow(v)
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	ls = dedupLabels(ls)
	// Adjacency buckets are allocated lazily by the first incident edge:
	// vertex-heavy streams (bulk declarations, WAL replay) pay nothing
	// per vertex beyond the vertexData itself.
	g.verts[v] = &vertexData{labels: ls}
	g.numVerts++
	for _, l := range ls {
		if int(l) >= len(g.byLabel) {
			nb := make([][]VertexID, int(l)+1)
			copy(nb, g.byLabel)
			g.byLabel = nb
		}
		g.byLabel[l] = append(g.byLabel[l], v)
	}
	return nil
}

// EnsureVertex creates v with the given labels if it does not exist yet.
// If v already exists its labels are left untouched.
func (g *Graph) EnsureVertex(v VertexID, labels ...Label) {
	if !g.HasVertex(v) {
		// AddVertex cannot fail here: we just checked existence.
		_ = g.AddVertex(v, labels...)
	}
}

func (g *Graph) grow(v VertexID) {
	if int(v) >= len(g.verts) {
		n := int(v) + 1
		if n < 2*len(g.verts) {
			n = 2 * len(g.verts) // amortize repeated growth
		}
		nv := make([]*vertexData, n)
		copy(nv, g.verts)
		g.verts = nv
	}
}

func dedupLabels(ls []Label) []Label {
	if len(ls) < 2 {
		return ls
	}
	w := 1
	for i := 1; i < len(ls); i++ {
		if ls[i] != ls[i-1] {
			ls[w] = ls[i]
			w++
		}
	}
	return ls[:w]
}

// Labels returns the sorted label set of v (nil if v is absent or
// unlabeled). The returned slice must not be mutated.
func (g *Graph) Labels(v VertexID) []Label {
	if !g.HasVertex(v) {
		return nil
	}
	return g.verts[v].labels
}

// HasLabel reports whether v carries label l.
func (g *Graph) HasLabel(v VertexID, l Label) bool {
	if !g.HasVertex(v) {
		return false
	}
	ls := g.verts[v].labels
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	return i < len(ls) && ls[i] == l
}

// HasAllLabels reports whether required ⊆ labels(v). An empty required set
// matches every existing vertex (the homomorphism condition L(u) ⊆ L(m(u))).
func (g *Graph) HasAllLabels(v VertexID, required []Label) bool {
	if !g.HasVertex(v) {
		return false
	}
	ls := g.verts[v].labels
	i := 0
	for _, r := range required {
		for i < len(ls) && ls[i] < r {
			i++
		}
		if i >= len(ls) || ls[i] != r {
			return false
		}
	}
	return true
}

// VerticesWithLabel returns the vertices carrying label l. The slice is
// owned by the graph and must not be mutated. Because vertex labels are
// immutable, the index is append-only and always exact.
func (g *Graph) VerticesWithLabel(l Label) []VertexID {
	if int(l) >= len(g.byLabel) {
		return nil
	}
	return g.byLabel[l]
}

// CountVerticesWithLabels returns the number of vertices whose label set is
// a superset of required. For an empty required set it returns NumVertices.
func (g *Graph) CountVerticesWithLabels(required []Label) int {
	if len(required) == 0 {
		return g.numVerts
	}
	// Scan the candidates of the rarest label.
	rare := required[0]
	for _, l := range required[1:] {
		if len(g.VerticesWithLabel(l)) < len(g.VerticesWithLabel(rare)) {
			rare = l
		}
	}
	n := 0
	for _, v := range g.VerticesWithLabel(rare) {
		if g.HasAllLabels(v, required) {
			n++
		}
	}
	return n
}

// bumpEdgeCount adjusts the live-edge counter of label l by d.
func (g *Graph) bumpEdgeCount(l Label, d int) {
	if int(l) >= len(g.edgeCount) {
		nc := make([]int, int(l)+1)
		copy(nc, g.edgeCount)
		g.edgeCount = nc
	}
	g.edgeCount[l] += d
}

// InsertEdge adds edge (from, l, to), creating missing endpoints as
// unlabeled vertices. It reports whether the edge was newly inserted
// (false for duplicates, which leave the graph unchanged).
//
//tf:hotpath
func (g *Graph) InsertEdge(from VertexID, l Label, to VertexID) bool {
	if g.HasEdge(from, l, to) {
		return false
	}
	g.EnsureVertex(from)
	g.EnsureVertex(to)
	fd, td := g.verts[from], g.verts[to]
	fd.out.add(l, to)
	fd.outDeg++
	td.in.add(l, from)
	td.inDeg++
	g.bumpEdgeCount(l, 1)
	g.numEdges++
	return true
}

// DeleteEdge removes edge (from, l, to). It reports whether the edge
// existed.
//
//tf:hotpath
func (g *Graph) DeleteEdge(from VertexID, l Label, to VertexID) bool {
	if !g.HasVertex(from) || !g.HasVertex(to) {
		return false
	}
	fd, td := g.verts[from], g.verts[to]
	if !fd.out.remove(l, to) {
		return false
	}
	fd.outDeg--
	td.in.remove(l, from)
	td.inDeg--
	g.bumpEdgeCount(l, -1)
	g.numEdges--
	return true
}

// HasEdge reports whether edge (from, l, to) exists.
//
//tf:hotpath
func (g *Graph) HasEdge(from VertexID, l Label, to VertexID) bool {
	if !g.HasVertex(from) || !g.HasVertex(to) {
		return false
	}
	// The edge is mirrored in both half-adjacencies; probe the shorter
	// side so dup checks against a hub vertex stay cheap.
	out := g.verts[from].out.neighbors(l)
	in := g.verts[to].in.neighbors(l)
	if len(in) < len(out) {
		for _, x := range in {
			if x == from {
				return true
			}
		}
		return false
	}
	for _, x := range out {
		if x == to {
			return true
		}
	}
	return false
}

// OutNeighbors returns the targets of edges from v with label l. The slice
// is owned by the graph; callers must not mutate it and must not hold it
// across graph mutations.
//
//tf:hotpath
func (g *Graph) OutNeighbors(v VertexID, l Label) []VertexID {
	if !g.HasVertex(v) {
		return nil
	}
	return g.verts[v].out.neighbors(l)
}

// InNeighbors returns the sources of edges into v with label l, with the
// same ownership rules as OutNeighbors.
//
//tf:hotpath
func (g *Graph) InNeighbors(v VertexID, l Label) []VertexID {
	if !g.HasVertex(v) {
		return nil
	}
	return g.verts[v].in.neighbors(l)
}

// OutDegree returns the total out-degree of v across all labels.
func (g *Graph) OutDegree(v VertexID) int {
	if !g.HasVertex(v) {
		return 0
	}
	return g.verts[v].outDeg
}

// InDegree returns the total in-degree of v across all labels.
func (g *Graph) InDegree(v VertexID) int {
	if !g.HasVertex(v) {
		return 0
	}
	return g.verts[v].inDeg
}

// Degree returns in-degree + out-degree of v.
func (g *Graph) Degree(v VertexID) int { return g.InDegree(v) + g.OutDegree(v) }

// EdgeCount returns the number of live edges with label l.
func (g *Graph) EdgeCount(l Label) int {
	if int(l) >= len(g.edgeCount) {
		return 0
	}
	return g.edgeCount[l]
}

// ForEachOutLabel calls fn for every (label, neighbors) pair of v's
// outgoing adjacency, in bucket order (deterministic for a given update
// history). Neighbor slices follow OutNeighbors ownership rules.
func (g *Graph) ForEachOutLabel(v VertexID, fn func(l Label, nbrs []VertexID)) {
	if !g.HasVertex(v) {
		return
	}
	a := &g.verts[v].out
	for i, l := range a.labels {
		if len(a.lists[i]) > 0 {
			fn(l, a.lists[i])
		}
	}
}

// ForEachInLabel calls fn for every (label, neighbors) pair of v's incoming
// adjacency, in bucket order.
func (g *Graph) ForEachInLabel(v VertexID, fn func(l Label, nbrs []VertexID)) {
	if !g.HasVertex(v) {
		return
	}
	a := &g.verts[v].in
	for i, l := range a.labels {
		if len(a.lists[i]) > 0 {
			fn(l, a.lists[i])
		}
	}
}

// ForEachEdge calls fn for every live edge, in (from-vertex, bucket,
// insertion) order — deterministic for a given update history, which the
// snapshot/serialization cold paths rely on. fn must not mutate the graph.
func (g *Graph) ForEachEdge(fn func(Edge)) {
	for id, vd := range g.verts {
		if vd == nil {
			continue
		}
		for i, l := range vd.out.labels {
			for _, to := range vd.out.lists[i] {
				fn(Edge{From: VertexID(id), Label: l, To: to})
			}
		}
	}
}

// Edges returns all live edges in ForEachEdge order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.numEdges)
	g.ForEachEdge(func(e Edge) { es = append(es, e) })
	return es
}

// ForEachVertex calls fn for every live vertex.
func (g *Graph) ForEachVertex(fn func(VertexID)) {
	for id, vd := range g.verts {
		if vd != nil {
			fn(VertexID(id))
		}
	}
}

// cloneHalf deep-copies one adjacency direction.
func cloneHalf(a *halfAdj) halfAdj {
	c := halfAdj{
		labels: append([]Label(nil), a.labels...),
		lists:  make([][]VertexID, len(a.lists)),
	}
	for i, nbrs := range a.lists {
		c.lists[i] = append([]VertexID(nil), nbrs...)
	}
	return c
}

// Clone returns a deep copy of the graph. Used by snapshot-based baselines
// (IncIsoMat, naive recompute) to evaluate "before" and "after" states.
func (g *Graph) Clone() *Graph {
	c := New()
	c.verts = make([]*vertexData, len(g.verts))
	for id, vd := range g.verts {
		if vd == nil {
			continue
		}
		c.verts[id] = &vertexData{
			labels: vd.labels, // immutable: safe to share
			out:    cloneHalf(&vd.out),
			in:     cloneHalf(&vd.in),
			outDeg: vd.outDeg,
			inDeg:  vd.inDeg,
		}
	}
	c.numVerts = g.numVerts
	c.numEdges = g.numEdges
	c.byLabel = make([][]VertexID, len(g.byLabel))
	for l, vs := range g.byLabel {
		if len(vs) > 0 {
			c.byLabel[l] = append([]VertexID(nil), vs...)
		}
	}
	c.edgeCount = append([]int(nil), g.edgeCount...)
	return c
}
