package turboflux

import (
	"bytes"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	vd, ed := NewDict(), NewDict()
	person := vd.Intern("Person")
	account := vd.Intern("Account")
	owns := ed.Intern("owns")
	pays := ed.Intern("pays")

	g := NewGraph()
	g.EnsureVertex(1, person)
	g.EnsureVertex(2, account)
	g.EnsureVertex(3, account)
	g.InsertEdge(1, owns, 2)

	// u0(Person) -owns-> u1(Account) -pays-> u2(Account)
	q := NewQuery(3)
	q.SetLabels(0, person)
	q.SetLabels(1, account)
	q.SetLabels(2, account)
	if err := q.AddEdge(0, owns, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(1, pays, 2); err != nil {
		t.Fatal(err)
	}

	var events []string
	eng, err := NewEngine(g, q, Options{
		OnMatch: func(positive bool, m []VertexID) {
			if positive {
				events = append(events, "+")
			} else {
				events = append(events, "-")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.InitialMatches(); n != 0 {
		t.Fatalf("initial = %d", n)
	}
	n, err := eng.Insert(2, pays, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("insert matches = %d, want 1", n)
	}
	n, err = eng.Delete(1, owns, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delete matches = %d, want 1", n)
	}
	st := eng.Stats()
	if st.PositiveMatches != 1 || st.NegativeMatches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IntermediateBytes < 0 || st.DCGEdges < 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(events) != 2 || events[0] != "+" || events[1] != "-" {
		t.Fatalf("events = %v", events)
	}
	if eng.Graph().NumEdges() != 1 {
		t.Fatalf("graph edges = %d", eng.Graph().NumEdges())
	}
}

func TestPublicAPIIsomorphism(t *testing.T) {
	g := NewGraph()
	g.InsertEdge(0, 1, 1)
	q := NewQuery(3)
	_ = q.AddEdge(0, 1, 1)
	_ = q.AddEdge(1, 1, 2)
	eng, err := NewEngine(g, q, Options{Semantics: Isomorphism})
	if err != nil {
		t.Fatal(err)
	}
	// 1 -> 0 closes a 2-cycle: homomorphism would find 0,1,0 and 1,0,1;
	// isomorphism finds none.
	n, err := eng.Insert(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("iso matches = %d, want 0", n)
	}
}

func TestPublicAPIStreamRoundTrip(t *testing.T) {
	ups := []Update{
		DeclareVertex(7, 1),
		Insert(7, 0, 8),
		Delete(7, 0, 8),
	}
	var buf bytes.Buffer
	if err := EncodeStream(&buf, ups); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Edge != ups[1].Edge {
		t.Fatalf("round trip = %+v", got)
	}
	g := NewGraph()
	q := NewQuery(2)
	_ = q.AddEdge(0, 0, 1)
	eng, err := NewEngine(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total, err := eng.ApplyAll(got)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 { // one positive for the insert, one negative for the delete
		t.Fatalf("ApplyAll total = %d, want 2", total)
	}
}

func TestParseQueryEndToEnd(t *testing.T) {
	vd, ed := NewDict(), NewDict()
	q, names, err := ParseQuery("MATCH (a:Person)-[:pays]->(b:Person)", vd, ed)
	if err != nil {
		t.Fatal(err)
	}
	person, _ := vd.Lookup("Person")
	pays, _ := ed.Lookup("pays")
	g := NewGraph()
	g.EnsureVertex(1, person)
	g.EnsureVertex(2, person)
	eng, err := NewEngine(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := eng.Insert(1, pays, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("matches = %d, want 1", n)
	}
	if _, ok := names["a"]; !ok {
		t.Fatal("names missing a")
	}
	if _, _, err := ParseQuery("(a)-[", vd, ed); err == nil {
		t.Fatal("bad pattern must error")
	}
}

func TestNewEngineErrors(t *testing.T) {
	if _, err := NewEngine(NewGraph(), NewQuery(0), Options{}); err == nil {
		t.Fatal("invalid query must error")
	}
}
