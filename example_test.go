package turboflux_test

import (
	"fmt"

	"turboflux"
)

// The basic loop: load g0, register a query, stream updates, get matches.
func ExampleEngine() {
	const person, account turboflux.Label = 0, 1
	const owns, pays turboflux.Label = 0, 1

	g := turboflux.NewGraph()
	g.EnsureVertex(1, person)
	g.EnsureVertex(10, account)
	g.EnsureVertex(20, account)
	g.InsertEdge(1, owns, 10)

	q := turboflux.NewQuery(3)
	q.SetLabels(0, person)
	q.SetLabels(1, account)
	q.SetLabels(2, account)
	_ = q.AddEdge(0, owns, 1)
	_ = q.AddEdge(1, pays, 2)

	eng, _ := turboflux.NewEngine(g, q, turboflux.Options{
		OnMatch: func(positive bool, m []turboflux.VertexID) {
			fmt.Printf("positive=%v person=%d account=%d payee=%d\n",
				positive, m[0], m[1], m[2])
		},
	})
	_, _ = eng.Insert(10, pays, 20)
	_, _ = eng.Delete(10, pays, 20)
	// Output:
	// positive=true person=1 account=10 payee=20
	// positive=false person=1 account=10 payee=20
}

// Queries can be written as Cypher-like patterns.
func ExampleParseQuery() {
	vd, ed := turboflux.NewDict(), turboflux.NewDict()
	q, names, err := turboflux.ParseQuery(
		"MATCH (a:Person)-[:follows]->(b:Person), (b)-[:follows]->(a)", vd, ed)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("vertices:", q.NumVertices(), "edges:", q.NumEdges())
	fmt.Println("a is query vertex", names["a"])
	// Output:
	// vertices: 2 edges: 2
	// a is query vertex 0
}

// Several queries can share one data graph through a MultiEngine.
func ExampleMultiEngine() {
	m := turboflux.NewMultiEngine(turboflux.NewGraph())

	q1 := turboflux.NewQuery(2)
	_ = q1.AddEdge(0, 1, 1)
	_ = m.Register("pair", q1, turboflux.Options{})

	q2 := turboflux.NewQuery(3)
	_ = q2.AddEdge(0, 1, 1)
	_ = q2.AddEdge(1, 1, 2)
	_ = m.Register("chain", q2, turboflux.Options{})

	counts, _ := m.Insert(1, 1, 2)
	fmt.Println("after first edge:", counts["pair"], counts["chain"])
	counts, _ = m.Insert(2, 1, 3)
	fmt.Println("after second edge:", counts["pair"], counts["chain"])
	// Output:
	// after first edge: 1 0
	// after second edge: 1 1
}

// A WindowedEngine retracts matches as edges age out of the window.
func ExampleWindowedEngine() {
	q := turboflux.NewQuery(3)
	_ = q.AddEdge(0, 0, 1)
	_ = q.AddEdge(1, 0, 2)
	w, _ := turboflux.NewWindowedEngine(q, 2, turboflux.Options{})
	_, _, _ = w.Insert(1, 0, 2)
	pos, _, _ := w.Insert(2, 0, 3) // completes 1->2->3
	fmt.Println("new matches:", pos)
	_, neg, _ := w.Insert(7, 0, 8) // evicts (1,0,2)
	fmt.Println("retracted by eviction:", neg)
	// Output:
	// new matches: 1
	// retracted by eviction: 1
}
